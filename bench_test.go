// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the §III-B ablations and pipeline
// micro-benchmarks. Regenerate everything with
//
//	go test -bench=. -benchmem
//
// The drivers live in internal/exp; cmd/ddexp prints the full tables. The
// benchmarks run reduced configurations (scale/workload subsets) so the
// whole suite finishes in minutes and report the headline quantity of each
// experiment through b.ReportMetric.
package ddprof_test

import (
	"strings"
	"testing"
	"time"

	"ddprof"
	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/exp"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
	"ddprof/internal/queue"
	"ddprof/internal/sig"
	"ddprof/internal/telemetry"
	"ddprof/internal/vm"
)

func benchOpts() exp.Options {
	o := exp.Defaults()
	o.Scale = 0.4
	return o
}

// BenchmarkTable1 regenerates Table I (FPR/FNR vs signature size) on a
// representative Starbench subset and reports the average FPR at the
// smallest and largest signatures.
func BenchmarkTable1(b *testing.B) {
	o := benchOpts()
	o.Only = []string{"streamcluster", "tinyjpeg", "rotate", "kmeans"}
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		var fprSmall, fprLarge float64
		for _, r := range rows {
			fprSmall += r.Rates[0].FPR
			fprLarge += r.Rates[len(r.Rates)-1].FPR
		}
		b.ReportMetric(fprSmall/float64(len(rows)), "FPR%@small-sig")
		b.ReportMetric(fprLarge/float64(len(rows)), "FPR%@large-sig")
	}
}

// BenchmarkTable2 regenerates Table II (parallelizable NAS loops) and
// reports the identified ratio (paper: 92.5%).
func BenchmarkTable2(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		omp, ident, missed := 0, 0, 0
		for _, r := range rows {
			omp += r.OMP
			ident += r.IdentifiedDP
			missed += r.MissedSig
		}
		b.ReportMetric(100*float64(ident)/float64(omp), "identified%")
		b.ReportMetric(float64(missed), "missed-by-sig")
	}
}

// BenchmarkFig5 regenerates Figure 5 (sequential-target slowdowns) on a
// subset and reports the serial and 16T lock-free slowdown averages.
func BenchmarkFig5(b *testing.B) {
	o := benchOpts()
	o.Only = []string{"EP", "FT", "rotate", "streamcluster"}
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.Fig5(o)
		if err != nil {
			b.Fatal(err)
		}
		var serial, lf16 float64
		for _, r := range rows {
			serial += r.Serial
			lf16 += r.LockFree16T
		}
		b.ReportMetric(serial/float64(len(rows)), "serial-slowdown-x")
		b.ReportMetric(lf16/float64(len(rows)), "16T-lockfree-slowdown-x")
	}
}

// BenchmarkFig6 regenerates Figure 6 (parallel-target slowdowns) on a
// subset.
func BenchmarkFig6(b *testing.B) {
	o := benchOpts()
	o.Only = []string{"rgbyuv", "md5"}
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		var s8, s16 float64
		for _, r := range rows {
			s8 += r.Workers8
			s16 += r.Workers16
		}
		b.ReportMetric(s8/float64(len(rows)), "8T-slowdown-x")
		b.ReportMetric(s16/float64(len(rows)), "16T-slowdown-x")
	}
}

// BenchmarkFig7 regenerates Figure 7 (memory, sequential targets) on a
// subset and reports average MB at 16 workers.
func BenchmarkFig7(b *testing.B) {
	o := benchOpts()
	o.Only = []string{"FT", "IS", "streamcluster"}
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		var mb float64
		for _, r := range rows {
			mb += float64(r.T16) / (1 << 20)
		}
		b.ReportMetric(mb/float64(len(rows)), "MB@16T")
	}
}

// BenchmarkFig8 regenerates Figure 8 (memory, parallel targets) on a
// subset.
func BenchmarkFig8(b *testing.B) {
	o := benchOpts()
	o.Only = []string{"md5", "rotate"}
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		var mb float64
		for _, r := range rows {
			mb += float64(r.T16) / (1 << 20)
		}
		b.ReportMetric(mb/float64(len(rows)), "MB@16T")
	}
}

// BenchmarkFig9 regenerates Figure 9 (water-spatial communication matrix)
// and reports the band-to-background contrast.
func BenchmarkFig9(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, res, err := exp.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		m := res.Matrix
		var nb, far uint64
		for p := 0; p < m.Threads; p++ {
			nb += m.M[p][(p+1)%m.Threads]
			far += m.M[p][(p+3)%m.Threads]
		}
		b.ReportMetric(float64(nb)/float64(far+1), "neighbour/far-contrast")
		b.ReportMetric(float64(m.CrossThread()), "crossthread-RAW")
	}
}

// BenchmarkEq2 regenerates the Equation (2) validation and reports the
// worst absolute prediction error.
func BenchmarkEq2(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.Eq2(o)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			d := r.Predicted - r.Measured
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		b.ReportMetric(worst, "worst-abs-error")
	}
}

// BenchmarkMergeAblation measures the §III-B dependence-merging factor.
func BenchmarkMergeAblation(b *testing.B) {
	o := benchOpts()
	o.Only = []string{"CG", "MG", "FT"}
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.MergeAblation(o)
		if err != nil {
			b.Fatal(err)
		}
		var f float64
		for _, r := range rows {
			f += r.Factor
		}
		b.ReportMetric(f/float64(len(rows)), "merge-factor-x")
	}
}

// BenchmarkStoreAblation measures the §III-B store comparison (paper: hash
// table 1.5–3.7× slower than signatures).
func BenchmarkStoreAblation(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.StoreAblation(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows[1:] {
			unit := strings.ReplaceAll(r.Store, " ", "-")
			b.ReportMetric(r.RelativeToSig, unit+"-vs-sig-x")
		}
	}
}

// --- pipeline micro-benchmarks ------------------------------------------

// BenchmarkEngineSignature measures Algorithm 1 throughput against the
// signature store.
func BenchmarkEngineSignature(b *testing.B) {
	benchEngine(b, func() sig.Store { return sig.NewSignature(1 << 20) })
}

// BenchmarkEnginePerfect measures Algorithm 1 against the exact map store.
func BenchmarkEnginePerfect(b *testing.B) {
	benchEngine(b, func() sig.Store { return sig.NewPerfectSignature() })
}

func benchEngine(b *testing.B, mk func() sig.Store) {
	eng := core.NewEngine(mk(), nil, false)
	l := loc.Pack(1, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := event.Access{Addr: uint64(i%4096) * 8, Loc: l, Kind: event.Kind(i & 1)}
		eng.Process(a)
	}
}

// BenchmarkQueueSPSC measures the lock-free chunk queue.
func BenchmarkQueueSPSC(b *testing.B) {
	q := queue.NewSPSC[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !q.TryPush(1) {
				q.TryPop()
			}
		}
	})
}

// BenchmarkQueueLocked measures the mutex queue baseline.
func BenchmarkQueueLocked(b *testing.B) {
	q := queue.NewLocked[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !q.TryPush(1) {
				q.TryPop()
			}
		}
	})
}

// BenchmarkProfileEndToEnd measures the public API end to end on the
// quickstart-sized program.
func BenchmarkProfileEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := ddprof.NewProgram("bench")
		p.MainFunc(func(blk *ddprof.Block) {
			blk.Decl("sum", ddprof.Ci(0))
			blk.DeclArr("a", ddprof.Ci(256))
			blk.For("i", ddprof.Ci(0), ddprof.Ci(256), ddprof.Ci(1),
				ddprof.LoopOpt{Name: "fill"}, func(l *ddprof.Block) {
					l.Set("a", ddprof.V("i"), ddprof.V("i"))
					l.Reduce("sum", ddprof.OpAdd, ddprof.Idx("a", ddprof.V("i")))
				})
		})
		if _, err := ddprof.Profile(p, ddprof.Config{Mode: ddprof.ModeParallel, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// hotPathStream synthesizes a dependence-dense instruction stream shaped
// like the paper's hot loops: every iteration re-fires the same static
// dependences (a carried RAW chain, a reduction RAW, an in-iteration RAW
// read twice), which is the instance redundancy the engine's hot path is
// optimized for.
func hotPathStream(events int) ([]event.Access, *prog.Meta) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "hot"})
	ctx := m.PushCtx(0, l)
	const window = 4096 // addresses cycle so every store stays warm
	aBase, sumAddr := uint64(0x10000), uint64(0x8000)
	evs := make([]event.Access, 0, events)
	for it := uint32(0); len(evs) < events; it++ {
		iv := event.PackIterVec([]uint32{it})
		at := func(i uint32) uint64 { return aBase + 8*uint64(i%window) }
		ev := func(addr uint64, k event.Kind, line int, fl event.Flags) event.Access {
			return event.Access{Addr: addr, Kind: k, Loc: loc.Pack(1, line), CtxID: ctx, IterVec: iv, Flags: fl}
		}
		if it > 0 {
			// a[i] = a[i-1] + ... : carried RAW, distance 1.
			evs = append(evs, ev(at(it-1), event.Read, 10, 0))
		}
		evs = append(evs,
			ev(at(it), event.Write, 12, 0),
			// x = a[i]*a[i]: the same read twice in one iteration — the
			// consecutive-duplicate shape the producer filter collapses.
			ev(at(it), event.Read, 13, 0),
			ev(at(it), event.Read, 13, 0),
			// sum += a[i]: carried reduction RAW.
			ev(sumAddr, event.Read, 14, event.FlagReduction),
			ev(sumAddr, event.Write, 14, event.FlagReduction),
		)
	}
	return evs[:events], m
}

// stridedStream synthesizes the array-sweep shape SD3 compression targets:
// a copy kernel with a carried RAW (b[i] read, a[i] write, a[i-1] read),
// every instruction advancing by a fixed 8-byte stride over a large window.
func stridedStream(events int) ([]event.Access, *prog.Meta) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "sweep"})
	ctx := m.PushCtx(0, l)
	const window = 1 << 16
	evs := make([]event.Access, 0, events)
	for it := uint32(0); len(evs) < events; it++ {
		i := it % window
		iv := event.PackIterVec([]uint32{it})
		src, dst := 0x900000+uint64(i)*8, 0x100000+uint64(i)*8
		ev := func(addr uint64, k event.Kind, line int) event.Access {
			return event.Access{Addr: addr, Kind: k, Loc: loc.Pack(2, line), CtxID: ctx, IterVec: iv}
		}
		evs = append(evs, ev(src, event.Read, 20), ev(dst, event.Write, 21))
		if i > 0 {
			evs = append(evs, ev(dst-8, event.Read, 22))
		}
	}
	return evs[:events], m
}

// mixedStream interleaves a strided sweep with a random-access instruction,
// so compression has to keep forming runs while unrelated points land
// between the elements.
func mixedStream(events int) ([]event.Access, *prog.Meta) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "mixed"})
	ctx := m.PushCtx(0, l)
	const window = 1 << 16
	rng := uint64(0x2545F4914F6CDD1D)
	evs := make([]event.Access, 0, events)
	for it := uint32(0); len(evs) < events; it++ {
		i := it % window
		iv := event.PackIterVec([]uint32{it})
		rng = rng*6364136223846793005 + 1442695040888963407
		evs = append(evs,
			event.Access{Addr: 0x100000 + uint64(i)*8, Kind: event.Write, Loc: loc.Pack(3, 30), CtxID: ctx, IterVec: iv},
			event.Access{Addr: 0x900000 + (rng>>40)*8, Kind: event.Kind(rng & 1), Loc: loc.Pack(3, 31), CtxID: ctx, IterVec: iv},
		)
	}
	return evs[:events], m
}

// ptrChaseStream is the anti-strided workload: an LCG-permuted address per
// event, so every detector stays Random and the point path carries the
// whole stream — the shape the compression fast path must not tax.
func ptrChaseStream(events int) ([]event.Access, *prog.Meta) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "chase"})
	ctx := m.PushCtx(0, l)
	rng := uint64(0x9E3779B97F4A7C15)
	evs := make([]event.Access, 0, events)
	for it := uint32(0); len(evs) < events; it++ {
		iv := event.PackIterVec([]uint32{it})
		rng = rng*6364136223846793005 + 1442695040888963407
		evs = append(evs,
			event.Access{Addr: 0x100000 + (rng>>40)*8, Kind: event.Read, Loc: loc.Pack(4, 40), CtxID: ctx, IterVec: iv},
			event.Access{Addr: 0x100000 + (rng>>24&0xFFFF)*8, Kind: event.Write, Loc: loc.Pack(4, 41), CtxID: ctx, IterVec: iv},
		)
	}
	return evs[:events], m
}

// BenchmarkHotPath is the per-event cost gate of the profiling pipelines:
// events/s through the serial engine, the lock-free parallel pipeline and
// the MT pipeline on a dependence-dense stream, plus the stride-compression
// A/B pairs on strided and mixed sweeps and a pointer chase that measures
// the detector's cost when nothing compresses. `make bench` records the
// trajectory in BENCH_pipeline.json; regressions show up as a drop in the
// events/s metric against the baseline stored there, and `make bench-gate`
// additionally requires each strided entry to beat its -nostride twin by
// 1.5x.
//
// All pipelines run with telemetry attached at the default sampling rate,
// so the gate prices the flight-recorder instrumentation too: if the stage
// histograms or publication watermarks ever leak into the per-event path,
// the events/s floor catches it.
func BenchmarkHotPath(b *testing.B) {
	stream, meta := hotPathStream(1 << 16)
	pipe := telemetry.NewRegistry().Pipeline("pipeline")
	run := func(b *testing.B, stream []event.Access, mk func() core.Profiler) {
		b.ReportAllocs()
		prof := mk()
		start := time.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prof.Access(stream[i%len(stream)])
		}
		res := prof.Flush()
		b.StopTimer()
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "events/s")
		if res != nil && res.Stats.Accesses > 0 {
			stored := res.Stats.Accesses - res.Stats.RangeElements + res.Stats.Ranges
			b.ReportMetric(float64(res.Stats.Accesses)/float64(stored), "comp-ratio")
		}
	}
	par4 := func(stream []event.Access, meta *prog.Meta, noComp bool) func(*testing.B) {
		return func(b *testing.B) {
			run(b, stream, func() core.Profiler {
				return core.NewParallel(core.Config{
					Workers: 4, SlotsPerWorker: 1 << 18, Meta: meta, Metrics: pipe,
					NoStrideCompression: noComp,
				})
			})
		}
	}
	b.Run("serial", func(b *testing.B) {
		run(b, stream, func() core.Profiler {
			return core.NewSerial(core.Config{SlotsPerWorker: 1 << 20, Meta: meta, Metrics: pipe})
		})
	})
	b.Run("parallel4", par4(stream, meta, false))
	b.Run("mt4", func(b *testing.B) {
		run(b, stream, func() core.Profiler {
			return core.NewMT(core.Config{Workers: 4, SlotsPerWorker: 1 << 18, Meta: meta, Metrics: pipe})
		})
	})
	strided, stridedMeta := stridedStream(1 << 16)
	mixed, mixedMeta := mixedStream(1 << 16)
	chase, chaseMeta := ptrChaseStream(1 << 16)
	b.Run("strided4", par4(strided, stridedMeta, false))
	b.Run("strided4-nostride", par4(strided, stridedMeta, true))
	b.Run("mixed4", par4(mixed, mixedMeta, false))
	b.Run("mixed4-nostride", par4(mixed, mixedMeta, true))
	b.Run("ptrchase4", par4(chase, chaseMeta, false))

	// The producer side of the same hot path: raw event production (nil
	// hook) from both executors on the scalar family, so this benchmark
	// shows the VM-vs-interpreter events/s ratio next to the consumer
	// pipelines it feeds. BenchmarkProducer has the full family × hook
	// matrix.
	prod := producerTargets()[0]
	for _, ex := range []interp.Executor{interp.TreeWalker{}, vm.New()} {
		b.Run("producer-"+ex.Name(), func(b *testing.B) {
			var events uint64
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				info, err := ex.Run(prod.prog, nil, prod.opt)
				if err != nil {
					b.Fatal(err)
				}
				events += info.Accesses
			}
			b.ReportMetric(float64(events)/time.Since(start).Seconds(), "events/s")
		})
	}
}

// BenchmarkStore drives the identical dense hot-loop stream through a
// serial pipeline under each registered access-history backend and reports
// events/s, so backend implementations are directly comparable at the store
// layer. The stream is the dense hotPathStream on purpose: sparse random
// streams measure shadow's page-fill pathology, not store dispatch. `make
// bench-store` records the matrix under the "store" label in
// BENCH_pipeline.json; `make bench-gate` fails if the default signature
// backend drops more than 10% below the committed baseline.
func BenchmarkStore(b *testing.B) {
	stream, meta := hotPathStream(1 << 16)
	for _, backend := range []string{
		"signature:slots=256k",
		"perfect",
		"shadow",
		"hashtab",
		"hybrid:slots=256k,exact=4096",
		"hybrid:exact=0",
	} {
		name := strings.NewReplacer(":", "_", ",", "_", "=", "-").Replace(backend)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			prof := core.NewSerial(core.Config{Backend: backend, Meta: meta})
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prof.Access(stream[i%len(stream)])
			}
			prof.Flush()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "events/s")
		})
	}
}

// --- merge-stage benchmarks ----------------------------------------------

// mergeShardKey fabricates the i-th distinct dependence key of the merge
// benchmark's key universe.
func mergeShardKey(i int) dep.Key {
	return dep.Key{
		Type:       dep.Type(i % 3),
		Sink:       loc.SourceLoc(uint32(i)),
		Src:        loc.SourceLoc(uint32(i>>1) ^ 0x55555),
		Var:        loc.VarID(i % 1024),
		SinkThread: int16(i % 4),
	}
}

// buildMergeShards synthesizes `workers` per-worker dependence sets over a
// universe of `distinct` keys: overlapPct percent of the universe appears in
// every shard (the duplicated dependences the merge must fold), the rest is
// partitioned evenly (the private dependences it must insert).
func buildMergeShards(workers, distinct, overlapPct int) []*dep.Set {
	shared := distinct * overlapPct / 100
	shards := make([]*dep.Set, workers)
	for w := range shards {
		s := dep.NewSet()
		for i := 0; i < shared; i++ {
			s.AddDist(mergeShardKey(i), i%2 == 0, i%3 == 0, false, uint32(i%8))
		}
		lo := shared + (distinct-shared)*w/workers
		hi := shared + (distinct-shared)*(w+1)/workers
		for i := lo; i < hi; i++ {
			s.AddDist(mergeShardKey(i), i%2 == 1, false, false, uint32(i%5))
		}
		shards[w] = s
	}
	return shards
}

// BenchmarkMerge measures the end-of-run merge stage in isolation: folding W
// per-worker dependence sets into one profile, serial fold (the old
// pipeline.merge loop — accumulate into a fresh set one worker at a time)
// against the parallel tree reduction (dep.MergeShards) now on that path.
// The matrix spans worker count, distinct-dependence population and the
// overlap ratio between shards; events/s counts merged source entries, so
// the two modes are directly comparable per configuration. `make
// bench-merge` records the matrix under the "merge" label in
// BENCH_pipeline.json; `make bench-gate` fails if the tree side drops more
// than 10% below that committed baseline.
func BenchmarkMerge(b *testing.B) {
	cfgs := []struct {
		name                       string
		workers, distinct, overlap int
	}{
		{"w4-d64k-ov50", 4, 1 << 16, 50},
		{"w8-d64k-ov50", 8, 1 << 16, 50},
		{"w16-d64k-ov50", 16, 1 << 16, 50},
		{"w8-d16k-ov50", 8, 1 << 14, 50},
		{"w8-d256k-ov50", 8, 1 << 18, 50},
		{"w8-d64k-ov0", 8, 1 << 16, 0},
		{"w8-d64k-ov90", 8, 1 << 16, 90},
	}
	run := func(b *testing.B, workers, distinct, overlap int, fn func([]*dep.Set) *dep.Set, releaseInputs bool) {
		var total uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			shards := buildMergeShards(workers, distinct, overlap)
			for _, sh := range shards {
				total += uint64(sh.Unique())
			}
			b.StartTimer()
			res := fn(shards)
			b.StopTimer()
			if releaseInputs {
				for _, sh := range shards {
					sh.Release()
				}
			}
			res.Release()
			b.StartTimer()
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
	}
	for _, c := range cfgs {
		c := c
		b.Run(c.name+"/serial", func(b *testing.B) {
			run(b, c.workers, c.distinct, c.overlap, func(shards []*dep.Set) *dep.Set {
				acc := dep.NewSet()
				for _, sh := range shards {
					acc.Merge(sh)
				}
				return acc
			}, true) // serial fold leaves its inputs live; release them off-clock
		})
		b.Run(c.name+"/tree", func(b *testing.B) {
			run(b, c.workers, c.distinct, c.overlap, dep.MergeShards, false)
		})
	}
}

// BenchmarkBalance measures the §IV-A load-balance ablation and reports the
// three imbalance factors for kmeans.
func BenchmarkBalance(b *testing.B) {
	o := benchOpts()
	o.Only = []string{"kmeans"}
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.Balance(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Modulo, "modulo-imbalance")
		b.ReportMetric(rows[0].Redistributed, "redistributed-imbalance")
		b.ReportMetric(rows[0].RoundRobin, "roundrobin-imbalance")
	}
}

// --- producer benchmarks -------------------------------------------------

// producerTargets are the event-source benchmark programs: a scalar
// reduction kernel, a strided array sweep, and a 4-thread locked counter
// run with timestamps the way ModeMT profiles it. Together they cover the
// three instruction mixes the producers see in practice.
func producerTargets() []struct {
	name string
	prog *ddprof.Program
	opt  interp.Options
} {
	scalar := ddprof.NewProgram("producer-scalar")
	scalar.MainFunc(func(b *ddprof.Block) {
		b.Decl("sum", ddprof.Ci(0))
		b.Decl("odd", ddprof.Ci(0))
		b.For("i", ddprof.Ci(0), ddprof.Ci(20000), ddprof.Ci(1),
			ddprof.LoopOpt{Name: "acc"}, func(l *ddprof.Block) {
				l.Reduce("sum", ddprof.OpAdd, ddprof.Add(ddprof.V("i"), ddprof.Ci(1)))
				l.If(ddprof.Eq(ddprof.Mod(ddprof.V("i"), ddprof.Ci(2)), ddprof.Ci(1)),
					func(t *ddprof.Block) {
						t.Reduce("odd", ddprof.OpAdd, ddprof.V("i"))
					}, nil)
			})
	})

	strided := ddprof.NewProgram("producer-strided")
	strided.MainFunc(func(b *ddprof.Block) {
		const n = 4096
		b.DeclArr("a", ddprof.Ci(n))
		b.DeclArr("src", ddprof.Ci(n))
		b.For("t", ddprof.Ci(0), ddprof.Ci(6), ddprof.Ci(1),
			ddprof.LoopOpt{Name: "sweep"}, func(o *ddprof.Block) {
				o.For("i", ddprof.Ci(1), ddprof.Ci(n), ddprof.Ci(1),
					ddprof.LoopOpt{Name: "copy"}, func(l *ddprof.Block) {
						l.Set("a", ddprof.V("i"),
							ddprof.Add(ddprof.Idx("src", ddprof.V("i")),
								ddprof.Idx("a", ddprof.Sub(ddprof.V("i"), ddprof.Ci(1)))))
					})
			})
	})

	threaded := ddprof.NewProgram("producer-threaded")
	threaded.MainFunc(func(b *ddprof.Block) {
		b.Decl("counter", ddprof.Ci(0))
		b.Spawn(4, func(s *ddprof.Block) {
			s.Decl("local", ddprof.Ci(0))
			s.For("i", ddprof.Ci(0), ddprof.Ci(2000), ddprof.Ci(1),
				ddprof.LoopOpt{Name: "work"}, func(l *ddprof.Block) {
					l.Reduce("local", ddprof.OpAdd, ddprof.Add(ddprof.V("i"), ddprof.Tid()))
					l.If(ddprof.Eq(ddprof.Mod(ddprof.V("i"), ddprof.Ci(50)), ddprof.Ci(0)),
						func(t *ddprof.Block) {
							t.Lock("m", func(c *ddprof.Block) {
								c.Reduce("counter", ddprof.OpAdd, ddprof.Ci(1))
							})
						}, nil)
				})
		})
	})

	return []struct {
		name string
		prog *ddprof.Program
		opt  interp.Options
	}{
		{"scalar", scalar, interp.Options{}},
		{"strided", strided, interp.Options{}},
		{"threaded", threaded, interp.Options{Timestamps: true}},
	}
}

// BenchmarkProducer measures the two event producers — the tree-walking
// interpreter and the bytecode VM — and reports events/s. Each family runs
// twice per executor: raw production (nil hook — the producer's capacity,
// every instrumentation point reached and counted but no event
// materialized), and delivery into a no-op sink (the per-event
// Access-construction and hook-dispatch cost added on top, which is the
// same for both executors and so compresses their ratio). `make
// bench-producer` records the raw numbers in BENCH_pipeline.json; `make
// bench-gate` fails if the VM's throughput drops more than 10% below the
// committed "producer" baseline.
func BenchmarkProducer(b *testing.B) {
	sink := event.HookFunc(func(event.Access) {})
	hooks := []struct {
		name string
		h    event.Hook
	}{{"raw", nil}, {"sink", sink}}
	for _, tgt := range producerTargets() {
		for _, hk := range hooks {
			for _, ex := range []interp.Executor{interp.TreeWalker{}, vm.New()} {
				name := tgt.name + "/" + ex.Name()
				if hk.name == "sink" {
					name = tgt.name + "-sink/" + ex.Name()
				}
				b.Run(name, func(b *testing.B) {
					var events uint64
					b.ResetTimer()
					start := time.Now()
					for i := 0; i < b.N; i++ {
						info, err := ex.Run(tgt.prog, hk.h, tgt.opt)
						if err != nil {
							b.Fatal(err)
						}
						events += info.Accesses
					}
					b.ReportMetric(float64(events)/time.Since(start).Seconds(), "events/s")
				})
			}
		}
	}
}
