// Command ddiff compares two saved dependence profiles — the workflow
// behind input-sensitivity studies (paper §I): profile the same program
// under different inputs, diff the dependence sets, and see exactly what
// each input contributed.
//
// Usage:
//
//	ddiff a.txt b.txt             # text profiles (ddprof default output)
//	ddiff -binary a.ddp b.ddp     # binary profiles (ddprof -format binary)
package main

import (
	"flag"
	"fmt"
	"os"

	"ddprof/internal/dep"
)

func main() {
	binary := flag.Bool("binary", false, "inputs are binary profiles (ddprof -format binary)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: ddiff [-binary] <profile-a> <profile-b>")
		os.Exit(2)
	}

	a, err := load(flag.Arg(0), *binary)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddiff:", err)
		os.Exit(1)
	}
	b, err := load(flag.Arg(1), *binary)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddiff:", err)
		os.Exit(1)
	}

	d := dep.Diff(a, b)
	fmt.Printf("%d common dependences\n", d.Common)
	printSide(fmt.Sprintf("only in %s (%d)", flag.Arg(0), len(d.OnlyA)), d.OnlyA)
	printSide(fmt.Sprintf("only in %s (%d)", flag.Arg(1), len(d.OnlyB)), d.OnlyB)
	if d.Identical() {
		fmt.Println("profiles are identical")
		return
	}
	os.Exit(1) // differences found: non-zero like diff(1)
}

func load(path string, binary bool) (*dep.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if binary {
		set, _, _, err := dep.Decode(f)
		return set, err
	}
	set, _, _, err := dep.Parse(f)
	return set, err
}

func printSide(header string, ks []dep.Key) {
	fmt.Println(header)
	for _, k := range ks {
		if k.Type == dep.INIT {
			fmt.Printf("  %v %v|%d {INIT}\n", k.Type, k.Sink, k.SinkThread)
			continue
		}
		fmt.Printf("  %v %v|%d <- %v|%d\n", k.Type, k.Sink, k.SinkThread, k.Src, k.SrcThread)
	}
}
