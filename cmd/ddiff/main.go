// Command ddiff compares two saved dependence profiles — the workflow
// behind input-sensitivity studies (paper §I): profile the same program
// under different inputs, diff the dependence sets, and see exactly what
// each input contributed.
//
// Usage:
//
//	ddiff a.txt b.txt             # text profiles (ddprof default output)
//	ddiff -binary a.ddp b.ddp     # binary profiles (ddprof -format binary)
//
// Binary profiles are diffed as streams: DDP1 writes dependences in
// canonical key order, so the two files merge-join record by record and
// neither profile is ever materialized in memory — diffing two
// million-dependence stored profiles costs two records of state.
package main

import (
	"flag"
	"fmt"
	"os"

	"ddprof/internal/dep"
)

func main() {
	binary := flag.Bool("binary", false, "inputs are binary profiles (ddprof -format binary)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: ddiff [-binary] <profile-a> <profile-b>")
		os.Exit(2)
	}

	d, err := diff(flag.Arg(0), flag.Arg(1), *binary)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddiff:", err)
		os.Exit(1)
	}
	fmt.Printf("%d common dependences\n", d.Common)
	printSide(fmt.Sprintf("only in %s (%d)", flag.Arg(0), len(d.OnlyA)), d.OnlyA)
	printSide(fmt.Sprintf("only in %s (%d)", flag.Arg(1), len(d.OnlyB)), d.OnlyB)
	if d.Identical() {
		fmt.Println("profiles are identical")
		return
	}
	os.Exit(1) // differences found: non-zero like diff(1)
}

func diff(pathA, pathB string, binary bool) (dep.DiffResult, error) {
	if binary {
		return diffBinary(pathA, pathB)
	}
	a, err := loadText(pathA)
	if err != nil {
		return dep.DiffResult{}, err
	}
	b, err := loadText(pathB)
	if err != nil {
		return dep.DiffResult{}, err
	}
	return dep.Diff(a, b), nil
}

func diffBinary(pathA, pathB string) (dep.DiffResult, error) {
	fa, err := os.Open(pathA)
	if err != nil {
		return dep.DiffResult{}, err
	}
	defer fa.Close()
	fb, err := os.Open(pathB)
	if err != nil {
		return dep.DiffResult{}, err
	}
	defer fb.Close()
	da, err := dep.NewDecoder(fa)
	if err != nil {
		return dep.DiffResult{}, fmt.Errorf("%s: %w", pathA, err)
	}
	db, err := dep.NewDecoder(fb)
	if err != nil {
		return dep.DiffResult{}, fmt.Errorf("%s: %w", pathB, err)
	}
	return dep.DiffStreams(da, db)
}

func loadText(path string) (*dep.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, _, _, err := dep.Parse(f)
	return set, err
}

func printSide(header string, ks []dep.Key) {
	fmt.Println(header)
	for _, k := range ks {
		if k.Type == dep.INIT {
			fmt.Printf("  %v %v|%d {INIT}\n", k.Type, k.Sink, k.SinkThread)
			continue
		}
		fmt.Printf("  %v %v|%d <- %v|%d\n", k.Type, k.Sink, k.SinkThread, k.Src, k.SrcThread)
	}
}
