// Command ddiff compares two saved dependence profiles — the workflow
// behind input-sensitivity studies (paper §I): profile the same program
// under different inputs, diff the dependence sets, and see exactly what
// each input contributed.
//
// Usage:
//
//	ddiff a.txt b.txt             # text profiles (ddprof default output)
//	ddiff -binary a.ddp b.ddp     # binary profiles (ddprof -format binary)
//	ddiff -http http://localhost:7078/sessions/3 baseline.ddp
//	                              # baseline vs a live ddprofd session
//
// Binary profiles are diffed as streams: DDP1 writes dependences in
// canonical key order, so the two files merge-join record by record and
// neither profile is ever materialized in memory — diffing two
// million-dependence stored profiles costs two records of state.
//
// With -http the same merge-join runs inside the daemon (the live
// observatory's POST /sessions/{id}/diff endpoint): the stored binary
// baseline is uploaded and diffed against the session's live profile without
// pausing its ingest — the session may still be running.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"ddprof/internal/dep"
)

func main() {
	binary := flag.Bool("binary", false, "inputs are binary profiles (ddprof -format binary)")
	httpURL := flag.String("http", "", "diff a binary baseline against a live ddprofd session: http://host:port/sessions/{id}")
	flag.Parse()
	if *httpURL != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: ddiff -http <session-url> <baseline.ddp>")
			os.Exit(2)
		}
		os.Exit(diffHTTP(*httpURL, flag.Arg(0)))
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: ddiff [-binary] <profile-a> <profile-b>")
		os.Exit(2)
	}

	d, err := diff(flag.Arg(0), flag.Arg(1), *binary)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddiff:", err)
		os.Exit(1)
	}
	fmt.Printf("%d common dependences\n", d.Common)
	printSide(fmt.Sprintf("only in %s (%d)", flag.Arg(0), len(d.OnlyA)), d.OnlyA)
	printSide(fmt.Sprintf("only in %s (%d)", flag.Arg(1), len(d.OnlyB)), d.OnlyB)
	if d.Identical() {
		fmt.Println("profiles are identical")
		return
	}
	os.Exit(1) // differences found: non-zero like diff(1)
}

// diffRow mirrors the daemon's JSON dependence row (the fields ddiff shows).
type diffRow struct {
	Sink       uint32 `json:"sink"`
	Src        uint32 `json:"src"`
	Type       string `json:"type"`
	Var        string `json:"var"`
	SinkThread int16  `json:"sink_thread"`
	SrcThread  int16  `json:"src_thread"`
}

// diffReply mirrors the daemon's POST /sessions/{id}/diff JSON page.
type diffReply struct {
	Session      uint64    `json:"session"`
	Epoch        uint32    `json:"epoch"`
	Final        bool      `json:"final"`
	Common       int       `json:"common"`
	Identical    bool      `json:"identical"`
	OnlyBaseline []diffRow `json:"only_baseline"`
	OnlyLive     []diffRow `json:"only_live"`
}

// diffHTTP uploads a binary baseline to a daemon session's diff endpoint and
// renders the reply like a local diff. Exit codes match the file modes: 0
// identical, 1 differences, 2 usage/transport failure.
func diffHTTP(sessionURL, baselinePath string) int {
	baseline, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddiff:", err)
		return 2
	}
	url := strings.TrimRight(sessionURL, "/") + "/diff"
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(baseline))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddiff:", err)
		return 2
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		fmt.Fprintf(os.Stderr, "ddiff: %s: %s: %s", url, resp.Status, msg.String())
		return 2
	}
	var d diffReply
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		fmt.Fprintln(os.Stderr, "ddiff: decoding reply:", err)
		return 2
	}
	state := "still profiling"
	if d.Final {
		state = "completed"
	}
	fmt.Printf("session %d at epoch %d (%s): %d common dependences\n", d.Session, d.Epoch, state, d.Common)
	printHTTPSide(fmt.Sprintf("only in %s (%d)", baselinePath, len(d.OnlyBaseline)), d.OnlyBaseline)
	printHTTPSide(fmt.Sprintf("only in live session (%d)", len(d.OnlyLive)), d.OnlyLive)
	if d.Identical {
		fmt.Println("profiles are identical")
		return 0
	}
	return 1
}

func printHTTPSide(header string, rows []diffRow) {
	fmt.Println(header)
	for _, r := range rows {
		if r.Type == "INIT" {
			fmt.Printf("  %s %d|%d [%s] {INIT}\n", r.Type, r.Sink, r.SinkThread, r.Var)
			continue
		}
		fmt.Printf("  %s %d|%d <- %d|%d [%s]\n", r.Type, r.Sink, r.SinkThread, r.Src, r.SrcThread, r.Var)
	}
}

func diff(pathA, pathB string, binary bool) (dep.DiffResult, error) {
	if binary {
		return diffBinary(pathA, pathB)
	}
	a, err := loadText(pathA)
	if err != nil {
		return dep.DiffResult{}, err
	}
	b, err := loadText(pathB)
	if err != nil {
		return dep.DiffResult{}, err
	}
	return dep.Diff(a, b), nil
}

func diffBinary(pathA, pathB string) (dep.DiffResult, error) {
	fa, err := os.Open(pathA)
	if err != nil {
		return dep.DiffResult{}, err
	}
	defer fa.Close()
	fb, err := os.Open(pathB)
	if err != nil {
		return dep.DiffResult{}, err
	}
	defer fb.Close()
	da, err := dep.NewDecoder(fa)
	if err != nil {
		return dep.DiffResult{}, fmt.Errorf("%s: %w", pathA, err)
	}
	db, err := dep.NewDecoder(fb)
	if err != nil {
		return dep.DiffResult{}, fmt.Errorf("%s: %w", pathB, err)
	}
	return dep.DiffStreams(da, db)
}

func loadText(path string) (*dep.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, _, _, err := dep.Parse(f)
	return set, err
}

func printSide(header string, ks []dep.Key) {
	fmt.Println(header)
	for _, k := range ks {
		if k.Type == dep.INIT {
			fmt.Printf("  %v %v|%d {INIT}\n", k.Type, k.Sink, k.SinkThread)
			continue
		}
		fmt.Printf("  %v %v|%d <- %v|%d\n", k.Type, k.Sink, k.SinkThread, k.Src, k.SrcThread)
	}
}
