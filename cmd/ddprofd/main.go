// Command ddprofd is the data-dependence profiling daemon: a long-lived
// service that accepts recorded trace streams from many concurrent clients
// (ddprof -remote) over TCP and Unix sockets, profiles each session on its
// own parallel pipeline, and returns the dependence set in the binary
// profile format.
//
// Usage:
//
//	ddprofd                                  # TCP on :7077, metrics on :7078
//	ddprofd -listen :9000 -unix /tmp/dd.sock # both transports
//	ddprofd -budget 32 -session-workers 8    # bigger worker pool
//	curl localhost:7078/metrics              # live pipeline counters
//	curl localhost:7078/sessions             # live session table
//
// SIGINT/SIGTERM drain gracefully: listeners close, in-flight sessions
// finish (up to -drain), then the daemon exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ddprof/internal/server"
)

func main() {
	var (
		listen   = flag.String("listen", ":7077", "TCP listen address (empty to disable)")
		unixSock = flag.String("unix", "", "Unix socket path (empty to disable)")
		httpAddr = flag.String("http", ":7078", "HTTP address for /metrics and /sessions (empty to disable)")
		budget   = flag.Int("budget", 16, "global pipeline worker budget shared by all sessions")
		perSess  = flag.Int("session-workers", 4, "pipeline workers per session (cap; shrinks when the budget runs low)")
		maxSess  = flag.Int("max-sessions", 64, "maximum concurrent sessions")
		slots    = flag.Int("slots", 1<<20, "signature slots per session")
		idle     = flag.Duration("idle", 30*time.Second, "slow-client deadline: sessions silent this long are evicted")
		drain    = flag.Duration("drain", 30*time.Second, "graceful drain window on SIGTERM")
		quiet    = flag.Bool("q", false, "suppress per-session log lines")
	)
	flag.Parse()

	if *listen == "" && *unixSock == "" {
		fmt.Fprintln(os.Stderr, "ddprofd: nothing to listen on (-listen and -unix both empty)")
		os.Exit(2)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := server.New(server.Config{
		WorkerBudget:      *budget,
		WorkersPerSession: *perSess,
		MaxSessions:       *maxSess,
		SessionSlots:      *slots,
		IdleTimeout:       *idle,
		Logf:              logf,
	})

	errc := make(chan error, 3)
	serve := func(network, addr string) {
		ln, err := net.Listen(network, addr)
		if err != nil {
			errc <- fmt.Errorf("listen %s %s: %w", network, addr, err)
			return
		}
		log.Printf("ddprofd: listening on %s %s", network, ln.Addr())
		errc <- srv.Serve(ln)
	}
	if *listen != "" {
		go serve("tcp", *listen)
	}
	if *unixSock != "" {
		os.Remove(*unixSock) // stale socket from a previous run
		go serve("unix", *unixSock)
	}

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			log.Printf("ddprofd: metrics on http://%s/metrics", *httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				errc <- err
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("ddprofd: %s: draining (up to %s)", sig, *drain)
	case err := <-errc:
		if err != nil {
			log.Printf("ddprofd: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("ddprofd: drain incomplete: %v", err)
	}
	if httpSrv != nil {
		httpSrv.Shutdown(context.Background())
	}
	if *unixSock != "" {
		os.Remove(*unixSock)
	}
	log.Printf("ddprofd: bye")
}
