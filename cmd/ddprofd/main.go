// Command ddprofd is the data-dependence profiling daemon: a long-lived
// service that accepts recorded trace streams from many concurrent clients
// (ddprof -remote) over TCP and Unix sockets, profiles each session on its
// own parallel pipeline, and returns the dependence set in the binary
// profile format.
//
// Usage:
//
//	ddprofd                                  # TCP on :7077, metrics on :7078
//	ddprofd -listen :9000 -unix /tmp/dd.sock # both transports
//	ddprofd -budget 32 -session-workers 8    # bigger worker pool
//	ddprofd -log-level debug                 # structured logs, debug level
//	curl localhost:7078/metrics              # live pipeline counters + quantiles
//	curl localhost:7078/sessions             # live session table
//	curl localhost:7078/sessions/3/deps      # live dependence profile (?since=E)
//	curl localhost:7078/sessions/3/loop/0/carried   # what loop 0 carries now
//	curl 'localhost:7078/sessions/3/addr?lo=0x100&hi=0x1ff'
//	curl --data-binary @base.ddp localhost:7078/sessions/3/diff
//	curl localhost:7078/debug/timeline       # flight-recorder time series
//	go tool pprof localhost:7078/debug/pprof/profile
//	ddprof -workload kmeans -remote :7077 -watch   # live epoch-delta stream
//
// SIGINT/SIGTERM drain gracefully: listeners close, in-flight sessions
// finish (up to -drain), then the daemon exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ddprof/internal/server"
)

// parseLevel maps the -log-level flag to a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

func main() {
	var (
		listen   = flag.String("listen", ":7077", "TCP listen address (empty to disable)")
		unixSock = flag.String("unix", "", "Unix socket path (empty to disable)")
		httpAddr = flag.String("http", ":7078", "HTTP address for /metrics, /sessions, /debug/timeline and /debug/pprof (empty to disable)")
		budget   = flag.Int("budget", 16, "global pipeline worker budget shared by all sessions")
		perSess  = flag.Int("session-workers", 4, "pipeline workers per session (cap; shrinks when the budget runs low)")
		maxSess  = flag.Int("max-sessions", 64, "maximum concurrent sessions")
		slots    = flag.Int("slots", 1<<20, "signature slots per session")
		backend  = flag.String("backend", "", "default store backend spec for sessions that request none: signature | perfect | shadow | hashtab | hybrid[:key=val,...]")
		storeMax = flag.Uint64("store-budget", 0, "per-session store admission budget in bytes; unbounded or oversized backends are refused (0 = no limit)")
		idle     = flag.Duration("idle", 30*time.Second, "slow-client deadline: sessions silent this long are evicted")
		drain    = flag.Duration("drain", 30*time.Second, "graceful drain window on SIGTERM")
		quiet    = flag.Bool("q", false, "suppress per-session log lines")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		snapInt  = flag.Duration("snapshot-interval", 250*time.Millisecond, "flight-recorder sampling interval for /debug/timeline")
		snapN    = flag.Int("snapshot-samples", 1024, "flight-recorder ring size (most recent samples kept; negative disables)")
		trackAcc = flag.Bool("track-accuracy", false, "live Eq. (2) accuracy telemetry: sig_fpr_measured_ppm vs sig_fpr_predicted_ppm per worker")
		epochInt = flag.Duration("epoch-interval", 100*time.Millisecond, "live observatory epoch ticker: how often ingesting sessions cut an epoch-delta for watch subscribers (0 disables; explicit EpochMark records still cut)")
		seriesMx = flag.Int("session-series", 64, "cap on per-session labeled series on /metrics; sessions past it share the overflow series")
		readBuf  = flag.Int("readbuf", 64<<10, "per-session socket/bufio read buffer in bytes")
		decDepth = flag.Int("decode-depth", 4, "per-session decode-stage depth: frames (and decoded chunks) in flight between socket, decoder and pipeline")
	)
	flag.Parse()

	lvl, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddprofd:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	slog.SetDefault(logger)

	if *listen == "" && *unixSock == "" {
		fmt.Fprintln(os.Stderr, "ddprofd: nothing to listen on (-listen and -unix both empty)")
		os.Exit(2)
	}

	// Session lifecycle lines arrive printf-style from the server; they are
	// info-level events and -q mutes just them.
	logf := func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := server.New(server.Config{
		WorkerBudget:      *budget,
		WorkersPerSession: *perSess,
		MaxSessions:       *maxSess,
		SessionSlots:      *slots,
		DefaultBackend:    *backend,
		MaxStoreBytes:     *storeMax,
		IdleTimeout:       *idle,
		SnapshotInterval:  *snapInt,
		SnapshotSamples:   *snapN,
		TrackAccuracy:     *trackAcc,
		EpochInterval:     *epochInt,
		SessionSeriesMax:  *seriesMx,
		ReadBuf:           *readBuf,
		DecodeDepth:       *decDepth,
		Logf:              logf,
	})

	errc := make(chan error, 3)
	serve := func(network, addr string) {
		ln, err := net.Listen(network, addr)
		if err != nil {
			errc <- fmt.Errorf("listen %s %s: %w", network, addr, err)
			return
		}
		logger.Info("ddprofd: listening", "network", network, "addr", ln.Addr().String())
		errc <- srv.Serve(ln)
	}
	if *listen != "" {
		go serve("tcp", *listen)
	}
	if *unixSock != "" {
		os.Remove(*unixSock) // stale socket from a previous run
		go serve("unix", *unixSock)
	}

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			logger.Info("ddprofd: observability endpoints up",
				"metrics", "http://"+*httpAddr+"/metrics",
				"timeline", "http://"+*httpAddr+"/debug/timeline",
				"pprof", "http://"+*httpAddr+"/debug/pprof/")
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				errc <- err
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("ddprofd: draining", "signal", sig.String(), "window", drain.String())
	case err := <-errc:
		if err != nil {
			logger.Error("ddprofd: serve failed", "err", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("ddprofd: drain incomplete", "err", err)
	}
	if httpSrv != nil {
		httpSrv.Shutdown(context.Background())
	}
	if *unixSock != "" {
		os.Remove(*unixSock)
	}
	logger.Info("ddprofd: bye")
}
