// Command ddexp regenerates the paper's tables and figures.
//
// Usage:
//
//	ddexp table1            # Table I  (FPR/FNR vs signature size)
//	ddexp table2            # Table II (parallelizable NAS loops)
//	ddexp fig5              # Figure 5 (sequential-target slowdowns)
//	ddexp fig6              # Figure 6 (parallel-target slowdowns)
//	ddexp fig7              # Figure 7 (memory, sequential targets)
//	ddexp fig8              # Figure 8 (memory, parallel targets)
//	ddexp fig9              # Figure 9 (water-spatial communication matrix)
//	ddexp eq2               # Equation (2) validation
//	ddexp merge             # dependence-merging ablation (§III-B)
//	ddexp stores            # signature vs hash table vs shadow memory (§III-B)
//	ddexp balance           # worker load balance: modulo vs redistribution vs round-robin
//	ddexp sweep             # full FPR/FNR-vs-signature-size curve (rotate)
//	ddexp throughput        # events/s per pipeline, hot path off vs on
//	ddexp all               # everything above
//
//	ddexp -trace-out run.json all
//	                        # record the flight-recorder timeline and write a
//	                        # Chrome trace-event file (load in Perfetto /
//	                        # chrome://tracing); each experiment is a span
//
//	go test -bench BenchmarkHotPath . | ddexp -bench-label after benchjson
//	                        # parse benchmark output from stdin and append a
//	                        # labelled run to BENCH_pipeline.json (make bench)
//	go test -bench BenchmarkHotPath . | ddexp -bench-compare hotpath benchjson
//	                        # compare stdin against the recorded "hotpath" run
//	                        # and exit 1 on a >10% events/s regression
//	                        # (make bench-gate)
//
// Flags: -scale N (problem size multiplier), -paper (paper-scale signature
// sizes and repetitions), -only a,b,c (restrict to named workloads),
// -reps N (timing repetitions), -metrics addr (serve live pipeline counters
// plus /debug/pprof over HTTP while the experiments run), -trace-out path
// and -trace-interval d (flight-recorder capture), -log-level
// (debug|info|warn|error), -bench-json path and -bench-label name
// (destination file and run label for the benchjson subcommand).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"ddprof/internal/exp"
	"ddprof/internal/interp"
	"ddprof/internal/report"
	"ddprof/internal/telemetry"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0, "workload problem-size multiplier (0 = default)")
		paper    = flag.Bool("paper", false, "use the paper's signature sizes (1e6/1e7/1e8) and 3 timing reps")
		only     = flag.String("only", "", "comma-separated workload names to restrict to")
		reps     = flag.Int("reps", 0, "timing repetitions (0 = default)")
		metrics  = flag.String("metrics", "", "HTTP address serving live /metrics and /debug/pprof while experiments run (e.g. :7078)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run to this file (Perfetto-loadable)")
		traceInt = flag.Duration("trace-interval", 50*time.Millisecond, "flight-recorder sampling interval for -trace-out")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		useTW    = flag.Bool("interp", false, "execute targets with the reference tree-walking interpreter instead of the bytecode VM")

		benchJSON    = flag.String("bench-json", "BENCH_pipeline.json", "destination file for the benchjson subcommand")
		benchLabel   = flag.String("bench-label", "run", "run label for the benchjson subcommand")
		benchCompare = flag.String("bench-compare", "", "compare stdin against this recorded run label instead of appending; exit 1 on regression")
		benchTol     = flag.Float64("bench-tolerance", 0.10, "events/s fraction a sub-benchmark may fall below the baseline before -bench-compare fails")
		strideGate   = flag.Float64("stride-gate", 1.5, "minimum events/s factor a strided sub-benchmark must hold over its -nostride twin in -bench-compare mode")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ddexp: bad -log-level %q (want debug, info, warn or error)\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	slog.SetDefault(logger)

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ddexp [flags] table1|table2|fig5|fig6|fig7|fig8|fig9|eq2|merge|stores|balance|sweep|throughput|benchjson|all")
		os.Exit(2)
	}

	if flag.Arg(0) == "benchjson" {
		// Not an experiment: filter `go test -bench` output from stdin into
		// the append-only benchmark log the `make bench` gate reads.
		entries, err := exp.ParseBench(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddexp benchjson:", err)
			os.Exit(1)
		}
		if *benchCompare != "" {
			// Gate mode (make bench-gate): compare against a recorded run,
			// fail loudly on regression, record nothing.
			deltas, err := exp.CompareBench(*benchJSON, *benchCompare, entries, *benchTol)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ddexp benchjson:", err)
				os.Exit(1)
			}
			regressed := false
			for _, d := range deltas {
				verdict := "ok"
				if d.Regressed {
					verdict = "REGRESSED"
					regressed = true
				}
				fmt.Printf("%-12s %14.0f events/s vs %14.0f baseline (%5.1f%%)  %s\n",
					d.Name, d.Now, d.Base, 100*d.Ratio, verdict)
			}
			// The stride-compression gate rides along: strided entries must
			// beat their -nostride twins by the configured factor within this
			// fresh run (no baseline needed — the twin is the baseline).
			failed := false
			for _, g := range exp.GateStrideTwins(entries, *strideGate) {
				verdict := "ok"
				if !g.Pass {
					verdict = "BELOW GATE"
					failed = true
				}
				fmt.Printf("%-12s %14.0f events/s vs %14.0f -nostride  (%4.2fx)  %s\n",
					g.Name, g.With, g.Without, g.Ratio, verdict)
			}
			if regressed {
				fmt.Fprintf(os.Stderr, "ddexp benchjson: events/s regressed more than %.0f%% below run %q\n",
					100**benchTol, *benchCompare)
				os.Exit(1)
			}
			if failed {
				fmt.Fprintf(os.Stderr, "ddexp benchjson: strided workloads must run >= %.2fx their -nostride twins\n",
					*strideGate)
				os.Exit(1)
			}
			return
		}
		bf, err := exp.AppendBenchRun(*benchJSON, *benchLabel, entries)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddexp benchjson:", err)
			os.Exit(1)
		}
		for _, e := range entries {
			fmt.Printf("%s: recorded %-12s %14.0f events/s\n", *benchJSON, e.Name, e.EventsPerSec)
		}
		fmt.Printf("%s: %d run(s) on record\n", *benchJSON, len(bf.Runs))
		return
	}

	// Observability for the experiment run: live counters on the shared
	// default registry, an optional flight-recorder capture, and a metrics
	// server that is shut down cleanly once the experiments finish instead
	// of leaking until process exit.
	var snap *telemetry.Snapshotter
	if *metrics != "" || *traceOut != "" {
		exp.Telemetry = telemetry.Default().Pipeline("pipeline")
	}
	if *traceOut != "" {
		snap = telemetry.NewSnapshotter(telemetry.Default(), *traceInt, 1<<14)
		snap.Start()
	}
	var metricsSrv *http.Server
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Default().Handler())
		if snap != nil {
			mux.Handle("/debug/timeline", snap.TimelineHandler())
		}
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		metricsSrv = &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			logger.Info("ddexp: metrics server up", "url", "http://"+*metrics+"/metrics")
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("ddexp: metrics server", "err", err)
			}
		}()
	}
	// shutdownObservability runs on every exit path (including failures) so
	// the listener is released and a partial trace still gets written.
	shutdownObservability := func() {
		if snap != nil {
			snap.Stop()
			f, err := os.Create(*traceOut)
			if err != nil {
				logger.Error("ddexp: trace-out", "err", err)
			} else {
				if err := snap.WriteChromeTrace(f); err != nil {
					logger.Error("ddexp: trace-out", "err", err)
				}
				f.Close()
				logger.Info("ddexp: wrote flight-recorder trace",
					"path", *traceOut, "samples", snap.Total())
			}
		}
		if metricsSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := metricsSrv.Shutdown(ctx); err != nil {
				logger.Warn("ddexp: metrics server shutdown", "err", err)
			}
		}
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
		shutdownObservability()
		os.Exit(1)
	}

	opt := exp.Defaults()
	if *paper {
		opt = exp.PaperScale()
	}
	if *scale > 0 {
		opt.Scale = *scale
	}
	if *reps > 0 {
		opt.Reps = *reps
	}
	if *only != "" {
		opt.Only = strings.Split(*only, ",")
	}
	if *useTW {
		opt.Producer = interp.TreeWalker{}
	}

	runners := map[string]func(exp.Options) error{
		"table1": func(o exp.Options) error { return render(exp.Table1(o)) },
		"table2": func(o exp.Options) error { return render(exp.Table2(o)) },
		"fig5":   func(o exp.Options) error { return render(exp.Fig5(o)) },
		"fig6":   func(o exp.Options) error { return render(exp.Fig6(o)) },
		"fig7":   func(o exp.Options) error { return render(exp.Fig7(o)) },
		"fig8":   func(o exp.Options) error { return render(exp.Fig8(o)) },
		"fig9": func(o exp.Options) error {
			tab, res, err := exp.Fig9(o)
			if err != nil {
				return err
			}
			tab.Render(os.Stdout)
			fmt.Println()
			fmt.Println(res.Heatmap)
			return nil
		},
		"eq2":   func(o exp.Options) error { return render(exp.Eq2(o)) },
		"merge": func(o exp.Options) error { return render(exp.MergeAblation(o)) },
		"stores": func(o exp.Options) error {
			if err := render(exp.StoreAblation(o)); err != nil {
				return err
			}
			return render(exp.StoreAccuracy(o))
		},
		"balance":    func(o exp.Options) error { return render(exp.Balance(o)) },
		"sweep":      func(o exp.Options) error { return render(exp.Sweep(o, "rotate")) },
		"throughput": func(o exp.Options) error { return render(exp.Throughput(o)) },
	}
	order := []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "eq2", "merge", "stores", "balance", "sweep", "throughput"}

	// runOne wraps a runner in a flight-recorder span so each experiment
	// shows up as a named slice on the trace timeline.
	runOne := func(name string, fn func(exp.Options) error) error {
		if snap != nil {
			end := snap.Span("experiment:" + name)
			defer end()
		}
		logger.Debug("ddexp: running experiment", "name", name)
		return fn(opt)
	}

	what := flag.Arg(0)
	if what == "all" {
		for _, name := range order {
			fmt.Printf("== %s ==\n", name)
			if err := runOne(name, runners[name]); err != nil {
				fail("ddexp %s: %v\n", name, err)
			}
			fmt.Println()
		}
		shutdownObservability()
		return
	}
	run, ok := runners[what]
	if !ok {
		fmt.Fprintf(os.Stderr, "ddexp: unknown experiment %q\n", what)
		os.Exit(2)
	}
	if err := runOne(what, run); err != nil {
		fail("ddexp: %v\n", err)
	}
	shutdownObservability()
}

// render prints a (table, rows, err) experiment result, discarding rows.
func render[T any](tab *report.Table, _ T, err error) error {
	if err != nil {
		return err
	}
	tab.Render(os.Stdout)
	return nil
}
