// Command ddexp regenerates the paper's tables and figures.
//
// Usage:
//
//	ddexp table1            # Table I  (FPR/FNR vs signature size)
//	ddexp table2            # Table II (parallelizable NAS loops)
//	ddexp fig5              # Figure 5 (sequential-target slowdowns)
//	ddexp fig6              # Figure 6 (parallel-target slowdowns)
//	ddexp fig7              # Figure 7 (memory, sequential targets)
//	ddexp fig8              # Figure 8 (memory, parallel targets)
//	ddexp fig9              # Figure 9 (water-spatial communication matrix)
//	ddexp eq2               # Equation (2) validation
//	ddexp merge             # dependence-merging ablation (§III-B)
//	ddexp stores            # signature vs hash table vs shadow memory (§III-B)
//	ddexp balance           # worker load balance: modulo vs redistribution vs round-robin
//	ddexp sweep             # full FPR/FNR-vs-signature-size curve (rotate)
//	ddexp throughput        # events/s per pipeline, hot path off vs on
//	ddexp all               # everything above
//
//	go test -bench BenchmarkHotPath . | ddexp -bench-label after benchjson
//	                        # parse benchmark output from stdin and append a
//	                        # labelled run to BENCH_pipeline.json (make bench)
//	go test -bench BenchmarkHotPath . | ddexp -bench-compare hotpath benchjson
//	                        # compare stdin against the recorded "hotpath" run
//	                        # and exit 1 on a >10% events/s regression
//	                        # (make bench-gate)
//
// Flags: -scale N (problem size multiplier), -paper (paper-scale signature
// sizes and repetitions), -only a,b,c (restrict to named workloads),
// -reps N (timing repetitions), -metrics addr (serve live pipeline counters
// over HTTP while the experiments run), -bench-json path and -bench-label
// name (destination file and run label for the benchjson subcommand).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"ddprof/internal/exp"
	"ddprof/internal/report"
	"ddprof/internal/telemetry"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0, "workload problem-size multiplier (0 = default)")
		paper   = flag.Bool("paper", false, "use the paper's signature sizes (1e6/1e7/1e8) and 3 timing reps")
		only    = flag.String("only", "", "comma-separated workload names to restrict to")
		reps    = flag.Int("reps", 0, "timing repetitions (0 = default)")
		metrics = flag.String("metrics", "", "HTTP address serving live /metrics while experiments run (e.g. :7078)")

		benchJSON    = flag.String("bench-json", "BENCH_pipeline.json", "destination file for the benchjson subcommand")
		benchLabel   = flag.String("bench-label", "run", "run label for the benchjson subcommand")
		benchCompare = flag.String("bench-compare", "", "compare stdin against this recorded run label instead of appending; exit 1 on regression")
		benchTol     = flag.Float64("bench-tolerance", 0.10, "events/s fraction a sub-benchmark may fall below the baseline before -bench-compare fails")
	)
	flag.Parse()
	if *metrics != "" {
		// Attach the same pipeline counters ddprofd exports to every profiler
		// the experiments build, and serve them for the run's duration.
		exp.Telemetry = telemetry.Default().Pipeline("pipeline")
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/metrics", telemetry.Default().Handler())
			log.Printf("ddexp: metrics on http://%s/metrics", *metrics)
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("ddexp: metrics server: %v", err)
			}
		}()
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ddexp [flags] table1|table2|fig5|fig6|fig7|fig8|fig9|eq2|merge|stores|balance|sweep|throughput|benchjson|all")
		os.Exit(2)
	}

	if flag.Arg(0) == "benchjson" {
		// Not an experiment: filter `go test -bench` output from stdin into
		// the append-only benchmark log the `make bench` gate reads.
		entries, err := exp.ParseBench(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddexp benchjson:", err)
			os.Exit(1)
		}
		if *benchCompare != "" {
			// Gate mode (make bench-gate): compare against a recorded run,
			// fail loudly on regression, record nothing.
			deltas, err := exp.CompareBench(*benchJSON, *benchCompare, entries, *benchTol)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ddexp benchjson:", err)
				os.Exit(1)
			}
			regressed := false
			for _, d := range deltas {
				verdict := "ok"
				if d.Regressed {
					verdict = "REGRESSED"
					regressed = true
				}
				fmt.Printf("%-12s %14.0f events/s vs %14.0f baseline (%5.1f%%)  %s\n",
					d.Name, d.Now, d.Base, 100*d.Ratio, verdict)
			}
			if regressed {
				fmt.Fprintf(os.Stderr, "ddexp benchjson: events/s regressed more than %.0f%% below run %q\n",
					100**benchTol, *benchCompare)
				os.Exit(1)
			}
			return
		}
		bf, err := exp.AppendBenchRun(*benchJSON, *benchLabel, entries)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddexp benchjson:", err)
			os.Exit(1)
		}
		for _, e := range entries {
			fmt.Printf("%s: recorded %-12s %14.0f events/s\n", *benchJSON, e.Name, e.EventsPerSec)
		}
		fmt.Printf("%s: %d run(s) on record\n", *benchJSON, len(bf.Runs))
		return
	}

	opt := exp.Defaults()
	if *paper {
		opt = exp.PaperScale()
	}
	if *scale > 0 {
		opt.Scale = *scale
	}
	if *reps > 0 {
		opt.Reps = *reps
	}
	if *only != "" {
		opt.Only = strings.Split(*only, ",")
	}

	runners := map[string]func(exp.Options) error{
		"table1": func(o exp.Options) error { return render(exp.Table1(o)) },
		"table2": func(o exp.Options) error { return render(exp.Table2(o)) },
		"fig5":   func(o exp.Options) error { return render(exp.Fig5(o)) },
		"fig6":   func(o exp.Options) error { return render(exp.Fig6(o)) },
		"fig7":   func(o exp.Options) error { return render(exp.Fig7(o)) },
		"fig8":   func(o exp.Options) error { return render(exp.Fig8(o)) },
		"fig9": func(o exp.Options) error {
			tab, res, err := exp.Fig9(o)
			if err != nil {
				return err
			}
			tab.Render(os.Stdout)
			fmt.Println()
			fmt.Println(res.Heatmap)
			return nil
		},
		"eq2":        func(o exp.Options) error { return render(exp.Eq2(o)) },
		"merge":      func(o exp.Options) error { return render(exp.MergeAblation(o)) },
		"stores":     func(o exp.Options) error { return render(exp.StoreAblation(o)) },
		"balance":    func(o exp.Options) error { return render(exp.Balance(o)) },
		"sweep":      func(o exp.Options) error { return render(exp.Sweep(o, "rotate")) },
		"throughput": func(o exp.Options) error { return render(exp.Throughput(o)) },
	}
	order := []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "eq2", "merge", "stores", "balance", "sweep", "throughput"}

	what := flag.Arg(0)
	if what == "all" {
		for _, name := range order {
			fmt.Printf("== %s ==\n", name)
			if err := runners[name](opt); err != nil {
				fmt.Fprintf(os.Stderr, "ddexp %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[what]
	if !ok {
		fmt.Fprintf(os.Stderr, "ddexp: unknown experiment %q\n", what)
		os.Exit(2)
	}
	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "ddexp:", err)
		os.Exit(1)
	}
}

// render prints a (table, rows, err) experiment result, discarding rows.
func render[T any](tab *report.Table, _ T, err error) error {
	if err != nil {
		return err
	}
	tab.Render(os.Stdout)
	return nil
}
