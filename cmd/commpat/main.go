// Command commpat derives the communication pattern of a multi-threaded
// workload from cross-thread RAW dependences — the paper's §VII-B use case
// (Figure 9).
//
// Usage:
//
//	commpat                          # water-spatial, 8 threads
//	commpat -workload kmeans -threads 4
package main

import (
	"flag"
	"fmt"
	"os"

	"ddprof"
	"ddprof/internal/workloads"
)

func main() {
	var (
		name    = flag.String("workload", "water-spatial", "parallel workload name")
		threads = flag.Int("threads", 8, "target threads")
		workers = flag.Int("workers", 8, "profiling worker threads")
		scale   = flag.Float64("scale", 1, "workload problem-size multiplier")
	)
	flag.Parse()

	cfg := workloads.Config{Scale: *scale, Threads: *threads}
	var prog *ddprof.Program
	if *name == "water-spatial" {
		prog = workloads.WaterSpatial(cfg)
	} else {
		w, ok := workloads.ByName(*name)
		if !ok || w.BuildParallel == nil {
			fmt.Fprintf(os.Stderr, "commpat: no parallel workload %q\n", *name)
			os.Exit(2)
		}
		prog = w.BuildParallel(cfg)
	}

	res, err := ddprof.Profile(prog, ddprof.Config{Mode: ddprof.ModeMT, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "commpat:", err)
		os.Exit(1)
	}
	m := res.Communication(*threads)
	fmt.Printf("communication pattern of %s (%d target threads):\n\n", prog.Name, *threads)
	fmt.Println(m.Heatmap())
	fmt.Printf("cross-thread RAW volume: %d instances\n", m.CrossThread())
	fmt.Printf("dependences flagged as potential data races: %d\n", res.Races)
}
