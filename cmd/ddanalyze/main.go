// Command ddanalyze runs the integrated program-analysis framework (paper
// §VIII) over one profiled workload: every registered plugin — parallelism
// discovery, hot dependences, communication matrix, race summary, dynamic
// call graph — reports against a single profiling run.
//
// Usage:
//
//	ddanalyze -workload CG
//	ddanalyze -workload kmeans -mt -threads 4
package main

import (
	"flag"
	"fmt"
	"os"

	"ddprof/internal/core"
	"ddprof/internal/framework"
	"ddprof/internal/interp"
	"ddprof/internal/vm"
	"ddprof/internal/workloads"
)

func main() {
	var (
		name    = flag.String("workload", "CG", "workload name")
		scale   = flag.Float64("scale", 1, "problem-size multiplier")
		mt      = flag.Bool("mt", false, "profile the pthread variant with the MT profiler")
		threads = flag.Int("threads", 4, "target threads for -mt")
		workers = flag.Int("workers", 8, "profiling worker threads")
		useTW   = flag.Bool("interp", false, "execute the target with the reference tree-walking interpreter instead of the bytecode VM")
	)
	flag.Parse()

	cfg := workloads.Config{Scale: *scale, Threads: *threads}
	w, ok := workloads.ByName(*name)
	var prog = workloads.WaterSpatial(cfg)
	switch {
	case *name == "water-spatial":
		*mt = true
	case !ok:
		fmt.Fprintf(os.Stderr, "ddanalyze: unknown workload %q\n", *name)
		os.Exit(2)
	case *mt:
		if w.BuildParallel == nil {
			fmt.Fprintf(os.Stderr, "ddanalyze: %q has no pthread variant\n", *name)
			os.Exit(2)
		}
		prog = w.BuildParallel(cfg)
	default:
		prog = w.Build(cfg)
	}

	ccfg := core.Config{Mode: core.ModeParallel, Workers: *workers, SlotsPerWorker: (1 << 21) / *workers, Meta: prog.Meta}
	iopt := interp.Options{}
	if *mt {
		ccfg.Mode = core.ModeMT
		iopt.Timestamps = true
	}
	prof, err := core.New(ccfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddanalyze:", err)
		os.Exit(2)
	}
	exec := interp.Executor(vm.New())
	if *useTW {
		exec = interp.TreeWalker{}
	}
	info, err := exec.Run(prog, prof, iopt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddanalyze:", err)
		os.Exit(1)
	}
	data := framework.New(prog, prof.Flush(), info)

	reg := framework.DefaultRegistry(*threads)
	out, err := reg.RunAll(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddanalyze:", err)
		os.Exit(1)
	}
	fmt.Printf("analysis of %s (%d accesses)\n\n%s", prog.Name, info.Accesses, out)
}
