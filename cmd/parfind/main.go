// Command parfind discovers potential loop parallelism in a workload from
// its profiled dependences — the DiscoPoP use case of the paper's §VII-A.
//
// Usage:
//
//	parfind -workload CG
//	parfind -workload BT -slots 1048576
package main

import (
	"flag"
	"fmt"
	"os"

	"ddprof"
	"ddprof/internal/report"
	"ddprof/internal/workloads"
)

func main() {
	var (
		name    = flag.String("workload", "CG", "workload name")
		scale   = flag.Float64("scale", 1, "workload problem-size multiplier")
		slots   = flag.Int("slots", 1<<21, "total signature slots")
		backend = flag.String("backend", "", "store backend spec: signature | perfect | shadow | hashtab | hybrid[:key=val,...]")
	)
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "parfind: unknown workload %q\n", *name)
		os.Exit(2)
	}
	prog := w.Build(workloads.Config{Scale: *scale})
	cfg := ddprof.Config{Mode: ddprof.ModeParallel, Slots: *slots, Backend: *backend}
	res, err := ddprof.Profile(prog, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parfind:", err)
		os.Exit(1)
	}

	tab := &report.Table{
		Title:   fmt.Sprintf("Loop parallelism in %s (from profiled dependences)", *name),
		Headers: []string{"loop", "OMP", "iterations", "carried RAW", "carried WAR/WAW", "verdict"},
	}
	identified, omp := 0, 0
	for _, l := range res.Loops {
		verdict := "sequential (carried RAW)"
		switch {
		case l.Parallelizable:
			verdict = "PARALLELIZABLE"
		case l.Reduction:
			verdict = "parallelizable with reduction"
		case l.DoacrossDistance >= 2:
			verdict = fmt.Sprintf("DOACROSS(%d): overlap up to %d iterations", l.DoacrossDistance, l.DoacrossDistance)
		}
		if l.Loop.OMP {
			omp++
			if l.Parallelizable {
				identified++
			}
		}
		tab.AddRow(l.Loop.Name, l.Loop.OMP, l.Iterations, l.CarriedRAW,
			fmt.Sprintf("%d/%d", l.CarriedWAR, l.CarriedWAW), verdict)
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("%d of %d OMP-annotated loops identified as parallelizable", identified, omp))
	tab.Render(os.Stdout)
}
