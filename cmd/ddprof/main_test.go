package main

import (
	"testing"

	"ddprof"
	"ddprof/internal/workloads"
)

func TestBuildTargetQuick(t *testing.T) {
	p, mt, err := buildTarget("quick", 1, 4, "serial")
	if err != nil || mt {
		t.Fatalf("quick: %v mt=%v", err, mt)
	}
	if _, err := ddprof.Run(p); err != nil {
		t.Fatalf("quick does not run: %v", err)
	}
}

func TestBuildTargetAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		p, mt, err := buildTarget(w.Name, 0.5, 4, "serial")
		if err != nil || mt || p == nil {
			t.Errorf("%s: %v mt=%v", w.Name, err, mt)
		}
	}
}

func TestBuildTargetMT(t *testing.T) {
	p, mt, err := buildTarget("kmeans", 0.5, 4, "mt")
	if err != nil || !mt || p == nil {
		t.Fatalf("kmeans mt: %v mt=%v", err, mt)
	}
	if _, mt, err := buildTarget("water-spatial", 0.5, 4, "mt"); err != nil || !mt {
		t.Fatalf("water-spatial: %v mt=%v", err, mt)
	}
}

func TestBuildTargetErrors(t *testing.T) {
	if _, _, err := buildTarget("no-such-workload", 1, 4, "serial"); err == nil {
		t.Error("unknown workload accepted")
	}
}
