// Command ddprof profiles a bundled benchmark program and prints its data
// dependences in the paper's output format (Figure 1 / Figure 3).
//
// Usage:
//
//	ddprof -workload kmeans                      # serial profiling
//	ddprof -file prog.ml                         # profile a minilang source file
//	ddprof -workload kmeans -mode parallel -workers 16
//	ddprof -workload kmeans -mode mt -threads 4  # profile the pthread variant
//	ddprof -workload kmeans -remote :7077        # profile on a ddprofd daemon
//	ddprof -remote :7077 -watch                  # watch a live session's epoch deltas
//	ddprof -workload kmeans -cpuprofile cpu.out  # profile the profiler
//	ddprof -list                                 # show available workloads
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"ddprof"
	"ddprof/internal/dep"
	"ddprof/internal/loc"
	"ddprof/internal/server"
	"ddprof/internal/trace"
	"ddprof/internal/workloads"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		name    = flag.String("workload", "quick", "workload name (see -list), or 'quick' for a demo loop")
		file    = flag.String("file", "", "profile a minilang source file instead of a bundled workload")
		mode    = flag.String("mode", "serial", "profiler mode: serial | parallel | lockbased | mt")
		workers = flag.Int("workers", 8, "profiling worker threads (parallel modes)")
		slots   = flag.Int("slots", 1<<21, "total signature slots")
		backend = flag.String("backend", "", "store backend spec: signature | perfect | shadow | hashtab | hybrid[:key=val,...] (default signature sized by -slots)")
		scale   = flag.Float64("scale", 1, "workload problem-size multiplier")
		threads = flag.Int("threads", 4, "target threads for -mode mt (pthread variants)")
		list    = flag.Bool("list", false, "list available workloads and exit")
		summary = flag.Bool("summary", false, "print only the summary, not the dependence dump")
		out     = flag.String("o", "", "write the dependence dump to a file instead of stdout")
		format  = flag.String("format", "text", "dump format: text (Figure 1/3) | binary")
		remote  = flag.String("remote", "", "profile on a ddprofd daemon: host:port or unix:/path.sock")
		frameKB = flag.Int("framebytes", 0, "with -remote: wire frame size in bytes (one trace-buffer flush = one frame; 0 = 64KiB default, capped by the daemon's -max-frame)")
		watch   = flag.Bool("watch", false, "with -remote: subscribe to a session's live epoch-delta stream instead of profiling")
		watchID = flag.Uint64("watch-session", 0, "with -watch: daemon session to observe (0 = newest active, waiting for the next when none is)")
		watchAt = flag.Uint64("watch-since", 0, "with -watch: catch up from this epoch (0 = the full profile so far)")
		useTW   = flag.Bool("interp", false, "execute the target with the reference tree-walking interpreter instead of the bytecode VM")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the profiler to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	if *watch {
		if *remote == "" {
			fmt.Fprintln(os.Stderr, "ddprof: -watch needs -remote (a ddprofd daemon to subscribe to)")
			return 2
		}
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ddprof:", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		return runWatch(*remote, *watchID, uint32(*watchAt), w, *summary, *format)
	}

	if *list {
		fmt.Println("available workloads:")
		for _, w := range workloads.All() {
			par := ""
			if w.BuildParallel != nil {
				par = " (has pthread variant)"
			}
			fmt.Printf("  %-14s %s%s\n", w.Name, w.Suite, par)
		}
		fmt.Println("  water-spatial  splash (pthread only)")
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddprof:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ddprof:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ddprof:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ddprof:", err)
			}
		}()
	}

	var prog *ddprof.Program
	var isMT bool
	var err error
	if *file != "" {
		src, rerr := os.ReadFile(*file)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "ddprof:", rerr)
			return 1
		}
		prog, err = ddprof.ParseTarget(*file, string(src))
	} else {
		prog, isMT, err = buildTarget(*name, *scale, *threads, *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddprof:", err)
		return 1
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddprof:", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	if *remote != "" {
		return runRemote(prog, isMT || *mode == "mt", w, *remote, *workers, *backend, *useTW, *summary, *format, *frameKB)
	}

	cfg := ddprof.Config{Workers: *workers, Slots: *slots, Backend: *backend, Interp: *useTW}
	switch *mode {
	case "serial":
		cfg.Mode = ddprof.ModeSerial
	case "parallel":
		cfg.Mode = ddprof.ModeParallel
	case "lockbased":
		cfg.Mode = ddprof.ModeParallelLockBased
	case "mt":
		cfg.Mode = ddprof.ModeMT
	default:
		fmt.Fprintf(os.Stderr, "ddprof: unknown mode %q\n", *mode)
		return 2
	}
	if isMT && cfg.Mode != ddprof.ModeMT {
		fmt.Fprintln(os.Stderr, "ddprof: note: profiling a multi-threaded target; forcing -mode mt")
		cfg.Mode = ddprof.ModeMT
	}

	res, err := ddprof.Profile(prog, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddprof:", err)
		return 1
	}
	if !*summary {
		switch *format {
		case "text":
			err = res.WriteDeps(w)
		case "binary":
			err = res.SaveBinary(w)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddprof:", err)
			return 1
		}
	}
	fmt.Printf("\n# %s: %d accesses, %d dependences (%d dynamic instances merged)\n",
		prog.Name, res.Accesses, res.Deps.Unique(), res.Deps.Instances())
	fmt.Printf("# parallelizable loops: %v\n", res.ParallelizableLoops())
	if cfg.Mode == ddprof.ModeMT {
		fmt.Printf("# dependences flagged as potential races: %d\n", res.Races)
	}
	if res.Stats.Migrations > 0 {
		fmt.Printf("# load balancing: %d migrations in %d redistribution rounds\n",
			res.Stats.Migrations, res.Stats.Redistributions)
	}
	return 0
}

// runRemote executes the target locally while streaming its trace to a
// ddprofd daemon, then renders the dependence set the daemon returned.
func runRemote(prog *ddprof.Program, mt bool, w io.Writer, addr string, workers int, backend string, useTW, summary bool, format string, frameBytes int) int {
	conn, err := server.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddprof:", err)
		return 1
	}
	defer conn.Close()
	rr, err := server.ProfileRemote(conn, prog, server.ClientOptions{
		Workers:    workers,
		Backend:    backend,
		MT:         mt,
		Interp:     useTW,
		FrameBytes: frameBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddprof:", err)
		return 1
	}
	if !summary {
		switch format {
		case "text":
			err = dep.Write(w, rr.Deps, prog.Tab, rr.LoopRecords,
				dep.WriterOptions{Threads: mt, MarkRaces: mt})
		case "binary":
			err = dep.Encode(w, rr.Deps, prog.Tab, rr.LoopRecords)
		default:
			err = fmt.Errorf("unknown format %q", format)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddprof:", err)
			return 1
		}
	}
	fmt.Printf("\n# %s: %d accesses streamed to %s, %d dependences (%d dynamic instances merged)\n",
		prog.Name, rr.Events, addr, rr.Deps.Unique(), rr.Deps.Instances())
	return 0
}

// runWatch subscribes to a daemon session's live observatory and renders the
// epoch-delta stream: one status line per frame, and — because the folded
// frames reconstruct the session's exact final profile — the full dependence
// dump once the final frame lands.
func runWatch(addr string, session uint64, since uint32, w io.Writer, summary bool, format string) int {
	conn, err := server.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddprof:", err)
		return 1
	}
	defer conn.Close()

	folded := dep.NewSet()
	var tab *loc.Table
	frames := 0
	err = server.Watch(conn, server.WatchOptions{Session: session, Since: since}, func(f trace.DeltaFrame) error {
		set, _, t, err := dep.Decode(bytes.NewReader(f.Payload))
		if err != nil {
			return fmt.Errorf("frame for epoch %d: %w", f.Epoch, err)
		}
		if t != nil {
			tab = t
		}
		folded.Merge(set)
		frames++
		tag := ""
		if f.Final {
			tag = " final:"
		}
		fmt.Fprintf(os.Stderr, "# epoch %d:%s %d dependences advanced, %d distinct so far (%d instances)\n",
			f.Epoch, tag, set.Unique(), folded.Unique(), folded.Instances())
		set.Release()
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddprof:", err)
		return 1
	}
	if !summary {
		switch format {
		case "text":
			err = dep.Write(w, folded, tab, nil, dep.WriterOptions{})
		case "binary":
			err = dep.Encode(w, folded, tab, nil)
		default:
			err = fmt.Errorf("unknown format %q", format)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddprof:", err)
			return 1
		}
	}
	fmt.Printf("\n# watch: %d delta frames from %s, %d dependences (%d dynamic instances merged)\n",
		frames, addr, folded.Unique(), folded.Instances())
	return 0
}

// buildTarget resolves a workload name to a program.
func buildTarget(name string, scale float64, threads int, mode string) (*ddprof.Program, bool, error) {
	if name == "quick" {
		p := ddprof.NewProgram("quick")
		p.MainFunc(func(b *ddprof.Block) {
			b.Decl("sum", ddprof.Ci(0))
			b.For("i", ddprof.Ci(0), ddprof.Ci(100), ddprof.Ci(1),
				ddprof.LoopOpt{Name: "demo"}, func(l *ddprof.Block) {
					l.Reduce("sum", ddprof.OpAdd, ddprof.V("i"))
				})
		})
		return p, false, nil
	}
	cfg := workloads.Config{Scale: scale, Threads: threads}
	if name == "water-spatial" {
		return workloads.WaterSpatial(cfg), true, nil
	}
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, false, fmt.Errorf("unknown workload %q (try -list)", name)
	}
	if mode == "mt" {
		if w.BuildParallel == nil {
			return nil, false, fmt.Errorf("workload %q has no multi-threaded variant", name)
		}
		return w.BuildParallel(cfg), true, nil
	}
	return w.Build(cfg), false, nil
}
