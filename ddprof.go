// Package ddprof is a generic data-dependence profiler for sequential and
// parallel programs — a reproduction of Li, Jannesari, Wolf, "An Efficient
// Data-Dependence Profiler for Sequential and Parallel Programs" (IPDPS
// 2015).
//
// The profiler records pair-wise RAW/WAR/WAW (+INIT) data dependences with
// source location, variable name and thread ID, together with runtime
// control-flow information, for both sequential and multi-threaded target
// programs. Space overhead is bounded by signatures (fixed hashed slot
// arrays borrowed from transactional memory); time overhead is reduced by a
// lock-free parallel pipeline that distributes memory accesses over worker
// threads by address.
//
// Target programs are written in minilang, a small imperative IR executed
// by an instrumenting interpreter (the stand-in for the paper's LLVM
// instrumentation — Go has no native-code instrumentation path). A minimal
// session:
//
//	p := ddprof.NewProgram("demo")
//	p.MainFunc(func(b *ddprof.Block) {
//		b.Decl("sum", ddprof.Ci(0))
//		b.For("i", ddprof.Ci(0), ddprof.Ci(100), ddprof.Ci(1),
//			ddprof.LoopOpt{Name: "sum"}, func(l *ddprof.Block) {
//			l.Reduce("sum", ddprof.OpAdd, ddprof.V("i"))
//		})
//	})
//	res, _ := ddprof.Profile(p, ddprof.Config{Mode: ddprof.ModeParallel, Workers: 8})
//	res.WriteDeps(os.Stdout)
//
// See examples/ for complete programs and cmd/ddexp for the paper's
// experiment suite.
package ddprof

import (
	"fmt"
	"io"

	"ddprof/internal/analysis"
	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/interp"
	"ddprof/internal/minilang"
	"ddprof/internal/trace"
	"ddprof/internal/vm"
)

// Program construction: the minilang builder surface.
type (
	// Program is a target program under construction or ready to profile.
	Program = minilang.Program
	// Block builds a statement list; see its methods.
	Block = minilang.Block
	// Expr is a minilang expression.
	Expr = minilang.Expr
	// LoopOpt carries per-loop metadata (name, OMP annotation).
	LoopOpt = minilang.LoopOpt
	// BinOp is a binary operator for Reduce/SetReduce.
	BinOp = minilang.BinOp
)

// Operators accepted by Block.Reduce and Block.SetReduce.
const (
	OpAdd = minilang.OpAdd
	OpMul = minilang.OpMul
)

// NewProgram starts an empty target program.
func NewProgram(name string) *Program { return minilang.New(name) }

// ParseTarget parses minilang source text into a target program — the text
// front-end alternative to the builder API. See minilang.ParseProgram for
// the syntax.
func ParseTarget(name, src string) (*Program, error) {
	return minilang.ParseProgram(name, src)
}

// Expression constructors, re-exported from minilang.
var (
	C     = minilang.C
	Ci    = minilang.Ci
	V     = minilang.V
	Idx   = minilang.Idx
	LenOf = minilang.LenOf
	Tid   = minilang.Tid
	Add   = minilang.Add
	Sub   = minilang.Sub
	Mul   = minilang.Mul
	Div   = minilang.Div
	IDiv  = minilang.IDiv
	Mod   = minilang.Mod
	BAnd  = minilang.BAnd
	BOr   = minilang.BOr
	Xor   = minilang.Xor
	Shl   = minilang.Shl
	Shr   = minilang.Shr
	Eq    = minilang.Eq
	Ne    = minilang.Ne
	Lt    = minilang.Lt
	Le    = minilang.Le
	Gt    = minilang.Gt
	Ge    = minilang.Ge
	And   = minilang.And
	Or    = minilang.Or
	Neg   = minilang.Neg
	Not   = minilang.Not
	CallE = minilang.CallE
)

// Mode selects the profiler architecture.
type Mode int

const (
	// ModeSerial profiles on the target's own thread (paper §III).
	ModeSerial Mode = iota
	// ModeParallel uses the lock-free chunked pipeline for sequential
	// targets (paper §IV).
	ModeParallel
	// ModeParallelLockBased is ModeParallel with mutex-protected queues —
	// the paper's Figure 5 ablation baseline.
	ModeParallelLockBased
	// ModeMT profiles multi-threaded targets: per-access pushes inside the
	// target's lock regions, timestamps, and data-race flagging (paper §V).
	ModeMT
)

// Config configures a profiling run.
type Config struct {
	// Mode defaults to ModeSerial.
	Mode Mode
	// Workers is the number of profiling threads (parallel modes;
	// default 8).
	Workers int
	// Slots is the total signature slot budget, split evenly over workers.
	// 0 selects 2^21 total. Backend specs with explicit slot parameters
	// override it.
	Slots int
	// Backend selects the access-history store by spec string, resolved
	// through the sig backend registry: "signature" (the default when
	// empty), "perfect", "shadow", "hashtab", or
	// "hybrid:slots=1m,exact=4096". Exact backends trade unbounded memory
	// for zero false positives; the hybrid keeps heavy-hitter addresses
	// exact and the long tail in signatures.
	Backend string
	// Redistribute checks heavy-hitter load balance every N chunks
	// (paper §IV-A: every 50,000 chunks, the default when 0); -1 disables
	// redistribution entirely.
	Redistribute int
	// SchedulerFuzz, when positive, makes the interpreter yield roughly
	// every N accesses per target thread (ModeMT only). On machines with
	// fewer cores than target threads this restores the interleavings real
	// parallel hardware exhibits, which the race-flagging experiment needs.
	SchedulerFuzz int
	// Interp executes the target with the reference tree-walking
	// interpreter instead of the default bytecode VM. Both producers emit
	// byte-identical event streams; the interpreter is slower but is the
	// semantics of record, kept selectable for differential debugging.
	Interp bool
}

// executor selects the event producer for cfg.
func (cfg Config) executor() interp.Executor {
	if cfg.Interp {
		return interp.TreeWalker{}
	}
	return vm.New()
}

// Result is a completed profile.
type Result struct {
	// Deps is the merged dependence set.
	Deps *dep.Set
	// Loops classifies every executed loop (parallelizable / reduction /
	// sequential).
	Loops []analysis.LoopReport
	// Accesses is the number of memory accesses profiled.
	Accesses uint64
	// Races is the number of dependences flagged as potential data races
	// (ModeMT only).
	Races int
	// Stats exposes pipeline counters (chunks, migrations, store bytes).
	Stats core.RunStats

	prog        *minilang.Program
	loopRecords []dep.LoopRecord
	threads     bool
}

// Profile executes the program under the configured profiler and returns
// the merged result.
func Profile(p *Program, cfg Config) (*Result, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = 1 << 21
	}
	redistribute := cfg.Redistribute
	switch {
	case redistribute == 0:
		redistribute = 50000 // the paper's interval
	case redistribute < 0:
		redistribute = 0 // disabled
	}
	ccfg := core.Config{
		Workers:           workers,
		SlotsPerWorker:    slots / workers,
		Backend:           cfg.Backend,
		Meta:              p.Meta,
		RedistributeEvery: redistribute,
	}
	iopt := interp.Options{}
	switch cfg.Mode {
	case ModeSerial:
		ccfg.Mode = core.ModeSerial
		ccfg.Workers = 1
		ccfg.SlotsPerWorker = slots
	case ModeParallel:
		ccfg.Mode = core.ModeParallel
	case ModeParallelLockBased:
		ccfg.Mode = core.ModeParallel
		ccfg.LockBased = true
	case ModeMT:
		ccfg.Mode = core.ModeMT
		iopt.Timestamps = true
		iopt.YieldEvery = cfg.SchedulerFuzz
	default:
		return nil, fmt.Errorf("ddprof: unknown mode %d", cfg.Mode)
	}
	prof, err := core.New(ccfg)
	if err != nil {
		return nil, fmt.Errorf("ddprof: %w", err)
	}
	info, err := cfg.executor().Run(p, prof, iopt)
	if err != nil {
		return nil, err
	}
	res := prof.Flush()
	out := &Result{
		Deps:        res.Deps,
		Loops:       analysis.DiscoverParallelism(p.Meta, res, info.LoopIters),
		Accesses:    info.Accesses,
		Stats:       res.Stats,
		prog:        p,
		loopRecords: info.LoopRecords,
		threads:     cfg.Mode == ModeMT,
	}
	res.Deps.Range(func(_ dep.Key, st dep.Stats) bool {
		if st.Reversed {
			out.Races++
		}
		return true
	})
	return out, nil
}

// ProfileUnion profiles several variants of a target (typically the same
// program built with different inputs) and merges all collected dependences
// — the paper's answer to input sensitivity (§I: "input sensitivity can be
// addressed by running the target program with changing inputs and computing
// the union of all collected dependences"). Loop reports are recomputed over
// the union: a loop is parallelizable only if no input exhibited a carried
// RAW.
func ProfileUnion(builds []func() *Program, cfg Config) (*Result, error) {
	if len(builds) == 0 {
		return nil, fmt.Errorf("ddprof: ProfileUnion needs at least one build")
	}
	var union *Result
	for _, build := range builds {
		res, err := Profile(build(), cfg)
		if err != nil {
			return nil, err
		}
		if union == nil {
			union = res
			continue
		}
		union.Deps.Merge(res.Deps)
		union.Accesses += res.Accesses
		union.Races += res.Races
		// Keep the pessimistic (union) loop verdicts: a loop must be clean
		// under every input.
		byName := make(map[string]int)
		for i, l := range union.Loops {
			byName[l.Loop.Name] = i
		}
		for _, l := range res.Loops {
			i, ok := byName[l.Loop.Name]
			if !ok {
				union.Loops = append(union.Loops, l)
				continue
			}
			u := &union.Loops[i]
			u.Iterations += l.Iterations
			u.CarriedRAW += l.CarriedRAW
			u.CarriedRAWRed += l.CarriedRAWRed
			u.CarriedWAR += l.CarriedWAR
			u.CarriedWAW += l.CarriedWAW
			u.Parallelizable = u.Parallelizable && l.Parallelizable
			u.Reduction = (u.Reduction || l.Reduction) && !u.Parallelizable &&
				u.CarriedRAW == u.CarriedRAWRed
		}
	}
	return union, nil
}

// RecordTrace executes the program once, writing its full access stream to
// w in the compact trace format. The trace can be profiled offline many
// times with ProfileTrace — run once, analyze often. The recording hook is
// wrapped in a trace.SyncWriter, so multi-threaded targets record safely.
func RecordTrace(p *Program, w io.Writer) (events uint64, err error) {
	tw, err := trace.NewWriter(w)
	if err != nil {
		return 0, err
	}
	sw := trace.NewSyncWriter(tw)
	if _, err := vm.New().Run(p, sw, interp.Options{}); err != nil {
		return 0, err
	}
	if err := sw.Close(); err != nil {
		return 0, err
	}
	return sw.Count(), nil
}

// ProfileTrace replays a recorded trace through a serial profiler with the
// configured store and returns the dependence set. Loop-carried
// classification needs the original program's loop table and is therefore
// not available from a bare trace; all dependences, counts, thread IDs and
// race flags are reproduced exactly.
func ProfileTrace(r io.Reader, cfg Config) (*dep.Set, error) {
	slots := cfg.Slots
	if slots <= 0 {
		slots = 1 << 21
	}
	ccfg := core.Config{
		SlotsPerWorker: slots,
		Backend:        cfg.Backend,
		RaceCheck:      cfg.Mode == ModeMT,
	}
	prof, err := core.New(ccfg)
	if err != nil {
		return nil, fmt.Errorf("ddprof: %w", err)
	}
	if _, err := trace.Replay(r, prof.Access); err != nil {
		return nil, err
	}
	return prof.Flush().Deps, nil
}

// Run executes the program natively (uninstrumented) and returns its final
// scalar variables — useful to check what the target computed.
func Run(p *Program) (map[string]float64, error) {
	info, err := vm.New().Run(p, nil, interp.Options{})
	if err != nil {
		return nil, err
	}
	return info.Vars, nil
}

// WriteDeps renders the dependences in the paper's text format (Figure 1
// for sequential targets, Figure 3 with thread IDs for ModeMT), including
// BGN/END control-flow records.
func (r *Result) WriteDeps(w io.Writer) error {
	return dep.Write(w, r.Deps, r.prog.Tab, r.loopRecords,
		dep.WriterOptions{Threads: r.threads, MarkRaces: r.threads})
}

// SaveBinary writes the profile (dependences, loop records, variable
// names) in the compact deterministic binary format; LoadProfile reads it
// back.
func (r *Result) SaveBinary(w io.Writer) error {
	return dep.Encode(w, r.Deps, r.prog.Tab, r.loopRecords)
}

// LoadProfile reads a binary profile written by Result.SaveBinary.
func LoadProfile(rd io.Reader) (*dep.Set, []dep.LoopRecord, error) {
	set, loops, _, err := dep.Decode(rd)
	return set, loops, err
}

// ParseProfile reads a text profile dump (the Figure 1/3 format produced by
// WriteDeps).
func ParseProfile(rd io.Reader) (*dep.Set, []dep.LoopRecord, error) {
	set, loops, _, err := dep.Parse(rd)
	return set, loops, err
}

// Communication returns the producer/consumer communication matrix over
// the given number of target threads (paper §VII-B).
func (r *Result) Communication(threads int) *analysis.CommMatrix {
	return analysis.Communication(r.Deps, threads)
}

// ParallelizableLoops returns the names of loops whose profiled
// dependences permit parallelization (no loop-carried RAW).
func (r *Result) ParallelizableLoops() []string {
	var out []string
	for _, l := range r.Loops {
		if l.Parallelizable {
			out = append(out, l.Loop.Name)
		}
	}
	return out
}
