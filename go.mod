module ddprof

go 1.22
