package ddprof_test

import (
	"strings"
	"testing"

	"ddprof"
)

// buildDemo constructs a program with one clean loop, one reduction and one
// recurrence.
func buildDemo() *ddprof.Program {
	p := ddprof.NewProgram("demo")
	p.MainFunc(func(b *ddprof.Block) {
		b.Decl("n", ddprof.Ci(200))
		b.DeclArr("a", ddprof.V("n"))
		b.Decl("sum", ddprof.Ci(0))
		b.For("i", ddprof.Ci(0), ddprof.V("n"), ddprof.Ci(1),
			ddprof.LoopOpt{Name: "fill", OMP: true}, func(l *ddprof.Block) {
				l.Set("a", ddprof.V("i"), ddprof.Mul(ddprof.V("i"), ddprof.Ci(3)))
			})
		b.For("i", ddprof.Ci(0), ddprof.V("n"), ddprof.Ci(1),
			ddprof.LoopOpt{Name: "sum", OMP: true}, func(l *ddprof.Block) {
				l.Reduce("sum", ddprof.OpAdd, ddprof.Idx("a", ddprof.V("i")))
			})
	})
	return p
}

func TestProfileModes(t *testing.T) {
	for _, mode := range []ddprof.Mode{
		ddprof.ModeSerial, ddprof.ModeParallel, ddprof.ModeParallelLockBased,
	} {
		res, err := ddprof.Profile(buildDemo(), ddprof.Config{Mode: mode, Workers: 4})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if res.Deps.Unique() == 0 || res.Accesses == 0 {
			t.Fatalf("mode %d: empty result", mode)
		}
		par := res.ParallelizableLoops()
		if len(par) != 1 || par[0] != "fill" {
			t.Errorf("mode %d: parallelizable = %v, want [fill]", mode, par)
		}
	}
}

func TestProfileExactMatchesSignature(t *testing.T) {
	exact, err := ddprof.Profile(buildDemo(), ddprof.Config{Backend: "perfect"})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := ddprof.Profile(buildDemo(), ddprof.Config{Slots: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Deps.Unique() != sig.Deps.Unique() {
		t.Errorf("exact %d deps vs signature %d", exact.Deps.Unique(), sig.Deps.Unique())
	}
}

func TestWriteDepsFormat(t *testing.T) {
	res, err := ddprof.Profile(buildDemo(), ddprof.Config{Backend: "perfect"})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteDeps(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"BGN loop", "END loop 200", "NOM", "{RAW", "{INIT *}", "|sum}"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNative(t *testing.T) {
	vars, err := ddprof.Run(buildDemo())
	if err != nil {
		t.Fatal(err)
	}
	if vars["sum"] != 3*199*200/2 {
		t.Errorf("sum = %v", vars["sum"])
	}
}

func TestMTModeRacesAndCommunication(t *testing.T) {
	p := ddprof.NewProgram("racy")
	p.MainFunc(func(b *ddprof.Block) {
		b.Decl("shared", ddprof.Ci(0))
		b.Spawn(4, func(s *ddprof.Block) {
			s.For("i", ddprof.Ci(0), ddprof.Ci(300), ddprof.Ci(1),
				ddprof.LoopOpt{Name: "unlocked"}, func(l *ddprof.Block) {
					// Unsynchronized read-modify-write: a data race.
					l.Assign("shared", ddprof.Add(ddprof.V("shared"), ddprof.Ci(1)))
				})
		})
	})
	res, err := ddprof.Profile(p, ddprof.Config{Mode: ddprof.ModeMT, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Communication(4)
	if m.Threads != 4 {
		t.Fatal("bad matrix")
	}
	// Cross-thread RAW on the shared counter must appear.
	if m.CrossThread() == 0 {
		t.Error("no cross-thread communication on a shared counter")
	}
}

// TestRaceFlaggingLockedVsUnlocked is the §V-B end-to-end check: the same
// shared-counter update yields reversed-timestamp dependences only when the
// mutex is removed. SchedulerFuzz makes the interleavings appear even on a
// single-core machine.
func TestRaceFlaggingLockedVsUnlocked(t *testing.T) {
	build := func(locked bool) *ddprof.Program {
		p := ddprof.NewProgram("counter")
		p.MainFunc(func(b *ddprof.Block) {
			b.Decl("counter", ddprof.Ci(0))
			b.Spawn(4, func(s *ddprof.Block) {
				s.For("i", ddprof.Ci(0), ddprof.Ci(1500), ddprof.Ci(1),
					ddprof.LoopOpt{Name: "inc"}, func(l *ddprof.Block) {
						inc := func(cr *ddprof.Block) {
							cr.Reduce("counter", ddprof.OpAdd, ddprof.Ci(1))
						}
						if locked {
							l.Lock("m", inc)
						} else {
							inc(l)
						}
					})
			})
		})
		return p
	}
	cfg := ddprof.Config{Mode: ddprof.ModeMT, Workers: 4, SchedulerFuzz: 7}
	lockedRes, err := ddprof.Profile(build(true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lockedRes.Races != 0 {
		t.Errorf("locked counter flagged %d races; mutual exclusion keeps access+push atomic", lockedRes.Races)
	}
	unlockedRes, err := ddprof.Profile(build(false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if unlockedRes.Races == 0 {
		t.Error("unlocked counter flagged no races under scheduler fuzz")
	}
}

// TestProfileUnion covers the §I input-sensitivity story: a loop that is
// clean under one input but carried under another must be reported as not
// parallelizable in the union.
func TestProfileUnion(t *testing.T) {
	// The loop copies a[i] = a[i+shift]; with shift=0 it is independent,
	// with shift=1 it reads the next element (carried WAR? no: reads
	// a[i+1] written in a later iteration => WAR; use a[i-1] to get RAW).
	build := func(lag int) func() *ddprof.Program {
		return func() *ddprof.Program {
			p := ddprof.NewProgram("union")
			p.MainFunc(func(b *ddprof.Block) {
				b.Decl("n", ddprof.Ci(50))
				b.DeclArr("a", ddprof.V("n"))
				b.For("i", ddprof.Ci(1), ddprof.V("n"), ddprof.Ci(1),
					ddprof.LoopOpt{Name: "copy", OMP: true}, func(l *ddprof.Block) {
						l.Set("a", ddprof.V("i"),
							ddprof.Add(ddprof.Idx("a", ddprof.Sub(ddprof.V("i"), ddprof.Ci(lag))), ddprof.Ci(1)))
					})
			})
			return p
		}
	}
	cfg := ddprof.Config{Backend: "perfect"}

	clean, err := ddprof.Profile(build(0)(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.ParallelizableLoops()) != 1 {
		t.Fatalf("lag-0 input should be parallelizable: %+v", clean.Loops)
	}

	union, err := ddprof.ProfileUnion([]func() *ddprof.Program{build(0), build(1)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(union.ParallelizableLoops()) != 0 {
		t.Errorf("union must be pessimistic: %v", union.ParallelizableLoops())
	}
	if union.Accesses <= clean.Accesses {
		t.Error("union should accumulate accesses across inputs")
	}

	if _, err := ddprof.ProfileUnion(nil, cfg); err == nil {
		t.Error("empty builds accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	res, err := ddprof.Profile(buildDemo(), ddprof.Config{Backend: "perfect"})
	if err != nil {
		t.Fatal(err)
	}
	var bin strings.Builder
	if err := res.SaveBinary(&bin); err != nil {
		t.Fatal(err)
	}
	set, loops, err := ddprof.LoadProfile(strings.NewReader(bin.String()))
	if err != nil {
		t.Fatal(err)
	}
	if set.Unique() != res.Deps.Unique() {
		t.Errorf("binary round trip lost deps: %d vs %d", set.Unique(), res.Deps.Unique())
	}
	if len(loops) != 2 {
		t.Errorf("loop records = %d, want 2", len(loops))
	}

	var txt strings.Builder
	if err := res.WriteDeps(&txt); err != nil {
		t.Fatal(err)
	}
	pset, ploops, err := ddprof.ParseProfile(strings.NewReader(txt.String()))
	if err != nil {
		t.Fatal(err)
	}
	if pset.Unique() != res.Deps.Unique() {
		t.Errorf("text round trip lost deps: %d vs %d", pset.Unique(), res.Deps.Unique())
	}
	if len(ploops) != 2 {
		t.Errorf("text loop records = %d", len(ploops))
	}
}

func TestBadMode(t *testing.T) {
	if _, err := ddprof.Profile(buildDemo(), ddprof.Config{Mode: ddprof.Mode(99)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRecordAndProfileTrace(t *testing.T) {
	var buf strings.Builder
	n, err := ddprof.RecordTrace(buildDemo(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events recorded")
	}
	live, err := ddprof.Profile(buildDemo(), ddprof.Config{Backend: "perfect"})
	if err != nil {
		t.Fatal(err)
	}
	set, err := ddprof.ProfileTrace(strings.NewReader(buf.String()), ddprof.Config{Backend: "perfect"})
	if err != nil {
		t.Fatal(err)
	}
	if set.Unique() != live.Deps.Unique() {
		t.Errorf("trace profile %d deps vs live %d", set.Unique(), live.Deps.Unique())
	}
	if set.Instances() != live.Deps.Instances() {
		t.Errorf("trace instances %d vs live %d", set.Instances(), live.Deps.Instances())
	}
}
