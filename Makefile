GO ?= go

.PHONY: all build vet test check fuzz

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# The full gate: what CI and pre-commit should run.
check: build vet test

# Short fuzz pass over the hardened decoders (trace, framing, server).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReplay -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzFrames -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzHandshake -fuzztime=10s ./internal/server/
