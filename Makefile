GO ?= go

.PHONY: all build vet test race check fmt-check fuzz smoke bench bench-producer bench-merge bench-store bench-remote bench-gate

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race pass over the concurrent subsystems. The full suite under -race is
# slow; the data races live in the pipelines, the queues, the daemon's
# session handling, the VM's spawned target threads, and the parallel tree
# merge over the dependence slabs, so that is where the detector earns its
# keep.
race:
	$(GO) test -race -count=1 ./internal/core/ ./internal/dep/ ./internal/hashtab/ ./internal/queue/ ./internal/server/ ./internal/shadow/ ./internal/stride/ ./internal/trace/ ./internal/vm/

# Formatting gate: fail with the offending diff if any file is not gofmt'd.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; gofmt -d .; exit 1; fi

# End-to-end daemon smoke: daemon up on a unix socket, one remote profiling
# session with a live -watch subscriber folding its epoch-delta stream, and a
# live HTTP diff against the retained session. Exercises the whole wire path
# the in-process tests cannot: real binaries, real sockets, real HTTP.
smoke:
	./scripts/smoke_ddprofd.sh

# The full gate: what CI and pre-commit should run.
check: build vet fmt-check test race smoke

# Hot-path throughput gate: run BenchmarkHotPath and append the events/s
# numbers to BENCH_pipeline.json under BENCH_LABEL, so regressions are
# visible against every recorded run (the committed baseline included).
BENCH_LABEL ?= local
bench:
	$(GO) test -run=^$$ -bench=BenchmarkHotPath -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/ddexp -bench-label $(BENCH_LABEL) benchjson

# Regression gate: fail if events/s drops more than 10% below the committed
# "hotpath" baseline run in BENCH_pipeline.json. -count=3 because the gate
# compares the best repeat per pipeline: the first iteration of a fresh
# process is routinely depressed by warm-up and frequency scaling. The
# baseline is machine-relative — a floor of attainable throughput on the
# machine that recorded it — so on new hardware re-record it first with
# `make bench BENCH_LABEL=hotpath`.
# Producer throughput: interpreter-vs-VM events/s across the three event-
# source families (raw production and no-op-sink delivery for each),
# recorded under the "producer" label. Re-record with this target after an
# intentional producer change, like `make bench BENCH_LABEL=hotpath` for
# the consumer side.
bench-producer:
	$(GO) test -run=^$$ -bench=BenchmarkProducer -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/ddexp -bench-label producer benchjson

# Merge-stage throughput: serial fold vs parallel tree reduction across the
# workers × distinct-deps × overlap matrix, recorded under the "merge"
# label. Re-record with this target after an intentional merge change.
bench-merge:
	$(GO) test -run=^$$ '-bench=^BenchmarkMerge$$/' -benchtime=1s -count=3 . \
		| $(GO) run ./cmd/ddexp -bench-label merge benchjson

# Store-layer throughput: the same dense stream through a serial pipeline
# under every access-history backend, recorded under the "store" label.
# Re-record with this target after an intentional store/backend change.
bench-store:
	$(GO) test -run=^$$ '-bench=^BenchmarkStore$$/' -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/ddexp -bench-label store benchjson

# Remote-ingest throughput: the daemon session path (loopback socket, framed
# DDT1, batched decode, bulk ingest) against the in-process twin, recorded
# under the "remote" label. Re-record with this target after an intentional
# ingest change. On a single-core machine the remote pairs carry the full
# client + socket + decode cost serialized onto one CPU; with spare cores the
# pipeline stages overlap and the remote/inproc gap shrinks.
bench-remote:
	$(GO) test -run=^$$ -bench=BenchmarkRemoteIngest -benchtime=2s -count=3 ./internal/server/ \
		| $(GO) run ./cmd/ddexp -bench-label remote benchjson

BENCH_BASELINE ?= hotpath
bench-gate:
	$(GO) test -run=^$$ -bench=BenchmarkHotPath -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/ddexp -bench-compare $(BENCH_BASELINE) benchjson
	$(GO) test -run=^$$ '-bench=BenchmarkProducer/.*/vm' -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/ddexp -bench-compare producer benchjson
	$(GO) test -run=^$$ '-bench=^BenchmarkMerge$$/.*/tree' -benchtime=1s -count=3 . \
		| $(GO) run ./cmd/ddexp -bench-compare merge benchjson
	$(GO) test -run=^$$ '-bench=^BenchmarkStore$$/' -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/ddexp -bench-compare store benchjson
	$(GO) test -run=^$$ -bench=BenchmarkRemoteIngest -benchtime=2s -count=3 ./internal/server/ \
		| $(GO) run ./cmd/ddexp -bench-compare remote benchjson

# Short fuzz pass over the hardened decoders (trace, framing, server), the
# dependence-set fast-update API the instance cache relies on, and the
# backend spec parser every -backend flag and DDT1 handshake goes through.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzBackendSpec -fuzztime=10s ./internal/sig/
	$(GO) test -run=^$$ -fuzz=FuzzReplay -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzRangeFrame -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzFrames -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzNextBatch -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzDeltaFrame -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzHandshake -fuzztime=10s ./internal/server/
	$(GO) test -run=^$$ -fuzz=FuzzFastUpdate -fuzztime=10s ./internal/dep/
	$(GO) test -run=^$$ -fuzz=FuzzSetMergeEquivalence -fuzztime=10s ./internal/dep/
	$(GO) test -run=^$$ -fuzz=FuzzVMEquivalence -fuzztime=10s ./internal/vm/
