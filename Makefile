GO ?= go

.PHONY: all build vet test race check fuzz bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race pass over the concurrent subsystems. The full suite under -race is
# slow; the data races live in the pipelines and the queues, so that is
# where the detector earns its keep.
race:
	$(GO) test -race -count=1 ./internal/core/ ./internal/queue/

# The full gate: what CI and pre-commit should run.
check: build vet test race

# Hot-path throughput gate: run BenchmarkHotPath and append the events/s
# numbers to BENCH_pipeline.json under BENCH_LABEL, so regressions are
# visible against every recorded run (the committed baseline included).
BENCH_LABEL ?= local
bench:
	$(GO) test -run=^$$ -bench=BenchmarkHotPath -benchtime=2s -count=1 . \
		| $(GO) run ./cmd/ddexp -bench-label $(BENCH_LABEL) benchjson

# Short fuzz pass over the hardened decoders (trace, framing, server) and
# the dependence-set fast-update API the instance cache relies on.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReplay -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzFrames -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzHandshake -fuzztime=10s ./internal/server/
	$(GO) test -run=^$$ -fuzz=FuzzFastUpdate -fuzztime=10s ./internal/dep/
