// Package interp executes minilang programs and instruments every memory
// access — the substitute for the paper's LLVM instrumentation pass.
//
// The interpreter assigns each scalar and array element a simulated byte
// address and, when a Hook is installed, reports every read and write with
// its address, source location, variable, thread ID, static loop context,
// packed iteration vector and (optionally) a global timestamp. With a nil
// Hook it performs the same computation without event construction — the
// "native" baseline the slowdown experiments divide by.
package interp

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/minilang"
	"ddprof/internal/prog"
)

// Hook receives one event per memory access; it is an alias of the shared
// event.Hook contract. core.Serial, core.Parallel and core.MT all satisfy it.
type Hook = event.Hook

// Options configure a run.
type Options struct {
	// Timestamps stamps every access from a global atomic counter —
	// required when profiling multi-threaded targets (§V-B). The stamp is
	// taken together with the hook call, inside whatever lock region the
	// target holds, reproducing the paper's Figure 4 atomicity.
	Timestamps bool
	// YieldEvery, when positive, yields the processor roughly every N
	// accesses per thread, between taking the timestamp and pushing the
	// event. On machines with few cores the Go scheduler otherwise runs
	// short thread bodies to completion, hiding the interleavings that
	// multi-threaded targets exhibit on real parallel hardware; the fuzz
	// restores them. Accesses inside a target lock region stay atomic with
	// their push (other threads block on the mutex), so properly
	// synchronized programs show no timestamp reversals even under fuzzing.
	YieldEvery int
}

// CallEdge is one dynamic caller→callee pair.
type CallEdge struct {
	Caller, Callee string
}

// RunInfo is returned after a successful run.
type RunInfo struct {
	// Accesses is the number of read/write accesses the program performed.
	Accesses uint64
	// LoopIters is the total iteration count per static loop.
	LoopIters map[prog.LoopID]uint64
	// LoopRecords lists executed loops in the profiler's output format.
	LoopRecords []dep.LoopRecord
	// Vars holds the final values of the main frame's scalars, so callers
	// can check that the target program computed something sensible.
	Vars map[string]float64
	// Calls counts dynamic invocations per function (main included, once).
	Calls map[string]uint64
	// CallEdges counts dynamic caller→callee invocations — the §VIII call
	// tree, collapsed to a call graph.
	CallEdges map[CallEdge]uint64
	// MaxCallDepth is the deepest dynamic call stack observed.
	MaxCallDepth int
}

// Run executes p's main function.
func Run(p *minilang.Program, hook Hook, opt Options) (info *RunInfo, err error) {
	main := p.Funcs["main"]
	if main == nil {
		return nil, fmt.Errorf("interp: program %q has no main", p.Name)
	}
	in := &interp{
		p:         p,
		hook:      hook,
		opt:       opt,
		ar:        NewArena(),
		mutexes:   make(map[string]*sync.Mutex),
		loopIters: make([]atomic.Uint64, len(p.Meta.Loops())),
		calls:     make(map[string]uint64),
		callEdges: make(map[CallEdge]uint64),
	}
	root := &frame{vars: make(map[string]*binding)}
	in.root = root
	t := &tstate{in: in, frame: root, fnStack: []string{"main"}}
	in.recordCall("", "main", 1)

	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	t.exec(main.Body)
	if e := in.threadErr.Load(); e != nil {
		return nil, *e
	}

	info = &RunInfo{
		Accesses:  in.accesses.Load() + t.accesses,
		LoopIters: make(map[prog.LoopID]uint64),
		Vars:      make(map[string]float64),
		Calls:     in.calls,
		CallEdges: in.callEdges,
	}
	info.MaxCallDepth = in.maxDepth
	for i := range in.loopIters {
		if n := in.loopIters[i].Load(); n > 0 {
			id := prog.LoopID(i)
			info.LoopIters[id] = n
			l := p.Meta.Loop(id)
			info.LoopRecords = append(info.LoopRecords, dep.LoopRecord{
				Begin: l.Begin, End: l.End, Iterations: n,
			})
		}
	}
	sort.Slice(info.LoopRecords, func(i, j int) bool {
		return info.LoopRecords[i].Begin < info.LoopRecords[j].Begin
	})
	for name, b := range root.vars {
		if !b.isArr {
			info.Vars[name] = in.ar.Load(b.base)
		}
	}
	in.ar.Recycle()
	return info, nil
}

// interp is the shared state of one run.
type interp struct {
	p    *minilang.Program
	hook Hook
	opt  Options
	ar   *Arena

	muMu    sync.Mutex
	mutexes map[string]*sync.Mutex

	callMu    sync.Mutex
	calls     map[string]uint64
	callEdges map[CallEdge]uint64
	maxDepth  int

	ts        atomic.Uint64
	accesses  atomic.Uint64 // accesses of joined threads
	loopIters []atomic.Uint64
	root      *frame
	threadErr atomic.Pointer[error]
}

// recordCall tallies one dynamic invocation; depth updates the high-water
// mark.
func (in *interp) recordCall(caller, callee string, depth int) {
	in.callMu.Lock()
	in.calls[callee]++
	if caller != "" {
		in.callEdges[CallEdge{Caller: caller, Callee: callee}]++
	}
	if depth > in.maxDepth {
		in.maxDepth = depth
	}
	in.callMu.Unlock()
}

func (in *interp) mutex(name string) *sync.Mutex {
	in.muMu.Lock()
	defer in.muMu.Unlock()
	m := in.mutexes[name]
	if m == nil {
		m = new(sync.Mutex)
		in.mutexes[name] = m
	}
	return m
}

// binding is a variable's storage.
type binding struct {
	base  uint64 // word index
	words int
	varID loc.VarID
	isArr bool
}

// frame is a lexical scope.
type frame struct {
	parent *frame
	vars   map[string]*binding
}

func (f *frame) lookup(name string) (*frame, *binding) {
	for s := f; s != nil; s = s.parent {
		if b, ok := s.vars[name]; ok {
			return s, b
		}
	}
	return nil, nil
}

// tstate is the per-target-thread execution state.
type tstate struct {
	in       *interp
	id       int32
	frame    *frame
	bar      *Barrier
	iters    []uint32
	vec      uint64
	accesses uint64
	ret      float64
	fnStack  []string
}

func (t *tstate) fail(format string, args ...any) {
	panic(RuntimeError{fmt.Sprintf(format, args...)})
}

// emit reports one access to the hook.
func (t *tstate) emit(kind event.Kind, w uint64, ln loc.SourceLoc, v loc.VarID, ctx uint32, fl event.Flags) {
	if kind != event.Remove {
		t.accesses++
	}
	if t.in.hook == nil {
		return
	}
	a := event.Access{
		Addr:    AddrOf(w),
		IterVec: t.vec,
		Loc:     ln,
		Var:     v,
		CtxID:   ctx,
		Thread:  t.id,
		Kind:    kind,
		Flags:   fl,
	}
	if t.in.opt.Timestamps {
		a.TS = t.in.ts.Add(1)
	}
	if y := t.in.opt.YieldEvery; y > 0 && t.accesses%uint64(y) == uint64(t.id)%uint64(y) {
		runtime.Gosched()
	}
	t.in.hook.Access(a)
}

// loadWord reads a word and reports the access.
func (t *tstate) loadWord(w uint64, ln loc.SourceLoc, v loc.VarID, ctx uint32, fl event.Flags) float64 {
	val := t.in.ar.Load(w)
	t.emit(event.Read, w, ln, v, ctx, fl)
	return val
}

// storeWord writes a word and reports the access.
func (t *tstate) storeWord(w uint64, val float64, ln loc.SourceLoc, v loc.VarID, ctx uint32, fl event.Flags) {
	t.in.ar.Store(w, val)
	t.emit(event.Write, w, ln, v, ctx, fl)
}

// pushLoop/popLoop/setIter maintain the iteration vector.
func (t *tstate) pushLoop() {
	t.iters = append(t.iters, 0)
	t.vec = event.PackIterVec(t.iters)
}

func (t *tstate) popLoop() {
	t.iters = t.iters[:len(t.iters)-1]
	t.vec = event.PackIterVec(t.iters)
}

func (t *tstate) setIter(n uint32) {
	t.iters[len(t.iters)-1] = n
	t.vec = event.PackIterVec(t.iters)
}

// declScalar finds or allocates a scalar binding in the current frame.
func (t *tstate) declScalar(name string) *binding {
	if b, ok := t.frame.vars[name]; ok && !b.isArr {
		return b
	}
	b := &binding{base: t.in.ar.Alloc(1), words: 1, varID: t.in.p.Tab.Var(name)}
	t.frame.vars[name] = b
	return b
}

// scalar resolves a scalar variable for read/write.
func (t *tstate) scalar(name string) *binding {
	_, b := t.frame.lookup(name)
	if b == nil {
		t.fail("undefined variable %q", name)
	}
	if b.isArr {
		t.fail("variable %q is an array", name)
	}
	return b
}

// array resolves an array variable.
func (t *tstate) array(name string) *binding {
	_, b := t.frame.lookup(name)
	if b == nil {
		t.fail("undefined array %q", name)
	}
	if !b.isArr {
		t.fail("variable %q is a scalar", name)
	}
	return b
}

// exec runs a statement list; it reports whether a Return unwound.
func (t *tstate) exec(stmts []minilang.Stmt) bool {
	for _, s := range stmts {
		if t.execStmt(s) {
			return true
		}
	}
	return false
}

func (t *tstate) execStmt(s minilang.Stmt) bool {
	ln, ctx := s.Pos()
	switch st := s.(type) {
	case *minilang.DeclStmt:
		b := t.declScalar(st.Name)
		v := t.eval(st.Init, ln, ctx)
		t.storeWord(b.base, v, ln, b.varID, ctx, 0)

	case *minilang.DeclArrStmt:
		size := int(t.eval(st.Size, ln, ctx))
		if size <= 0 {
			t.fail("array %q size %d", st.Name, size)
		}
		if b, ok := t.frame.vars[st.Name]; ok && b.isArr && b.words == size {
			return false // reuse the existing allocation
		}
		b := &binding{base: t.in.ar.Alloc(size), words: size, varID: t.in.p.Tab.Var(st.Name), isArr: true}
		t.frame.vars[st.Name] = b

	case *minilang.AssignStmt:
		b := t.scalar(st.Name)
		var v float64
		if st.Reduction {
			v = t.evalReduction(st.Val, b.base, ln, b.varID, ctx)
		} else {
			v = t.eval(st.Val, ln, ctx)
		}
		t.storeWord(b.base, v, ln, b.varID, ctx, redFlag(st.Reduction))

	case *minilang.AssignIdxStmt:
		b := t.array(st.Name)
		i := t.index(b, st.Name, st.Idx, ln, ctx)
		var v float64
		if st.Reduction {
			v = t.evalReduction(st.Val, b.base+uint64(i), ln, b.varID, ctx)
		} else {
			v = t.eval(st.Val, ln, ctx)
		}
		t.storeWord(b.base+uint64(i), v, ln, b.varID, ctx, redFlag(st.Reduction))

	case *minilang.ForStmt:
		return t.execFor(st)

	case *minilang.WhileStmt:
		return t.execWhile(st)

	case *minilang.IfStmt:
		if t.eval(st.Cond, ln, ctx) != 0 {
			return t.exec(st.Then)
		}
		return t.exec(st.Else)

	case *minilang.CallStmt:
		t.call(st.Fn, st.Args, ln, ctx)

	case *minilang.ReturnStmt:
		if st.Val != nil {
			t.ret = t.eval(st.Val, ln, ctx)
		} else {
			t.ret = 0
		}
		return true

	case *minilang.FreeStmt:
		f, b := t.frame.lookup(st.Name)
		if b == nil {
			t.fail("free of undefined %q", st.Name)
		}
		for w := 0; w < b.words; w++ {
			t.emit(event.Remove, b.base+uint64(w), ln, b.varID, ctx, 0)
		}
		t.in.ar.Release(b.base, b.words)
		delete(f.vars, st.Name)

	case *minilang.SpawnStmt:
		t.execSpawn(st)

	case *minilang.LockStmt:
		mu := t.in.mutex(st.Mutex)
		mu.Lock()
		r := t.exec(st.Body)
		mu.Unlock()
		return r

	case *minilang.BarrierStmt:
		if t.bar == nil {
			t.fail("barrier outside spawn")
		}
		t.bar.Wait()

	default:
		t.fail("unknown statement %T", s)
	}
	return false
}

// index evaluates and bounds-checks an array index.
func (t *tstate) index(b *binding, name string, e minilang.Expr, ln loc.SourceLoc, ctx uint32) int {
	i := int(t.eval(e, ln, ctx))
	if i < 0 || i >= b.words {
		t.fail("index %d out of range [0,%d) for %q at %v", i, b.words, name, ln)
	}
	return i
}

// evalReduction evaluates "x = x ⊕ e" marking the read of x as a reduction
// access. w is x's word.
func (t *tstate) evalReduction(val minilang.Expr, w uint64, ln loc.SourceLoc, v loc.VarID, ctx uint32) float64 {
	be, ok := val.(*minilang.BinExpr)
	if !ok {
		t.fail("reduction value is not a binary expression")
	}
	lv := t.loadWord(w, ln, v, ctx, event.FlagReduction)
	rv := t.eval(be.R, ln, ctx)
	return apply(be.Op, lv, rv, t)
}

func (t *tstate) execFor(st *minilang.ForStmt) bool {
	ln, ctx := st.Pos()
	b := t.declScalar(st.Var)
	t.storeWord(b.base, t.eval(st.From, ln, ctx), ln, b.varID, ctx, event.FlagInduction)
	t.pushLoop()
	var n uint32
	returned := false
	for {
		// The condition check and the increment are attributed to the
		// iteration they begin (i_{k+1} = i_k + step evaluated at the top
		// of iteration k+1). Body reads of the induction variable then see
		// a same-iteration write, so induction updates never register as
		// carried RAW — they are loop control, which parallelization
		// replaces, not a parallelism-preventing dependence. The carried
		// WAR/WAW on the induction variable remain visible (Figure 1's
		// {RAW i} {WAR i} records at the loop line are still produced).
		cur := t.loadWord(b.base, ln, b.varID, st.BodyCtx, event.FlagInduction)
		if cur >= t.eval(st.To, ln, st.BodyCtx) {
			break
		}
		if t.exec(st.Body) {
			returned = true
			break
		}
		n++
		t.setIter(n)
		cur = t.loadWord(b.base, ln, b.varID, st.BodyCtx, event.FlagInduction)
		t.storeWord(b.base, cur+t.eval(st.Step, ln, st.BodyCtx), ln, b.varID, st.BodyCtx, event.FlagInduction)
	}
	t.popLoop()
	t.in.loopIters[st.Loop].Add(uint64(n))
	return returned
}

func (t *tstate) execWhile(st *minilang.WhileStmt) bool {
	ln, ctx := st.Pos()
	t.pushLoop()
	var n uint32
	returned := false
	for t.eval(st.Cond, ln, ctx) != 0 {
		t.setIter(n)
		if t.exec(st.Body) {
			returned = true
			break
		}
		n++
	}
	t.popLoop()
	t.in.loopIters[st.Loop].Add(uint64(n))
	return returned
}

func (t *tstate) execSpawn(st *minilang.SpawnStmt) {
	if t.bar != nil {
		t.fail("nested spawn")
	}
	bar := NewBarrier(st.Threads)
	var wg sync.WaitGroup
	for tid := 0; tid < st.Threads; tid++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			ts := &tstate{
				in:      t.in,
				id:      tid,
				frame:   &frame{parent: t.frame, vars: make(map[string]*binding)},
				bar:     bar,
				iters:   append([]uint32(nil), t.iters...),
				vec:     t.vec,
				fnStack: append([]string(nil), t.fnStack...),
			}
			defer func() {
				t.in.accesses.Add(ts.accesses)
				if r := recover(); r != nil {
					if re, ok := r.(RuntimeError); ok {
						e := error(re)
						t.in.threadErr.CompareAndSwap(nil, &e)
						bar.Abort()
						return
					}
					panic(r)
				}
			}()
			ts.exec(st.Body)
		}(int32(tid))
	}
	wg.Wait()
	if e := t.in.threadErr.Load(); e != nil {
		panic(RuntimeError{(*e).Error()})
	}
}

// call invokes a user function and returns its result.
func (t *tstate) call(fn string, args []minilang.Expr, ln loc.SourceLoc, ctx uint32) float64 {
	f := t.in.p.Funcs[fn]
	if f == nil {
		t.fail("call to undefined function %q", fn)
	}
	if len(args) != len(f.Params) {
		t.fail("function %q wants %d args, got %d", fn, len(f.Params), len(args))
	}
	caller := "main"
	if len(t.fnStack) > 0 {
		caller = t.fnStack[len(t.fnStack)-1]
	}
	t.fnStack = append(t.fnStack, fn)
	t.in.recordCall(caller, fn, len(t.fnStack))
	defer func() { t.fnStack = t.fnStack[:len(t.fnStack)-1] }()
	// Functions see their params, their locals and the root (main) frame —
	// C file-scope visibility.
	nf := &frame{parent: t.in.root, vars: make(map[string]*binding)}
	for i, prm := range f.Params {
		if ve, ok := args[i].(*minilang.VarExpr); ok {
			if _, b := t.frame.lookup(ve.Name); b != nil && b.isArr {
				nf.vars[prm] = b // arrays pass by reference
				continue
			}
		}
		v := t.eval(args[i], ln, ctx)
		b := &binding{base: t.in.ar.Alloc(1), words: 1, varID: t.in.p.Tab.Var(prm)}
		nf.vars[prm] = b
		t.storeWord(b.base, v, ln, b.varID, ctx, 0)
	}
	saved := t.frame
	t.frame = nf
	t.ret = 0
	t.exec(f.Body)
	// Release parameter/local scalars? Locals persist per call frame and
	// are garbage at return; free their storage so recursive call chains
	// don't leak simulated memory. Array locals allocated inside the
	// function are released too; aliased parameter arrays are not.
	// Release in sorted name order: map iteration order would permute the
	// arena free lists between runs, making simulated addresses — and with
	// them every captured access stream — nondeterministic.
	names := make([]string, 0, len(nf.vars))
	for name := range nf.vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := nf.vars[name]
		aliased := false
		if b.isArr {
			for i, prm := range f.Params {
				if prm != name {
					continue
				}
				if ve, ok := args[i].(*minilang.VarExpr); ok {
					if _, ob := saved.lookup(ve.Name); ob == b {
						aliased = true
					}
				}
			}
		}
		if !aliased {
			t.in.ar.Release(b.base, b.words)
		}
	}
	t.frame = saved
	return t.ret
}

// eval evaluates an expression; memory reads are attributed to line ln and
// context ctx.
func (t *tstate) eval(e minilang.Expr, ln loc.SourceLoc, ctx uint32) float64 {
	switch ex := e.(type) {
	case *minilang.ConstExpr:
		return ex.V
	case *minilang.VarExpr:
		b := t.scalar(ex.Name)
		return t.loadWord(b.base, ln, b.varID, ctx, 0)
	case *minilang.IndexExpr:
		b := t.array(ex.Name)
		i := t.index(b, ex.Name, ex.Idx, ln, ctx)
		return t.loadWord(b.base+uint64(i), ln, b.varID, ctx, 0)
	case *minilang.LenExpr:
		b := t.array(ex.Name)
		return float64(b.words)
	case *minilang.BinExpr:
		if ex.Op == minilang.OpAnd {
			if t.eval(ex.L, ln, ctx) == 0 {
				return 0
			}
			return boolTo(t.eval(ex.R, ln, ctx) != 0)
		}
		if ex.Op == minilang.OpOr {
			if t.eval(ex.L, ln, ctx) != 0 {
				return 1
			}
			return boolTo(t.eval(ex.R, ln, ctx) != 0)
		}
		l := t.eval(ex.L, ln, ctx)
		r := t.eval(ex.R, ln, ctx)
		return apply(ex.Op, l, r, t)
	case *minilang.UnExpr:
		v := t.eval(ex.X, ln, ctx)
		if ex.Op == minilang.OpNeg {
			return -v
		}
		return boolTo(v == 0)
	case *minilang.CallExpr:
		if fn, ok := builtins[ex.Fn]; ok {
			vals := make([]float64, len(ex.Args))
			for i, a := range ex.Args {
				vals[i] = t.eval(a, ln, ctx)
			}
			return fn(t, vals)
		}
		return t.call(ex.Fn, ex.Args, ln, ctx)
	case *minilang.TidExpr:
		return float64(t.id)
	}
	t.fail("unknown expression %T", e)
	return 0
}

// redFlag converts a statement's reduction mark to access flags.
func redFlag(r bool) event.Flags {
	if r {
		return event.FlagReduction
	}
	return 0
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// apply computes a non-short-circuit binary operation.
func apply(op minilang.BinOp, l, r float64, t *tstate) float64 {
	switch op {
	case minilang.OpAdd:
		return l + r
	case minilang.OpSub:
		return l - r
	case minilang.OpMul:
		return l * r
	case minilang.OpDiv:
		if r == 0 {
			t.fail("division by zero")
		}
		return l / r
	case minilang.OpIDiv:
		if int64(r) == 0 {
			t.fail("integer division by zero")
		}
		return float64(int64(l) / int64(r))
	case minilang.OpMod:
		if int64(r) == 0 {
			t.fail("modulo by zero")
		}
		return float64(int64(l) % int64(r))
	case minilang.OpBAnd:
		return float64(int64(l) & int64(r))
	case minilang.OpBOr:
		return float64(int64(l) | int64(r))
	case minilang.OpXor:
		return float64(int64(l) ^ int64(r))
	case minilang.OpShl:
		return float64(int64(l) << (uint64(r) & 63))
	case minilang.OpShr:
		return float64(int64(l) >> (uint64(r) & 63))
	case minilang.OpEq:
		return boolTo(l == r)
	case minilang.OpNe:
		return boolTo(l != r)
	case minilang.OpLt:
		return boolTo(l < r)
	case minilang.OpLe:
		return boolTo(l <= r)
	case minilang.OpGt:
		return boolTo(l > r)
	case minilang.OpGe:
		return boolTo(l >= r)
	}
	t.fail("unknown operator %d", op)
	return 0
}

// builtins are pure math functions; they never touch simulated memory.
var builtins = map[string]func(*tstate, []float64) float64{
	"sqrt":  func(t *tstate, a []float64) float64 { need(t, a, 1, "sqrt"); return math.Sqrt(a[0]) },
	"abs":   func(t *tstate, a []float64) float64 { need(t, a, 1, "abs"); return math.Abs(a[0]) },
	"floor": func(t *tstate, a []float64) float64 { need(t, a, 1, "floor"); return math.Floor(a[0]) },
	"ceil":  func(t *tstate, a []float64) float64 { need(t, a, 1, "ceil"); return math.Ceil(a[0]) },
	"sin":   func(t *tstate, a []float64) float64 { need(t, a, 1, "sin"); return math.Sin(a[0]) },
	"cos":   func(t *tstate, a []float64) float64 { need(t, a, 1, "cos"); return math.Cos(a[0]) },
	"exp":   func(t *tstate, a []float64) float64 { need(t, a, 1, "exp"); return math.Exp(a[0]) },
	"log":   func(t *tstate, a []float64) float64 { need(t, a, 1, "log"); return math.Log(a[0]) },
	"pow":   func(t *tstate, a []float64) float64 { need(t, a, 2, "pow"); return math.Pow(a[0], a[1]) },
	"min":   func(t *tstate, a []float64) float64 { need(t, a, 2, "min"); return math.Min(a[0], a[1]) },
	"max":   func(t *tstate, a []float64) float64 { need(t, a, 2, "max"); return math.Max(a[0], a[1]) },
}

func need(t *tstate, a []float64, n int, fn string) {
	if len(a) != n {
		t.fail("builtin %q wants %d args, got %d", fn, n, len(a))
	}
}
