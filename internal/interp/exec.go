package interp

import (
	"sync"

	"ddprof/internal/event"
	"ddprof/internal/minilang"
)

// Executor is the contract both instrumentation producers implement: the
// tree-walking interpreter in this package (the reference semantics) and the
// bytecode VM in internal/vm (the fast path). Given the same program, hook
// and options, conforming executors must emit byte-identical event streams —
// pinned by the golden-profile suite and the differential fuzzer.
type Executor interface {
	// Name identifies the executor in flags and benchmark labels.
	Name() string
	// Run executes p's main function, reporting every memory access to hook
	// (nil for a native, uninstrumented run).
	Run(p *minilang.Program, hook event.Hook, opt Options) (*RunInfo, error)
}

// TreeWalker is the reference Executor: the direct AST interpreter.
type TreeWalker struct{}

// Name implements Executor.
func (TreeWalker) Name() string { return "interp" }

// Run implements Executor.
func (TreeWalker) Run(p *minilang.Program, hook event.Hook, opt Options) (*RunInfo, error) {
	return Run(p, hook, opt)
}

// Barrier is a reusable (cyclic) barrier for Spawn bodies. It is shared by
// both executors so thread scheduling (arrival order, abort-on-error) stays
// identical regardless of producer.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
	dead  bool
}

// NewBarrier returns a barrier for n threads.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n threads have arrived, then releases the
// generation. It panics with a RuntimeError after Abort.
func (b *Barrier) Wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		panic(RuntimeError{"barrier aborted"})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.dead {
		b.cond.Wait()
	}
	if b.dead {
		panic(RuntimeError{"barrier aborted"})
	}
}

// Abort releases all waiters after a thread failed.
func (b *Barrier) Abort() {
	b.mu.Lock()
	b.dead = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
