package interp

import (
	"math"
	"math/rand"
	"testing"

	. "ddprof/internal/minilang"
	"ddprof/internal/testgen"
)

// TestExpressionSemanticsProperty evaluates 300 random expression trees
// (from the shared testgen harness) in minilang and compares against the
// Go reference evaluation.
func TestExpressionSemanticsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20150512)) // the paper's conference date
	for trial := 0; trial < 300; trial++ {
		env := map[string]float64{
			"x": float64(r.Intn(201) - 100),
			"y": float64(r.Intn(201) - 100),
			"z": float64(r.Intn(11)),
		}
		ex, ref := testgen.Expr(r, 4, env)
		p := New("prop")
		p.MainFunc(func(b *Block) {
			b.Decl("x", C(env["x"]))
			b.Decl("y", C(env["y"]))
			b.Decl("z", C(env["z"]))
			b.Decl("result", ex)
		})
		info, err := Run(p, nil, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := ref()
		got := info.Vars["result"]
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: minilang %v, reference %v (env %v)", trial, got, want, env)
		}
	}
}

// TestAccessCountInvariant: the hook must be called exactly Accesses times
// regardless of program shape, and native/hooked runs must agree on both
// the computation and the count.
func TestAccessCountInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 10 + r.Intn(40)
		build := func() *Program {
			p := New("count")
			p.MainFunc(func(b *Block) {
				b.Decl("acc", Ci(0))
				b.DeclArr("a", Ci(n))
				b.For("i", Ci(0), Ci(n), Ci(1), LoopOpt{}, func(l *Block) {
					l.Set("a", V("i"), Mul(V("i"), Ci(3)))
					l.If(Eq(Mod(V("i"), Ci(2)), Ci(0)), func(tb *Block) {
						tb.Reduce("acc", OpAdd, Idx("a", V("i")))
					}, nil)
				})
			})
			return p
		}
		nat, err := Run(build(), nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h := &countingHook{}
		hook, err := Run(build(), h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if nat.Accesses != hook.Accesses || uint64(h.n) != hook.Accesses {
			t.Fatalf("trial %d: native %d, hooked %d, hook calls %d",
				trial, nat.Accesses, hook.Accesses, h.n)
		}
		if nat.Vars["acc"] != hook.Vars["acc"] {
			t.Fatalf("trial %d: computation diverged under instrumentation", trial)
		}
	}
}

// TestDeepLoopNests: iteration vectors track only four levels; deeper nests
// must still classify correctly for the four innermost loops and degrade
// conservatively beyond.
func TestDeepLoopNests(t *testing.T) {
	p := New("deep")
	p.MainFunc(func(b *Block) {
		b.Decl("acc", Ci(0))
		var nest func(bb *Block, depth int)
		nest = func(bb *Block, depth int) {
			if depth == 0 {
				bb.Reduce("acc", OpAdd, Ci(1))
				return
			}
			bb.For("i"+string(rune('0'+depth)), Ci(0), Ci(2), Ci(1),
				LoopOpt{Name: "L" + string(rune('0'+depth))}, func(l *Block) {
					nest(l, depth-1)
				})
		}
		nest(b, 6)
	})
	info := runNative(t, p)
	if info.Vars["acc"] != 64 {
		t.Errorf("acc = %v, want 64 (2^6)", info.Vars["acc"])
	}
	// All six loops executed the expected total iterations.
	total := uint64(0)
	for _, n := range info.LoopIters {
		total += n
	}
	if total != 2+4+8+16+32+64 {
		t.Errorf("total iterations = %d, want 126", total)
	}
}
