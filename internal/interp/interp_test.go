package interp

import (
	"strings"
	"sync"
	"testing"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	. "ddprof/internal/minilang"
)

// runNative executes without a hook and returns the final scalars.
func runNative(t *testing.T, p *Program) *RunInfo {
	t.Helper()
	info, err := Run(p, nil, Options{})
	if err != nil {
		t.Fatalf("run %s: %v", p.Name, err)
	}
	return info
}

// runProfiled executes under a serial perfect-signature profiler.
func runProfiled(t *testing.T, p *Program) (*RunInfo, *core.Result) {
	t.Helper()
	prof := core.NewSerial(core.Config{
		Backend: "perfect",
		Meta:    p.Meta,
	})
	info, err := Run(p, prof, Options{})
	if err != nil {
		t.Fatalf("run %s: %v", p.Name, err)
	}
	return info, prof.Flush()
}

func TestArithmeticAndControlFlow(t *testing.T) {
	p := New("arith")
	p.MainFunc(func(b *Block) {
		b.Decl("x", Ci(10))
		b.Decl("y", Add(Mul(V("x"), Ci(3)), Ci(2)))   // 32
		b.Decl("z", IDiv(V("y"), Ci(5)))              // 6
		b.Decl("m", Mod(V("y"), Ci(5)))               // 2
		b.Decl("bits", Xor(Shl(Ci(1), Ci(4)), Ci(3))) // 19
		b.Decl("cmp", And(Lt(V("x"), V("y")), Ge(V("z"), Ci(6))))
		b.If(V("cmp"), func(tb *Block) {
			tb.Assign("x", Ci(111))
		}, func(eb *Block) {
			eb.Assign("x", Ci(222))
		})
		b.Decl("s", CallE("sqrt", Ci(144)))
	})
	info := runNative(t, p)
	want := map[string]float64{"y": 32, "z": 6, "m": 2, "bits": 19, "cmp": 1, "x": 111, "s": 12}
	for k, v := range want {
		if info.Vars[k] != v {
			t.Errorf("%s = %v, want %v", k, info.Vars[k], v)
		}
	}
}

func TestForLoopComputesAndCounts(t *testing.T) {
	p := New("sumloop")
	p.MainFunc(func(b *Block) {
		b.Decl("sum", Ci(0))
		b.For("i", Ci(0), Ci(100), Ci(1), LoopOpt{Name: "sum"}, func(l *Block) {
			l.Reduce("sum", OpAdd, V("i"))
		})
	})
	info := runNative(t, p)
	if info.Vars["sum"] != 4950 {
		t.Errorf("sum = %v, want 4950", info.Vars["sum"])
	}
	if len(info.LoopRecords) != 1 || info.LoopRecords[0].Iterations != 100 {
		t.Errorf("loop records = %+v, want one loop with 100 iterations", info.LoopRecords)
	}
	if info.Accesses == 0 {
		t.Error("no accesses counted")
	}
}

func TestArraysAndFunctions(t *testing.T) {
	p := New("arrfunc")
	p.Func("fill", []string{"a", "n", "mult"}, func(b *Block) {
		b.For("i", Ci(0), V("n"), Ci(1), LoopOpt{Name: "fill"}, func(l *Block) {
			l.Set("a", V("i"), Mul(V("i"), V("mult")))
		})
	})
	p.Func("sum", []string{"a", "n"}, func(b *Block) {
		b.Decl("acc", Ci(0))
		b.For("i", Ci(0), V("n"), Ci(1), LoopOpt{Name: "sum"}, func(l *Block) {
			l.Reduce("acc", OpAdd, Idx("a", V("i")))
		})
		b.Ret(V("acc"))
	})
	p.MainFunc(func(b *Block) {
		b.Decl("n", Ci(50))
		b.DeclArr("data", V("n"))
		b.Call("fill", V("data"), V("n"), Ci(3))
		b.Decl("total", CallE("sum", V("data"), V("n")))
		b.Decl("ln", LenOf("data"))
	})
	info := runNative(t, p)
	if info.Vars["total"] != 3*49*50/2 {
		t.Errorf("total = %v, want %v", info.Vars["total"], 3*49*50/2)
	}
	if info.Vars["ln"] != 50 {
		t.Errorf("len = %v, want 50", info.Vars["ln"])
	}
}

func TestWhileLoop(t *testing.T) {
	p := New("collatz")
	p.MainFunc(func(b *Block) {
		b.Decl("n", Ci(27))
		b.Decl("steps", Ci(0))
		b.While(Gt(V("n"), Ci(1)), LoopOpt{Name: "collatz"}, func(l *Block) {
			l.If(Eq(Mod(V("n"), Ci(2)), Ci(0)), func(tb *Block) {
				tb.Assign("n", IDiv(V("n"), Ci(2)))
			}, func(eb *Block) {
				eb.Assign("n", Add(Mul(V("n"), Ci(3)), Ci(1)))
			})
			l.Reduce("steps", OpAdd, Ci(1))
		})
	})
	info := runNative(t, p)
	if info.Vars["steps"] != 111 {
		t.Errorf("collatz(27) steps = %v, want 111", info.Vars["steps"])
	}
}

func TestRecursion(t *testing.T) {
	p := New("fib")
	p.Func("fib", []string{"n"}, func(b *Block) {
		b.If(Lt(V("n"), Ci(2)), func(tb *Block) {
			tb.Ret(V("n"))
		}, nil)
		b.Ret(Add(CallE("fib", Sub(V("n"), Ci(1))), CallE("fib", Sub(V("n"), Ci(2)))))
	})
	p.MainFunc(func(b *Block) {
		b.Decl("r", CallE("fib", Ci(15)))
	})
	if got := runNative(t, p).Vars["r"]; got != 610 {
		t.Errorf("fib(15) = %v, want 610", got)
	}
}

// TestProfiledLoopDependences checks the end-to-end pipeline on a loop
// shaped like the paper's Figure 1: the loop variable must show RAW/WAR
// self-dependences at the loop line, and an accumulator a carried RAW.
func TestProfiledLoopDependences(t *testing.T) {
	p := New("fig1")
	var loopLine int
	p.MainFunc(func(b *Block) {
		b.Decl("acc", Ci(0)) // line 1
		// The for statement is line 2.
		loopLine = 2
		b.For("i", Ci(0), Ci(10), Ci(1), LoopOpt{Name: "L"}, func(l *Block) {
			l.Assign("acc", Add(V("acc"), V("i"))) // line 3
		})
	})
	_, res := runProfiled(t, p)

	fl := loc.Pack(1, loopLine)
	raw := dep.Key{Type: dep.RAW, Sink: fl, Src: fl, Var: p.Tab.Var("i")}
	if st, ok := res.Deps.Lookup(raw); !ok {
		t.Errorf("missing loop-variable RAW self dep at %v", fl)
	} else if st.Carried {
		t.Error("induction-variable RAW must not count as loop-carried")
	}
	war := dep.Key{Type: dep.WAR, Sink: fl, Src: fl, Var: p.Tab.Var("i")}
	if _, ok := res.Deps.Lookup(war); !ok {
		t.Error("missing loop-variable WAR self dep")
	}
	accLine := loc.Pack(1, 3)
	accRAW := dep.Key{Type: dep.RAW, Sink: accLine, Src: accLine, Var: p.Tab.Var("acc")}
	st, ok := res.Deps.Lookup(accRAW)
	if !ok {
		t.Fatal("missing accumulator RAW")
	}
	if !st.Carried {
		t.Error("accumulator RAW must be carried")
	}
}

// TestProfiledOutputFormat renders a tiny profiled program and eyeballs the
// Figure 1 shape: BGN/END with the iteration count and NOM lines between.
func TestProfiledOutputFormat(t *testing.T) {
	p := New("fmt")
	p.MainFunc(func(b *Block) {
		b.Decl("x", Ci(1))
		b.For("i", Ci(0), Ci(7), Ci(1), LoopOpt{Name: "L"}, func(l *Block) {
			l.Assign("x", Add(V("x"), Ci(1)))
		})
	})
	prof := core.NewSerial(core.Config{Backend: "perfect", Meta: p.Meta})
	info, err := Run(p, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := dep.Write(&sb, prof.Flush().Deps, p.Tab, info.LoopRecords, dep.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"BGN loop", "END loop 7", "NOM", "{RAW", "|i}", "{INIT *}"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFreeEmitsRemoveAndRecycles(t *testing.T) {
	p := New("lifetime")
	p.MainFunc(func(b *Block) {
		b.DeclArr("a", Ci(8))
		b.Set("a", Ci(0), Ci(1)) // line 2: INIT write
		b.Free("a")              // line 3
		b.DeclArr("b", Ci(8))    // recycles a's storage
		b.Set("b", Ci(0), Ci(2)) // line 5: must be INIT again, not WAW
	})
	_, res := runProfiled(t, p)
	waw := dep.Key{Type: dep.WAW, Sink: loc.Pack(1, 5), Src: loc.Pack(1, 2), Var: p.Tab.Var("b")}
	if _, ok := res.Deps.Lookup(waw); ok {
		t.Error("false WAW across free/realloc — lifetime analysis failed")
	}
	inits := res.Deps.FilterType(dep.INIT)
	if len(inits) != 2 {
		t.Errorf("INIT deps = %d, want 2 (one per allocation)", len(inits))
	}
}

func TestSpawnThreadsComputeAndTagIDs(t *testing.T) {
	p := New("spawn")
	p.MainFunc(func(b *Block) {
		b.Decl("n", Ci(64))
		b.DeclArr("out", V("n"))
		b.Spawn(4, func(s *Block) {
			s.Decl("t", Tid())
			s.For("i", Mul(V("t"), Ci(16)), Mul(Add(V("t"), Ci(1)), Ci(16)), Ci(1), LoopOpt{Name: "work"}, func(l *Block) {
				l.Set("out", V("i"), Mul(V("i"), Ci(2)))
			})
		})
		b.Decl("check", Idx("out", Ci(63)))
	})
	mt := core.NewMT(core.Config{Workers: 2, Backend: "perfect"})
	info, err := Run(p, mt, Options{Timestamps: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Vars["check"] != 126 {
		t.Errorf("check = %v, want 126", info.Vars["check"])
	}
	res := mt.Flush()
	// The main thread (id 0) reads out[63], written by spawned thread 3:
	// a cross-thread RAW must carry those thread IDs.
	found := false
	res.Deps.Range(func(k dep.Key, _ dep.Stats) bool {
		if k.Type == dep.RAW && k.SinkThread == 0 && k.SrcThread == 3 && k.Var == p.Tab.Var("out") {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("cross-thread RAW (thread 3 -> main) not recorded")
	}
}

func TestLockedSharedCounter(t *testing.T) {
	p := New("locked")
	p.MainFunc(func(b *Block) {
		b.Decl("counter", Ci(0))
		b.Spawn(4, func(s *Block) {
			s.For("i", Ci(0), Ci(200), Ci(1), LoopOpt{Name: "inc"}, func(l *Block) {
				l.Lock("m", func(cr *Block) {
					cr.Reduce("counter", OpAdd, Ci(1))
				})
			})
		})
	})
	// Run natively several times: with the mutex the count is always exact.
	for i := 0; i < 3; i++ {
		if got := runNative(t, p).Vars["counter"]; got != 800 {
			t.Fatalf("locked counter = %v, want 800", got)
		}
	}
}

func TestBarrier(t *testing.T) {
	p := New("barrier")
	p.MainFunc(func(b *Block) {
		b.Decl("n", Ci(4))
		b.DeclArr("phase1", V("n"))
		b.DeclArr("phase2", V("n"))
		b.Spawn(4, func(s *Block) {
			s.Set("phase1", Tid(), Add(Tid(), Ci(1)))
			s.Barrier()
			// After the barrier every phase1 slot is visible.
			s.Decl("acc", Ci(0))
			s.For("i", Ci(0), V("n"), Ci(1), LoopOpt{Name: "rd"}, func(l *Block) {
				l.Reduce("acc", OpAdd, Idx("phase1", V("i")))
			})
			s.Set("phase2", Tid(), V("acc"))
		})
		b.Decl("check", Idx("phase2", Ci(0)))
	})
	for i := 0; i < 3; i++ {
		if got := runNative(t, p).Vars["check"]; got != 10 {
			t.Fatalf("barrier sum = %v, want 10", got)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(*Block)
		want  string
	}{
		{"oob", func(b *Block) {
			b.DeclArr("a", Ci(4))
			b.Set("a", Ci(9), Ci(1))
		}, "out of range"},
		{"undef", func(b *Block) {
			b.Assign("ghost", Ci(1))
		}, "undefined"},
		{"divzero", func(b *Block) {
			b.Decl("x", Div(Ci(1), Ci(0)))
		}, "division by zero"},
		{"badfree", func(b *Block) {
			b.Free("nothing")
		}, "free of undefined"},
		{"arrayScalarConfusion", func(b *Block) {
			b.DeclArr("a", Ci(4))
			b.Decl("x", V("a"))
		}, "is an array"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := New(c.name)
			p.MainFunc(c.build)
			_, err := Run(p, nil, Options{})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestThreadErrorPropagates(t *testing.T) {
	p := New("threaderr")
	p.MainFunc(func(b *Block) {
		b.DeclArr("a", Ci(4))
		b.Spawn(2, func(s *Block) {
			s.Set("a", Add(Tid(), Ci(3)), Ci(1)) // tid 1 writes a[4]: out of range
		})
	})
	if _, err := Run(p, nil, Options{}); err == nil {
		t.Error("thread runtime error not propagated")
	}
}

func TestNoMainError(t *testing.T) {
	p := New("empty")
	if _, err := Run(p, nil, Options{}); err == nil {
		t.Error("missing main must be an error")
	}
}

// countingHook counts hook invocations from any thread.
type countingHook struct {
	mu sync.Mutex
	n  int
}

func (h *countingHook) Access(event.Access) {
	h.mu.Lock()
	h.n++
	h.mu.Unlock()
}

func TestNativeAndHookedSameComputation(t *testing.T) {
	build := func() *Program {
		p := New("same")
		p.MainFunc(func(b *Block) {
			b.Decl("acc", Ci(0))
			b.DeclArr("a", Ci(32))
			b.For("i", Ci(0), Ci(32), Ci(1), LoopOpt{}, func(l *Block) {
				l.Set("a", V("i"), Mul(V("i"), V("i")))
				l.Reduce("acc", OpAdd, Idx("a", V("i")))
			})
		})
		return p
	}
	nat := runNative(t, build())
	h := &countingHook{}
	hooked, err := Run(build(), h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nat.Vars["acc"] != hooked.Vars["acc"] {
		t.Errorf("instrumentation changed the computation: %v vs %v", nat.Vars["acc"], hooked.Vars["acc"])
	}
	if uint64(h.n) != hooked.Accesses {
		t.Errorf("hook calls %d != counted accesses %d", h.n, hooked.Accesses)
	}
	if nat.Accesses != hooked.Accesses {
		t.Errorf("native run counted %d accesses, hooked %d", nat.Accesses, hooked.Accesses)
	}
}

func TestCallGraphRecording(t *testing.T) {
	p := New("callgraph")
	p.Func("leaf", []string{"x"}, func(b *Block) {
		b.Ret(Mul(V("x"), Ci(2)))
	})
	p.Func("mid", []string{"x"}, func(b *Block) {
		b.Ret(Add(CallE("leaf", V("x")), CallE("leaf", Ci(1))))
	})
	p.MainFunc(func(b *Block) {
		b.Decl("r", Ci(0))
		b.For("i", Ci(0), Ci(5), Ci(1), LoopOpt{}, func(l *Block) {
			l.Reduce("r", OpAdd, CallE("mid", V("i")))
		})
	})
	info := runNative(t, p)
	if info.Calls["main"] != 1 {
		t.Errorf("main invocations = %d", info.Calls["main"])
	}
	if info.Calls["mid"] != 5 {
		t.Errorf("mid invocations = %d, want 5", info.Calls["mid"])
	}
	if info.Calls["leaf"] != 10 {
		t.Errorf("leaf invocations = %d, want 10", info.Calls["leaf"])
	}
	if got := info.CallEdges[CallEdge{Caller: "main", Callee: "mid"}]; got != 5 {
		t.Errorf("main->mid = %d, want 5", got)
	}
	if got := info.CallEdges[CallEdge{Caller: "mid", Callee: "leaf"}]; got != 10 {
		t.Errorf("mid->leaf = %d, want 10", got)
	}
	if _, bad := info.CallEdges[CallEdge{Caller: "main", Callee: "leaf"}]; bad {
		t.Error("spurious main->leaf edge")
	}
	// main(1) + mid(2) + leaf(3)
	if info.MaxCallDepth != 3 {
		t.Errorf("max depth = %d, want 3", info.MaxCallDepth)
	}
}

func TestCallGraphRecursionDepth(t *testing.T) {
	p := New("recdepth")
	p.Func("down", []string{"n"}, func(b *Block) {
		b.If(Le(V("n"), Ci(0)), func(tb *Block) {
			tb.Ret(Ci(0))
		}, nil)
		b.Ret(CallE("down", Sub(V("n"), Ci(1))))
	})
	p.MainFunc(func(b *Block) {
		b.Decl("r", CallE("down", Ci(7)))
	})
	info := runNative(t, p)
	if info.Calls["down"] != 8 {
		t.Errorf("down invocations = %d, want 8", info.Calls["down"])
	}
	if got := info.CallEdges[CallEdge{Caller: "down", Callee: "down"}]; got != 7 {
		t.Errorf("self edge = %d, want 7", got)
	}
	// main(1) + down nest of 8
	if info.MaxCallDepth != 9 {
		t.Errorf("max depth = %d, want 9", info.MaxCallDepth)
	}
}

// TestParsedProgramExecution runs a program that came through the text
// front-end instead of the builder DSL.
func TestParsedProgramExecution(t *testing.T) {
	src := `
func total(a, n) {
    var acc = 0
    for i = 0; i < n; i += 1 "total" {
        acc += a[i]
    }
    return acc
}
func main() {
    var n = 20
    arr data[n]
    for i = 0; i < n; i += 1 omp "fill" {
        data[i] = i * 3
    }
    var sum = total(data, n)
    var collatz = 27
    var steps = 0
    while collatz > 1 "collatz" {
        if collatz % 2 == 0 {
            collatz = collatz / 2
        } else {
            collatz = 3 * collatz + 1
        }
        steps += 1
    }
    free data
}
`
	p, err := ParseProgram("exec.ml", src)
	if err != nil {
		t.Fatal(err)
	}
	info := runNative(t, p)
	if got := info.Vars["sum"]; got != 3*19*20/2 {
		t.Errorf("sum = %v, want %v", got, 3*19*20/2)
	}
	if got := info.Vars["steps"]; got != 111 {
		t.Errorf("collatz steps = %v, want 111", got)
	}
	// Loop metadata flows through: the fill loop is OMP and parallelizable.
	prof := core.NewSerial(core.Config{Backend: "perfect", Meta: p.Meta})
	p2, _ := ParseProgram("exec.ml", src)
	info2, err := Run(p2, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = info2
	res := prof.Flush()
	for _, l := range p2.Meta.Loops() {
		ld := res.Loops[l.ID]
		switch l.Name {
		case "fill":
			if ld != nil && ld.CarriedRAW > 0 {
				t.Errorf("fill loop shows carried RAW: %+v", ld)
			}
		case "total", "collatz":
			if ld == nil || ld.CarriedRAW == 0 {
				t.Errorf("%s loop should show carried RAW", l.Name)
			}
		}
	}
}

// TestParsedSpawnExecution runs a parsed multi-threaded program.
func TestParsedSpawnExecution(t *testing.T) {
	src := `
func main() {
    var counter = 0
    spawn 4 {
        for i = 0; i < 100; i += 1 "inc" {
            lock m {
                counter += 1
            }
        }
        barrier
    }
}
`
	p, err := ParseProgram("mt.ml", src)
	if err != nil {
		t.Fatal(err)
	}
	info := runNative(t, p)
	if info.Vars["counter"] != 400 {
		t.Errorf("counter = %v, want 400", info.Vars["counter"])
	}
}
