package interp

import (
	"math"
	"sync"
	"sync/atomic"
)

// Arena is the simulated address space. Every minilang scalar and array
// element occupies one 8-byte word; word w lives at byte address
// baseAddr + w*8. Freed ranges are recycled (exact-size free lists), so
// address reuse after deallocation — the case variable-lifetime analysis
// exists for — actually happens.
//
// Values are stored as float64 bits through atomic loads/stores: target
// programs are allowed to race (that is §V-B's subject), and atomics keep
// such logical races from being undefined behaviour in the host process.
//
// The arena is exported because both executors — the tree-walking
// interpreter here and the bytecode VM in internal/vm — must draw simulated
// addresses from the same deterministic allocator for their event streams to
// be byte-identical.
type Arena struct {
	mu    sync.Mutex
	pages [maxPages]*arenaPage
	free  map[int][]uint64 // words -> free base word indices
	next  uint64           // next unallocated word index
}

const (
	pageWordsBits = 16
	pageWords     = 1 << pageWordsBits // 64 Ki words = 512 KiB per page
	maxPages      = 4096               // 2 GiB simulated memory ceiling
	baseAddr      = uint64(0x10000000)
)

type arenaPage [pageWords]uint64

// pagePool recycles arena pages across runs. Allocating and zeroing a fresh
// 512 KiB page per run is the single largest allocation either executor
// makes; a pooled page is always fully zero, and Recycle restores that
// invariant by clearing only the words a run actually touched.
var pagePool = sync.Pool{New: func() any { return new(arenaPage) }}

// NewArena returns an empty simulated address space.
func NewArena() *Arena {
	return &Arena{free: make(map[int][]uint64)}
}

// Recycle returns the arena's pages to the process-wide pool and leaves the
// arena empty. Call it only when nothing references simulated memory any
// more — after a run has completed and its results have been extracted.
func (a *Arena) Recycle() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for pg := uint64(0); pg*pageWords < a.next; pg++ {
		p := a.pages[pg]
		if p == nil {
			continue
		}
		n := a.next - pg*pageWords
		if n > pageWords {
			n = pageWords
		}
		clear(p[:n])
		a.pages[pg] = nil
		pagePool.Put(p)
	}
	a.next = 0
	a.free = make(map[int][]uint64)
}

// Alloc reserves a run of words and returns its base word index.
func (a *Arena) Alloc(words int) uint64 {
	if words <= 0 {
		words = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if lst := a.free[words]; len(lst) > 0 {
		base := lst[len(lst)-1]
		a.free[words] = lst[:len(lst)-1]
		return base
	}
	base := a.next
	a.next += uint64(words)
	lastPage := (a.next - 1) >> pageWordsBits
	if lastPage >= maxPages {
		panic(RuntimeError{"simulated memory exhausted"})
	}
	for pg := base >> pageWordsBits; pg <= lastPage; pg++ {
		if a.pages[pg] == nil {
			a.pages[pg] = pagePool.Get().(*arenaPage)
		}
	}
	return base
}

// Release recycles a run for future allocations of the same size.
func (a *Arena) Release(base uint64, words int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free[words] = append(a.free[words], base)
}

// PlainLoad and PlainStore are non-atomic variants of Load/Store for
// executors that can prove the target program is single-threaded (no spawn
// blocks — the bytecode compiler knows this statically). They touch the
// same cells, so values and simulated addresses are unchanged; skipping the
// atomic store's full memory barrier is free speed on the hot path. Never
// mix them with concurrent target threads.
func (a *Arena) PlainLoad(w uint64) float64 {
	p := a.pages[w>>pageWordsBits]
	return math.Float64frombits(p[w&(pageWords-1)])
}

// PlainStore writes the word at index w without an atomic barrier.
func (a *Arena) PlainStore(w uint64, v float64) {
	p := a.pages[w>>pageWordsBits]
	p[w&(pageWords-1)] = math.Float64bits(v)
}

// Load reads the word at index w.
func (a *Arena) Load(w uint64) float64 {
	p := a.pages[w>>pageWordsBits]
	return math.Float64frombits(atomic.LoadUint64(&p[w&(pageWords-1)]))
}

// Store writes the word at index w.
func (a *Arena) Store(w uint64, v float64) {
	p := a.pages[w>>pageWordsBits]
	atomic.StoreUint64(&p[w&(pageWords-1)], math.Float64bits(v))
}

// AddrOf converts a word index to a simulated byte address.
func AddrOf(w uint64) uint64 { return baseAddr + w*8 }

// RuntimeError is a minilang runtime error (out-of-bounds index, unknown
// variable, …) carried by panic to the Run boundary of either executor.
type RuntimeError struct{ Msg string }

func (e RuntimeError) Error() string { return "minilang runtime error: " + e.Msg }
