package interp

import (
	"math"
	"sync"
	"sync/atomic"
)

// arena is the simulated address space. Every minilang scalar and array
// element occupies one 8-byte word; word w lives at byte address
// baseAddr + w*8. Freed ranges are recycled (exact-size free lists), so
// address reuse after deallocation — the case variable-lifetime analysis
// exists for — actually happens.
//
// Values are stored as float64 bits through atomic loads/stores: target
// programs are allowed to race (that is §V-B's subject), and atomics keep
// such logical races from being undefined behaviour in the host process.
type arena struct {
	mu    sync.Mutex
	pages [maxPages]*arenaPage
	free  map[int][]uint64 // words -> free base word indices
	next  uint64           // next unallocated word index
}

const (
	pageWordsBits = 16
	pageWords     = 1 << pageWordsBits // 64 Ki words = 512 KiB per page
	maxPages      = 4096               // 2 GiB simulated memory ceiling
	baseAddr      = uint64(0x10000000)
)

type arenaPage [pageWords]uint64

func newArena() *arena {
	return &arena{free: make(map[int][]uint64)}
}

// alloc reserves a run of words and returns its base word index.
func (a *arena) alloc(words int) uint64 {
	if words <= 0 {
		words = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if lst := a.free[words]; len(lst) > 0 {
		base := lst[len(lst)-1]
		a.free[words] = lst[:len(lst)-1]
		return base
	}
	base := a.next
	a.next += uint64(words)
	lastPage := (a.next - 1) >> pageWordsBits
	if lastPage >= maxPages {
		panic(rtError{"simulated memory exhausted"})
	}
	for pg := base >> pageWordsBits; pg <= lastPage; pg++ {
		if a.pages[pg] == nil {
			a.pages[pg] = new(arenaPage)
		}
	}
	return base
}

// release recycles a run for future allocations of the same size.
func (a *arena) release(base uint64, words int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free[words] = append(a.free[words], base)
}

// load reads the word at index w.
func (a *arena) load(w uint64) float64 {
	p := a.pages[w>>pageWordsBits]
	return math.Float64frombits(atomic.LoadUint64(&p[w&(pageWords-1)]))
}

// store writes the word at index w.
func (a *arena) store(w uint64, v float64) {
	p := a.pages[w>>pageWordsBits]
	atomic.StoreUint64(&p[w&(pageWords-1)], math.Float64bits(v))
}

// addrOf converts a word index to a simulated byte address.
func addrOf(w uint64) uint64 { return baseAddr + w*8 }

// rtError is a minilang runtime error (out-of-bounds index, unknown
// variable, …) carried by panic to the Run boundary.
type rtError struct{ msg string }

func (e rtError) Error() string { return "minilang runtime error: " + e.msg }
