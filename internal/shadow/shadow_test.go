package shadow

import (
	"testing"

	"ddprof/internal/loc"
	"ddprof/internal/sig"
)

var _ sig.Store = (*Memory)(nil)

func slot(line int) sig.Slot {
	return sig.PackSlot(loc.Pack(1, line), 0, 0, 0, 0, 0)
}

func TestBasicOps(t *testing.T) {
	m := New()
	if _, ok := m.LookupWrite(0x1234); ok {
		t.Fatal("fresh shadow memory has entries")
	}
	m.SetWrite(0x1234, slot(10))
	m.SetRead(0x1234, slot(20))
	w, ok := m.LookupWrite(0x1234)
	if !ok || w.Loc().Line() != 10 {
		t.Fatal("write lookup failed")
	}
	r, ok := m.LookupRead(0x1234)
	if !ok || r.Loc().Line() != 20 {
		t.Fatal("read lookup failed")
	}
	m.Remove(0x1234)
	if _, ok := m.LookupWrite(0x1234); ok {
		t.Fatal("write survives Remove")
	}
	if _, ok := m.LookupRead(0x1234); ok {
		t.Fatal("read survives Remove")
	}
}

func TestExactness(t *testing.T) {
	// Shadow memory must never confuse two addresses, however many are used.
	m := New()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		m.SetWrite(i*8, slot(int(i%1000)+1))
	}
	for i := uint64(0); i < n; i++ {
		s, ok := m.LookupWrite(i * 8)
		if !ok {
			t.Fatalf("address %#x lost", i*8)
		}
		if s.Loc().Line() != int(i%1000)+1 {
			t.Fatalf("address %#x returned wrong record", i*8)
		}
	}
	// Untouched addresses must miss.
	if _, ok := m.LookupWrite(n*8 + 4); ok {
		t.Error("false positive in shadow memory")
	}
}

func TestPageGrowth(t *testing.T) {
	m := New()
	m.SetWrite(0, slot(1))
	if m.Pages() != 1 {
		t.Fatalf("Pages = %d, want 1", m.Pages())
	}
	b1 := m.Bytes()
	if b1 == 0 {
		t.Fatal("Bytes = 0 after allocation")
	}
	// Same page: no growth.
	m.SetWrite(pageSize-1, slot(2))
	if m.Pages() != 1 {
		t.Fatal("write within page allocated a new page")
	}
	// Far address: new page. This is the footprint problem signatures solve:
	// memory grows with the address range actually touched.
	m.SetWrite(1<<40, slot(3))
	if m.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", m.Pages())
	}
	if m.Bytes() != 2*b1 {
		t.Errorf("Bytes = %d, want %d", m.Bytes(), 2*b1)
	}
	if m.ModeledBytes() != m.Bytes() {
		t.Error("exact store model must equal actual bytes")
	}
}

func TestRemoveMissingAddress(t *testing.T) {
	m := New()
	m.Remove(0xDEAD) // must not allocate or panic
	if m.Pages() != 0 {
		t.Error("Remove allocated a page")
	}
}
