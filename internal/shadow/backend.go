package shadow

import (
	"fmt"

	"ddprof/internal/sig"
)

// Backend registrations: "shadow" (the classical exact paged store) and
// "hybrid" (exact heavy-hitter tier over a signature tail). Both are
// resolved through the sig registry from spec strings like
// "hybrid:slots=1m,exact=4096"; internal/core imports this package for the
// side effect so every binary and ddprofd session can select them.
func init() {
	sig.Register(sig.Backend{
		Name:  "shadow",
		Exact: true,
		Doc:   "two-level paged shadow memory (§III-B comparison baseline); exact, memory grows with the address footprint",
		New: func(sp sig.Spec) (sig.Store, error) {
			if err := sp.Only(); err != nil {
				return nil, err
			}
			return New(), nil
		},
	})
	sig.Register(sig.Backend{
		Name:  "hybrid",
		Exact: false,
		Doc:   "exact paged tier for promoted heavy hitters + signature tail; params slots, exact (0 = unbounded), promote, sketch",
		New: func(sp sig.Spec) (sig.Store, error) {
			if err := sp.Only("slots", "exact", "promote", "sketch"); err != nil {
				return nil, err
			}
			slots, err := sp.Int("slots", sp.SlotsDefault(1<<20))
			if err != nil {
				return nil, err
			}
			if slots < 1 {
				return nil, fmt.Errorf("sig: backend hybrid: slots = %d; want >= 1", slots)
			}
			exact, err := sp.Int("exact", defaultExactBudget)
			if err != nil {
				return nil, err
			}
			if exact < 0 {
				return nil, fmt.Errorf("sig: backend hybrid: exact = %d; want >= 0 (0 = unbounded exact tier)", exact)
			}
			promote, err := sp.Int("promote", defaultPromoteAfter)
			if err != nil {
				return nil, err
			}
			if promote < 1 {
				return nil, fmt.Errorf("sig: backend hybrid: promote = %d; want >= 1", promote)
			}
			sketch, err := sp.Int("sketch", defaultSketchCap)
			if err != nil {
				return nil, err
			}
			return NewHybrid(slots, exact, promote, sketch), nil
		},
		EstimateBytes: func(sp sig.Spec) uint64 {
			slots, err := sp.Int("slots", sp.SlotsDefault(1<<20))
			if err != nil || slots < 1 {
				return 0
			}
			exact, err := sp.Int("exact", defaultExactBudget)
			if err != nil || exact <= 0 {
				return 0 // unbounded exact tier: no promise to make
			}
			sketch, err := sp.Int("sketch", defaultSketchCap)
			if err != nil {
				return 0
			}
			// Worst case: every resident on its own page, plus the fixed tail
			// and the promotion bookkeeping.
			return uint64(exact)*(hpageBytes+16) + uint64(sketch)*32 + 2*uint64(slots)*24
		},
	})
}

const (
	// defaultExactBudget caps the resident exact addresses when the spec
	// does not say: generous enough for the heavy-hitter head of real
	// streams, small enough that the exact tier stays a few MiB.
	defaultExactBudget = 4096
	// defaultPromoteAfter is the sketched access count at which a tail
	// address self-promotes.
	defaultPromoteAfter = 8
	// defaultSketchCap bounds the candidate sketch; candidates must exceed
	// 1/cap of the tail stream to stay sketched.
	defaultSketchCap = 512
)
