package shadow

import (
	"math/rand"
	"testing"

	"ddprof/internal/loc"
	"ddprof/internal/sig"
)

func hslot(line int, ts uint64) sig.Slot {
	return sig.PackSlot(loc.Pack(1, line), 1, 0, 0, 0, ts)
}

// TestHybridUnboundedMatchesShadow: with a zero exactness budget the hybrid
// is all exact tier, so a random op sequence must read back identically to
// shadow memory.
func TestHybridUnboundedMatchesShadow(t *testing.T) {
	h := NewHybrid(1<<10, 0, 8, 64)
	m := New()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(4096)) * 8
		s := hslot(rng.Intn(100), uint64(i+1))
		switch rng.Intn(5) {
		case 0:
			h.SetWrite(addr, s)
			m.SetWrite(addr, s)
		case 1:
			h.SetRead(addr, s)
			m.SetRead(addr, s)
		case 2:
			h.Remove(addr)
			m.Remove(addr)
		case 3:
			hw, hok := h.LookupWrite(addr)
			mw, mok := m.LookupWrite(addr)
			if hok != mok || hw != mw {
				t.Fatalf("op %d: LookupWrite(%#x) = %v,%v vs shadow %v,%v", i, addr, hw, hok, mw, mok)
			}
		default:
			hr, hok := h.LookupRead(addr)
			mr, mok := m.LookupRead(addr)
			if hok != mok || hr != mr {
				t.Fatalf("op %d: LookupRead(%#x) = %v,%v vs shadow %v,%v", i, addr, hr, hok, mr, mok)
			}
		}
	}
}

// TestHybridPromotionThreshold: a tail address self-promotes only once the
// worker-local sketch has seen it promoteAfter times.
func TestHybridPromotionThreshold(t *testing.T) {
	h := NewHybrid(1<<10, 4, 4, 64)
	const addr = 0x1000
	for i := 1; i <= 3; i++ {
		h.SetWrite(addr, hslot(1, uint64(i)))
		if h.ExactResident() != 0 {
			t.Fatalf("promoted after %d accesses, threshold is 4", i)
		}
	}
	h.SetWrite(addr, hslot(1, 4))
	if h.ExactResident() != 1 {
		t.Fatal("not promoted at threshold")
	}
	// The state written while in the tail was carried across.
	if s, ok := h.LookupWrite(addr); !ok || s != hslot(1, 4) {
		t.Fatalf("exact tier lost the adopted state: %v, %v", s, ok)
	}
}

// TestHybridPromoteCarriesTailState: an externally seeded promotion (the
// producer's sig.Promoter path) adopts whatever history the tail holds, so
// reordered Promote events cannot drop accesses.
func TestHybridPromoteCarriesTailState(t *testing.T) {
	h := NewHybrid(1<<10, 4, 8, 64)
	const addr = 0x2000
	w, r := hslot(3, 1), hslot(4, 2)
	h.SetWrite(addr, w)
	h.SetRead(addr, r)
	if h.ExactResident() != 0 {
		t.Fatal("address promoted before the seed")
	}
	h.Promote(addr)
	if h.ExactResident() != 1 {
		t.Fatal("seed did not promote")
	}
	if s, ok := h.LookupWrite(addr); !ok || s != w {
		t.Fatalf("write state lost in promotion: %v, %v", s, ok)
	}
	if s, ok := h.LookupRead(addr); !ok || s != r {
		t.Fatalf("read state lost in promotion: %v, %v", s, ok)
	}
	// Promoting a resident is a no-op.
	h.Promote(addr)
	if h.ExactResident() != 1 {
		t.Fatal("double promotion changed residency")
	}
}

// TestHybridEvictionHysteresis: with the exact tier full, a tail candidate
// displaces a resident only when it is strictly hotter; a forced Promote
// evicts unconditionally. The evicted resident's exact state is written back
// to the tail, not dropped.
func TestHybridEvictionHysteresis(t *testing.T) {
	h := NewHybrid(1<<10, 1, 4, 64)
	const a, b = 0x1000, 0x9000
	var ts uint64
	stamp := func() uint64 { ts++; return ts }
	// Heat up a: promoted at the 4th set, then 6 more exact sets.
	for i := 0; i < 10; i++ {
		h.SetWrite(a, hslot(1, stamp()))
	}
	if h.ExactResident() != 1 {
		t.Fatal("a not resident")
	}
	aLast := hslot(1, ts)
	// b reaches the threshold but stays colder than a: no eviction.
	for i := 0; i < 6; i++ {
		h.SetWrite(b, hslot(2, stamp()))
	}
	if _, _, res := h.exactSlot(b); res {
		t.Fatal("colder candidate evicted a hotter resident")
	}
	// Keep hammering b until it is strictly hotter than a's settled count.
	for i := 0; i < 10; i++ {
		h.SetWrite(b, hslot(2, stamp()))
	}
	if _, _, res := h.exactSlot(b); !res {
		t.Fatal("hotter candidate never evicted the cold resident")
	}
	if h.ExactResident() != 1 {
		t.Fatalf("resident count = %d, budget is 1", h.ExactResident())
	}
	// a's exact history survived in the tail (no colliding addresses here).
	if s, ok := h.LookupWrite(a); !ok || s != aLast {
		t.Fatalf("evicted state not written back: %v, %v", s, ok)
	}
	// A forced seed promotes even without a hotter count.
	h.Promote(a)
	if _, _, res := h.exactSlot(a); !res {
		t.Fatal("forced Promote did not evict")
	}
}

// TestHybridBudgetEnforced: residency never exceeds the budget and the exact
// tier's byte accounting stays within the page bound implied by it.
func TestHybridBudgetEnforced(t *testing.T) {
	const budget = 16
	h := NewHybrid(1<<12, budget, 2, 128)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		// Addresses spread over distinct pages so each resident costs a page.
		addr := uint64(rng.Intn(1024)) << hpageBits
		h.SetWrite(addr, hslot(1, uint64(i+1)))
		if r := h.ExactResident(); r > budget {
			t.Fatalf("op %d: %d residents over budget %d", i, r, budget)
		}
	}
	exact, tail := h.TierBytes()
	// Each resident occupies at most one page; sketch and counter overhead
	// are bounded by their capacities.
	maxExact := uint64(budget)*hpageBytes + 128*32 + uint64(budget)*16
	if exact > maxExact {
		t.Errorf("exact tier %d bytes, bound %d", exact, maxExact)
	}
	if tail == 0 {
		t.Error("tail accounting missing")
	}
	if h.Bytes() != exact+tail {
		t.Errorf("Bytes() = %d, want %d", h.Bytes(), exact+tail)
	}
}

// TestHybridRemoveFreesPages: removing the last resident of a page frees it
// and the accounting follows.
func TestHybridRemoveFreesPages(t *testing.T) {
	h := NewHybrid(1<<10, 8, 1, 64)
	const addr = 0x4000
	h.SetWrite(addr, hslot(1, 1)) // promoteAfter=1: resident immediately
	if h.ExactResident() != 1 || h.allocated != 1 {
		t.Fatalf("resident=%d pages=%d after promote", h.ExactResident(), h.allocated)
	}
	h.Remove(addr)
	if h.ExactResident() != 0 || h.allocated != 0 {
		t.Fatalf("resident=%d pages=%d after Remove", h.ExactResident(), h.allocated)
	}
	if s, ok := h.LookupWrite(addr); ok {
		t.Fatalf("removed address still present: %v", s)
	}
}

// TestHybridTieredInterface: the store satisfies the registry's optional
// interfaces the pipeline relies on.
func TestHybridTieredInterface(t *testing.T) {
	var st sig.Store = NewHybrid(1<<10, 4, 4, 64)
	if _, ok := st.(sig.Tiered); !ok {
		t.Error("Hybrid does not implement sig.Tiered")
	}
	if _, ok := st.(sig.Promoter); !ok {
		t.Error("Hybrid does not implement sig.Promoter")
	}
	if _, ok := st.(sig.Tracker); !ok {
		t.Error("Hybrid does not implement sig.Tracker")
	}
	if _, ok := st.(sig.RunVisitor); !ok {
		t.Error("Hybrid does not implement sig.RunVisitor")
	}
}
