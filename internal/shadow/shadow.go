// Package shadow implements the classical shadow-memory access-history store
// the paper argues against (§III-B): "the access history of addresses is
// stored in a table where the index of an address is the address itself."
//
// A flat table covering the whole address range wastes enormous memory, so —
// like practical shadow-memory tools — this implementation uses a two-level
// page table: the upper address bits select a directory entry, the lower bits
// an offset within a lazily allocated page of slots. It is exact (no false
// positives or negatives) but its footprint grows with the address footprint
// of the target, which is precisely the overhead signatures avoid. It exists
// here as the comparison baseline for the store-ablation benchmark.
package shadow

import "ddprof/internal/sig"

const (
	pageBits = 16 // 64 Ki slots per page
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

type page struct {
	writes [pageSize]sig.Slot
	reads  [pageSize]sig.Slot
}

// Memory is a two-level shadow-memory store implementing sig.Store.
// The zero value is not usable; call New.
type Memory struct {
	pages map[uint64]*page
	// allocated tracks pages for Bytes accounting.
	allocated uint64
}

// New returns an empty shadow memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && alloc {
		p = new(page)
		m.pages[key] = p
		m.allocated++
	}
	return p
}

// LookupWrite implements sig.Store.
func (m *Memory) LookupWrite(addr uint64) (sig.Slot, bool) {
	p := m.pageFor(addr, false)
	if p == nil {
		return sig.Slot{}, false
	}
	s := p.writes[addr&pageMask]
	return s, !s.Empty()
}

// LookupRead implements sig.Store.
func (m *Memory) LookupRead(addr uint64) (sig.Slot, bool) {
	p := m.pageFor(addr, false)
	if p == nil {
		return sig.Slot{}, false
	}
	s := p.reads[addr&pageMask]
	return s, !s.Empty()
}

// SetWrite implements sig.Store.
func (m *Memory) SetWrite(addr uint64, s sig.Slot) {
	m.pageFor(addr, true).writes[addr&pageMask] = s
}

// SetRead implements sig.Store.
func (m *Memory) SetRead(addr uint64, s sig.Slot) {
	m.pageFor(addr, true).reads[addr&pageMask] = s
}

// Remove implements sig.Store.
func (m *Memory) Remove(addr uint64) {
	if p := m.pageFor(addr, false); p != nil {
		p.writes[addr&pageMask] = sig.Slot{}
		p.reads[addr&pageMask] = sig.Slot{}
	}
}

// Bytes implements sig.Store: allocated pages dominate.
func (m *Memory) Bytes() uint64 {
	const pageBytes = pageSize * 24 * 2
	return m.allocated * pageBytes
}

// ModeledBytes implements sig.Store. Shadow memory has no approximation;
// its model is its actual size.
func (m *Memory) ModeledBytes() uint64 { return m.Bytes() }

// Pages returns the number of shadow pages allocated so far.
func (m *Memory) Pages() int { return int(m.allocated) }

// VisitWriteRun implements sig.RunVisitor. Shadow memory has no hash to
// hoist, but a strided run crosses a 64Ki-slot page only every
// pageSize/stride elements, so resolving the page pointer once per crossing
// (instead of one map probe per element, three on the elementwise fallback)
// keeps SD3 ranges cheap here too. Every geometry is accepted: page indexing
// is plain address arithmetic and wraps with the addresses.
func (m *Memory) VisitWriteRun(base, stride uint64, count uint32, visit func(j uint32, write, read sig.Slot) sig.Slot) bool {
	var (
		p   *page
		key uint64
	)
	addr := base
	for j := uint32(0); j < count; j++ {
		if k := addr >> pageBits; p == nil || k != key {
			key = k
			if p = m.pages[k]; p == nil {
				p = new(page)
				m.pages[k] = p
				m.allocated++
			}
		}
		off := addr & pageMask
		p.writes[off] = visit(j, p.writes[off], p.reads[off])
		addr += stride
	}
	return true
}

// VisitReadRun implements sig.RunVisitor.
func (m *Memory) VisitReadRun(base, stride uint64, count uint32, visit func(j uint32, write sig.Slot) sig.Slot) bool {
	var (
		p   *page
		key uint64
	)
	addr := base
	for j := uint32(0); j < count; j++ {
		if k := addr >> pageBits; p == nil || k != key {
			key = k
			if p = m.pages[k]; p == nil {
				p = new(page)
				m.pages[k] = p
				m.allocated++
			}
		}
		off := addr & pageMask
		p.reads[off] = visit(j, p.writes[off])
		addr += stride
	}
	return true
}
