// The hybrid access-history store: heavy-hitter addresses live in an exact
// paged shadow map, the long tail in the paper's approximate signature. The
// motivating observation is the same one behind the §IV-A load balancer — a
// handful of addresses dominate real access streams — so giving just those
// addresses exact history removes most collision-induced false positives
// and negatives while the signature keeps the footprint bounded for the
// tail. Promotion is fed from two sides: the pipeline producer seeds the
// store with its Misra–Gries top-10 (sig.Promoter), and the store promotes
// worker-locally once its own SpaceSaving sketch sees an address often
// enough. An exactness budget caps the resident set; when it is full, a
// hotter candidate evicts the coldest resident, whose state is written back
// to the signature tail.
package shadow

import "ddprof/internal/sig"

const (
	// Hybrid pages are deliberately tiny compared to Memory's 64Ki-slot
	// pages: residents are individually promoted addresses, not dense
	// regions, so a 64-address page (3 KiB of slots) bounds the per-resident
	// footprint while still amortizing map probes over spatial clusters.
	hpageBits = 6
	hpageSize = 1 << hpageBits
	hpageMask = hpageSize - 1
	// hpageBytes is the accounting cost of one hybrid page: two slot arrays,
	// the resident bitmap, and map-entry overhead.
	hpageBytes = hpageSize*24*2 + 64
)

type hpage struct {
	writes   [hpageSize]sig.Slot
	reads    [hpageSize]sig.Slot
	resident uint64 // bitmap: which offsets hold exact state
}

// Hybrid is the two-tier store. With an exactness budget of 0 the exact
// tier is unbounded and every address is promoted on first write: the store
// then behaves exactly like shadow memory (the tail is never touched),
// which is what the cross-backend equivalence suite runs against. With a
// positive budget at most that many addresses are resident at once and the
// rest live in the signature tail.
type Hybrid struct {
	pages     map[uint64]*hpage
	allocated uint64
	tail      *sig.Signature

	budget    int // max resident addresses; 0 = unbounded
	resident  int
	threshold uint64 // sketch count at which an address self-promotes

	// sketch and resCount exist only in bounded mode: the sketch counts
	// tail accesses to find promotion candidates, resCount counts exact-tier
	// accesses per resident so eviction can pick the coldest.
	sketch   *sig.HeavySketch
	resCount map[uint64]uint64

	// Cached coldest resident. Counts only grow, so a cached minimum stays
	// a minimum until its own count moves (or it leaves the tier) — which
	// coldest() detects by revalidating against resCount — or a new resident
	// adopts with a smaller count, which adopt() invalidates explicitly.
	// The cache makes the common full-tier case (a tail candidate that is
	// not hotter than the coldest resident) O(1) instead of a scan per
	// access.
	coldAddr uint64
	coldCnt  uint64
	coldOK   bool
}

// NewHybrid returns a hybrid store. tailSlots sizes the signature tail,
// exactBudget caps the resident exact addresses (0 = unbounded exact tier),
// promoteAfter is the sketch count at which a tail address self-promotes,
// and sketchCap bounds the candidate sketch.
func NewHybrid(tailSlots, exactBudget, promoteAfter, sketchCap int) *Hybrid {
	h := &Hybrid{
		pages:  make(map[uint64]*hpage),
		tail:   sig.NewSignature(tailSlots),
		budget: exactBudget,
	}
	if promoteAfter < 1 {
		promoteAfter = 1
	}
	h.threshold = uint64(promoteAfter)
	if exactBudget > 0 {
		h.sketch = sig.NewHeavySketch(sketchCap)
		h.resCount = make(map[uint64]uint64, exactBudget)
	}
	return h
}

// exactSlot resolves addr's exact-tier cell, nil page when absent.
func (h *Hybrid) exactSlot(addr uint64) (*hpage, uint64, bool) {
	p := h.pages[addr>>hpageBits]
	if p == nil {
		return nil, 0, false
	}
	off := addr & hpageMask
	return p, off, p.resident&(1<<off) != 0
}

// adopt makes addr resident: page allocation, bitmap, accounting, and —
// in bounded mode — carrying the tail's current (approximate) history
// across so promotion does not drop the address's last accesses.
func (h *Hybrid) adopt(addr uint64, cnt uint64) *hpage {
	key := addr >> hpageBits
	p := h.pages[key]
	if p == nil {
		p = new(hpage)
		h.pages[key] = p
		h.allocated++
	}
	off := addr & hpageMask
	if p.resident&(1<<off) != 0 {
		return p
	}
	p.resident |= 1 << off
	h.resident++
	if h.budget > 0 {
		if w, ok := h.tail.LookupWrite(addr); ok {
			p.writes[off] = w
		}
		if r, ok := h.tail.LookupRead(addr); ok {
			p.reads[off] = r
		}
		h.resCount[addr] = cnt
		if h.coldOK && cnt < h.coldCnt {
			h.coldOK = false
		}
		h.sketch.Forget(addr)
	}
	return p
}

// demote evicts a resident back to the tail: exact state is written into
// the signature (where it is subject to collisions again, like any tail
// address) and the page is freed once empty.
func (h *Hybrid) demote(addr uint64) {
	key := addr >> hpageBits
	p := h.pages[key]
	if p == nil {
		return
	}
	off := addr & hpageMask
	if p.resident&(1<<off) == 0 {
		return
	}
	if s := p.writes[off]; !s.Empty() {
		h.tail.SetWrite(addr, s)
	}
	if s := p.reads[off]; !s.Empty() {
		h.tail.SetRead(addr, s)
	}
	p.writes[off], p.reads[off] = sig.Slot{}, sig.Slot{}
	p.resident &^= 1 << off
	h.resident--
	delete(h.resCount, addr)
	if p.resident == 0 {
		delete(h.pages, key)
		h.allocated--
	}
}

// coldest returns a resident with the smallest exact-tier access count,
// preferring the cached minimum when it is still valid; a scan (ties break
// toward the lower address, for determinism) refills the cache otherwise.
func (h *Hybrid) coldest() (addr, cnt uint64, ok bool) {
	if h.coldOK {
		if c, live := h.resCount[h.coldAddr]; live && c == h.coldCnt {
			return h.coldAddr, h.coldCnt, true
		}
		h.coldOK = false
	}
	for a, c := range h.resCount {
		if !ok || c < cnt || (c == cnt && a < addr) {
			addr, cnt, ok = a, c, true
		}
	}
	if ok {
		h.coldAddr, h.coldCnt, h.coldOK = addr, cnt, true
	}
	return
}

// observe counts one tail access and reports whether it promoted addr. The
// hysteresis against thrashing is twofold: an address must accumulate
// threshold sketched accesses before it becomes a candidate at all, and a
// full exact tier only evicts a resident that is strictly colder than the
// candidate.
func (h *Hybrid) observe(addr uint64) bool {
	h.sketch.Offer(addr)
	cnt := h.sketch.Count(addr)
	if cnt < h.threshold {
		return false
	}
	if h.resident >= h.budget {
		victim, vcnt, ok := h.coldest()
		if !ok || vcnt >= cnt {
			return false
		}
		h.demote(victim)
	}
	h.adopt(addr, cnt)
	return true
}

// Promote implements sig.Promoter: external seeding from the producer's
// heavy-hitter sketch. A seeded address is trusted to be globally hot, so a
// full exact tier evicts its coldest resident unconditionally; the seed
// enters with at least the self-promotion threshold as its count so the
// next promotion round does not immediately pick it as the coldest.
func (h *Hybrid) Promote(addr uint64) {
	if h.budget == 0 {
		return // every address is already exact
	}
	if _, _, res := h.exactSlot(addr); res {
		return
	}
	cnt := h.sketch.Count(addr)
	if cnt < h.threshold {
		cnt = h.threshold
	}
	if h.resident >= h.budget {
		victim, _, ok := h.coldest()
		if !ok {
			return
		}
		h.demote(victim)
	}
	h.adopt(addr, cnt)
}

// LookupWrite implements sig.Store.
func (h *Hybrid) LookupWrite(addr uint64) (sig.Slot, bool) {
	if p, off, res := h.exactSlot(addr); res {
		s := p.writes[off]
		return s, !s.Empty()
	}
	if h.budget == 0 {
		return sig.Slot{}, false
	}
	return h.tail.LookupWrite(addr)
}

// LookupRead implements sig.Store.
func (h *Hybrid) LookupRead(addr uint64) (sig.Slot, bool) {
	if p, off, res := h.exactSlot(addr); res {
		s := p.reads[off]
		return s, !s.Empty()
	}
	if h.budget == 0 {
		return sig.Slot{}, false
	}
	return h.tail.LookupRead(addr)
}

// SetWrite implements sig.Store.
func (h *Hybrid) SetWrite(addr uint64, s sig.Slot) {
	if p, off, res := h.exactSlot(addr); res {
		p.writes[off] = s
		if h.resCount != nil {
			h.resCount[addr]++
		}
		return
	}
	if h.budget == 0 {
		p := h.adopt(addr, 0)
		p.writes[addr&hpageMask] = s
		return
	}
	if h.observe(addr) {
		p, off, _ := h.exactSlot(addr)
		p.writes[off] = s
		h.resCount[addr]++
		return
	}
	h.tail.SetWrite(addr, s)
}

// SetRead implements sig.Store.
func (h *Hybrid) SetRead(addr uint64, s sig.Slot) {
	if p, off, res := h.exactSlot(addr); res {
		p.reads[off] = s
		if h.resCount != nil {
			h.resCount[addr]++
		}
		return
	}
	if h.budget == 0 {
		p := h.adopt(addr, 0)
		p.reads[addr&hpageMask] = s
		return
	}
	if h.observe(addr) {
		p, off, _ := h.exactSlot(addr)
		p.reads[off] = s
		h.resCount[addr]++
		return
	}
	h.tail.SetRead(addr, s)
}

// Remove implements sig.Store. A resident is cleared exactly; a tail
// address pays the signature's usual collateral clearing.
func (h *Hybrid) Remove(addr uint64) {
	if p, off, res := h.exactSlot(addr); res {
		p.writes[off], p.reads[off] = sig.Slot{}, sig.Slot{}
		p.resident &^= 1 << off
		h.resident--
		delete(h.resCount, addr)
		if p.resident == 0 {
			delete(h.pages, addr>>hpageBits)
			h.allocated--
		}
		return
	}
	if h.budget == 0 {
		return
	}
	h.sketch.Forget(addr)
	h.tail.Remove(addr)
}

// VisitWriteRun implements sig.RunVisitor. In unbounded mode the walk
// resolves the exact page once per crossing, like shadow.Memory; in bounded
// mode each element routes by residency, so the walk composes the
// per-address operations (still one bulk dispatch for the engine, with the
// range path's batched dependence observation).
func (h *Hybrid) VisitWriteRun(base, stride uint64, count uint32, visit func(j uint32, write, read sig.Slot) sig.Slot) bool {
	addr := base
	if h.budget == 0 {
		var (
			p   *hpage
			key uint64
		)
		for j := uint32(0); j < count; j++ {
			if k := addr >> hpageBits; p == nil || k != key {
				key = k
				if p = h.pages[k]; p == nil {
					p = new(hpage)
					h.pages[k] = p
					h.allocated++
				}
			}
			off := addr & hpageMask
			if p.resident&(1<<off) == 0 {
				p.resident |= 1 << off
				h.resident++
			}
			p.writes[off] = visit(j, p.writes[off], p.reads[off])
			addr += stride
		}
		return true
	}
	for j := uint32(0); j < count; j++ {
		w, _ := h.LookupWrite(addr)
		r, _ := h.LookupRead(addr)
		h.SetWrite(addr, visit(j, w, r))
		addr += stride
	}
	return true
}

// VisitReadRun implements sig.RunVisitor.
func (h *Hybrid) VisitReadRun(base, stride uint64, count uint32, visit func(j uint32, write sig.Slot) sig.Slot) bool {
	addr := base
	if h.budget == 0 {
		var (
			p   *hpage
			key uint64
		)
		for j := uint32(0); j < count; j++ {
			if k := addr >> hpageBits; p == nil || k != key {
				key = k
				if p = h.pages[k]; p == nil {
					p = new(hpage)
					h.pages[k] = p
					h.allocated++
				}
			}
			off := addr & hpageMask
			if p.resident&(1<<off) == 0 {
				p.resident |= 1 << off
				h.resident++
			}
			p.reads[off] = visit(j, p.writes[off])
			addr += stride
		}
		return true
	}
	for j := uint32(0); j < count; j++ {
		w, _ := h.LookupWrite(addr)
		h.SetRead(addr, visit(j, w))
		addr += stride
	}
	return true
}

// TierBytes implements sig.Tiered.
func (h *Hybrid) TierBytes() (exact, tail uint64) {
	exact = h.allocated * hpageBytes
	if h.resCount != nil {
		exact += uint64(len(h.resCount)) * 16
	}
	if h.sketch != nil {
		exact += uint64(h.sketch.Len()) * 32
	}
	return exact, h.tail.Bytes()
}

// ExactResident implements sig.Tiered.
func (h *Hybrid) ExactResident() int { return h.resident }

// Bytes implements sig.Store: both tiers.
func (h *Hybrid) Bytes() uint64 {
	exact, tail := h.TierBytes()
	return exact + tail
}

// ModeledBytes implements sig.Store: the exact tier at its true size plus
// the tail under the paper's 4 B/slot model.
func (h *Hybrid) ModeledBytes() uint64 {
	exact, _ := h.TierBytes()
	return exact + h.tail.ModeledBytes()
}

// EnableTracking implements sig.Tracker by forwarding to the signature
// tail — the tier with an Eq. (2) accuracy question to answer.
func (h *Hybrid) EnableTracking() { h.tail.EnableTracking() }

// Accuracy implements sig.Tracker.
func (h *Hybrid) Accuracy() (sig.AccuracyStats, bool) { return h.tail.Accuracy() }

// Occupancy reports the tail signature's write-slot occupancy, feeding the
// same occupancy gauge every signature-backed worker publishes.
func (h *Hybrid) Occupancy() float64 { return h.tail.Occupancy() }
