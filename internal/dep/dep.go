// Package dep defines the profiler's output: pair-wise data dependences.
//
// A data dependence is represented as a triple <sink, type, source> (paper
// §III-A). type is RAW, WAR or WAW; the special type INIT marks the first
// write to a memory address. sink and source are source-code locations; for
// multi-threaded targets each additionally carries a thread ID (§V), and the
// variable name involved is attached to the source. Identical dependences are
// merged (§III-B final paragraph: merging shrank NAS output from 6.1 GB to
// 53 KB, a factor of ~1e5); a Set therefore maps dependence identity to
// aggregate statistics instead of storing instances.
package dep

import (
	"math/bits"
	"sync"

	"ddprof/internal/loc"
)

// Type classifies a dependence.
type Type uint8

const (
	// RAW is read-after-write (true dependence).
	RAW Type = iota
	// WAR is write-after-read (anti dependence).
	WAR
	// WAW is write-after-write (output dependence).
	WAW
	// INIT marks the first write to an address.
	INIT
)

func (t Type) String() string {
	switch t {
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	case WAW:
		return "WAW"
	case INIT:
		return "INIT"
	}
	return "???"
}

// Key is the identity of a dependence; two dynamic instances with equal Keys
// are "identical dependences" in the paper's sense and are merged.
type Key struct {
	Sink       loc.SourceLoc
	Src        loc.SourceLoc
	Var        loc.VarID
	SinkThread int16
	SrcThread  int16
	Type       Type
}

// Stats aggregates the dynamic instances of one dependence.
type Stats struct {
	// Count is the number of dynamic instances observed.
	Count uint64
	// Reversed records whether any instance was observed with reversed
	// timestamps, exposing a potential data race (paper §V-B).
	Reversed bool
	// Carried records whether any instance crossed iterations of the
	// innermost loop enclosing both endpoints (loop-carried).
	Carried bool
	// Reduction records whether every instance connected two accesses of a
	// reduction-style statement; such a carried RAW is removable by a
	// reduction transformation. It starts true and is cleared by any
	// non-reduction instance.
	Reduction bool
	// MinDist and MaxDist bound the observed dependence distance — the
	// iteration gap at the carried loop (Alchemist-style dependence-distance
	// profiling; a distance of 0 means a loop-independent instance was
	// seen). A stable MinDist > 1 indicates blocking/skewing headroom.
	MinDist uint32
	MaxDist uint32
}

// newStats is the zero-instance state of a dependence: Reduction holds until
// a non-reduction instance clears it, MinDist starts at the maximum so the
// first instance's distance becomes the floor.
func newStats() Stats { return Stats{Reduction: true, MinDist: ^uint32(0)} }

// fold merges the aggregate o into st: counts add, the sticky flags OR
// (Reduction ANDs), the distance bounds widen. Folding o into newStats()
// reproduces o exactly, which is what makes Merge a pure union.
func (st *Stats) fold(o *Stats) {
	st.Count += o.Count
	st.Carried = st.Carried || o.Carried
	st.Reversed = st.Reversed || o.Reversed
	st.Reduction = st.Reduction && o.Reduction
	if o.MinDist < st.MinDist {
		st.MinDist = o.MinDist
	}
	if o.MaxDist > st.MaxDist {
		st.MaxDist = o.MaxDist
	}
}

// Set storage layout. Entries (key + stats, inline) live in fixed-size slab
// pages that are never moved or freed while the Set is live, so a *Stats
// handed out by Ref stays valid across any number of later insertions — the
// pointer-stability contract the engine's direct-mapped instance cache
// depends on. The open-addressing index holds one packed word per slot
// (hash<<32 | entryRef+1, 0 = empty) and can be regrown freely: rehashing
// moves index words, never entries. Iteration (Range, Keys, Merge, encode)
// walks the slabs in insertion order — cache-linear, no bucket chasing.
const (
	pageShift   = 9 // 512 entries (~24 KiB) per page
	pageEntries = 1 << pageShift
	pageMask    = pageEntries - 1
)

// entry is one dependence record: identity, its cached hash (so regrowing
// the index never re-hashes keys), and the inline aggregate. epoch stamps the
// set epoch at which the dependence was first observed, and reported is the
// Count watermark as of the last ExtractDelta — together they make the set an
// incremental source: "what is new since epoch E" and "what changed since the
// last extraction" are both O(entries) slab walks with no auxiliary state.
type entry struct {
	key      Key
	hash     uint32
	epoch    uint32
	reported uint64
	stats    Stats
}

type slabPage struct {
	e [pageEntries]entry
}

// pagePool recycles slab pages across Sets. A long-lived daemon tears down
// one dependence-heavy session after another; without the pool every session
// re-grows its tables from zero. Entries are fully overwritten on alloc, so
// pages are pooled dirty.
var pagePool = sync.Pool{New: func() any { return new(slabPage) }}

// Set is a merged collection of dependences. It is not safe for concurrent
// use; the parallel profiler keeps one Set per worker and merges at the end
// (paper §IV: "the use of maps ensures that identical dependences are not
// stored more than once").
type Set struct {
	index  []uint64 // hash<<32 | ref+1 per slot; 0 = empty; len is a power of two
	pages  []*slabPage
	n      int // entries in use; entry ref r lives at pages[r>>pageShift].e[r&pageMask]
	growAt int
	// instances counts every dynamic dependence ever added, merged or not;
	// the merging ablation reports Instances vs Unique.
	instances uint64
	// epoch is the stamp given to entries created from now on; SetEpoch
	// advances it. Entries remember their first-observed epoch forever
	// (Merge keeps the minimum across shards).
	epoch uint32
}

// NewSet returns an empty dependence set.
func NewSet() *Set {
	return &Set{}
}

// hashKey mixes a dependence key into an index hash. One multiply over both
// packed words (the same construction as the engine's instance-cache hash):
// XORing y rotated by 32 puts Var against Src and the thread/type bits
// against Sink, so keys differing in any single field land on distinct
// inputs to the multiplier.
func hashKey(k Key) uint32 {
	x := uint64(k.Sink) | uint64(k.Src)<<32
	y := uint64(k.Var) | uint64(uint16(k.SinkThread))<<32 |
		uint64(uint16(k.SrcThread))<<48 | uint64(k.Type)<<40
	h := (x ^ bits.RotateLeft64(y, 32)) * 0x9E3779B97F4A7C15
	return uint32(h >> 32)
}

// at returns entry ref r.
func (s *Set) at(r int) *entry {
	return &s.pages[r>>pageShift].e[r&pageMask]
}

// Add records one dynamic instance of dependence k. carried marks a
// loop-carried instance, reduction marks an instance whose two endpoints are
// both reduction-statement accesses, and reversed marks a timestamp
// reversal.
func (s *Set) Add(k Key, carried, reduction, reversed bool) {
	s.AddDist(k, carried, reduction, reversed, 0)
}

// AddDist is Add with the instance's dependence distance (the iteration gap
// at the carried loop; 0 for loop-independent instances).
func (s *Set) AddDist(k Key, carried, reduction, reversed bool, dist uint32) {
	s.ObserveVia(s.Ref(k), 1, carried, reduction, reversed, dist)
}

// Ref returns the pointer-stable *Stats entry for k, creating it if absent.
//
// Pointer-stability contract: the returned pointer stays valid — and keeps
// aliasing k's live aggregate — for the life of the Set, across any number
// of later insertions, because entries live inline in slab pages that are
// never moved or reallocated (only the index regrows). Hot paths may
// therefore cache it (the engine's instance cache does) and record further
// instances through ObserveVia without re-hashing the key. Only Reset and
// Release end the contract: after either, previously returned pointers no
// longer refer to anything in the Set. Ref alone records no instance.
func (s *Set) Ref(k Key) *Stats {
	return s.refHashed(k, hashKey(k))
}

// refHashed is Ref with the key's hash already computed — the merge fold
// reuses the hash cached in the source entry instead of re-mixing the key.
func (s *Set) refHashed(k Key, h uint32) *Stats {
	return &s.entryHashed(k, h).stats
}

// entryHashed returns the entry for k, creating it (stamped with the set's
// current epoch, watermark zero) if absent. Callers that need to know whether
// the probe created the entry compare s.n before and after.
func (s *Set) entryHashed(k Key, h uint32) *entry {
	if s.index == nil {
		s.init()
	}
	mask := uint32(len(s.index) - 1)
	i := h & mask
	for {
		v := s.index[i]
		if v == 0 {
			break
		}
		if uint32(v>>32) == h {
			if e := s.at(int(uint32(v)) - 1); e.key == k {
				return e
			}
		}
		i = (i + 1) & mask
	}
	if s.n >= s.growAt {
		s.grow()
		mask = uint32(len(s.index) - 1)
		i = h & mask
		for s.index[i] != 0 {
			i = (i + 1) & mask
		}
	}
	e := s.alloc()
	e.key, e.hash, e.stats = k, h, newStats()
	e.epoch, e.reported = s.epoch, 0         // pages are pooled dirty: overwrite both
	s.index[i] = uint64(h)<<32 | uint64(s.n) // s.n is ref+1 after alloc
	return e
}

func (s *Set) init() {
	s.index = make([]uint64, 64)
	s.growAt = len(s.index) * 3 / 4
}

// alloc appends one entry slot, taking a fresh page from the pool when the
// current one fills (or reusing a page retained by Reset).
func (s *Set) alloc() *entry {
	pi, off := s.n>>pageShift, s.n&pageMask
	if off == 0 && pi == len(s.pages) {
		s.pages = append(s.pages, pagePool.Get().(*slabPage))
	}
	s.n++
	return &s.pages[pi].e[off]
}

// grow doubles the index and re-seats every entry ref. Entries do not move:
// only the 8-byte index words are rewritten, using the hash cached in each
// entry.
func (s *Set) grow() {
	s.rebuildIndex(len(s.index) * 2)
}

// reserve sizes the index for n entries up front, so a bulk insertion (a
// large merge of mostly-disjoint sets) re-seats the index once instead of
// at every doubling.
func (s *Set) reserve(n int) {
	sz := 64
	for sz*3/4 < n {
		sz *= 2
	}
	if sz > len(s.index) {
		s.rebuildIndex(sz)
	}
}

func (s *Set) rebuildIndex(size int) {
	ni := make([]uint64, size)
	mask := uint32(size - 1)
	for r := 0; r < s.n; r++ {
		e := s.at(r)
		i := e.hash & mask
		for ni[i] != 0 {
			i = (i + 1) & mask
		}
		ni[i] = uint64(e.hash)<<32 | uint64(r+1)
	}
	s.index = ni
	s.growAt = size * 3 / 4
}

// lookup returns the entry for k, or nil.
func (s *Set) lookup(k Key) *entry {
	if s.index == nil {
		return nil
	}
	h := hashKey(k)
	mask := uint32(len(s.index) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		v := s.index[i]
		if v == 0 {
			return nil
		}
		if uint32(v>>32) == h {
			if e := s.at(int(uint32(v)) - 1); e.key == k {
				return e
			}
		}
	}
}

// ObserveVia records n dynamic instances of the dependence whose stats entry
// is st (obtained from Ref on this Set), all with the same attributes. It is
// exactly equivalent to n AddDist calls for that key — the fuzz suite holds
// the two paths to that contract.
func (s *Set) ObserveVia(st *Stats, n uint64, carried, reduction, reversed bool, dist uint32) {
	s.instances += n
	st.Count += n
	st.Carried = st.Carried || carried
	st.Reversed = st.Reversed || reversed
	st.Reduction = st.Reduction && reduction
	if dist < st.MinDist {
		st.MinDist = dist
	}
	if dist > st.MaxDist {
		st.MaxDist = dist
	}
}

// Merge folds other into s. Other's contents are not modified. Epoch stamps
// survive the fold — a dependence's first-observed epoch is the minimum
// across shards — and reported watermarks sum, so a merged set still knows
// exactly how many instances its shards have already shipped as deltas:
// ExtractDelta on the merge result yields precisely the unshipped remainder.
func (s *Set) Merge(other *Set) {
	if other == nil || other.n == 0 {
		return
	}
	// Worst case every key is new; one up-front index build beats doubling
	// through the merge, and an over-sized index just probes shorter.
	s.reserve(s.n + other.n)
	for r := 0; r < other.n; r++ {
		o := other.at(r)
		before := s.n
		e := s.entryHashed(o.key, o.hash)
		if s.n != before {
			// Created here: adopt the source's provenance wholesale.
			e.epoch, e.reported = o.epoch, o.reported
		} else {
			if o.epoch < e.epoch {
				e.epoch = o.epoch
			}
			e.reported += o.reported
		}
		e.stats.fold(&o.stats)
	}
	s.instances += other.instances
}

// SetEpoch advances the stamp given to dependences first observed from now
// on. Epochs are monotone per set by convention (the profiler's epoch clock
// only counts up); SetEpoch does not restamp existing entries.
func (s *Set) SetEpoch(e uint32) { s.epoch = e }

// Epoch returns the stamp currently given to newly observed dependences.
func (s *Set) Epoch() uint32 { return s.epoch }

// ExtractDelta drains every unreported instance into out and returns the
// number of dependences that had advanced. For each entry whose Count has
// moved past its reported watermark, a delta record with Count = advance and
// the entry's current flags and distance bounds is folded into out — carrying
// the entry's first-observed epoch — and the watermark moves up to Count.
//
// Because every Stats field is monotone under fold (counts add, Carried and
// Reversed OR, Reduction ANDs, the distance bounds widen), the union of all
// deltas ever extracted plus the remainder of one final extraction folds back
// to the exact final set. Mutations that do not advance Count are invisible
// to extraction; every recording path in this package advances it.
func (s *Set) ExtractDelta(out *Set) int {
	changed := 0
	for r := 0; r < s.n; r++ {
		e := s.at(r)
		if e.stats.Count == e.reported {
			continue
		}
		d := e.stats
		d.Count -= e.reported
		e.reported = e.stats.Count
		before := out.n
		oe := out.entryHashed(e.key, e.hash)
		if out.n != before || e.epoch < oe.epoch {
			oe.epoch = e.epoch
		}
		oe.stats.fold(&d)
		out.instances += d.Count
		changed++
	}
	return changed
}

// Unreported reports whether any dependence has instances not yet drained by
// ExtractDelta — a cheap "is there a non-empty delta pending" probe.
func (s *Set) Unreported() bool {
	for r := 0; r < s.n; r++ {
		if e := s.at(r); e.stats.Count != e.reported {
			return true
		}
	}
	return false
}

// RangeSince calls f for every dependence first observed at epoch since or
// later, in insertion order, passing the first-observed epoch alongside the
// aggregate. RangeSince(0, ...) visits everything. Returning false stops the
// iteration.
func (s *Set) RangeSince(since uint32, f func(Key, Stats, uint32) bool) {
	for r := 0; r < s.n; r++ {
		e := s.at(r)
		if e.epoch < since {
			continue
		}
		if !f(e.key, e.stats, e.epoch) {
			return
		}
	}
}

// Reset empties the set while retaining its storage — the index at its grown
// size and every slab page — so refilling to a comparable population
// allocates nothing. Stats pointers previously returned by Ref no longer
// belong to any key and must not be used.
func (s *Set) Reset() {
	for i := range s.index {
		s.index[i] = 0
	}
	s.n = 0
	s.instances = 0
	s.epoch = 0
}

// Release empties the set and returns its slab pages to the shared page
// pool, where the next NewSet (anywhere in the process) picks them up. Use
// it when the set is done for good — ddprofd releases a session's sets at
// teardown, and the merge stage releases each consumed shard. The Set
// itself remains usable and behaves like a fresh NewSet. Stats pointers
// previously returned by Ref must not be used afterwards: the pages they
// point into will be rewritten by an unrelated Set.
func (s *Set) Release() {
	for _, p := range s.pages {
		pagePool.Put(p)
	}
	s.pages = nil
	s.index = nil
	s.n = 0
	s.growAt = 0
	s.instances = 0
	s.epoch = 0
}

// Unique returns the number of merged (distinct) dependences.
func (s *Set) Unique() int { return s.n }

// Instances returns the total number of dynamic dependence instances added.
func (s *Set) Instances() uint64 { return s.instances }

// addInstances bumps the instance counter without touching any entry; the
// decoder uses it when folding wire records whose counts are pre-aggregated.
func (s *Set) addInstances(n uint64) { s.instances += n }

// Lookup returns the stats for a dependence, if present.
func (s *Set) Lookup(k Key) (Stats, bool) {
	e := s.lookup(k)
	if e == nil {
		return Stats{}, false
	}
	return e.stats, true
}

// Range calls f for every dependence in insertion order. Returning false
// from f stops the iteration.
func (s *Set) Range(f func(Key, Stats) bool) {
	for r := 0; r < s.n; r++ {
		e := s.at(r)
		if !f(e.key, e.stats) {
			return
		}
	}
}

// Keys returns all dependence keys in insertion order.
func (s *Set) Keys() []Key {
	ks := make([]Key, 0, s.n)
	for r := 0; r < s.n; r++ {
		ks = append(ks, s.at(r).key)
	}
	return ks
}

// FilterType returns the keys of the given type.
func (s *Set) FilterType(t Type) []Key {
	var ks []Key
	for r := 0; r < s.n; r++ {
		if e := s.at(r); e.key.Type == t {
			ks = append(ks, e.key)
		}
	}
	return ks
}
