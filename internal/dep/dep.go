// Package dep defines the profiler's output: pair-wise data dependences.
//
// A data dependence is represented as a triple <sink, type, source> (paper
// §III-A). type is RAW, WAR or WAW; the special type INIT marks the first
// write to a memory address. sink and source are source-code locations; for
// multi-threaded targets each additionally carries a thread ID (§V), and the
// variable name involved is attached to the source. Identical dependences are
// merged (§III-B final paragraph: merging shrank NAS output from 6.1 GB to
// 53 KB, a factor of ~1e5); a Set therefore maps dependence identity to
// aggregate statistics instead of storing instances.
package dep

import "ddprof/internal/loc"

// Type classifies a dependence.
type Type uint8

const (
	// RAW is read-after-write (true dependence).
	RAW Type = iota
	// WAR is write-after-read (anti dependence).
	WAR
	// WAW is write-after-write (output dependence).
	WAW
	// INIT marks the first write to an address.
	INIT
)

func (t Type) String() string {
	switch t {
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	case WAW:
		return "WAW"
	case INIT:
		return "INIT"
	}
	return "???"
}

// Key is the identity of a dependence; two dynamic instances with equal Keys
// are "identical dependences" in the paper's sense and are merged.
type Key struct {
	Sink       loc.SourceLoc
	Src        loc.SourceLoc
	Var        loc.VarID
	SinkThread int16
	SrcThread  int16
	Type       Type
}

// Stats aggregates the dynamic instances of one dependence.
type Stats struct {
	// Count is the number of dynamic instances observed.
	Count uint64
	// Reversed records whether any instance was observed with reversed
	// timestamps, exposing a potential data race (paper §V-B).
	Reversed bool
	// Carried records whether any instance crossed iterations of the
	// innermost loop enclosing both endpoints (loop-carried).
	Carried bool
	// Reduction records whether every instance connected two accesses of a
	// reduction-style statement; such a carried RAW is removable by a
	// reduction transformation. It starts true and is cleared by any
	// non-reduction instance.
	Reduction bool
	// MinDist and MaxDist bound the observed dependence distance — the
	// iteration gap at the carried loop (Alchemist-style dependence-distance
	// profiling; a distance of 0 means a loop-independent instance was
	// seen). A stable MinDist > 1 indicates blocking/skewing headroom.
	MinDist uint32
	MaxDist uint32
}

// Set is a merged collection of dependences. It is not safe for concurrent
// use; the parallel profiler keeps one Set per worker and merges at the end
// (paper §IV: "the use of maps ensures that identical dependences are not
// stored more than once").
type Set struct {
	m map[Key]*Stats
	// Instances counts every dynamic dependence ever added, merged or not;
	// the merging ablation reports Instances vs Unique.
	instances uint64
}

// NewSet returns an empty dependence set.
func NewSet() *Set {
	return &Set{m: make(map[Key]*Stats)}
}

// Add records one dynamic instance of dependence k. carried marks a
// loop-carried instance, reduction marks an instance whose two endpoints are
// both reduction-statement accesses, and reversed marks a timestamp
// reversal.
func (s *Set) Add(k Key, carried, reduction, reversed bool) {
	s.AddDist(k, carried, reduction, reversed, 0)
}

// AddDist is Add with the instance's dependence distance (the iteration gap
// at the carried loop; 0 for loop-independent instances).
func (s *Set) AddDist(k Key, carried, reduction, reversed bool, dist uint32) {
	s.ObserveVia(s.Ref(k), 1, carried, reduction, reversed, dist)
}

// Ref returns the pointer-stable *Stats entry for k, creating it if absent.
// The pointer stays valid for the life of the Set, so hot paths may cache it
// (the engine's instance cache does) and record further instances through
// ObserveVia without re-hashing the key. Ref alone records no instance.
func (s *Set) Ref(k Key) *Stats {
	st := s.m[k]
	if st == nil {
		st = &Stats{Reduction: true, MinDist: ^uint32(0)}
		s.m[k] = st
	}
	return st
}

// ObserveVia records n dynamic instances of the dependence whose stats entry
// is st (obtained from Ref on this Set), all with the same attributes. It is
// exactly equivalent to n AddDist calls for that key — the fuzz suite holds
// the two paths to that contract.
func (s *Set) ObserveVia(st *Stats, n uint64, carried, reduction, reversed bool, dist uint32) {
	s.instances += n
	st.Count += n
	st.Carried = st.Carried || carried
	st.Reversed = st.Reversed || reversed
	st.Reduction = st.Reduction && reduction
	if dist < st.MinDist {
		st.MinDist = dist
	}
	if dist > st.MaxDist {
		st.MaxDist = dist
	}
}

// Merge folds other into s. Other's contents are not modified.
func (s *Set) Merge(other *Set) {
	if other == nil {
		return
	}
	for k, o := range other.m {
		st := s.m[k]
		if st == nil {
			cp := *o
			s.m[k] = &cp
			continue
		}
		st.Count += o.Count
		st.Carried = st.Carried || o.Carried
		st.Reversed = st.Reversed || o.Reversed
		st.Reduction = st.Reduction && o.Reduction
		if o.MinDist < st.MinDist {
			st.MinDist = o.MinDist
		}
		if o.MaxDist > st.MaxDist {
			st.MaxDist = o.MaxDist
		}
	}
	s.instances += other.instances
}

// Unique returns the number of merged (distinct) dependences.
func (s *Set) Unique() int { return len(s.m) }

// Instances returns the total number of dynamic dependence instances added.
func (s *Set) Instances() uint64 { return s.instances }

// Lookup returns the stats for a dependence, if present.
func (s *Set) Lookup(k Key) (Stats, bool) {
	st, ok := s.m[k]
	if !ok {
		return Stats{}, false
	}
	return *st, true
}

// Range calls f for every dependence; iteration order is unspecified.
// Returning false from f stops the iteration.
func (s *Set) Range(f func(Key, Stats) bool) {
	for k, st := range s.m {
		if !f(k, *st) {
			return
		}
	}
}

// Keys returns all dependence keys in unspecified order.
func (s *Set) Keys() []Key {
	ks := make([]Key, 0, len(s.m))
	for k := range s.m {
		ks = append(ks, k)
	}
	return ks
}

// FilterType returns the keys of the given type.
func (s *Set) FilterType(t Type) []Key {
	var ks []Key
	for k := range s.m {
		if k.Type == t {
			ks = append(ks, k)
		}
	}
	return ks
}
