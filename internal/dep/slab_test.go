package dep

import (
	"bytes"
	"testing"

	"ddprof/internal/loc"
)

// slabKey deterministically fabricates distinct keys for slab tests.
func slabKey(i int) Key {
	return Key{
		Type:       Type(i % 3),
		Sink:       loc.SourceLoc(1000 + i),
		Src:        loc.SourceLoc(2000 + i/2),
		Var:        loc.VarID(i % 17),
		SinkThread: int16(i % 5),
		SrcThread:  int16(i % 7),
	}
}

// TestRefPointerStability pins the contract the engine's instance cache
// depends on: a *Stats returned by Ref keeps aliasing its key's aggregate
// across thousands of later insertions (which regrow the index and append
// slab pages many times over).
func TestRefPointerStability(t *testing.T) {
	s := NewSet()
	type held struct {
		k  Key
		st *Stats
	}
	var early []held
	for i := 0; i < 64; i++ {
		k := slabKey(i)
		early = append(early, held{k, s.Ref(k)})
	}
	for i := 64; i < 20000; i++ {
		s.AddDist(slabKey(i), i%2 == 0, false, false, uint32(i%9))
	}
	for _, h := range early {
		s.ObserveVia(h.st, 3, true, false, false, 7)
	}
	for _, h := range early {
		got, ok := s.Lookup(h.k)
		if !ok {
			t.Fatalf("key %+v lost after growth", h.k)
		}
		if got != *h.st {
			t.Fatalf("stale pointer for %+v: via ptr %+v, via lookup %+v", h.k, *h.st, got)
		}
		if got.Count != 3 || !got.Carried || got.MinDist != 7 {
			t.Fatalf("updates through held pointer not visible: %+v", got)
		}
	}
	if s.Unique() != 20000 {
		t.Fatalf("unique = %d, want 20000", s.Unique())
	}
}

func TestMergeShardsEquivalence(t *testing.T) {
	build := func() []*Set {
		shards := make([]*Set, 7)
		for w := range shards {
			shards[w] = NewSet()
			if w == 3 {
				continue // keep one shard empty
			}
			for i := 0; i < 50+w*30; i++ {
				k := slabKey((i * (w + 1)) % 90) // overlapping key ranges
				shards[w].AddDist(k, i%2 == 0, i%3 == 0, i%11 == 0, uint32(i%6))
			}
		}
		return shards
	}
	serial := NewSet()
	for _, sh := range build() {
		serial.Merge(sh)
	}
	tree := MergeShards(build())
	if tree.Unique() != serial.Unique() || tree.Instances() != serial.Instances() {
		t.Fatalf("tree unique/instances %d/%d, serial %d/%d",
			tree.Unique(), tree.Instances(), serial.Unique(), serial.Instances())
	}
	tab := loc.NewTable()
	var a, b bytes.Buffer
	if err := Encode(&a, serial, tab, nil); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, tree, tab, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("tree merge not byte-identical to serial fold under canonical encoding")
	}
}

func TestMergeShardsEdgeCases(t *testing.T) {
	if got := MergeShards(nil); got == nil || got.Unique() != 0 {
		t.Fatalf("empty input: %v", got)
	}
	if got := MergeShards([]*Set{nil, nil}); got == nil || got.Unique() != 0 {
		t.Fatalf("all-nil input: %v", got)
	}
	single := NewSet()
	single.Add(slabKey(1), false, false, false)
	if got := MergeShards([]*Set{nil, single, nil}); got != single {
		t.Fatal("singleton must be returned as-is")
	}
}

// TestResetSteadyStateAllocs pins the pooling story: a long-lived daemon
// that Resets and refills a Set to a comparable population must not allocate
// — the index stays at its grown size and the slab pages are retained.
func TestResetSteadyStateAllocs(t *testing.T) {
	const n = 3000
	fill := func(s *Set) {
		for i := 0; i < n; i++ {
			s.AddDist(slabKey(i), i%2 == 0, false, false, uint32(i%4))
		}
	}
	s := NewSet()
	fill(s) // warm: grow index, fault in pages
	allocs := testing.AllocsPerRun(20, func() {
		s.Reset()
		fill(s)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset+refill allocates %v objects/run, want 0", allocs)
	}
	if s.Unique() != n {
		t.Fatalf("unique after refill = %d, want %d", s.Unique(), n)
	}
}

func TestResetClearsContents(t *testing.T) {
	s := NewSet()
	s.Add(slabKey(1), true, false, false)
	s.Add(slabKey(2), false, false, false)
	s.Reset()
	if s.Unique() != 0 || s.Instances() != 0 {
		t.Fatalf("after Reset: unique %d instances %d", s.Unique(), s.Instances())
	}
	if _, ok := s.Lookup(slabKey(1)); ok {
		t.Fatal("key survived Reset")
	}
	s.Add(slabKey(3), false, false, false)
	if s.Unique() != 1 || s.Instances() != 1 {
		t.Fatal("Set unusable after Reset")
	}
}

func TestReleaseReturnsToFreshState(t *testing.T) {
	s := NewSet()
	for i := 0; i < 2000; i++ {
		s.Add(slabKey(i), false, false, false)
	}
	s.Release()
	if s.Unique() != 0 || s.Instances() != 0 {
		t.Fatal("Release did not empty the set")
	}
	// Still usable, like a fresh NewSet.
	s.Add(slabKey(5), true, false, false)
	st, ok := s.Lookup(slabKey(5))
	if !ok || st.Count != 1 || !st.Carried {
		t.Fatalf("set unusable after Release: %+v ok=%v", st, ok)
	}
}

// TestPagePoolReuse exercises the cross-set page recycling path end to end:
// released pages must come back zero-cost to a later set without leaking
// stale entries into it.
func TestPagePoolReuse(t *testing.T) {
	a := NewSet()
	for i := 0; i < 5000; i++ {
		a.AddDist(slabKey(i), true, true, true, 99)
	}
	a.Release()
	b := NewSet()
	for i := 0; i < 5000; i++ {
		b.Add(slabKey(i), false, false, false)
	}
	bad := 0
	b.Range(func(_ Key, st Stats) bool {
		if st.Count != 1 || st.Carried || st.Reversed || st.MaxDist != 0 {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d entries contaminated by recycled pages", bad)
	}
}

func TestInsertionOrderIteration(t *testing.T) {
	s := NewSet()
	var want []Key
	for i := 200; i >= 0; i-- { // descending, to differ from any sorted order
		k := slabKey(i)
		s.Add(k, false, false, false)
		want = append(want, k)
	}
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("keys %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration order not insertion order at %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
