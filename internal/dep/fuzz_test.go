package dep

import (
	"bytes"
	"strings"
	"testing"

	"ddprof/internal/loc"
)

// FuzzParse hardens the text-format parser: arbitrary input must either
// parse or return an error — never panic — and valid output of Write must
// always parse.
func FuzzParse(f *testing.F) {
	f.Add("1:60 BGN loop\n1:60 NOM {RAW 1:60|i} {INIT *}\n1:74 END loop 1200\n")
	f.Add("4:58|2 NOM {WAR 4:77|2|iter}\n")
	f.Add("1:9|1 NOM {RAW 1:8|2|flag [race?]}\n")
	f.Add("")
	f.Add("garbage {RAW\x00} NOM")
	f.Add("1:1 NOM {RAW 999999999999:1|x}")
	f.Fuzz(func(t *testing.T, input string) {
		set, loops, _, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must survive a write/parse round trip without
		// losing dependences.
		if set.Unique() == 0 && len(loops) == 0 {
			return
		}
	})
}

// FuzzDecode hardens the binary codec: arbitrary bytes must never panic or
// over-allocate.
func FuzzDecode(f *testing.F) {
	// Seed with a genuine encoding.
	s := NewSet()
	s.Add(Key{Type: RAW, Sink: 42, Src: 41, Var: 1}, true, false, false)
	var buf bytes.Buffer
	tab := loc.NewTable()
	_ = Encode(&buf, s, tab, []LoopRecord{{Begin: 1, End: 2, Iterations: 3}})
	f.Add(buf.Bytes())
	f.Add([]byte("DDP1"))
	f.Add([]byte{})
	f.Add([]byte("DDP1\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		set, _, _, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round-trip what decoded.
		var out bytes.Buffer
		if err := Encode(&out, set, loc.NewTable(), nil); err != nil {
			t.Fatalf("re-encode of decoded profile failed: %v", err)
		}
	})
}
