package dep

import (
	"bytes"
	"strings"
	"testing"

	"ddprof/internal/loc"
)

// FuzzParse hardens the text-format parser: arbitrary input must either
// parse or return an error — never panic — and valid output of Write must
// always parse.
func FuzzParse(f *testing.F) {
	f.Add("1:60 BGN loop\n1:60 NOM {RAW 1:60|i} {INIT *}\n1:74 END loop 1200\n")
	f.Add("4:58|2 NOM {WAR 4:77|2|iter}\n")
	f.Add("1:9|1 NOM {RAW 1:8|2|flag [race?]}\n")
	f.Add("")
	f.Add("garbage {RAW\x00} NOM")
	f.Add("1:1 NOM {RAW 999999999999:1|x}")
	f.Fuzz(func(t *testing.T, input string) {
		set, loops, _, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must survive a write/parse round trip without
		// losing dependences.
		if set.Unique() == 0 && len(loops) == 0 {
			return
		}
	})
}

// FuzzFastUpdate checks the fast-update API the engine's instance cache sits
// on: for any operation stream, recording instances through cached Ref
// pointers + ObserveVia (with arbitrary batching) must leave a Set identical
// to one built with per-instance AddDist calls.
func FuzzFastUpdate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00, 0x80, 0x7F})
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		slow := NewSet()
		fast := NewSet()
		refs := make(map[Key]*Stats)
		for len(data) >= 6 {
			op := data[:6]
			data = data[6:]
			k := Key{
				Type:       Type(op[0] % 4),
				Sink:       loc.SourceLoc(op[1] % 8),
				Src:        loc.SourceLoc(op[2] % 8),
				Var:        loc.VarID(op[3] % 4),
				SinkThread: int16(op[3] >> 6),
			}
			carried := op[4]&1 != 0
			reduction := op[4]&2 != 0
			reversed := op[4]&4 != 0
			dist := uint32(op[4] >> 3)
			n := uint64(op[5]%4) + 1 // batch 1..4 instances

			for i := uint64(0); i < n; i++ {
				slow.AddDist(k, carried, reduction, reversed, dist)
			}
			st := refs[k]
			if st == nil {
				st = fast.Ref(k)
				refs[k] = st
			}
			fast.ObserveVia(st, n, carried, reduction, reversed, dist)
		}

		if slow.Unique() != fast.Unique() {
			t.Fatalf("unique: slow %d, fast %d", slow.Unique(), fast.Unique())
		}
		if slow.Instances() != fast.Instances() {
			t.Fatalf("instances: slow %d, fast %d", slow.Instances(), fast.Instances())
		}
		slow.Range(func(k Key, st Stats) bool {
			fst, ok := fast.Lookup(k)
			if !ok {
				t.Fatalf("fast set missing key %+v", k)
			}
			if fst != st {
				t.Fatalf("stats diverge for %+v:\n slow %+v\n fast %+v", k, st, fst)
			}
			return true
		})
	})
}

// FuzzSetMergeEquivalence pins the parallel tree merge (MergeShards) and the
// streaming union encoder (EncodeUnion) byte-identical — via the canonical
// encoding — to the old serial fold, for arbitrary shard populations:
// empty and singleton shards, keys hitting Reduction/MinDist/MaxDist edge
// cases, and keys shared across shards in any combination.
func FuzzSetMergeEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{7, 1, 2, 3, 4, 5, 6, 0, 6, 5, 4, 3, 2, 1})
	f.Add([]byte{3, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 2, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		nShards := 1
		if len(data) > 0 {
			nShards = int(data[0]%8) + 1 // 1..8 shards, some left empty
			data = data[1:]
		}
		// Two independent builds of the same shard population: the tree
		// merge consumes its inputs, the serial reference must not share
		// storage with it.
		build := func() []*Set {
			shards := make([]*Set, nShards)
			for i := range shards {
				shards[i] = NewSet()
			}
			d := data
			for len(d) >= 7 {
				op := d[:7]
				d = d[7:]
				k := Key{
					Type:       Type(op[1] % 4),
					Sink:       loc.SourceLoc(op[2] % 16),
					Src:        loc.SourceLoc(op[3] % 16),
					Var:        loc.VarID(op[4] % 8),
					SinkThread: int16(op[4]>>6) - 1, // includes the -1 "no thread"
					SrcThread:  int16(op[4] >> 7),
				}
				carried := op[5]&1 != 0
				reduction := op[5]&2 != 0
				reversed := op[5]&4 != 0
				dist := uint32(op[5] >> 3)
				if op[6]&1 != 0 {
					dist = ^uint32(0) >> uint32(op[6]%31) // large distances
				}
				shards[int(op[0])%nShards].AddDist(k, carried, reduction, reversed, dist)
			}
			return shards
		}

		tab := loc.NewTable()
		encode := func(s *Set) []byte {
			var buf bytes.Buffer
			if err := Encode(&buf, s, tab, nil); err != nil {
				t.Fatalf("encode: %v", err)
			}
			return buf.Bytes()
		}

		ref := build()
		serial := NewSet()
		for _, sh := range ref {
			serial.Merge(sh)
		}
		want := encode(serial)

		// Streaming union over the untouched reference shards.
		var union bytes.Buffer
		if err := EncodeUnion(&union, tab, nil, ref...); err != nil {
			t.Fatalf("EncodeUnion: %v", err)
		}
		if !bytes.Equal(union.Bytes(), want) {
			t.Fatalf("EncodeUnion diverges from serial fold:\n union %x\nserial %x", union.Bytes(), want)
		}

		// Parallel tree reduction over a second, identical build.
		tree := MergeShards(build())
		if got := encode(tree); !bytes.Equal(got, want) {
			t.Fatalf("MergeShards diverges from serial fold:\n  tree %x\nserial %x", got, want)
		}
		if tree.Instances() != serial.Instances() {
			t.Fatalf("instances: tree %d, serial %d", tree.Instances(), serial.Instances())
		}
	})
}

// FuzzDecode hardens the binary codec: arbitrary bytes must never panic or
// over-allocate.
func FuzzDecode(f *testing.F) {
	// Seed with a genuine encoding.
	s := NewSet()
	s.Add(Key{Type: RAW, Sink: 42, Src: 41, Var: 1}, true, false, false)
	var buf bytes.Buffer
	tab := loc.NewTable()
	_ = Encode(&buf, s, tab, []LoopRecord{{Begin: 1, End: 2, Iterations: 3}})
	f.Add(buf.Bytes())
	f.Add([]byte("DDP1"))
	f.Add([]byte{})
	f.Add([]byte("DDP1\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		set, _, _, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round-trip what decoded.
		var out bytes.Buffer
		if err := Encode(&out, set, loc.NewTable(), nil); err != nil {
			t.Fatalf("re-encode of decoded profile failed: %v", err)
		}
	})
}
