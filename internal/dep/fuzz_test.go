package dep

import (
	"bytes"
	"strings"
	"testing"

	"ddprof/internal/loc"
)

// FuzzParse hardens the text-format parser: arbitrary input must either
// parse or return an error — never panic — and valid output of Write must
// always parse.
func FuzzParse(f *testing.F) {
	f.Add("1:60 BGN loop\n1:60 NOM {RAW 1:60|i} {INIT *}\n1:74 END loop 1200\n")
	f.Add("4:58|2 NOM {WAR 4:77|2|iter}\n")
	f.Add("1:9|1 NOM {RAW 1:8|2|flag [race?]}\n")
	f.Add("")
	f.Add("garbage {RAW\x00} NOM")
	f.Add("1:1 NOM {RAW 999999999999:1|x}")
	f.Fuzz(func(t *testing.T, input string) {
		set, loops, _, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must survive a write/parse round trip without
		// losing dependences.
		if set.Unique() == 0 && len(loops) == 0 {
			return
		}
	})
}

// FuzzFastUpdate checks the fast-update API the engine's instance cache sits
// on: for any operation stream, recording instances through cached Ref
// pointers + ObserveVia (with arbitrary batching) must leave a Set identical
// to one built with per-instance AddDist calls.
func FuzzFastUpdate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00, 0x80, 0x7F})
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		slow := NewSet()
		fast := NewSet()
		refs := make(map[Key]*Stats)
		for len(data) >= 6 {
			op := data[:6]
			data = data[6:]
			k := Key{
				Type:       Type(op[0] % 4),
				Sink:       loc.SourceLoc(op[1] % 8),
				Src:        loc.SourceLoc(op[2] % 8),
				Var:        loc.VarID(op[3] % 4),
				SinkThread: int16(op[3] >> 6),
			}
			carried := op[4]&1 != 0
			reduction := op[4]&2 != 0
			reversed := op[4]&4 != 0
			dist := uint32(op[4] >> 3)
			n := uint64(op[5]%4) + 1 // batch 1..4 instances

			for i := uint64(0); i < n; i++ {
				slow.AddDist(k, carried, reduction, reversed, dist)
			}
			st := refs[k]
			if st == nil {
				st = fast.Ref(k)
				refs[k] = st
			}
			fast.ObserveVia(st, n, carried, reduction, reversed, dist)
		}

		if slow.Unique() != fast.Unique() {
			t.Fatalf("unique: slow %d, fast %d", slow.Unique(), fast.Unique())
		}
		if slow.Instances() != fast.Instances() {
			t.Fatalf("instances: slow %d, fast %d", slow.Instances(), fast.Instances())
		}
		slow.Range(func(k Key, st Stats) bool {
			fst, ok := fast.Lookup(k)
			if !ok {
				t.Fatalf("fast set missing key %+v", k)
			}
			if fst != st {
				t.Fatalf("stats diverge for %+v:\n slow %+v\n fast %+v", k, st, fst)
			}
			return true
		})
	})
}

// FuzzDecode hardens the binary codec: arbitrary bytes must never panic or
// over-allocate.
func FuzzDecode(f *testing.F) {
	// Seed with a genuine encoding.
	s := NewSet()
	s.Add(Key{Type: RAW, Sink: 42, Src: 41, Var: 1}, true, false, false)
	var buf bytes.Buffer
	tab := loc.NewTable()
	_ = Encode(&buf, s, tab, []LoopRecord{{Begin: 1, End: 2, Iterations: 3}})
	f.Add(buf.Bytes())
	f.Add([]byte("DDP1"))
	f.Add([]byte{})
	f.Add([]byte("DDP1\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		set, _, _, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round-trip what decoded.
		var out bytes.Buffer
		if err := Encode(&out, set, loc.NewTable(), nil); err != nil {
			t.Fatalf("re-encode of decoded profile failed: %v", err)
		}
	})
}
