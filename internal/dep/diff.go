package dep

import "sort"

// DiffResult lists the dependence keys present in one set but not the other
// — the tool behind input-sensitivity studies (paper §I: profiles from
// different inputs are unioned; Diff shows what each input contributed) and
// accuracy comparisons.
type DiffResult struct {
	// OnlyA are dependences present in a but missing from b.
	OnlyA []Key
	// OnlyB are dependences present in b but missing from a.
	OnlyB []Key
	// Common counts dependences present in both.
	Common int
}

// Diff compares two dependence sets by key.
func Diff(a, b *Set) DiffResult {
	var r DiffResult
	a.Range(func(k Key, _ Stats) bool {
		if _, ok := b.Lookup(k); ok {
			r.Common++
		} else {
			r.OnlyA = append(r.OnlyA, k)
		}
		return true
	})
	b.Range(func(k Key, _ Stats) bool {
		if _, ok := a.Lookup(k); !ok {
			r.OnlyB = append(r.OnlyB, k)
		}
		return true
	})
	sortKeys(r.OnlyA)
	sortKeys(r.OnlyB)
	return r
}

// Identical reports whether the diff found no differences.
func (r DiffResult) Identical() bool {
	return len(r.OnlyA) == 0 && len(r.OnlyB) == 0
}

func sortKeys(ks []Key) {
	sort.Slice(ks, func(i, j int) bool { return lessKey(ks[i], ks[j]) })
}
