package dep

import (
	"fmt"
	"io"
	"sort"
)

// DiffResult lists the dependence keys present in one set but not the other
// — the tool behind input-sensitivity studies (paper §I: profiles from
// different inputs are unioned; Diff shows what each input contributed) and
// accuracy comparisons.
type DiffResult struct {
	// OnlyA are dependences present in a but missing from b.
	OnlyA []Key
	// OnlyB are dependences present in b but missing from a.
	OnlyB []Key
	// Common counts dependences present in both.
	Common int
}

// Diff compares two dependence sets by key.
func Diff(a, b *Set) DiffResult {
	var r DiffResult
	a.Range(func(k Key, _ Stats) bool {
		if _, ok := b.Lookup(k); ok {
			r.Common++
		} else {
			r.OnlyA = append(r.OnlyA, k)
		}
		return true
	})
	b.Range(func(k Key, _ Stats) bool {
		if _, ok := a.Lookup(k); !ok {
			r.OnlyB = append(r.OnlyB, k)
		}
		return true
	})
	sortKeys(r.OnlyA)
	sortKeys(r.OnlyB)
	return r
}

// Identical reports whether the diff found no differences.
func (r DiffResult) Identical() bool {
	return len(r.OnlyA) == 0 && len(r.OnlyB) == 0
}

func sortKeys(ks []Key) {
	sort.Slice(ks, func(i, j int) bool { return lessKey(ks[i], ks[j]) })
}

// DiffStreams merge-joins two binary-profile record streams by key without
// materializing either profile as a Set: the DDP1 format writes records in
// canonical lessKey order, so one record of lookahead per side suffices.
// Both streams must honor that ordering; a record out of order is reported
// as an error rather than silently misclassified. OnlyA/OnlyB come out
// already sorted (inherited from the streams).
func DiffStreams(a, b *Decoder) (DiffResult, error) {
	var r DiffResult
	type head struct {
		k  Key
		ok bool
	}
	var ha, hb head
	advance := func(d *Decoder, h *head, name string) error {
		k, _, err := d.Next()
		if err == io.EOF {
			h.ok = false
			return nil
		}
		if err != nil {
			return err
		}
		if h.ok && !lessKey(h.k, k) {
			return fmt.Errorf("dep: profile %s not in canonical order", name)
		}
		h.k, h.ok = k, true
		return nil
	}
	// Prime both heads; the order check needs the previous key, so reset ok
	// around the first pull.
	if err := advance(a, &ha, "a"); err != nil {
		return r, err
	}
	if err := advance(b, &hb, "b"); err != nil {
		return r, err
	}
	for ha.ok || hb.ok {
		switch {
		case !hb.ok || (ha.ok && lessKey(ha.k, hb.k)):
			r.OnlyA = append(r.OnlyA, ha.k)
			if err := advance(a, &ha, "a"); err != nil {
				return r, err
			}
		case !ha.ok || lessKey(hb.k, ha.k):
			r.OnlyB = append(r.OnlyB, hb.k)
			if err := advance(b, &hb, "b"); err != nil {
				return r, err
			}
		default:
			r.Common++
			if err := advance(a, &ha, "a"); err != nil {
				return r, err
			}
			if err := advance(b, &hb, "b"); err != nil {
				return r, err
			}
		}
	}
	return r, nil
}
