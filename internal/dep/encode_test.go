package dep

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"strings"
	"testing"

	"ddprof/internal/loc"
)

func buildRichSet() (*Set, *loc.Table, []LoopRecord) {
	tab := loc.NewTable()
	tab.File("enc")
	s := NewSet()
	vars := []string{"alpha", "beta", "gamma"}
	for i := 0; i < 60; i++ {
		k := Key{
			Type:       Type(i % 4),
			Sink:       loc.Pack(1, 1+i%9),
			Src:        loc.Pack(1, 1+i%6),
			Var:        tab.Var(vars[i%3]),
			SinkThread: int16(i % 3),
			SrcThread:  int16((i + 1) % 3),
		}
		for j := 0; j <= i%5; j++ {
			s.AddDist(k, i%2 == 0, i%3 == 0, i%7 == 0, uint32(i%4))
		}
	}
	loops := []LoopRecord{
		{Begin: loc.Pack(1, 2), End: loc.Pack(1, 8), Iterations: 1200},
		{Begin: loc.Pack(1, 3), End: loc.Pack(1, 7), Iterations: 99},
	}
	return s, tab, loops
}

func TestBinaryRoundTrip(t *testing.T) {
	s, tab, loops := buildRichSet()
	var buf bytes.Buffer
	if err := Encode(&buf, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	got, gloops, gtab, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unique() != s.Unique() {
		t.Fatalf("unique %d vs %d", got.Unique(), s.Unique())
	}
	if got.Instances() != s.Instances() {
		t.Fatalf("instances %d vs %d", got.Instances(), s.Instances())
	}
	s.Range(func(k Key, st Stats) bool {
		gst, ok := got.Lookup(k)
		if !ok {
			t.Errorf("lost %+v", k)
			return false
		}
		if gst != st {
			t.Errorf("stats mismatch for %+v: %+v vs %+v", k, gst, st)
		}
		return true
	})
	if len(gloops) != len(loops) {
		t.Fatalf("loops %d vs %d", len(gloops), len(loops))
	}
	for i := range loops {
		if gloops[i] != loops[i] {
			t.Errorf("loop %d: %+v vs %+v", i, gloops[i], loops[i])
		}
	}
	// Variable names survive (IDs are reassigned in order, which preserves
	// them exactly since encoding walks IDs densely).
	for _, name := range []string{"alpha", "beta", "gamma"} {
		id := tab.Var(name)
		if gtab.VarName(loc.VarID(id)) != name {
			t.Errorf("variable %s lost: %q", name, gtab.VarName(loc.VarID(id)))
		}
	}
}

func TestBinaryDeterministic(t *testing.T) {
	s, tab, loops := buildRichSet()
	var a, b bytes.Buffer
	if err := Encode(&a, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("encoding is not deterministic")
	}
}

func TestBinaryCompactness(t *testing.T) {
	s, tab, loops := buildRichSet()
	var bin bytes.Buffer
	if err := Encode(&bin, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	var txt strings.Builder
	if err := Write(&txt, s, tab, loops, WriterOptions{Threads: true}); err != nil {
		t.Fatal(err)
	}
	// ~60 deps must fit in a few hundred bytes.
	if bin.Len() > 2000 {
		t.Errorf("binary profile unexpectedly large: %d bytes", bin.Len())
	}
	if bin.Len() == 0 {
		t.Error("empty encoding")
	}
	t.Logf("binary %dB vs text %dB", bin.Len(), txt.Len())
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("DDP1"),                 // truncated after magic
		[]byte("DDP1\x01"),             // var count but no var
		[]byte("DDP1\x00\x01\x02\x03"), // loop count then garbage
	}
	for i, c := range cases {
		if _, _, _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecodeImplausibleCounts(t *testing.T) {
	// magic + huge varint variable count must be rejected, not allocated.
	var buf bytes.Buffer
	buf.WriteString("DDP1")
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // ~2^34
	if _, _, _, err := Decode(&buf); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("huge count not rejected: %v", err)
	}
}

// TestGoldenBinaryRoundTrip pins the wire format: the canonical encoding of
// the rich set must keep this exact digest (recorded from the pre-slab
// map-backed encoder, so the format survived the storage rewrite), and the
// streaming Decoder must read back every record in canonical order.
func TestGoldenBinaryRoundTrip(t *testing.T) {
	const golden = "76be746a4a27f8a5bb20939bd007c9847dcc37ff6874c8acd04ea6b002c0a6e8"
	s, tab, loops := buildRichSet()
	var buf bytes.Buffer
	if err := Encode(&buf, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes())); got != golden {
		t.Fatalf("wire format changed: digest %s, want %s", got, golden)
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != s.Unique() {
		t.Fatalf("decoder Len %d, want %d", d.Len(), s.Unique())
	}
	if len(d.Loops()) != len(loops) || d.Loops()[0] != loops[0] {
		t.Fatalf("decoder loops %+v, want %+v", d.Loops(), loops)
	}
	var prev Key
	n := 0
	for {
		k, st, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 && !lessKey(prev, k) {
			t.Fatalf("record %d out of canonical order: %+v then %+v", n, prev, k)
		}
		prev = k
		want, ok := s.Lookup(k)
		if !ok || want != st {
			t.Fatalf("record %d: stats %+v, want %+v (ok=%v)", n, st, want, ok)
		}
		n++
	}
	if n != s.Unique() {
		t.Fatalf("streamed %d records, want %d", n, s.Unique())
	}
	if _, _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next after EOF: %v", err)
	}
}

func TestDecodeMergeFoldsIntoExisting(t *testing.T) {
	s, tab, loops := buildRichSet()
	var buf bytes.Buffer
	if err := Encode(&buf, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	// Decoding the same profile twice into one accumulator must double every
	// count and instance but keep the key population fixed.
	acc := NewSet()
	for i := 0; i < 2; i++ {
		if _, _, err := DecodeMerge(bytes.NewReader(buf.Bytes()), acc); err != nil {
			t.Fatal(err)
		}
	}
	if acc.Unique() != s.Unique() {
		t.Fatalf("unique %d, want %d", acc.Unique(), s.Unique())
	}
	if acc.Instances() != 2*s.Instances() {
		t.Fatalf("instances %d, want %d", acc.Instances(), 2*s.Instances())
	}
	s.Range(func(k Key, st Stats) bool {
		got, ok := acc.Lookup(k)
		if !ok {
			t.Fatalf("lost %+v", k)
		}
		if got.Count != 2*st.Count || got.MinDist != st.MinDist || got.MaxDist != st.MaxDist {
			t.Fatalf("fold wrong for %+v: %+v from %+v", k, got, st)
		}
		return true
	})
}

func TestEncodeUnionMatchesSerialMerge(t *testing.T) {
	a, tab, loops := buildRichSet()
	b := NewSet()
	for i := 0; i < 40; i++ { // half-overlapping second shard
		k := Key{Type: Type(i % 4), Sink: loc.Pack(1, 1+i%9), Src: loc.Pack(1, 1+i%6),
			Var: tab.Var([]string{"alpha", "beta", "gamma"}[i%3])}
		b.AddDist(k, i%2 == 1, i%5 == 0, false, uint32(i%3))
	}
	uniqA, uniqB := a.Unique(), b.Unique()
	merged := NewSet()
	merged.Merge(a)
	merged.Merge(b)
	var want, got bytes.Buffer
	if err := Encode(&want, merged, tab, loops); err != nil {
		t.Fatal(err)
	}
	if err := EncodeUnion(&got, tab, loops, a, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("EncodeUnion not byte-identical to Encode of the serial merge")
	}
	// The inputs must be untouched.
	if a.Unique() != uniqA || b.Unique() != uniqB {
		t.Fatalf("EncodeUnion modified its shards: %d/%d, %d/%d", a.Unique(), uniqA, b.Unique(), uniqB)
	}
}

func TestDecoderTruncatedMidRecord(t *testing.T) {
	s, tab, loops := buildRichSet()
	var buf bytes.Buffer
	if err := Encode(&buf, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()[:buf.Len()-3]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, err := d.Next()
		if err == nil {
			continue
		}
		if err == io.EOF {
			t.Fatal("truncated stream read cleanly to EOF")
		}
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("want ErrUnexpectedEOF, got %v", err)
		}
		break
	}
}

func TestEmptySetRoundTrip(t *testing.T) {
	tab := loc.NewTable()
	var buf bytes.Buffer
	if err := Encode(&buf, NewSet(), tab, nil); err != nil {
		t.Fatal(err)
	}
	got, loops, _, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unique() != 0 || len(loops) != 0 {
		t.Error("empty round trip not empty")
	}
}
