package dep

import (
	"bytes"
	"strings"
	"testing"

	"ddprof/internal/loc"
)

func buildRichSet() (*Set, *loc.Table, []LoopRecord) {
	tab := loc.NewTable()
	tab.File("enc")
	s := NewSet()
	vars := []string{"alpha", "beta", "gamma"}
	for i := 0; i < 60; i++ {
		k := Key{
			Type:       Type(i % 4),
			Sink:       loc.Pack(1, 1+i%9),
			Src:        loc.Pack(1, 1+i%6),
			Var:        tab.Var(vars[i%3]),
			SinkThread: int16(i % 3),
			SrcThread:  int16((i + 1) % 3),
		}
		for j := 0; j <= i%5; j++ {
			s.AddDist(k, i%2 == 0, i%3 == 0, i%7 == 0, uint32(i%4))
		}
	}
	loops := []LoopRecord{
		{Begin: loc.Pack(1, 2), End: loc.Pack(1, 8), Iterations: 1200},
		{Begin: loc.Pack(1, 3), End: loc.Pack(1, 7), Iterations: 99},
	}
	return s, tab, loops
}

func TestBinaryRoundTrip(t *testing.T) {
	s, tab, loops := buildRichSet()
	var buf bytes.Buffer
	if err := Encode(&buf, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	got, gloops, gtab, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unique() != s.Unique() {
		t.Fatalf("unique %d vs %d", got.Unique(), s.Unique())
	}
	if got.Instances() != s.Instances() {
		t.Fatalf("instances %d vs %d", got.Instances(), s.Instances())
	}
	s.Range(func(k Key, st Stats) bool {
		gst, ok := got.Lookup(k)
		if !ok {
			t.Errorf("lost %+v", k)
			return false
		}
		if gst != st {
			t.Errorf("stats mismatch for %+v: %+v vs %+v", k, gst, st)
		}
		return true
	})
	if len(gloops) != len(loops) {
		t.Fatalf("loops %d vs %d", len(gloops), len(loops))
	}
	for i := range loops {
		if gloops[i] != loops[i] {
			t.Errorf("loop %d: %+v vs %+v", i, gloops[i], loops[i])
		}
	}
	// Variable names survive (IDs are reassigned in order, which preserves
	// them exactly since encoding walks IDs densely).
	for _, name := range []string{"alpha", "beta", "gamma"} {
		id := tab.Var(name)
		if gtab.VarName(loc.VarID(id)) != name {
			t.Errorf("variable %s lost: %q", name, gtab.VarName(loc.VarID(id)))
		}
	}
}

func TestBinaryDeterministic(t *testing.T) {
	s, tab, loops := buildRichSet()
	var a, b bytes.Buffer
	if err := Encode(&a, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("encoding is not deterministic")
	}
}

func TestBinaryCompactness(t *testing.T) {
	s, tab, loops := buildRichSet()
	var bin bytes.Buffer
	if err := Encode(&bin, s, tab, loops); err != nil {
		t.Fatal(err)
	}
	var txt strings.Builder
	if err := Write(&txt, s, tab, loops, WriterOptions{Threads: true}); err != nil {
		t.Fatal(err)
	}
	// ~60 deps must fit in a few hundred bytes.
	if bin.Len() > 2000 {
		t.Errorf("binary profile unexpectedly large: %d bytes", bin.Len())
	}
	if bin.Len() == 0 {
		t.Error("empty encoding")
	}
	t.Logf("binary %dB vs text %dB", bin.Len(), txt.Len())
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("DDP1"),                 // truncated after magic
		[]byte("DDP1\x01"),             // var count but no var
		[]byte("DDP1\x00\x01\x02\x03"), // loop count then garbage
	}
	for i, c := range cases {
		if _, _, _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecodeImplausibleCounts(t *testing.T) {
	// magic + huge varint variable count must be rejected, not allocated.
	var buf bytes.Buffer
	buf.WriteString("DDP1")
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // ~2^34
	if _, _, _, err := Decode(&buf); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("huge count not rejected: %v", err)
	}
}

func TestEmptySetRoundTrip(t *testing.T) {
	tab := loc.NewTable()
	var buf bytes.Buffer
	if err := Encode(&buf, NewSet(), tab, nil); err != nil {
		t.Fatal(err)
	}
	got, loops, _, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unique() != 0 || len(loops) != 0 {
		t.Error("empty round trip not empty")
	}
}
