package dep

import (
	"runtime"
	"sync"
)

// MergeShards unions a slice of per-worker dependence sets into one Set by
// parallel tree reduction: each round pairs shards off and merges the pairs
// concurrently, so with W shards the end-of-run latency is the depth of the
// tree, O(log W), instead of the serial fold's O(W). Within a pair the
// larger set is stolen as the accumulator — folding the smaller into the
// bigger minimizes Ref misses and index regrows. Because the per-dependence
// fold (Count sum, Carried/Reversed OR, Reduction AND, MinDist min, MaxDist
// max) is commutative and associative, the result is exactly the serial
// fold's; FuzzSetMergeEquivalence pins the two byte-identical under the
// canonical encoding.
//
// MergeShards consumes its inputs: nil entries are skipped, every other
// shard is either returned as the result or Released back to the page pool.
// The caller must not use any shard (or Stats pointers into one) afterwards.
func MergeShards(shards []*Set) *Set {
	live := shards[:0:0]
	for _, s := range shards {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return NewSet()
	case 1:
		return live[0]
	}
	// On a single processor the goroutine rounds cannot overlap, and the
	// tree re-folds a pair's entries at every level it survives; a flat fold
	// into the largest shard does strictly less work, so take that path.
	if runtime.GOMAXPROCS(0) == 1 {
		big := 0
		for i, s := range live {
			if s.Unique() > live[big].Unique() {
				big = i
			}
		}
		acc := live[big]
		for i, s := range live {
			if i != big {
				acc.Merge(s)
				s.Release()
			}
		}
		return acc
	}
	for len(live) > 1 {
		half := len(live) / 2
		next := make([]*Set, half, half+1)
		var wg sync.WaitGroup
		for i := 0; i < half; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				next[i] = mergePair(live[2*i], live[2*i+1])
			}(i)
		}
		wg.Wait()
		if len(live)%2 == 1 {
			next = append(next, live[len(live)-1])
		}
		live = next
	}
	return live[0]
}

// mergePair folds the smaller of a, b into the larger and releases the
// consumed one.
func mergePair(a, b *Set) *Set {
	if b.Unique() > a.Unique() {
		a, b = b, a
	}
	a.Merge(b)
	b.Release()
	return a
}
