package dep

import (
	"bytes"
	"math/rand"
	"testing"

	"ddprof/internal/loc"
)

// TestExtractDeltaDrains: ExtractDelta moves exactly the unreported advance
// into out, and a second extraction with no new instances is empty.
func TestExtractDeltaDrains(t *testing.T) {
	s := NewSet()
	k := key(RAW, 10, 9, 1)
	for i := 0; i < 7; i++ {
		s.Add(k, false, false, false)
	}
	out := NewSet()
	if n := s.ExtractDelta(out); n != 1 {
		t.Fatalf("first extraction changed %d deps, want 1", n)
	}
	st, ok := out.Lookup(k)
	if !ok || st.Count != 7 {
		t.Fatalf("delta count = %d, want 7", st.Count)
	}
	if s.Unreported() {
		t.Fatal("Unreported() true right after a full extraction")
	}
	empty := NewSet()
	if n := s.ExtractDelta(empty); n != 0 || empty.Unique() != 0 {
		t.Fatalf("idle extraction yielded %d deps", empty.Unique())
	}

	// Three more instances: only the advance ships.
	for i := 0; i < 3; i++ {
		s.Add(k, true, false, false) // now carried
	}
	next := NewSet()
	if n := s.ExtractDelta(next); n != 1 {
		t.Fatalf("second extraction changed %d deps, want 1", n)
	}
	st, _ = next.Lookup(k)
	if st.Count != 3 {
		t.Fatalf("second delta count = %d, want 3", st.Count)
	}
	if !st.Carried {
		t.Fatal("second delta lost the carried flag")
	}
}

// TestEpochStamps: entries remember the epoch active when they were first
// observed; SetEpoch does not restamp; RangeSince filters on the stamp.
func TestEpochStamps(t *testing.T) {
	s := NewSet()
	early := key(RAW, 1, 2, 1)
	late := key(WAR, 3, 4, 1)
	s.Add(early, false, false, false)
	s.SetEpoch(5)
	s.Add(late, false, false, false)
	s.Add(early, false, false, false) // re-observation keeps the first stamp

	got := map[Key]uint32{}
	s.RangeSince(0, func(k Key, _ Stats, e uint32) bool {
		got[k] = e
		return true
	})
	if got[early] != 0 || got[late] != 5 {
		t.Fatalf("stamps = %v, want early:0 late:5", got)
	}

	var since []Key
	s.RangeSince(5, func(k Key, _ Stats, _ uint32) bool {
		since = append(since, k)
		return true
	})
	if len(since) != 1 || since[0] != late {
		t.Fatalf("RangeSince(5) = %v, want just the late key", since)
	}
}

// TestMergeProvenance: Merge keeps the minimum first-observed epoch and sums
// reported watermarks, so extracting from the merge yields exactly the
// instances no shard ever shipped.
func TestMergeProvenance(t *testing.T) {
	k := key(RAW, 10, 9, 1)

	a := NewSet()
	a.SetEpoch(2)
	for i := 0; i < 5; i++ {
		a.Add(k, false, false, false)
	}
	shippedA := NewSet()
	a.ExtractDelta(shippedA) // a has reported all 5
	for i := 0; i < 2; i++ {
		a.Add(k, false, false, false) // 2 unshipped
	}

	b := NewSet()
	b.SetEpoch(7)
	for i := 0; i < 4; i++ {
		b.Add(k, false, false, false) // 4 unshipped
	}

	m := NewSet()
	m.Merge(a)
	m.Merge(b)
	st, _ := m.Lookup(k)
	if st.Count != 11 {
		t.Fatalf("merged count = %d, want 11", st.Count)
	}
	m.RangeSince(0, func(_ Key, _ Stats, e uint32) bool {
		if e != 2 {
			t.Fatalf("merged epoch stamp = %d, want min(2,7) = 2", e)
		}
		return true
	})
	rem := NewSet()
	m.ExtractDelta(rem)
	rst, _ := rem.Lookup(k)
	if rst.Count != 6 {
		t.Fatalf("merged remainder = %d instances, want 2+4 = 6", rst.Count)
	}
}

// TestDeltaUnionEqualsFinal is the monotone-fold guarantee behind the live
// observatory, on a randomized instance stream: fold every delta ever
// extracted plus one final remainder, and the result encodes byte-identical
// to the set itself.
func TestDeltaUnionEqualsFinal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := loc.NewTable()
	tab.Var("a")
	tab.Var("b")

	s := NewSet()
	folded := NewSet()
	for ep := uint32(1); ep <= 20; ep++ {
		s.SetEpoch(ep)
		for i := 0; i < 200; i++ {
			k := key(Type(rng.Intn(3)), rng.Intn(8), rng.Intn(8), loc.VarID(rng.Intn(2)))
			k.SinkThread = int16(rng.Intn(2))
			s.AddDist(k, rng.Intn(2) == 0, rng.Intn(4) == 0, rng.Intn(8) == 0, uint32(rng.Intn(5)))
		}
		d := NewSet()
		s.ExtractDelta(d)
		folded.Merge(d)
		d.Release()
	}
	rem := NewSet()
	s.ExtractDelta(rem)
	folded.Merge(rem)
	rem.Release()

	var want, got bytes.Buffer
	if err := Encode(&want, s, tab, nil); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&got, folded, tab, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("folded deltas encode to %d bytes, final set to %d — not byte-identical", got.Len(), want.Len())
	}
	if s.Instances() != folded.Instances() {
		t.Fatalf("instances: set %d, folded %d", s.Instances(), folded.Instances())
	}
}

// TestResetClearsEpoch: a recycled set starts back at epoch 0.
func TestResetClearsEpoch(t *testing.T) {
	s := NewSet()
	s.SetEpoch(9)
	s.Add(key(RAW, 1, 2, 1), false, false, false)
	s.Reset()
	if s.Epoch() != 0 {
		t.Fatalf("epoch after Reset = %d, want 0", s.Epoch())
	}
	if s.Unreported() {
		t.Fatal("Unreported() true on a reset set")
	}
}
