package dep

import (
	"strings"
	"testing"

	"ddprof/internal/loc"
)

func TestParseFigure1(t *testing.T) {
	input := strings.Join([]string{
		"1:60 BGN loop",
		"1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}",
		"1:63 NOM {RAW 1:59|temp1} {RAW 1:67|temp1}",
		"1:74 END loop 1200",
	}, "\n")
	set, loops, tab, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if set.Unique() != 5 {
		t.Fatalf("parsed %d deps, want 5: %v", set.Unique(), set.Keys())
	}
	k := Key{Type: RAW, Sink: loc.Pack(1, 60), Src: loc.Pack(1, 60), Var: tab.Var("i")}
	if _, ok := set.Lookup(k); !ok {
		t.Errorf("missing RAW i self dep")
	}
	if _, ok := set.Lookup(Key{Type: INIT, Sink: loc.Pack(1, 60)}); !ok {
		t.Error("missing INIT")
	}
	if len(loops) != 1 || loops[0].Iterations != 1200 ||
		loops[0].Begin != loc.Pack(1, 60) || loops[0].End != loc.Pack(1, 74) {
		t.Errorf("loops = %+v", loops)
	}
}

func TestParseFigure3Threaded(t *testing.T) {
	input := strings.Join([]string{
		"4:58|2 NOM {WAR 4:77|2|iter}",
		"4:80|1 NOM {WAW 4:80|1|green} {INIT *}",
	}, "\n")
	set, _, tab, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Type: WAR, Sink: loc.Pack(4, 58), SinkThread: 2, Src: loc.Pack(4, 77), SrcThread: 2, Var: tab.Var("iter")}
	if _, ok := set.Lookup(k); !ok {
		t.Fatalf("missing threaded WAR; have %+v", set.Keys())
	}
	ki := Key{Type: INIT, Sink: loc.Pack(4, 80), SinkThread: 1}
	if _, ok := set.Lookup(ki); !ok {
		t.Error("missing threaded INIT")
	}
}

func TestParseRaceMark(t *testing.T) {
	input := "1:9|1 NOM {RAW 1:8|2|flag [race?]}\n"
	set, _, tab, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Type: RAW, Sink: loc.Pack(1, 9), SinkThread: 1, Src: loc.Pack(1, 8), SrcThread: 2, Var: tab.Var("flag")}
	st, ok := set.Lookup(k)
	if !ok {
		t.Fatal("race-marked dep missing")
	}
	if !st.Reversed {
		t.Error("race mark not restored")
	}
}

// TestWriteParseRoundTrip: writing a set and parsing it back must preserve
// every dependence key and every loop record.
func TestWriteParseRoundTrip(t *testing.T) {
	for _, threaded := range []bool{false, true} {
		tab := loc.NewTable()
		tab.File("rt")
		orig := NewSet()
		for i := 0; i < 40; i++ {
			k := Key{
				Type: Type(i % 3),
				Sink: loc.Pack(1, 10+i%5),
				Src:  loc.Pack(1, 1+i%7),
				Var:  tab.Var([]string{"a", "b", "c"}[i%3]),
			}
			if threaded {
				k.SinkThread = int16(i % 4)
				k.SrcThread = int16((i + 1) % 4)
			}
			orig.Add(k, false, false, threaded && i%5 == 0)
		}
		orig.Add(Key{Type: INIT, Sink: loc.Pack(1, 10)}, false, false, false)
		loops := []LoopRecord{
			{Begin: loc.Pack(1, 2), End: loc.Pack(1, 9), Iterations: 77},
			{Begin: loc.Pack(1, 12), End: loc.Pack(1, 20), Iterations: 3},
		}

		var b strings.Builder
		if err := Write(&b, orig, tab, loops, WriterOptions{Threads: threaded, MarkRaces: threaded}); err != nil {
			t.Fatal(err)
		}
		parsed, ploops, ptab, err := Parse(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("threaded=%v: %v\ninput:\n%s", threaded, err, b.String())
		}
		if parsed.Unique() != orig.Unique() {
			t.Fatalf("threaded=%v: %d deps parsed, want %d", threaded, parsed.Unique(), orig.Unique())
		}
		orig.Range(func(k Key, st Stats) bool {
			// Variable IDs are re-interned; translate through names.
			k2 := k
			k2.Var = ptab.Var(tab.VarName(k.Var))
			pst, ok := parsed.Lookup(k2)
			if !ok {
				t.Errorf("threaded=%v: lost %+v", threaded, k)
				return false
			}
			if threaded && pst.Reversed != st.Reversed {
				t.Errorf("threaded=%v: race flag lost for %+v", threaded, k)
			}
			return true
		})
		if len(ploops) != len(loops) {
			t.Fatalf("loops parsed = %d, want %d", len(ploops), len(loops))
		}
		for i, l := range ploops {
			if l != loops[i] {
				t.Errorf("loop %d = %+v, want %+v", i, l, loops[i])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"garbage",
		"1:60 XYZ something",
		"nope NOM {RAW 1:1|x}",
		"1:60 NOM {NOPE 1:1|x}",
		"1:60 NOM {RAW 1:1|x",
		"1:60 END loop",
		"1:60 NOM {RAW badloc|x}",
	}
	for _, c := range cases {
		if _, _, _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestParseNestedLoops(t *testing.T) {
	// Two nested loops: ENDs must match the innermost open BGN.
	input := strings.Join([]string{
		"1:1 BGN loop",
		"1:2 BGN loop",
		"1:3 END loop 10",
		"1:4 END loop 2",
	}, "\n")
	_, loops, _, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 2 {
		t.Fatalf("loops = %d", len(loops))
	}
	byBegin := map[int]LoopRecord{}
	for _, l := range loops {
		byBegin[l.Begin.Line()] = l
	}
	if byBegin[2].Iterations != 10 || byBegin[2].End.Line() != 3 {
		t.Errorf("inner loop wrong: %+v", byBegin[2])
	}
	if byBegin[1].Iterations != 2 || byBegin[1].End.Line() != 4 {
		t.Errorf("outer loop wrong: %+v", byBegin[1])
	}
}
