package dep

import (
	"strings"
	"testing"

	"ddprof/internal/loc"
)

// TestFigure1Format reconstructs (a subset of) the paper's Figure 1: the
// profiled dependences of a sequential loop, with BGN/END control-flow lines
// and aggregated NOM lines.
func TestFigure1Format(t *testing.T) {
	tab := loc.NewTable()
	tab.File("main") // file 1
	vi := tab.Var("i")
	vt1 := tab.Var("temp1")
	vt2 := tab.Var("temp2")

	s := NewSet()
	add := func(ty Type, sink, src int, v loc.VarID) {
		s.Add(Key{Type: ty, Sink: loc.Pack(1, sink), Src: loc.Pack(1, src), Var: v}, false, false, false)
	}
	add(RAW, 60, 60, vi)
	add(WAR, 60, 60, vi)
	add(INIT, 60, 0, 0)
	add(RAW, 63, 59, vt1)
	add(RAW, 63, 67, vt1)
	add(RAW, 67, 65, vt2)
	add(WAR, 67, 66, vt1)

	loops := []LoopRecord{{Begin: loc.Pack(1, 60), End: loc.Pack(1, 74), Iterations: 1200}}

	got := String(s, tab, loops)
	want := strings.Join([]string{
		"1:60 BGN loop",
		"1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}",
		"1:63 NOM {RAW 1:59|temp1} {RAW 1:67|temp1}",
		"1:67 NOM {RAW 1:65|temp2} {WAR 1:66|temp1}",
		"1:74 END loop 1200",
		"",
	}, "\n")
	if got != want {
		t.Errorf("output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFigure3Format reconstructs (a subset of) Figure 3: dependences from a
// parallel program with thread IDs in sink and source.
func TestFigure3Format(t *testing.T) {
	tab := loc.NewTable()
	tab.File("f3")     // file 1
	tab.File("f3b")    // file 2
	tab.File("f3c")    // file 3
	tab.File("mandel") // file 4
	vIter := tab.Var("iter")
	vZr := tab.Var("z_real")
	vGreen := tab.Var("green")

	s := NewSet()
	add := func(ty Type, sinkF, sink int, sinkThr int16, srcF, src int, srcThr int16, v loc.VarID) {
		s.Add(Key{
			Type: ty,
			Sink: loc.Pack(loc.FileID(sinkF), sink), SinkThread: sinkThr,
			Src: loc.Pack(loc.FileID(srcF), src), SrcThread: srcThr,
			Var: v,
		}, false, false, false)
	}
	add(WAR, 4, 58, 2, 4, 77, 2, vIter)
	add(WAR, 4, 59, 2, 4, 71, 2, vZr)
	add(WAW, 4, 80, 1, 4, 80, 1, vGreen)
	s.Add(Key{Type: INIT, Sink: loc.Pack(4, 80), SinkThread: 1}, false, false, false)

	var b strings.Builder
	if err := Write(&b, s, tab, nil, WriterOptions{Threads: true}); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"4:58|2 NOM {WAR 4:77|2|iter}",
		"4:59|2 NOM {WAR 4:71|2|z_real}",
		"4:80|1 NOM {WAW 4:80|1|green} {INIT *}",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Errorf("output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSameSinkDifferentThreadsSeparateLines(t *testing.T) {
	tab := loc.NewTable()
	tab.File("x")
	v := tab.Var("a")
	s := NewSet()
	for thr := int16(0); thr < 3; thr++ {
		s.Add(Key{Type: RAW, Sink: loc.Pack(1, 5), SinkThread: thr, Src: loc.Pack(1, 4), SrcThread: thr, Var: v}, false, false, false)
	}
	var b strings.Builder
	if err := Write(&b, s, tab, nil, WriterOptions{Threads: true}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (one per sink thread):\n%s", len(lines), b.String())
	}
	if lines[0] != "1:5|0 NOM {RAW 1:4|0|a}" {
		t.Errorf("line 0 = %q", lines[0])
	}
}

func TestRaceMark(t *testing.T) {
	tab := loc.NewTable()
	tab.File("x")
	v := tab.Var("flag")
	s := NewSet()
	k := Key{Type: RAW, Sink: loc.Pack(1, 9), SinkThread: 1, Src: loc.Pack(1, 8), SrcThread: 2, Var: v}
	s.Add(k, false, false, true)
	var b strings.Builder
	if err := Write(&b, s, tab, nil, WriterOptions{Threads: true, MarkRaces: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "[race?]") {
		t.Errorf("reversed dependence not marked: %q", b.String())
	}
	// Without the option the mark must be absent.
	b.Reset()
	if err := Write(&b, s, tab, nil, WriterOptions{Threads: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "[race?]") {
		t.Error("race mark printed without MarkRaces")
	}
}

func TestWriterDeterminism(t *testing.T) {
	tab := loc.NewTable()
	tab.File("x")
	s := NewSet()
	for i := 0; i < 50; i++ {
		s.Add(Key{Type: Type(i % 3), Sink: loc.Pack(1, 10+i%7), Src: loc.Pack(1, i), Var: loc.VarID(0)}, false, false, false)
	}
	first := String(s, tab, nil)
	for i := 0; i < 5; i++ {
		if got := String(s, tab, nil); got != first {
			t.Fatal("writer output is not deterministic across runs")
		}
	}
}

func TestEmptySet(t *testing.T) {
	tab := loc.NewTable()
	if got := String(NewSet(), tab, nil); got != "" {
		t.Errorf("empty set should render empty, got %q", got)
	}
}
