package dep

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ddprof/internal/loc"
)

// Parse reads a profile dump in the paper's text format (the output of
// Write, Figures 1 and 3) back into a dependence set, loop records and a
// variable table. Downstream analyses can therefore consume saved profiles
// without access to the original run.
//
// Instance counts are not part of the text format, so every parsed
// dependence has Count 1; race marks ("[race?]") restore the Reversed flag.
func Parse(r io.Reader) (*Set, []LoopRecord, *loc.Table, error) {
	set := NewSet()
	tab := loc.NewTable()
	var loops []LoopRecord
	open := make(map[loc.SourceLoc]loc.SourceLoc) // pending BGN -> begin loc

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		head, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, nil, nil, fmt.Errorf("dep: line %d: malformed %q", lineNo, line)
		}
		sink, sinkThr, threaded, err := parseLoc(head)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("dep: line %d: %v", lineNo, err)
		}
		switch {
		case strings.HasPrefix(rest, "BGN"):
			open[sink] = sink
		case strings.HasPrefix(rest, "END"):
			fields := strings.Fields(rest)
			if len(fields) < 3 {
				return nil, nil, nil, fmt.Errorf("dep: line %d: malformed END %q", lineNo, line)
			}
			iters, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("dep: line %d: END count: %v", lineNo, err)
			}
			// Match the most recent unmatched BGN at or before this line.
			begin := bestOpen(open, sink)
			delete(open, begin)
			loops = append(loops, LoopRecord{Begin: begin, End: sink, Iterations: iters})
		case strings.HasPrefix(rest, "NOM"):
			if err := parseEntries(set, tab, sink, sinkThr, threaded, rest[len("NOM"):]); err != nil {
				return nil, nil, nil, fmt.Errorf("dep: line %d: %v", lineNo, err)
			}
		default:
			return nil, nil, nil, fmt.Errorf("dep: line %d: unknown record %q", lineNo, rest)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, err
	}
	return set, loops, tab, nil
}

// bestOpen finds the closest open BGN not after end (loops are printed in
// line order, so the innermost unmatched BGN before an END belongs to it).
func bestOpen(open map[loc.SourceLoc]loc.SourceLoc, end loc.SourceLoc) loc.SourceLoc {
	var best loc.SourceLoc
	found := false
	for b := range open {
		if b <= end && (!found || b > best) {
			best = b
			found = true
		}
	}
	if !found {
		return end
	}
	return best
}

// parseLoc parses "1:60" or "4:58|2".
func parseLoc(s string) (loc.SourceLoc, int16, bool, error) {
	var thr int64
	threaded := false
	if base, t, ok := strings.Cut(s, "|"); ok {
		var err error
		thr, err = strconv.ParseInt(t, 10, 16)
		if err != nil {
			return 0, 0, false, fmt.Errorf("thread in %q: %v", s, err)
		}
		s = base
		threaded = true
	}
	f, l, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, false, fmt.Errorf("location %q", s)
	}
	fi, err := strconv.ParseUint(f, 10, 8)
	if err != nil {
		return 0, 0, false, fmt.Errorf("file in %q: %v", s, err)
	}
	li, err := strconv.ParseUint(l, 10, 32)
	if err != nil {
		return 0, 0, false, fmt.Errorf("line in %q: %v", s, err)
	}
	return loc.Pack(loc.FileID(fi), int(li)), int16(thr), threaded, nil
}

// parseEntries parses the "{RAW 1:59|temp1} {WAR ...}" tail of a NOM line.
func parseEntries(set *Set, tab *loc.Table, sink loc.SourceLoc, sinkThr int16, threaded bool, rest string) error {
	for {
		i := strings.IndexByte(rest, '{')
		if i < 0 {
			return nil
		}
		j := strings.IndexByte(rest[i:], '}')
		if j < 0 {
			return fmt.Errorf("unterminated entry in %q", rest)
		}
		entry := rest[i+1 : i+j]
		rest = rest[i+j+1:]

		reversed := false
		if strings.HasSuffix(entry, " [race?]") {
			reversed = true
			entry = strings.TrimSuffix(entry, " [race?]")
		}
		tyStr, body, _ := strings.Cut(entry, " ")
		var ty Type
		switch tyStr {
		case "RAW":
			ty = RAW
		case "WAR":
			ty = WAR
		case "WAW":
			ty = WAW
		case "INIT":
			set.Add(Key{Type: INIT, Sink: sink, SinkThread: sinkThr}, false, false, reversed)
			continue
		default:
			return fmt.Errorf("unknown dependence type %q", tyStr)
		}
		// body: "1:59|temp1" or "4:77|2|iter" in threaded format.
		parts := strings.Split(body, "|")
		want := 2
		if threaded {
			want = 3
		}
		if len(parts) != want {
			return fmt.Errorf("malformed source %q (threaded=%v)", body, threaded)
		}
		src, _, _, err := parseLoc(parts[0])
		if err != nil {
			return err
		}
		var srcThr int64
		varName := parts[len(parts)-1]
		if threaded {
			srcThr, err = strconv.ParseInt(parts[1], 10, 16)
			if err != nil {
				return fmt.Errorf("source thread in %q: %v", body, err)
			}
		}
		set.Add(Key{
			Type: ty,
			Sink: sink, SinkThread: sinkThr,
			Src: src, SrcThread: int16(srcThr),
			Var: tab.Var(varName),
		}, false, false, reversed)
	}
}
