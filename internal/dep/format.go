package dep

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ddprof/internal/loc"
)

// LoopRecord is the runtime control-flow information attached to the output:
// BGN and END mark the entry and exit of a control region, and Iterations is
// the actual number of iterations executed (paper §III-A, Figure 1).
type LoopRecord struct {
	Begin      loc.SourceLoc
	End        loc.SourceLoc
	Iterations uint64
}

// WriterOptions configure the text renderer.
type WriterOptions struct {
	// Threads selects the multi-threaded format of Figure 3, in which sink
	// and source locations carry "|thread" suffixes.
	Threads bool
	// MarkRaces appends " [race?]" to dependences whose instances showed a
	// timestamp reversal.
	MarkRaces bool
}

// outLine is one line of the profile dump, ordered BGN < NOM < END per line.
type outLine struct {
	l     loc.SourceLoc
	thr   int16
	order int // 0 BGN, 1 NOM, 2 END
	text  string
}

// Write renders the dependence set in the paper's output format
// (Figures 1 and 3): one line per aggregated sink, prefixed NOM, with loop
// entry/exit lines interleaved as BGN/END.
func Write(w io.Writer, s *Set, tab *loc.Table, loops []LoopRecord, opt WriterOptions) error {
	lines := make([]outLine, 0, s.Unique()+2*len(loops))

	for _, lr := range loops {
		lines = append(lines, outLine{l: lr.Begin, order: 0, text: "BGN loop"})
		lines = append(lines, outLine{l: lr.End, order: 2, text: fmt.Sprintf("END loop %d", lr.Iterations)})
	}

	// Group dependences by sink.
	type sinkKey struct {
		l   loc.SourceLoc
		thr int16
	}
	groups := make(map[sinkKey][]Key)
	s.Range(func(k Key, _ Stats) bool {
		groups[sinkKey{k.Sink, k.SinkThread}] = append(groups[sinkKey{k.Sink, k.SinkThread}], k)
		return true
	})

	for sk, ks := range groups {
		sort.Slice(ks, func(i, j int) bool {
			if ks[i].Type != ks[j].Type {
				return ks[i].Type < ks[j].Type
			}
			if ks[i].Src != ks[j].Src {
				return ks[i].Src < ks[j].Src
			}
			if ks[i].SrcThread != ks[j].SrcThread {
				return ks[i].SrcThread < ks[j].SrcThread
			}
			return ks[i].Var < ks[j].Var
		})
		var b strings.Builder
		b.WriteString("NOM")
		for _, k := range ks {
			st, _ := s.Lookup(k)
			b.WriteByte(' ')
			b.WriteString(formatEntry(k, st, tab, opt))
		}
		lines = append(lines, outLine{l: sk.l, thr: sk.thr, order: 1, text: b.String()})
	}

	sort.Slice(lines, func(i, j int) bool {
		if lines[i].l != lines[j].l {
			return lines[i].l < lines[j].l
		}
		if lines[i].order != lines[j].order {
			return lines[i].order < lines[j].order
		}
		return lines[i].thr < lines[j].thr
	})

	for _, ln := range lines {
		var err error
		if opt.Threads && ln.order == 1 {
			_, err = fmt.Fprintf(w, "%s|%d %s\n", ln.l, ln.thr, ln.text)
		} else {
			_, err = fmt.Fprintf(w, "%s %s\n", ln.l, ln.text)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// formatEntry renders one "{TYPE source|var}" element.
func formatEntry(k Key, st Stats, tab *loc.Table, opt WriterOptions) string {
	var b strings.Builder
	b.WriteByte('{')
	b.WriteString(k.Type.String())
	if k.Type == INIT {
		b.WriteString(" *")
	} else {
		b.WriteByte(' ')
		b.WriteString(k.Src.String())
		if opt.Threads {
			fmt.Fprintf(&b, "|%d", k.SrcThread)
		}
		b.WriteByte('|')
		b.WriteString(tab.VarName(k.Var))
	}
	if opt.MarkRaces && st.Reversed {
		b.WriteString(" [race?]")
	}
	b.WriteByte('}')
	return b.String()
}

// String renders the whole set with default options, for debugging and tests.
func String(s *Set, tab *loc.Table, loops []LoopRecord) string {
	var b strings.Builder
	_ = Write(&b, s, tab, loops, WriterOptions{})
	return b.String()
}
