package dep

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"ddprof/internal/loc"
)

// Binary profile format. The text format (Write/Parse) is the paper's
// human-readable output; the binary format is the compact on-disk form for
// toolchains, preserving what the text drops: instance counts, carried and
// reduction flags, and dependence distances. Layout (all integers varint
// unless noted):
//
//	magic "DDP1" (4 bytes)
//	varCount, then per variable: name (len-prefixed string)
//	loopCount, then per loop: begin, end, iterations
//	depCount, then per dependence:
//	    type (1 byte), sink, src, var, sinkThread+1, srcThread+1 (zigzag-free:
//	    threads are small non-negative), count, flags (1 byte:
//	    carried|reversed|reduction), minDist, maxDist
const binaryMagic = "DDP1"

// Encode writes the set, loop records and variable table in binary form.
func Encode(w io.Writer, s *Set, tab *loc.Table, loops []LoopRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}

	// Variable table: IDs are dense, so emit names in ID order.
	nv := tab.NumVars()
	if err := put(uint64(nv)); err != nil {
		return err
	}
	for i := 0; i < nv; i++ {
		name := tab.VarName(loc.VarID(i))
		if err := put(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}

	if err := put(uint64(len(loops))); err != nil {
		return err
	}
	for _, l := range loops {
		if err := put(uint64(l.Begin)); err != nil {
			return err
		}
		if err := put(uint64(l.End)); err != nil {
			return err
		}
		if err := put(l.Iterations); err != nil {
			return err
		}
	}

	// Deterministic dependence order.
	keys := s.Keys()
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
	if err := put(uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		st, _ := s.Lookup(k)
		if err := bw.WriteByte(byte(k.Type)); err != nil {
			return err
		}
		for _, v := range []uint64{
			uint64(k.Sink), uint64(k.Src), uint64(k.Var),
			uint64(k.SinkThread) + 1, uint64(k.SrcThread) + 1,
			st.Count,
		} {
			if err := put(v); err != nil {
				return err
			}
		}
		var fl byte
		if st.Carried {
			fl |= 1
		}
		if st.Reversed {
			fl |= 2
		}
		if st.Reduction {
			fl |= 4
		}
		if err := bw.WriteByte(fl); err != nil {
			return err
		}
		if err := put(uint64(st.MinDist)); err != nil {
			return err
		}
		if err := put(uint64(st.MaxDist)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func lessKey(a, b Key) bool {
	if a.Sink != b.Sink {
		return a.Sink < b.Sink
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	if a.SinkThread != b.SinkThread {
		return a.SinkThread < b.SinkThread
	}
	return a.SrcThread < b.SrcThread
}

// Decode reads a binary profile written by Encode.
func Decode(r io.Reader) (*Set, []LoopRecord, *loc.Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, nil, fmt.Errorf("dep: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, nil, nil, fmt.Errorf("dep: bad magic %q", magic)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }

	tab := loc.NewTable()
	nv, err := get()
	if err != nil {
		return nil, nil, nil, err
	}
	if nv > 1<<24 {
		return nil, nil, nil, fmt.Errorf("dep: implausible variable count %d", nv)
	}
	for i := uint64(0); i < nv; i++ {
		ln, err := get()
		if err != nil {
			return nil, nil, nil, err
		}
		if ln > 1<<16 {
			return nil, nil, nil, fmt.Errorf("dep: implausible name length %d", ln)
		}
		name := make([]byte, ln)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, nil, nil, err
		}
		tab.Var(string(name)) // IDs reassigned densely in the same order
	}

	nl, err := get()
	if err != nil {
		return nil, nil, nil, err
	}
	if nl > 1<<24 {
		return nil, nil, nil, fmt.Errorf("dep: implausible loop count %d", nl)
	}
	loops := make([]LoopRecord, 0, nl)
	for i := uint64(0); i < nl; i++ {
		var l LoopRecord
		v, err := get()
		if err != nil {
			return nil, nil, nil, err
		}
		l.Begin = loc.SourceLoc(v)
		if v, err = get(); err != nil {
			return nil, nil, nil, err
		}
		l.End = loc.SourceLoc(v)
		if l.Iterations, err = get(); err != nil {
			return nil, nil, nil, err
		}
		loops = append(loops, l)
	}

	nd, err := get()
	if err != nil {
		return nil, nil, nil, err
	}
	if nd > 1<<28 {
		return nil, nil, nil, fmt.Errorf("dep: implausible dependence count %d", nd)
	}
	set := NewSet()
	for i := uint64(0); i < nd; i++ {
		tb, err := br.ReadByte()
		if err != nil {
			return nil, nil, nil, err
		}
		var vals [6]uint64
		for j := range vals {
			if vals[j], err = get(); err != nil {
				return nil, nil, nil, err
			}
		}
		fl, err := br.ReadByte()
		if err != nil {
			return nil, nil, nil, err
		}
		minD, err := get()
		if err != nil {
			return nil, nil, nil, err
		}
		maxD, err := get()
		if err != nil {
			return nil, nil, nil, err
		}
		k := Key{
			Type: Type(tb),
			Sink: loc.SourceLoc(vals[0]), Src: loc.SourceLoc(vals[1]),
			Var:        loc.VarID(vals[2]),
			SinkThread: int16(vals[3] - 1), SrcThread: int16(vals[4] - 1),
		}
		st := &Stats{
			Count:     vals[5],
			Carried:   fl&1 != 0,
			Reversed:  fl&2 != 0,
			Reduction: fl&4 != 0,
			MinDist:   uint32(minD),
			MaxDist:   uint32(maxD),
		}
		set.m[k] = st
		set.instances += st.Count
	}
	return set, loops, tab, nil
}
