package dep

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"ddprof/internal/loc"
)

// Binary profile format. The text format (Write/Parse) is the paper's
// human-readable output; the binary format is the compact on-disk form for
// toolchains, preserving what the text drops: instance counts, carried and
// reduction flags, and dependence distances. Layout (all integers varint
// unless noted):
//
//	magic "DDP1" (4 bytes)
//	varCount, then per variable: name (len-prefixed string)
//	loopCount, then per loop: begin, end, iterations
//	depCount, then per dependence:
//	    type (1 byte), sink, src, var, sinkThread+1, srcThread+1 (zigzag-free:
//	    threads are small non-negative), count, flags (1 byte:
//	    carried|reversed|reduction), minDist, maxDist
//
// Dependences are written in lessKey order, which makes the encoding
// canonical (two Sets with equal contents encode byte-identically) and lets
// readers merge-join streams without materializing either side — the
// profile-union primitive the sharded-fleet merge and ddiff ride on.
const binaryMagic = "DDP1"

// Encode writes the set, loop records and variable table in binary form.
func Encode(w io.Writer, s *Set, tab *loc.Table, loops []LoopRecord) error {
	return EncodeUnion(w, tab, loops, s)
}

// encoder wraps the shared varint/byte plumbing of the DDP1 writer.
type encoder struct {
	bw  *bufio.Writer
	buf [binary.MaxVarintLen64]byte
}

func (e *encoder) put(v uint64) error {
	n := binary.PutUvarint(e.buf[:], v)
	_, err := e.bw.Write(e.buf[:n])
	return err
}

func (e *encoder) header(tab *loc.Table, loops []LoopRecord) error {
	if _, err := e.bw.WriteString(binaryMagic); err != nil {
		return err
	}
	// Variable table: IDs are dense, so emit names in ID order.
	nv := tab.NumVars()
	if err := e.put(uint64(nv)); err != nil {
		return err
	}
	for i := 0; i < nv; i++ {
		name := tab.VarName(loc.VarID(i))
		if err := e.put(uint64(len(name))); err != nil {
			return err
		}
		if _, err := e.bw.WriteString(name); err != nil {
			return err
		}
	}
	if err := e.put(uint64(len(loops))); err != nil {
		return err
	}
	for _, l := range loops {
		if err := e.put(uint64(l.Begin)); err != nil {
			return err
		}
		if err := e.put(uint64(l.End)); err != nil {
			return err
		}
		if err := e.put(l.Iterations); err != nil {
			return err
		}
	}
	return nil
}

func (e *encoder) record(k Key, st Stats) error {
	if err := e.bw.WriteByte(byte(k.Type)); err != nil {
		return err
	}
	for _, v := range []uint64{
		uint64(k.Sink), uint64(k.Src), uint64(k.Var),
		uint64(k.SinkThread) + 1, uint64(k.SrcThread) + 1,
		st.Count,
	} {
		if err := e.put(v); err != nil {
			return err
		}
	}
	var fl byte
	if st.Carried {
		fl |= 1
	}
	if st.Reversed {
		fl |= 2
	}
	if st.Reduction {
		fl |= 4
	}
	if err := e.bw.WriteByte(fl); err != nil {
		return err
	}
	if err := e.put(uint64(st.MinDist)); err != nil {
		return err
	}
	return e.put(uint64(st.MaxDist))
}

// EncodeUnion streams the union of the shards as one binary profile,
// byte-identical to Encode of the serially merged set, without building that
// merged set: each shard's entries are walked in canonical (lessKey) order
// and the shard cursors merge-joined, folding the stats of keys present in
// several shards on the fly. Shards are read-only; passing a single shard is
// exactly Encode. This is the wire side of the profile-union primitive: a
// fleet node unions per-shard profiles straight onto the socket.
func EncodeUnion(w io.Writer, tab *loc.Table, loops []LoopRecord, shards ...*Set) error {
	e := &encoder{bw: bufio.NewWriter(w)}
	if err := e.header(tab, loops); err != nil {
		return err
	}
	// Per-shard cursor over entry refs in canonical key order. The entries
	// themselves stay in their slabs; only the ref permutations are built.
	refs := make([][]int, 0, len(shards))
	live := make([]*Set, 0, len(shards))
	for _, s := range shards {
		if s == nil || s.n == 0 {
			continue
		}
		rs := make([]int, s.n)
		for i := range rs {
			rs[i] = i
		}
		sh := s
		sort.Slice(rs, func(i, j int) bool {
			return lessKey(sh.at(rs[i]).key, sh.at(rs[j]).key)
		})
		refs = append(refs, rs)
		live = append(live, s)
	}

	// The record count precedes the records, so walk the join twice: once
	// counting distinct keys, once writing. Both passes are cache-linear
	// over the slabs; nothing per-key is allocated.
	walk := func(f func(Key, Stats) error) error {
		pos := make([]int, len(refs))
		for {
			mi := -1
			var mk Key
			for i, rs := range refs {
				if pos[i] >= len(rs) {
					continue
				}
				k := live[i].at(rs[pos[i]]).key
				if mi < 0 || lessKey(k, mk) {
					mi, mk = i, k
				}
			}
			if mi < 0 {
				return nil
			}
			st := newStats()
			for i, rs := range refs {
				if pos[i] < len(rs) && live[i].at(rs[pos[i]]).key == mk {
					st.fold(&live[i].at(rs[pos[i]]).stats)
					pos[i]++
				}
			}
			if err := f(mk, st); err != nil {
				return err
			}
		}
	}
	distinct := 0
	if err := walk(func(Key, Stats) error { distinct++; return nil }); err != nil {
		return err
	}
	if err := e.put(uint64(distinct)); err != nil {
		return err
	}
	if err := walk(e.record); err != nil {
		return err
	}
	return e.bw.Flush()
}

func lessKey(a, b Key) bool {
	if a.Sink != b.Sink {
		return a.Sink < b.Sink
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	if a.SinkThread != b.SinkThread {
		return a.SinkThread < b.SinkThread
	}
	return a.SrcThread < b.SrcThread
}

// Decoder streams dependence records out of a binary profile one at a time.
// The header (variable table, loop records, record count) is consumed by
// NewDecoder; each Next returns one dependence without the profile ever
// being materialized as a map — a million-dependence stored profile costs
// the reader one record of state.
type Decoder struct {
	br    *bufio.Reader
	tab   *loc.Table
	loops []LoopRecord
	n     uint64
	read  uint64
}

// NewDecoder reads the profile header and positions the stream at the first
// dependence record.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dep: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("dep: bad magic %q", magic)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }

	tab := loc.NewTable()
	nv, err := get()
	if err != nil {
		return nil, err
	}
	if nv > 1<<24 {
		return nil, fmt.Errorf("dep: implausible variable count %d", nv)
	}
	for i := uint64(0); i < nv; i++ {
		ln, err := get()
		if err != nil {
			return nil, err
		}
		if ln > 1<<16 {
			return nil, fmt.Errorf("dep: implausible name length %d", ln)
		}
		name := make([]byte, ln)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		tab.Var(string(name)) // IDs reassigned densely in the same order
	}

	nl, err := get()
	if err != nil {
		return nil, err
	}
	if nl > 1<<24 {
		return nil, fmt.Errorf("dep: implausible loop count %d", nl)
	}
	loops := make([]LoopRecord, 0, nl)
	for i := uint64(0); i < nl; i++ {
		var l LoopRecord
		v, err := get()
		if err != nil {
			return nil, err
		}
		l.Begin = loc.SourceLoc(v)
		if v, err = get(); err != nil {
			return nil, err
		}
		l.End = loc.SourceLoc(v)
		if l.Iterations, err = get(); err != nil {
			return nil, err
		}
		loops = append(loops, l)
	}

	nd, err := get()
	if err != nil {
		return nil, err
	}
	if nd > 1<<28 {
		return nil, fmt.Errorf("dep: implausible dependence count %d", nd)
	}
	return &Decoder{br: br, tab: tab, loops: loops, n: nd}, nil
}

// Table returns the interned variable table from the profile header.
func (d *Decoder) Table() *loc.Table { return d.tab }

// Loops returns the loop records from the profile header.
func (d *Decoder) Loops() []LoopRecord { return d.loops }

// Len returns the number of dependence records in the profile.
func (d *Decoder) Len() int { return int(d.n) }

// Next returns the next dependence record, or io.EOF after the last one. An
// unexpected end of input mid-record surfaces as io.ErrUnexpectedEOF.
func (d *Decoder) Next() (Key, Stats, error) {
	if d.read >= d.n {
		return Key{}, Stats{}, io.EOF
	}
	d.read++
	tb, err := d.br.ReadByte()
	if err != nil {
		return Key{}, Stats{}, noEOF(err)
	}
	var vals [6]uint64
	for j := range vals {
		if vals[j], err = binary.ReadUvarint(d.br); err != nil {
			return Key{}, Stats{}, noEOF(err)
		}
	}
	fl, err := d.br.ReadByte()
	if err != nil {
		return Key{}, Stats{}, noEOF(err)
	}
	minD, err := binary.ReadUvarint(d.br)
	if err != nil {
		return Key{}, Stats{}, noEOF(err)
	}
	maxD, err := binary.ReadUvarint(d.br)
	if err != nil {
		return Key{}, Stats{}, noEOF(err)
	}
	k := Key{
		Type: Type(tb),
		Sink: loc.SourceLoc(vals[0]), Src: loc.SourceLoc(vals[1]),
		Var:        loc.VarID(vals[2]),
		SinkThread: int16(vals[3] - 1), SrcThread: int16(vals[4] - 1),
	}
	st := Stats{
		Count:     vals[5],
		Carried:   fl&1 != 0,
		Reversed:  fl&2 != 0,
		Reduction: fl&4 != 0,
		MinDist:   uint32(minD),
		MaxDist:   uint32(maxD),
	}
	return k, st, nil
}

// noEOF converts a clean EOF inside a record (the stream promised more
// records than it delivered) into ErrUnexpectedEOF, so only Decoder.Next's
// own end-of-stream sentinel ever reads as io.EOF.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// DecodeMerge streams a binary profile and folds every record into an
// existing Set — the decode side of the profile-union primitive: a fleet
// merger calls it once per shard profile against one accumulator, never
// holding more than one wire record beyond the accumulator itself. The
// profile's loop records and variable table are returned for the caller to
// reconcile.
func DecodeMerge(r io.Reader, into *Set) ([]LoopRecord, *loc.Table, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, nil, err
	}
	for {
		k, st, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		into.Ref(k).fold(&st)
		into.addInstances(st.Count)
	}
	return d.loops, d.tab, nil
}

// Decode reads a binary profile written by Encode.
func Decode(r io.Reader) (*Set, []LoopRecord, *loc.Table, error) {
	set := NewSet()
	loops, tab, err := DecodeMerge(r, set)
	if err != nil {
		return nil, nil, nil, err
	}
	return set, loops, tab, nil
}
