package dep

import (
	"bytes"
	"testing"

	"ddprof/internal/loc"
)

func key(t Type, sink, src int, v loc.VarID) Key {
	return Key{Type: t, Sink: loc.Pack(1, sink), Src: loc.Pack(1, src), Var: v}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{RAW: "RAW", WAR: "WAR", WAW: "WAW", INIT: "INIT", Type(9): "???"} {
		if ty.String() != want {
			t.Errorf("Type(%d) = %q, want %q", ty, ty.String(), want)
		}
	}
}

func TestSetMergesIdentical(t *testing.T) {
	s := NewSet()
	k := key(RAW, 60, 59, 1)
	for i := 0; i < 1000; i++ {
		s.Add(k, false, false, false)
	}
	if s.Unique() != 1 {
		t.Fatalf("Unique = %d, want 1 (identical deps must merge)", s.Unique())
	}
	if s.Instances() != 1000 {
		t.Fatalf("Instances = %d, want 1000", s.Instances())
	}
	st, ok := s.Lookup(k)
	if !ok || st.Count != 1000 {
		t.Fatalf("Lookup count = %d, want 1000", st.Count)
	}
}

func TestSetDistinctKeys(t *testing.T) {
	s := NewSet()
	s.Add(key(RAW, 60, 59, 1), false, false, false)
	s.Add(key(WAR, 60, 59, 1), false, false, false) // type differs
	s.Add(key(RAW, 60, 58, 1), false, false, false) // src differs
	s.Add(key(RAW, 61, 59, 1), false, false, false) // sink differs
	s.Add(key(RAW, 60, 59, 2), false, false, false) // var differs
	k := key(RAW, 60, 59, 1)
	k.SrcThread = 1
	s.Add(k, false, false, false) // thread differs
	if s.Unique() != 6 {
		t.Fatalf("Unique = %d, want 6", s.Unique())
	}
}

func TestStatsStickyFlags(t *testing.T) {
	s := NewSet()
	k := key(RAW, 10, 9, 1)
	s.Add(k, false, true, false)
	s.Add(k, true, true, false) // one carried instance
	s.Add(k, false, true, true) // one reversed instance
	st, _ := s.Lookup(k)
	if !st.Carried {
		t.Error("Carried must be sticky-true")
	}
	if !st.Reversed {
		t.Error("Reversed must be sticky-true")
	}
	if !st.Reduction {
		t.Error("all instances were reduction; flag should hold")
	}
	s.Add(k, false, false, false) // one non-reduction instance
	st, _ = s.Lookup(k)
	if st.Reduction {
		t.Error("Reduction must be sticky-false")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewSet(), NewSet()
	shared := key(RAW, 5, 4, 1)
	onlyA := key(WAW, 6, 5, 1)
	onlyB := key(WAR, 7, 6, 2)
	a.Add(shared, true, false, false)
	a.Add(onlyA, false, false, false)
	b.Add(shared, false, false, true)
	b.Add(shared, false, false, false)
	b.Add(onlyB, false, false, false)

	a.Merge(b)
	if a.Unique() != 3 {
		t.Fatalf("Unique after merge = %d, want 3", a.Unique())
	}
	if a.Instances() != 5 {
		t.Fatalf("Instances after merge = %d, want 5", a.Instances())
	}
	st, _ := a.Lookup(shared)
	if st.Count != 3 {
		t.Errorf("shared count = %d, want 3", st.Count)
	}
	if !st.Carried || !st.Reversed {
		t.Error("merge must OR the sticky flags")
	}
	// b unchanged.
	if b.Unique() != 2 || b.Instances() != 3 {
		t.Error("Merge modified its argument")
	}
	a.Merge(nil) // no panic
}

func TestLookupMissing(t *testing.T) {
	s := NewSet()
	if _, ok := s.Lookup(key(RAW, 1, 2, 3)); ok {
		t.Error("Lookup on empty set returned ok")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := NewSet()
	for i := 0; i < 10; i++ {
		s.Add(key(RAW, i+1, i, 1), false, false, false)
	}
	n := 0
	s.Range(func(Key, Stats) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("Range visited %d, want 3", n)
	}
}

func TestFilterType(t *testing.T) {
	s := NewSet()
	s.Add(key(RAW, 1, 0, 1), false, false, false)
	s.Add(key(RAW, 2, 0, 1), false, false, false)
	s.Add(key(WAW, 3, 0, 1), false, false, false)
	if got := len(s.FilterType(RAW)); got != 2 {
		t.Errorf("FilterType(RAW) = %d, want 2", got)
	}
	if got := len(s.FilterType(INIT)); got != 0 {
		t.Errorf("FilterType(INIT) = %d, want 0", got)
	}
	if got := len(s.Keys()); got != 3 {
		t.Errorf("Keys = %d, want 3", got)
	}
}

func TestDiff(t *testing.T) {
	a, b := NewSet(), NewSet()
	shared := key(RAW, 1, 0, 1)
	onlyA := key(WAW, 2, 1, 1)
	onlyB := key(WAR, 3, 2, 1)
	a.Add(shared, false, false, false)
	a.Add(onlyA, false, false, false)
	b.Add(shared, false, false, false)
	b.Add(onlyB, false, false, false)

	d := Diff(a, b)
	if d.Common != 1 {
		t.Errorf("Common = %d", d.Common)
	}
	if len(d.OnlyA) != 1 || d.OnlyA[0] != onlyA {
		t.Errorf("OnlyA = %v", d.OnlyA)
	}
	if len(d.OnlyB) != 1 || d.OnlyB[0] != onlyB {
		t.Errorf("OnlyB = %v", d.OnlyB)
	}
	if d.Identical() {
		t.Error("differing sets reported identical")
	}
	if !Diff(a, a).Identical() {
		t.Error("self diff not identical")
	}
	// Counts must not matter.
	b2 := NewSet()
	for i := 0; i < 10; i++ {
		b2.Add(shared, false, false, false)
	}
	a2 := NewSet()
	a2.Add(shared, false, false, false)
	if !Diff(a2, b2).Identical() {
		t.Error("count differences must not affect Diff")
	}
}

// TestDiffStreams pins the streaming merge-join against the in-memory Diff
// for sets with asymmetric keys and unequal sizes, plus empty-vs-nonempty
// and identical streams.
func TestDiffStreams(t *testing.T) {
	tab := loc.NewTable()
	encodeOf := func(s *Set) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, s, tab, nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	streamDiff := func(a, b *Set) DiffResult {
		da, err := NewDecoder(bytes.NewReader(encodeOf(a)))
		if err != nil {
			t.Fatal(err)
		}
		db, err := NewDecoder(bytes.NewReader(encodeOf(b)))
		if err != nil {
			t.Fatal(err)
		}
		d, err := DiffStreams(da, db)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	same := func(x, y DiffResult) bool {
		if x.Common != y.Common || len(x.OnlyA) != len(y.OnlyA) || len(x.OnlyB) != len(y.OnlyB) {
			return false
		}
		for i := range x.OnlyA {
			if x.OnlyA[i] != y.OnlyA[i] {
				return false
			}
		}
		for i := range x.OnlyB {
			if x.OnlyB[i] != y.OnlyB[i] {
				return false
			}
		}
		return true
	}

	a, b := NewSet(), NewSet()
	for i := 0; i < 30; i++ {
		a.Add(key(Type(i%3), i, i/2, 1), false, false, false)
	}
	for i := 15; i < 45; i++ { // overlaps a on [15,30)
		b.Add(key(Type(i%3), i, i/2, 1), false, false, false)
	}
	for _, c := range []struct{ x, y *Set }{
		{a, b}, {b, a}, {a, a}, {a, NewSet()}, {NewSet(), b}, {NewSet(), NewSet()},
	} {
		want := Diff(c.x, c.y)
		got := streamDiff(c.x, c.y)
		if !same(got, want) {
			t.Fatalf("stream diff diverges: got %+v, want %+v", got, want)
		}
	}
}

func TestDiffDeterministicOrder(t *testing.T) {
	a, b := NewSet(), NewSet()
	for i := 20; i > 0; i-- {
		a.Add(key(RAW, i, 0, 1), false, false, false)
	}
	d := Diff(a, b)
	for i := 1; i < len(d.OnlyA); i++ {
		if d.OnlyA[i].Sink < d.OnlyA[i-1].Sink {
			t.Fatal("OnlyA not sorted")
		}
	}
}
