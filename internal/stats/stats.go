// Package stats quantifies profiler accuracy: the false positive and false
// negative rates of Table I and the collision-probability prediction of the
// paper's Equation (2).
package stats

import (
	"math"

	"ddprof/internal/dep"
)

// Rates holds the accuracy of a measured dependence set against the exact
// (perfect-signature) ground truth, as percentages like Table I reports.
type Rates struct {
	// Truth and Measured are the unique dependence counts.
	Truth    int
	Measured int
	// FP and FN are absolute counts of spurious and missed dependences.
	FP int
	FN int
	// FPR is FP as a percentage of reported dependences; FNR is FN as a
	// percentage of true dependences.
	FPR float64
	FNR float64
}

// Compare computes FPR/FNR of measured against truth. Identity is the
// dependence Key (type, sink, source, variable, threads); instance counts do
// not matter, matching the paper's merged-dependence granularity.
func Compare(truth, measured *dep.Set) Rates {
	r := Rates{Truth: truth.Unique(), Measured: measured.Unique()}
	measured.Range(func(k dep.Key, _ dep.Stats) bool {
		if _, ok := truth.Lookup(k); !ok {
			r.FP++
		}
		return true
	})
	truth.Range(func(k dep.Key, _ dep.Stats) bool {
		if _, ok := measured.Lookup(k); !ok {
			r.FN++
		}
		return true
	})
	if r.Measured > 0 {
		r.FPR = 100 * float64(r.FP) / float64(r.Measured)
	}
	if r.Truth > 0 {
		r.FNR = 100 * float64(r.FN) / float64(r.Truth)
	}
	return r
}

// PredictedFP is the paper's Equation (2): the probability that a given slot
// of an m-slot signature is occupied after inserting n distinct elements,
//
//	Pfp = 1 − (1 − 1/m)^n,
//
// i.e. the chance a membership probe for a fresh address false-positives.
func PredictedFP(m, n float64) float64 {
	if m <= 0 {
		return 1
	}
	return 1 - math.Pow(1-1/m, n)
}
