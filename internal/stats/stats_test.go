package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ddprof/internal/dep"
	"ddprof/internal/loc"
)

func key(sink int) dep.Key {
	return dep.Key{Type: dep.RAW, Sink: loc.Pack(1, sink), Src: loc.Pack(1, 1)}
}

func setOf(sinks ...int) *dep.Set {
	s := dep.NewSet()
	for _, k := range sinks {
		s.Add(key(k), false, false, false)
	}
	return s
}

func TestCompareExactMatch(t *testing.T) {
	r := Compare(setOf(1, 2, 3), setOf(1, 2, 3))
	if r.FP != 0 || r.FN != 0 || r.FPR != 0 || r.FNR != 0 {
		t.Errorf("identical sets should have zero rates: %+v", r)
	}
	if r.Truth != 3 || r.Measured != 3 {
		t.Errorf("counts wrong: %+v", r)
	}
}

func TestCompareFPAndFN(t *testing.T) {
	truth := setOf(1, 2, 3, 4)
	measured := setOf(1, 2, 5) // misses 3,4; invents 5
	r := Compare(truth, measured)
	if r.FP != 1 || r.FN != 2 {
		t.Fatalf("FP=%d FN=%d, want 1,2", r.FP, r.FN)
	}
	if math.Abs(r.FPR-100.0/3) > 1e-9 {
		t.Errorf("FPR = %v", r.FPR)
	}
	if math.Abs(r.FNR-50) > 1e-9 {
		t.Errorf("FNR = %v", r.FNR)
	}
}

func TestCompareInstanceCountsIrrelevant(t *testing.T) {
	truth := dep.NewSet()
	truth.Add(key(1), false, false, false)
	measured := dep.NewSet()
	for i := 0; i < 100; i++ {
		measured.Add(key(1), false, false, false)
	}
	r := Compare(truth, measured)
	if r.FP != 0 || r.FN != 0 {
		t.Errorf("instance counts must not matter: %+v", r)
	}
}

func TestCompareEmptySets(t *testing.T) {
	r := Compare(dep.NewSet(), dep.NewSet())
	if r.FPR != 0 || r.FNR != 0 {
		t.Errorf("empty/empty should be 0/0: %+v", r)
	}
	r = Compare(setOf(1), dep.NewSet())
	if r.FNR != 100 {
		t.Errorf("all-missed FNR = %v, want 100", r.FNR)
	}
	r = Compare(dep.NewSet(), setOf(1))
	if r.FPR != 100 {
		t.Errorf("all-spurious FPR = %v, want 100", r.FPR)
	}
}

func TestPredictedFPBasics(t *testing.T) {
	if got := PredictedFP(100, 0); got != 0 {
		t.Errorf("n=0 should predict 0, got %v", got)
	}
	// One slot, one insertion: certain collision for the next probe.
	if got := PredictedFP(1, 1); got != 1 {
		t.Errorf("m=1,n=1 should predict 1, got %v", got)
	}
	// Monotone in n, anti-monotone in m — the paper's "Pfp is inversely
	// proportional to m and proportional to n".
	if PredictedFP(1e6, 1e5) >= PredictedFP(1e6, 1e6) {
		t.Error("prediction not increasing in n")
	}
	if PredictedFP(1e6, 1e5) <= PredictedFP(1e7, 1e5) {
		t.Error("prediction not decreasing in m")
	}
	if got := PredictedFP(0, 10); got != 1 {
		t.Errorf("degenerate m should saturate at 1, got %v", got)
	}
}

func TestPredictedFPRange(t *testing.T) {
	f := func(m16, n16 uint16) bool {
		m, n := float64(m16)+1, float64(n16)
		p := PredictedFP(m, n)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPredictedFPMatchesSimulation cross-checks Eq.(2) against a direct
// Monte-Carlo occupancy simulation.
func TestPredictedFPMatchesSimulation(t *testing.T) {
	const m, n = 1000.0, 700.0
	// Deterministic LCG-based simulation of n inserts into m slots.
	occupied := make(map[int]bool)
	seed := uint64(12345)
	for i := 0; i < int(n); i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		occupied[int(seed%uint64(m))] = true
	}
	sim := float64(len(occupied)) / m
	pred := PredictedFP(m, n)
	if math.Abs(sim-pred) > 0.05 {
		t.Errorf("simulated occupancy %.3f vs predicted %.3f", sim, pred)
	}
}
