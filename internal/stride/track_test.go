package stride

import (
	"testing"
	"testing/quick"
)

// TestTrackMatchesObserveStates: Track is the allocation-free projection of
// Observe — over any stream the two FSMs must agree on state, last address
// and learned stride at every step.
func TestTrackMatchesObserveStates(t *testing.T) {
	f := func(seed uint16, strided bool) bool {
		obs, trk := NewDetector(), NewDetector()
		x := uint64(seed) + 1
		for i := 0; i < 200; i++ {
			var a uint64
			if strided {
				a = 0x100 + uint64(i)*uint64(seed%9+1)
				if i%37 == 0 {
					a = x // periodic break exercises Weak/Random
				}
			} else {
				x = x*2862933555777941757 + 3037000493
				a = x % 4096
			}
			obs.Observe(a)
			trk.Track(a)
			if obs.state != trk.state || obs.last != trk.last || obs.stride != trk.stride {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrackLearnsAndReportsStride(t *testing.T) {
	d := NewDetector()
	for i := uint64(0); i < 10; i++ {
		d.Track(0x1000 + i*16)
	}
	s, ok := d.Stride()
	if !ok || s != 16 {
		t.Fatalf("Stride() = %d, %v; want 16, true", s, ok)
	}
	if d.Last() != 0x1000+9*16 {
		t.Errorf("Last() = %#x", d.Last())
	}
	d.Track(0xDEAD) // break the stride
	if _, ok := d.Stride(); ok {
		t.Error("Stride() confirmed in Weak state")
	}
}

func TestTrackDoesNotAllocate(t *testing.T) {
	d := NewDetector()
	n := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 64; i++ {
			d.Track(i * 8)
		}
		d.Track(12345) // Weak
		d.Track(99)    // Random
		d.Reset()
	})
	if n != 0 {
		t.Errorf("Track/Reset allocated %.1f times per run, want 0", n)
	}
}

func TestResetKeepsHistoryCapacity(t *testing.T) {
	d := NewDetector()
	for i := 0; i < 100; i++ {
		d.Observe(uint64(i*i + 7)) // non-strided: accumulates points
	}
	capBefore := cap(d.points)
	if capBefore == 0 {
		t.Fatal("test stream recorded no points")
	}
	d.Reset()
	if d.State() != Start || len(d.points) != 0 || len(d.runs) != 0 {
		t.Fatalf("Reset left state=%v points=%d runs=%d", d.State(), len(d.points), len(d.runs))
	}
	if cap(d.points) != capBefore {
		t.Errorf("Reset dropped point capacity: %d -> %d", capBefore, cap(d.points))
	}
	// The reset detector must behave like a fresh one.
	for i := uint64(0); i < 5; i++ {
		d.Track(i * 4)
	}
	if s, ok := d.Stride(); !ok || s != 4 {
		t.Errorf("after Reset: Stride() = %d, %v; want 4, true", s, ok)
	}
}

func TestPoolRecycles(t *testing.T) {
	d := Get()
	if d.State() != Start {
		t.Fatalf("pooled detector state = %v, want start", d.State())
	}
	d.Track(8)
	d.Track(16)
	Put(d)
	d2 := Get()
	if d2.State() != Start {
		t.Errorf("recycled detector not reset: state = %v", d2.State())
	}
	Put(d2)
}

// BenchmarkDetectorTrack pins the per-address FSM cost the producer pays on
// its hot path. Both the all-strided and the never-strided (Random steady
// state) cases matter: the first is the win, the second the overhead bound.
func BenchmarkDetectorTrack(b *testing.B) {
	b.Run("strided", func(b *testing.B) {
		var d Detector
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Track(uint64(i) * 8)
		}
	})
	b.Run("random", func(b *testing.B) {
		var d Detector
		x := uint64(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			d.Track(x)
		}
	})
}
