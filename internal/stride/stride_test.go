package stride

import (
	"testing"
	"testing/quick"
)

func TestStateString(t *testing.T) {
	want := map[State]string{
		Start: "start", First: "first", Learned: "learned",
		Weak: "weak", Random: "random", State(99): "invalid",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("State(%d) = %q", s, s.String())
		}
	}
}

func TestPerfectStride(t *testing.T) {
	d := NewDetector()
	for i := uint64(0); i < 1000; i++ {
		d.Observe(0x1000 + i*8)
	}
	if d.State() != Learned {
		t.Fatalf("state = %v, want learned", d.State())
	}
	runs, points := d.Finish()
	if len(runs) != 1 || len(points) != 0 {
		t.Fatalf("runs=%d points=%d, want 1/0", len(runs), len(points))
	}
	r := runs[0]
	if r.Base != 0x1000 || r.Stride != 8 || r.Count != 1000 {
		t.Errorf("run = %+v", r)
	}
	if r.Last() != 0x1000+999*8 {
		t.Errorf("Last = %#x", r.Last())
	}
	if ratio := CompressionRatio(1000, runs, points); ratio != 1000 {
		t.Errorf("ratio = %v, want 1000", ratio)
	}
}

func TestNegativeStride(t *testing.T) {
	var addrs []uint64
	for i := 0; i < 100; i++ {
		addrs = append(addrs, uint64(0x8000-i*16))
	}
	ratio, runs, points := Compress(addrs)
	if len(runs) != 1 || runs[0].Stride != -16 || len(points) != 0 {
		t.Fatalf("runs=%+v points=%v", runs, points)
	}
	if ratio != 100 {
		t.Errorf("ratio = %v", ratio)
	}
}

func TestWeakRecovery(t *testing.T) {
	// Strided run, one irregular access, then the stride resumes — SD3's
	// Weak state must recover without demoting to Random.
	d := NewDetector()
	for i := uint64(0); i < 50; i++ {
		d.Observe(i * 4)
	}
	d.Observe(0xDEAD0) // break
	if d.State() != Weak {
		t.Fatalf("state after break = %v, want weak", d.State())
	}
	for i := uint64(0); i < 50; i++ {
		d.Observe(0xDEAD0 + 4 + i*4)
	}
	if d.State() != Learned {
		t.Fatalf("state after recovery = %v, want learned", d.State())
	}
	runs, points := d.Finish()
	if len(runs) != 2 {
		t.Errorf("runs = %d, want 2 (before and after the break)", len(runs))
	}
	if len(points) != 1 || points[0] != 0xDEAD0 {
		t.Errorf("points = %v, want the single break address", points)
	}
}

func TestRandomStream(t *testing.T) {
	// A hash-scatter stream must demote to Random and store points.
	var addrs []uint64
	x := uint64(12345)
	for i := 0; i < 200; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		addrs = append(addrs, x)
	}
	ratio, _, points := Compress(addrs)
	if len(points) < 150 {
		t.Errorf("random stream stored only %d points", len(points))
	}
	if ratio > 2 {
		t.Errorf("random stream should not compress well: ratio %v", ratio)
	}
}

func TestSingleAndEmptyStreams(t *testing.T) {
	ratio, runs, points := Compress(nil)
	if ratio != 1 || len(runs) != 0 || len(points) != 0 {
		t.Errorf("empty stream: ratio=%v runs=%v points=%v", ratio, runs, points)
	}
	_, runs, _ = Compress([]uint64{42})
	if len(runs) != 1 || runs[0].Base != 42 || runs[0].Count != 1 {
		t.Errorf("single access: %+v", runs)
	}
}

func TestRunContains(t *testing.T) {
	r := Run{Base: 100, Stride: 8, Count: 5} // 100,108,...,132
	for _, a := range []uint64{100, 108, 132} {
		if !r.Contains(a) {
			t.Errorf("run should contain %d", a)
		}
	}
	for _, a := range []uint64{96, 104, 140, 101} {
		if r.Contains(a) {
			t.Errorf("run should not contain %d", a)
		}
	}
	z := Run{Base: 7, Stride: 0, Count: 1}
	if !z.Contains(7) || z.Contains(8) {
		t.Error("zero-stride run membership wrong")
	}
}

// TestCoverageProperty: every observed address is represented either by a
// run or a residual point.
func TestCoverageProperty(t *testing.T) {
	f := func(seed uint16, strided bool) bool {
		var addrs []uint64
		x := uint64(seed) + 1
		for i := 0; i < 64; i++ {
			if strided {
				addrs = append(addrs, 0x100+uint64(i)*uint64(seed%7+1))
			} else {
				x = x*2862933555777941757 + 3037000493
				addrs = append(addrs, x%1024)
			}
		}
		_, runs, points := Compress(addrs)
		covered := func(a uint64) bool {
			for _, r := range runs {
				if r.Contains(a) {
					return true
				}
			}
			for _, p := range points {
				if p == a {
					return true
				}
			}
			return false
		}
		for _, a := range addrs {
			if !covered(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkloadStreamsCompress(t *testing.T) {
	// An array-sweep stream (the common case in the NAS kernels) should
	// compress by orders of magnitude — the SD3 effect the paper cites.
	var addrs []uint64
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 1000; i++ {
			addrs = append(addrs, 0x10000+i*8)
		}
	}
	ratio, _, _ := Compress(addrs)
	if ratio < 100 {
		t.Errorf("sweep stream compressed only %vx", ratio)
	}
}
