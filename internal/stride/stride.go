// Package stride implements SD3-style stride compression of memory-access
// streams (Kim, Kim, Luk — MICRO'10), the space optimization the paper
// discusses in related work (§II): "SD3 reduces memory overhead by
// compressing strided accesses using a finite state machine."
//
// A Detector watches the address stream of one instruction (source line)
// and learns whether it accesses memory at a fixed stride. Strided runs are
// stored as compact (base, stride, count) triples instead of per-address
// history. Compress reports how much of a given stream stride compression
// would capture, and the detector's FSM is tested against the published
// state semantics.
//
// Two observation APIs exist. Observe records the full compressed
// representation (runs + residual points) for the ablation entry point
// Compress; it allocates. Track advances only the FSM — state, last address,
// learned stride — and never allocates, which is what the pipeline producer
// embeds per instruction on its hot path (internal/core). Producer tables
// embed Detector by value for zero indirection; dynamically keyed embedders
// recycle heap detectors through Get/Put instead.
package stride

import "sync"

// State is the learning state of the per-instruction FSM, following SD3's
// Start → FirstObserved → StrideLearned → Weak progression.
type State uint8

const (
	// Start: no access observed yet.
	Start State = iota
	// First: one address observed; no stride known.
	First
	// Learned: a constant stride has been confirmed.
	Learned
	// Weak: the last access broke the learned stride once; one more
	// confirmation returns to Learned, another break demotes to random.
	Weak
	// Random: the stream is not strided; fall back to point storage.
	Random
)

func (s State) String() string {
	switch s {
	case Start:
		return "start"
	case First:
		return "first"
	case Learned:
		return "learned"
	case Weak:
		return "weak"
	case Random:
		return "random"
	}
	return "invalid"
}

// Run is a compressed strided access run.
type Run struct {
	Base   uint64
	Stride int64
	Count  uint64
}

// Last returns the last address of the run.
func (r Run) Last() uint64 {
	return uint64(int64(r.Base) + int64(r.Count-1)*r.Stride)
}

// Contains reports whether addr falls on the run.
func (r Run) Contains(addr uint64) bool {
	if r.Stride == 0 {
		return addr == r.Base && r.Count > 0
	}
	d := int64(addr) - int64(r.Base)
	if d%r.Stride != 0 {
		return false
	}
	k := d / r.Stride
	return k >= 0 && uint64(k) < r.Count
}

// Detector learns the stride behaviour of one instruction's address stream.
type Detector struct {
	state  State
	last   uint64
	stride int64
	run    Run
	runs   []Run
	points []uint64
}

// NewDetector returns a detector in the Start state.
func NewDetector() *Detector { return &Detector{} }

// State returns the current FSM state.
func (d *Detector) State() State { return d.state }

// Stride returns the learned stride; ok is false unless the FSM is in the
// Learned state (the only state in which the stride is confirmed).
func (d *Detector) Stride() (stride int64, ok bool) {
	return d.stride, d.state == Learned
}

// Last returns the most recently observed address; meaningless in Start.
func (d *Detector) Last() uint64 { return d.last }

// Reset returns the detector to the Start state, keeping the capacity of any
// run/point history so pooled detectors do not re-allocate on reuse.
func (d *Detector) Reset() {
	*d = Detector{runs: d.runs[:0], points: d.points[:0]}
}

// Track feeds the next address through the FSM without recording run or
// point history: the zero-allocation variant of Observe for producers that
// only need the state and the learned stride. It returns the state after the
// transition. The transitions match Observe exactly (Random is terminal, as
// in Observe; embedders that evict and reset table entries re-learn there).
func (d *Detector) Track(addr uint64) State {
	switch d.state {
	case Start:
		d.last = addr
		d.state = First
	case First:
		d.stride = int64(addr) - int64(d.last)
		d.last = addr
		d.state = Learned
	case Learned:
		if int64(addr)-int64(d.last) != d.stride {
			d.state = Weak
		}
		d.last = addr
	case Weak:
		if int64(addr)-int64(d.last) == d.stride {
			d.state = Learned
		} else {
			d.state = Random
		}
		d.last = addr
	case Random:
		d.last = addr
	}
	return d.state
}

// Advance records an address the embedder has already verified to continue
// the learned stride (state Learned, delta == stride): the transition Track
// would take collapses to updating the last address, and unlike Track this
// inlines into the embedder's hot loop. Calling it with an unverified
// address desynchronizes the FSM.
func (d *Detector) Advance(addr uint64) { d.last = addr }

// pool recycles heap-allocated detectors for embedders that key detectors
// dynamically (per (thread, line) pair) and cannot embed them by value.
var pool = sync.Pool{New: func() any { return NewDetector() }}

// Get returns a detector in the Start state from the package pool.
func Get() *Detector { return pool.Get().(*Detector) }

// Put resets d and returns it to the package pool.
func Put(d *Detector) {
	d.Reset()
	pool.Put(d)
}

// Observe feeds the next address.
func (d *Detector) Observe(addr uint64) {
	switch d.state {
	case Start:
		d.last = addr
		d.state = First
	case First:
		d.stride = int64(addr) - int64(d.last)
		d.run = Run{Base: d.last, Stride: d.stride, Count: 2}
		d.last = addr
		d.state = Learned
	case Learned:
		if int64(addr)-int64(d.last) == d.stride {
			d.run.Count++
			d.last = addr
			return
		}
		d.state = Weak
		d.points = append(d.points, addr)
		d.last = addr
	case Weak:
		if int64(addr)-int64(d.last) == d.stride {
			// Stride resumed: flush the current run and start a new one
			// from the off-stride point's successor.
			d.flushRun()
			d.run = Run{Base: d.last, Stride: d.stride, Count: 2}
			d.last = addr
			d.state = Learned
			return
		}
		d.state = Random
		d.points = append(d.points, addr)
		d.last = addr
	case Random:
		d.points = append(d.points, addr)
		d.last = addr
	}
}

func (d *Detector) flushRun() {
	if d.run.Count > 0 {
		d.runs = append(d.runs, d.run)
		d.run = Run{}
	}
}

// Finish closes the stream and returns the compressed representation:
// strided runs plus residual point addresses.
func (d *Detector) Finish() ([]Run, []uint64) {
	d.flushRun()
	if d.state == First {
		// A single observed address is a degenerate run.
		d.runs = append(d.runs, Run{Base: d.last, Stride: 0, Count: 1})
	}
	return d.runs, d.points
}

// CompressionRatio summarizes how well a stream compressed: observed
// addresses per stored record (runs + points). Higher is better; 1.0 means
// no compression.
func CompressionRatio(observed int, runs []Run, points []uint64) float64 {
	stored := len(runs) + len(points)
	if stored == 0 {
		return 1
	}
	return float64(observed) / float64(stored)
}

// Compress runs a detector over a whole stream and reports the ratio — the
// ablation entry point.
func Compress(addrs []uint64) (ratio float64, runs []Run, points []uint64) {
	d := NewDetector()
	for _, a := range addrs {
		d.Observe(a)
	}
	runs, points = d.Finish()
	return CompressionRatio(len(addrs), runs, points), runs, points
}
