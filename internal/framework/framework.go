// Package framework is the integrated program-analysis layer sketched in
// the paper's conclusion (§VIII): it "reorganizes profiled data into
// multiple representations, including dynamic execution tree, call tree,
// dependence graph, loop table, etc., and a dependence-based program
// analysis can be implemented as a plugin."
//
// Data bundles one profiling run; representation builders derive a
// dependence graph and a loop table from it; Analysis plugins consume the
// bundle and produce reports. Built-in plugins cover the paper's two §VII
// applications (parallelism discovery, communication patterns) plus hot
// dependence and race summaries.
package framework

import (
	"fmt"
	"sort"
	"strings"

	"ddprof/internal/analysis"
	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	"ddprof/internal/minilang"
	"ddprof/internal/prog"
)

// Data is one completed profiling run plus its target program.
type Data struct {
	Program *minilang.Program
	Result  *core.Result
	Info    *interp.RunInfo
}

// New bundles a run.
func New(p *minilang.Program, res *core.Result, info *interp.RunInfo) *Data {
	return &Data{Program: p, Result: res, Info: info}
}

// --- dependence graph ----------------------------------------------------

// Edge is one aggregated dependence between two source lines.
type Edge struct {
	Type  dep.Type
	From  loc.SourceLoc // source (earlier access)
	To    loc.SourceLoc // sink (later access)
	Var   loc.VarID
	Count uint64
}

// DepGraph is the line-level dependence graph.
type DepGraph struct {
	edges map[loc.SourceLoc][]Edge // keyed by From
	redge map[loc.SourceLoc][]Edge // keyed by To
}

// Graph builds the dependence graph (INIT records carry no source and are
// excluded).
func (d *Data) Graph() *DepGraph {
	g := &DepGraph{
		edges: make(map[loc.SourceLoc][]Edge),
		redge: make(map[loc.SourceLoc][]Edge),
	}
	d.Result.Deps.Range(func(k dep.Key, st dep.Stats) bool {
		if k.Type == dep.INIT {
			return true
		}
		e := Edge{Type: k.Type, From: k.Src, To: k.Sink, Var: k.Var, Count: st.Count}
		g.edges[e.From] = append(g.edges[e.From], e)
		g.redge[e.To] = append(g.redge[e.To], e)
		return true
	})
	for _, m := range []map[loc.SourceLoc][]Edge{g.edges, g.redge} {
		for _, es := range m {
			sort.Slice(es, func(i, j int) bool {
				if es[i].To != es[j].To {
					return es[i].To < es[j].To
				}
				if es[i].From != es[j].From {
					return es[i].From < es[j].From
				}
				return es[i].Type < es[j].Type
			})
		}
	}
	return g
}

// From returns the edges whose source is the given line.
func (g *DepGraph) From(l loc.SourceLoc) []Edge { return g.edges[l] }

// To returns the edges whose sink is the given line.
func (g *DepGraph) To(l loc.SourceLoc) []Edge { return g.redge[l] }

// Lines returns every line participating in the graph, sorted.
func (g *DepGraph) Lines() []loc.SourceLoc {
	seen := map[loc.SourceLoc]bool{}
	for l := range g.edges {
		seen[l] = true
	}
	for l := range g.redge {
		seen[l] = true
	}
	out := make([]loc.SourceLoc, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reachable returns the set of lines reachable from l along RAW edges —
// the dataflow slice of a statement.
func (g *DepGraph) Reachable(l loc.SourceLoc) map[loc.SourceLoc]bool {
	seen := map[loc.SourceLoc]bool{}
	var walk func(loc.SourceLoc)
	walk = func(cur loc.SourceLoc) {
		for _, e := range g.edges[cur] {
			if e.Type != dep.RAW || seen[e.To] {
				continue
			}
			seen[e.To] = true
			if e.To != cur {
				walk(e.To)
			}
		}
	}
	walk(l)
	return seen
}

// --- loop table ----------------------------------------------------------

// LoopRow is one entry of the loop table.
type LoopRow struct {
	Loop       prog.Loop
	Iterations uint64
	Report     analysis.LoopReport
}

// LoopTable lists every executed loop with its dependence verdicts, sorted
// by begin line.
func (d *Data) LoopTable() []LoopRow {
	reports := analysis.DiscoverParallelism(d.Program.Meta, d.Result, d.Info.LoopIters)
	rows := make([]LoopRow, 0, len(reports))
	for _, r := range reports {
		rows = append(rows, LoopRow{Loop: r.Loop, Iterations: r.Iterations, Report: r})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Loop.Begin < rows[j].Loop.Begin })
	return rows
}

// --- plugins -------------------------------------------------------------

// Analysis is a dependence-based program analysis plugin.
type Analysis interface {
	// Name identifies the plugin.
	Name() string
	// Run produces a human-readable report from the bundled data.
	Run(d *Data) (string, error)
}

// Registry holds plugins and runs them over a Data bundle.
type Registry struct {
	plugins []Analysis
}

// Register appends a plugin; duplicate names are rejected.
func (r *Registry) Register(a Analysis) error {
	for _, p := range r.plugins {
		if p.Name() == a.Name() {
			return fmt.Errorf("framework: plugin %q already registered", a.Name())
		}
	}
	r.plugins = append(r.plugins, a)
	return nil
}

// Plugins lists registered plugin names in order.
func (r *Registry) Plugins() []string {
	out := make([]string, len(r.plugins))
	for i, p := range r.plugins {
		out[i] = p.Name()
	}
	return out
}

// RunAll executes every plugin and concatenates their reports.
func (r *Registry) RunAll(d *Data) (string, error) {
	var b strings.Builder
	for _, p := range r.plugins {
		rep, err := p.Run(d)
		if err != nil {
			return "", fmt.Errorf("plugin %s: %w", p.Name(), err)
		}
		fmt.Fprintf(&b, "== %s ==\n%s\n", p.Name(), rep)
	}
	return b.String(), nil
}

// DefaultRegistry returns a registry with the built-in plugins.
func DefaultRegistry(targetThreads int) *Registry {
	r := &Registry{}
	_ = r.Register(Parallelism{})
	_ = r.Register(HotDeps{Top: 5})
	_ = r.Register(Communication{Threads: targetThreads})
	_ = r.Register(Races{})
	_ = r.Register(CallGraph{})
	_ = r.Register(SectionsPlugin{})
	return r
}

// Parallelism is the §VII-A plugin: loop parallelism verdicts.
type Parallelism struct{}

// Name implements Analysis.
func (Parallelism) Name() string { return "parallelism" }

// Run implements Analysis.
func (Parallelism) Run(d *Data) (string, error) {
	var b strings.Builder
	for _, row := range d.LoopTable() {
		verdict := "sequential"
		switch {
		case row.Report.Parallelizable:
			verdict = "parallelizable"
		case row.Report.Reduction:
			verdict = "reduction"
		}
		fmt.Fprintf(&b, "%-24s %8d iters  %s\n", row.Loop.Name, row.Iterations, verdict)
	}
	return b.String(), nil
}

// HotDeps reports the most frequent dependences.
type HotDeps struct{ Top int }

// Name implements Analysis.
func (h HotDeps) Name() string { return "hot-deps" }

// Run implements Analysis.
func (h HotDeps) Run(d *Data) (string, error) {
	type kc struct {
		k dep.Key
		c uint64
	}
	var all []kc
	d.Result.Deps.Range(func(k dep.Key, st dep.Stats) bool {
		all = append(all, kc{k, st.Count})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].k.Sink < all[j].k.Sink
	})
	n := h.Top
	if n <= 0 {
		n = 5
	}
	if n > len(all) {
		n = len(all)
	}
	var b strings.Builder
	for _, e := range all[:n] {
		fmt.Fprintf(&b, "%v %v <- %v |%s| x%d\n",
			e.k.Type, e.k.Sink, e.k.Src, d.Program.Tab.VarName(e.k.Var), e.c)
	}
	return b.String(), nil
}

// Communication is the §VII-B plugin.
type Communication struct{ Threads int }

// Name implements Analysis.
func (Communication) Name() string { return "communication" }

// Run implements Analysis.
func (c Communication) Run(d *Data) (string, error) {
	t := c.Threads
	if t <= 0 {
		t = 1
	}
	m := analysis.Communication(d.Result.Deps, t)
	return m.Heatmap(), nil
}

// CallGraph reports the dynamic call graph (§VIII's call tree collapsed to
// caller→callee invocation counts) recorded by the interpreter.
type CallGraph struct{}

// Name implements Analysis.
func (CallGraph) Name() string { return "callgraph" }

// Run implements Analysis.
func (CallGraph) Run(d *Data) (string, error) {
	type fc struct {
		fn string
		n  uint64
	}
	fns := make([]fc, 0, len(d.Info.Calls))
	for fn, n := range d.Info.Calls {
		fns = append(fns, fc{fn, n})
	}
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].n != fns[j].n {
			return fns[i].n > fns[j].n
		}
		return fns[i].fn < fns[j].fn
	})
	var b strings.Builder
	for _, f := range fns {
		fmt.Fprintf(&b, "%-20s x%d\n", f.fn, f.n)
	}
	edges := make([]interp.CallEdge, 0, len(d.Info.CallEdges))
	for e := range d.Info.CallEdges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Caller != edges[j].Caller {
			return edges[i].Caller < edges[j].Caller
		}
		return edges[i].Callee < edges[j].Callee
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "%s -> %s x%d\n", e.Caller, e.Callee, d.Info.CallEdges[e])
	}
	fmt.Fprintf(&b, "max call depth: %d\n", d.Info.MaxCallDepth)
	return b.String(), nil
}

// SectionsPlugin reports the loop-to-loop (section-level) dependence
// summary of §VI-B.
type SectionsPlugin struct{}

// Name implements Analysis.
func (SectionsPlugin) Name() string { return "sections" }

// Run implements Analysis.
func (SectionsPlugin) Run(d *Data) (string, error) {
	sd := analysis.Sections(d.Program.Meta, d.Result.Deps)
	out := sd.String()
	if out == "" {
		out = "no cross-section dependences\n"
	}
	return out, nil
}

// Races is the §V-B plugin: dependences whose timestamps reversed.
type Races struct{}

// Name implements Analysis.
func (Races) Name() string { return "races" }

// Run implements Analysis.
func (Races) Run(d *Data) (string, error) {
	var b strings.Builder
	n := 0
	d.Result.Deps.Range(func(k dep.Key, st dep.Stats) bool {
		if st.Reversed {
			n++
			fmt.Fprintf(&b, "%v %v|%d <- %v|%d |%s| (order reversal observed)\n",
				k.Type, k.Sink, k.SinkThread, k.Src, k.SrcThread, d.Program.Tab.VarName(k.Var))
		}
		return true
	})
	fmt.Fprintf(&b, "%d dependences flagged as potential races\n", n)
	return b.String(), nil
}
