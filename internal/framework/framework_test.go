package framework

import (
	"errors"
	"strings"
	"testing"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	ml "ddprof/internal/minilang"
)

// bundle profiles a small program and wraps it.
func bundle(t *testing.T) *Data {
	t.Helper()
	p := testProgram()
	prof := core.NewSerial(core.Config{
		Backend: "perfect",
		Meta:    p.Meta,
	})
	info, err := interp.Run(p, prof, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return New(p, prof.Flush(), info)
}

// testProgram builds:
//
//	line 1: x = 1
//	line 2: y = x + 1
//	line 3: z = y * 2
//	line 4: s = 0
//	line 5: loop (reduction on s at line 6)
func testProgram() *ml.Program {
	p := ml.New("fw")
	p.MainFunc(func(b *ml.Block) {
		b.Decl("x", ml.Ci(1))
		b.Decl("y", ml.Add(ml.V("x"), ml.Ci(1)))
		b.Decl("z", ml.Mul(ml.V("y"), ml.Ci(2)))
		b.Decl("s", ml.Ci(0))
		b.For("i", ml.Ci(0), ml.Ci(10), ml.Ci(1), ml.LoopOpt{Name: "acc"}, func(l *ml.Block) {
			l.Reduce("s", ml.OpAdd, ml.V("z"))
		})
	})
	return p
}

func TestGraphEdges(t *testing.T) {
	d := bundle(t)
	g := d.Graph()
	l1, l2 := loc.Pack(1, 1), loc.Pack(1, 2)
	// x written at 1, read at 2: RAW edge 1 -> 2.
	found := false
	for _, e := range g.From(l1) {
		if e.Type == dep.RAW && e.To == l2 {
			found = true
			if e.Count == 0 {
				t.Error("edge has zero count")
			}
		}
	}
	if !found {
		t.Fatalf("missing RAW edge 1->2; edges: %+v", g.From(l1))
	}
	// Reverse index agrees.
	found = false
	for _, e := range g.To(l2) {
		if e.Type == dep.RAW && e.From == l1 {
			found = true
		}
	}
	if !found {
		t.Error("reverse index missing the edge")
	}
	if len(g.Lines()) == 0 {
		t.Error("no lines in graph")
	}
}

func TestGraphReachable(t *testing.T) {
	d := bundle(t)
	g := d.Graph()
	// Dataflow from line 1 (x) flows through y (2), z (3) into the loop
	// accumulation (6).
	reach := g.Reachable(loc.Pack(1, 1))
	for _, want := range []int{2, 3} {
		if !reach[loc.Pack(1, want)] {
			t.Errorf("line %d not reachable from line 1: %v", want, reach)
		}
	}
	// Self-cycles (the accumulator) must not loop forever — reaching here
	// is the assertion.
}

func TestLoopTable(t *testing.T) {
	d := bundle(t)
	rows := d.LoopTable()
	if len(rows) != 1 {
		t.Fatalf("loop table rows = %d", len(rows))
	}
	if rows[0].Loop.Name != "acc" || rows[0].Iterations != 10 {
		t.Errorf("row = %+v", rows[0])
	}
	if rows[0].Report.Parallelizable || !rows[0].Report.Reduction {
		t.Errorf("accumulator verdict wrong: %+v", rows[0].Report)
	}
}

func TestRegistry(t *testing.T) {
	r := DefaultRegistry(1)
	if got := r.Plugins(); len(got) != 6 {
		t.Fatalf("plugins = %v", got)
	}
	if err := r.Register(Parallelism{}); err == nil {
		t.Error("duplicate registration accepted")
	}
	out, err := r.RunAll(bundle(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== parallelism ==", "== hot-deps ==", "== communication ==", "== races ==", "== callgraph ==", "== sections ==", "acc", "reduction", "max call depth"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// failing is a plugin that always errors.
type failing struct{}

func (failing) Name() string              { return "failing" }
func (failing) Run(*Data) (string, error) { return "", errors.New("boom") }

func TestRunAllPropagatesErrors(t *testing.T) {
	r := &Registry{}
	if err := r.Register(failing{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunAll(bundle(t)); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestHotDepsOrdering(t *testing.T) {
	d := bundle(t)
	out, err := HotDeps{Top: 3}.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 hot deps, got %d:\n%s", len(lines), out)
	}
	// The hottest dependence is the loop-control self dependence on i
	// (condition + increment reads every iteration).
	if !strings.Contains(lines[0], "|i|") {
		t.Errorf("hottest dep should be the loop variable: %s", lines[0])
	}
}

func TestCallGraphPlugin(t *testing.T) {
	d := bundle(t)
	out, err := CallGraph{}.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "main") || !strings.Contains(out, "max call depth: 1") {
		t.Errorf("callgraph output wrong:\n%s", out)
	}
}
