package event

import (
	"testing"
	"testing/quick"

	"ddprof/internal/loc"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Read: "read", Write: "write", Remove: "remove",
		Migrate: "migrate", Install: "install", Flush: "flush",
		Kind(99): "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestChunkAppendFullReset(t *testing.T) {
	c := NewChunk()
	if c.Full() || c.Len() != 0 {
		t.Fatal("fresh chunk should be empty")
	}
	a := Access{Addr: 42, Kind: Write, Loc: loc.Pack(1, 60)}
	for i := 0; i < ChunkSize; i++ {
		if c.Full() {
			t.Fatalf("chunk full after %d of %d appends", i, ChunkSize)
		}
		c.Append(a)
	}
	if !c.Full() {
		t.Fatal("chunk should be full")
	}
	if c.Len() != ChunkSize {
		t.Fatalf("Len = %d, want %d", c.Len(), ChunkSize)
	}
	if c.Events[0].Addr != 42 || c.Events[0].Loc.Line() != 60 {
		t.Error("events corrupted")
	}
	c.Reset()
	if c.Len() != 0 || c.Full() {
		t.Error("Reset did not empty the chunk")
	}
	// The backing array must be reused, not reallocated.
	c.Append(a)
	if &c.Events[0] != &c.buf[0] {
		t.Error("Reset reallocated the backing array")
	}
}

func TestPackIterVecDepths(t *testing.T) {
	// Single loop at iteration 7.
	v := PackIterVec([]uint32{7})
	if IterAt(v, 0) != 7 {
		t.Errorf("innermost = %d, want 7", IterAt(v, 0))
	}
	if IterAt(v, 1) != 0 {
		t.Errorf("parent of single loop should be 0")
	}

	// Nest of three: outer=2, mid=5, inner=9.
	v = PackIterVec([]uint32{2, 5, 9})
	if IterAt(v, 0) != 9 || IterAt(v, 1) != 5 || IterAt(v, 2) != 2 {
		t.Errorf("nest packing wrong: %d %d %d", IterAt(v, 0), IterAt(v, 1), IterAt(v, 2))
	}

	// Deeper than four: only the four innermost are kept.
	v = PackIterVec([]uint32{1, 2, 3, 4, 5, 6})
	if IterAt(v, 0) != 6 || IterAt(v, 1) != 5 || IterAt(v, 2) != 4 || IterAt(v, 3) != 3 {
		t.Error("deep nest should keep four innermost counters")
	}
}

func TestIterAtOutOfRange(t *testing.T) {
	v := PackIterVec([]uint32{1, 2, 3, 4})
	if IterAt(v, 4) != 0 || IterAt(v, -1) != 0 {
		t.Error("out-of-range depth must return 0")
	}
}

func TestPackIterVecTruncation(t *testing.T) {
	v := PackIterVec([]uint32{0x1FFFF}) // 17 bits
	if IterAt(v, 0) != 0xFFFF {
		t.Errorf("counter should truncate to 16 bits, got %#x", IterAt(v, 0))
	}
}

func TestPackIterVecProperty(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		v := PackIterVec([]uint32{uint32(a), uint32(b), uint32(c), uint32(d)})
		return IterAt(v, 0) == d && IterAt(v, 1) == c && IterAt(v, 2) == b && IterAt(v, 3) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackIterVecEmpty(t *testing.T) {
	if PackIterVec(nil) != 0 {
		t.Error("empty iteration stack must pack to 0")
	}
}
