// Package event defines the memory-access event stream the profiler consumes.
//
// The instrumentation substrate (internal/interp) calls the profiler once per
// memory access; the profiler's parallel pipeline groups accesses into fixed
// size Chunks (paper §IV: "the main thread ... collects memory accesses in
// chunks, whose size can be configured"), pushes full chunks to per-worker
// queues, and recycles empty chunks through a pool.
package event

import "ddprof/internal/loc"

// Kind classifies a memory-access event.
type Kind uint8

const (
	// Read is a load from memory.
	Read Kind = iota
	// Write is a store to memory.
	Write
	// Remove instructs the owning worker to forget an address. Emitted by
	// variable-lifetime analysis when storage is deallocated (paper §III-B:
	// "addresses that become obsolete after deallocating the corresponding
	// variable are removed from signatures").
	Remove
	// Migrate instructs the owning worker to publish its signature state for
	// an address into the migration mailbox (load-balancing, paper §IV-A).
	Migrate
	// Install instructs the new owner to adopt the migrated signature state
	// currently published in the migration mailbox.
	Install
	// Flush instructs a worker to finish processing and acknowledge; used at
	// end-of-stream.
	Flush
	// Hold instructs a worker to buffer further accesses to an address until
	// the address's migrated signature state is installed. Used only by the
	// multi-threaded-target redistribution protocol, where producers keep
	// pushing concurrently while an address is in flight between workers;
	// the sequential-target protocol needs no hold because its single
	// producer reroutes synchronously.
	Hold
	// RangeRef marks a chunk slot standing for a strided run (SD3-style
	// stride compression, §II related work). The slot's Addr field is the
	// index into the carrying Chunk's Ranges table; every other field is
	// unused. The run expands, in element order, at the slot's position, so
	// per-address processing order is exactly what the producer verified
	// when it built the range.
	RangeRef
	// Promote hints to the owning worker that Addr is a heavy hitter worth
	// exact treatment: stores with an exact tier (sig.Promoter, the hybrid
	// backend) adopt the address, every other store ignores the event. Only
	// the producer's rebalance cadence emits it (seeded from the Misra–Gries
	// sketch); like the other control kinds it never crosses the wire.
	Promote
	// EpochMark advances the session's epoch clock: the Addr field carries
	// the new epoch number, and each worker that processes the mark extracts
	// an epoch-delta (dependences whose aggregates advanced since the last
	// mark) from its dependence set without pausing the pipeline. Unlike the
	// other control kinds, EpochMark is wire-legal in DDT1 traces so clients
	// can cut epochs at workload-meaningful boundaries; the daemon's ticker
	// injects the same record server-side.
	EpochMark
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Remove:
		return "remove"
	case Migrate:
		return "migrate"
	case Install:
		return "install"
	case Flush:
		return "flush"
	case Hold:
		return "hold"
	case RangeRef:
		return "range"
	case Promote:
		return "promote"
	case EpochMark:
		return "epoch"
	}
	return "invalid"
}

// Access is one instrumented memory access (or a pipeline control event).
//
// Loop-carried classification (Table II) needs iteration context: CtxID
// identifies the static stack of loops enclosing the access, and IterVec packs
// the iteration counters of up to four innermost enclosing loops (16 bits
// each, deepest loop in the low bits). Timestamps are only populated when
// profiling multi-threaded targets (paper §V-B).
type Access struct {
	Addr    uint64        // simulated memory address
	TS      uint64        // global timestamp (MT-target mode only)
	IterVec uint64        // packed iteration vector of enclosing loops
	Loc     loc.SourceLoc // source location of the access
	Var     loc.VarID     // variable accessed
	CtxID   uint32        // static loop-context ID (0 = outside any loop)
	Thread  int32         // target-program thread ID
	Kind    Kind
	Flags   Flags
	// Rep is the number of *additional* identical repetitions this event
	// stands for. The parallel producer collapses consecutive identical reads
	// to one event with Rep > 0 instead of occupying chunk slots with copies;
	// the engine replays the multiplicity into the dependence counts, so the
	// profile is byte-identical to the uncollapsed stream. Only meaningful on
	// Read events; the field occupies struct padding, so Access stays 48 bytes.
	Rep uint16
}

// MaxRep is the largest repetition count one collapsed event can carry.
const MaxRep = ^uint16(0)

// Flags carry per-access attributes.
type Flags uint8

const (
	// FlagReduction marks an access belonging to a reduction statement
	// (x = x ⊕ expr, ⊕ commutative-associative). A loop-carried RAW between
	// two reduction accesses of the same statement is removable by a
	// reduction transformation, which parallelism discovery reports
	// separately.
	FlagReduction Flags = 1 << 0
	// FlagInduction marks an induction-variable update (i = i + step at a
	// loop header). Its carried self-RAW is loop control, not a
	// parallelism-preventing dependence.
	FlagInduction Flags = 1 << 1
)

// Range is a compressed strided run: Count accesses by one instruction whose
// addresses advance by a fixed stride. Element j (0 <= j < Count) stands for
// the point access
//
//	Addr    = Base + j*Stride      (wrapping uint64 arithmetic)
//	IterVec = IterVec + j*IterDelta
//
// with every other field (TS included) shared by all elements and Rep = 0.
// Stride is a wrapping delta, so descending runs are Stride = -8 cast to
// uint64; Stride = 0 encodes repeated accesses to one address. Ranges are
// produced only where the producer has verified that expanding the run in
// element order at the range's chunk position reproduces the per-address
// processing order of the uncompressed stream.
type Range struct {
	Base      uint64
	Stride    uint64 // wrapping per-element address delta
	TS        uint64 // shared by all elements (MT timestamps never compress)
	IterVec   uint64 // packed iteration vector of the first element
	IterDelta uint64 // wrapping per-element IterVec delta
	Loc       loc.SourceLoc
	Var       loc.VarID
	CtxID     uint32
	Count     uint32
	Thread    int32
	Kind      Kind
	Flags     Flags
}

// At expands element j of the run into a point access.
func (r *Range) At(j uint32) Access {
	return Access{
		Addr:    r.Base + uint64(j)*r.Stride,
		TS:      r.TS,
		IterVec: r.IterVec + uint64(j)*r.IterDelta,
		Loc:     r.Loc,
		Var:     r.Var,
		CtxID:   r.CtxID,
		Thread:  r.Thread,
		Kind:    r.Kind,
		Flags:   r.Flags,
	}
}

// Last returns the address of the final element.
func (r *Range) Last() uint64 {
	if r.Count == 0 {
		return r.Base
	}
	return r.Base + uint64(r.Count-1)*r.Stride
}

// ChunkSize is the default number of accesses per chunk. 4096 events keeps
// the per-push synchronization cost negligible while bounding the reordering
// window.
const ChunkSize = 4096

// MaxRangesPerChunk bounds the per-chunk range table. One range stands for at
// least two accesses, so 256 ranges can only be exhausted by a chunk already
// compressing well; once the table is full further runs fall back to points.
const MaxRangesPerChunk = 256

// Chunk is a fixed-capacity batch of accesses bound for one worker. A slot in
// Events holds either a point access or — when Kind is RangeRef — a reference
// (by Addr) into the Ranges side table.
type Chunk struct {
	Events []Access
	Ranges []Range
	buf    [ChunkSize]Access
	rbuf   [MaxRangesPerChunk]Range
}

// NewChunk returns an empty chunk with the default capacity.
func NewChunk() *Chunk {
	c := &Chunk{}
	c.Events = c.buf[:0]
	c.Ranges = c.rbuf[:0]
	return c
}

// Append adds an access; the caller must check Full first.
func (c *Chunk) Append(a Access) {
	c.Events = append(c.Events, a)
}

// AppendRange adds a range to the side table and returns its index; the
// caller must check RangesFull first and install a RangeRef slot referencing
// the returned index.
func (c *Chunk) AppendRange(r Range) int {
	c.Ranges = append(c.Ranges, r)
	return len(c.Ranges) - 1
}

// Full reports whether the chunk has reached capacity.
func (c *Chunk) Full() bool { return len(c.Events) == cap(c.Events) }

// RangesFull reports whether the range side table has reached capacity.
func (c *Chunk) RangesFull() bool { return len(c.Ranges) == cap(c.Ranges) }

// Len returns the number of buffered slots (a RangeRef slot counts once).
func (c *Chunk) Len() int { return len(c.Events) }

// Reset empties the chunk for reuse.
func (c *Chunk) Reset() {
	c.Events = c.buf[:0]
	c.Ranges = c.rbuf[:0]
}

// PackIterVec packs the iteration counters of the enclosing loops, deepest
// last in iters, into a 64-bit vector: the deepest loop occupies bits 0–15,
// its parent bits 16–31, and so on. Only the four innermost loops are kept;
// counters are truncated to 16 bits, which is exact for the workloads in this
// repository and degrades to a conservative hash beyond that.
func PackIterVec(iters []uint32) uint64 {
	var v uint64
	n := len(iters)
	for d := 0; d < 4 && d < n; d++ {
		// d=0 is the deepest (last) loop.
		v |= uint64(uint16(iters[n-1-d])) << (16 * d)
	}
	return v
}

// IterAt extracts the 16-bit iteration counter at depth-from-innermost d
// (0 = innermost) from a packed vector.
func IterAt(vec uint64, d int) uint16 {
	if d < 0 || d > 3 {
		return 0
	}
	return uint16(vec >> (16 * d))
}
