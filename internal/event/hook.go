package event

// Hook receives one event per instrumented memory access. It is the single
// contract between the instrumentation producers (the tree-walking
// interpreter and the bytecode VM) and every consumer: core.Serial,
// core.Parallel and core.MT implement it directly, as do the trace writer
// and the experiment capture buffers.
type Hook interface {
	Access(a Access)
}

// HookFunc adapts a plain function to a Hook.
type HookFunc func(a Access)

// Access implements Hook.
func (f HookFunc) Access(a Access) { f(a) }

// Recorder is a Hook that buffers the full access stream so one target run
// can be replayed into many profiler configurations (or compared against
// another producer's stream) without re-executing the target. It also
// counts distinct read/write addresses, the denominator of the paper's
// Table I. Not safe for concurrent callers; wrap sequential-target runs
// only, or serialize upstream.
type Recorder struct {
	events []Access
	seen   map[uint64]struct{}
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{seen: make(map[uint64]struct{})}
}

// Access implements Hook.
func (r *Recorder) Access(a Access) {
	r.events = append(r.events, a)
	if a.Kind == Read || a.Kind == Write {
		r.seen[a.Addr] = struct{}{}
	}
}

// Events returns the recorded stream, in arrival order.
func (r *Recorder) Events() []Access { return r.events }

// Addresses returns the number of distinct addresses touched.
func (r *Recorder) Addresses() int { return len(r.seen) }
