// Package workloads provides the benchmark programs the evaluation runs:
// minilang re-implementations of the NAS Parallel Benchmarks kernels, the
// Starbench suite, and splash2x.water-spatial, scaled to laptop size.
//
// Each workload preserves what the paper's experiments measure:
//
//   - the kernel's loop structure and per-loop parallelizability (Table II's
//     "# OMP" inventories, with the paper's non-identified loops realized as
//     genuine reduction/scan dependences);
//   - the ratio of distinct addresses to total accesses (Table I's FPR/FNR
//     drivers), scaled down by a constant factor;
//   - for the Starbench pthread variants, the cross-thread sharing pattern
//     (Figures 6/8) and for water-spatial the neighbour-exchange
//     communication pattern (Figure 9).
package workloads

import (
	. "ddprof/internal/minilang"
)

// Config scales a workload.
type Config struct {
	// Scale multiplies the default problem size. 1.0 (the default when 0)
	// is the "small" configuration used by tests; experiments may raise it.
	Scale float64
	// Threads is the number of target threads for parallel variants
	// (default 4, like the paper's pthread runs).
	Threads int
}

func (c Config) norm() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	return c
}

// n scales a base size, keeping at least lo.
func (c Config) n(base, lo int) int {
	v := int(float64(base) * c.Scale)
	if v < lo {
		return lo
	}
	return v
}

// Workload describes one benchmark.
type Workload struct {
	Name  string
	Suite string // "nas" or "starbench"
	// LOC is the paper's Table I LOC column (Starbench) for display.
	LOC int
	// OMPLoops and Identified are the Table II ground truth (NAS): how many
	// loops the OpenMP version annotates and how many of those profiled
	// dependences show as parallelizable.
	OMPLoops   int
	Identified int
	// Build returns the sequential program.
	Build func(Config) *Program
	// BuildParallel returns the pthread-style program, nil if the paper did
	// not evaluate one.
	BuildParallel func(Config) *Program
}

// Starbench returns the 11 Starbench workloads in the paper's Table I order.
func Starbench() []Workload {
	return []Workload{
		{Name: "c-ray", Suite: "starbench", LOC: 620, Build: CRay, BuildParallel: CRayParallel},
		{Name: "kmeans", Suite: "starbench", LOC: 603, Build: KMeans, BuildParallel: KMeansParallel},
		{Name: "md5", Suite: "starbench", LOC: 661, Build: MD5, BuildParallel: MD5Parallel},
		{Name: "ray-rot", Suite: "starbench", LOC: 1425, Build: RayRot, BuildParallel: RayRotParallel},
		{Name: "rgbyuv", Suite: "starbench", LOC: 483, Build: RGBYUV, BuildParallel: RGBYUVParallel},
		{Name: "rotate", Suite: "starbench", LOC: 871, Build: Rotate, BuildParallel: RotateParallel},
		{Name: "rot-cc", Suite: "starbench", LOC: 1122, Build: RotCC, BuildParallel: RotCCParallel},
		{Name: "streamcluster", Suite: "starbench", LOC: 860, Build: StreamCluster, BuildParallel: StreamClusterParallel},
		{Name: "tinyjpeg", Suite: "starbench", LOC: 1922, Build: TinyJPEG, BuildParallel: TinyJPEGParallel},
		{Name: "bodytrack", Suite: "starbench", LOC: 3614, Build: BodyTrack, BuildParallel: BodyTrackParallel},
		{Name: "h264dec", Suite: "starbench", LOC: 42822, Build: H264Dec, BuildParallel: H264DecParallel},
	}
}

// NAS returns the 8 NAS workloads in the paper's Table II order, with the
// table's "# OMP" and "# identified" ground truth.
func NAS() []Workload {
	return []Workload{
		{Name: "BT", Suite: "nas", OMPLoops: 30, Identified: 30, Build: BT},
		{Name: "SP", Suite: "nas", OMPLoops: 34, Identified: 34, Build: SP},
		{Name: "LU", Suite: "nas", OMPLoops: 33, Identified: 33, Build: LU},
		{Name: "IS", Suite: "nas", OMPLoops: 11, Identified: 8, Build: IS},
		{Name: "EP", Suite: "nas", OMPLoops: 1, Identified: 1, Build: EP},
		{Name: "CG", Suite: "nas", OMPLoops: 16, Identified: 9, Build: CG},
		{Name: "MG", Suite: "nas", OMPLoops: 14, Identified: 14, Build: MG},
		{Name: "FT", Suite: "nas", OMPLoops: 8, Identified: 7, Build: FT},
	}
}

// All returns every registered workload (NAS then Starbench).
func All() []Workload {
	return append(NAS(), Starbench()...)
}

// ByName finds a workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// --- shared minilang building blocks -----------------------------------

// lcgNext returns the expression (1597*x + 51749) mod 244944 — a small LCG
// whose intermediate products stay exactly representable in float64, giving
// deterministic pseudo-random sequences inside minilang programs.
func lcgNext(x Expr) Expr {
	return Mod(Add(Mul(Ci(1597), x), Ci(51749)), Ci(244944))
}

// initArrayLCG declares arr[n] and fills it with LCG values seeded by seed.
// The fill loop is parallel in principle but stated sequentially (seeded
// chain), so it is not annotated OMP.
func initArrayLCG(b *Block, arr string, n Expr, seed int, name string) {
	b.DeclArr(arr, n)
	b.Decl(arr+"_seed", Ci(seed))
	b.For("i", Ci(0), n, Ci(1), LoopOpt{Name: name}, func(l *Block) {
		l.Assign(arr+"_seed", lcgNext(V(arr+"_seed")))
		l.Set(arr, V("i"), V(arr+"_seed"))
	})
}

// copyLoop adds an OMP-clean loop dst[i] = src[i] * scale + off.
func copyLoop(b *Block, name, dst, src string, n Expr, scale, off float64) {
	b.For("i", Ci(0), n, Ci(1), LoopOpt{Name: name, OMP: true}, func(l *Block) {
		l.Set(dst, V("i"), Add(Mul(Idx(src, V("i")), C(scale)), C(off)))
	})
}

// stencilLoop adds an OMP-clean 1-D stencil dst[i] = (src[i-1]+src[i]+src[i+1])/3
// over the interior. Reading a *different* array keeps it loop-independent.
func stencilLoop(b *Block, name, dst, src string, n Expr) {
	b.For("i", Ci(1), Sub(n, Ci(1)), Ci(1), LoopOpt{Name: name, OMP: true}, func(l *Block) {
		l.Set(dst, V("i"),
			Div(Add(Idx(src, Sub(V("i"), Ci(1))), Idx(src, V("i")), Idx(src, Add(V("i"), Ci(1)))), C(3)))
	})
}

// axpyLoop adds an OMP-clean loop y[i] = y[i] + a*x[i].
func axpyLoop(b *Block, name, y, x string, n Expr, a Expr) {
	b.For("i", Ci(0), n, Ci(1), LoopOpt{Name: name, OMP: true}, func(l *Block) {
		l.Set(y, V("i"), Add(Idx(y, V("i")), Mul(a, Idx(x, V("i")))))
	})
}

// dotLoop adds a dot-product reduction loop into scalar out. The OpenMP
// version parallelizes it with a reduction clause, so it counts as OMP, but
// its profiled dependences are loop-carried RAW — the paper's non-identified
// loops (CG, FT, IS).
func dotLoop(b *Block, name, out, x, y string, n Expr) {
	b.Assign(out, Ci(0))
	b.For("i", Ci(0), n, Ci(1), LoopOpt{Name: name, OMP: true}, func(l *Block) {
		l.Reduce(out, OpAdd, Mul(Idx(x, V("i")), Idx(y, V("i"))))
	})
}

// seqSweepLoop adds a genuinely sequential (non-OMP) recurrence
// a[i] = a[i-1]*c + b[i], e.g. a forward substitution sweep.
func seqSweepLoop(b *Block, name, arr, src string, n Expr, c float64) {
	b.For("i", Ci(1), n, Ci(1), LoopOpt{Name: name}, func(l *Block) {
		l.Set(arr, V("i"), Add(Mul(Idx(arr, Sub(V("i"), Ci(1))), C(c)), Idx(src, V("i"))))
	})
}
