package workloads

import (
	. "ddprof/internal/minilang"
)

// --- tinyjpeg: table-driven block decoder --------------------------------
//
// The paper's tinyjpeg touches only ~420 distinct addresses while making
// 2.3e7 accesses: a tiny working set (quantization and Huffman-style tables,
// one 8x8 coefficient block, one 8x8 output block) hammered once per MCU.

func tinyjpegTables(b *Block) {
	initArrayLCG(b, "quant", Ci(64), 5, "tj.init_quant")
	initArrayLCG(b, "huff", Ci(64), 77, "tj.init_huff")
	b.DeclArr("coef", Ci(64))
	b.DeclArr("block", Ci(64))
}

// tinyjpegMCU decodes one MCU: entropy-decode into coef (a sequential
// while-style chain), dequantize, and run a row/column transform.
func tinyjpegMCU(mb *Block) {
	// Entropy decode: bit buffer chained across coefficients.
	mb.Decl("bits", Add(Mod(V("mcu"), Ci(9973)), Ci(1)))
	mb.Decl("k", Ci(0))
	mb.While(Lt(V("k"), Ci(64)), LoopOpt{Name: "tj.entropy"}, func(w *Block) {
		w.Assign("bits", lcgNext(V("bits")))
		w.Decl("sym", Mod(Idx("huff", Mod(V("bits"), Ci(64))), Ci(32)))
		w.Set("coef", V("k"), Sub(V("sym"), Ci(16)))
		w.Assign("k", Add(V("k"), Ci(1)))
	})
	// Dequantize in place.
	mb.For("i", Ci(0), Ci(64), Ci(1), LoopOpt{Name: "tj.dequant"}, func(l *Block) {
		l.Set("coef", V("i"), Mul(Idx("coef", V("i")), Add(Mod(Idx("quant", V("i")), Ci(16)), Ci(1))))
	})
	// Separable transform: rows then columns, accumulating into block.
	mb.For("rr", Ci(0), Ci(8), Ci(1), LoopOpt{Name: "tj.idct_rows"}, func(r *Block) {
		r.For("cc", Ci(0), Ci(8), Ci(1), LoopOpt{Name: "tj.idct_cols"}, func(l *Block) {
			l.Decl("acc", C(0))
			l.For("t", Ci(0), Ci(8), Ci(1), LoopOpt{Name: "tj.idct_inner"}, func(in *Block) {
				in.Reduce("acc", OpAdd, Mul(Idx("coef", Add(Mul(V("rr"), Ci(8)), V("t"))),
					CallE("cos", Mul(V("t"), Add(V("cc"), C(0.5))))))
			})
			l.Set("block", Add(Mul(V("rr"), Ci(8)), V("cc")), V("acc"))
		})
	})
	mb.Reduce("checksum", OpAdd, Idx("block", Mod(V("mcu"), Ci(64))))
}

// TinyJPEG decodes a stream of MCUs sequentially.
func TinyJPEG(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("tinyjpeg")
	p.MainFunc(func(b *Block) {
		tinyjpegTables(b)
		b.Decl("M", Ci(cfg.n(300, 8)))
		b.Decl("checksum", C(0))
		b.For("mcu", Ci(0), V("M"), Ci(1), LoopOpt{Name: "tj.mcus"}, tinyjpegMCU)
	})
	return p
}

// TinyJPEGParallel decodes MCU ranges per thread with thread-private blocks
// (the pthread tinyjpeg decodes independent restart intervals).
func TinyJPEGParallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("tinyjpeg-pthread")
	p.MainFunc(func(b *Block) {
		initArrayLCG(b, "quant", Ci(64), 5, "tjp.init_quant")
		initArrayLCG(b, "huff", Ci(64), 77, "tjp.init_huff")
		b.Decl("M", Ci(cfg.n(300, 8)))
		b.Decl("checksum", C(0))
		b.Spawn(cfg.Threads, func(s *Block) {
			threadSpan(s, V("M"), cfg.Threads)
			s.DeclArr("coef", Ci(64))
			s.DeclArr("block", Ci(64))
			s.Decl("local", C(0))
			s.For("mcu", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "tjp.mcus"}, func(mb *Block) {
				mb.Decl("bits", Add(Mod(V("mcu"), Ci(9973)), Ci(1)))
				mb.Decl("k", Ci(0))
				mb.While(Lt(V("k"), Ci(64)), LoopOpt{Name: "tjp.entropy"}, func(w *Block) {
					w.Assign("bits", lcgNext(V("bits")))
					w.Decl("sym", Mod(Idx("huff", Mod(V("bits"), Ci(64))), Ci(32)))
					w.Set("coef", V("k"), Sub(V("sym"), Ci(16)))
					w.Assign("k", Add(V("k"), Ci(1)))
				})
				mb.For("i", Ci(0), Ci(64), Ci(1), LoopOpt{Name: "tjp.dequant"}, func(l *Block) {
					l.Set("coef", V("i"), Mul(Idx("coef", V("i")), Add(Mod(Idx("quant", V("i")), Ci(16)), Ci(1))))
				})
				mb.For("rr", Ci(0), Ci(8), Ci(1), LoopOpt{Name: "tjp.idct_rows"}, func(r *Block) {
					r.For("cc", Ci(0), Ci(8), Ci(1), LoopOpt{Name: "tjp.idct_cols"}, func(l *Block) {
						l.Decl("acc", C(0))
						l.For("t", Ci(0), Ci(8), Ci(1), LoopOpt{Name: "tjp.idct_inner"}, func(in *Block) {
							in.Reduce("acc", OpAdd, Mul(Idx("coef", Add(Mul(V("rr"), Ci(8)), V("t"))),
								CallE("cos", Mul(V("t"), Add(V("cc"), C(0.5))))))
						})
						l.Set("block", Add(Mul(V("rr"), Ci(8)), V("cc")), V("acc"))
					})
				})
				mb.Reduce("local", OpAdd, Idx("block", Mod(V("mcu"), Ci(64))))
			})
			s.Lock("sum", func(cr *Block) {
				cr.Reduce("checksum", OpAdd, V("local"))
			})
		})
	})
	return p
}

// --- bodytrack: particle filter ------------------------------------------

func bodytrackData(b *Block, particles, obs int) {
	b.Decl("NP", Ci(particles))
	b.Decl("NO", Ci(obs))
	initArrayLCG(b, "pose", V("NP"), 31, "bt.init_pose")
	initArrayLCG(b, "obs", V("NO"), 63, "bt.init_obs")
	b.DeclArr("weight", V("NP"))
	b.DeclArr("cdf", V("NP"))
	b.DeclArr("newpose", V("NP"))
}

// BodyTrack runs a particle filter: propagate, weigh, build a CDF (a scan —
// genuinely sequential), and resample.
func BodyTrack(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("bodytrack")
	p.MainFunc(func(b *Block) {
		bodytrackData(b, cfg.n(2500, 32), cfg.n(400, 16))
		b.Decl("checksum", C(0))
		b.For("frame", Ci(0), Ci(3), Ci(1), LoopOpt{Name: "bt.frames"}, func(fb *Block) {
			fb.For("i", Ci(0), V("NP"), Ci(1), LoopOpt{Name: "bt.propagate", OMP: true}, func(l *Block) {
				l.Set("pose", V("i"), lcgNext(Idx("pose", V("i"))))
			})
			fb.For("i", Ci(0), V("NP"), Ci(1), LoopOpt{Name: "bt.weigh", OMP: true}, func(l *Block) {
				l.Decl("o", Idx("obs", Mod(Idx("pose", V("i")), V("NO"))))
				l.Decl("d", Sub(Mod(Idx("pose", V("i")), Ci(1000)), Mod(V("o"), Ci(1000))))
				l.Set("weight", V("i"), Div(C(1), Add(C(1), Mul(V("d"), V("d")))))
			})
			// Prefix-sum of weights: loop-carried scan.
			fb.Set("cdf", Ci(0), Idx("weight", Ci(0)))
			fb.For("i", Ci(1), V("NP"), Ci(1), LoopOpt{Name: "bt.scan"}, func(l *Block) {
				l.Set("cdf", V("i"), Add(Idx("cdf", Sub(V("i"), Ci(1))), Idx("weight", V("i"))))
			})
			fb.Decl("total", Idx("cdf", Sub(V("NP"), Ci(1))))
			fb.For("i", Ci(0), V("NP"), Ci(1), LoopOpt{Name: "bt.resample", OMP: true}, func(l *Block) {
				l.Decl("u", Mul(Div(Add(V("i"), C(0.5)), V("NP")), V("total")))
				// Systematic resampling via a proportional jump (index
				// computed from data, not a search, to stay O(1)).
				l.Decl("j", Mod(Add(V("i"), Mod(V("u"), V("NP"))), V("NP")))
				l.Set("newpose", V("i"), Idx("pose", V("j")))
			})
			fb.For("i", Ci(0), V("NP"), Ci(1), LoopOpt{Name: "bt.commit", OMP: true}, func(l *Block) {
				l.Set("pose", V("i"), Idx("newpose", V("i")))
			})
			fb.Reduce("checksum", OpAdd, V("total"))
		})
	})
	return p
}

// BodyTrackParallel partitions the per-particle phases; the scan stays on
// thread 0 between barriers (as the pthread version serializes it).
func BodyTrackParallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("bodytrack-pthread")
	p.MainFunc(func(b *Block) {
		bodytrackData(b, cfg.n(2500, 32), cfg.n(400, 16))
		b.Decl("checksum", C(0))
		b.For("frame", Ci(0), Ci(3), Ci(1), LoopOpt{Name: "btp.frames"}, func(fb *Block) {
			fb.Spawn(cfg.Threads, func(s *Block) {
				threadSpan(s, V("NP"), cfg.Threads)
				s.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "btp.propagate"}, func(l *Block) {
					l.Set("pose", V("i"), lcgNext(Idx("pose", V("i"))))
				})
				s.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "btp.weigh"}, func(l *Block) {
					l.Decl("o", Idx("obs", Mod(Idx("pose", V("i")), V("NO"))))
					l.Decl("d", Sub(Mod(Idx("pose", V("i")), Ci(1000)), Mod(V("o"), Ci(1000))))
					l.Set("weight", V("i"), Div(C(1), Add(C(1), Mul(V("d"), V("d")))))
				})
				s.Barrier()
				s.If(Eq(Tid(), Ci(0)), func(t0 *Block) {
					t0.Set("cdf", Ci(0), Idx("weight", Ci(0)))
					t0.For("i", Ci(1), V("NP"), Ci(1), LoopOpt{Name: "btp.scan"}, func(l *Block) {
						l.Set("cdf", V("i"), Add(Idx("cdf", Sub(V("i"), Ci(1))), Idx("weight", V("i"))))
					})
				}, nil)
				s.Barrier()
				s.Decl("total", Idx("cdf", Sub(V("NP"), Ci(1))))
				s.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "btp.resample"}, func(l *Block) {
					l.Decl("u", Mul(Div(Add(V("i"), C(0.5)), V("NP")), V("total")))
					l.Decl("j", Mod(Add(V("i"), Mod(V("u"), V("NP"))), V("NP")))
					l.Set("newpose", V("i"), Idx("pose", V("j")))
				})
				s.Barrier()
				s.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "btp.commit"}, func(l *Block) {
					l.Set("pose", V("i"), Idx("newpose", V("i")))
				})
				s.Lock("sum", func(cr *Block) {
					cr.Reduce("checksum", OpAdd, V("total"))
				})
			})
		})
	})
	return p
}

// --- h264dec: macroblock decoder -----------------------------------------
//
// The dominant loops of an H.264 intra decoder: per-frame, per-macroblock
// prediction from the left and top neighbours (the wavefront dependence),
// residual transform, and a deblocking pass.

func h264Data(b *Block, mbx, mby int) {
	b.Decl("MX", Ci(mbx))
	b.Decl("MY", Ci(mby))
	b.DeclArr("frame", Mul(V("MX"), V("MY")))
	initArrayLCG(b, "resid", Mul(V("MX"), V("MY")), 123, "h264.init_resid")
	b.DeclArr("blk", Ci(16))
}

// h264DecodeMB decodes macroblock (bx,by): intra-predict from neighbours,
// add a transformed residual, store.
func h264DecodeMB(l *Block) {
	l.Decl("idx", Add(Mul(V("by"), V("MX")), V("bx")))
	l.Decl("pred", C(0))
	l.If(Gt(V("bx"), C(0)), func(left *Block) {
		left.Reduce("pred", OpAdd, Idx("frame", Sub(V("idx"), Ci(1))))
	}, nil)
	l.If(Gt(V("by"), C(0)), func(top *Block) {
		top.Reduce("pred", OpAdd, Idx("frame", Sub(V("idx"), V("MX"))))
	}, nil)
	// 4x4 residual transform into blk.
	l.For("u", Ci(0), Ci(16), Ci(1), LoopOpt{Name: "h264.transform"}, func(tb *Block) {
		tb.Set("blk", V("u"), Mod(Add(Idx("resid", V("idx")), Mul(V("u"), Ci(7))), Ci(256)))
	})
	l.Decl("dc", C(0))
	l.For("u", Ci(0), Ci(16), Ci(1), LoopOpt{Name: "h264.dc"}, func(tb *Block) {
		tb.Reduce("dc", OpAdd, Idx("blk", V("u")))
	})
	l.Set("frame", V("idx"), Add(Mul(V("pred"), C(0.5)), Mul(V("dc"), C(0.0625))))
}

// H264Dec decodes frames sequentially: the macroblock loops carry the
// wavefront dependence through frame[], so they are not annotated OMP.
func H264Dec(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("h264dec")
	// The real h264dec is the suite's only large multi-file program
	// (42822 LOC); modelling the file split makes the profiled locations
	// span file IDs like the paper's Figure 3 ("4:58").
	p.MainFunc(func(b *Block) {
		h264Data(b, cfg.n(24, 4), cfg.n(18, 3))
		b.Decl("checksum", C(0))
		b.SetFile("h264_decode.c")
		b.For("f", Ci(0), Ci(3), Ci(1), LoopOpt{Name: "h264.frames"}, func(fb *Block) {
			fb.For("by", Ci(0), V("MY"), Ci(1), LoopOpt{Name: "h264.mb_rows"}, func(r *Block) {
				r.For("bx", Ci(0), V("MX"), Ci(1), LoopOpt{Name: "h264.mb_cols"}, h264DecodeMB)
			})
			// Deblocking: horizontal smoothing, reads left neighbour of the
			// *same* array — carried; the real filter is ordered too.
			fb.SetFile("h264_deblock.c")
			fb.For("i", Ci(1), Mul(V("MX"), V("MY")), Ci(1), LoopOpt{Name: "h264.deblock"}, func(l *Block) {
				l.Set("frame", V("i"), Add(Mul(Idx("frame", V("i")), C(0.75)),
					Mul(Idx("frame", Sub(V("i"), Ci(1))), C(0.25))))
			})
			fb.Reduce("checksum", OpAdd, Idx("frame", Sub(Mul(V("MX"), V("MY")), Ci(1))))
		})
	})
	return p
}

// H264DecParallel decodes independent horizontal slices per thread (slice
// parallelism): intra prediction does not cross slice boundaries, and the
// cross-slice deblocking runs under a mutex.
func H264DecParallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("h264dec-pthread")
	p.MainFunc(func(b *Block) {
		h264Data(b, cfg.n(24, 4), cfg.n(18, 3))
		b.Decl("checksum", C(0))
		b.For("f", Ci(0), Ci(3), Ci(1), LoopOpt{Name: "h264p.frames"}, func(fb *Block) {
			fb.Spawn(cfg.Threads, func(s *Block) {
				threadSpan(s, V("MY"), cfg.Threads)
				s.DeclArr("blk", Ci(16)) // thread-private scratch, shadows the global
				s.For("by", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "h264p.mb_rows"}, func(r *Block) {
					r.For("bx", Ci(0), V("MX"), Ci(1), LoopOpt{Name: "h264p.mb_cols"}, func(l *Block) {
						l.Decl("idx", Add(Mul(V("by"), V("MX")), V("bx")))
						l.Decl("pred", C(0))
						l.If(Gt(V("bx"), C(0)), func(left *Block) {
							left.Reduce("pred", OpAdd, Idx("frame", Sub(V("idx"), Ci(1))))
						}, nil)
						l.If(Gt(V("by"), V("lo")), func(top *Block) {
							top.Reduce("pred", OpAdd, Idx("frame", Sub(V("idx"), V("MX"))))
						}, nil)
						l.For("u", Ci(0), Ci(16), Ci(1), LoopOpt{Name: "h264p.transform"}, func(tb *Block) {
							tb.Set("blk", V("u"), Mod(Add(Idx("resid", V("idx")), Mul(V("u"), Ci(7))), Ci(256)))
						})
						l.Decl("dc", C(0))
						l.For("u", Ci(0), Ci(16), Ci(1), LoopOpt{Name: "h264p.dc"}, func(tb *Block) {
							tb.Reduce("dc", OpAdd, Idx("blk", V("u")))
						})
						l.Set("frame", V("idx"), Add(Mul(V("pred"), C(0.5)), Mul(V("dc"), C(0.0625))))
					})
				})
				s.Barrier()
				// Slice-boundary deblocking under a mutex.
				s.If(Gt(V("lo"), C(0)), func(eb *Block) {
					eb.Lock("deblock", func(cr *Block) {
						cr.Decl("i", Mul(V("lo"), V("MX")))
						cr.Set("frame", V("i"), Add(Mul(Idx("frame", V("i")), C(0.75)),
							Mul(Idx("frame", Sub(V("i"), Ci(1))), C(0.25))))
					})
				}, nil)
			})
			fb.Reduce("checksum", OpAdd, Idx("frame", Sub(Mul(V("MX"), V("MY")), Ci(1))))
		})
	})
	return p
}
