package workloads

import (
	"fmt"

	. "ddprof/internal/minilang"
)

// The NAS kernels below preserve the paper's Table II loop inventories: each
// benchmark declares exactly its "# OMP" column of OMP-annotated loops, and
// the loops the paper's profiler does NOT identify as parallelizable (IS: 3,
// CG: 7, FT: 1) are realized as genuine reduction/scan dependences — the
// same reason the real DiscoPoP misses them: their OpenMP versions need
// reduction clauses or scan idioms, which a pure dependence test rejects.

// --- BT / SP / LU: structured-grid solvers -------------------------------

// gridInit declares the solver arrays over an n×n plane and fills u.
func gridInit(b *Block, n int) {
	b.Decl("N", Ci(n))
	b.Decl("NN", Mul(V("N"), V("N")))
	initArrayLCG(b, "u", V("NN"), 3, "grid.init_u_seed")
	b.DeclArr("us", V("NN"))
	b.DeclArr("qs", V("NN"))
	b.DeclArr("rhs", V("NN"))
	b.DeclArr("lhs", V("NN"))
	b.DeclArr("tmp", V("NN"))
}

// idxRow indexes row-major (the x direction); idxCol column-major (y).
func idxRow(line, k Expr) Expr { return Add(Mul(line, V("N")), k) }
func idxCol(line, k Expr) Expr { return Add(Mul(k, V("N")), line) }

// computeRHS emits `count` OMP-clean per-cell/stencil loops named
// prefix.rhs1..N, cycling through representative NAS rhs shapes.
func computeRHS(b *Block, prefix string, count int) {
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("%s.rhs%d", prefix, i+1)
		switch i % 4 {
		case 0: // copy + scale: us = u * c
			copyLoop(b, name, "us", "u", V("NN"), 0.25+float64(i)*0.01, 0)
		case 1: // square: qs = us^2
			b.For("i", Ci(0), V("NN"), Ci(1), LoopOpt{Name: name, OMP: true}, func(l *Block) {
				l.Set("qs", V("i"), Mul(Idx("us", V("i")), Idx("us", V("i"))))
			})
		case 2: // stencil: rhs = stencil(us)
			stencilLoop(b, name, "rhs", "us", V("NN"))
		case 3: // dissipation: rhs += c*qs
			axpyLoop(b, name, "rhs", "qs", V("NN"), C(0.05))
		}
	}
}

// solveDim emits the 6 OMP loops of one dimensional solve: lhs setup,
// forward elimination (inner sequential sweep), back substitution (inner
// sequential sweep), rhs update, u update, and a diagnostic copy. idx maps
// (line, k) to a flat index.
func solveDim(b *Block, prefix string, idx func(line, k Expr) Expr) {
	lineLoop := func(name string, inner func(l *Block)) {
		b.For("j", Ci(0), V("N"), Ci(1), LoopOpt{Name: name, OMP: true}, inner)
	}
	lineLoop(prefix+".lhsinit", func(l *Block) {
		l.For("k", Ci(0), V("N"), Ci(1), LoopOpt{Name: prefix + ".lhsinit.k"}, func(in *Block) {
			in.Set("lhs", idx(V("j"), V("k")), Add(Idx("u", idx(V("j"), V("k"))), C(1)))
		})
	})
	lineLoop(prefix+".forward", func(l *Block) {
		// Sequential recurrence along the line: carried at the inner loop
		// only, the OMP line loop stays independent.
		l.For("k", Ci(1), V("N"), Ci(1), LoopOpt{Name: prefix + ".forward.k"}, func(in *Block) {
			in.Set("lhs", idx(V("j"), V("k")),
				Add(Idx("lhs", idx(V("j"), V("k"))),
					Mul(Idx("lhs", idx(V("j"), Sub(V("k"), Ci(1)))), C(0.5))))
		})
	})
	lineLoop(prefix+".backward", func(l *Block) {
		l.For("k2", Ci(1), V("N"), Ci(1), LoopOpt{Name: prefix + ".backward.k"}, func(in *Block) {
			in.Decl("k", Sub(Sub(V("N"), Ci(1)), V("k2")))
			in.Set("lhs", idx(V("j"), V("k")),
				Add(Idx("lhs", idx(V("j"), V("k"))),
					Mul(Idx("lhs", idx(V("j"), Add(V("k"), Ci(1)))), C(0.25))))
		})
	})
	lineLoop(prefix+".rhsupd", func(l *Block) {
		l.For("k", Ci(0), V("N"), Ci(1), LoopOpt{Name: prefix + ".rhsupd.k"}, func(in *Block) {
			in.Set("rhs", idx(V("j"), V("k")), Mul(Idx("lhs", idx(V("j"), V("k"))), C(0.1)))
		})
	})
	lineLoop(prefix+".uupd", func(l *Block) {
		l.For("k", Ci(0), V("N"), Ci(1), LoopOpt{Name: prefix + ".uupd.k"}, func(in *Block) {
			in.Set("u", idx(V("j"), V("k")),
				Add(Idx("u", idx(V("j"), V("k"))), Idx("rhs", idx(V("j"), V("k")))))
		})
	})
	lineLoop(prefix+".diag", func(l *Block) {
		l.For("k", Ci(0), V("N"), Ci(1), LoopOpt{Name: prefix + ".diag.k"}, func(in *Block) {
			in.Set("tmp", idx(V("j"), V("k")), Idx("u", idx(V("j"), V("k"))))
		})
	})
}

// initLoops emits `count` OMP-clean initialization loops.
func initLoops(b *Block, prefix string, count int) {
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("%s.init%d", prefix, i+1)
		arr := []string{"rhs", "lhs", "tmp", "qs"}[i%4]
		b.For("i", Ci(0), V("NN"), Ci(1), LoopOpt{Name: name, OMP: true}, func(l *Block) {
			l.Set(arr, V("i"), Mul(V("i"), C(0.001*float64(i+1))))
		})
	}
}

// checksumLoop appends the final (non-OMP) verification reduction.
func checksumLoop(b *Block, prefix, arr string) {
	b.Decl("checksum", C(0))
	b.For("i", Ci(0), V("NN"), Ci(1), LoopOpt{Name: prefix + ".checksum"}, func(l *Block) {
		l.Reduce("checksum", OpAdd, Idx(arr, V("i")))
	})
}

// BT: block tridiagonal solver — 30 OMP loops (3 init + 8 rhs + 3×6 solves
// + 1 add), all identified.
func BT(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("BT")
	p.MainFunc(func(b *Block) {
		gridInit(b, cfg.n(18, 6))
		initLoops(b, "bt", 3)
		b.For("step", Ci(0), Ci(2), Ci(1), LoopOpt{Name: "bt.timestep"}, func(tb *Block) {
			computeRHS(tb, "bt", 8)
			solveDim(tb, "bt.xsolve", idxRow)
			solveDim(tb, "bt.ysolve", idxCol)
			solveDim(tb, "bt.zsolve", idxRow)
			axpyLoop(tb, "bt.add", "u", "rhs", V("NN"), C(0.3))
		})
		checksumLoop(b, "bt", "u")
	})
	return p
}

// SP: scalar pentadiagonal solver — 34 OMP loops (3 init + 10 rhs + 3×6
// solves + txinvr + pinvr + add), all identified.
func SP(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("SP")
	p.MainFunc(func(b *Block) {
		gridInit(b, cfg.n(18, 6))
		initLoops(b, "sp", 3)
		b.For("step", Ci(0), Ci(2), Ci(1), LoopOpt{Name: "sp.timestep"}, func(tb *Block) {
			computeRHS(tb, "sp", 10)
			copyLoop(tb, "sp.txinvr", "rhs", "qs", V("NN"), 0.7, 0.01)
			solveDim(tb, "sp.xsolve", idxRow)
			solveDim(tb, "sp.ysolve", idxCol)
			solveDim(tb, "sp.zsolve", idxRow)
			copyLoop(tb, "sp.pinvr", "tmp", "rhs", V("NN"), 1.1, 0)
			axpyLoop(tb, "sp.add", "u", "tmp", V("NN"), C(0.2))
		})
		checksumLoop(b, "sp", "u")
	})
	return p
}

// LU: SSOR solver — 33 OMP loops (3 init + 12 rhs + 2 solve sets of 6 +
// 3 jacobian stencils + 3 norm-preparation passes), all identified.
func LU(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("LU")
	p.MainFunc(func(b *Block) {
		gridInit(b, cfg.n(18, 6))
		initLoops(b, "lu", 3)
		b.For("step", Ci(0), Ci(2), Ci(1), LoopOpt{Name: "lu.timestep"}, func(tb *Block) {
			computeRHS(tb, "lu", 12)
			// jacld + blts: 9 OMP loops (1.5 solve sets, row-major).
			solveDim(tb, "lu.blts", idxRow)
			solveDim(tb, "lu.buts", idxCol)
			for i := 0; i < 3; i++ {
				stencilLoop(tb, fmt.Sprintf("lu.jac%d", i+1), "tmp", "u", V("NN"))
			}
			copyLoop(tb, "lu.l2norm_prep", "qs", "rhs", V("NN"), 1, 0)
			axpyLoop(tb, "lu.ssor_relax", "u", "tmp", V("NN"), C(0.1))
			copyLoop(tb, "lu.save_state", "lhs", "u", V("NN"), 1, 0)
		})
		checksumLoop(b, "lu", "u")
	})
	return p
}

// --- IS: integer bucket sort — 11 OMP loops, 8 identified -----------------
//
// The three not identified: the key histogram, the bucket prefix sum (scan)
// and the rank scatter-increment — all loop-carried through shared counters,
// parallelized in the OpenMP version only via reduction/scan idioms.
func IS(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("IS")
	n := cfg.n(4000, 64)
	buckets := cfg.n(256, 16)
	p.MainFunc(func(b *Block) {
		b.Decl("NK", Ci(n))
		b.Decl("NB", Ci(buckets))
		b.DeclArr("key", V("NK"))
		b.DeclArr("key2", V("NK"))
		b.DeclArr("out", V("NK"))
		b.DeclArr("bucket", V("NB"))
		b.DeclArr("ptr", V("NB"))
		b.DeclArr("ok", V("NK"))
		// 1 init keys (identified)
		b.For("i", Ci(0), V("NK"), Ci(1), LoopOpt{Name: "is.init_keys", OMP: true}, func(l *Block) {
			l.Set("key", V("i"), Mod(Mul(Add(V("i"), Ci(17)), Ci(9973)), V("NB")))
		})
		// 2 copy to work buffer (identified)
		copyLoop(b, "is.copy_keys", "key2", "key", V("NK"), 1, 0)
		// 3 scale buffer (identified)
		b.For("i", Ci(0), V("NK"), Ci(1), LoopOpt{Name: "is.scale_keys", OMP: true}, func(l *Block) {
			l.Set("key2", V("i"), Mod(Idx("key2", V("i")), V("NB")))
		})
		b.For("rep", Ci(0), Ci(cfg.n(4, 1)), Ci(1), LoopOpt{Name: "is.iterations"}, func(rb *Block) {
			// 4 clear buckets (identified)
			rb.For("i", Ci(0), V("NB"), Ci(1), LoopOpt{Name: "is.clear", OMP: true}, func(l *Block) {
				l.Set("bucket", V("i"), C(0))
			})
			// 5 histogram (OMP via reduction — NOT identified)
			rb.For("i", Ci(0), V("NK"), Ci(1), LoopOpt{Name: "is.histogram", OMP: true}, func(l *Block) {
				l.SetReduce("bucket", Idx("key", V("i")), OpAdd, Ci(1))
			})
			// 6 prefix sum (scan — NOT identified)
			rb.Set("ptr", Ci(0), C(0))
			rb.For("i", Ci(1), V("NB"), Ci(1), LoopOpt{Name: "is.scan", OMP: true}, func(l *Block) {
				l.Set("ptr", V("i"), Add(Idx("ptr", Sub(V("i"), Ci(1))), Idx("bucket", Sub(V("i"), Ci(1)))))
			})
			// 7 rank + scatter (increments shared cursors — NOT identified)
			rb.For("i", Ci(0), V("NK"), Ci(1), LoopOpt{Name: "is.rank", OMP: true}, func(l *Block) {
				l.Decl("kv", Idx("key", V("i")))
				l.Decl("pos", Idx("ptr", V("kv")))
				l.Set("out", V("pos"), V("kv"))
				l.SetReduce("ptr", V("kv"), OpAdd, Ci(1))
			})
			// 8 partial verification (identified: reads only out, writes ok)
			rb.For("i", Ci(1), V("NK"), Ci(1), LoopOpt{Name: "is.verify", OMP: true}, func(l *Block) {
				l.Set("ok", V("i"), Le(Idx("out", Sub(V("i"), Ci(1))), Idx("out", V("i"))))
			})
		})
		// 9,10,11: three more identified per-element loops.
		b.For("i", Ci(0), V("NK"), Ci(1), LoopOpt{Name: "is.square", OMP: true}, func(l *Block) {
			l.Set("key2", V("i"), Mul(Idx("out", V("i")), Ci(2)))
		})
		copyLoop(b, "is.save", "key", "key2", V("NK"), 1, 0)
		b.For("i", Ci(0), V("NK"), Ci(1), LoopOpt{Name: "is.flags", OMP: true}, func(l *Block) {
			l.Set("ok", V("i"), Ge(Idx("key", V("i")), C(0)))
		})
		b.Decl("checksum", C(0))
		b.For("i", Ci(0), V("NK"), Ci(1), LoopOpt{Name: "is.checksum"}, func(l *Block) {
			l.Reduce("checksum", OpAdd, Idx("out", V("i")))
		})
	})
	return p
}

// --- EP: embarrassingly parallel — 1 OMP loop, identified -----------------
//
// Each sample's pseudo-random pair derives from the sample index in closed
// form (no seed chain), so the single OMP loop is dependence-free; the tally
// reductions live in separate non-OMP loops.
func EP(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("EP")
	n := cfg.n(8000, 128)
	p.MainFunc(func(b *Block) {
		b.Decl("NS", Ci(n))
		b.DeclArr("sx", V("NS"))
		b.DeclArr("sy", V("NS"))
		b.DeclArr("hit", V("NS"))
		b.For("i", Ci(0), V("NS"), Ci(1), LoopOpt{Name: "ep.samples", OMP: true}, func(l *Block) {
			l.Decl("r1", lcgNext(Add(Mul(V("i"), Ci(2)), Ci(1))))
			l.Decl("r2", lcgNext(V("r1")))
			l.Decl("x", Sub(Div(V("r1"), C(122472)), C(1)))
			l.Decl("y", Sub(Div(V("r2"), C(122472)), C(1)))
			l.Decl("t", Add(Mul(V("x"), V("x")), Mul(V("y"), V("y"))))
			l.If(And(Le(V("t"), C(1)), Gt(V("t"), C(0))), func(in *Block) {
				in.Decl("f", CallE("sqrt", Div(Neg(Mul(C(2), CallE("log", V("t")))), V("t"))))
				in.Set("sx", V("i"), Mul(V("x"), V("f")))
				in.Set("sy", V("i"), Mul(V("y"), V("f")))
				in.Set("hit", V("i"), C(1))
			}, func(out *Block) {
				out.Set("sx", V("i"), C(0))
				out.Set("sy", V("i"), C(0))
				out.Set("hit", V("i"), C(0))
			})
		})
		b.Decl("sumx", C(0))
		b.Decl("sumy", C(0))
		b.Decl("hits", C(0))
		b.For("i", Ci(0), V("NS"), Ci(1), LoopOpt{Name: "ep.tally"}, func(l *Block) {
			l.Reduce("sumx", OpAdd, Idx("sx", V("i")))
			l.Reduce("sumy", OpAdd, Idx("sy", V("i")))
			l.Reduce("hits", OpAdd, Idx("hit", V("i")))
		})
		b.Decl("checksum", Add(V("sumx"), V("sumy"), V("hits")))
	})
	return p
}

// --- CG: conjugate gradient — 16 OMP loops, 9 identified ------------------
//
// The seven not identified are the dot-product/norm reductions of the CG
// iteration (rho, d, alpha/beta denominators, norms).
func CG(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("CG")
	n := cfg.n(500, 32)
	nz := 8
	p.MainFunc(func(b *Block) {
		b.Decl("NR", Ci(n))
		b.Decl("NZ", Ci(nz))
		b.Decl("NNZ", Mul(V("NR"), V("NZ")))
		b.DeclArr("aval", V("NNZ"))
		b.DeclArr("acol", V("NNZ"))
		b.DeclArr("x", V("NR"))
		b.DeclArr("z", V("NR"))
		b.DeclArr("pv", V("NR"))
		b.DeclArr("q", V("NR"))
		b.DeclArr("rv", V("NR"))
		b.Decl("rho", C(0))
		b.Decl("dd", C(0))
		b.Decl("rho0", C(0))
		b.Decl("nrm", C(0))
		// 1,2,3: matrix and vector setup (identified).
		b.For("i", Ci(0), V("NNZ"), Ci(1), LoopOpt{Name: "cg.init_aval", OMP: true}, func(l *Block) {
			l.Set("aval", V("i"), Add(Mod(Mul(V("i"), Ci(2654435)), Ci(1000)), Ci(1)))
		})
		b.For("i", Ci(0), V("NNZ"), Ci(1), LoopOpt{Name: "cg.init_acol", OMP: true}, func(l *Block) {
			l.Set("acol", V("i"), Mod(Mul(V("i"), Ci(7919)), V("NR")))
		})
		b.For("i", Ci(0), V("NR"), Ci(1), LoopOpt{Name: "cg.init_x", OMP: true}, func(l *Block) {
			l.Set("x", V("i"), C(1))
		})
		// 4: rho0 = x·x (reduction — NOT identified).
		dotLoop(b, "cg.rho0", "rho0", "x", "x", V("NR"))
		// 5,6: r = x copy, p = r copy (identified).
		copyLoop(b, "cg.copy_r", "rv", "x", V("NR"), 1, 0)
		copyLoop(b, "cg.copy_p", "pv", "rv", V("NR"), 1, 0)
		b.For("it", Ci(0), Ci(cfg.n(4, 1)), Ci(1), LoopOpt{Name: "cg.iterations"}, func(ib *Block) {
			// 7: q = A*p (identified; per-row accumulator is re-declared each
			// iteration, hence privatizable).
			ib.For("row", Ci(0), V("NR"), Ci(1), LoopOpt{Name: "cg.spmv", OMP: true}, func(l *Block) {
				l.Decl("sum", C(0))
				l.For("k", Ci(0), V("NZ"), Ci(1), LoopOpt{Name: "cg.spmv.k"}, func(in *Block) {
					in.Decl("j", Add(Mul(V("row"), V("NZ")), V("k")))
					in.Reduce("sum", OpAdd, Mul(Idx("aval", V("j")), Idx("pv", Idx("acol", V("j")))))
				})
				l.Set("q", V("row"), V("sum"))
			})
			// 8: d = p·q (NOT identified).
			dotLoop(ib, "cg.d", "dd", "pv", "q", V("NR"))
			ib.Decl("alpha", Div(V("rho0"), Add(V("dd"), C(1))))
			// 9: z += alpha*p (identified).
			axpyLoop(ib, "cg.z_axpy", "z", "pv", V("NR"), V("alpha"))
			// 10: r -= alpha*q (identified).
			axpyLoop(ib, "cg.r_axpy", "rv", "q", V("NR"), Neg(V("alpha")))
			// 11: rho = r·r (NOT identified).
			dotLoop(ib, "cg.rho", "rho", "rv", "rv", V("NR"))
			ib.Decl("beta", Div(V("rho"), Add(V("rho0"), C(1))))
			ib.Assign("rho0", V("rho"))
			// 12: p = r + beta*p (identified).
			ib.For("i", Ci(0), V("NR"), Ci(1), LoopOpt{Name: "cg.p_update", OMP: true}, func(l *Block) {
				l.Set("pv", V("i"), Add(Idx("rv", V("i")), Mul(V("beta"), Idx("pv", V("i")))))
			})
			// 13: norm ||z|| (NOT identified).
			dotLoop(ib, "cg.znorm", "nrm", "z", "z", V("NR"))
		})
		// 14: zeta = x·z (reduction — NOT identified; NPB CG computes the
		// shifted eigenvalue estimate this way).
		dotLoop(b, "cg.zeta", "rho", "x", "z", V("NR"))
		// 15: final residual norm (NOT identified).
		dotLoop(b, "cg.final_rnorm", "nrm", "rv", "rv", V("NR"))
		// 16: final x norm (NOT identified).
		dotLoop(b, "cg.final_xnorm", "dd", "x", "x", V("NR"))
		b.Decl("checksum", Add(V("nrm"), V("dd")))
	})
	return p
}

// --- MG: multigrid — 14 OMP loops, all identified -------------------------
func MG(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("MG")
	n := cfg.n(1024, 64)
	p.MainFunc(func(b *Block) {
		b.Decl("NF", Ci(n))
		b.Decl("NC", IDiv(V("NF"), Ci(2)))
		initArrayLCG(b, "v", V("NF"), 29, "mg.init_v_seed")
		b.DeclArr("uf", V("NF"))
		b.DeclArr("rf", V("NF"))
		b.DeclArr("uc", V("NC"))
		b.DeclArr("rc", V("NC"))
		// 1,2: zero the solution on both levels (identified).
		b.For("i", Ci(0), V("NF"), Ci(1), LoopOpt{Name: "mg.zero_uf", OMP: true}, func(l *Block) {
			l.Set("uf", V("i"), C(0))
		})
		b.For("i", Ci(0), V("NC"), Ci(1), LoopOpt{Name: "mg.zero_uc", OMP: true}, func(l *Block) {
			l.Set("uc", V("i"), C(0))
		})
		b.For("cycle", Ci(0), Ci(cfg.n(3, 1)), Ci(1), LoopOpt{Name: "mg.vcycles"}, func(cb *Block) {
			// Fine level: residual, smooth (2 loops).
			stencilLoop(cb, "mg.resid_f", "rf", "uf", V("NF"))
			cb.For("i", Ci(0), V("NF"), Ci(1), LoopOpt{Name: "mg.smooth_f", OMP: true}, func(l *Block) {
				l.Set("uf", V("i"), Add(Idx("uf", V("i")), Mul(C(0.6), Sub(Idx("v", V("i")), Idx("rf", V("i"))))))
			})
			// Restrict fine residual to coarse (1 loop).
			cb.For("i", Ci(0), V("NC"), Ci(1), LoopOpt{Name: "mg.restrict", OMP: true}, func(l *Block) {
				l.Set("rc", V("i"), Mul(C(0.5),
					Add(Idx("rf", Mul(V("i"), Ci(2))), Idx("rf", Add(Mul(V("i"), Ci(2)), Ci(1))))))
			})
			// Coarse level: residual, smooth (2 loops).
			stencilLoop(cb, "mg.resid_c", "uc", "rc", V("NC"))
			cb.For("i", Ci(0), V("NC"), Ci(1), LoopOpt{Name: "mg.smooth_c", OMP: true}, func(l *Block) {
				l.Set("uc", V("i"), Add(Idx("uc", V("i")), Mul(C(0.6), Idx("rc", V("i")))))
			})
			// Prolongate coarse correction (1 loop).
			cb.For("i", Ci(0), V("NC"), Ci(1), LoopOpt{Name: "mg.prolong", OMP: true}, func(l *Block) {
				l.Set("uf", Mul(V("i"), Ci(2)), Add(Idx("uf", Mul(V("i"), Ci(2))), Idx("uc", V("i"))))
			})
			// Post-smooth + norm prep (2 loops).
			cb.For("i", Ci(0), V("NF"), Ci(1), LoopOpt{Name: "mg.post_smooth", OMP: true}, func(l *Block) {
				l.Set("uf", V("i"), Mul(Idx("uf", V("i")), C(0.99)))
			})
			stencilLoop(cb, "mg.norm_prep", "rf", "uf", V("NF"))
		})
		// Exchange/copy of the coarse boundary (identified).
		b.For("i", Ci(0), V("NC"), Ci(1), LoopOpt{Name: "mg.comm_copy", OMP: true}, func(l *Block) {
			l.Set("rc", V("i"), Idx("uc", V("i")))
		})
		// 12,13,14: final interpolation, scaling, error field (identified).
		cb := b
		cb.For("i", Ci(0), V("NC"), Ci(1), LoopOpt{Name: "mg.final_interp", OMP: true}, func(l *Block) {
			l.Set("uf", Add(Mul(V("i"), Ci(2)), Ci(1)),
				Mul(C(0.5), Add(Idx("uc", V("i")), Idx("uf", Mul(V("i"), Ci(2))))))
		})
		cb.For("i", Ci(0), V("NF"), Ci(1), LoopOpt{Name: "mg.final_scale", OMP: true}, func(l *Block) {
			l.Set("rf", V("i"), Mul(Idx("uf", V("i")), C(2)))
		})
		cb.For("i", Ci(0), V("NF"), Ci(1), LoopOpt{Name: "mg.error_field", OMP: true}, func(l *Block) {
			l.Set("v", V("i"), Sub(Idx("rf", V("i")), Idx("uf", V("i"))))
		})
		b.Decl("checksum", C(0))
		b.For("i", Ci(0), V("NF"), Ci(1), LoopOpt{Name: "mg.checksum"}, func(l *Block) {
			l.Reduce("checksum", OpAdd, Idx("v", V("i")))
		})
	})
	return p
}

// --- FT: 3-stage FFT — 8 OMP loops, 7 identified ---------------------------
//
// The one not identified is the checksum reduction the OpenMP version
// parallelizes with a reduction clause.
func FT(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("FT")
	n := cfg.n(1024, 64)
	p.MainFunc(func(b *Block) {
		b.Decl("NP", Ci(n))
		b.DeclArr("re", V("NP"))
		b.DeclArr("im", V("NP"))
		b.DeclArr("sc", V("NP"))
		// 1,2: initialize the complex field (identified).
		b.For("i", Ci(0), V("NP"), Ci(1), LoopOpt{Name: "ft.init_re", OMP: true}, func(l *Block) {
			l.Set("re", V("i"), CallE("sin", Mul(V("i"), C(0.01))))
		})
		b.For("i", Ci(0), V("NP"), Ci(1), LoopOpt{Name: "ft.init_im", OMP: true}, func(l *Block) {
			l.Set("im", V("i"), CallE("cos", Mul(V("i"), C(0.01))))
		})
		// 3: evolve — apply the exponential factors (identified).
		b.For("i", Ci(0), V("NP"), Ci(1), LoopOpt{Name: "ft.evolve", OMP: true}, func(l *Block) {
			l.Set("sc", V("i"), CallE("exp", Neg(Div(V("i"), V("NP")))))
		})
		// 4,5,6: three butterfly stages. Each index touches the disjoint
		// pair {i, i+half}, so every stage is loop-independent (identified).
		for stage := 1; stage <= 3; stage++ {
			half := Ci(1 << stage) // 2, 4, 8
			b.For("i", Ci(0), Sub(V("NP"), half), Mul(half, Ci(2)),
				LoopOpt{Name: fmt.Sprintf("ft.butterfly%d", stage), OMP: true}, func(l *Block) {
					l.Decl("tr", Idx("re", V("i")))
					l.Decl("ti", Idx("im", V("i")))
					l.Set("re", V("i"), Add(V("tr"), Idx("re", Add(V("i"), half))))
					l.Set("im", V("i"), Add(V("ti"), Idx("im", Add(V("i"), half))))
					l.Set("re", Add(V("i"), half), Sub(V("tr"), Idx("re", Add(V("i"), half))))
					l.Set("im", Add(V("i"), half), Sub(V("ti"), Idx("im", Add(V("i"), half))))
				})
		}
		// 7: scale by the evolve factors (identified).
		b.For("i", Ci(0), V("NP"), Ci(1), LoopOpt{Name: "ft.scale", OMP: true}, func(l *Block) {
			l.Set("re", V("i"), Mul(Idx("re", V("i")), Idx("sc", V("i"))))
		})
		// 8: checksum (reduction — NOT identified).
		b.Decl("checksum", C(0))
		b.For("i", Ci(0), V("NP"), Ci(1), LoopOpt{Name: "ft.checksum", OMP: true}, func(l *Block) {
			l.Reduce("checksum", OpAdd, Add(Idx("re", V("i")), Idx("im", V("i"))))
		})
	})
	return p
}
