package workloads

import (
	. "ddprof/internal/minilang"
)

// threadSpan declares lo/hi with this thread's slice of [0,n).
func threadSpan(s *Block, n Expr, threads int) {
	s.Decl("lo", IDiv(Mul(Tid(), n), Ci(threads)))
	s.Decl("hi", IDiv(Mul(Add(Tid(), Ci(1)), n), Ci(threads)))
}

// --- c-ray: sphere ray tracer ------------------------------------------

// crayScene declares the sphere arrays and the output image.
func crayScene(b *Block, w, h, spheres int) {
	b.Decl("W", Ci(w))
	b.Decl("H", Ci(h))
	b.Decl("S", Ci(spheres))
	b.DeclArr("img", Mul(V("W"), V("H")))
	initArrayLCG(b, "sx", V("S"), 11, "cray.init_sx")
	initArrayLCG(b, "sy", V("S"), 22, "cray.init_sy")
	initArrayLCG(b, "sz", V("S"), 33, "cray.init_sz")
	initArrayLCG(b, "sr", V("S"), 44, "cray.init_sr")
}

// crayTracePixel shades pixel (x,y) into img. The sphere loop keeps a
// running nearest-hit, which is an in-iteration dependence only.
func crayTracePixel(l *Block) {
	l.Decl("dx", Sub(Div(V("x"), V("W")), C(0.5)))
	l.Decl("dy", Sub(Div(V("y"), V("H")), C(0.5)))
	l.Decl("best", C(1e18))
	l.Decl("shade", C(0))
	l.For("s", Ci(0), V("S"), Ci(1), LoopOpt{Name: "cray.spheres"}, func(sp *Block) {
		sp.Decl("ox", Sub(Mul(V("dx"), C(100)), Mod(Idx("sx", V("s")), Ci(100))))
		sp.Decl("oy", Sub(Mul(V("dy"), C(100)), Mod(Idx("sy", V("s")), Ci(100))))
		sp.Decl("oz", Sub(C(50), Mod(Idx("sz", V("s")), Ci(50))))
		sp.Decl("r", Add(Mod(Idx("sr", V("s")), Ci(20)), Ci(5)))
		sp.Decl("d2", Add(Mul(V("ox"), V("ox")), Mul(V("oy"), V("oy")), Mul(V("oz"), V("oz"))))
		sp.Decl("disc", Sub(Mul(V("r"), V("r")), V("d2")))
		sp.If(And(Gt(V("disc"), C(0)), Lt(V("d2"), V("best"))), func(hit *Block) {
			hit.Assign("best", V("d2"))
			hit.Assign("shade", Div(CallE("sqrt", V("disc")), V("r")))
		}, nil)
	})
	l.Set("img", Add(Mul(V("y"), V("W")), V("x")), V("shade"))
}

// CRay builds the sequential c-ray ray tracer.
func CRay(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("c-ray")
	w, h := cfg.n(64, 8), cfg.n(48, 8)
	p.MainFunc(func(b *Block) {
		crayScene(b, w, h, cfg.n(8, 2))
		b.For("y", Ci(0), V("H"), Ci(1), LoopOpt{Name: "cray.rows", OMP: true}, func(r *Block) {
			r.For("x", Ci(0), V("W"), Ci(1), LoopOpt{Name: "cray.cols", OMP: true}, crayTracePixel)
		})
		b.Decl("checksum", C(0))
		b.For("i", Ci(0), Mul(V("W"), V("H")), Ci(1), LoopOpt{Name: "cray.checksum"}, func(l *Block) {
			l.Reduce("checksum", OpAdd, Idx("img", V("i")))
		})
	})
	return p
}

// CRayParallel is the pthread c-ray: rows are partitioned over threads; the
// checksum is combined under a mutex.
func CRayParallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("c-ray-pthread")
	w, h := cfg.n(64, 8), cfg.n(48, 8)
	p.MainFunc(func(b *Block) {
		crayScene(b, w, h, cfg.n(8, 2))
		b.Decl("checksum", C(0))
		b.Spawn(cfg.Threads, func(s *Block) {
			threadSpan(s, V("H"), cfg.Threads)
			s.Decl("local", C(0))
			s.For("y", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "cray.rows.par"}, func(r *Block) {
				r.For("x", Ci(0), V("W"), Ci(1), LoopOpt{Name: "cray.cols.par"}, func(l *Block) {
					crayTracePixel(l)
					l.Reduce("local", OpAdd, Idx("img", Add(Mul(V("y"), V("W")), V("x"))))
				})
			})
			s.Lock("sum", func(cr *Block) {
				cr.Reduce("checksum", OpAdd, V("local"))
			})
		})
	})
	return p
}

// --- kmeans -------------------------------------------------------------

func kmeansData(b *Block, n, k int) {
	b.Decl("N", Ci(n))
	b.Decl("K", Ci(k))
	initArrayLCG(b, "px", V("N"), 7, "kmeans.init_px")
	initArrayLCG(b, "py", V("N"), 13, "kmeans.init_py")
	b.DeclArr("cx", V("K"))
	b.DeclArr("cy", V("K"))
	b.DeclArr("assign", V("N"))
	b.DeclArr("sumx", V("K"))
	b.DeclArr("sumy", V("K"))
	b.DeclArr("cnt", V("K"))
	copyLoop(b, "kmeans.seed_cx", "cx", "px", V("K"), 1, 0)
	copyLoop(b, "kmeans.seed_cy", "cy", "py", V("K"), 1, 0)
}

// kmeansAssign assigns point i to its nearest centroid.
func kmeansAssign(l *Block) {
	l.Decl("bestd", C(1e18))
	l.Decl("bestc", Ci(0))
	l.For("c", Ci(0), V("K"), Ci(1), LoopOpt{Name: "kmeans.centroids"}, func(cb *Block) {
		cb.Decl("ddx", Sub(Idx("px", V("i")), Idx("cx", V("c"))))
		cb.Decl("ddy", Sub(Idx("py", V("i")), Idx("cy", V("c"))))
		cb.Decl("d", Add(Mul(V("ddx"), V("ddx")), Mul(V("ddy"), V("ddy"))))
		cb.If(Lt(V("d"), V("bestd")), func(better *Block) {
			better.Assign("bestd", V("d"))
			better.Assign("bestc", V("c"))
		}, nil)
	})
	l.Set("assign", V("i"), V("bestc"))
}

// KMeans builds sequential k-means (2-D points, Lloyd iterations).
func KMeans(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("kmeans")
	p.MainFunc(func(b *Block) {
		kmeansData(b, cfg.n(1500, 32), cfg.n(8, 2))
		b.For("round", Ci(0), Ci(4), Ci(1), LoopOpt{Name: "kmeans.rounds"}, func(rb *Block) {
			rb.For("c", Ci(0), V("K"), Ci(1), LoopOpt{Name: "kmeans.clear", OMP: true}, func(l *Block) {
				l.Set("sumx", V("c"), C(0))
				l.Set("sumy", V("c"), C(0))
				l.Set("cnt", V("c"), C(0))
			})
			rb.For("i", Ci(0), V("N"), Ci(1), LoopOpt{Name: "kmeans.assign", OMP: true}, kmeansAssign)
			// Scatter-add into per-cluster sums: a histogram-style
			// reduction, loop-carried through the sum arrays.
			rb.For("i", Ci(0), V("N"), Ci(1), LoopOpt{Name: "kmeans.accumulate", OMP: true}, func(l *Block) {
				l.Decl("c", Idx("assign", V("i")))
				l.SetReduce("sumx", V("c"), OpAdd, Idx("px", V("i")))
				l.SetReduce("sumy", V("c"), OpAdd, Idx("py", V("i")))
				l.SetReduce("cnt", V("c"), OpAdd, Ci(1))
			})
			rb.For("c", Ci(0), V("K"), Ci(1), LoopOpt{Name: "kmeans.update", OMP: true}, func(l *Block) {
				l.If(Gt(Idx("cnt", V("c")), C(0)), func(nz *Block) {
					nz.Set("cx", V("c"), Div(Idx("sumx", V("c")), Idx("cnt", V("c"))))
					nz.Set("cy", V("c"), Div(Idx("sumy", V("c")), Idx("cnt", V("c"))))
				}, nil)
			})
		})
		b.Decl("checksum", C(0))
		b.For("c", Ci(0), V("K"), Ci(1), LoopOpt{Name: "kmeans.checksum"}, func(l *Block) {
			l.Reduce("checksum", OpAdd, Add(Idx("cx", V("c")), Idx("cy", V("c"))))
		})
	})
	return p
}

// KMeansParallel partitions points across threads; the shared per-cluster
// sums are updated under a mutex — the contention the paper blames for
// kMeans's poor profiling scalability.
func KMeansParallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("kmeans-pthread")
	p.MainFunc(func(b *Block) {
		kmeansData(b, cfg.n(1500, 32), cfg.n(8, 2))
		b.For("round", Ci(0), Ci(4), Ci(1), LoopOpt{Name: "kmeans.rounds.par"}, func(rb *Block) {
			rb.For("c", Ci(0), V("K"), Ci(1), LoopOpt{Name: "kmeans.clear.par"}, func(l *Block) {
				l.Set("sumx", V("c"), C(0))
				l.Set("sumy", V("c"), C(0))
				l.Set("cnt", V("c"), C(0))
			})
			rb.Spawn(cfg.Threads, func(s *Block) {
				threadSpan(s, V("N"), cfg.Threads)
				s.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "kmeans.assign.par"}, kmeansAssign)
				s.Barrier()
				s.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "kmeans.accumulate.par"}, func(l *Block) {
					l.Decl("c", Idx("assign", V("i")))
					l.Lock("sums", func(cr *Block) {
						cr.SetReduce("sumx", V("c"), OpAdd, Idx("px", V("i")))
						cr.SetReduce("sumy", V("c"), OpAdd, Idx("py", V("i")))
						cr.SetReduce("cnt", V("c"), OpAdd, Ci(1))
					})
				})
			})
			rb.For("c", Ci(0), V("K"), Ci(1), LoopOpt{Name: "kmeans.update.par"}, func(l *Block) {
				l.If(Gt(Idx("cnt", V("c")), C(0)), func(nz *Block) {
					nz.Set("cx", V("c"), Div(Idx("sumx", V("c")), Idx("cnt", V("c"))))
					nz.Set("cy", V("c"), Div(Idx("sumy", V("c")), Idx("cnt", V("c"))))
				}, nil)
			})
		})
		b.Decl("checksum", C(0))
		b.For("c", Ci(0), V("K"), Ci(1), LoopOpt{Name: "kmeans.checksum.par"}, func(l *Block) {
			l.Reduce("checksum", OpAdd, Add(Idx("cx", V("c")), Idx("cy", V("c"))))
		})
	})
	return p
}

// --- md5: block digest chain -------------------------------------------

// md5Funcs defines digestBlocks(msg, from, to, state) chaining an MD5-style
// compression over blocks [from,to). state is a 4-word array.
func md5Funcs(p *Program) {
	const m32 = 4294967296
	p.Func("digestBlocks", []string{"msg", "from", "to", "state"}, func(b *Block) {
		b.For("blk", V("from"), V("to"), Ci(1), LoopOpt{Name: "md5.blocks"}, func(bb *Block) {
			bb.Decl("a", Idx("state", Ci(0)))
			bb.Decl("bv", Idx("state", Ci(1)))
			bb.Decl("cv", Idx("state", Ci(2)))
			bb.Decl("dv", Idx("state", Ci(3)))
			// 64 rounds chained on (a, bv, cv, dv): loop-carried by design.
			bb.For("r", Ci(0), Ci(64), Ci(1), LoopOpt{Name: "md5.rounds"}, func(rb *Block) {
				rb.Decl("f", BOr(BAnd(V("bv"), V("cv")), BAnd(Xor(V("bv"), Ci(0xFFFFFFFF)), V("dv"))))
				rb.Decl("mi", Idx("msg", Add(Mul(V("blk"), Ci(16)), Mod(V("r"), Ci(16)))))
				rb.Decl("t", Mod(Add(V("a"), V("f"), V("mi"), Mul(V("r"), Ci(0x5A82))), C(m32)))
				rb.Decl("s", Add(Mod(V("r"), Ci(4)), Ci(5)))
				rb.Decl("rot", Mod(BOr(Shl(V("t"), V("s")), Shr(V("t"), Sub(Ci(32), V("s")))), C(m32)))
				rb.Assign("a", V("dv"))
				rb.Assign("dv", V("cv"))
				rb.Assign("cv", V("bv"))
				rb.Assign("bv", Mod(Add(V("bv"), V("rot")), C(m32)))
			})
			bb.SetReduce("state", Ci(0), OpAdd, V("a"))
			bb.SetReduce("state", Ci(1), OpAdd, V("bv"))
			bb.SetReduce("state", Ci(2), OpAdd, V("cv"))
			bb.SetReduce("state", Ci(3), OpAdd, V("dv"))
		})
	})
}

// MD5 digests one long message sequentially; the block chain is the
// textbook non-parallelizable loop.
func MD5(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("md5")
	md5Funcs(p)
	blocks := cfg.n(160, 4)
	p.MainFunc(func(b *Block) {
		b.Decl("B", Ci(blocks))
		initArrayLCG(b, "msg", Mul(V("B"), Ci(16)), 99, "md5.init_msg")
		b.DeclArr("state", Ci(4))
		b.For("i", Ci(0), Ci(4), Ci(1), LoopOpt{Name: "md5.init_state", OMP: true}, func(l *Block) {
			l.Set("state", V("i"), Add(Mul(V("i"), Ci(0x1111)), Ci(0x0123)))
		})
		b.Call("digestBlocks", V("msg"), Ci(0), V("B"), V("state"))
		b.Decl("checksum", Add(Idx("state", Ci(0)), Idx("state", Ci(1)), Idx("state", Ci(2)), Idx("state", Ci(3))))
	})
	return p
}

// MD5Parallel digests independent buffers, one chain per thread (the
// Starbench md5 processes a stream of independent buffers).
func MD5Parallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("md5-pthread")
	md5Funcs(p)
	blocks := cfg.n(160, 4)
	p.MainFunc(func(b *Block) {
		b.Decl("B", Ci(blocks))
		b.Decl("T", Ci(cfg.Threads))
		initArrayLCG(b, "msg", Mul(V("B"), Ci(16)), 99, "md5p.init_msg")
		b.DeclArr("states", Mul(V("T"), Ci(4)))
		b.Decl("checksum", C(0))
		b.Spawn(cfg.Threads, func(s *Block) {
			threadSpan(s, V("B"), cfg.Threads)
			s.DeclArr("state", Ci(4))
			s.For("i", Ci(0), Ci(4), Ci(1), LoopOpt{Name: "md5p.init_state"}, func(l *Block) {
				l.Set("state", V("i"), Add(Mul(V("i"), Ci(0x1111)), Ci(0x0123)))
			})
			s.Call("digestBlocks", V("msg"), V("lo"), V("hi"), V("state"))
			s.For("i", Ci(0), Ci(4), Ci(1), LoopOpt{Name: "md5p.publish"}, func(l *Block) {
				l.Set("states", Add(Mul(Tid(), Ci(4)), V("i")), Idx("state", V("i")))
			})
			s.Lock("sum", func(cr *Block) {
				cr.Reduce("checksum", OpAdd, Add(Idx("state", Ci(0)), Idx("state", Ci(3))))
			})
		})
	})
	return p
}

// --- rgbyuv: colour conversion -----------------------------------------

func rgbyuvData(b *Block, pixels int) {
	b.Decl("P", Ci(pixels))
	initArrayLCG(b, "r", V("P"), 3, "rgbyuv.init_r")
	initArrayLCG(b, "g", V("P"), 5, "rgbyuv.init_g")
	initArrayLCG(b, "bl", V("P"), 9, "rgbyuv.init_b")
	b.DeclArr("yy", V("P"))
	b.DeclArr("uu", V("P"))
	b.DeclArr("vv", V("P"))
}

// rgbyuvPixel converts pixel i.
func rgbyuvPixel(l *Block) {
	l.Decl("rv", Mod(Idx("r", V("i")), Ci(256)))
	l.Decl("gv", Mod(Idx("g", V("i")), Ci(256)))
	l.Decl("bv", Mod(Idx("bl", V("i")), Ci(256)))
	l.Set("yy", V("i"), Add(Mul(C(0.299), V("rv")), Mul(C(0.587), V("gv")), Mul(C(0.114), V("bv"))))
	l.Set("uu", V("i"), Add(Mul(C(-0.147), V("rv")), Mul(C(-0.289), V("gv")), Mul(C(0.436), V("bv"))))
	l.Set("vv", V("i"), Add(Mul(C(0.615), V("rv")), Mul(C(-0.515), V("gv")), Mul(C(-0.1), V("bv"))))
}

// RGBYUV converts an RGB image to YUV — one clean per-pixel loop over a
// large address footprint (the paper's highest-FPR class).
func RGBYUV(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("rgbyuv")
	p.MainFunc(func(b *Block) {
		rgbyuvData(b, cfg.n(12000, 64))
		b.For("i", Ci(0), V("P"), Ci(1), LoopOpt{Name: "rgbyuv.convert", OMP: true}, rgbyuvPixel)
		b.Decl("checksum", Add(Idx("yy", Ci(0)), Idx("uu", IDiv(V("P"), Ci(2))), Idx("vv", Sub(V("P"), Ci(1)))))
	})
	return p
}

// RGBYUVParallel partitions pixels across threads.
func RGBYUVParallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("rgbyuv-pthread")
	p.MainFunc(func(b *Block) {
		rgbyuvData(b, cfg.n(12000, 64))
		b.Spawn(cfg.Threads, func(s *Block) {
			threadSpan(s, V("P"), cfg.Threads)
			s.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "rgbyuv.convert.par"}, rgbyuvPixel)
		})
		b.Decl("checksum", Add(Idx("yy", Ci(0)), Idx("uu", IDiv(V("P"), Ci(2))), Idx("vv", Sub(V("P"), Ci(1)))))
	})
	return p
}

// --- rotate: image rotation ---------------------------------------------

func rotateData(b *Block, n int) {
	b.Decl("Nr", Ci(n))
	initArrayLCG(b, "src", Mul(V("Nr"), V("Nr")), 17, "rotate.init")
	b.DeclArr("dst", Mul(V("Nr"), V("Nr")))
}

func rotateRow(r *Block) {
	r.For("x", Ci(0), V("Nr"), Ci(1), LoopOpt{Name: "rotate.cols", OMP: true}, func(l *Block) {
		// dst[x][N-1-y] = src[y][x]: a 90° rotation with strided reads.
		l.Set("dst", Add(Mul(V("x"), V("Nr")), Sub(Sub(V("Nr"), Ci(1)), V("y"))),
			Idx("src", Add(Mul(V("y"), V("Nr")), V("x"))))
	})
}

// Rotate rotates a square image by 90°.
func Rotate(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("rotate")
	p.MainFunc(func(b *Block) {
		rotateData(b, cfg.n(100, 8))
		b.For("y", Ci(0), V("Nr"), Ci(1), LoopOpt{Name: "rotate.rows", OMP: true}, rotateRow)
		b.Decl("checksum", Add(Idx("dst", Ci(0)), Idx("dst", Sub(Mul(V("Nr"), V("Nr")), Ci(1)))))
	})
	return p
}

// RotateParallel partitions rows across threads.
func RotateParallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("rotate-pthread")
	p.MainFunc(func(b *Block) {
		rotateData(b, cfg.n(100, 8))
		b.Spawn(cfg.Threads, func(s *Block) {
			threadSpan(s, V("Nr"), cfg.Threads)
			s.For("y", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "rotate.rows.par"}, rotateRow)
		})
		b.Decl("checksum", Add(Idx("dst", Ci(0)), Idx("dst", Sub(Mul(V("Nr"), V("Nr")), Ci(1)))))
	})
	return p
}

// --- ray-rot and rot-cc: composed kernels -------------------------------

// RayRot traces a scene, then rotates the rendered image.
func RayRot(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("ray-rot")
	w := cfg.n(48, 8)
	p.MainFunc(func(b *Block) {
		crayScene(b, w, w, cfg.n(6, 2))
		b.For("y", Ci(0), V("H"), Ci(1), LoopOpt{Name: "rayrot.rows", OMP: true}, func(r *Block) {
			r.For("x", Ci(0), V("W"), Ci(1), LoopOpt{Name: "rayrot.cols", OMP: true}, crayTracePixel)
		})
		b.DeclArr("rot", Mul(V("W"), V("H")))
		b.For("y", Ci(0), V("H"), Ci(1), LoopOpt{Name: "rayrot.rot_rows", OMP: true}, func(r *Block) {
			r.For("x", Ci(0), V("W"), Ci(1), LoopOpt{Name: "rayrot.rot_cols", OMP: true}, func(l *Block) {
				l.Set("rot", Add(Mul(V("x"), V("H")), Sub(Sub(V("H"), Ci(1)), V("y"))),
					Idx("img", Add(Mul(V("y"), V("W")), V("x"))))
			})
		})
		b.Decl("checksum", Add(Idx("rot", Ci(0)), Idx("rot", Sub(Mul(V("W"), V("H")), Ci(1)))))
	})
	return p
}

// RayRotParallel runs both phases with partitioned rows and a barrier
// between tracing and rotation.
func RayRotParallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("ray-rot-pthread")
	w := cfg.n(48, 8)
	p.MainFunc(func(b *Block) {
		crayScene(b, w, w, cfg.n(6, 2))
		b.DeclArr("rot", Mul(V("W"), V("H")))
		b.Spawn(cfg.Threads, func(s *Block) {
			threadSpan(s, V("H"), cfg.Threads)
			s.For("y", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "rayrot.rows.par"}, func(r *Block) {
				r.For("x", Ci(0), V("W"), Ci(1), LoopOpt{Name: "rayrot.cols.par"}, crayTracePixel)
			})
			s.Barrier()
			s.For("y", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "rayrot.rot_rows.par"}, func(r *Block) {
				r.For("x", Ci(0), V("W"), Ci(1), LoopOpt{Name: "rayrot.rot_cols.par"}, func(l *Block) {
					l.Set("rot", Add(Mul(V("x"), V("H")), Sub(Sub(V("H"), Ci(1)), V("y"))),
						Idx("img", Add(Mul(V("y"), V("W")), V("x"))))
				})
			})
		})
		b.Decl("checksum", Add(Idx("rot", Ci(0)), Idx("rot", Sub(Mul(V("W"), V("H")), Ci(1)))))
	})
	return p
}

// RotCC rotates an image, then converts the rotated plane through a
// colour-matrix pass (rotation + colour conversion composition).
func RotCC(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("rot-cc")
	p.MainFunc(func(b *Block) {
		rotateData(b, cfg.n(90, 8))
		b.For("y", Ci(0), V("Nr"), Ci(1), LoopOpt{Name: "rotcc.rows", OMP: true}, rotateRow)
		b.DeclArr("cc", Mul(V("Nr"), V("Nr")))
		b.For("i", Ci(0), Mul(V("Nr"), V("Nr")), Ci(1), LoopOpt{Name: "rotcc.convert", OMP: true}, func(l *Block) {
			l.Decl("v", Mod(Idx("dst", V("i")), Ci(256)))
			l.Set("cc", V("i"), Add(Mul(C(0.299), V("v")), C(16)))
		})
		b.Decl("checksum", Add(Idx("cc", Ci(0)), Idx("cc", Sub(Mul(V("Nr"), V("Nr")), Ci(1)))))
	})
	return p
}

// RotCCParallel partitions both passes with a barrier between them.
func RotCCParallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("rot-cc-pthread")
	p.MainFunc(func(b *Block) {
		rotateData(b, cfg.n(90, 8))
		b.DeclArr("cc", Mul(V("Nr"), V("Nr")))
		b.Spawn(cfg.Threads, func(s *Block) {
			threadSpan(s, V("Nr"), cfg.Threads)
			s.For("y", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "rotcc.rows.par"}, rotateRow)
			s.Barrier()
			s.Decl("plo", IDiv(Mul(Tid(), Mul(V("Nr"), V("Nr"))), Ci(cfg.Threads)))
			s.Decl("phi", IDiv(Mul(Add(Tid(), Ci(1)), Mul(V("Nr"), V("Nr"))), Ci(cfg.Threads)))
			s.For("i", V("plo"), V("phi"), Ci(1), LoopOpt{Name: "rotcc.convert.par"}, func(l *Block) {
				l.Decl("v", Mod(Idx("dst", V("i")), Ci(256)))
				l.Set("cc", V("i"), Add(Mul(C(0.299), V("v")), C(16)))
			})
		})
		b.Decl("checksum", Add(Idx("cc", Ci(0)), Idx("cc", Sub(Mul(V("Nr"), V("Nr")), Ci(1)))))
	})
	return p
}

// --- streamcluster ------------------------------------------------------

func streamclusterData(b *Block, n, k int) {
	b.Decl("N", Ci(n))
	b.Decl("K", Ci(k))
	initArrayLCG(b, "ptx", V("N"), 21, "sc.init_ptx")
	initArrayLCG(b, "pty", V("N"), 42, "sc.init_pty")
	b.DeclArr("mx", V("K"))
	b.DeclArr("my", V("K"))
	copyLoop(b, "sc.seed_mx", "mx", "ptx", V("K"), 1, 0)
	copyLoop(b, "sc.seed_my", "my", "pty", V("K"), 1, 0)
}

// scGainPass computes, for every point, the cheapest median and accumulates
// the total cost — a tiny, hot working set (the paper's lowest-address
// benchmark class).
func scGainPass(rb *Block) {
	rb.For("i", Ci(0), V("N"), Ci(1), LoopOpt{Name: "sc.gain", OMP: true}, func(l *Block) {
		l.Decl("best", C(1e18))
		l.For("c", Ci(0), V("K"), Ci(1), LoopOpt{Name: "sc.medians"}, func(cb *Block) {
			cb.Decl("ddx", Sub(Idx("ptx", V("i")), Idx("mx", V("c"))))
			cb.Decl("ddy", Sub(Idx("pty", V("i")), Idx("my", V("c"))))
			cb.Decl("d", Add(Mul(V("ddx"), V("ddx")), Mul(V("ddy"), V("ddy"))))
			cb.If(Lt(V("d"), V("best")), func(better *Block) {
				better.Assign("best", V("d"))
			}, nil)
		})
		l.Reduce("cost", OpAdd, V("best"))
	})
}

// StreamCluster runs repeated clustering gain passes over a small point set.
func StreamCluster(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("streamcluster")
	p.MainFunc(func(b *Block) {
		streamclusterData(b, cfg.n(220, 16), cfg.n(8, 2))
		b.Decl("cost", C(0))
		b.For("round", Ci(0), Ci(cfg.n(24, 2)), Ci(1), LoopOpt{Name: "sc.rounds"}, func(rb *Block) {
			rb.Assign("cost", C(0))
			scGainPass(rb)
			// Shift one median towards the centroid of its points — keeps
			// rounds genuinely dependent on each other.
			rb.Decl("m", Mod(V("round"), V("K")))
			rb.Set("mx", V("m"), Add(Idx("mx", V("m")), C(1)))
		})
		b.Decl("checksum", V("cost"))
	})
	return p
}

// StreamClusterParallel splits the gain pass across threads with a locked
// global cost.
func StreamClusterParallel(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("streamcluster-pthread")
	p.MainFunc(func(b *Block) {
		streamclusterData(b, cfg.n(220, 16), cfg.n(8, 2))
		b.Decl("cost", C(0))
		b.For("round", Ci(0), Ci(cfg.n(24, 2)), Ci(1), LoopOpt{Name: "sc.rounds.par"}, func(rb *Block) {
			rb.Assign("cost", C(0))
			rb.Spawn(cfg.Threads, func(s *Block) {
				threadSpan(s, V("N"), cfg.Threads)
				s.Decl("local", C(0))
				s.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "sc.gain.par"}, func(l *Block) {
					l.Decl("best", C(1e18))
					l.For("c", Ci(0), V("K"), Ci(1), LoopOpt{Name: "sc.medians.par"}, func(cb *Block) {
						cb.Decl("ddx", Sub(Idx("ptx", V("i")), Idx("mx", V("c"))))
						cb.Decl("ddy", Sub(Idx("pty", V("i")), Idx("my", V("c"))))
						cb.Decl("d", Add(Mul(V("ddx"), V("ddx")), Mul(V("ddy"), V("ddy"))))
						cb.If(Lt(V("d"), V("best")), func(better *Block) {
							better.Assign("best", V("d"))
						}, nil)
					})
					l.Reduce("local", OpAdd, V("best"))
				})
				s.Lock("cost", func(cr *Block) {
					cr.Reduce("cost", OpAdd, V("local"))
				})
			})
			rb.Decl("m", Mod(V("round"), V("K")))
			rb.Set("mx", V("m"), Add(Idx("mx", V("m")), C(1)))
		})
		b.Decl("checksum", V("cost"))
	})
	return p
}
