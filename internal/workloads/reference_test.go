package workloads

import (
	"math"
	"testing"

	"ddprof/internal/interp"
)

// lcgRef mirrors the minilang LCG so references can regenerate workload
// input data.
func lcgRef(x float64) float64 {
	return math.Mod(1597*x+51749, 244944)
}

// initRef reproduces initArrayLCG's fill.
func initRef(n, seed int) []float64 {
	out := make([]float64, n)
	s := float64(seed)
	for i := range out {
		s = lcgRef(s)
		out[i] = s
	}
	return out
}

// TestRotateReference computes the rotate checksum independently in Go and
// compares against the minilang execution — end-to-end numeric validation
// of the interpreter on a full workload.
func TestRotateReference(t *testing.T) {
	cfg := Config{Scale: 1}.norm()
	n := cfg.n(100, 8)
	src := initRef(n*n, 17)
	dst := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dst[x*n+(n-1-y)] = src[y*n+x]
		}
	}
	want := dst[0] + dst[n*n-1]

	info, err := interp.Run(Rotate(Config{}), nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Vars["checksum"]; got != want {
		t.Errorf("rotate checksum = %v, reference %v", got, want)
	}
}

// TestRGBYUVReference validates one colour conversion against the matrix
// arithmetic done in Go.
func TestRGBYUVReference(t *testing.T) {
	cfg := Config{Scale: 1}.norm()
	pix := cfg.n(12000, 64)
	r := initRef(pix, 3)
	g := initRef(pix, 5)
	bl := initRef(pix, 9)
	yy := make([]float64, pix)
	uu := make([]float64, pix)
	vv := make([]float64, pix)
	for i := 0; i < pix; i++ {
		rv := math.Mod(r[i], 256)
		gv := math.Mod(g[i], 256)
		bv := math.Mod(bl[i], 256)
		yy[i] = 0.299*rv + 0.587*gv + 0.114*bv
		uu[i] = -0.147*rv + -0.289*gv + 0.436*bv
		vv[i] = 0.615*rv + -0.515*gv + -0.1*bv
	}
	want := yy[0] + uu[pix/2] + vv[pix-1]

	info, err := interp.Run(RGBYUV(Config{}), nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Vars["checksum"]; math.Abs(got-want) > 1e-9 {
		t.Errorf("rgbyuv checksum = %v, reference %v", got, want)
	}
}

// TestISSortsReference: IS's output permutation must actually be sorted —
// the bucket sort computes a real ranking, not noise.
func TestISSortsReference(t *testing.T) {
	// The "ok" flags of the final verification loop assert out[i-1] <=
	// out[i]; the in-language verify loop writes them, and the checksum of
	// out must equal the checksum of the keys (a permutation preserves
	// sums).
	cfg := Config{Scale: 1}.norm()
	n := cfg.n(4000, 64)
	buckets := cfg.n(256, 16)
	keySum := 0.0
	for i := 0; i < n; i++ {
		keySum += math.Mod(float64(i+17)*9973, float64(buckets))
	}
	info, err := interp.Run(IS(Config{}), nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Vars["checksum"]; got != keySum {
		t.Errorf("IS output checksum = %v, key sum %v — not a permutation", got, keySum)
	}
}

// TestEPTallyReference recomputes EP's sample tally in Go.
func TestEPTallyReference(t *testing.T) {
	cfg := Config{Scale: 1}.norm()
	n := cfg.n(8000, 128)
	var sumx, sumy, hits float64
	for i := 0; i < n; i++ {
		r1 := lcgRef(float64(2*i + 1))
		r2 := lcgRef(r1)
		x := r1/122472 - 1
		y := r2/122472 - 1
		tv := x*x + y*y
		if tv <= 1 && tv > 0 {
			f := math.Sqrt(-2 * math.Log(tv) / tv)
			sumx += x * f
			sumy += y * f
			hits++
		}
	}
	want := sumx + sumy + hits
	info, err := interp.Run(EP(Config{}), nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Vars["checksum"]; math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("EP checksum = %v, reference %v", got, want)
	}
}

// TestMD5ChainReference recomputes the md5-style digest chain in Go.
func TestMD5ChainReference(t *testing.T) {
	const m32 = 4294967296
	cfg := Config{Scale: 1}.norm()
	blocks := cfg.n(160, 4)
	msg := initRef(blocks*16, 99)
	state := [4]float64{}
	for i := 0; i < 4; i++ {
		state[i] = float64(i*0x1111 + 0x0123)
	}
	for blk := 0; blk < blocks; blk++ {
		a, bv, cv, dv := state[0], state[1], state[2], state[3]
		for r := 0; r < 64; r++ {
			f := float64((int64(bv) & int64(cv)) | ((int64(bv) ^ 0xFFFFFFFF) & int64(dv)))
			mi := msg[blk*16+r%16]
			tv := math.Mod(a+f+mi+float64(r*0x5A82), m32)
			s := uint64(r%4 + 5)
			rot := math.Mod(float64((int64(tv)<<s)|(int64(tv)>>(32-s))), m32)
			a, dv, cv, bv = dv, cv, bv, math.Mod(bv+rot, m32)
		}
		state[0] += a
		state[1] += bv
		state[2] += cv
		state[3] += dv
	}
	want := state[0] + state[1] + state[2] + state[3]
	info, err := interp.Run(MD5(Config{}), nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Vars["checksum"]; got != want {
		t.Errorf("md5 checksum = %v, reference %v", got, want)
	}
}
