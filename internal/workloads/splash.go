package workloads

import (
	. "ddprof/internal/minilang"
)

// WaterSpatial models splash2x.water-spatial's communication structure
// (paper §VII-B, Figure 9): a spatial domain decomposition where each thread
// owns a contiguous block of cells, updates its own block, and reads a halo
// of neighbouring cells owned by the adjacent threads. The resulting
// cross-thread RAW dependences form the banded producer/consumer matrix the
// paper derives from its profiler output.
//
// Global sums (potential/kinetic energy) are combined under a mutex, adding
// the all-to-one column real water-spatial also shows.
func WaterSpatial(cfg Config) *Program {
	cfg = cfg.norm()
	p := New("water-spatial")
	perThread := cfg.n(160, 16)
	halo := cfg.n(12, 2)
	steps := cfg.n(4, 1)
	p.MainFunc(func(b *Block) {
		b.Decl("T", Ci(cfg.Threads))
		b.Decl("B", Ci(perThread))
		b.Decl("NC", Mul(V("T"), V("B")))
		b.Decl("HALO", Ci(halo))
		b.DeclArr("pos", V("NC"))
		b.DeclArr("force", V("NC"))
		b.Decl("energy", C(0))
		b.Spawn(cfg.Threads, func(s *Block) {
			threadSpan(s, V("NC"), cfg.Threads)
			// Thread-local copies of the loop-invariant configuration
			// scalars. The paper instruments LLVM IR where mem2reg has
			// promoted such values to registers, so repeated reads of them
			// generate no memory accesses; copying once per thread models
			// that and keeps the communication matrix about the *data*.
			s.Decl("nc", V("NC"))
			s.Decl("halo", V("HALO"))
			// SPMD initialization: each thread fills its own block (as the
			// real water-spatial does), so the main thread does not appear
			// as a producer to everyone.
			s.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "water.init_own"}, func(l *Block) {
				l.Set("pos", V("i"), Mod(Add(Mul(V("i"), Ci(1597)), Ci(51749)), Ci(244944)))
			})
			s.Barrier()
			s.For("step", Ci(0), Ci(steps), Ci(1), LoopOpt{Name: "water.steps"}, func(sb *Block) {
				// Force computation: each owned cell reads a halo around it,
				// crossing into the neighbour threads' blocks at the edges
				// (periodic boundary).
				sb.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "water.forces"}, func(l *Block) {
					l.Decl("f", C(0))
					l.For("h", Ci(1), Add(V("halo"), Ci(1)), Ci(1), LoopOpt{Name: "water.halo"}, func(hb *Block) {
						hb.Decl("left", Mod(Add(Sub(V("i"), V("h")), V("nc")), V("nc")))
						hb.Decl("right", Mod(Add(V("i"), V("h")), V("nc")))
						hb.Reduce("f", OpAdd, Div(Sub(Idx("pos", V("left")), Idx("pos", V("right"))), V("h")))
					})
					l.Set("force", V("i"), V("f"))
				})
				sb.Barrier()
				// Position update: owned cells only.
				sb.Decl("local", C(0))
				sb.For("i", V("lo"), V("hi"), Ci(1), LoopOpt{Name: "water.update"}, func(l *Block) {
					l.Set("pos", V("i"), Add(Idx("pos", V("i")), Mul(C(0.001), Idx("force", V("i")))))
					l.Reduce("local", OpAdd, Mul(Idx("force", V("i")), Idx("force", V("i"))))
				})
				// Global energy under a mutex (all threads -> shared scalar).
				sb.Lock("energy", func(cr *Block) {
					cr.Reduce("energy", OpAdd, V("local"))
				})
				sb.Barrier()
			})
		})
		b.Decl("checksum", V("energy"))
	})
	return p
}
