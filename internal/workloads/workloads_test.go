package workloads

import (
	"math"
	"testing"

	"ddprof/internal/analysis"
	"ddprof/internal/core"
	"ddprof/internal/interp"
)

// TestAllSequentialRunAndCompute executes every sequential workload natively
// and checks it terminates with a finite, deterministic checksum and a
// plausible access count.
func TestAllSequentialRunAndCompute(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build(Config{})
			info, err := interp.Run(p, nil, interp.Options{})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			cs, ok := info.Vars["checksum"]
			if !ok {
				t.Fatalf("%s: no checksum variable", w.Name)
			}
			if math.IsNaN(cs) || math.IsInf(cs, 0) {
				t.Fatalf("%s: checksum = %v", w.Name, cs)
			}
			if info.Accesses < 1000 {
				t.Errorf("%s: only %d accesses — workload too small to be meaningful", w.Name, info.Accesses)
			}
			// Deterministic: run again, same checksum.
			info2, err := interp.Run(w.Build(Config{}), nil, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if info2.Vars["checksum"] != cs {
				t.Errorf("%s: nondeterministic checksum: %v vs %v", w.Name, cs, info2.Vars["checksum"])
			}
		})
	}
}

// TestParallelVariantsRun executes every pthread-style variant with 4 target
// threads.
func TestParallelVariantsRun(t *testing.T) {
	for _, w := range Starbench() {
		w := w
		if w.BuildParallel == nil {
			continue
		}
		t.Run(w.Name, func(t *testing.T) {
			p := w.BuildParallel(Config{Threads: 4})
			info, err := interp.Run(p, nil, interp.Options{})
			if err != nil {
				t.Fatalf("%s parallel: %v", w.Name, err)
			}
			cs := info.Vars["checksum"]
			if math.IsNaN(cs) || math.IsInf(cs, 0) {
				t.Fatalf("%s parallel: checksum = %v", w.Name, cs)
			}
		})
	}
}

// TestParallelMatchesSequentialChecksum: for data-race-free workloads whose
// parallel decomposition is a pure partition of the sequential one, the
// parallel checksum must equal the sequential checksum.
func TestParallelMatchesSequentialChecksum(t *testing.T) {
	// These kernels compute identical checksums in both variants (the
	// reductions are either exact partitions or locked).
	for _, name := range []string{"rgbyuv", "rotate", "rot-cc", "tinyjpeg"} {
		w, ok := ByName(name)
		if !ok || w.BuildParallel == nil {
			t.Fatalf("workload %s missing", name)
		}
		seq, err := interp.Run(w.Build(Config{}), nil, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := interp.Run(w.BuildParallel(Config{Threads: 4}), nil, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(seq.Vars["checksum"]-par.Vars["checksum"]) > 1e-6*math.Abs(seq.Vars["checksum"])+1e-9 {
			t.Errorf("%s: sequential %v vs parallel %v", name, seq.Vars["checksum"], par.Vars["checksum"])
		}
	}
}

func TestScaleGrowsWork(t *testing.T) {
	small, err := interp.Run(RGBYUV(Config{Scale: 0.5}), nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := interp.Run(RGBYUV(Config{Scale: 2}), nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if big.Accesses <= small.Accesses {
		t.Errorf("scale 2 (%d accesses) not larger than scale 0.5 (%d)", big.Accesses, small.Accesses)
	}
}

func TestRegistry(t *testing.T) {
	if len(NAS()) != 8 {
		t.Errorf("NAS count = %d", len(NAS()))
	}
	if len(Starbench()) != 11 {
		t.Errorf("Starbench count = %d", len(Starbench()))
	}
	if len(All()) != 19 {
		t.Errorf("All count = %d", len(All()))
	}
	if _, ok := ByName("CG"); !ok {
		t.Error("ByName(CG) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	for _, w := range Starbench() {
		if w.BuildParallel == nil {
			t.Errorf("%s: missing parallel variant", w.Name)
		}
	}
}

// TestNASLoopInventories verifies each NAS program declares exactly the
// Table II "# OMP" number of OMP-annotated loops.
func TestNASLoopInventories(t *testing.T) {
	for _, w := range NAS() {
		p := w.Build(Config{})
		omp := 0
		for _, l := range p.Meta.Loops() {
			if l.OMP {
				omp++
			}
		}
		if omp != w.OMPLoops {
			t.Errorf("%s: %d OMP loops declared, Table II says %d", w.Name, omp, w.OMPLoops)
		}
	}
}

// TestTableIAddressAccessShape sanity-checks the Table I drivers: tinyjpeg
// must have a tiny address set with heavy reuse, rgbyuv a large address set
// with light reuse.
func TestTableIAddressAccessShape(t *testing.T) {
	tj, err := interp.Run(TinyJPEG(Config{}), nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := interp.Run(RGBYUV(Config{}), nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// tinyjpeg: few hundred addresses, millions of touches; its access
	// count should dwarf rgbyuv's per-address reuse.
	if tj.Accesses < 100000 {
		t.Errorf("tinyjpeg accesses = %d, want heavy reuse", tj.Accesses)
	}
	if rg.Accesses == 0 {
		t.Fatal("rgbyuv did nothing")
	}
}

func TestWaterSpatialRuns(t *testing.T) {
	info, err := interp.Run(WaterSpatial(Config{Threads: 4}), nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(info.Vars["checksum"]) {
		t.Error("water-spatial checksum NaN")
	}
	if info.Accesses < 10000 {
		t.Errorf("water-spatial accesses = %d", info.Accesses)
	}
}

// TestNASNamedLoopVerdicts pins the Table II ground truth at loop-name
// granularity for the three benchmarks with non-identified loops.
func TestNASNamedLoopVerdicts(t *testing.T) {
	notIdentified := map[string][]string{
		"IS": {"is.histogram", "is.scan", "is.rank"},
		"CG": {"cg.rho0", "cg.d", "cg.rho", "cg.znorm", "cg.zeta", "cg.final_rnorm", "cg.final_xnorm"},
		"FT": {"ft.checksum"},
	}
	for name, seq := range notIdentified {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		p := w.Build(Config{Scale: 0.5})
		prof := core.NewSerial(core.Config{
			Backend: "perfect",
			Meta:    p.Meta,
		})
		info, err := interp.Run(p, prof, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		reports := analysis.DiscoverParallelism(p.Meta, prof.Flush(), info.LoopIters)
		verdicts := map[string]analysis.LoopReport{}
		for _, r := range reports {
			verdicts[r.Loop.Name] = r
		}
		bad := map[string]bool{}
		for _, ln := range seq {
			bad[ln] = true
			r, ok := verdicts[ln]
			if !ok {
				t.Errorf("%s: loop %s never ran", name, ln)
				continue
			}
			if r.Parallelizable {
				t.Errorf("%s: loop %s must NOT be identified (carried RAW expected)", name, ln)
			}
		}
		// Every other OMP loop must be identified.
		for ln, r := range verdicts {
			if r.Loop.OMP && !bad[ln] && !r.Parallelizable {
				t.Errorf("%s: OMP loop %s unexpectedly sequential (%d carried RAW)", name, ln, r.CarriedRAW)
			}
		}
	}
}
