package server

// Coverage for the flight-recorder endpoints: /debug/timeline, /debug/pprof,
// and the histogram quantiles on /metrics.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ddprof/internal/telemetry"
)

func TestTimelineEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{Registry: reg, SnapshotInterval: time.Hour, SnapshotSamples: 16})
	defer srv.Shutdown(context.Background())
	if srv.Snapshotter() == nil {
		t.Fatal("snapshotter not started by default")
	}
	reg.Counter("pipeline_events_total").Add(123)
	srv.Snapshotter().SampleNow()

	rec := httptest.NewRecorder()
	srv.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/timeline status = %d", rec.Code)
	}
	var page struct {
		IntervalMs   float64 `json:"interval_ms"`
		TotalSamples uint64  `json:"total_samples"`
		Samples      []struct {
			TsMs float64            `json:"ts_ms"`
			Vals map[string]float64 `json:"vals"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if page.TotalSamples == 0 || len(page.Samples) == 0 {
		t.Fatalf("timeline empty: %+v", page)
	}
	last := page.Samples[len(page.Samples)-1]
	if last.Vals["pipeline_events_total"] != 123 {
		t.Errorf("timeline sample events_total = %v, want 123", last.Vals["pipeline_events_total"])
	}
}

func TestTimelineDisabled(t *testing.T) {
	srv := New(Config{Registry: telemetry.NewRegistry(), SnapshotSamples: -1})
	defer srv.Shutdown(context.Background())
	if srv.Snapshotter() != nil {
		t.Fatal("snapshotter started despite SnapshotSamples < 0")
	}
	rec := httptest.NewRecorder()
	srv.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/timeline with recorder disabled: status = %d, want 404", rec.Code)
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv := New(Config{Registry: telemetry.NewRegistry(), SnapshotSamples: -1})
	defer srv.Shutdown(context.Background())
	rec := httptest.NewRecorder()
	srv.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
	rec = httptest.NewRecorder()
	srv.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/goroutine?debug=1", nil))
	if rec.Code != 200 {
		t.Fatalf("goroutine profile status = %d", rec.Code)
	}
}

// TestMetricsHistogramQuantiles: the daemon's /metrics page carries the
// stage-latency quantile lines as soon as the pipeline group exists (the
// histograms are interned at server construction).
func TestMetricsHistogramQuantiles(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{Registry: reg, SnapshotSamples: -1})
	defer srv.Shutdown(context.Background())
	reg.Histogram("pipeline_stage_worker_ns").Observe(1500)

	rec := httptest.NewRecorder()
	srv.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"pipeline_stage_worker_ns_count 1",
		"pipeline_stage_worker_ns_p50 ",
		"pipeline_stage_worker_ns_p99 ",
		"pipeline_stage_produce_ns_count 0",
		"pipeline_stage_merge_ns_count 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
