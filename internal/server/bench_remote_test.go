package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"ddprof/internal/core"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
	"ddprof/internal/telemetry"
	"ddprof/internal/trace"
)

// benchIngestStream synthesizes the dependence-dense hot-loop shape the
// pipeline benchmarks use (a carried RAW chain, an in-iteration duplicate
// read, a reduction RAW), with one extra property: the final record lands on
// address 0 with timestamp 0, which is exactly the delta-encoder's initial
// state. One encoded pass of the stream therefore replays byte-identically
// any number of times — the benchmark repeats the same body bytes without
// address drift, so the profile (and the per-event cost) reaches a steady
// state instead of growing with b.N.
func benchIngestStream(events int) ([]event.Access, *prog.Meta) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "hot"})
	ctx := m.PushCtx(0, l)
	const window = 4096
	aBase, sumAddr := uint64(0x10000), uint64(0x8000)
	evs := make([]event.Access, 0, events+1)
	for it := uint32(0); len(evs) < events; it++ {
		iv := event.PackIterVec([]uint32{it})
		at := func(i uint32) uint64 { return aBase + 8*uint64(i%window) }
		ev := func(addr uint64, k event.Kind, line int, fl event.Flags) event.Access {
			return event.Access{Addr: addr, Kind: k, Loc: loc.Pack(1, line), CtxID: ctx, IterVec: iv, Flags: fl}
		}
		if it > 0 {
			evs = append(evs, ev(at(it-1), event.Read, 10, 0))
		}
		evs = append(evs,
			ev(at(it), event.Write, 12, 0),
			ev(at(it), event.Read, 13, 0),
			ev(at(it), event.Read, 13, 0),
			ev(sumAddr, event.Read, 14, event.FlagReduction),
			ev(sumAddr, event.Write, 14, event.FlagReduction),
		)
	}
	evs = evs[:events]
	// Reset record: returns the delta coder to its initial (addr 0, ts 0)
	// state so the encoded pass is replayable.
	evs = append(evs, event.Access{Addr: 0, Kind: event.Read, Loc: loc.Pack(1, 15), CtxID: ctx})
	return evs, m
}

// encodeIngestPass serializes one pass of the stream as DDT1 bytes and
// returns (full, body): full includes the 4-byte magic, body is the record
// bytes alone, suitable for appending to an already-open stream.
func encodeIngestPass(stream []event.Access) (full, body []byte, err error) {
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		return nil, nil, err
	}
	for _, a := range stream {
		tw.Access(a)
	}
	if err := tw.Close(); err != nil {
		return nil, nil, err
	}
	full = buf.Bytes()
	return full, full[4:], nil
}

// streamIngestFrames writes p to fw in frame-sized slices, mirroring the
// client's 64KiB trace.Writer flush granularity.
func streamIngestFrames(fw *trace.FrameWriter, p []byte) error {
	const frame = 64 << 10
	for len(p) > 0 {
		n := frame
		if n > len(p) {
			n = len(p)
		}
		if _, err := fw.Write(p[:n]); err != nil {
			return err
		}
		p = p[n:]
	}
	return nil
}

// BenchmarkRemoteIngest measures the daemon's ingest path end to end —
// handshake, framed DDT1 stream, profiling, response — against an in-process
// twin running the identical event stream through the same pipeline
// configuration. The remote/inproc ratio is the cost of the wire; `make
// bench-remote` records both under the "remote" label so the gate catches
// ingest regressions.
func BenchmarkRemoteIngest(b *testing.B) {
	stream, meta := benchIngestStream(1 << 16)
	full, body, err := encodeIngestPass(stream)
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"x"}

	remote := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Skipf("tcp loopback unavailable: %v", err)
			}
			srv := New(Config{
				WorkerBudget:      8,
				WorkersPerSession: workers,
				SessionSlots:      1 << 20,
				Registry:          telemetry.NewRegistry(),
				SnapshotSamples:   -1,
			})
			go srv.Serve(ln)
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()

			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			passes := (b.N + len(stream) - 1) / len(stream)
			events := passes * len(stream)
			bw := bufio.NewWriterSize(conn, 1<<16)
			start := time.Now()
			b.ResetTimer()
			if err := writeHandshake(bw, &handshake{Workers: workers, VarNames: names, Meta: meta}); err != nil {
				b.Fatal(err)
			}
			fw := trace.NewFrameWriter(bw)
			if err := streamIngestFrames(fw, full); err != nil {
				b.Fatal(err)
			}
			for i := 1; i < passes; i++ {
				if err := streamIngestFrames(fw, body); err != nil {
					b.Fatal(err)
				}
			}
			if err := fw.Close(); err != nil {
				b.Fatal(err)
			}
			if err := bw.Flush(); err != nil {
				b.Fatal(err)
			}
			status, payload, err := readResponse(bufio.NewReader(conn))
			elapsed := time.Since(start)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if status != statusOK {
				b.Fatalf("remote error: %s", payload)
			}
			b.ReportMetric(float64(events)/elapsed.Seconds(), "events/s")
		}
	}

	inproc := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			var prof core.Profiler
			if workers >= 2 {
				prof = core.NewParallel(core.Config{
					Workers:           workers,
					SlotsPerWorker:    (1 << 20) / workers,
					RedistributeEvery: 50000,
					Meta:              meta,
				})
			} else {
				prof = core.NewSerial(core.Config{SlotsPerWorker: 1 << 20, Meta: meta})
			}
			passes := (b.N + len(stream) - 1) / len(stream)
			events := passes * len(stream)
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < passes; i++ {
				for j := range stream {
					prof.Access(stream[j])
				}
			}
			prof.Flush()
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(events)/elapsed.Seconds(), "events/s")
		}
	}

	for _, w := range []int{1, 4} {
		tag := "serial"
		if w >= 2 {
			tag = fmt.Sprintf("parallel%d", w)
		}
		b.Run("remote-"+tag, remote(w))
		b.Run("inproc-"+tag, inproc(w))
	}
}
