package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	"ddprof/internal/minilang"
	"ddprof/internal/telemetry"
	"ddprof/internal/trace"
)

// mtProgram builds a 4-thread target with a lock-protected reduction, the
// timestamped-trace shape MT sessions stream.
func mtProgram() *minilang.Program {
	p := minilang.New("golden-mt")
	p.MainFunc(func(b *minilang.Block) {
		b.Decl("sum", minilang.Ci(0))
		b.Spawn(4, func(tb *minilang.Block) {
			tb.For("i", minilang.Ci(0), minilang.Ci(80), minilang.Ci(1),
				minilang.LoopOpt{Name: "acc"}, func(l *minilang.Block) {
					l.Lock("m", func(cb *minilang.Block) {
						cb.Reduce("sum", minilang.OpAdd, minilang.V("i"))
					})
				})
		})
	})
	return p
}

// captureTrace executes p once and returns its framed DDT1 trace — the exact
// bytes a ProfileRemote client would put on the wire, compaction included.
func captureTrace(t *testing.T, p *minilang.Program) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := trace.NewFrameWriter(&buf)
	tw, err := trace.NewWriter(fw)
	if err != nil {
		t.Fatal(err)
	}
	cw := trace.NewCompactor(tw)
	if _, err := interp.Run(p, cw, interp.Options{Timestamps: true}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rawRemoteProfile runs one daemon session over pre-captured trace bytes and
// returns the decoded dependence set.
func rawRemoteProfile(t *testing.T, addr string, h *handshake, raw []byte) *RemoteResult {
	t.Helper()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	if err := writeHandshake(bw, h); err != nil {
		t.Fatal(err)
	}
	if _, err := bw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	status, payload, err := readResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if status != statusOK {
		t.Fatalf("remote error: %s", payload)
	}
	set, _, tab, err := dep.Decode(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return &RemoteResult{Deps: set, Tab: tab}
}

// replayTrace feeds captured trace bytes to a profiler record by record —
// the pre-batching reference semantics the daemon's batched ingest must
// reproduce.
func replayTrace(t *testing.T, prof core.Profiler, raw []byte) {
	t.Helper()
	tr, err := trace.NewReader(trace.NewFrameReader(bytes.NewReader(raw), 0))
	if err != nil {
		t.Fatal(err)
	}
	type ranged interface{ AccessRange(event.Range) }
	for {
		rec, err := tr.NextRecord()
		if err != nil {
			if err == io.EOF {
				return
			}
			t.Fatal(err)
		}
		if rec.IsRange {
			prof.(ranged).AccessRange(rec.Range)
			continue
		}
		prof.Access(rec.Access)
	}
}

// TestRemoteLocalGoldenMatrix is the batched-ingest acceptance matrix: over
// {serial, parallel, MT-timestamped} sessions × {signature, hybrid} stores,
// a remote session's dependence set must encode byte-identically to an
// in-process profiler mirroring the session's exact pipeline config. This
// pins the whole ingest path — client compaction, DDT1 framing, the batched
// decoder with its duplicate collapse, and the bulk-ingest seam — to the
// local semantics.
func TestRemoteLocalGoldenMatrix(t *testing.T) {
	const slots = 1 << 16
	backends := []string{
		fmt.Sprintf("signature:slots=%d", slots),
		fmt.Sprintf("hybrid:slots=%d,exact=1024", slots),
	}
	modes := []struct {
		name    string
		workers int // ClientOptions.Workers; <2 runs the session serial
		mt      bool
	}{
		{"serial", 1, false},
		{"parallel4", 4, false},
		{"mt", 1, true},
	}

	srv := New(Config{
		WorkerBudget:      8,
		WorkersPerSession: 1,
		SessionSlots:      slots,
		Registry:          telemetry.NewRegistry(),
	})
	ln := listenTCP(t)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	for _, mode := range modes {
		for _, backend := range backends {
			t.Run(fmt.Sprintf("%s/%s", mode.name, backend), func(t *testing.T) {
				p := testProgram("golden", 2000)
				if mode.mt {
					p = mtProgram()
				}

				// The local twin mirrors the session pipeline the daemon
				// builds from this handshake: mode and worker split from the
				// worker count, the same store spec, the same rebalance
				// cadence, race checking iff the trace is timestamped.
				ccfg := core.Config{
					Meta:      p.Meta,
					Backend:   backend,
					RaceCheck: mode.mt,
				}
				if mode.workers >= 2 {
					ccfg.Mode = core.ModeParallel
					ccfg.Workers = mode.workers
					ccfg.SlotsPerWorker = slots / mode.workers
					ccfg.RedistributeEvery = 50000
				} else {
					ccfg.Mode = core.ModeSerial
					ccfg.SlotsPerWorker = slots
				}
				prof, err := core.New(ccfg)
				if err != nil {
					t.Fatal(err)
				}

				var rr *RemoteResult
				var res *core.Result
				if mode.mt {
					// A 4-thread target interleaves differently on every
					// execution, so run it ONCE, capture the framed trace,
					// and feed the identical bytes to the daemon and to the
					// local twin.
					raw := captureTrace(t, p)
					rr = rawRemoteProfile(t, ln.Addr().String(), clientHandshake(p, ClientOptions{
						Workers: mode.workers,
						Backend: backend,
						MT:      mode.mt,
					}), raw)
					replayTrace(t, prof, raw)
					res = prof.Flush()
				} else {
					conn, err := Dial(ln.Addr().String())
					if err != nil {
						t.Fatal(err)
					}
					defer conn.Close()
					rr, err = ProfileRemote(conn, p, ClientOptions{
						Workers: mode.workers,
						Backend: backend,
					})
					if err != nil {
						t.Fatal(err)
					}
					if _, err := interp.Run(p, prof, interp.Options{}); err != nil {
						t.Fatal(err)
					}
					res = prof.Flush()
				}

				tab := loc.NewTable()
				for i := 0; i < p.Tab.NumVars(); i++ {
					tab.Var(p.Tab.VarName(loc.VarID(i)))
				}
				var local, remote bytes.Buffer
				if err := dep.Encode(&local, res.Deps, tab, nil); err != nil {
					t.Fatal(err)
				}
				if err := dep.Encode(&remote, rr.Deps, tab, nil); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(local.Bytes(), remote.Bytes()) {
					t.Fatalf("remote profile diverges from local twin: %d vs %d bytes, %d vs %d deps",
						remote.Len(), local.Len(), rr.Deps.Unique(), res.Deps.Unique())
				}
				if rr.Deps.Unique() == 0 {
					t.Fatal("matrix cell produced an empty dependence set")
				}
			})
		}
	}
}
