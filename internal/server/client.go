package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"ddprof/internal/dep"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	"ddprof/internal/minilang"
	"ddprof/internal/trace"
	"ddprof/internal/vm"
)

// ClientOptions configure one remote profiling session.
type ClientOptions struct {
	// Workers is the per-session pipeline worker hint; 0 asks for the
	// server's default.
	Workers int
	// Backend requests a store spec for the session ("perfect",
	// "hybrid:exact=4096", ...), resolved against the daemon's backend
	// registry and memory budget; empty accepts the daemon's default.
	Backend string
	// MT records timestamps and requests race checking — set when the
	// target program is multi-threaded.
	MT bool
	// SchedulerFuzz is passed to the interpreter (ModeMT visibility fuzz).
	SchedulerFuzz int
	// Interp records the trace with the reference tree-walking interpreter
	// instead of the default bytecode VM.
	Interp bool
	// FrameBytes sizes the trace writer's serialization buffer — and since
	// every buffer flush becomes one wire frame, the frame size the daemon
	// decodes in one batch. Larger frames amortize framing and decode
	// overhead; they must stay within the daemon's frame cap (1MiB by
	// default). 0 selects the 64KiB default.
	FrameBytes int
	// Timeout bounds every socket read and write. Default 60s.
	Timeout time.Duration
}

// executor selects the event producer for the local recording run.
func (opt ClientOptions) executor() interp.Executor {
	if opt.Interp {
		return interp.TreeWalker{}
	}
	return vm.New()
}

// RemoteResult is the outcome of a remote profiling session.
type RemoteResult struct {
	// Deps is the dependence set profiled by the daemon.
	Deps *dep.Set
	// Tab maps the variable IDs in Deps back to names (decoded from the
	// daemon's response; identical to the target program's own table).
	Tab *loc.Table
	// LoopRecords are the executed-loop records from the local recording
	// run, for Figure-1-style output (the daemon sees only the trace).
	LoopRecords []dep.LoopRecord
	// Events is the number of accesses recorded and streamed.
	Events uint64
}

// Dial connects to a ddprofd daemon. addr is either "unix:/path/to.sock" or
// a TCP host:port.
func Dial(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Dial("unix", path)
	}
	return net.Dial("tcp", addr)
}

// deadlineConn applies a rolling deadline to every read and write.
type deadlineConn struct {
	net.Conn
	timeout time.Duration
}

func (d *deadlineConn) Read(p []byte) (int, error) {
	if err := d.Conn.SetReadDeadline(time.Now().Add(d.timeout)); err != nil {
		return 0, err
	}
	return d.Conn.Read(p)
}

func (d *deadlineConn) Write(p []byte) (int, error) {
	if err := d.Conn.SetWriteDeadline(time.Now().Add(d.timeout)); err != nil {
		return 0, err
	}
	return d.Conn.Write(p)
}

// ProfileRemote executes p locally while streaming its access trace to a
// ddprofd daemon over conn, then returns the dependence set the daemon
// profiled. The recording hook is a trace.SyncWriter, so multi-threaded
// targets stream safely. The connection is not closed.
//
// The daemon receives the target's variable table and loop metadata in the
// handshake, so the returned dependence set — carried flags, distances,
// counts — is byte-for-byte what an in-process run with the same store
// configuration produces.
func ProfileRemote(conn net.Conn, p *minilang.Program, opt ClientOptions) (*RemoteResult, error) {
	if opt.Timeout <= 0 {
		opt.Timeout = 60 * time.Second
	}
	dc := &deadlineConn{Conn: conn, timeout: opt.Timeout}
	bw := bufio.NewWriterSize(dc, 1<<16)

	if err := writeHandshake(bw, clientHandshake(p, opt)); err != nil {
		return nil, fmt.Errorf("server: sending handshake: %w", err)
	}
	records, events, err := streamTrace(bw, p, opt)
	if err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("server: finishing stream: %w", err)
	}

	status, payload, err := readResponse(bufio.NewReader(dc))
	if err != nil {
		return nil, err
	}
	if status != statusOK {
		return nil, fmt.Errorf("server: remote error: %s", payload)
	}
	set, _, tab, err := dep.Decode(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("server: decoding profile: %w", err)
	}
	return &RemoteResult{
		Deps:        set,
		Tab:         tab,
		LoopRecords: records,
		Events:      events,
	}, nil
}

// clientHandshake builds the session preamble for p.
func clientHandshake(p *minilang.Program, opt ClientOptions) *handshake {
	var flags byte
	if opt.MT {
		flags |= flagRaceCheck
	}
	names := make([]string, p.Tab.NumVars())
	for i := range names {
		names[i] = p.Tab.VarName(loc.VarID(i))
	}
	return &handshake{Flags: flags, Backend: opt.Backend, Workers: opt.Workers, VarNames: names, Meta: p.Meta}
}

// WatchOptions configure one live-observatory subscription.
type WatchOptions struct {
	// Session is the profiling session to observe; 0 subscribes to the
	// newest active session, waiting for the next one to start when none is
	// live.
	Session uint64
	// Since restricts the catch-up frame to dependences first observed at
	// this epoch or later; 0 delivers the full profile-so-far, which is what
	// makes the folded frame stream reconstruct the exact final profile.
	Since uint32
	// Timeout bounds every socket read and write; 0 means no deadline —
	// watch streams are long-lived and quiet between epochs.
	Timeout time.Duration
	// MaxFrame caps one delta frame; <= 0 selects trace.DefaultMaxFrame.
	MaxFrame int
}

// Watch subscribes to a ddprofd session's live observatory over conn and
// calls fn for every epoch-delta frame — each payload a complete DDP1
// profile of the dependences whose aggregates advanced during one epoch —
// until the frame marked final (the session's unshipped remainder), the end
// of the stream, or a non-nil error from fn, which stops the watch and is
// returned verbatim. A stream that terminates cleanly without a final frame
// means the watched session died before completing; Watch reports that as an
// error. The connection is not closed.
//
// Folding every received payload into one set with dep.DecodeMerge yields,
// after the final frame, the session's exact end-of-run profile (for Since
// 0): the deltas are extracted under the monotone-fold guarantee of
// dep.(*Set).ExtractDelta.
func Watch(conn net.Conn, opt WatchOptions, fn func(trace.DeltaFrame) error) error {
	var rw io.ReadWriter = conn
	if opt.Timeout > 0 {
		rw = &deadlineConn{Conn: conn, timeout: opt.Timeout}
	}
	bw := bufio.NewWriterSize(rw, 1<<12)
	h := &handshake{Watch: true, WatchSession: opt.Session, WatchSince: uint64(opt.Since)}
	if err := writeHandshake(bw, h); err != nil {
		return fmt.Errorf("server: sending watch handshake: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("server: sending watch handshake: %w", err)
	}
	br := bufio.NewReaderSize(rw, 1<<16)
	st, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("server: reading watch status: %w", noEOF(err))
	}
	if st != statusOK {
		msg, err := getString(br, maxRespPayload)
		if err != nil {
			return fmt.Errorf("server: reading watch error: %w", err)
		}
		return fmt.Errorf("server: watch refused: %s", msg)
	}
	dr := trace.NewDeltaReader(br, opt.MaxFrame)
	sawFinal := false
	for {
		f, err := dr.Next()
		if err == io.EOF {
			if !sawFinal {
				return fmt.Errorf("server: watched session ended without a final frame")
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("server: watch stream: %w", err)
		}
		if f.Final {
			sawFinal = true
		}
		if err := fn(f); err != nil {
			return err
		}
	}
}

// streamTrace executes p, streaming its framed DDT1 trace to w, and
// terminates the stream. The recording hook is a trace.Compactor, which
// serializes concurrent callers (so multi-threaded targets stream safely)
// and folds consecutive strided runs into range records, shrinking the trace
// on the wire and letting the daemon ingest whole runs in one dispatch.
func streamTrace(w io.Writer, p *minilang.Program, opt ClientOptions) ([]dep.LoopRecord, uint64, error) {
	fw := trace.NewFrameWriter(w)
	tw, err := trace.NewWriterSize(fw, opt.FrameBytes)
	if err != nil {
		return nil, 0, fmt.Errorf("server: opening trace stream: %w", err)
	}
	cw := trace.NewCompactor(tw)
	info, err := opt.executor().Run(p, cw, interp.Options{Timestamps: opt.MT, YieldEvery: opt.SchedulerFuzz})
	if err != nil {
		return nil, 0, fmt.Errorf("server: target run: %w", err)
	}
	events := cw.Count()
	if err := cw.Close(); err != nil {
		return nil, 0, fmt.Errorf("server: streaming trace: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, 0, fmt.Errorf("server: finishing stream: %w", err)
	}
	return info.LoopRecords, events, nil
}
