package server

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"ddprof/internal/telemetry"
)

// FuzzHandshake: arbitrary preamble bytes must decode or error, never panic.
func FuzzHandshake(f *testing.F) {
	var good bytes.Buffer
	writeHandshake(&good, clientHandshake(testProgram("seed", 32), ClientOptions{Workers: 2, Backend: "perfect"}))
	f.Add(good.Bytes())
	f.Add([]byte("DDRP\x01\x00\x00\x00\x00"))
	f.Add([]byte("DDRP\x01\x00\x00\x02\x01a\x01b\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := readHandshake(bufio.NewReader(bytes.NewReader(data)))
		if err == nil && h == nil {
			t.Fatal("nil handshake without error")
		}
	})
}

// FuzzSession drives a full daemon connection with arbitrary client bytes:
// the session must terminate (evicted or completed) without panicking and
// without leaking pipeline goroutines past the response.
func FuzzSession(f *testing.F) {
	var good bytes.Buffer
	p := testProgram("seed", 32)
	writeHandshake(&good, clientHandshake(p, ClientOptions{Backend: "perfect"}))
	streamTrace(&good, p, ClientOptions{})
	f.Add(good.Bytes())
	// Handshake, then a frame claiming more bytes than follow.
	var trunc bytes.Buffer
	writeHandshake(&trunc, clientHandshake(p, ClientOptions{}))
	trunc.Write([]byte{0x80, 0x02, 'D', 'D', 'T', '1'})
	f.Add(trunc.Bytes())
	// Handshake, then a trace carrying a pipeline control kind.
	var ctrl bytes.Buffer
	writeHandshake(&ctrl, clientHandshake(p, ClientOptions{}))
	ctrl.Write([]byte{14, 'D', 'D', 'T', '1', 5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(ctrl.Bytes())
	f.Add([]byte("DDRPxxxx"))
	f.Add([]byte{})

	srv := New(Config{
		IdleTimeout: 200 * time.Millisecond,
		Registry:    telemetry.NewRegistry(),
		MaxSessions: 4,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		client, server := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.handleConn(server)
		}()
		client.SetDeadline(time.Now().Add(2 * time.Second))
		client.Write(data) // best effort; the server may hang up mid-write
		// Drain whatever the server says, then hang up.
		go io.Copy(io.Discard, client)
		time.Sleep(10 * time.Millisecond)
		client.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("session did not terminate")
		}
	})
}
