package server

// The two-stage session ingest pipeline. Stage 1 (the socket goroutine)
// reads length-prefixed DDT1 frames into pooled payload buffers; stage 2
// (the decode goroutine) batch-decodes them into event chunks via
// trace.Reader.NextBatch, reading straight out of the pooled buffers; the
// session goroutine validates each batch and feeds it to the pipeline's
// bulk-ingest seam. Bounded channels between the stages let socket read,
// decode, and profiling overlap while record order — and therefore
// epoch-mark placement — is preserved end to end, and keep pipeline
// backpressure intact: a stalled profiler fills the chunk ring, which stalls
// the decoder, which fills the frame ring, which stops the socket reads.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ddprof/internal/event"
	"ddprof/internal/trace"
)

// minFrameBuf is the minimum capacity of a pooled frame buffer — the
// client's default flush granularity — so one buffer serves any default-
// sized frame no matter which frame first allocated it.
const minFrameBuf = 64 << 10

// ingestFramePool recycles frame payload buffers across frames and sessions.
var ingestFramePool sync.Pool

// getFrameBuf returns an n-byte buffer, pooled when one large enough is
// available; the bool reports whether the buffer was reused.
func getFrameBuf(n int) ([]byte, bool) {
	if v := ingestFramePool.Get(); v != nil {
		if b := *(v.(*[]byte)); cap(b) >= n {
			return b[:n], true
		}
		// Too small for this frame: drop it and size up, so a stream of
		// large frames converges on buffers that fit.
	}
	c := n
	if c < minFrameBuf {
		c = minFrameBuf
	}
	return make([]byte, n, c), false
}

func putFrameBuf(b []byte) {
	b = b[:0]
	ingestFramePool.Put(&b)
}

// ingestBatch is one decoded chunk plus the stream event index of its first
// record (ranges weighted by element count), which keeps error reporting
// identical to the record-at-a-time path. events is the decoder's event count
// for the batch, and ctl whether it holds any control record: a pure data
// batch (the common case) skips per-record inspection in feedBatch.
type ingestBatch struct {
	c      *event.Chunk
	base   uint64
	events uint64
	ctl    bool
}

// ingest owns a session's two ingest-stage goroutines and the rings between
// them.
type ingest struct {
	frames chan []byte      // stage 1 → stage 2: pooled frame payloads
	out    chan ingestBatch // stage 2 → session: decoded batches
	free   chan *event.Chunk
	done   chan struct{}
	wg     sync.WaitGroup
	conn   net.Conn

	readErr   error // stage-1 terminal error; written before frames closes
	decodeErr error // stage-2 terminal error; written before out closes

	reused atomic.Uint64
	fresh  atomic.Uint64
}

// startIngest launches the two stages. br must be positioned just past the
// handshake; depth bounds both inter-stage rings.
func startIngest(conn net.Conn, br *bufio.Reader, maxFrame, depth int) *ingest {
	ing := &ingest{
		frames: make(chan []byte, depth),
		out:    make(chan ingestBatch, depth),
		free:   make(chan *event.Chunk, depth),
		done:   make(chan struct{}),
		conn:   conn,
	}
	for i := 0; i < depth; i++ {
		ing.free <- event.NewChunk()
	}
	ing.wg.Add(2)
	go ing.readFrames(br, maxFrame)
	go ing.decode()
	return ing
}

// stop tears the stages down from the session goroutine: wake anything
// blocked on a ring, kick a blocked socket read off its wait with an
// immediate deadline, and join. On a cleanly terminated stream both stages
// have already exited and this is just the join.
func (ing *ingest) stop() {
	close(ing.done)
	ing.conn.SetReadDeadline(time.Now())
	ing.wg.Wait()
}

// err returns the ingest pipeline's terminal error, valid once out is
// closed. A clean terminator yields nil.
func (ing *ingest) err() error {
	if ing.decodeErr == io.EOF {
		return nil
	}
	return ing.decodeErr
}

// readFrames is stage 1: length-prefixed frames off the socket into pooled
// buffers. It replaces trace.FrameReader on the ingest path and mirrors its
// validation and error text exactly.
func (ing *ingest) readFrames(br *bufio.Reader, maxFrame int) {
	defer ing.wg.Done()
	defer close(ing.frames)
	for {
		ln, err := binary.ReadUvarint(br)
		if err != nil {
			ing.readErr = fmt.Errorf("trace: reading frame header: %w", noEOF(err))
			return
		}
		if ln == 0 {
			return // clean stream terminator
		}
		if ln > uint64(maxFrame) {
			ing.readErr = fmt.Errorf("trace: frame of %d bytes: %w", ln, trace.ErrFrameTooLarge)
			return
		}
		buf, reused := getFrameBuf(int(ln))
		if reused {
			ing.reused.Add(1)
		} else {
			ing.fresh.Add(1)
		}
		if _, err := io.ReadFull(br, buf); err != nil {
			ing.readErr = fmt.Errorf("trace: reading frame payload: %w", noEOF(err))
			return
		}
		select {
		case ing.frames <- buf:
		case <-ing.done:
			return
		}
	}
}

// decode is stage 2: frames → batched chunks. A batch naturally covers about
// one frame (NextBatch yields as soon as nothing further is buffered), so
// decoding overlaps both the socket reads behind it and the profiling ahead
// of it.
func (ing *ingest) decode() {
	defer ing.wg.Done()
	defer close(ing.out)
	fs := &frameStream{ing: ing}
	tr, err := trace.NewReader(fs)
	if err != nil {
		ing.decodeErr = err
		return
	}
	for {
		var c *event.Chunk
		select {
		case c = <-ing.free:
		case <-ing.done:
			return
		}
		c.Reset()
		base := tr.Count()
		n, err := tr.NextBatch(c)
		if n > 0 {
			ib := ingestBatch{c: c, base: base, events: tr.Count() - base, ctl: tr.BatchControl()}
			select {
			case ing.out <- ib:
			case <-ing.done:
				return
			}
		} else {
			// The free ring has capacity for every chunk, so this never
			// blocks.
			ing.free <- c
		}
		if err != nil {
			ing.decodeErr = err // io.EOF for a clean stream
			return
		}
	}
}

// frameStream adapts the pooled frame ring to trace.ByteScanner plus the
// decoder's windowed fast path: NextBatch peeks each frame's payload as one
// contiguous window and decodes records flat out of the pooled buffer — zero
// copies between the socket read and the decoded event fields. Exhausted
// buffers go straight back to the pool.
type frameStream struct {
	ing *ingest
	cur []byte
	pos int
}

// next recycles the current buffer and blocks for the next frame, reporting
// false when the frame ring has closed.
func (f *frameStream) next() bool {
	if f.cur != nil {
		putFrameBuf(f.cur)
		f.cur = nil
		f.pos = 0
	}
	b, ok := <-f.ing.frames
	if !ok {
		return false
	}
	f.cur, f.pos = b, 0
	return true
}

// err is the terminal state once the frame ring has closed: the stage-1
// error, or a clean io.EOF after the stream terminator.
func (f *frameStream) err() error {
	if e := f.ing.readErr; e != nil {
		return e
	}
	return io.EOF
}

func (f *frameStream) ReadByte() (byte, error) {
	for f.pos >= len(f.cur) {
		if !f.next() {
			return 0, f.err()
		}
	}
	b := f.cur[f.pos]
	f.pos++
	return b, nil
}

func (f *frameStream) Read(p []byte) (int, error) {
	for f.pos >= len(f.cur) {
		if !f.next() {
			return 0, f.err()
		}
	}
	n := copy(p, f.cur[f.pos:])
	f.pos += n
	return n, nil
}

func (f *frameStream) Buffered() int { return len(f.cur) - f.pos }

func (f *frameStream) Peek(n int) ([]byte, error) {
	if rem := len(f.cur) - f.pos; n > rem {
		n = rem
	}
	return f.cur[f.pos : f.pos+n], nil
}

func (f *frameStream) Discard(n int) (int, error) {
	if rem := len(f.cur) - f.pos; n > rem {
		n = rem
	}
	f.pos += n
	return n, nil
}
