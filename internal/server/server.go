package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/sig"
	"ddprof/internal/telemetry"
	"ddprof/internal/trace"
)

// Config tunes the daemon. The zero value selects sensible defaults.
type Config struct {
	// MaxSessions caps concurrent client sessions; further connects are
	// refused with an error response. Default 64.
	MaxSessions int
	// WorkerBudget is the global pool of pipeline worker goroutines shared
	// by all sessions. Each session borrows up to WorkersPerSession from it;
	// when fewer than two are available a session falls back to an in-line
	// serial pipeline, which borrows none. Default 16.
	WorkerBudget int
	// WorkersPerSession is how many workers one session asks for when the
	// client gives no hint. Default 4.
	WorkersPerSession int
	// SessionSlots is the total signature slot budget per session, split
	// over that session's workers. Default 2^20.
	SessionSlots int
	// DefaultBackend is the store spec of sessions that request none
	// (resolved against the sig backend registry); empty selects the
	// default signature sized from SessionSlots. A handshake backend spec
	// overrides it; the legacy exact flag maps to "perfect".
	DefaultBackend string
	// MaxStoreBytes, when positive, is the daemon's per-session store
	// admission budget: a session whose backend's estimated footprint
	// (per-store bound × stores) exceeds it — or whose backend is
	// unbounded, like "perfect" or "shadow" — is refused at handshake.
	// 0 admits everything.
	MaxStoreBytes uint64
	// QueueCap is the per-worker queue capacity in chunks; small values make
	// pipeline backpressure reach the socket sooner. Default 32.
	QueueCap int
	// IdleTimeout is the slow-client deadline: a session that neither
	// delivers nor accepts a byte for this long is evicted. Default 30s.
	IdleTimeout time.Duration
	// MaxFrame caps one ingest frame; larger frames mark the session
	// corrupt. Default trace.DefaultMaxFrame.
	MaxFrame int
	// Registry receives daemon and pipeline telemetry. Default
	// telemetry.Default().
	Registry *telemetry.Registry
	// SnapshotInterval is the flight recorder's sampling period: how often
	// every Registry metric is copied into the timeline ring served at
	// /debug/timeline. Default 250ms.
	SnapshotInterval time.Duration
	// SnapshotSamples is the timeline ring size (most recent samples kept).
	// Default 1024; negative disables the background snapshotter entirely.
	SnapshotSamples int
	// TrackAccuracy enables live Eq. (2) accuracy telemetry on session
	// pipelines backed by approximate signatures (sig_fpr_measured_ppm vs
	// sig_fpr_predicted_ppm per worker on /metrics).
	TrackAccuracy bool
	// Logf, when set, receives one line per session lifecycle event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = 16
	}
	if c.WorkersPerSession <= 0 {
		c.WorkersPerSession = 4
	}
	if c.SessionSlots <= 0 {
		c.SessionSlots = 1 << 20
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 32
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = trace.DefaultMaxFrame
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 250 * time.Millisecond
	}
	if c.SnapshotSamples == 0 {
		c.SnapshotSamples = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Session states, exposed through /sessions.
const (
	stateHandshake = iota
	stateReceiving
	stateProfiling
	stateResponding
	stateDone
	stateEvicted
)

var stateNames = [...]string{"handshake", "receiving", "profiling", "responding", "done", "evicted"}

// session is one live client connection.
type session struct {
	id       uint64
	remote   string
	proto    string
	conn     net.Conn
	started  time.Time
	workers  atomic.Int32
	state    atomic.Int32
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	events   atomic.Uint64
}

// SessionInfo is the /sessions JSON row for one live session.
type SessionInfo struct {
	ID         uint64  `json:"id"`
	Remote     string  `json:"remote"`
	Proto      string  `json:"proto"`
	State      string  `json:"state"`
	Workers    int     `json:"workers"`
	BytesIn    uint64  `json:"bytes_in"`
	BytesOut   uint64  `json:"bytes_out"`
	Events     uint64  `json:"events"`
	AgeSeconds float64 `json:"age_seconds"`
}

// Server is the ddprofd daemon: it owns the session table, the global
// worker budget, and the telemetry registry.
type Server struct {
	cfg  Config
	pipe *telemetry.Pipeline
	snap *telemetry.Snapshotter

	mu        sync.Mutex
	sessions  map[uint64]*session
	listeners map[net.Listener]struct{}
	nextID    uint64
	budget    int
	draining  bool
	sessWG    sync.WaitGroup

	cAccepted  *telemetry.Counter
	cRefused   *telemetry.Counter
	cEvicted   *telemetry.Counter
	cCompleted *telemetry.Counter
	cBytesIn   *telemetry.Counter
	cBytesOut  *telemetry.Counter
	gActive    *telemetry.Gauge
	gBudget    *telemetry.Gauge
}

// New returns a daemon ready to Serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:        cfg,
		pipe:       reg.Pipeline("pipeline"),
		sessions:   make(map[uint64]*session),
		listeners:  make(map[net.Listener]struct{}),
		budget:     cfg.WorkerBudget,
		cAccepted:  reg.Counter("server_sessions_accepted_total"),
		cRefused:   reg.Counter("server_sessions_refused_total"),
		cEvicted:   reg.Counter("server_sessions_evicted_total"),
		cCompleted: reg.Counter("server_sessions_completed_total"),
		cBytesIn:   reg.Counter("server_bytes_in_total"),
		cBytesOut:  reg.Counter("server_bytes_out_total"),
		gActive:    reg.Gauge("server_sessions_active"),
		gBudget:    reg.Gauge("server_worker_budget_available"),
	}
	s.gBudget.Set(int64(s.budget))
	if cfg.SnapshotSamples > 0 {
		s.snap = telemetry.NewSnapshotter(reg, cfg.SnapshotInterval, cfg.SnapshotSamples)
		s.snap.Start()
	}
	return s
}

// Snapshotter returns the daemon's flight recorder, or nil when disabled
// (Config.SnapshotSamples < 0).
func (s *Server) Snapshotter() *telemetry.Snapshotter { return s.snap }

// Serve accepts sessions on ln until the listener fails or the server
// drains. It blocks; run one goroutine per listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: draining")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handleConn(conn)
	}
}

// errRefused marks connects rejected before a session started.
var errRefused = errors.New("refused")

// handleConn runs one connection to completion.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	sess, err := s.register(conn)
	if err != nil {
		s.cRefused.Inc()
		// Best-effort error response so the client sees why.
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		writeResponse(conn, statusErr, []byte(err.Error()))
		return
	}
	defer s.unregister(sess)
	defer s.sessWG.Done()

	if err := s.runSession(sess); err != nil {
		sess.state.Store(stateEvicted)
		s.cEvicted.Inc()
		s.cfg.Logf("ddprofd: session %d (%s): evicted: %v", sess.id, sess.remote, err)
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		writeResponse(conn, statusErr, []byte(err.Error()))
		return
	}
	sess.state.Store(stateDone)
	s.cCompleted.Inc()
	s.cfg.Logf("ddprofd: session %d (%s): completed, %d events, %d bytes in, %d bytes out",
		sess.id, sess.remote, sess.events.Load(), sess.bytesIn.Load(), sess.bytesOut.Load())
}

// register admits a connection as a session, or explains why not.
func (s *Server) register(conn net.Conn) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errors.New("ddprofd: draining, not accepting sessions")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, fmt.Errorf("ddprofd: session limit (%d) reached", s.cfg.MaxSessions)
	}
	s.nextID++
	sess := &session{
		id:      s.nextID,
		remote:  conn.RemoteAddr().String(),
		proto:   conn.RemoteAddr().Network(),
		conn:    conn,
		started: time.Now(),
	}
	s.sessions[sess.id] = sess
	s.gActive.Set(int64(len(s.sessions)))
	s.cAccepted.Inc()
	s.sessWG.Add(1)
	return sess, nil
}

func (s *Server) unregister(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.gActive.Set(int64(len(s.sessions)))
	s.mu.Unlock()
}

// resolveBackend picks a session's store spec — handshake spec first, then
// the legacy exact flag ("perfect"), then the daemon default — and enforces
// the daemon's store admission budget over the session's store count.
func (c Config) resolveBackend(h *handshake, stores, slotsPerStore int) (string, error) {
	spec := h.Backend
	if spec == "" && h.Flags&flagExact != 0 {
		spec = "perfect"
	}
	if spec == "" {
		spec = c.DefaultBackend
	}
	bytes, bounded, err := sig.EstimateStoreBytes(spec, slotsPerStore)
	if err != nil {
		return "", err
	}
	if c.MaxStoreBytes > 0 {
		if !bounded {
			return "", fmt.Errorf("backend %q has no memory bound; daemon store budget is %d bytes", spec, c.MaxStoreBytes)
		}
		if total := bytes * uint64(stores); total > c.MaxStoreBytes {
			return "", fmt.Errorf("backend %q needs %d bytes over %d stores; daemon store budget is %d bytes",
				spec, total, stores, c.MaxStoreBytes)
		}
	}
	return spec, nil
}

// acquireWorkers borrows up to want workers from the global budget; a return
// of 0 means "run serial, borrow nothing".
func (s *Server) acquireWorkers(hint int) int {
	want := hint
	if want <= 0 {
		want = s.cfg.WorkersPerSession
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if want > s.budget {
		want = s.budget
	}
	if want < 2 {
		return 0
	}
	s.budget -= want
	s.gBudget.Set(int64(s.budget))
	return want
}

func (s *Server) releaseWorkers(n int) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	s.budget += n
	s.gBudget.Set(int64(s.budget))
	s.mu.Unlock()
}

// timedConn enforces the slow-client deadline on every read and write and
// feeds the per-session and daemon byte counters.
type timedConn struct {
	net.Conn
	idle time.Duration
	sess *session
	srv  *Server
}

func (t *timedConn) Read(p []byte) (int, error) {
	if err := t.Conn.SetReadDeadline(time.Now().Add(t.idle)); err != nil {
		return 0, err
	}
	n, err := t.Conn.Read(p)
	if n > 0 {
		t.sess.bytesIn.Add(uint64(n))
		t.srv.cBytesIn.Add(uint64(n))
	}
	return n, err
}

func (t *timedConn) Write(p []byte) (int, error) {
	if err := t.Conn.SetWriteDeadline(time.Now().Add(t.idle)); err != nil {
		return 0, err
	}
	n, err := t.Conn.Write(p)
	if n > 0 {
		t.sess.bytesOut.Add(uint64(n))
		t.srv.cBytesOut.Add(uint64(n))
	}
	return n, err
}

// runSession executes the protocol over one admitted connection. Any error
// evicts the session; the pipeline is always flushed so no worker goroutine
// outlives its session.
func (s *Server) runSession(sess *session) error {
	tc := &timedConn{Conn: sess.conn, idle: s.cfg.IdleTimeout, sess: sess, srv: s}
	br := bufio.NewReaderSize(tc, 1<<16)

	h, err := readHandshake(br)
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}

	workers := s.acquireWorkers(h.Workers)
	defer s.releaseWorkers(workers)
	sess.workers.Store(int32(max(workers, 1)))

	ccfg := core.Config{
		Meta:          h.Meta,
		RaceCheck:     h.Flags&flagRaceCheck != 0,
		Metrics:       s.pipe,
		QueueCap:      s.cfg.QueueCap,
		TrackAccuracy: s.cfg.TrackAccuracy,
	}
	if workers >= 2 {
		ccfg.Mode = core.ModeParallel
		ccfg.Workers = workers
		ccfg.SlotsPerWorker = s.cfg.SessionSlots / workers
		ccfg.RedistributeEvery = 50000
	} else {
		ccfg.Mode = core.ModeSerial
		ccfg.SlotsPerWorker = s.cfg.SessionSlots
	}
	ccfg.Backend, err = s.cfg.resolveBackend(h, max(workers, 1), ccfg.SlotsPerWorker)
	if err != nil {
		return fmt.Errorf("session store: %w", err)
	}
	prof, err := core.New(ccfg)
	if err != nil {
		// A rejected Config here means the daemon's own limits are broken
		// (handshake values are already clamped); surface it, don't panic.
		return fmt.Errorf("session pipeline: %w", err)
	}
	flushed := false
	var res *core.Result
	flush := func() *core.Result {
		flushed = true
		res = prof.Flush()
		return res
	}
	defer func() {
		if !flushed {
			flush() // join pipeline workers even on eviction
		}
		// The daemon lives through thousands of sessions: hand the merged
		// set's slab pages back to the shared pool so the next session's
		// workers fill recycled pages instead of re-growing from zero. The
		// response bytes (if any) were already copied out of the set.
		if res != nil && res.Deps != nil {
			res.Deps.Release()
		}
	}()

	sess.state.Store(stateReceiving)
	fr := trace.NewFrameReader(br, s.cfg.MaxFrame)
	tr, err := trace.NewReader(fr)
	if err != nil {
		return fmt.Errorf("trace stream: %w", err)
	}
	// Range records feed the pipeline's bulk path when it has one (the
	// serial and parallel typed pipelines); otherwise they expand here. The
	// reader has already validated range element kinds (Read/Write only).
	ranged, hasRange := prof.(interface{ AccessRange(event.Range) })
	for {
		rec, err := tr.NextRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("trace stream: %w", err)
		}
		if rec.IsRange {
			if hasRange {
				ranged.AccessRange(rec.Range)
			} else {
				for j := uint32(0); j < rec.Range.Count; j++ {
					prof.Access(rec.Range.At(j))
				}
			}
			sess.events.Add(uint64(rec.Range.Count))
			continue
		}
		a := rec.Access
		// Pipeline control kinds are daemon-internal; a stream carrying them
		// is corrupt (a hostile one could hijack the migration mailboxes).
		if a.Kind > event.Remove {
			return fmt.Errorf("trace stream: event %d: control kind %v not allowed", tr.Count()-1, a.Kind)
		}
		prof.Access(a)
		sess.events.Add(1)
	}

	sess.state.Store(stateProfiling)
	res = flush()

	sess.state.Store(stateResponding)
	tab := loc.NewTable()
	for _, n := range h.VarNames {
		tab.Var(n)
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf, res.Deps, tab, nil); err != nil {
		return fmt.Errorf("encoding profile: %w", err)
	}
	bw := bufio.NewWriterSize(tc, 1<<16)
	if err := writeResponse(bw, statusOK, buf.Bytes()); err != nil {
		return fmt.Errorf("writing response: %w", err)
	}
	return bw.Flush()
}

// Sessions snapshots the live session table, ordered by ID.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, SessionInfo{
			ID:         sess.id,
			Remote:     sess.remote,
			Proto:      sess.proto,
			State:      stateNames[sess.state.Load()],
			Workers:    int(sess.workers.Load()),
			BytesIn:    sess.bytesIn.Load(),
			BytesOut:   sess.bytesOut.Load(),
			Events:     sess.events.Load(),
			AgeSeconds: time.Since(sess.started).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ActiveSessions returns the number of live sessions.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// HTTPHandler serves the observability endpoints:
//
//	/metrics        — plain-text metric exposition (telemetry.Registry.WriteText)
//	/sessions       — JSON array of live sessions
//	/debug/timeline — JSON time series of all metrics (flight-recorder ring)
//	/debug/pprof/   — the standard Go runtime profiles
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.cfg.Registry.Handler())
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Sessions())
	})
	if s.snap != nil {
		mux.Handle("/debug/timeline", s.snap.TimelineHandler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Shutdown drains the daemon: listeners close immediately (new connects are
// refused), in-flight sessions run to completion, and when ctx expires the
// remaining connections are force-closed. It returns nil if every session
// finished in time, ctx.Err() otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.snap != nil {
		s.snap.Stop() // final sample records the end state
	}
	s.mu.Lock()
	s.draining = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.sessWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.conn.Close() // unblocks session reads/writes
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
