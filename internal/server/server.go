package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
	"ddprof/internal/sig"
	"ddprof/internal/telemetry"
	"ddprof/internal/trace"
)

// Config tunes the daemon. The zero value selects sensible defaults.
type Config struct {
	// MaxSessions caps concurrent client sessions; further connects are
	// refused with an error response. Default 64.
	MaxSessions int
	// WorkerBudget is the global pool of pipeline worker goroutines shared
	// by all sessions. Each session borrows up to WorkersPerSession from it;
	// when fewer than two are available a session falls back to an in-line
	// serial pipeline, which borrows none. Default 16.
	WorkerBudget int
	// WorkersPerSession is how many workers one session asks for when the
	// client gives no hint. Default 4.
	WorkersPerSession int
	// SessionSlots is the total signature slot budget per session, split
	// over that session's workers. Default 2^20.
	SessionSlots int
	// DefaultBackend is the store spec of sessions that request none
	// (resolved against the sig backend registry); empty selects the
	// default signature sized from SessionSlots. A handshake backend spec
	// overrides it; the legacy exact flag maps to "perfect".
	DefaultBackend string
	// MaxStoreBytes, when positive, is the daemon's per-session store
	// admission budget: a session whose backend's estimated footprint
	// (per-store bound × stores) exceeds it — or whose backend is
	// unbounded, like "perfect" or "shadow" — is refused at handshake.
	// 0 admits everything.
	MaxStoreBytes uint64
	// QueueCap is the per-worker queue capacity in chunks; small values make
	// pipeline backpressure reach the socket sooner. Default 32.
	QueueCap int
	// IdleTimeout is the slow-client deadline: a session that neither
	// delivers nor accepts a byte for this long is evicted. Default 30s.
	IdleTimeout time.Duration
	// MaxFrame caps one ingest frame; larger frames mark the session
	// corrupt. Default trace.DefaultMaxFrame.
	MaxFrame int
	// ReadBuf sizes a session's socket read path: the kernel receive buffer
	// (SetReadBuffer, where the transport supports it) and the bufio layer
	// the frame reader pulls from. Default 64KiB.
	ReadBuf int
	// DecodeDepth bounds the per-session decode stage: how many pooled
	// frames (and decoded chunks) may sit in flight between the socket
	// goroutine, the decode goroutine, and the profiling loop. Smaller
	// values push pipeline backpressure to the socket sooner; larger ones
	// buy more overlap. Default 4.
	DecodeDepth int
	// Registry receives daemon and pipeline telemetry. Default
	// telemetry.Default().
	Registry *telemetry.Registry
	// SnapshotInterval is the flight recorder's sampling period: how often
	// every Registry metric is copied into the timeline ring served at
	// /debug/timeline. Default 250ms.
	SnapshotInterval time.Duration
	// SnapshotSamples is the timeline ring size (most recent samples kept).
	// Default 1024; negative disables the background snapshotter entirely.
	SnapshotSamples int
	// TrackAccuracy enables live Eq. (2) accuracy telemetry on session
	// pipelines backed by approximate signatures (sig_fpr_measured_ppm vs
	// sig_fpr_predicted_ppm per worker on /metrics).
	TrackAccuracy bool
	// EpochInterval is the live observatory's epoch ticker: how often an
	// ingesting session cuts an epoch and streams the delta to its watch
	// subscribers. 0 disables the ticker; explicit EpochMark records in the
	// trace stream cut epochs regardless.
	EpochInterval time.Duration
	// SessionSeriesMax caps the per-session labeled series on /metrics
	// (server_session_events_total{session="..."}). Sessions beyond the cap
	// account to the shared session="overflow" series; a session's own series
	// is evicted from the registry when it closes. Default 64.
	SessionSeriesMax int
	// Logf, when set, receives one line per session lifecycle event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = 16
	}
	if c.WorkersPerSession <= 0 {
		c.WorkersPerSession = 4
	}
	if c.SessionSlots <= 0 {
		c.SessionSlots = 1 << 20
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 32
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = trace.DefaultMaxFrame
	}
	if c.ReadBuf <= 0 {
		c.ReadBuf = 1 << 16
	}
	if c.DecodeDepth <= 0 {
		c.DecodeDepth = 4
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 250 * time.Millisecond
	}
	if c.SnapshotSamples == 0 {
		c.SnapshotSamples = 1024
	}
	if c.SessionSeriesMax <= 0 {
		c.SessionSeriesMax = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Session states, exposed through /sessions.
const (
	stateHandshake = iota
	stateReceiving
	stateProfiling
	stateResponding
	stateDone
	stateEvicted
)

var stateNames = [...]string{"handshake", "receiving", "profiling", "responding", "done", "evicted"}

// session is one live client connection.
type session struct {
	id       uint64
	remote   string
	proto    string
	conn     net.Conn
	started  time.Time
	workers  atomic.Int32
	state    atomic.Int32
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	events   atomic.Uint64
}

// SessionInfo is the /sessions JSON row for one live session.
type SessionInfo struct {
	ID         uint64  `json:"id"`
	Remote     string  `json:"remote"`
	Proto      string  `json:"proto"`
	State      string  `json:"state"`
	Workers    int     `json:"workers"`
	BytesIn    uint64  `json:"bytes_in"`
	BytesOut   uint64  `json:"bytes_out"`
	Events     uint64  `json:"events"`
	AgeSeconds float64 `json:"age_seconds"`
}

// Server is the ddprofd daemon: it owns the session table, the global
// worker budget, and the telemetry registry.
type Server struct {
	cfg  Config
	pipe *telemetry.Pipeline
	snap *telemetry.Snapshotter

	mu        sync.Mutex
	sessions  map[uint64]*session
	listeners map[net.Listener]struct{}
	nextID    uint64
	budget    int
	draining  bool
	sessWG    sync.WaitGroup
	// sessSeries counts live per-session labeled metric series, enforcing
	// Config.SessionSeriesMax (guarded by mu like the session table).
	sessSeries int

	// The observatory table: one per profiling session, kept past completion
	// for queries (obsDone is the FIFO retention order). obsWaiters are watch
	// subscriptions for "the next session" (WatchSession 0 with none active).
	obsMu      sync.Mutex
	obs        map[uint64]*observatory
	obsDone    []uint64
	obsWaiters []chan *observatory

	cAccepted  *telemetry.Counter
	cRefused   *telemetry.Counter
	cEvicted   *telemetry.Counter
	cCompleted *telemetry.Counter
	cBytesIn   *telemetry.Counter
	cBytesOut  *telemetry.Counter
	gActive    *telemetry.Gauge
	gBudget    *telemetry.Gauge
}

// New returns a daemon ready to Serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:        cfg,
		pipe:       reg.Pipeline("pipeline"),
		sessions:   make(map[uint64]*session),
		listeners:  make(map[net.Listener]struct{}),
		obs:        make(map[uint64]*observatory),
		budget:     cfg.WorkerBudget,
		cAccepted:  reg.Counter("server_sessions_accepted_total"),
		cRefused:   reg.Counter("server_sessions_refused_total"),
		cEvicted:   reg.Counter("server_sessions_evicted_total"),
		cCompleted: reg.Counter("server_sessions_completed_total"),
		cBytesIn:   reg.Counter("server_bytes_in_total"),
		cBytesOut:  reg.Counter("server_bytes_out_total"),
		gActive:    reg.Gauge("server_sessions_active"),
		gBudget:    reg.Gauge("server_worker_budget_available"),
	}
	s.gBudget.Set(int64(s.budget))
	if cfg.SnapshotSamples > 0 {
		s.snap = telemetry.NewSnapshotter(reg, cfg.SnapshotInterval, cfg.SnapshotSamples)
		s.snap.Start()
	}
	return s
}

// Snapshotter returns the daemon's flight recorder, or nil when disabled
// (Config.SnapshotSamples < 0).
func (s *Server) Snapshotter() *telemetry.Snapshotter { return s.snap }

// Serve accepts sessions on ln until the listener fails or the server
// drains. It blocks; run one goroutine per listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: draining")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handleConn(conn)
	}
}

// errRefused marks connects rejected before a session started.
var errRefused = errors.New("refused")

// handleConn runs one connection to completion.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	sess, err := s.register(conn)
	if err != nil {
		s.cRefused.Inc()
		// Best-effort error response so the client sees why.
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		writeResponse(conn, statusErr, []byte(err.Error()))
		return
	}
	defer s.unregister(sess)
	defer s.sessWG.Done()

	if err := s.runSession(sess); err != nil {
		sess.state.Store(stateEvicted)
		s.cEvicted.Inc()
		s.cfg.Logf("ddprofd: session %d (%s): evicted: %v", sess.id, sess.remote, err)
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		writeResponse(conn, statusErr, []byte(err.Error()))
		return
	}
	sess.state.Store(stateDone)
	s.cCompleted.Inc()
	s.cfg.Logf("ddprofd: session %d (%s): completed, %d events, %d bytes in, %d bytes out",
		sess.id, sess.remote, sess.events.Load(), sess.bytesIn.Load(), sess.bytesOut.Load())
}

// register admits a connection as a session, or explains why not.
func (s *Server) register(conn net.Conn) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errors.New("ddprofd: draining, not accepting sessions")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, fmt.Errorf("ddprofd: session limit (%d) reached", s.cfg.MaxSessions)
	}
	s.nextID++
	sess := &session{
		id:      s.nextID,
		remote:  conn.RemoteAddr().String(),
		proto:   conn.RemoteAddr().Network(),
		conn:    conn,
		started: time.Now(),
	}
	s.sessions[sess.id] = sess
	s.gActive.Set(int64(len(s.sessions)))
	s.cAccepted.Inc()
	s.sessWG.Add(1)
	return sess, nil
}

func (s *Server) unregister(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.gActive.Set(int64(len(s.sessions)))
	s.mu.Unlock()
}

// resolveBackend picks a session's store spec — handshake spec first, then
// the legacy exact flag ("perfect"), then the daemon default — and enforces
// the daemon's store admission budget over the session's store count.
func (c Config) resolveBackend(h *handshake, stores, slotsPerStore int) (string, error) {
	spec := h.Backend
	if spec == "" && h.Flags&flagExact != 0 {
		spec = "perfect"
	}
	if spec == "" {
		spec = c.DefaultBackend
	}
	bytes, bounded, err := sig.EstimateStoreBytes(spec, slotsPerStore)
	if err != nil {
		return "", err
	}
	if c.MaxStoreBytes > 0 {
		if !bounded {
			return "", fmt.Errorf("backend %q has no memory bound; daemon store budget is %d bytes", spec, c.MaxStoreBytes)
		}
		if total := bytes * uint64(stores); total > c.MaxStoreBytes {
			return "", fmt.Errorf("backend %q needs %d bytes over %d stores; daemon store budget is %d bytes",
				spec, total, stores, c.MaxStoreBytes)
		}
	}
	return spec, nil
}

// acquireWorkers borrows up to want workers from the global budget; a return
// of 0 means "run serial, borrow nothing".
func (s *Server) acquireWorkers(hint int) int {
	want := hint
	if want <= 0 {
		want = s.cfg.WorkersPerSession
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if want > s.budget {
		want = s.budget
	}
	if want < 2 {
		return 0
	}
	s.budget -= want
	s.gBudget.Set(int64(s.budget))
	return want
}

func (s *Server) releaseWorkers(n int) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	s.budget += n
	s.gBudget.Set(int64(s.budget))
	s.mu.Unlock()
}

// attachObservatory registers a new session's observatory and hands it to
// every watch subscription waiting for "the next session".
func (s *Server) attachObservatory(id uint64, workers int, varNames []string) *observatory {
	o := newObservatory(id, workers, varNames)
	s.obsMu.Lock()
	s.obs[id] = o
	waiters := s.obsWaiters
	s.obsWaiters = nil
	s.obsMu.Unlock()
	for _, w := range waiters {
		w <- o // buffered, never blocks
	}
	return o
}

// retireObservatory moves a finished session's observatory into the retained
// ring (ok) or drops it (session evicted), releasing whatever falls out.
func (s *Server) retireObservatory(o *observatory, ok bool) {
	var victim *observatory
	s.obsMu.Lock()
	if !ok {
		victim = o
		delete(s.obs, o.sessionID)
	} else {
		s.obsDone = append(s.obsDone, o.sessionID)
		if len(s.obsDone) > obsRetained {
			vid := s.obsDone[0]
			s.obsDone = s.obsDone[1:]
			victim = s.obs[vid]
			delete(s.obs, vid)
		}
	}
	s.obsMu.Unlock()
	if victim != nil {
		victim.release()
	}
}

// observatoryByID returns the observatory of a live or retained session.
func (s *Server) observatoryByID(id uint64) *observatory {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	return s.obs[id]
}

// findObservatory resolves a watch target: a session by ID (live or
// retained), or — for ID 0 — the newest active session, waiting up to wait
// for one to start when none is.
func (s *Server) findObservatory(id uint64, wait time.Duration) (*observatory, error) {
	if id != 0 {
		if o := s.observatoryByID(id); o != nil {
			return o, nil
		}
		return nil, fmt.Errorf("ddprofd: no session %d (live or retained)", id)
	}
	s.obsMu.Lock()
	var best *observatory
	for _, o := range s.obs {
		if o.active() && (best == nil || o.sessionID > best.sessionID) {
			best = o
		}
	}
	if best != nil {
		s.obsMu.Unlock()
		return best, nil
	}
	ch := make(chan *observatory, 1)
	s.obsWaiters = append(s.obsWaiters, ch)
	s.obsMu.Unlock()
	select {
	case o := <-ch:
		return o, nil
	case <-time.After(wait):
		s.obsMu.Lock()
		for i, w := range s.obsWaiters {
			if w == ch {
				s.obsWaiters = append(s.obsWaiters[:i], s.obsWaiters[i+1:]...)
				break
			}
		}
		s.obsMu.Unlock()
		select {
		case o := <-ch: // attach raced the timeout; take it
			return o, nil
		default:
		}
		return nil, errors.New("ddprofd: no active session to watch")
	}
}

// sessionSeries is one session's labeled telemetry: the events counter plus
// the ingest-stage instruments — decode-stage depth, pooled-frame reuse
// ratio, batch-size histogram. They appear on /metrics (and therefore in the
// flight-recorder timeline, which snapshots every registry metric).
type sessionSeries struct {
	events  *telemetry.Counter
	depth   *telemetry.Gauge
	reuse   *telemetry.Gauge
	batch   *telemetry.Histogram
	release func()
}

// sessionSeries returns a session's labeled series bundle and arranges its
// release. Cardinality on /metrics is bounded: one series slot covers all of
// a session's instruments, at most SessionSeriesMax slots exist at once,
// sessions past the cap share the session="overflow" series, and a session's
// own series are removed from the registry when it closes.
func (s *Server) sessionSeries(id uint64) *sessionSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	label := "overflow"
	overflow := s.sessSeries >= s.cfg.SessionSeriesMax
	if !overflow {
		s.sessSeries++
		label = strconv.FormatUint(id, 10)
	}
	names := [4]string{
		fmt.Sprintf("server_session_events_total{session=%q}", label),
		fmt.Sprintf("server_session_decode_depth{session=%q}", label),
		fmt.Sprintf("server_session_frame_reuse_permille{session=%q}", label),
		fmt.Sprintf("server_session_batch_events{session=%q}", label),
	}
	ss := &sessionSeries{
		events:  s.cfg.Registry.Counter(names[0]),
		depth:   s.cfg.Registry.Gauge(names[1]),
		reuse:   s.cfg.Registry.Gauge(names[2]),
		batch:   s.cfg.Registry.Histogram(names[3]),
		release: func() {},
	}
	if !overflow {
		var once sync.Once
		ss.release = func() {
			once.Do(func() {
				s.cfg.Registry.Remove(names[0], names[1], names[2], names[3])
				s.mu.Lock()
				s.sessSeries--
				s.mu.Unlock()
			})
		}
	}
	return ss
}

// timedConn enforces the slow-client deadline on every read and write and
// feeds the per-session and daemon byte counters.
type timedConn struct {
	net.Conn
	idle time.Duration
	sess *session
	srv  *Server
}

func (t *timedConn) Read(p []byte) (int, error) {
	if err := t.Conn.SetReadDeadline(time.Now().Add(t.idle)); err != nil {
		return 0, err
	}
	n, err := t.Conn.Read(p)
	if n > 0 {
		t.sess.bytesIn.Add(uint64(n))
		t.srv.cBytesIn.Add(uint64(n))
	}
	return n, err
}

func (t *timedConn) Write(p []byte) (int, error) {
	if err := t.Conn.SetWriteDeadline(time.Now().Add(t.idle)); err != nil {
		return 0, err
	}
	n, err := t.Conn.Write(p)
	if n > 0 {
		t.sess.bytesOut.Add(uint64(n))
		t.srv.cBytesOut.Add(uint64(n))
	}
	return n, err
}

// runSession executes the protocol over one admitted connection. Any error
// evicts the session; the pipeline is always flushed so no worker goroutine
// outlives its session.
func (s *Server) runSession(sess *session) error {
	tc := &timedConn{Conn: sess.conn, idle: s.cfg.IdleTimeout, sess: sess, srv: s}
	if rb, ok := sess.conn.(interface{ SetReadBuffer(int) error }); ok {
		// Best effort: TCP and Unix sockets support it, a test pipe may not.
		rb.SetReadBuffer(s.cfg.ReadBuf)
	}
	br := bufio.NewReaderSize(tc, s.cfg.ReadBuf)

	h, err := readHandshake(br)
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	if h.Watch {
		return s.runWatch(sess, h, tc)
	}

	workers := s.acquireWorkers(h.Workers)
	defer s.releaseWorkers(workers)
	sess.workers.Store(int32(max(workers, 1)))

	// The live observatory: workers deliver epoch-delta extractions here,
	// watch subscribers and the HTTP query endpoints read from it. Bounds
	// tracking feeds the address-range provenance query.
	obs := s.attachObservatory(sess.id, max(workers, 1), h.VarNames)
	obsOK := false
	defer func() {
		if !obsOK {
			obs.abort()
		}
		s.retireObservatory(obs, obsOK)
	}()
	series := s.sessionSeries(sess.id)
	defer series.release()

	ccfg := core.Config{
		Meta:          h.Meta,
		RaceCheck:     h.Flags&flagRaceCheck != 0,
		Metrics:       s.pipe,
		QueueCap:      s.cfg.QueueCap,
		TrackAccuracy: s.cfg.TrackAccuracy,
		OnEpochDelta:  obs.offer,
		TrackBounds:   true,
	}
	if workers >= 2 {
		ccfg.Mode = core.ModeParallel
		ccfg.Workers = workers
		ccfg.SlotsPerWorker = s.cfg.SessionSlots / workers
		ccfg.RedistributeEvery = 50000
	} else {
		ccfg.Mode = core.ModeSerial
		ccfg.SlotsPerWorker = s.cfg.SessionSlots
	}
	ccfg.Backend, err = s.cfg.resolveBackend(h, max(workers, 1), ccfg.SlotsPerWorker)
	if err != nil {
		return fmt.Errorf("session store: %w", err)
	}
	prof, err := core.New(ccfg)
	if err != nil {
		// A rejected Config here means the daemon's own limits are broken
		// (handshake values are already clamped); surface it, don't panic.
		return fmt.Errorf("session pipeline: %w", err)
	}
	flushed := false
	var res *core.Result
	flush := func() *core.Result {
		flushed = true
		res = prof.Flush()
		return res
	}
	defer func() {
		if !flushed {
			flush() // join pipeline workers even on eviction
		}
		// The daemon lives through thousands of sessions: hand the merged
		// set's slab pages back to the shared pool so the next session's
		// workers fill recycled pages instead of re-growing from zero. The
		// response bytes (if any) were already copied out of the set.
		if res != nil && res.Deps != nil {
			res.Deps.Release()
		}
	}()

	// The epoch clock. Marks come from two sources — explicit EpochMark
	// records in the trace and the daemon's interval ticker — and both
	// advance one server-side monotone counter, so frame epochs are ordered
	// no matter how the two interleave. The ticker only raises a flag; the
	// mark itself is cut on the ingest goroutine between records, which the
	// sequential-target producer requires.
	marker, _ := prof.(core.EpochMarker)
	var epoch uint32
	var tickPending atomic.Bool
	if s.cfg.EpochInterval > 0 && marker != nil {
		tk := time.NewTicker(s.cfg.EpochInterval)
		tickStop := make(chan struct{})
		go func() {
			for {
				select {
				case <-tk.C:
					tickPending.Store(true)
				case <-tickStop:
					return
				}
			}
		}()
		defer func() {
			tk.Stop()
			close(tickStop)
		}()
	}

	sess.state.Store(stateReceiving)
	// Two-stage ingest: the socket goroutine reads frames into pooled
	// buffers, the decode goroutine batch-decodes them into chunks, and this
	// goroutine feeds validated batches to the pipeline's bulk seam —
	// overlapping socket read, decode, and profiling. Epoch marks (explicit
	// EpochMark records and the interval ticker's pending flag) are still cut
	// here, on the Access-calling goroutine, at exactly their stream
	// positions: the decoder carries explicit marks as chunk slots and
	// feedBatch splits batches around them.
	ing := startIngest(sess.conn, br, s.cfg.MaxFrame, s.cfg.DecodeDepth)
	defer ing.stop()
	for ib := range ing.out {
		if tickPending.Load() && marker != nil {
			tickPending.Store(false)
			epoch++
			marker.EpochMark(epoch)
		}
		n, err := feedBatch(prof, marker, ib, &epoch)
		sess.events.Add(n)
		series.events.Add(n)
		series.batch.Observe(int64(len(ib.c.Events)))
		series.depth.Set(int64(len(ing.frames)))
		if r, fr := ing.reused.Load(), ing.fresh.Load(); r+fr > 0 {
			series.reuse.Set(int64(r * 1000 / (r + fr)))
		}
		ing.free <- ib.c
		if err != nil {
			return err
		}
	}
	if err := ing.err(); err != nil {
		return fmt.Errorf("trace stream: %w", err)
	}

	sess.state.Store(stateProfiling)
	// Cut one last epoch at end-of-stream so every worker ships its tail —
	// and its bounds snapshot — before the merge; the post-merge remainder
	// below is then normally empty, but extracting it keeps the "union of
	// deltas equals the final profile" guarantee unconditional.
	if marker != nil {
		epoch++
		marker.EpochMark(epoch)
	}
	res = flush()
	fin := &core.EpochDelta{Epoch: epoch + 1, Deps: dep.NewSet()}
	res.Deps.ExtractDelta(fin.Deps)
	for id, ks := range res.Carried {
		out := dep.NewSet()
		if ks.ExtractDelta(out) == 0 {
			out.Release()
			continue
		}
		if fin.Loops == nil {
			fin.Loops = make(map[prog.LoopID]*dep.Set)
		}
		fin.Loops[id] = out
	}
	obs.finish(fin)
	obsOK = true

	sess.state.Store(stateResponding)
	tab := loc.NewTable()
	for _, n := range h.VarNames {
		tab.Var(n)
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf, res.Deps, tab, nil); err != nil {
		return fmt.Errorf("encoding profile: %w", err)
	}
	bw := bufio.NewWriterSize(tc, 1<<16)
	if err := writeResponse(bw, statusOK, buf.Bytes()); err != nil {
		return fmt.Errorf("writing response: %w", err)
	}
	return bw.Flush()
}

// feedBatch validates one decoded batch and feeds it to the pipeline's bulk
// seam, splitting at EpochMark slots so explicit epoch cuts land at exactly
// their record position. It returns the number of target events fed (ranges
// weighted by element count). Pipeline control kinds beyond Remove are
// daemon-internal; a stream carrying them is corrupt (a hostile one could
// hijack the migration mailboxes).
func feedBatch(prof core.Profiler, marker core.EpochMarker, b ingestBatch, epoch *uint32) (uint64, error) {
	evs, rngs := b.c.Events, b.c.Ranges
	if !b.ctl {
		// Pure data batch: no epoch marks to cut, no control kinds to
		// reject, and the decoder already counted the events.
		prof.AccessBatch(evs, rngs)
		return b.events, nil
	}
	var events, weight uint64
	seg := 0
	for i := range evs {
		a := &evs[i]
		switch {
		case a.Kind == event.RangeRef:
			n := uint64(rngs[a.Addr].Count)
			events += n
			weight += n
		case a.Kind == event.EpochMark:
			if i > seg {
				prof.AccessBatch(evs[seg:i], rngs)
			}
			seg = i + 1
			weight++
			if marker != nil {
				*epoch++
				marker.EpochMark(*epoch)
			}
		case a.Kind > event.Remove:
			if i > seg {
				prof.AccessBatch(evs[seg:i], rngs)
			}
			return events, fmt.Errorf("trace stream: event %d: control kind %v not allowed", b.base+weight, a.Kind)
		default:
			// A collapsed read slot stands for 1+Rep wire records.
			events += 1 + uint64(a.Rep)
			weight += 1 + uint64(a.Rep)
		}
	}
	if seg < len(evs) {
		prof.AccessBatch(evs[seg:], rngs)
	}
	return events, nil
}

// runWatch serves a watch subscription: it resolves the target session's
// observatory, replies with a bare statusOK byte, then streams epoch-delta
// frames until the session's final frame (or death). Each frame is flushed
// to the socket as it is cut, so subscribers see deltas while the session is
// still ingesting. A subscriber that cannot keep up is evicted rather than
// allowed to backpressure the profiling session.
func (s *Server) runWatch(sess *session, h *handshake, tc *timedConn) error {
	sess.workers.Store(0)
	if h.WatchSince > uint64(^uint32(0)) {
		return fmt.Errorf("watch: epoch %d overflows uint32", h.WatchSince)
	}
	o, err := s.findObservatory(h.WatchSession, s.cfg.IdleTimeout)
	if err != nil {
		return err
	}
	catch, sub, done := o.subscribe(uint32(h.WatchSince))
	defer o.unsubscribe(sub)

	sess.state.Store(stateResponding)
	bw := bufio.NewWriterSize(tc, 1<<16)
	if _, err := bw.Write([]byte{statusOK}); err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	dw := trace.NewDeltaWriter(bw)
	send := func(f obsFrame) error {
		err := dw.WriteFrame(f.DeltaFrame)
		// The frame's payload bytes are out of the pooled buffer once the
		// delta writer has copied them; release this subscriber's reference
		// whether or not the write stuck.
		f.pay.release()
		if err != nil {
			return fmt.Errorf("watch: writing frame: %w", err)
		}
		sess.events.Add(1)
		return bw.Flush()
	}
	sawFinal := false
	if catch != nil {
		if err := send(*catch); err != nil {
			return err
		}
		sawFinal = catch.Final
	}
	if !done {
		for f := range sub.ch {
			if err := send(f); err != nil {
				return err
			}
			if f.Final {
				sawFinal = true
			}
		}
	}
	if !sawFinal && !o.isAborted() {
		// The stream closed without a final frame while the session lives on
		// (or finished past us): this subscriber fell behind and was evicted
		// from the fan-out.
		return errors.New("watch: subscriber fell behind, evicted")
	}
	// An aborted session ends the stream with a clean terminator but no
	// frame marked final; the client knows no exact profile exists.
	if err := dw.Close(); err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	return bw.Flush()
}

// Sessions snapshots the live session table, ordered by ID.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, SessionInfo{
			ID:         sess.id,
			Remote:     sess.remote,
			Proto:      sess.proto,
			State:      stateNames[sess.state.Load()],
			Workers:    int(sess.workers.Load()),
			BytesIn:    sess.bytesIn.Load(),
			BytesOut:   sess.bytesOut.Load(),
			Events:     sess.events.Load(),
			AgeSeconds: time.Since(sess.started).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ActiveSessions returns the number of live sessions.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// HTTPHandler serves the observability endpoints:
//
//	/metrics        — plain-text metric exposition (telemetry.Registry.WriteText)
//	/sessions       — JSON array of live sessions
//	/debug/timeline — JSON time series of all metrics (flight-recorder ring)
//	/debug/pprof/   — the standard Go runtime profiles
//
// and the live observatory's provenance query API, answered from the
// session's observatory (live or retained) without pausing ingest:
//
//	GET  /sessions/{id}/deps?since=E        — dependences first observed at
//	                                          epoch E or later (0 = all)
//	GET  /sessions/{id}/loop/{L}/carried    — what loop L carries right now
//	GET  /sessions/{id}/addr?lo=&hi=        — dependences on variables whose
//	                                          observed address interval
//	                                          intersects [lo, hi]
//	POST /sessions/{id}/diff                — merge-join a stored DDP1
//	                                          baseline (request body) against
//	                                          the live profile
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.cfg.Registry.Handler())
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Sessions())
	})
	mux.HandleFunc("GET /sessions/{id}/deps", func(w http.ResponseWriter, r *http.Request) {
		o := s.obsForRequest(w, r)
		if o == nil {
			return
		}
		since, err := queryUint(r, "since", 0)
		if err != nil || since > uint64(^uint32(0)) {
			http.Error(w, "bad since= epoch", http.StatusBadRequest)
			return
		}
		writeJSON(w, o.depsSince(uint32(since)))
	})
	mux.HandleFunc("GET /sessions/{id}/loop/{loop}/carried", func(w http.ResponseWriter, r *http.Request) {
		o := s.obsForRequest(w, r)
		if o == nil {
			return
		}
		l, err := strconv.ParseUint(r.PathValue("loop"), 10, 16)
		if err != nil {
			http.Error(w, "bad loop id", http.StatusBadRequest)
			return
		}
		writeJSON(w, o.loopCarried(prog.LoopID(l)))
	})
	mux.HandleFunc("GET /sessions/{id}/addr", func(w http.ResponseWriter, r *http.Request) {
		o := s.obsForRequest(w, r)
		if o == nil {
			return
		}
		lo, err1 := queryUint(r, "lo", 0)
		hi, err2 := queryUint(r, "hi", ^uint64(0))
		if err1 != nil || err2 != nil || lo > hi {
			http.Error(w, "bad lo=/hi= address bounds", http.StatusBadRequest)
			return
		}
		writeJSON(w, o.addrQuery(lo, hi))
	})
	mux.HandleFunc("POST /sessions/{id}/diff", func(w http.ResponseWriter, r *http.Request) {
		o := s.obsForRequest(w, r)
		if o == nil {
			return
		}
		baseline, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRespPayload))
		if err != nil {
			http.Error(w, "reading baseline: "+err.Error(), http.StatusBadRequest)
			return
		}
		page, err := o.diffAgainst(baseline)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, page)
	})
	if s.snap != nil {
		mux.Handle("/debug/timeline", s.snap.TimelineHandler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// obsForRequest resolves the {id} path value to a live or retained
// observatory, writing the HTTP error itself when it can't.
func (s *Server) obsForRequest(w http.ResponseWriter, r *http.Request) *observatory {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return nil
	}
	o := s.observatoryByID(id)
	if o == nil {
		http.Error(w, fmt.Sprintf("no session %d (live or retained)", id), http.StatusNotFound)
		return nil
	}
	return o
}

// queryUint parses an optional unsigned query parameter (base 10 or 0x hex).
func queryUint(r *http.Request, name string, def uint64) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.ParseUint(v, 0, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Shutdown drains the daemon: listeners close immediately (new connects are
// refused), in-flight sessions run to completion, and when ctx expires the
// remaining connections are force-closed. It returns nil if every session
// finished in time, ctx.Err() otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	// The flight recorder stops only after the drain below: its final sample
	// must capture the fully drained end state (completed-session counters,
	// zero active sessions), not the state at the moment shutdown began.
	stopSnap := func() {
		if s.snap != nil {
			s.snap.Stop()
		}
	}
	s.mu.Lock()
	s.draining = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.sessWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		stopSnap()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.conn.Close() // unblocks session reads/writes
		}
		s.mu.Unlock()
		<-done
		stopSnap()
		return ctx.Err()
	}
}
