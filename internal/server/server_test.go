package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	"ddprof/internal/minilang"
	"ddprof/internal/telemetry"
)

// testProgram builds a target with carried and independent dependences; n
// scales the work so different clients stream different traces.
func testProgram(name string, n int) *minilang.Program {
	p := minilang.New(name)
	p.MainFunc(func(b *minilang.Block) {
		b.Decl("n", minilang.Ci(n))
		b.DeclArr("a", minilang.V("n"))
		b.Decl("sum", minilang.Ci(0))
		b.For("i", minilang.Ci(0), minilang.V("n"), minilang.Ci(1),
			minilang.LoopOpt{Name: "fill"}, func(l *minilang.Block) {
				l.Set("a", minilang.V("i"), minilang.Mul(minilang.V("i"), minilang.Ci(3)))
			})
		b.For("i", minilang.Ci(1), minilang.V("n"), minilang.Ci(1),
			minilang.LoopOpt{Name: "scan"}, func(l *minilang.Block) {
				l.Set("a", minilang.V("i"),
					minilang.Add(minilang.Idx("a", minilang.Sub(minilang.V("i"), minilang.Ci(1))),
						minilang.Idx("a", minilang.V("i"))))
				l.Reduce("sum", minilang.OpAdd, minilang.Idx("a", minilang.V("i")))
			})
		b.Free("a")
	})
	return p
}

// localProfileBytes profiles p in-process with an exact store and encodes the
// dependence set the way the daemon does (names-only table, no loop records),
// so the result is byte-comparable with a remote session's response.
func localProfileBytes(t *testing.T, p *minilang.Program) []byte {
	t.Helper()
	prof := core.NewSerial(core.Config{
		Backend: "perfect",
		Meta:    p.Meta,
	})
	if _, err := interp.Run(p, prof, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	res := prof.Flush()
	tab := loc.NewTable()
	for i := 0; i < p.Tab.NumVars(); i++ {
		tab.Var(p.Tab.VarName(loc.VarID(i)))
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf, res.Deps, tab, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func remoteProfileBytes(t *testing.T, rr *RemoteResult, p *minilang.Program) []byte {
	t.Helper()
	tab := loc.NewTable()
	for i := 0; i < p.Tab.NumVars(); i++ {
		tab.Var(p.Tab.VarName(loc.VarID(i)))
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf, rr.Deps, tab, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// listenTCP returns a loopback listener or skips the test when the sandbox
// forbids sockets.
func listenTCP(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("sockets unavailable: %v", err)
	}
	return ln
}

// TestE2EConcurrentSessions is the acceptance scenario: four healthy clients
// split over TCP and a Unix socket, one corrupt-stream client and one
// mid-stream staller, all concurrent. The daemon must evict the two
// misbehaving sessions, the healthy ones must get dependence sets
// byte-identical to in-process profiling, and the metrics endpoint must show
// nonzero queue depth and event rate.
func TestE2EConcurrentSessions(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{
		WorkerBudget:      8,
		WorkersPerSession: 2,
		IdleTimeout:       400 * time.Millisecond,
		QueueCap:          4,
		Registry:          reg,
	})
	tcpLn := listenTCP(t)
	go srv.Serve(tcpLn)
	tcpAddr := tcpLn.Addr().String()

	sockPath := filepath.Join(t.TempDir(), "dd.sock")
	unixLn, err := net.Listen("unix", sockPath)
	unixAddr := ""
	if err != nil {
		t.Logf("unix sockets unavailable (%v); running all clients over TCP", err)
	} else {
		go srv.Serve(unixLn)
		unixAddr = "unix:" + sockPath
	}

	addrFor := func(i int) string {
		if unixAddr != "" && i%2 == 1 {
			return unixAddr
		}
		return tcpAddr
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)

	// Four healthy clients, distinct programs.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := testProgram(fmt.Sprintf("client%d", i), 200+50*i)
			conn, err := Dial(addrFor(i))
			if err != nil {
				errs <- fmt.Errorf("client %d dial: %w", i, err)
				return
			}
			defer conn.Close()
			rr, err := ProfileRemote(conn, p, ClientOptions{Workers: 2, Backend: "perfect"})
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			want := localProfileBytes(t, testProgram(fmt.Sprintf("client%d", i), 200+50*i))
			got := remoteProfileBytes(t, rr, p)
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("client %d: remote profile differs from in-process profile (%d vs %d bytes)", i, len(got), len(want))
			}
		}(i)
	}

	// One corrupt-stream client: valid handshake, then garbage frames.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := Dial(tcpAddr)
		if err != nil {
			errs <- fmt.Errorf("corrupt client dial: %w", err)
			return
		}
		defer conn.Close()
		bw := bufio.NewWriter(conn)
		writeHandshake(bw, &handshake{})
		bw.Write([]byte{8, 'X', 'X', 'X', 'X', 0xff, 0xff, 0xff, 0xff, 0}) // one bogus frame + terminator
		bw.Flush()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		status, payload, err := readResponse(bufio.NewReader(conn))
		if err != nil {
			errs <- fmt.Errorf("corrupt client: reading verdict: %w", err)
			return
		}
		if status != statusErr {
			errs <- fmt.Errorf("corrupt stream got status %d, want error", status)
			return
		}
		if !strings.Contains(string(payload), "trace stream") {
			errs <- fmt.Errorf("corrupt stream error %q does not name the trace stream", payload)
		}
	}()

	// One staller: valid handshake, then silence until the idle deadline.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := Dial(tcpAddr)
		if err != nil {
			errs <- fmt.Errorf("staller dial: %w", err)
			return
		}
		defer conn.Close()
		bw := bufio.NewWriter(conn)
		writeHandshake(bw, &handshake{})
		bw.Flush()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		status, _, err := readResponse(bufio.NewReader(conn))
		if err == nil && status != statusErr {
			errs <- fmt.Errorf("staller got status %d, want eviction", status)
		}
		// err != nil (connection closed without a response) also counts as
		// eviction; the session-counter check below is authoritative.
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := reg.Counter("server_sessions_completed_total").Load(); got != 4 {
		t.Errorf("completed sessions = %d, want 4", got)
	}
	if got := reg.Counter("server_sessions_evicted_total").Load(); got != 2 {
		t.Errorf("evicted sessions = %d, want 2", got)
	}
	if srv.ActiveSessions() != 0 {
		t.Errorf("%d sessions still active after all clients finished", srv.ActiveSessions())
	}

	// Metrics endpoint: live pipeline counters must be visible.
	rec := httptest.NewRecorder()
	srv.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	assertMetricPositive(t, body, "pipeline_events_total")
	assertMetricPositive(t, body, "pipeline_events_per_sec")
	assertMetricPositive(t, body, "pipeline_queue_depth_max")
	assertMetricPositive(t, body, "server_bytes_in_total")
	assertMetricPositive(t, body, "server_bytes_out_total")

	rec = httptest.NewRecorder()
	srv.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/sessions", nil))
	var infos []SessionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Errorf("/sessions is not JSON: %v", err)
	}
	if len(infos) != 0 {
		t.Errorf("/sessions lists %d sessions after drain, want 0", len(infos))
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// assertMetricPositive checks that the exposition contains `name value` with
// value > 0.
func assertMetricPositive(t *testing.T, body, name string) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			fmt.Sscanf(fields[1], "%g", &v)
			if v <= 0 {
				t.Errorf("metric %s = %s, want > 0", name, fields[1])
			}
			return
		}
	}
	t.Errorf("metric %s missing from exposition:\n%s", name, body)
}

// TestMTRemoteSession profiles a multi-threaded target remotely: the trace is
// recorded through a SyncWriter and the daemon runs with race checking.
func TestMTRemoteSession(t *testing.T) {
	srv := New(Config{Registry: telemetry.NewRegistry()})
	ln := listenTCP(t)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	p := minilang.New("mt-remote")
	p.MainFunc(func(b *minilang.Block) {
		b.Decl("sum", minilang.Ci(0))
		b.Spawn(4, func(tb *minilang.Block) {
			tb.For("i", minilang.Ci(0), minilang.Ci(50), minilang.Ci(1),
				minilang.LoopOpt{Name: "acc"}, func(l *minilang.Block) {
					l.Lock("m", func(cb *minilang.Block) {
						cb.Reduce("sum", minilang.OpAdd, minilang.V("i"))
					})
				})
		})
	})
	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rr, err := ProfileRemote(conn, p, ClientOptions{Backend: "perfect", MT: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Deps.Unique() == 0 {
		t.Fatal("no dependences from MT session")
	}
	if rr.Events == 0 {
		t.Fatal("no events streamed")
	}
}

// TestSessionLimit: a connection beyond MaxSessions is refused with an
// explanatory error response.
func TestSessionLimit(t *testing.T) {
	srv := New(Config{MaxSessions: 1, IdleTimeout: 2 * time.Second, Registry: telemetry.NewRegistry()})
	ln := listenTCP(t)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	// Occupy the only slot with an idle connection.
	hold, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	waitFor(t, func() bool { return srv.ActiveSessions() == 1 })

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = ProfileRemote(conn, testProgram("refused", 50), ClientOptions{})
	if err == nil || !strings.Contains(err.Error(), "session limit") {
		t.Fatalf("over-limit session: err = %v, want session-limit refusal", err)
	}
}

// TestShutdownDrain: Shutdown lets an in-flight session finish and refuses
// new connects.
func TestShutdownDrain(t *testing.T) {
	srv := New(Config{Registry: telemetry.NewRegistry()})
	ln := listenTCP(t)
	go srv.Serve(ln)
	addr := ln.Addr().String()

	// Start a session and park it mid-handshake so Shutdown finds it live.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	waitFor(t, func() bool { return srv.ActiveSessions() == 1 })

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// New connects must fail once draining: the listener is closed.
	waitFor(t, func() bool {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return true
		}
		c.Close()
		return false
	})

	// The in-flight session still completes.
	p := testProgram("drain", 100)
	if err := writeHandshake(bw, clientHandshake(p, ClientOptions{Backend: "perfect"})); err != nil {
		t.Fatal(err)
	}
	if _, _, err := streamTrace(bw, p, ClientOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	status, payload, err := readResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("draining session response: %v", err)
	}
	if status != statusOK {
		t.Fatalf("draining session got error: %s", payload)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHandshakeRoundTrip covers the preamble codec, including the loop
// metadata tables.
func TestHandshakeRoundTrip(t *testing.T) {
	p := testProgram("codec", 64)
	in := clientHandshake(p, ClientOptions{Workers: 3, Backend: "perfect", MT: true})
	var buf bytes.Buffer
	if err := writeHandshake(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readHandshake(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.Flags&flagRaceCheck != in.Flags&flagRaceCheck || out.Workers != in.Workers {
		t.Fatalf("flags/workers: got %#x/%d, want %#x/%d", out.Flags, out.Workers, in.Flags, in.Workers)
	}
	if out.Backend != in.Backend {
		t.Fatalf("backend spec: got %q, want %q", out.Backend, in.Backend)
	}
	if len(out.VarNames) != len(in.VarNames) {
		t.Fatalf("var names: %d vs %d", len(out.VarNames), len(in.VarNames))
	}
	for i := range in.VarNames {
		if out.VarNames[i] != in.VarNames[i] {
			t.Fatalf("var %d: %q vs %q", i, out.VarNames[i], in.VarNames[i])
		}
	}
	if out.Meta == nil {
		t.Fatal("meta lost")
	}
	if got, want := len(out.Meta.Loops()), len(p.Meta.Loops()); got != want {
		t.Fatalf("loops: %d vs %d", got, want)
	}
	if got, want := out.Meta.NumCtxs(), p.Meta.NumCtxs(); got != want {
		t.Fatalf("contexts: %d vs %d", got, want)
	}
	for id := 1; id < out.Meta.NumCtxs(); id++ {
		a, b := out.Meta.Stack(uint32(id)), p.Meta.Stack(uint32(id))
		if len(a) != len(b) {
			t.Fatalf("ctx %d stack: %v vs %v", id, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("ctx %d stack: %v vs %v", id, a, b)
			}
		}
	}
}

func TestHandshakeRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOPE\x01"),
		"bad version":  []byte("DDRP\x09"),
		"bad flags":    []byte("DDRP\x01\xff"),
		"cut mid-vars": {'D', 'D', 'R', 'P', 1, 0, 0, 5},
	}
	for name, data := range cases {
		if _, err := readHandshake(bufio.NewReader(bytes.NewReader(data))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
