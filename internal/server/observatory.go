package server

// The live session observatory: the daemon-side store behind `ddprof -watch`
// and the provenance query API. Every profiling session owns one observatory.
// The session's pipeline workers deliver their epoch-delta extractions here
// (core.Config.OnEpochDelta, called on worker goroutines); when all workers
// have reported an epoch, the observatory renders the epoch's union as one
// DDP1 payload (dep.EncodeUnion — byte-identical to encoding the merged
// delta), fans the frame out to watch subscribers, and folds the shards into
// its live store. Because every delta field is monotone under fold, the live
// store is at all times exactly the profile of the stream so far, and after
// the final frame it is byte-identical to the session's end-of-run profile —
// which is what lets the HTTP query endpoints answer from it without ever
// pausing ingest (readers take an RLock; ingest only writes at epoch
// completion).
//
// Completed sessions are retained for a while (obsRetained observatories,
// FIFO) so queries and diffs keep working after the client disconnected.

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
	"ddprof/internal/trace"
)

const (
	// subBuffer is a watch subscriber's frame queue depth. A subscriber that
	// falls this many frames behind is evicted rather than allowed to
	// backpressure the fan-out (and therefore the session's workers).
	subBuffer = 64
	// obsRetained is how many completed sessions' observatories the daemon
	// keeps queryable after the session ended.
	obsRetained = 16
)

// deltaSub is one watch subscriber. Frames are delivered through a buffered
// channel; the channel is closed after the final frame (or on session abort
// or slow-subscriber eviction), which ends the subscriber's serving loop.
type deltaSub struct {
	ch      chan obsFrame
	evicted bool
}

// obsFrame is one delta frame plus the refcount that returns its pooled
// payload buffer when every subscriber has written it out.
type obsFrame struct {
	trace.DeltaFrame
	pay *sharedPayload
}

// deltaBufPool recycles the DDP1 payload buffers the observatory renders
// epochs into; one buffer per epoch, shared across all subscribers, instead
// of an allocation per epoch (and before that, per epoch per subscriber).
var deltaBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// sharedPayload refcounts one epoch's encoded payload across the subscribers
// it was fanned out to. The frame's Payload slice aliases buf, so buf may
// only return to the pool after the last subscriber has released it. A frame
// stranded in an exited subscriber's channel is never released and simply
// falls to the GC; the pool just misses one buffer.
type sharedPayload struct {
	buf  *bytes.Buffer
	refs atomic.Int32
}

func newSharedPayload() *sharedPayload {
	p := &sharedPayload{buf: deltaBufPool.Get().(*bytes.Buffer)}
	p.buf.Reset()
	p.refs.Store(1) // the render-side owner reference
	return p
}

func (p *sharedPayload) retain() { p.refs.Add(1) }

func (p *sharedPayload) release() {
	if p != nil && p.refs.Add(-1) == 0 {
		deltaBufPool.Put(p.buf)
	}
}

// pendingEpoch assembles one epoch's per-worker deltas until all workers
// have reported it.
type pendingEpoch struct {
	shards []*dep.Set
	loops  []map[prog.LoopID]*dep.Set
	bounds [][]core.VarBounds
}

// observatory is the live store of one profiling session.
type observatory struct {
	sessionID uint64
	workers   int        // deltas per epoch before it is complete
	tab       *loc.Table // session variable table, for frame/row rendering

	mu      sync.RWMutex
	live    *dep.Set                 // fold of every completed delta so far
	loops   map[prog.LoopID]*dep.Set // per-loop carried-key folds
	bounds  map[loc.VarID][2]uint64  // observed [lo,hi] address interval per var
	epoch   uint32                   // latest completed epoch
	pending map[uint32]*pendingEpoch
	subs    map[*deltaSub]struct{}
	done    bool // final frame delivered; live is the exact final profile
	aborted bool // session evicted before completing
}

func newObservatory(sessionID uint64, workers int, varNames []string) *observatory {
	tab := loc.NewTable()
	for _, n := range varNames {
		tab.Var(n)
	}
	return &observatory{
		sessionID: sessionID,
		workers:   workers,
		tab:       tab,
		live:      dep.NewSet(),
		loops:     make(map[prog.LoopID]*dep.Set),
		bounds:    make(map[loc.VarID][2]uint64),
		pending:   make(map[uint32]*pendingEpoch),
		subs:      make(map[*deltaSub]struct{}),
	}
}

// offer receives one worker's epoch-delta. Called concurrently from worker
// goroutines; the epoch completes when all workers have reported it.
func (o *observatory) offer(d *core.EpochDelta) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.done || o.aborted {
		releaseDelta(d)
		return
	}
	p := o.pending[d.Epoch]
	if p == nil {
		p = &pendingEpoch{}
		o.pending[d.Epoch] = p
	}
	p.shards = append(p.shards, d.Deps)
	p.loops = append(p.loops, d.Loops)
	p.bounds = append(p.bounds, d.Bounds)
	if len(p.shards) == o.workers {
		delete(o.pending, d.Epoch)
		o.completeLocked(d.Epoch, p, false)
	}
}

// finish closes the observatory with the session's final remainder delta —
// what the merged end-of-run profile still held unshipped. The final frame is
// always emitted (even empty), then every subscriber's channel closes.
func (o *observatory) finish(d *core.EpochDelta) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.done || o.aborted {
		releaseDelta(d)
		return
	}
	// A straggler epoch that never assembled (can't happen with a correct
	// pipeline, but a defensive fold keeps the live store exact regardless).
	for e, p := range o.pending {
		delete(o.pending, e)
		o.foldLocked(p)
	}
	p := &pendingEpoch{
		shards: []*dep.Set{d.Deps},
		loops:  []map[prog.LoopID]*dep.Set{d.Loops},
		bounds: [][]core.VarBounds{d.Bounds},
	}
	o.completeLocked(d.Epoch, p, true)
	o.done = true
	for sub := range o.subs {
		if !sub.evicted {
			close(sub.ch)
			sub.evicted = true
		}
	}
}

// abort tears the observatory down without a final frame: subscribers see
// their stream end with no frame marked final and know the session died.
func (o *observatory) abort() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.done || o.aborted {
		return
	}
	o.aborted = true
	for e, p := range o.pending {
		delete(o.pending, e)
		o.foldLocked(p)
	}
	for sub := range o.subs {
		if !sub.evicted {
			close(sub.ch)
			sub.evicted = true
		}
	}
}

// completeLocked renders one completed epoch as a delta frame, fans it out,
// and folds the shards into the live store. Non-final epochs with nothing to
// report produce no frame (quiet epochs cost subscribers nothing); the final
// frame is always sent.
func (o *observatory) completeLocked(epoch uint32, p *pendingEpoch, final bool) {
	nonEmpty := false
	for _, sh := range p.shards {
		if sh != nil && sh.Unique() > 0 {
			nonEmpty = true
			break
		}
	}
	if nonEmpty || final {
		pay := newSharedPayload()
		if err := dep.EncodeUnion(pay.buf, o.tab, nil, p.shards...); err == nil {
			f := obsFrame{
				DeltaFrame: trace.DeltaFrame{Epoch: epoch, Final: final, Payload: pay.buf.Bytes()},
				pay:        pay,
			}
			for sub := range o.subs {
				if sub.evicted {
					continue
				}
				pay.retain()
				select {
				case sub.ch <- f:
				default:
					// Slow subscriber: evict rather than stall the fan-out.
					pay.release()
					close(sub.ch)
					sub.evicted = true
				}
			}
		}
		pay.release() // drop the owner reference
	}
	o.foldLocked(p)
	if epoch > o.epoch {
		o.epoch = epoch
	}
}

// foldLocked merges a pending epoch's shards into the live store and releases
// them. Merge preserves provenance: entry epoch stamps take the minimum, so
// RangeSince answers "first observed since epoch E" over the fold.
func (o *observatory) foldLocked(p *pendingEpoch) {
	for _, sh := range p.shards {
		if sh != nil {
			o.live.Merge(sh)
			sh.Release()
		}
	}
	for _, lm := range p.loops {
		for id, ks := range lm {
			dst := o.loops[id]
			if dst == nil {
				dst = dep.NewSet()
				o.loops[id] = dst
			}
			dst.Merge(ks)
			ks.Release()
		}
	}
	for _, bs := range p.bounds {
		for _, b := range bs {
			if cur, ok := o.bounds[b.Var]; ok {
				if cur[0] < b.Lo {
					b.Lo = cur[0]
				}
				if cur[1] > b.Hi {
					b.Hi = cur[1]
				}
			}
			o.bounds[b.Var] = [2]uint64{b.Lo, b.Hi}
		}
	}
}

// releaseDelta returns a delta's sets to the slab pool.
func releaseDelta(d *core.EpochDelta) {
	if d.Deps != nil {
		d.Deps.Release()
	}
	for _, ks := range d.Loops {
		ks.Release()
	}
}

// release hands the observatory's storage back to the slab pool. Only called
// after the observatory left the daemon's table.
func (o *observatory) release() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.live.Release()
	for _, ks := range o.loops {
		ks.Release()
	}
	o.loops = nil
}

// active reports whether the session is still ingesting.
func (o *observatory) active() bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return !o.done && !o.aborted
}

// isAborted reports whether the session died before completing.
func (o *observatory) isAborted() bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.aborted
}

// subscribe attaches a watch subscriber. The catch-up frame — the live store
// as of now, restricted to dependences first observed at epoch since or later
// — is rendered under the same lock that registers the subscriber, so the
// frame and the subscription cut the stream at the same point: catch-up plus
// subsequent delta frames fold to the exact profile (for since == 0). done
// reports that the session already ended — the catch-up frame is final and
// the channel is already closed.
func (o *observatory) subscribe(since uint32) (catchup *obsFrame, sub *deltaSub, done bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	sub = &deltaSub{ch: make(chan obsFrame, subBuffer)}
	if !o.done && !o.aborted {
		o.subs[sub] = struct{}{}
	} else {
		close(sub.ch)
		sub.evicted = true
	}
	if o.live.Unique() > 0 || o.done {
		pay := newSharedPayload()
		var err error
		if since == 0 {
			err = dep.Encode(pay.buf, o.live, o.tab, nil)
		} else {
			tmp := dep.NewSet()
			o.live.RangeSince(since, func(k dep.Key, st dep.Stats, _ uint32) bool {
				*tmp.Ref(k) = st
				return true
			})
			err = dep.Encode(pay.buf, tmp, o.tab, nil)
			tmp.Release()
		}
		if err == nil {
			// The owner reference transfers to the caller, released after
			// the catch-up frame is written out.
			catchup = &obsFrame{
				DeltaFrame: trace.DeltaFrame{Epoch: o.epoch, Final: o.done, Payload: pay.buf.Bytes()},
				pay:        pay,
			}
		} else {
			pay.release()
		}
	}
	return catchup, sub, o.done || o.aborted
}

// unsubscribe detaches a subscriber; idempotent with eviction and close.
func (o *observatory) unsubscribe(sub *deltaSub) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.subs[sub]; ok {
		delete(o.subs, sub)
		if !sub.evicted {
			close(sub.ch)
			sub.evicted = true
		}
	}
}

// depRow is the JSON wire form of one dependence aggregate.
type depRow struct {
	Sink       uint32 `json:"sink"`
	Src        uint32 `json:"src"`
	Type       string `json:"type"`
	Var        string `json:"var"`
	SinkThread int16  `json:"sink_thread,omitempty"`
	SrcThread  int16  `json:"src_thread,omitempty"`
	Count      uint64 `json:"count"`
	Carried    bool   `json:"carried"`
	Reduction  bool   `json:"reduction,omitempty"`
	Race       bool   `json:"race,omitempty"`
	MinDist    uint32 `json:"min_dist"`
	MaxDist    uint32 `json:"max_dist"`
	Epoch      uint32 `json:"epoch"`
}

func (o *observatory) row(k dep.Key, st dep.Stats, epoch uint32) depRow {
	return depRow{
		Sink:       uint32(k.Sink),
		Src:        uint32(k.Src),
		Type:       k.Type.String(),
		Var:        o.tab.VarName(k.Var),
		SinkThread: k.SinkThread,
		SrcThread:  k.SrcThread,
		Count:      st.Count,
		Carried:    st.Carried,
		Reduction:  st.Reduction,
		Race:       st.Reversed,
		MinDist:    st.MinDist,
		MaxDist:    st.MaxDist,
		Epoch:      epoch,
	}
}

// depsPage is the JSON reply of GET /sessions/{id}/deps and the dependence
// half of GET /sessions/{id}/addr.
type depsPage struct {
	Session uint64   `json:"session"`
	Epoch   uint32   `json:"epoch"`
	Final   bool     `json:"final"`
	Unique  int      `json:"unique"` // distinct dependences in the live store
	Deps    []depRow `json:"deps"`
}

// depsSince answers "which dependences were first observed at epoch since or
// later", from the live store, without pausing ingest.
func (o *observatory) depsSince(since uint32) depsPage {
	o.mu.RLock()
	defer o.mu.RUnlock()
	page := depsPage{Session: o.sessionID, Epoch: o.epoch, Final: o.done, Unique: o.live.Unique(), Deps: []depRow{}}
	o.live.RangeSince(since, func(k dep.Key, st dep.Stats, e uint32) bool {
		page.Deps = append(page.Deps, o.row(k, st, e))
		return true
	})
	return page
}

// loopPage is the JSON reply of GET /sessions/{id}/loop/{loop}/carried.
type loopPage struct {
	Session uint64   `json:"session"`
	Loop    uint16   `json:"loop"`
	Epoch   uint32   `json:"epoch"`
	Final   bool     `json:"final"`
	Carried []depRow `json:"carried"`
}

// loopCarried answers "what does loop L carry right now": the fold of the
// per-loop carried-key deltas the workers have shipped.
func (o *observatory) loopCarried(loop prog.LoopID) loopPage {
	o.mu.RLock()
	defer o.mu.RUnlock()
	page := loopPage{Session: o.sessionID, Loop: uint16(loop), Epoch: o.epoch, Final: o.done, Carried: []depRow{}}
	if ks := o.loops[loop]; ks != nil {
		ks.RangeSince(0, func(k dep.Key, st dep.Stats, e uint32) bool {
			page.Carried = append(page.Carried, o.row(k, st, e))
			return true
		})
	}
	return page
}

// varBoundsRow is one variable's observed address interval.
type varBoundsRow struct {
	Var string `json:"var"`
	Lo  uint64 `json:"lo"`
	Hi  uint64 `json:"hi"`
}

// addrPage is the JSON reply of GET /sessions/{id}/addr?lo=&hi=.
type addrPage struct {
	Session uint64         `json:"session"`
	Lo      uint64         `json:"lo"`
	Hi      uint64         `json:"hi"`
	Vars    []varBoundsRow `json:"vars"`
	Deps    []depRow       `json:"deps"`
}

// addrQuery answers "which dependences touch addresses in [lo, hi]": the
// variables whose observed address interval intersects the query window, and
// every live dependence on those variables. Bounds come from the workers'
// per-variable interval tracking (core.Config.TrackBounds), delivered with
// each epoch delta.
func (o *observatory) addrQuery(lo, hi uint64) addrPage {
	o.mu.RLock()
	defer o.mu.RUnlock()
	page := addrPage{Session: o.sessionID, Lo: lo, Hi: hi, Vars: []varBoundsRow{}, Deps: []depRow{}}
	hit := make(map[loc.VarID]bool, len(o.bounds))
	for v, b := range o.bounds {
		if b[0] <= hi && b[1] >= lo {
			hit[v] = true
			page.Vars = append(page.Vars, varBoundsRow{Var: o.tab.VarName(v), Lo: b[0], Hi: b[1]})
		}
	}
	o.live.RangeSince(0, func(k dep.Key, st dep.Stats, e uint32) bool {
		if hit[k.Var] {
			page.Deps = append(page.Deps, o.row(k, st, e))
		}
		return true
	})
	return page
}

// diffPage is the JSON reply of POST /sessions/{id}/diff.
type diffPage struct {
	Session uint64 `json:"session"`
	Epoch   uint32 `json:"epoch"`
	Final   bool   `json:"final"`
	// Common counts dependences present in both the baseline and the live
	// profile; OnlyBaseline / OnlyLive list the keys unique to each side.
	Common       int      `json:"common"`
	Identical    bool     `json:"identical"`
	OnlyBaseline []depRow `json:"only_baseline"`
	OnlyLive     []depRow `json:"only_live"`
}

// diffAgainst merge-joins a stored DDP1 baseline against the session's live
// profile — ddiff's comparison, promoted to a daemon capability. The live
// side is encoded under the read lock (ingest never pauses), then both sides
// stream through dep.DiffStreams.
func (o *observatory) diffAgainst(baseline []byte) (diffPage, error) {
	o.mu.RLock()
	var buf bytes.Buffer
	err := dep.Encode(&buf, o.live, o.tab, nil)
	page := diffPage{Session: o.sessionID, Epoch: o.epoch, Final: o.done}
	o.mu.RUnlock()
	if err != nil {
		return page, err
	}
	da, err := dep.NewDecoder(bytes.NewReader(baseline))
	if err != nil {
		return page, fmt.Errorf("baseline profile: %w", err)
	}
	db, err := dep.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return page, err
	}
	r, err := dep.DiffStreams(da, db)
	if err != nil {
		return page, err
	}
	page.Common = r.Common
	page.Identical = r.Identical()
	page.OnlyBaseline = make([]depRow, 0, len(r.OnlyA))
	for _, k := range r.OnlyA {
		// Baseline-only keys resolve names against the baseline's own table.
		row := depRow{Sink: uint32(k.Sink), Src: uint32(k.Src), Type: k.Type.String(),
			Var: da.Table().VarName(k.Var), SinkThread: k.SinkThread, SrcThread: k.SrcThread}
		page.OnlyBaseline = append(page.OnlyBaseline, row)
	}
	page.OnlyLive = make([]depRow, 0, len(r.OnlyB))
	o.mu.RLock()
	for _, k := range r.OnlyB {
		st, _ := o.live.Lookup(k)
		page.OnlyLive = append(page.OnlyLive, o.row(k, st, 0))
	}
	o.mu.RUnlock()
	return page, nil
}
