package server

// Coverage for the live session observatory: the epoch-delta watch stream,
// the provenance query endpoints, the live diff, and the per-session metric
// series lifecycle.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
	"ddprof/internal/telemetry"
	"ddprof/internal/trace"
)

// obsTarget hand-builds a profiling target as raw event batches: one loop
// whose iterations write a[i] and read a[i-1] — a carried RAW at distance 1
// plus a carried WAW at the window size — so every batch advances dependence
// aggregates and the loop-carried table.
func obsTarget(batches, perBatch int) (*prog.Meta, []string, [][]event.Access) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "carried"})
	ctx := m.PushCtx(0, l)
	names := []string{"x", "a"}
	var out [][]event.Access
	it := uint32(0)
	for b := 0; b < batches; b++ {
		var evs []event.Access
		for n := 0; n < perBatch; n++ {
			iv := event.PackIterVec([]uint32{it})
			addr := 0x1000 + uint64(it%64)*8
			if it > 0 {
				prev := 0x1000 + uint64((it-1)%64)*8
				evs = append(evs, event.Access{Addr: prev, Kind: event.Read, Loc: loc.Pack(1, 12), Var: 2, CtxID: ctx, IterVec: iv})
			}
			evs = append(evs, event.Access{Addr: addr, Kind: event.Write, Loc: loc.Pack(1, 11), Var: 2, CtxID: ctx, IterVec: iv})
			it++
		}
		out = append(out, evs)
	}
	return m, names, out
}

// obsWire renders a complete session byte stream — handshake, framed trace
// with an explicit EpochMark record after every batch, terminator — ready to
// write to a daemon connection.
func obsWire(t *testing.T, h *handshake, batches [][]event.Access) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHandshake(&buf, h); err != nil {
		t.Fatal(err)
	}
	fw := trace.NewFrameWriter(&buf)
	tw, err := trace.NewWriter(fw)
	if err != nil {
		t.Fatal(err)
	}
	for i, evs := range batches {
		for _, a := range evs {
			tw.Access(a)
		}
		tw.Access(event.Access{Addr: uint64(i + 1), Kind: event.EpochMark})
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runObsSession streams wire to the daemon and returns the session's response
// profile payload.
func runObsSession(t *testing.T, addr string, wire []byte) []byte {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	status, payload, err := readResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if status != statusOK {
		t.Fatalf("session failed: %s", payload)
	}
	return payload
}

// TestWatchE2E is the acceptance scenario on the wire: a subscriber attaches
// before the session starts (session 0 = wait for the next one), receives at
// least one non-empty epoch-delta frame before the final frame, and folding
// every frame yields the session's exact final profile, byte-identical under
// DDP1.
func TestWatchE2E(t *testing.T) {
	srv := New(Config{Registry: telemetry.NewRegistry(), IdleTimeout: 10 * time.Second})
	ln := listenTCP(t)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	addr := ln.Addr().String()

	meta, names, batches := obsTarget(4, 200)
	h := &handshake{Backend: "perfect", Workers: 2, VarNames: names, Meta: meta}
	wire := obsWire(t, h, batches)

	type watchOut struct {
		frames []trace.DeltaFrame
		err    error
	}
	watched := make(chan watchOut, 1)
	go func() {
		conn, err := Dial(addr)
		if err != nil {
			watched <- watchOut{err: err}
			return
		}
		defer conn.Close()
		var out watchOut
		out.err = Watch(conn, WatchOptions{Session: 0, Timeout: 10 * time.Second}, func(f trace.DeltaFrame) error {
			out.frames = append(out.frames, f)
			return nil
		})
		watched <- out
	}()

	// The subscriber must be parked in the waiter list before the session
	// starts, or it would race the session's observatory registration.
	waitFor(t, func() bool {
		srv.obsMu.Lock()
		defer srv.obsMu.Unlock()
		return len(srv.obsWaiters) == 1
	})

	finalProfile := runObsSession(t, addr, wire)
	out := <-watched
	if out.err != nil {
		t.Fatalf("watch: %v", out.err)
	}

	nonEmptyBeforeFinal := 0
	sawFinal := false
	folded := dep.NewSet()
	for _, f := range out.frames {
		if sawFinal {
			t.Fatal("frame after the final frame")
		}
		if f.Final {
			sawFinal = true
		} else if len(f.Payload) > 0 {
			nonEmptyBeforeFinal++
		}
		if len(f.Payload) > 0 {
			if _, _, err := dep.DecodeMerge(bytes.NewReader(f.Payload), folded); err != nil {
				t.Fatalf("epoch %d frame: %v", f.Epoch, err)
			}
		}
	}
	if !sawFinal {
		t.Fatal("no final frame")
	}
	if nonEmptyBeforeFinal == 0 {
		t.Fatal("no non-empty epoch-delta frame before the final frame")
	}

	tab := loc.NewTable()
	for _, n := range names {
		tab.Var(n)
	}
	var got bytes.Buffer
	if err := dep.Encode(&got, folded, tab, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), finalProfile) {
		t.Fatalf("folded frames encode to %d bytes, session profile is %d bytes — not byte-identical",
			got.Len(), len(finalProfile))
	}
}

// TestWatchCompletedSession: a subscriber attaching after the session ended
// receives one catch-up frame, already marked final, holding the full
// profile.
func TestWatchCompletedSession(t *testing.T) {
	srv := New(Config{Registry: telemetry.NewRegistry()})
	ln := listenTCP(t)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	addr := ln.Addr().String()

	meta, names, batches := obsTarget(2, 100)
	finalProfile := runObsSession(t, addr, obsWire(t, &handshake{Backend: "perfect", VarNames: names, Meta: meta}, batches))

	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var frames []trace.DeltaFrame
	err = Watch(conn, WatchOptions{Session: 1, Timeout: 5 * time.Second}, func(f trace.DeltaFrame) error {
		frames = append(frames, f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || !frames[0].Final {
		t.Fatalf("got %d frames (final %v), want one final catch-up", len(frames), len(frames) > 0 && frames[0].Final)
	}
	if !bytes.Equal(frames[0].Payload, finalProfile) {
		t.Fatal("catch-up payload differs from the session's final profile")
	}
}

// TestWatchRefusals: unknown sessions are refused with an explanatory error,
// and a watcher of a session that dies mid-stream learns no final profile
// exists.
func TestWatchRefusals(t *testing.T) {
	srv := New(Config{Registry: telemetry.NewRegistry(), IdleTimeout: 5 * time.Second})
	ln := listenTCP(t)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	addr := ln.Addr().String()

	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	err = Watch(conn, WatchOptions{Session: 999, Timeout: 5 * time.Second}, func(trace.DeltaFrame) error { return nil })
	conn.Close()
	if err == nil || !strings.Contains(err.Error(), "no session 999") {
		t.Fatalf("unknown session: err = %v, want refusal naming the session", err)
	}

	// Park a watcher, then feed the next session a corrupt stream.
	watched := make(chan error, 1)
	go func() {
		wc, err := Dial(addr)
		if err != nil {
			watched <- err
			return
		}
		defer wc.Close()
		watched <- Watch(wc, WatchOptions{Session: 0, Timeout: 5 * time.Second}, func(trace.DeltaFrame) error { return nil })
	}()
	waitFor(t, func() bool {
		srv.obsMu.Lock()
		defer srv.obsMu.Unlock()
		return len(srv.obsWaiters) == 1
	})
	bad, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(bad)
	writeHandshake(bw, &handshake{})
	bw.Write([]byte{8, 'X', 'X', 'X', 'X', 0xff, 0xff, 0xff, 0xff, 0})
	bw.Flush()
	bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	readResponse(bufio.NewReader(bad)) // wait for the eviction verdict
	bad.Close()

	err = <-watched
	if err == nil || !strings.Contains(err.Error(), "without a final frame") {
		t.Fatalf("aborted session watch: err = %v, want missing-final-frame error", err)
	}
}

// TestQueryEndpointsDuringIngest hammers every provenance endpoint while a
// session is streaming — the race-detector coverage for the RLock query
// paths, and the guarantee that queries answer without pausing ingest.
func TestQueryEndpointsDuringIngest(t *testing.T) {
	srv := New(Config{Registry: telemetry.NewRegistry(), IdleTimeout: 10 * time.Second})
	ln := listenTCP(t)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	addr := ln.Addr().String()

	meta, names, batches := obsTarget(40, 100)
	wire := obsWire(t, &handshake{Backend: "perfect", Workers: 2, VarNames: names, Meta: meta}, batches)

	// Stream the session in small timed chunks so ingest and queries overlap.
	sessionDone := make(chan []byte, 1)
	var ingesting atomic.Bool
	ingesting.Store(true)
	go func() {
		defer ingesting.Store(false)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Error(err)
			sessionDone <- nil
			return
		}
		defer conn.Close()
		for off := 0; off < len(wire); off += 1024 {
			end := min(off+1024, len(wire))
			if _, err := conn.Write(wire[off:end]); err != nil {
				t.Error(err)
				sessionDone <- nil
				return
			}
			time.Sleep(time.Millisecond)
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		status, payload, err := readResponse(bufio.NewReader(conn))
		if err != nil || status != statusOK {
			t.Errorf("session: status %d, err %v", status, err)
			sessionDone <- nil
			return
		}
		sessionDone <- payload
	}()

	handler := srv.HTTPHandler()
	get := func(url string) (int, []byte) {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec.Code, rec.Body.Bytes()
	}

	var wg sync.WaitGroup
	queried := uint64(0)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ingesting.Load() {
				if code, _ := get("/sessions/1/deps"); code != 200 && code != 404 {
					t.Errorf("/deps status %d", code)
					return
				}
				if code, _ := get("/sessions/1/deps?since=2"); code != 200 && code != 404 {
					t.Errorf("/deps?since status %d", code)
					return
				}
				if code, _ := get("/sessions/1/loop/0/carried"); code != 200 && code != 404 {
					t.Errorf("/loop status %d", code)
					return
				}
				if code, _ := get("/sessions/1/addr?lo=0x1000&hi=0x11ff"); code != 200 && code != 404 {
					t.Errorf("/addr status %d", code)
					return
				}
				atomic.AddUint64(&queried, 1)
			}
		}()
	}
	wg.Wait()
	finalProfile := <-sessionDone
	if finalProfile == nil {
		t.Fatal("session failed")
	}
	if atomic.LoadUint64(&queried) == 0 {
		t.Fatal("no queries overlapped the session")
	}

	// Post-session, the retained observatory answers with the exact final
	// numbers: a carried RAW on var "a", the full address window, loop 0
	// carrying it.
	code, body := get("/sessions/1/deps")
	if code != 200 {
		t.Fatalf("/deps after session: status %d", code)
	}
	var page struct {
		Final  bool `json:"final"`
		Unique int  `json:"unique"`
		Deps   []struct {
			Type    string `json:"type"`
			Var     string `json:"var"`
			Carried bool   `json:"carried"`
			Count   uint64 `json:"count"`
		} `json:"deps"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if !page.Final || page.Unique == 0 || len(page.Deps) != page.Unique {
		t.Fatalf("final deps page: final %v, unique %d, rows %d", page.Final, page.Unique, len(page.Deps))
	}
	carriedRAW := false
	for _, d := range page.Deps {
		if d.Type == "RAW" && d.Var == "a" && d.Carried && d.Count > 0 {
			carriedRAW = true
		}
	}
	if !carriedRAW {
		t.Fatal("final deps page lost the carried RAW on var a")
	}

	code, body = get("/sessions/1/loop/0/carried")
	if code != 200 {
		t.Fatalf("/loop/0/carried: status %d", code)
	}
	var loopPg struct {
		Carried []struct {
			Type string `json:"type"`
		} `json:"carried"`
	}
	if err := json.Unmarshal(body, &loopPg); err != nil {
		t.Fatal(err)
	}
	if len(loopPg.Carried) == 0 {
		t.Fatal("loop 0 carries nothing, want the carried RAW/WAW keys")
	}

	code, body = get("/sessions/1/addr?lo=0x1000&hi=0x11ff")
	if code != 200 {
		t.Fatalf("/addr: status %d", code)
	}
	var addrPg struct {
		Vars []struct {
			Var string `json:"var"`
			Lo  uint64 `json:"lo"`
			Hi  uint64 `json:"hi"`
		} `json:"vars"`
		Deps []struct{} `json:"deps"`
	}
	if err := json.Unmarshal(body, &addrPg); err != nil {
		t.Fatal(err)
	}
	if len(addrPg.Vars) != 1 || addrPg.Vars[0].Var != "a" || addrPg.Vars[0].Lo != 0x1000 || addrPg.Vars[0].Hi != 0x1000+63*8 {
		t.Fatalf("addr vars = %+v, want a:[0x1000, %#x]", addrPg.Vars, 0x1000+63*8)
	}
	if len(addrPg.Deps) == 0 {
		t.Fatal("addr window hit no dependences")
	}
	if code, _ := get("/sessions/1/addr?lo=0x5000&hi=0x5fff"); code != 200 {
		t.Fatalf("empty addr window: status %d", code)
	}
	if code, _ := get("/sessions/1/addr?lo=9&hi=5"); code != 400 {
		t.Fatalf("inverted addr window: status %d, want 400", code)
	}

	// since-filtering: everything was first observed by epoch 1 here except
	// nothing — a since past the last epoch returns zero rows.
	code, body = get("/sessions/1/deps?since=4000000000")
	if code != 200 {
		t.Fatalf("/deps?since=huge: status %d", code)
	}
	var lateDeps struct {
		Deps []struct{} `json:"deps"`
	}
	if err := json.Unmarshal(body, &lateDeps); err != nil {
		t.Fatal(err)
	}
	if len(lateDeps.Deps) != 0 {
		t.Fatalf("deps first observed after the last epoch: %d, want 0", len(lateDeps.Deps))
	}
}

// TestDiffEndpoint: POST /sessions/{id}/diff merge-joins an uploaded DDP1
// baseline against the live profile — identical for the session's own
// profile, and asymmetric for a different target's.
func TestDiffEndpoint(t *testing.T) {
	srv := New(Config{Registry: telemetry.NewRegistry()})
	ln := listenTCP(t)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	addr := ln.Addr().String()

	meta, names, batches := obsTarget(2, 150)
	profile := runObsSession(t, addr, obsWire(t, &handshake{Backend: "perfect", VarNames: names, Meta: meta}, batches))

	post := func(url string, body []byte) (int, []byte) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", url, bytes.NewReader(body))
		srv.HTTPHandler().ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	}
	code, body := post("/sessions/1/diff", profile)
	if code != 200 {
		t.Fatalf("self-diff: status %d: %s", code, body)
	}
	var page struct {
		Common       int        `json:"common"`
		Identical    bool       `json:"identical"`
		OnlyBaseline []struct{} `json:"only_baseline"`
		OnlyLive     []struct{} `json:"only_live"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if !page.Identical || page.Common == 0 || len(page.OnlyBaseline) != 0 || len(page.OnlyLive) != 0 {
		t.Fatalf("self-diff: %+v, want identical with common > 0", page)
	}

	// A baseline missing the carried RAW: decode, drop one key, re-encode.
	set, _, tab, err := dep.Decode(bytes.NewReader(profile))
	if err != nil {
		t.Fatal(err)
	}
	smaller := dep.NewSet()
	dropped := false
	set.Range(func(k dep.Key, st dep.Stats) bool {
		if !dropped && k.Type == dep.RAW {
			dropped = true
			return true
		}
		*smaller.Ref(k) = st
		return true
	})
	var baseline bytes.Buffer
	if err := dep.Encode(&baseline, smaller, tab, nil); err != nil {
		t.Fatal(err)
	}
	code, body = post("/sessions/1/diff", baseline.Bytes())
	if code != 200 {
		t.Fatalf("diff: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.Identical || len(page.OnlyLive) != 1 || len(page.OnlyBaseline) != 0 {
		t.Fatalf("dropped-key diff: %+v, want exactly one live-only dependence", page)
	}

	if code, _ := post("/sessions/1/diff", []byte("not a profile")); code != 400 {
		t.Fatalf("garbage baseline: status %d, want 400", code)
	}
	if code, _ := post("/sessions/77/diff", profile); code != 404 {
		t.Fatalf("unknown session: status %d, want 404", code)
	}
}

// TestSessionSeriesLifecycle: per-session labeled counters are capped at
// SessionSeriesMax, overflow sessions share one series, and a session's
// series leaves /metrics when it closes.
func TestSessionSeriesLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{Registry: reg, SessionSeriesMax: 2})

	has := func(name string) bool {
		_, ok := reg.Snapshot()[name]
		return ok
	}
	name := func(id int) string {
		return fmt.Sprintf("server_session_events_total{session=\"%d\"}", id)
	}

	s1, s2 := srv.sessionSeries(1), srv.sessionSeries(2)
	rel1, rel2 := s1.release, s2.release
	s1.events.Inc()
	s2.events.Add(5)
	if !has(name(1)) || !has(name(2)) {
		t.Fatal("labeled series missing under the cap")
	}
	// The whole instrument bundle shares the one series slot.
	if !has(`server_session_decode_depth{session="1"}`) {
		t.Fatal("decode-depth gauge missing for session 1")
	}

	s3 := srv.sessionSeries(3)
	rel3 := s3.release
	s3.events.Add(7)
	if has(name(3)) {
		t.Fatal("session 3 got a labeled series past the cap")
	}
	overflow := `server_session_events_total{session="overflow"}`
	if v := reg.Snapshot()[overflow]; v != 7 {
		t.Fatalf("overflow series = %v, want 7", v)
	}

	rel1()
	rel1() // idempotent
	if has(name(1)) || has(`server_session_decode_depth{session="1"}`) {
		t.Fatal("session 1 series survived its release")
	}
	// The freed slot goes to the next session.
	s4 := srv.sessionSeries(4)
	rel4 := s4.release
	s4.events.Inc()
	if !has(name(4)) {
		t.Fatal("freed series slot not reused")
	}
	rel2()
	rel3()
	rel4()
	if has(name(2)) || has(name(4)) {
		t.Fatal("series survived release")
	}
	if !has(overflow) {
		t.Fatal("overflow series must persist (it is shared, never evicted)")
	}
}

// --- observatory unit coverage (no sockets) ---

// mkDelta builds one worker's epoch delta with a single RAW dependence on
// var 1 counted n times.
func mkDelta(epoch uint32, worker int, sink, src int, n uint64) *core.EpochDelta {
	s := dep.NewSet()
	s.SetEpoch(epoch)
	k := dep.Key{Type: dep.RAW, Sink: loc.Pack(1, sink), Src: loc.Pack(1, src), Var: 1}
	for i := uint64(0); i < n; i++ {
		s.Add(k, true, false, false)
	}
	d := dep.NewSet()
	s.ExtractDelta(d)
	s.Release()
	return &core.EpochDelta{Epoch: epoch, Worker: worker, Deps: d}
}

// TestObservatoryEpochAssembly: an epoch's frame is cut only when every
// worker has reported it, and the frame unions the shards.
func TestObservatoryEpochAssembly(t *testing.T) {
	o := newObservatory(1, 2, []string{"x", "a"})
	defer o.release()
	_, sub, done := o.subscribe(0)
	if done {
		t.Fatal("fresh observatory reports done")
	}
	o.offer(mkDelta(1, 0, 10, 9, 3))
	select {
	case f := <-sub.ch:
		t.Fatalf("frame %+v cut before all workers reported", f)
	default:
	}
	o.offer(mkDelta(1, 1, 10, 9, 4))
	select {
	case f := <-sub.ch:
		set, _, _, err := dep.Decode(bytes.NewReader(f.Payload))
		if err != nil {
			t.Fatal(err)
		}
		defer set.Release()
		if f.Epoch != 1 || set.Unique() != 1 || set.Instances() != 7 {
			t.Fatalf("epoch %d frame: %d deps, %d instances; want 1 dep, 7 instances", f.Epoch, set.Unique(), set.Instances())
		}
	case <-time.After(time.Second):
		t.Fatal("no frame after the last worker reported")
	}
	o.unsubscribe(sub)

	page := o.depsSince(0)
	if page.Unique != 1 || page.Epoch != 1 || page.Final {
		t.Fatalf("live store: %+v", page)
	}
}

// TestObservatorySlowSubscriberEvicted: a subscriber that never drains is
// cut loose once its buffer fills; the session is never blocked.
func TestObservatorySlowSubscriberEvicted(t *testing.T) {
	o := newObservatory(1, 1, []string{"x", "a"})
	defer o.release()
	_, sub, _ := o.subscribe(0)
	for e := uint32(1); e <= subBuffer+2; e++ {
		done := make(chan struct{})
		go func() {
			o.offer(mkDelta(e, 0, 10, 9, 1))
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("offer blocked on a slow subscriber")
		}
	}
	drained := 0
	for range sub.ch {
		drained++
	}
	if drained != subBuffer {
		t.Fatalf("drained %d frames, want exactly the buffer depth %d", drained, subBuffer)
	}
	o.unsubscribe(sub) // must be safe after eviction
}

// TestObservatoryCatchUpSince: a late subscriber's catch-up frame carries the
// profile so far, filtered to first-observed >= since.
func TestObservatoryCatchUpSince(t *testing.T) {
	o := newObservatory(1, 1, []string{"x", "a"})
	defer o.release()
	o.offer(mkDelta(1, 0, 10, 9, 2))  // key A, first observed epoch 1
	o.offer(mkDelta(2, 0, 20, 19, 3)) // key B, first observed epoch 2

	catch, sub, done := o.subscribe(0)
	if done || catch == nil {
		t.Fatalf("catch-up: done %v, frame %v", done, catch)
	}
	set, _, _, err := dep.Decode(bytes.NewReader(catch.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if set.Unique() != 2 || set.Instances() != 5 || catch.Epoch != 2 || catch.Final {
		t.Fatalf("since=0 catch-up: %d deps, %d instances, epoch %d", set.Unique(), set.Instances(), catch.Epoch)
	}
	set.Release()
	o.unsubscribe(sub)

	catch, sub, _ = o.subscribe(2)
	set, _, _, err = dep.Decode(bytes.NewReader(catch.Payload))
	if err != nil {
		t.Fatal(err)
	}
	if set.Unique() != 1 || set.Instances() != 3 {
		t.Fatalf("since=2 catch-up: %d deps, %d instances; want just key B", set.Unique(), set.Instances())
	}
	set.Release()
	o.unsubscribe(sub)
}

// TestObservatoryAbort: aborting closes subscriber streams without a final
// frame and late subscribers are turned away already-done.
func TestObservatoryAbort(t *testing.T) {
	o := newObservatory(1, 1, []string{"x"})
	defer o.release()
	_, sub, _ := o.subscribe(0)
	o.abort()
	if f, ok := <-sub.ch; ok {
		t.Fatalf("aborted subscriber received frame %+v", f)
	}
	if !o.isAborted() || o.active() {
		t.Fatal("abort state not visible")
	}
	_, late, done := o.subscribe(0)
	if !done {
		t.Fatal("post-abort subscriber not told the session is over")
	}
	if _, ok := <-late.ch; ok {
		t.Fatal("post-abort subscriber channel not closed")
	}
	o.offer(mkDelta(1, 0, 10, 9, 1)) // dropped, not folded
	if o.depsSince(0).Unique != 0 {
		t.Fatal("post-abort offer folded into the live store")
	}
}
