package server

import (
	"context"
	"strings"
	"testing"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	"ddprof/internal/minilang"
	"ddprof/internal/telemetry"
)

// hotProgram builds a target with a small heavy-hitter working set — the
// reduction scalar and the low array cells — hammered inside a long loop,
// plus a cold strided sweep over a large array.
func hotProgram(n int) *minilang.Program {
	p := minilang.New("hot")
	p.MainFunc(func(b *minilang.Block) {
		b.Decl("n", minilang.Ci(n))
		b.DeclArr("big", minilang.V("n"))
		b.Decl("acc", minilang.Ci(0))
		b.For("i", minilang.Ci(0), minilang.V("n"), minilang.Ci(1),
			minilang.LoopOpt{Name: "sweep"}, func(l *minilang.Block) {
				l.Set("big", minilang.V("i"), minilang.V("i"))
				l.Reduce("acc", minilang.OpAdd, minilang.Idx("big", minilang.V("i")))
			})
		b.Free("big")
	})
	return p
}

// varID resolves a variable name in the program's table.
func varID(t *testing.T, p *minilang.Program, name string) loc.VarID {
	t.Helper()
	for i := 0; i < p.Tab.NumVars(); i++ {
		if p.Tab.VarName(loc.VarID(i)) == name {
			return loc.VarID(i)
		}
	}
	t.Fatalf("variable %q not in table", name)
	return 0
}

// TestRemoteHybridSession is the end-to-end acceptance check for the
// backend layer: a remote session selecting the hybrid store over the DDT1
// handshake must pass daemon admission, produce a profile whose heavy-hitter
// (reduction-variable) dependences exactly match the exact backend's, and
// keep the session's total store bytes under the daemon budget.
func TestRemoteHybridSession(t *testing.T) {
	const budget = 4 << 20
	reg := telemetry.NewRegistry()
	srv := New(Config{
		WorkersPerSession: 2,
		MaxStoreBytes:     budget,
		Registry:          reg,
	})
	ln := listenTCP(t)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	p := hotProgram(3000)

	// Exact reference, profiled in-process.
	ref := core.NewSerial(core.Config{Backend: "perfect", Meta: p.Meta})
	if _, err := interp.Run(p, ref, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	want := ref.Flush()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rr, err := ProfileRemote(conn, hotProgram(3000), ClientOptions{
		Workers: 2,
		Backend: "hybrid:slots=4096,exact=64,promote=4",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every dependence on the heavy-hitter reduction variable must be
	// recovered with its exact instance count.
	acc := varID(t, p, "acc")
	checked := 0
	want.Deps.Range(func(k dep.Key, st dep.Stats) bool {
		if k.Var != acc {
			return true
		}
		checked++
		got, ok := rr.Deps.Lookup(k)
		if !ok {
			t.Errorf("heavy-hitter dependence %+v missing from hybrid profile", k)
			return true
		}
		if got.Count != st.Count {
			t.Errorf("heavy-hitter %+v: count %d, want %d", k, got.Count, st.Count)
		}
		return true
	})
	if checked == 0 {
		t.Fatal("reference profile has no reduction-variable dependences")
	}

	// The daemon's flush-time store gauge stays within the admitted budget.
	if got := reg.Gauge("pipeline_store_bytes").Load(); got <= 0 || got > budget {
		t.Errorf("pipeline_store_bytes = %d, want (0, %d]", got, budget)
	}
}

// TestBackendAdmission: the daemon refuses backends it cannot bound under
// MaxStoreBytes — unbounded stores outright, bounded ones that exceed the
// budget across the session's stores — and names the budget in the error.
func TestBackendAdmission(t *testing.T) {
	srv := New(Config{
		WorkersPerSession: 2,
		MaxStoreBytes:     1 << 20,
		Registry:          telemetry.NewRegistry(),
	})
	ln := listenTCP(t)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	for _, tc := range []struct {
		backend string
		wantErr string
	}{
		{"perfect", "no memory bound"},
		{"signature:slots=16m", "store budget"},
		{"no-such-backend", "no-such-backend"},
	} {
		conn, err := Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		_, err = ProfileRemote(conn, testProgram("refused", 50), ClientOptions{Backend: tc.backend})
		conn.Close()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("backend %q: err = %v, want mention of %q", tc.backend, err, tc.wantErr)
		}
	}

	// An explicitly sized signature fits under the same budget.
	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := ProfileRemote(conn, testProgram("fits", 50), ClientOptions{Backend: "signature:slots=4k"}); err != nil {
		t.Errorf("sized signature refused under budget: %v", err)
	}
}
