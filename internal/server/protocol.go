// Package server implements ddprofd, the concurrent data-dependence
// profiling service: a long-lived daemon that accepts recorded DDT1 trace
// streams over TCP or Unix sockets, runs one profiling pipeline
// (internal/core) per client session, and returns the merged dependence set
// in the compact DDP1 binary profile codec (internal/dep).
//
// # Wire protocol
//
// All integers are unsigned varints unless noted. A session is one
// connection:
//
//	client → server:
//	  magic   "DDRP" (4 bytes), version (1 byte, currently 1)
//	  flags   (1 byte): bit 0 race-check, bit 1 exact store (legacy; the
//	          spec "perfect"), bit 2 backend spec follows
//	  backend (only when flags bit 2 is set: a length-prefixed store spec
//	          string, e.g. "hybrid:slots=1m,exact=4096", resolved against
//	          the server's sig backend registry)
//	  workers (uvarint): per-session pipeline worker hint, 0 = server default
//	  vars    (uvarint n, then n × length-prefixed names, in VarID order)
//	  meta    (1 byte present flag; when 1, the loop table and loop-context
//	          registry of the target — see writeMeta)
//	  frames  (uvarint length + payload, repeated; zero length terminates)
//	          — the concatenated payloads form one DDT1 trace stream
//
//	server → client:
//	  status  (1 byte): 0 ok, 1 error
//	  payload (uvarint length + bytes): a DDP1 binary profile on success,
//	          a UTF-8 error message on failure
//
// Shipping the variable table and loop metadata in the handshake lets the
// server run full loop-carried classification and name-preserving encoding,
// so a remote profile is byte-identical to the profile an in-process run of
// the same target produces.
//
// # Watch subscriptions
//
// A connection whose handshake flags carry bit 3 (watch) is a live
// observatory subscription, not a profiling session. The preamble
// short-circuits after the flags byte to:
//
//	session (uvarint): profiling session ID to observe; 0 = the newest
//	        active session, waiting for the next one when none is live
//	since   (uvarint): epoch the catch-up frame starts from; 0 = everything
//
// The server replies with a bare status byte. On error a length-prefixed
// message follows (as in the session response); on success the connection
// becomes a stream of epoch-delta frames (trace.DeltaReader/DeltaWriter),
// each payload a complete DDP1 profile of the dependences whose aggregates
// advanced during one epoch. The frame marked final carries the session's
// unshipped remainder; folding every received payload with dep.DecodeMerge
// reconstructs the session's exact end-of-run profile.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ddprof/internal/loc"
	"ddprof/internal/prog"
)

const (
	protoMagic   = "DDRP"
	protoVersion = 1

	// Handshake flag bits.
	flagRaceCheck   = 1 << 0
	flagExact       = 1 << 1 // legacy shorthand for the "perfect" backend
	flagBackendSpec = 1 << 2 // a length-prefixed store spec string follows
	flagWatch       = 1 << 3 // watch subscription, not a profiling session
	flagsKnown      = flagRaceCheck | flagExact | flagBackendSpec | flagWatch

	statusOK  = 0
	statusErr = 1

	// Hard decode limits; a peer exceeding one is corrupt or hostile.
	maxVars        = 1 << 20
	maxNameLen     = 1 << 12
	maxBackendSpec = 256
	maxLoops       = 1 << 16
	maxCtxs        = 1 << 16
	maxCtxDepth    = 64
	maxRespPayload = 1 << 28
)

// handshake is the decoded session preamble.
type handshake struct {
	Flags    byte
	Backend  string // store spec; "" = none requested (flags may still carry flagExact)
	Workers  int
	VarNames []string
	Meta     *prog.Meta // nil when the client sent no loop metadata

	// Watch sessions (flagWatch) carry only the two fields below after the
	// flags byte; everything above stays zero. WatchSession is the profiling
	// session to observe (0 = the newest active session, waiting for the next
	// one to start when none is live) and WatchSince the epoch the catch-up
	// frame starts from (0 = everything).
	Watch        bool
	WatchSession uint64
	WatchSince   uint64
}

func putUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func putString(w io.Writer, s string) error {
	if err := putUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func getUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, noEOF(err)
	}
	return v, nil
}

func getString(br *bufio.Reader, max int) (string, error) {
	n, err := getUvarint(br)
	if err != nil {
		return "", err
	}
	if n > uint64(max) {
		return "", fmt.Errorf("server: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", noEOF(err)
	}
	return string(buf), nil
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a protocol
// element a clean transport EOF is always a truncation.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// writeHandshake emits the session preamble (everything before the frames).
func writeHandshake(w io.Writer, h *handshake) error {
	if _, err := io.WriteString(w, protoMagic); err != nil {
		return err
	}
	flags := h.Flags
	if h.Backend != "" {
		flags |= flagBackendSpec
	}
	if h.Watch {
		flags |= flagWatch
	}
	if _, err := w.Write([]byte{protoVersion, flags}); err != nil {
		return err
	}
	if h.Watch {
		if err := putUvarint(w, h.WatchSession); err != nil {
			return err
		}
		return putUvarint(w, h.WatchSince)
	}
	if h.Backend != "" {
		if err := putString(w, h.Backend); err != nil {
			return err
		}
	}
	if err := putUvarint(w, uint64(h.Workers)); err != nil {
		return err
	}
	if err := putUvarint(w, uint64(len(h.VarNames))); err != nil {
		return err
	}
	for _, n := range h.VarNames {
		if err := putString(w, n); err != nil {
			return err
		}
	}
	if h.Meta == nil {
		_, err := w.Write([]byte{0})
		return err
	}
	if _, err := w.Write([]byte{1}); err != nil {
		return err
	}
	return writeMeta(w, h.Meta)
}

// readHandshake decodes and validates the session preamble.
func readHandshake(br *bufio.Reader) (*handshake, error) {
	m := make([]byte, 5)
	if _, err := io.ReadFull(br, m); err != nil {
		return nil, fmt.Errorf("server: reading magic: %w", noEOF(err))
	}
	if string(m[:4]) != protoMagic {
		return nil, fmt.Errorf("server: bad magic %q", m[:4])
	}
	if m[4] != protoVersion {
		return nil, fmt.Errorf("server: unsupported protocol version %d", m[4])
	}
	fl, err := br.ReadByte()
	if err != nil {
		return nil, noEOF(err)
	}
	if fl&^byte(flagsKnown) != 0 {
		return nil, fmt.Errorf("server: unknown handshake flags %#x", fl)
	}
	h := &handshake{Flags: fl}
	if fl&flagWatch != 0 {
		h.Watch = true
		if h.WatchSession, err = getUvarint(br); err != nil {
			return nil, fmt.Errorf("server: reading watch session: %w", err)
		}
		if h.WatchSince, err = getUvarint(br); err != nil {
			return nil, fmt.Errorf("server: reading watch epoch: %w", err)
		}
		return h, nil
	}
	if fl&flagBackendSpec != 0 {
		if h.Backend, err = getString(br, maxBackendSpec); err != nil {
			return nil, fmt.Errorf("server: reading backend spec: %w", err)
		}
		if h.Backend == "" {
			return nil, fmt.Errorf("server: empty backend spec")
		}
	}
	wk, err := getUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("server: reading worker hint: %w", err)
	}
	if wk > 1024 {
		return nil, fmt.Errorf("server: implausible worker hint %d", wk)
	}
	h.Workers = int(wk)
	nv, err := getUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("server: reading variable count: %w", err)
	}
	if nv > maxVars {
		return nil, fmt.Errorf("server: implausible variable count %d", nv)
	}
	h.VarNames = make([]string, 0, nv)
	for i := uint64(0); i < nv; i++ {
		name, err := getString(br, maxNameLen)
		if err != nil {
			return nil, fmt.Errorf("server: reading variable name %d: %w", i, err)
		}
		h.VarNames = append(h.VarNames, name)
	}
	present, err := br.ReadByte()
	if err != nil {
		return nil, noEOF(err)
	}
	switch present {
	case 0:
	case 1:
		if h.Meta, err = readMeta(br); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("server: bad meta presence byte %d", present)
	}
	return h, nil
}

// writeMeta serializes the target's static loop metadata: the loop table
// (name, begin, end, OMP annotation) and the interned loop-context registry
// (each context's loop stack, outermost first), in context-ID order.
func writeMeta(w io.Writer, m *prog.Meta) error {
	loops := m.Loops()
	if err := putUvarint(w, uint64(len(loops))); err != nil {
		return err
	}
	for _, l := range loops {
		if err := putString(w, l.Name); err != nil {
			return err
		}
		if err := putUvarint(w, uint64(l.Begin)); err != nil {
			return err
		}
		if err := putUvarint(w, uint64(l.End)); err != nil {
			return err
		}
		omp := byte(0)
		if l.OMP {
			omp = 1
		}
		if _, err := w.Write([]byte{omp}); err != nil {
			return err
		}
	}
	n := m.NumCtxs()
	if err := putUvarint(w, uint64(n)); err != nil {
		return err
	}
	for id := 1; id < n; id++ { // context 0 is always the empty stack
		stack := m.Stack(uint32(id))
		if err := putUvarint(w, uint64(len(stack))); err != nil {
			return err
		}
		for _, l := range stack {
			if err := putUvarint(w, uint64(l)); err != nil {
				return err
			}
		}
	}
	return nil
}

// readMeta rebuilds a prog.Meta from the wire form. Context IDs are
// reproduced exactly by re-interning the stacks in transmission order; any
// stack whose parent prefix was never seen, or that interns to an unexpected
// ID, marks the stream corrupt.
func readMeta(br *bufio.Reader) (*prog.Meta, error) {
	nl, err := getUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("server: reading loop count: %w", err)
	}
	if nl > maxLoops {
		return nil, fmt.Errorf("server: implausible loop count %d", nl)
	}
	m := prog.NewMeta()
	for i := uint64(0); i < nl; i++ {
		var l prog.Loop
		if l.Name, err = getString(br, maxNameLen); err != nil {
			return nil, fmt.Errorf("server: reading loop %d name: %w", i, err)
		}
		b, err := getUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("server: reading loop %d: %w", i, err)
		}
		l.Begin = loc.SourceLoc(b)
		e, err := getUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("server: reading loop %d: %w", i, err)
		}
		l.End = loc.SourceLoc(e)
		omp, err := br.ReadByte()
		if err != nil {
			return nil, noEOF(err)
		}
		l.OMP = omp != 0
		m.AddLoop(l)
	}
	nc, err := getUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("server: reading context count: %w", err)
	}
	if nc == 0 || nc > maxCtxs {
		return nil, fmt.Errorf("server: implausible context count %d", nc)
	}
	// parents maps a stack (as a comparable key) to its context ID.
	parents := map[string]uint32{"": 0}
	key := make([]byte, 0, 2*maxCtxDepth)
	for id := uint64(1); id < nc; id++ {
		depth, err := getUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("server: reading context %d: %w", id, err)
		}
		if depth == 0 || depth > maxCtxDepth {
			return nil, fmt.Errorf("server: implausible context depth %d", depth)
		}
		stack := make([]prog.LoopID, depth)
		key = key[:0]
		for j := range stack {
			v, err := getUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("server: reading context %d: %w", id, err)
			}
			if v >= nl {
				return nil, fmt.Errorf("server: context %d references loop %d of %d", id, v, nl)
			}
			stack[j] = prog.LoopID(v)
			key = append(key, byte(v), byte(v>>8))
		}
		parent, ok := parents[string(key[:2*(depth-1)])]
		if !ok {
			return nil, fmt.Errorf("server: context %d has no parent context", id)
		}
		got := m.PushCtx(parent, stack[depth-1])
		if got != uint32(id) {
			return nil, fmt.Errorf("server: context table corrupt: %d interned as %d", id, got)
		}
		parents[string(key)] = got
	}
	return m, nil
}

// writeResponse emits the server's reply.
func writeResponse(w io.Writer, status byte, payload []byte) error {
	if _, err := w.Write([]byte{status}); err != nil {
		return err
	}
	if err := putUvarint(w, uint64(len(payload))); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readResponse reads the server's reply.
func readResponse(br *bufio.Reader) (status byte, payload []byte, err error) {
	st, err := br.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("server: reading response status: %w", noEOF(err))
	}
	n, err := getUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("server: reading response length: %w", err)
	}
	if n > maxRespPayload {
		return 0, nil, fmt.Errorf("server: implausible response payload %d", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("server: reading response payload: %w", noEOF(err))
	}
	return st, payload, nil
}
