package exp

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// BenchEntry is one parsed `go test -bench` result line that reported a
// custom events/s metric (BenchmarkHotPath does via b.ReportMetric).
// Workload/Pattern are attached from the sub-benchmark's recorded metadata
// (benchMeta); CompRatio is the stride-compression ratio the run reported
// (observed accesses per stored record, 1 = nothing compressed).
type BenchEntry struct {
	Name         string  `json:"name"` // sub-benchmark name, e.g. "serial"
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	Workload     string  `json:"workload,omitempty"`
	Pattern      string  `json:"pattern,omitempty"`
	CompRatio    float64 `json:"comp_ratio,omitempty"`
}

// benchMeta maps BenchmarkHotPath sub-benchmark names to the workload they
// replay and its access pattern, so BENCH_pipeline.json rows carry enough
// context to read without the benchmark source at hand.
var benchMeta = map[string]struct{ Workload, Pattern string }{
	"serial":            {"hotpath", "dependence-dense"},
	"parallel4":         {"hotpath", "dependence-dense"},
	"mt4":               {"hotpath", "dependence-dense"},
	"strided4":          {"strided-sweep", "strided"},
	"strided4-nostride": {"strided-sweep", "strided"},
	"mixed4":            {"mixed-sweep", "strided+random"},
	"mixed4-nostride":   {"mixed-sweep", "strided+random"},
	"ptrchase4":         {"pointer-chase", "random"},

	// BenchmarkHotPath's producer pair and BenchmarkProducer's family ×
	// executor matrix ("scalar/vm" is raw production, "scalar-sink/vm" adds
	// delivery into a no-op hook; see bench_test.go).
	"producer-interp":      {"producer-scalar", "scalar-reduction"},
	"producer-vm":          {"producer-scalar", "scalar-reduction"},
	"scalar/interp":        {"producer-scalar", "scalar-reduction"},
	"scalar/vm":            {"producer-scalar", "scalar-reduction"},
	"scalar-sink/interp":   {"producer-scalar", "scalar-reduction"},
	"scalar-sink/vm":       {"producer-scalar", "scalar-reduction"},
	"strided/interp":       {"producer-strided", "strided"},
	"strided/vm":           {"producer-strided", "strided"},
	"strided-sink/interp":  {"producer-strided", "strided"},
	"strided-sink/vm":      {"producer-strided", "strided"},
	"threaded/interp":      {"producer-threaded", "threaded+locks"},
	"threaded/vm":          {"producer-threaded", "threaded+locks"},
	"threaded-sink/interp": {"producer-threaded", "threaded+locks"},
	"threaded-sink/vm":     {"producer-threaded", "threaded+locks"},

	// BenchmarkMerge's workers × distinct-deps × overlap matrix: "serial" is
	// the old one-worker-at-a-time fold, "tree" the parallel tree reduction
	// on the merge stage now; events/s counts merged source entries (see
	// bench_test.go).
	"w4-d64k-ov50/serial":  {"merge-stage", "4-shard fold, 50% overlap"},
	"w4-d64k-ov50/tree":    {"merge-stage", "4-shard fold, 50% overlap"},
	"w8-d64k-ov50/serial":  {"merge-stage", "8-shard fold, 50% overlap"},
	"w8-d64k-ov50/tree":    {"merge-stage", "8-shard fold, 50% overlap"},
	"w16-d64k-ov50/serial": {"merge-stage", "16-shard fold, 50% overlap"},
	"w16-d64k-ov50/tree":   {"merge-stage", "16-shard fold, 50% overlap"},
	"w8-d16k-ov50/serial":  {"merge-stage", "small profile, 50% overlap"},
	"w8-d16k-ov50/tree":    {"merge-stage", "small profile, 50% overlap"},
	"w8-d256k-ov50/serial": {"merge-stage", "large profile, 50% overlap"},
	"w8-d256k-ov50/tree":   {"merge-stage", "large profile, 50% overlap"},
	"w8-d64k-ov0/serial":   {"merge-stage", "disjoint shards"},
	"w8-d64k-ov0/tree":     {"merge-stage", "disjoint shards"},
	"w8-d64k-ov90/serial":  {"merge-stage", "near-duplicate shards"},
	"w8-d64k-ov90/tree":    {"merge-stage", "near-duplicate shards"},

	// BenchmarkRemoteIngest: the same dependence-dense stream through a full
	// daemon session over a loopback socket (framed DDT1 → batched decode →
	// bulk ingest) and through an in-process profiler of the same
	// configuration — the gap between the pairs is the wire + ingest cost
	// (see internal/server/bench_remote_test.go).
	"remote-serial":    {"remote-ingest", "dependence-dense, framed DDT1"},
	"inproc-serial":    {"remote-ingest", "dependence-dense, in-process"},
	"remote-parallel4": {"remote-ingest", "dependence-dense, framed DDT1"},
	"inproc-parallel4": {"remote-ingest", "dependence-dense, in-process"},
}

// BenchRun is one labelled benchmark invocation (e.g. "baseline" before a
// change, "hotpath" after).
type BenchRun struct {
	Label   string       `json:"label"`
	Entries []BenchEntry `json:"entries"`
}

// BenchFile is the BENCH_pipeline.json schema: an append-only log of
// benchmark runs, so regressions are visible against every recorded
// predecessor rather than only the last one.
type BenchFile struct {
	Benchmark string     `json:"benchmark"`
	Runs      []BenchRun `json:"runs"`
}

// ParseBench extracts the entries of `go test -bench` output. Only lines
// carrying an events/s metric are kept; everything else (goos/pkg banners,
// PASS, ok) is ignored. The sub-benchmark name is the path segment after the
// first '/' with the -cpu suffix stripped: "BenchmarkHotPath/serial-4" →
// "serial".
func ParseBench(r io.Reader) ([]BenchEntry, error) {
	var out []BenchEntry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		e := BenchEntry{Name: benchName(f[0])}
		found := false
		for i := 1; i < len(f); i++ {
			v, err := strconv.ParseFloat(f[i-1], 64)
			if err != nil {
				continue
			}
			switch f[i] {
			case "ns/op":
				e.NsPerOp = v
			case "events/s":
				e.EventsPerSec = v
				found = true
			case "comp-ratio":
				e.CompRatio = v
			}
		}
		if found {
			if md, ok := benchMeta[e.Name]; ok {
				e.Workload, e.Pattern = md.Workload, md.Pattern
			}
			out = append(out, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("no benchmark lines with an events/s metric found")
	}
	return out, nil
}

func benchName(full string) string {
	name := full
	if i := strings.IndexByte(full, '/'); i >= 0 {
		name = full[i+1:]
	}
	// Strip the GOMAXPROCS suffix go test appends ("serial-4" → "serial").
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// BenchDelta is one sub-benchmark's throughput change against a recorded
// baseline run.
type BenchDelta struct {
	Name      string
	Base, Now float64 // events/s
	Ratio     float64 // Now / Base
	Regressed bool
}

// CompareBench checks fresh benchmark entries against the run labelled
// baseLabel in the log at path. A sub-benchmark regresses when its events/s
// falls more than tolerance (a fraction, e.g. 0.10 for 10%) below the
// recorded value. When the fresh output repeats a sub-benchmark (go test
// -count > 1) the best repeat is compared: the gate guards the pipeline's
// attainable throughput, and the first iteration of a process is routinely
// depressed by warm-up and frequency scaling. Sub-benchmarks present on only
// one side are skipped: the gate guards throughput, not coverage. The error
// reports only I/O and schema problems — regression is the callers' decision
// to make from the deltas.
func CompareBench(path, baseLabel string, entries []BenchEntry, tolerance float64) ([]BenchDelta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var base *BenchRun
	for i := range bf.Runs {
		if bf.Runs[i].Label == baseLabel {
			base = &bf.Runs[i]
			break
		}
	}
	if base == nil {
		return nil, fmt.Errorf("%s: no run labelled %q", path, baseLabel)
	}
	// Both sides collapse repeats to the best observed events/s.
	baseline := make(map[string]float64, len(base.Entries))
	for _, e := range base.Entries {
		if e.EventsPerSec > baseline[e.Name] {
			baseline[e.Name] = e.EventsPerSec
		}
	}
	best := make(map[string]float64, len(entries))
	var order []string
	for _, e := range entries {
		if _, seen := best[e.Name]; !seen {
			order = append(order, e.Name)
		}
		if e.EventsPerSec > best[e.Name] {
			best[e.Name] = e.EventsPerSec
		}
	}
	var out []BenchDelta
	for _, name := range order {
		b, ok := baseline[name]
		if !ok || b <= 0 {
			continue
		}
		d := BenchDelta{Name: name, Base: b, Now: best[name], Ratio: best[name] / b}
		d.Regressed = d.Ratio < 1-tolerance
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: run %q shares no sub-benchmarks with the fresh output", path, baseLabel)
	}
	return out, nil
}

// StrideGate is one stride-compression A/B pair: the events/s of a strided
// sub-benchmark with compression on against its "-nostride" twin.
type StrideGate struct {
	Name          string
	With, Without float64 // events/s, best repeat per side
	Ratio         float64 // With / Without
	Pass          bool
}

// GateStrideTwins evaluates the stride-compression speedup gate over fresh
// benchmark entries: every sub-benchmark named "strided..." that has a
// "-nostride" twin must beat it by at least minRatio (both sides collapse
// repeats to the best observed events/s, like CompareBench). Pairs for other
// patterns (mixed twins) are reported but always pass — the gate guards the
// workload compression targets, interference on mixed streams is
// informational.
func GateStrideTwins(entries []BenchEntry, minRatio float64) []StrideGate {
	best := make(map[string]float64, len(entries))
	var order []string
	for _, e := range entries {
		if _, seen := best[e.Name]; !seen {
			order = append(order, e.Name)
		}
		if e.EventsPerSec > best[e.Name] {
			best[e.Name] = e.EventsPerSec
		}
	}
	var out []StrideGate
	for _, name := range order {
		if strings.HasSuffix(name, "-nostride") {
			continue
		}
		without, ok := best[name+"-nostride"]
		if !ok || without <= 0 {
			continue
		}
		g := StrideGate{Name: name, With: best[name], Without: without, Ratio: best[name] / without}
		g.Pass = g.Ratio >= minRatio || !strings.HasPrefix(name, "strided")
		out = append(out, g)
	}
	return out
}

// AppendBenchRun loads path (if it exists), appends a labelled run and writes
// the file back. A run with the same label is replaced in place, so re-runs
// update their row instead of growing the log.
func AppendBenchRun(path, label string, entries []BenchEntry) (*BenchFile, error) {
	bf := &BenchFile{Benchmark: "BenchmarkHotPath"}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, bf); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	run := BenchRun{Label: label, Entries: entries}
	replaced := false
	for i := range bf.Runs {
		if bf.Runs[i].Label == label {
			bf.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		bf.Runs = append(bf.Runs, run)
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return bf, nil
}
