package exp

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// BenchEntry is one parsed `go test -bench` result line that reported a
// custom events/s metric (BenchmarkHotPath does via b.ReportMetric).
type BenchEntry struct {
	Name         string  `json:"name"` // sub-benchmark name, e.g. "serial"
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// BenchRun is one labelled benchmark invocation (e.g. "baseline" before a
// change, "hotpath" after).
type BenchRun struct {
	Label   string       `json:"label"`
	Entries []BenchEntry `json:"entries"`
}

// BenchFile is the BENCH_pipeline.json schema: an append-only log of
// benchmark runs, so regressions are visible against every recorded
// predecessor rather than only the last one.
type BenchFile struct {
	Benchmark string     `json:"benchmark"`
	Runs      []BenchRun `json:"runs"`
}

// ParseBench extracts the entries of `go test -bench` output. Only lines
// carrying an events/s metric are kept; everything else (goos/pkg banners,
// PASS, ok) is ignored. The sub-benchmark name is the path segment after the
// first '/' with the -cpu suffix stripped: "BenchmarkHotPath/serial-4" →
// "serial".
func ParseBench(r io.Reader) ([]BenchEntry, error) {
	var out []BenchEntry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		e := BenchEntry{Name: benchName(f[0])}
		found := false
		for i := 1; i < len(f); i++ {
			v, err := strconv.ParseFloat(f[i-1], 64)
			if err != nil {
				continue
			}
			switch f[i] {
			case "ns/op":
				e.NsPerOp = v
			case "events/s":
				e.EventsPerSec = v
				found = true
			}
		}
		if found {
			out = append(out, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("no benchmark lines with an events/s metric found")
	}
	return out, nil
}

func benchName(full string) string {
	name := full
	if i := strings.IndexByte(full, '/'); i >= 0 {
		name = full[i+1:]
	}
	// Strip the GOMAXPROCS suffix go test appends ("serial-4" → "serial").
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// AppendBenchRun loads path (if it exists), appends a labelled run and writes
// the file back. A run with the same label is replaced in place, so re-runs
// update their row instead of growing the log.
func AppendBenchRun(path, label string, entries []BenchEntry) (*BenchFile, error) {
	bf := &BenchFile{Benchmark: "BenchmarkHotPath"}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, bf); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	run := BenchRun{Label: label, Entries: entries}
	replaced := false
	for i := range bf.Runs {
		if bf.Runs[i].Label == label {
			bf.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		bf.Runs = append(bf.Runs, run)
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return bf, nil
}
