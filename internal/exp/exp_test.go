package exp

import (
	"strconv"
	"strings"
	"testing"

	"ddprof/internal/workloads"
)

// small returns a fast test configuration.
func small() Options {
	o := Defaults()
	o.Scale = 0.4
	return o
}

// TestTable2GroundTruth is the headline Table II check: every NAS benchmark
// must report exactly the paper's "# OMP" and "# identified" columns, the
// signature profiler must identify exactly the same loops as the perfect
// one (0 missed), and nothing extra.
func TestTable2GroundTruth(t *testing.T) {
	tab, rows, err := Table2(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	want := map[string][2]int{}
	for _, w := range workloads.NAS() {
		want[w.Name] = [2]int{w.OMPLoops, w.Identified}
	}
	for _, r := range rows {
		exp := want[r.Program]
		if r.OMP != exp[0] {
			t.Errorf("%s: OMP = %d, want %d", r.Program, r.OMP, exp[0])
		}
		if r.IdentifiedDP != exp[1] {
			t.Errorf("%s: identified(DP) = %d, want %d", r.Program, r.IdentifiedDP, exp[1])
		}
		if r.IdentifiedSig != r.IdentifiedDP {
			t.Errorf("%s: sig identified %d, DP identified %d", r.Program, r.IdentifiedSig, r.IdentifiedDP)
		}
		if r.MissedSig != 0 || r.ExtraSig != 0 {
			t.Errorf("%s: missed=%d extra=%d, want 0/0", r.Program, r.MissedSig, r.ExtraSig)
		}
	}
	if !strings.Contains(tab.String(), "92.5") {
		t.Errorf("table should state the 92.5%% ratio:\n%s", tab.String())
	}
}

// TestTable1Shape checks the FPR/FNR trends on a representative subset:
// rates fall as the signature grows, and the largest signature is
// near-perfect.
func TestTable1Shape(t *testing.T) {
	o := small()
	o.Only = []string{"streamcluster", "tinyjpeg", "rotate"}
	_, rows, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Deps == 0 || r.Addresses == 0 || r.Accesses == 0 {
			t.Errorf("%s: empty row %+v", r.Program, r)
		}
		first, last := r.Rates[0], r.Rates[len(r.Rates)-1]
		if last.FPR > first.FPR+1e-9 {
			t.Errorf("%s: FPR grew with slots: %v -> %v", r.Program, first.FPR, last.FPR)
		}
		if last.FPR > 1.0 || last.FNR > 1.0 {
			t.Errorf("%s: largest signature should be near-perfect, got FPR=%.2f FNR=%.2f",
				r.Program, last.FPR, last.FNR)
		}
	}
}

func TestEq2PredictionAccuracy(t *testing.T) {
	_, rows, err := Eq2(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if d := abs(r.Predicted - r.Measured); d > 0.02 {
			t.Errorf("m=%d n=%d: |pred-meas| = %.4f", r.M, r.N, d)
		}
	}
}

func TestMergeAblationFactors(t *testing.T) {
	o := small()
	o.Only = []string{"CG", "MG"}
	_, rows, err := MergeAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Factor < 10 {
			t.Errorf("%s: merge factor only %.1fx — merging should collapse repeated instances", r.Program, r.Factor)
		}
	}
}

func TestFig9BandedPattern(t *testing.T) {
	_, res, err := Fig9(small())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Matrix
	if m.CrossThread() == 0 {
		t.Fatal("no cross-thread communication detected")
	}
	// Ring-neighbour volume must dominate distant pairs: compare the
	// average neighbour cell against the average distance-3 cell.
	T := m.Threads
	var nb, far uint64
	for p := 0; p < T; p++ {
		nb += m.M[p][(p+1)%T] + m.M[p][(p+T-1)%T]
		far += m.M[p][(p+3)%T]
	}
	if nb <= far*2 {
		t.Errorf("no banded structure: neighbours=%d far=%d\n%s", nb, far, res.Heatmap)
	}
	if !strings.Contains(res.Heatmap, "(producer)") {
		t.Error("heatmap missing")
	}
}

// TestFig5SmokeSubset runs the timing experiment on two workloads only and
// checks basic sanity (positive slowdowns, parallel no slower than ~serial
// beyond noise is NOT asserted — timing is environment-dependent).
func TestFig5SmokeSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	o := small()
	o.Only = []string{"EP", "rotate"}
	tab, rows, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Serial <= 0 || r.LockFree8T <= 0 || r.LockBased8T <= 0 || r.LockFree16T <= 0 {
			t.Errorf("%s: non-positive slowdowns: %+v", r.Program, r)
		}
	}
	if !strings.Contains(tab.String(), "nas-average") {
		t.Error("missing suite average row")
	}
}

func TestFig6SmokeSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	o := small()
	o.Only = []string{"rgbyuv"}
	_, rows, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Workers8 <= 0 || rows[0].Workers16 <= 0 {
		t.Errorf("bad rows: %+v", rows)
	}
}

func TestFig7MemoryAccounting(t *testing.T) {
	o := small()
	o.Only = []string{"FT", "streamcluster"}
	_, rows, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.T8 == 0 || r.T16 == 0 {
			t.Errorf("%s: zero memory accounted: %+v", r.Program, r)
		}
		// Same total slot budget: the byte totals should be in the same
		// ballpark across worker counts (within 4x).
		hi, lo := r.T16, r.T8
		if hi < lo {
			hi, lo = lo, hi
		}
		if hi > 4*lo {
			t.Errorf("%s: 8T vs 16T memory wildly different: %d vs %d", r.Program, r.T8, r.T16)
		}
	}
}

func TestFig8MemoryAccounting(t *testing.T) {
	o := small()
	o.Only = []string{"md5"}
	_, rows, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].T8 == 0 {
		t.Errorf("bad rows: %+v", rows)
	}
}

func TestStoreAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	_, rows, err := StoreAblation(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.HasPrefix(rows[0].Store, "signature") {
		t.Fatal("first row must be the signature baseline")
	}
	for _, r := range rows[1:] {
		if r.RelativeToSig <= 0 {
			t.Errorf("%s: bad relative time %v", r.Store, r.RelativeToSig)
		}
	}
}

// TestStoreAccuracy is the measured-FPR-vs-ground-truth ablation: exact
// backends must measure clean, every backend's FPR must stay at or under
// the Eq. (2) collision bound, and the hybrid's exact heavy-hitter tier
// must never measure worse than the plain signature at the same slot
// count.
func TestStoreAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("replays two workload captures per backend")
	}
	o := small()
	_, rows, err := StoreAccuracy(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	sigFPR := map[string]float64{}
	for _, r := range rows {
		if r.Slots == 0 {
			if r.Measured.FPR != 0 || r.Measured.FNR != 0 {
				t.Errorf("%s/%s: exact backend measured FPR=%.2f FNR=%.2f", r.Program, r.Backend, r.Measured.FPR, r.Measured.FNR)
			}
			continue
		}
		if r.Measured.FPR > r.Predicted+1e-9 {
			t.Errorf("%s/%s: measured FPR %.2f%% above Eq2 bound %.2f%%", r.Program, r.Backend, r.Measured.FPR, r.Predicted)
		}
		key := func(backend string) string { return r.Program + "/" + backend + "/" + itoa(r.Slots) }
		if strings.HasPrefix(r.Backend, "signature") {
			sigFPR[key("m")] = r.Measured.FPR
		} else if strings.HasPrefix(r.Backend, "hybrid") {
			if base, ok := sigFPR[key("m")]; ok && r.Measured.FPR > base+1e-9 {
				t.Errorf("%s m=%d: hybrid FPR %.2f%% worse than signature %.2f%%", r.Program, r.Slots, r.Measured.FPR, base)
			}
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestOnlyFilter(t *testing.T) {
	o := small()
	o.Only = []string{"EP"}
	_, rows, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Program != "EP" {
		t.Errorf("Only filter broken: %+v", rows)
	}
}

func TestPaperScaleOptions(t *testing.T) {
	o := PaperScale()
	if o.Slots[2] != 100_000_000 || o.SlotsPerWorker != 6_250_000 || o.Reps != 3 {
		t.Errorf("paper-scale options wrong: %+v", o)
	}
}

// TestBalanceOrdering: redistribution must not worsen the modulo imbalance,
// and round-robin dealing must be near-perfect (§IV-A / §VI-B).
func TestBalanceOrdering(t *testing.T) {
	o := Defaults() // full scale: enough chunks for the statistics to settle
	o.Only = []string{"kmeans"}
	_, rows, err := Balance(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Modulo < 1 || r.Redistributed < 1 || r.RoundRobin < 1 {
		t.Errorf("imbalance below 1: %+v", r)
	}
	if r.Redistributed > r.Modulo*1.05 {
		t.Errorf("redistribution worsened balance: %.2f -> %.2f", r.Modulo, r.Redistributed)
	}
	if r.RoundRobin > 1.25 {
		t.Errorf("round-robin not balanced: %.2f", r.RoundRobin)
	}
	if r.Migrations == 0 {
		t.Error("no migrations performed")
	}
	if r.RoundRobin > r.Modulo {
		t.Errorf("round-robin (%.2f) should not be worse than modulo (%.2f)", r.RoundRobin, r.Modulo)
	}
}

// TestSweepMonotoneTail: the FPR/FNR curve must be non-increasing from the
// footprint onward and exactly zero once slots exceed it.
func TestSweepMonotoneTail(t *testing.T) {
	o := small()
	_, rows, err := Sweep(o, "rotate")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.FPR != 0 || last.FNR != 0 {
		t.Errorf("largest signature not clean: FPR=%.2f FNR=%.2f", last.FPR, last.FNR)
	}
	if rows[0].FPR == 0 {
		t.Error("smallest signature shows no collisions — sweep range wrong")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Predicted > rows[i-1].Predicted+1e-9 {
			t.Error("Eq.(2) prediction must decrease with slots")
		}
	}
	if _, _, err := Sweep(o, "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
