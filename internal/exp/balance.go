package exp

import (
	"fmt"

	"ddprof/internal/core"
	"ddprof/internal/interp"
	"ddprof/internal/report"
	"ddprof/internal/workloads"
)

// BalanceRow reports worker-load imbalance (max/mean events per worker)
// under three distribution strategies for one benchmark.
type BalanceRow struct {
	Program string
	// Modulo is the plain addr%W rule (§IV, Equation 1).
	Modulo float64
	// Redistributed adds the §IV-A heavy-hitter migration.
	Redistributed float64
	Migrations    uint64
	// RoundRobin is the untyped existence profiler's dealing (§VI-B future
	// work: no per-address ownership needed).
	RoundRobin float64
}

// Balance quantifies the load-balancing discussion of §IV-A and §VI-B:
// how evenly the profiling work spreads over 8 workers under the modulo
// rule, with heavy-hitter redistribution, and with order-free round-robin
// dealing. Unlike the timing figures this is deterministic and
// machine-independent.
func Balance(opt Options) (*report.Table, []BalanceRow, error) {
	opt = opt.norm()
	const workers = 8
	var rows []BalanceRow
	// The paper names kMeans, rgbyuv, rotate, bodytrack and h264dec as the
	// benchmarks whose imbalanced access patterns hurt scaling.
	names := []string{"kmeans", "rgbyuv", "rotate", "bodytrack", "h264dec", "CG", "FT"}
	for _, name := range names {
		if !opt.want(name) {
			continue
		}
		w, ok := workloads.ByName(name)
		if !ok {
			return nil, nil, fmt.Errorf("unknown workload %q", name)
		}
		row := BalanceRow{Program: name}

		run := func(redistribute int) (*core.Result, error) {
			p := w.Build(opt.wcfg())
			prof := core.NewParallel(core.Config{
				Workers:           workers,
				Backend:           "perfect",
				RedistributeEvery: redistribute,
				Metrics:           Telemetry,
			})
			if _, err := opt.run(p, prof, interp.Options{}); err != nil {
				return nil, err
			}
			return prof.Flush(), nil
		}
		res, err := run(0)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", name, err)
		}
		row.Modulo = core.Imbalance(res.WorkerEvents)

		res, err = run(16)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", name, err)
		}
		row.Redistributed = core.Imbalance(res.WorkerEvents)
		row.Migrations = res.Stats.Migrations

		ex := core.NewExistence(core.Config{Workers: workers})
		if _, err := opt.run(w.Build(opt.wcfg()), ex, interp.Options{}); err != nil {
			return nil, nil, fmt.Errorf("%s existence: %w", name, err)
		}
		row.RoundRobin = core.Imbalance(ex.Flush().WorkerEvents)
		rows = append(rows, row)
	}

	tab := &report.Table{
		Title:   "Load balance (§IV-A, §VI-B): worker imbalance = max/mean events over 8 workers",
		Headers: []string{"Program", "modulo", "modulo+redistribution", "migrations", "round-robin (untyped)"},
	}
	for _, r := range rows {
		tab.AddRow(r.Program, fmt.Sprintf("%.2f", r.Modulo),
			fmt.Sprintf("%.2f", r.Redistributed), r.Migrations,
			fmt.Sprintf("%.2f", r.RoundRobin))
	}
	tab.Notes = append(tab.Notes,
		"1.00 = perfect balance; the round-robin column is only available because untyped",
		"existence profiling does not need per-address ordering (the paper's §VI-B future work)")
	return tab, rows, nil
}
