package exp

import (
	"fmt"

	"ddprof/internal/report"
	"ddprof/internal/stats"
	"ddprof/internal/workloads"
)

// SweepRow is one point of the signature-size sweep.
type SweepRow struct {
	Slots     int
	FPR, FNR  float64
	Predicted float64 // Eq. (2) prediction for this m and the stream's n
}

// Sweep traces the full FPR/FNR-vs-signature-size curve for one workload,
// from far below its address footprint to far above, alongside the Eq. (2)
// collision prediction. Table I samples this curve at three sizes; the
// sweep exposes the intermediate regime (rates fall as m grows, hitting
// exactly zero once m exceeds the footprint).
func Sweep(opt Options, workload string) (*report.Table, []SweepRow, error) {
	opt = opt.norm()
	w, ok := workloads.ByName(workload)
	if !ok {
		return nil, nil, fmt.Errorf("unknown workload %q", workload)
	}
	cap, _, err := captureRun(opt, w.Build(opt.wcfg()))
	if err != nil {
		return nil, nil, err
	}
	truth := replay(cap, perfectSerial(w.Build(opt.wcfg())))
	n := cap.Addresses()

	var rows []SweepRow
	// Sweep m over n/16 .. 16n in powers of two.
	for m := n / 16; m <= n*16; m *= 2 {
		if m < 4 {
			m = 4
		}
		got := replay(cap, sigSerial(w.Build(opt.wcfg()), m))
		r := stats.Compare(truth.Deps, got.Deps)
		rows = append(rows, SweepRow{
			Slots:     m,
			FPR:       r.FPR,
			FNR:       r.FNR,
			Predicted: 100 * stats.PredictedFP(float64(m), float64(n)),
		})
	}

	tab := &report.Table{
		Title:   fmt.Sprintf("Signature-size sweep for %s (%d addresses, %d true deps)", workload, n, truth.Deps.Unique()),
		Headers: []string{"slots", "slots/addresses", "FPR%", "FNR%", "Eq.(2) slot-collision%"},
	}
	for _, r := range rows {
		tab.AddRow(r.Slots, fmt.Sprintf("%.2f", float64(r.Slots)/float64(n)),
			r.FPR, r.FNR, fmt.Sprintf("%.1f", r.Predicted))
	}
	tab.Notes = append(tab.Notes,
		"FPR/FNR are over merged dependence records; Eq.(2) predicts per-address slot",
		"collisions, the mechanism that produces them — both fall to 0 once slots exceed",
		"the footprint")
	return tab, rows, nil
}
