package exp

import (
	"fmt"

	"ddprof/internal/report"
	"ddprof/internal/stats"
	"ddprof/internal/workloads"
)

// StoreAccuracyRow is one backend/size point of the measured-FPR ablation.
type StoreAccuracyRow struct {
	Family    string // workload suite ("nas", "starbench")
	Program   string
	Backend   string // registry spec profiled
	Slots     int    // signature slots m (0 for exact backends)
	Addresses int    // distinct addresses n in the stream
	// Predicted is Equation (2), Pfp = 1 − (1 − 1/m)^n, in percent — the
	// paper's model of the slot-collision probability. Zero for exact
	// backends.
	Predicted float64
	// Measured compares the backend's dependence set against the exact
	// ground truth at merged-dependence granularity.
	Measured stats.Rates
}

// StoreAccuracy measures each backend's false-positive rate against exact
// ground truth, per workload family, and puts the measurement next to the
// Equation (2) prediction. One representative per family keeps the run
// short: CG for the NAS solvers, rgbyuv for the address-heavy Starbench
// kernels. Exact backends must measure 0/0; the signature's measured FPR
// tracks (and stays under) the Eq. (2) slot-collision bound, since a slot
// collision is necessary but not sufficient for a spurious dependence; the
// hybrid's FPR can only improve on the signature's because its heavy
// hitters are exact.
func StoreAccuracy(opt Options) (*report.Table, []StoreAccuracyRow, error) {
	opt = opt.norm()
	var rows []StoreAccuracyRow
	for _, name := range []string{"CG", "rgbyuv"} {
		if !opt.want(name) {
			continue
		}
		w, ok := workloads.ByName(name)
		if !ok {
			return nil, nil, fmt.Errorf("unknown workload %q", name)
		}
		p := w.Build(opt.wcfg())
		cap, _, err := captureRun(opt, p)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", name, err)
		}
		truth := replay(cap, perfectSerial(w.Build(opt.wcfg())))
		n := cap.Addresses()

		measure := func(spec string, slots int) {
			got := replay(cap, backendSerial(w.Build(opt.wcfg()), spec, 0))
			row := StoreAccuracyRow{
				Family:    w.Suite,
				Program:   name,
				Backend:   spec,
				Slots:     slots,
				Addresses: n,
				Measured:  stats.Compare(truth.Deps, got.Deps),
			}
			if slots > 0 {
				row.Predicted = 100 * stats.PredictedFP(float64(slots), float64(n))
			}
			rows = append(rows, row)
		}

		measure("shadow", 0)
		for _, m := range opt.Slots {
			measure(fmt.Sprintf("signature:slots=%d", m), m)
			measure(fmt.Sprintf("hybrid:slots=%d,exact=4096", m), m)
		}
	}

	tab := &report.Table{
		Title:   "Store accuracy: measured FPR vs the Equation (2) prediction, per workload family",
		Headers: []string{"Family", "Program", "backend", "m (slots)", "n (addresses)", "Eq2 Pfp", "measured FPR", "FNR"},
	}
	for _, r := range rows {
		m := "—"
		pred := "—"
		if r.Slots > 0 {
			m = report.SI(float64(r.Slots))
			pred = fmt.Sprintf("%.3f%%", r.Predicted)
		}
		tab.AddRow(r.Family, r.Program, r.Backend, m, report.SI(float64(r.Addresses)),
			pred, fmt.Sprintf("%.3f%%", r.Measured.FPR), fmt.Sprintf("%.3f%%", r.Measured.FNR))
	}
	tab.Notes = append(tab.Notes,
		"Eq2 Pfp bounds the slot-collision probability; a collision is necessary but not",
		"sufficient for a spurious dependence, so measured FPR <= the bound. Exact rows are 0.")
	return tab, rows, nil
}
