package exp

// Live accuracy telemetry against Eq. (2) on a real workload: the measured
// signature false-positive rate (write-slot occupancy published through the
// pipeline gauges) must track the paper's closed-form prediction
// Pfp = 1 - (1 - 1/m)^n on the rotate workload.

import (
	"testing"

	"ddprof/internal/core"
	"ddprof/internal/telemetry"
	"ddprof/internal/workloads"
)

func TestRotateMeasuredFPRMatchesEq2(t *testing.T) {
	w, ok := workloads.ByName("rotate")
	if !ok {
		t.Fatal("rotate workload not registered")
	}
	opt := Defaults().norm()
	p := w.Build(opt.wcfg())
	cap, _, err := captureRun(Options{}, p)
	if err != nil {
		t.Fatal(err)
	}

	// Size the signature at 4x the address footprint. Eq. (2) models uniform
	// hashing while the locality-preserving modulo hash keeps contiguous
	// addresses collision-free, so the two regimes only agree at low load
	// factors; 4x headroom keeps the write-set load under ~0.25 where the
	// divergence stays within a few points.
	slots := 4 * cap.Addresses()
	reg := telemetry.NewRegistry()
	pipe := reg.Pipeline("t")
	prof := core.NewSerial(core.Config{
		SlotsPerWorker: slots,
		Meta:           p.Meta,
		Metrics:        pipe,
		TrackAccuracy:  true,
	})
	replay(cap, prof)

	meas := float64(pipe.SigFPRMeasuredPPM[0].Load()) / 1e6
	pred := float64(pipe.SigFPRPredictedPPM[0].Load()) / 1e6
	if meas == 0 || pred == 0 {
		t.Fatalf("accuracy gauges not published: measured=%v predicted=%v", meas, pred)
	}
	const tol = 0.04
	if diff := meas - pred; diff < -tol || diff > tol {
		t.Errorf("rotate: measured FPR %.4f vs Eq. (2) predicted %.4f — diverge beyond %.2f",
			meas, pred, tol)
	}
	t.Logf("rotate: slots=%d measured=%.4f predicted=%.4f", slots, meas, pred)
}
