package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: ddprof
BenchmarkHotPath/serial-4         	 1000000	       100.5 ns/op	   9941178 events/s
BenchmarkHotPath/parallel4-4      	  500000	       158.2 ns/op	   6320256 events/s
BenchmarkOther-4                  	  100000	      1000.0 ns/op
PASS
ok  	ddprof	12.3s
`
	entries, err := ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2 (lines without events/s are skipped)", len(entries))
	}
	if entries[0].Name != "serial" || entries[0].EventsPerSec != 9941178 || entries[0].NsPerOp != 100.5 {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if entries[1].Name != "parallel4" {
		t.Fatalf("entry 1 name = %q, want parallel4 (cpu suffix stripped)", entries[1].Name)
	}
	if _, err := ParseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("expected error for output without benchmark lines")
	}
}

func TestAppendBenchRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if _, err := AppendBenchRun(path, "baseline", []BenchEntry{{Name: "serial", EventsPerSec: 1e6}}); err != nil {
		t.Fatal(err)
	}
	bf, err := AppendBenchRun(path, "after", []BenchEntry{{Name: "serial", EventsPerSec: 2e6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Runs) != 2 || bf.Runs[0].Label != "baseline" || bf.Runs[1].Label != "after" {
		t.Fatalf("runs = %+v", bf.Runs)
	}
	// Re-recording a label replaces the run instead of appending.
	bf, err = AppendBenchRun(path, "after", []BenchEntry{{Name: "serial", EventsPerSec: 3e6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Runs) != 2 || bf.Runs[1].Entries[0].EventsPerSec != 3e6 {
		t.Fatalf("after replace: %+v", bf.Runs)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
