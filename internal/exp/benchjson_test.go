package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: ddprof
BenchmarkHotPath/serial-4         	 1000000	       100.5 ns/op	   9941178 events/s
BenchmarkHotPath/parallel4-4      	  500000	       158.2 ns/op	   6320256 events/s
BenchmarkOther-4                  	  100000	      1000.0 ns/op
PASS
ok  	ddprof	12.3s
`
	entries, err := ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2 (lines without events/s are skipped)", len(entries))
	}
	if entries[0].Name != "serial" || entries[0].EventsPerSec != 9941178 || entries[0].NsPerOp != 100.5 {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if entries[1].Name != "parallel4" {
		t.Fatalf("entry 1 name = %q, want parallel4 (cpu suffix stripped)", entries[1].Name)
	}
	if _, err := ParseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("expected error for output without benchmark lines")
	}
}

func TestAppendBenchRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if _, err := AppendBenchRun(path, "baseline", []BenchEntry{{Name: "serial", EventsPerSec: 1e6}}); err != nil {
		t.Fatal(err)
	}
	bf, err := AppendBenchRun(path, "after", []BenchEntry{{Name: "serial", EventsPerSec: 2e6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Runs) != 2 || bf.Runs[0].Label != "baseline" || bf.Runs[1].Label != "after" {
		t.Fatalf("runs = %+v", bf.Runs)
	}
	// Re-recording a label replaces the run instead of appending.
	bf, err = AppendBenchRun(path, "after", []BenchEntry{{Name: "serial", EventsPerSec: 3e6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Runs) != 2 || bf.Runs[1].Entries[0].EventsPerSec != 3e6 {
		t.Fatalf("after replace: %+v", bf.Runs)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestCompareBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if _, err := AppendBenchRun(path, "hotpath", []BenchEntry{
		{Name: "serial", EventsPerSec: 1e6},
		{Name: "parallel4", EventsPerSec: 2e6},
		{Name: "mt4", EventsPerSec: 3e6},
	}); err != nil {
		t.Fatal(err)
	}

	fresh := []BenchEntry{
		{Name: "serial", EventsPerSec: 0.95e6},   // -5%: within tolerance
		{Name: "parallel4", EventsPerSec: 1.7e6}, // -15%: regressed
		{Name: "newbench", EventsPerSec: 1},      // no baseline: skipped
	}
	deltas, err := CompareBench(path, "hotpath", fresh, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v, want 2 (unmatched names skipped)", deltas)
	}
	byName := map[string]BenchDelta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["serial"]; d.Regressed {
		t.Errorf("serial at 95%% flagged as regressed: %+v", d)
	}
	if d := byName["parallel4"]; !d.Regressed {
		t.Errorf("parallel4 at 85%% not flagged: %+v", d)
	}

	// With -count > 1 the fresh output repeats names; the best repeat wins,
	// so a cold first iteration cannot fail the gate on its own.
	repeated := []BenchEntry{
		{Name: "serial", EventsPerSec: 0.6e6}, // cold first run
		{Name: "serial", EventsPerSec: 1.02e6},
		{Name: "serial", EventsPerSec: 0.98e6},
	}
	deltas, err = CompareBench(path, "hotpath", repeated, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Now != 1.02e6 || deltas[0].Regressed {
		t.Errorf("repeated runs not collapsed to best: %+v", deltas)
	}

	if _, err := CompareBench(path, "no-such-run", fresh, 0.10); err == nil {
		t.Error("missing baseline label did not error")
	}
	if _, err := CompareBench(path, "hotpath", []BenchEntry{{Name: "zzz"}}, 0.10); err == nil {
		t.Error("disjoint sub-benchmark sets did not error")
	}
	if _, err := CompareBench(filepath.Join(t.TempDir(), "absent.json"), "hotpath", fresh, 0.10); err == nil {
		t.Error("missing file did not error")
	}
}
