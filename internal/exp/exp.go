// Package exp implements one driver per table and figure of the paper's
// evaluation (§VI, §VII). Each driver runs the workloads through the
// profiler configurations the paper compares and renders the same rows or
// series the paper reports. cmd/ddexp exposes them on the command line and
// bench_test.go as testing.B benchmarks.
package exp

import (
	"fmt"
	"time"

	"ddprof/internal/core"
	"ddprof/internal/event"
	"ddprof/internal/interp"
	"ddprof/internal/minilang"
	"ddprof/internal/telemetry"
	"ddprof/internal/vm"
	"ddprof/internal/workloads"
)

// Telemetry, when non-nil (cmd/ddexp sets it under -metrics), is attached to
// every profiler the experiments construct, so a local experiment run exposes
// the same live pipeline counters as the ddprofd service.
var Telemetry *telemetry.Pipeline

// Options scale and configure the experiments.
type Options struct {
	// Scale multiplies workload problem sizes (1.0 = small default).
	Scale float64
	// TargetThreads is the thread count of parallel target programs
	// (paper: 4).
	TargetThreads int
	// Slots are the Table I signature sizes. The default {1e4, 1e5, 1e6}
	// scales the paper's {1e6, 1e7, 1e8} down with the address counts;
	// -scale paper restores the original sizes.
	Slots []int
	// SlotsPerWorker is the per-worker signature size of the performance
	// experiments (paper: 6.25e6 per worker, 1e8 total over 16).
	SlotsPerWorker int
	// Reps is the number of timing repetitions to average (paper: 3).
	Reps int
	// Only restricts an experiment to the named workloads (empty = all).
	Only []string
	// Producer executes the target programs and emits the access events.
	// nil selects the bytecode VM; cmd/ddexp -interp substitutes the
	// reference tree-walking interpreter. Both emit byte-identical
	// streams, so results differ only in producer-side wall time.
	Producer interp.Executor
}

// exec returns the configured producer, defaulting to the bytecode VM.
func (o Options) exec() interp.Executor {
	if o.Producer != nil {
		return o.Producer
	}
	return vm.New()
}

// run executes p under the configured producer.
func (o Options) run(p *minilang.Program, hook event.Hook, iopt interp.Options) (*interp.RunInfo, error) {
	return o.exec().Run(p, hook, iopt)
}

// want reports whether a workload participates under the Only filter.
func (o Options) want(name string) bool {
	if len(o.Only) == 0 {
		return true
	}
	for _, n := range o.Only {
		if n == name {
			return true
		}
	}
	return false
}

// Defaults returns the small-scale configuration.
func Defaults() Options {
	return Options{
		Scale:          1,
		TargetThreads:  4,
		Slots:          []int{10_000, 100_000, 1_000_000},
		SlotsPerWorker: 1 << 17,
		Reps:           1,
	}
}

// PaperScale returns a configuration with the paper's signature sizes and
// larger workloads; expect multi-minute runtimes.
func PaperScale() Options {
	o := Defaults()
	o.Scale = 4
	o.Slots = []int{1_000_000, 10_000_000, 100_000_000}
	o.SlotsPerWorker = 6_250_000
	o.Reps = 3
	return o
}

func (o Options) norm() Options {
	d := Defaults()
	if o.Scale <= 0 {
		o.Scale = d.Scale
	}
	if o.TargetThreads <= 0 {
		o.TargetThreads = d.TargetThreads
	}
	if len(o.Slots) == 0 {
		o.Slots = d.Slots
	}
	if o.SlotsPerWorker <= 0 {
		o.SlotsPerWorker = d.SlotsPerWorker
	}
	if o.Reps <= 0 {
		o.Reps = d.Reps
	}
	return o
}

func (o Options) wcfg() workloads.Config {
	return workloads.Config{Scale: o.Scale, Threads: o.TargetThreads}
}

// replay feeds a recorded stream into a profiler and flushes it.
func replay(c *event.Recorder, p core.Profiler) *core.Result {
	for _, a := range c.Events() {
		p.Access(a)
	}
	return p.Flush()
}

// captureRun executes a program once under a recording hook.
func captureRun(opt Options, p *minilang.Program) (*event.Recorder, *interp.RunInfo, error) {
	c := event.NewRecorder()
	info, err := opt.run(p, c, interp.Options{})
	if err != nil {
		return nil, nil, err
	}
	return c, info, nil
}

// captureAndReplayDirect runs a program directly under a profiler hook
// (no intermediate capture).
func captureAndReplayDirect(opt Options, p *minilang.Program, prof core.Profiler) (*interp.RunInfo, error) {
	return opt.run(p, prof, interp.Options{})
}

// timeRun measures the wall time of fn averaged over reps runs.
func timeRun(reps int, fn func() error) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(reps), nil
}

// backendSerial builds a serial profiler over any backend spec.
func backendSerial(p *minilang.Program, backend string, slots int) *core.Serial {
	return core.NewSerial(core.Config{
		Backend:        backend,
		SlotsPerWorker: slots,
		Meta:           p.Meta,
		Metrics:        Telemetry,
	})
}

// perfectSerial builds a serial profiler with an exact store.
func perfectSerial(p *minilang.Program) *core.Serial {
	return backendSerial(p, "perfect", 0)
}

// sigSerial builds a serial profiler with a real signature.
func sigSerial(p *minilang.Program, slots int) *core.Serial {
	return backendSerial(p, "signature", slots)
}

// slowdown formats a profiling/native time ratio.
func slowdown(prof, native time.Duration) float64 {
	if native <= 0 {
		return 0
	}
	return float64(prof) / float64(native)
}

// geoLabel annotates suite-average rows.
func geoLabel(suite string) string { return fmt.Sprintf("%s-average", suite) }
