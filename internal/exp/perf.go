package exp

import (
	"fmt"
	"time"

	"ddprof/internal/core"
	"ddprof/internal/interp"
	"ddprof/internal/minilang"
	"ddprof/internal/report"
	"ddprof/internal/sig"
	"ddprof/internal/workloads"
)

// Fig5Row is one benchmark's slowdown series in Figure 5.
type Fig5Row struct {
	Program     string
	Suite       string
	Native      time.Duration
	Serial      float64 // slowdowns (x)
	LockBased8T float64
	LockFree8T  float64
	LockFree16T float64
}

// Fig5 reproduces Figure 5: slowdowns of the data-dependence profiler on
// sequential NAS and Starbench benchmarks under four configurations —
// serial, 8-thread lock-based, 8-thread lock-free, 16-thread lock-free.
func Fig5(opt Options) (*report.Table, []Fig5Row, error) {
	opt = opt.norm()
	var rows []Fig5Row
	for _, w := range workloads.All() {
		if !opt.want(w.Name) {
			continue
		}
		row := Fig5Row{Program: w.Name, Suite: w.Suite}
		native, err := timeRun(opt.Reps, func() error {
			_, err := opt.run(w.Build(opt.wcfg()), nil, interp.Options{})
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("%s native: %w", w.Name, err)
		}
		row.Native = native

		run := func(mk func(p *minilang.Program) core.Profiler) (float64, error) {
			d, err := timeRun(opt.Reps, func() error {
				p := w.Build(opt.wcfg())
				prof := mk(p)
				if _, err := opt.run(p, prof, interp.Options{}); err != nil {
					return err
				}
				prof.Flush()
				return nil
			})
			return slowdown(d, native), err
		}

		if row.Serial, err = run(func(p *minilang.Program) core.Profiler {
			return core.NewSerial(core.Config{Workers: 16, SlotsPerWorker: opt.SlotsPerWorker, Meta: p.Meta, Metrics: Telemetry})
		}); err != nil {
			return nil, nil, fmt.Errorf("%s serial: %w", w.Name, err)
		}
		if row.LockBased8T, err = run(func(p *minilang.Program) core.Profiler {
			return core.NewParallel(core.Config{Workers: 8, SlotsPerWorker: 2 * opt.SlotsPerWorker, LockBased: true, Meta: p.Meta, Metrics: Telemetry})
		}); err != nil {
			return nil, nil, fmt.Errorf("%s lock-based: %w", w.Name, err)
		}
		if row.LockFree8T, err = run(func(p *minilang.Program) core.Profiler {
			return core.NewParallel(core.Config{Workers: 8, SlotsPerWorker: 2 * opt.SlotsPerWorker, Meta: p.Meta, Metrics: Telemetry})
		}); err != nil {
			return nil, nil, fmt.Errorf("%s lock-free 8T: %w", w.Name, err)
		}
		if row.LockFree16T, err = run(func(p *minilang.Program) core.Profiler {
			return core.NewParallel(core.Config{Workers: 16, SlotsPerWorker: opt.SlotsPerWorker, Meta: p.Meta, Metrics: Telemetry})
		}); err != nil {
			return nil, nil, fmt.Errorf("%s lock-free 16T: %w", w.Name, err)
		}
		rows = append(rows, row)
	}

	tab := &report.Table{
		Title:   "Figure 5: profiler slowdowns, sequential targets (x over native)",
		Headers: []string{"Program", "native", "serial", "8T lock-based", "8T lock-free", "16T lock-free"},
	}
	appendAvg := func(suite string) {
		var s Fig5Row
		n := 0
		for _, r := range rows {
			if r.Suite == suite {
				s.Serial += r.Serial
				s.LockBased8T += r.LockBased8T
				s.LockFree8T += r.LockFree8T
				s.LockFree16T += r.LockFree16T
				n++
			}
		}
		if n > 0 {
			tab.AddRow(geoLabel(suite), "—",
				s.Serial/float64(n), s.LockBased8T/float64(n),
				s.LockFree8T/float64(n), s.LockFree16T/float64(n))
		}
	}
	for _, r := range rows {
		tab.AddRow(r.Program, r.Native.Round(time.Millisecond).String(),
			r.Serial, r.LockBased8T, r.LockFree8T, r.LockFree16T)
	}
	appendAvg("nas")
	appendAvg("starbench")
	tab.Notes = append(tab.Notes,
		"native = uninstrumented interpreter run; absolute slowdowns are smaller than the paper's",
		"(the interpreted native baseline is slower than compiled code) but the ordering",
		"serial > 8T lock-based > 8T lock-free > 16T lock-free is the reproduced result")
	return tab, rows, nil
}

// Fig6Row is one parallel-target slowdown series of Figure 6.
type Fig6Row struct {
	Program   string
	Native    time.Duration
	Workers8  float64
	Workers16 float64
}

// Fig6 reproduces Figure 6: slowdown of the profiler on parallel Starbench
// programs (pthread version, 4 target threads) with 8 and 16 profiling
// threads.
func Fig6(opt Options) (*report.Table, []Fig6Row, error) {
	opt = opt.norm()
	var rows []Fig6Row
	for _, w := range workloads.Starbench() {
		if w.BuildParallel == nil || !opt.want(w.Name) {
			continue
		}
		native, err := timeRun(opt.Reps, func() error {
			_, err := opt.run(w.BuildParallel(opt.wcfg()), nil, interp.Options{})
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("%s native: %w", w.Name, err)
		}
		row := Fig6Row{Program: w.Name, Native: native}
		for _, workers := range []int{8, 16} {
			d, err := timeRun(opt.Reps, func() error {
				p := w.BuildParallel(opt.wcfg())
				prof := core.NewMT(core.Config{Workers: workers, SlotsPerWorker: opt.SlotsPerWorker, Meta: p.Meta, Metrics: Telemetry})
				if _, err := opt.run(p, prof, interp.Options{Timestamps: true}); err != nil {
					return err
				}
				prof.Flush()
				return nil
			})
			if err != nil {
				return nil, nil, fmt.Errorf("%s %dT: %w", w.Name, workers, err)
			}
			if workers == 8 {
				row.Workers8 = slowdown(d, native)
			} else {
				row.Workers16 = slowdown(d, native)
			}
		}
		rows = append(rows, row)
	}
	tab := &report.Table{
		Title:   "Figure 6: profiler slowdowns, parallel Starbench targets (4 target threads)",
		Headers: []string{"Program", "native", "8T", "16T"},
	}
	var a8, a16 float64
	for _, r := range rows {
		tab.AddRow(r.Program, r.Native.Round(time.Millisecond).String(), r.Workers8, r.Workers16)
		a8 += r.Workers8
		a16 += r.Workers16
	}
	tab.AddRow("average", "—", a8/float64(len(rows)), a16/float64(len(rows)))
	tab.Notes = append(tab.Notes,
		"MT-target profiling pushes per access (inside the target's lock regions) instead of",
		"per chunk, so slowdowns exceed the sequential-target ones — the paper's 346x/261x effect")
	return tab, rows, nil
}

// Fig7Row is one memory-consumption series of Figures 7 and 8.
type Fig7Row struct {
	Program string
	Suite   string
	// Bytes by configuration (store + queues + dependence maps).
	Native uint64
	T8     uint64
	T16    uint64
}

// memBytes estimates the profiler-owned memory of a run.
func memBytes(res *core.Result) uint64 {
	const depRecord = 64
	return res.Stats.StoreBytes + res.Stats.QueueBytes + uint64(res.Deps.Unique())*depRecord
}

// Fig7 reproduces Figure 7: memory consumption of the profiler for
// sequential NAS and Starbench benchmarks with 8 and 16 worker threads.
func Fig7(opt Options) (*report.Table, []Fig7Row, error) {
	opt = opt.norm()
	var rows []Fig7Row
	for _, w := range workloads.All() {
		if !opt.want(w.Name) {
			continue
		}
		row := Fig7Row{Program: w.Name, Suite: w.Suite}
		for _, workers := range []int{8, 16} {
			p := w.Build(opt.wcfg())
			// Keep the total slot budget constant across worker counts,
			// like the paper (6.25e6 x 16 = 1e8 total).
			perWorker := opt.SlotsPerWorker * 16 / workers
			prof := core.NewParallel(core.Config{Workers: workers, SlotsPerWorker: perWorker, Meta: p.Meta, Metrics: Telemetry})
			if _, err := opt.run(p, prof, interp.Options{}); err != nil {
				return nil, nil, fmt.Errorf("%s %dT: %w", w.Name, workers, err)
			}
			res := prof.Flush()
			if workers == 8 {
				row.T8 = memBytes(res)
			} else {
				row.T16 = memBytes(res)
			}
		}
		rows = append(rows, row)
	}
	tab := &report.Table{
		Title:   "Figure 7: profiler memory consumption, sequential targets (MB)",
		Headers: []string{"Program", "8T lock-free", "16T lock-free"},
	}
	var a8, a16 float64
	for _, r := range rows {
		tab.AddRow(r.Program, report.MB(r.T8), report.MB(r.T16))
		a8 += float64(r.T8)
		a16 += float64(r.T16)
	}
	n := float64(len(rows))
	tab.AddRow("average", report.MB(uint64(a8/n)), report.MB(uint64(a16/n)))
	tab.Notes = append(tab.Notes, "bytes = signature arrays + queue chunks + merged dependence maps")
	return tab, rows, nil
}

// Fig8 reproduces Figure 8: memory consumption for parallel Starbench
// targets under the MT profiler.
func Fig8(opt Options) (*report.Table, []Fig7Row, error) {
	opt = opt.norm()
	var rows []Fig7Row
	for _, w := range workloads.Starbench() {
		if w.BuildParallel == nil || !opt.want(w.Name) {
			continue
		}
		row := Fig7Row{Program: w.Name, Suite: w.Suite}
		for _, workers := range []int{8, 16} {
			p := w.BuildParallel(opt.wcfg())
			perWorker := opt.SlotsPerWorker * 16 / workers
			prof := core.NewMT(core.Config{Workers: workers, SlotsPerWorker: perWorker, Meta: p.Meta, Metrics: Telemetry})
			if _, err := opt.run(p, prof, interp.Options{Timestamps: true}); err != nil {
				return nil, nil, fmt.Errorf("%s %dT: %w", w.Name, workers, err)
			}
			res := prof.Flush()
			if workers == 8 {
				row.T8 = memBytes(res)
			} else {
				row.T16 = memBytes(res)
			}
		}
		rows = append(rows, row)
	}
	tab := &report.Table{
		Title:   "Figure 8: profiler memory consumption, parallel Starbench targets (MB)",
		Headers: []string{"Program", "8T", "16T"},
	}
	var a8, a16 float64
	for _, r := range rows {
		tab.AddRow(r.Program, report.MB(r.T8), report.MB(r.T16))
		a8 += float64(r.T8)
		a16 += float64(r.T16)
	}
	n := float64(len(rows))
	tab.AddRow("average", report.MB(uint64(a8/n)), report.MB(uint64(a16/n)))
	tab.Notes = append(tab.Notes,
		"MT mode uses per-access MPSC rings and extended (thread+timestamp) dependence records,",
		"so consumption exceeds Figure 7 — the paper's 995/1920 MB vs 505/1390 MB effect")
	return tab, rows, nil
}

// StoreRow is one store-ablation measurement.
type StoreRow struct {
	Store   string
	Elapsed time.Duration
	Bytes   uint64
	// RelativeToSig is elapsed time normalized to the signature store.
	RelativeToSig float64
}

// StoreAblation compares the signature store against the exact alternatives
// the paper discusses in §III-B (hash table: "about 1.5 – 3.7x slower than
// our approach"; shadow memory: exact but address-footprint-sized).
//
// The comparison is made at *bounded directory memory*: the signature's
// whole point is a fixed-size structure, so the exact stores face the same
// constraint. The stream comes from rgbyuv, the address-heavy class, where
// a bounded hash-table directory develops the chains whose traversal is the
// overhead the paper measured ("when more than one address is hashed into
// the same bucket, the bucket has to be searched").
func StoreAblation(opt Options) (*report.Table, []StoreRow, error) {
	opt = opt.norm()
	w, _ := workloads.ByName("rgbyuv")
	cap, _, err := captureRun(opt, w.Build(opt.wcfg()))
	if err != nil {
		return nil, nil, err
	}
	// Directory sized well below the address count, like a realistic
	// bounded configuration at the paper's scale (6.3e6 addresses would
	// need a gigabyte-scale directory to stay chain-free).
	buckets := cap.Addresses() / 16
	slots := opt.Slots[len(opt.Slots)-1]
	// Every candidate is a registry spec, so the ablation exercises exactly
	// the construction path the daemon and CLI use.
	specs := []string{
		fmt.Sprintf("signature:slots=%d", slots),
		fmt.Sprintf("hashtab:buckets=%d", buckets),
		"shadow",
		"perfect",
		fmt.Sprintf("hybrid:slots=%d,exact=4096", slots),
	}
	var rows []StoreRow
	for _, spec := range specs {
		var bytes uint64
		d, err := timeRun(opt.Reps, func() error {
			st, err := sig.OpenStore(spec, 0)
			if err != nil {
				return err
			}
			eng := core.NewEngine(st, nil, false)
			for _, a := range cap.Events() {
				eng.Process(a)
			}
			bytes = st.Bytes()
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, StoreRow{Store: spec, Elapsed: d, Bytes: bytes})
	}
	base := rows[0].Elapsed
	for i := range rows {
		rows[i].RelativeToSig = float64(rows[i].Elapsed) / float64(base)
	}
	tab := &report.Table{
		Title:   "Store ablation (§III-B): signature vs exact stores, bounded memory, rgbyuv stream",
		Headers: []string{"Store", "time", "relative", "bytes"},
	}
	for _, r := range rows {
		tab.AddRow(r.Store, r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", r.RelativeToSig), r.Bytes)
	}
	tab.Notes = append(tab.Notes, "paper: hash table 1.5-3.7x slower than signatures")
	return tab, rows, nil
}
