package exp

import (
	"fmt"

	"ddprof/internal/analysis"
	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/interp"
	"ddprof/internal/report"
	"ddprof/internal/workloads"
)

// Fig9Result is the communication-pattern experiment output.
type Fig9Result struct {
	Matrix  *analysis.CommMatrix
	Heatmap string
	// RacesFlagged counts dependences whose instances showed a timestamp
	// reversal (§V-B byproduct of the same run).
	RacesFlagged int
}

// Fig9 reproduces Figure 9: the communication pattern of water-spatial
// derived from the profiler's cross-thread RAW dependences. Each target
// thread exchanges halo cells with its ring neighbours, so the matrix shows
// a strong banded structure around the diagonal.
func Fig9(opt Options) (*report.Table, *Fig9Result, error) {
	opt = opt.norm()
	threads := 8
	p := workloads.WaterSpatial(workloads.Config{Scale: opt.Scale, Threads: threads})
	prof := core.NewMT(core.Config{Workers: 8, SlotsPerWorker: opt.SlotsPerWorker, Meta: p.Meta, Metrics: Telemetry})
	if _, err := opt.run(p, prof, interp.Options{Timestamps: true}); err != nil {
		return nil, nil, err
	}
	res := prof.Flush()
	m := analysis.Communication(res.Deps, threads)

	races := countReversed(res)

	out := &Fig9Result{Matrix: m, Heatmap: m.Heatmap(), RacesFlagged: races}
	tab := &report.Table{
		Title:   "Figure 9: communication pattern of water-spatial (RAW instances, producer x consumer)",
		Headers: []string{"producer\\consumer"},
	}
	for c := 0; c < threads; c++ {
		tab.Headers = append(tab.Headers, fmt.Sprintf("t%d", c))
	}
	for pr := 0; pr < threads; pr++ {
		cells := []any{fmt.Sprintf("t%d", pr)}
		for c := 0; c < threads; c++ {
			cells = append(cells, m.M[pr][c])
		}
		tab.AddRow(cells...)
	}
	tab.Notes = append(tab.Notes,
		"expected shape: strong diagonal band (halo exchange with ring neighbours)",
		fmt.Sprintf("cross-thread RAW volume: %d instances; dependences flagged as potential races: %d",
			m.CrossThread(), races))
	return tab, out, nil
}

// countReversed tallies dependences with at least one reversed instance.
func countReversed(res *core.Result) int {
	n := 0
	res.Deps.Range(func(_ dep.Key, st dep.Stats) bool {
		if st.Reversed {
			n++
		}
		return true
	})
	return n
}
