package exp

import (
	"fmt"

	"ddprof/internal/report"
	"ddprof/internal/sig"
	"ddprof/internal/stats"
	"ddprof/internal/workloads"
)

// Table1Row is one Starbench row of Table I.
type Table1Row struct {
	Program   string
	LOC       int
	Addresses int
	Accesses  uint64
	Deps      int
	// Rates[i] is the accuracy at Options.Slots[i].
	Rates []stats.Rates
}

// Table1 reproduces Table I: false positive and false negative rates of the
// profiled dependences for Starbench, against a perfect signature, at three
// signature sizes.
func Table1(opt Options) (*report.Table, []Table1Row, error) {
	opt = opt.norm()
	var rows []Table1Row
	for _, w := range workloads.Starbench() {
		if !opt.want(w.Name) {
			continue
		}
		p := w.Build(opt.wcfg())
		cap, info, err := captureRun(opt, p)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		truth := replay(cap, perfectSerial(w.Build(opt.wcfg())))
		row := Table1Row{
			Program:   w.Name,
			LOC:       w.LOC,
			Addresses: cap.Addresses(),
			Accesses:  info.Accesses,
			Deps:      truth.Deps.Unique(),
		}
		for _, slots := range opt.Slots {
			got := replay(cap, sigSerial(w.Build(opt.wcfg()), slots))
			row.Rates = append(row.Rates, stats.Compare(truth.Deps, got.Deps))
		}
		rows = append(rows, row)
	}

	tab := &report.Table{
		Title:   "Table I: FPR/FNR of profiled dependences (Starbench)",
		Headers: []string{"Program", "LOC", "# addresses", "# accesses", "# dependences"},
	}
	for _, s := range opt.Slots {
		tab.Headers = append(tab.Headers,
			fmt.Sprintf("FPR@%s", report.SI(float64(s))),
			fmt.Sprintf("FNR@%s", report.SI(float64(s))))
	}
	var avg []float64 = make([]float64, 2*len(opt.Slots))
	for _, r := range rows {
		cells := []any{r.Program, r.LOC, report.SI(float64(r.Addresses)), report.SI(float64(r.Accesses)), r.Deps}
		for i, rt := range r.Rates {
			cells = append(cells, rt.FPR, rt.FNR)
			avg[2*i] += rt.FPR
			avg[2*i+1] += rt.FNR
		}
		tab.AddRow(cells...)
	}
	cells := []any{"average", "—", "—", "—", "—"}
	for _, v := range avg {
		cells = append(cells, v/float64(len(rows)))
	}
	tab.AddRow(cells...)
	tab.Notes = append(tab.Notes, fmt.Sprintf("scale=%.2g; slot counts scaled with address counts relative to the paper", opt.Scale))
	return tab, rows, nil
}

// Eq2Row is one point of the Equation (2) validation.
type Eq2Row struct {
	M, N      int
	Predicted float64
	Measured  float64
}

// Eq2 validates the paper's false-positive prediction formula
// Pfp = 1 − (1 − 1/m)^n against measured signature occupancy.
func Eq2(opt Options) (*report.Table, []Eq2Row, error) {
	opt = opt.norm()
	var rows []Eq2Row
	for _, m := range []int{1 << 14, 1 << 17} {
		for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
			g := sig.NewSignature(m)
			slot := sig.PackSlot(0, 0, 0, 0, 0, 0)
			for i := 0; i < n; i++ {
				// Uniformly random distinct addresses (splitmix64): the
				// formula models the uniform-hash case.
				a := uint64(i) + 0x9E3779B97F4A7C15
				a ^= a >> 30
				a *= 0xBF58476D1CE4E5B9
				a ^= a >> 27
				a *= 0x94D049BB133111EB
				a ^= a >> 31
				g.SetWrite(a, slot)
			}
			rows = append(rows, Eq2Row{
				M: m, N: n,
				Predicted: stats.PredictedFP(float64(m), float64(n)),
				Measured:  g.Occupancy(),
			})
		}
	}
	tab := &report.Table{
		Title:   "Equation (2): predicted vs measured signature collision probability",
		Headers: []string{"m (slots)", "n (addresses)", "predicted Pfp", "measured occupancy", "abs error"},
	}
	for _, r := range rows {
		tab.AddRow(r.M, r.N,
			fmt.Sprintf("%.4f", r.Predicted),
			fmt.Sprintf("%.4f", r.Measured),
			fmt.Sprintf("%.4f", abs(r.Predicted-r.Measured)))
	}
	return tab, rows, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// MergeRow is one row of the dependence-merging ablation (§III-B: merging
// identical dependences shrank NAS output by ~1e5×).
type MergeRow struct {
	Program   string
	Instances uint64
	Unique    int
	Factor    float64
}

// MergeAblation measures how many dynamic dependence instances collapse
// into each merged record.
func MergeAblation(opt Options) (*report.Table, []MergeRow, error) {
	opt = opt.norm()
	var rows []MergeRow
	for _, w := range workloads.NAS() {
		if !opt.want(w.Name) {
			continue
		}
		p := w.Build(opt.wcfg())
		prof := perfectSerial(p)
		if _, err := captureAndReplayDirect(opt, p, prof); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		res := prof.Flush()
		r := MergeRow{Program: w.Name, Instances: res.Deps.Instances(), Unique: res.Deps.Unique()}
		if r.Unique > 0 {
			r.Factor = float64(r.Instances) / float64(r.Unique)
		}
		rows = append(rows, r)
	}
	tab := &report.Table{
		Title:   "Merging identical dependences (NAS): instances vs merged records",
		Headers: []string{"Program", "dyn. instances", "merged records", "reduction factor"},
	}
	for _, r := range rows {
		tab.AddRow(r.Program, r.Instances, r.Unique, fmt.Sprintf("%.0fx", r.Factor))
	}
	tab.Notes = append(tab.Notes, "the paper reports an average ~1e5x output-size reduction at full scale")
	return tab, rows, nil
}
