package exp

import (
	"fmt"

	"ddprof/internal/core"
	"ddprof/internal/event"
	"ddprof/internal/prog"
	"ddprof/internal/report"
	"ddprof/internal/workloads"
)

// ThroughputRow is one pipeline's events-per-second series, measured over the
// whole workload suite with the hot path (instance cache + producer fast
// path) disabled and enabled.
type ThroughputRow struct {
	Pipeline  string
	Events    uint64  // read/write accesses profiled per replay
	SlowEPS   float64 // events/s, NoFastPath
	FastEPS   float64 // events/s, hot path enabled
	Speedup   float64 // FastEPS / SlowEPS
	CacheHit  float64 // instance-cache hit rate of the fast run, percent
	DupPct    float64 // producer duplicate reads collapsed, percent of events
	CompRatio float64 // accesses per stored record (stride compression), 1 = none
}

// Throughput measures raw profiling throughput (events/s) of the serial,
// parallel and MT pipelines over the captured access streams of the workload
// suite, with and without the hot path. This is the experiment behind the
// BenchmarkHotPath gate: the same streams, replayed rather than re-executed,
// so the interpreter is out of the measurement.
func Throughput(opt Options) (*report.Table, []ThroughputRow, error) {
	opt = opt.norm()

	type stream struct {
		name string
		meta *prog.Meta
		cap  *event.Recorder
	}
	var streams []stream
	for _, w := range workloads.All() {
		if !opt.want(w.Name) {
			continue
		}
		p := w.Build(opt.wcfg())
		c, _, err := captureRun(opt, p)
		if err != nil {
			return nil, nil, fmt.Errorf("%s capture: %w", w.Name, err)
		}
		streams = append(streams, stream{name: w.Name, meta: p.Meta, cap: c})
	}
	if len(streams) == 0 {
		return nil, nil, fmt.Errorf("no workloads selected")
	}

	type pipeline struct {
		name string
		mk   func(meta *prog.Meta, noFast bool) core.Profiler
	}
	pipes := []pipeline{
		{"serial", func(meta *prog.Meta, noFast bool) core.Profiler {
			return core.NewSerial(core.Config{
				SlotsPerWorker: opt.SlotsPerWorker,
				Meta:           meta,
				NoFastPath:     noFast,
				Metrics:        Telemetry,
			})
		}},
		{"parallel-8T", func(meta *prog.Meta, noFast bool) core.Profiler {
			return core.NewParallel(core.Config{
				Workers:        8,
				SlotsPerWorker: opt.SlotsPerWorker,
				Meta:           meta,
				NoFastPath:     noFast,
				Metrics:        Telemetry,
			})
		}},
		{"mt-8T", func(meta *prog.Meta, noFast bool) core.Profiler {
			return core.NewMT(core.Config{
				Workers:        8,
				SlotsPerWorker: opt.SlotsPerWorker,
				Meta:           meta,
				NoFastPath:     noFast,
				Metrics:        Telemetry,
			})
		}},
	}

	var rows []ThroughputRow
	for _, pipe := range pipes {
		row := ThroughputRow{Pipeline: pipe.name}
		var hits, probes, dups, ranges, rangeElems uint64
		for _, noFast := range []bool{true, false} {
			var events uint64
			d, err := timeRun(opt.Reps, func() error {
				events, hits, probes, dups, ranges, rangeElems = 0, 0, 0, 0, 0, 0
				for _, s := range streams {
					res := replay(s.cap, pipe.mk(s.meta, noFast))
					events += res.Stats.Accesses
					hits += res.Stats.DepCacheHits
					probes += res.Stats.DepCacheProbes
					dups += res.Stats.DupCollapsed
					ranges += res.Stats.Ranges
					rangeElems += res.Stats.RangeElements
				}
				return nil
			})
			if err != nil {
				return nil, nil, fmt.Errorf("%s replay: %w", pipe.name, err)
			}
			eps := float64(events) / d.Seconds()
			if noFast {
				row.SlowEPS = eps
			} else {
				row.FastEPS = eps
				row.Events = events
			}
		}
		if row.SlowEPS > 0 {
			row.Speedup = row.FastEPS / row.SlowEPS
		}
		if probes > 0 {
			row.CacheHit = 100 * float64(hits) / float64(probes)
		}
		if row.Events > 0 {
			row.DupPct = 100 * float64(dups) / float64(row.Events)
			if stored := row.Events - rangeElems + ranges; stored > 0 {
				row.CompRatio = float64(row.Events) / float64(stored)
			}
		}
		rows = append(rows, row)
	}

	tab := &report.Table{
		Title:   "Throughput: profiling events/s over the workload suite, hot path off vs on",
		Headers: []string{"Pipeline", "events", "slow ev/s", "fast ev/s", "speedup", "cache hit", "dups collapsed", "comp ratio"},
	}
	for _, r := range rows {
		tab.AddRow(r.Pipeline, r.Events,
			fmt.Sprintf("%.0f", r.SlowEPS), fmt.Sprintf("%.0f", r.FastEPS),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.1f%%", r.CacheHit), fmt.Sprintf("%.1f%%", r.DupPct),
			fmt.Sprintf("%.2fx", r.CompRatio))
	}
	tab.Notes = append(tab.Notes,
		"slow = NoFastPath (instance cache and producer duplicate filter disabled);",
		"streams are captured once and replayed, so interpreter time is excluded")
	return tab, rows, nil
}
