package exp

import (
	"fmt"

	"ddprof/internal/analysis"
	"ddprof/internal/report"
	"ddprof/internal/workloads"
)

// Table2Row is one NAS row of Table II.
type Table2Row struct {
	Program        string
	OMP            int // loops annotated in the OpenMP version
	IdentifiedDP   int // identified from perfect (DiscoPoP-grade) deps
	IdentifiedSig  int // identified from signature-profiled deps
	MissedSig      int // identified by DP but not by sig
	ExtraSig       int // identified by sig but not by DP (should be 0)
	ReductionLoops int // OMP loops recognized as reduction-parallelizable
}

// Table2 reproduces Table II: detection of parallelizable loops in the NAS
// benchmarks, from perfect dependences (the DiscoPoP column) and from
// signature-profiled dependences (the sig column), including the "# missed"
// cross-check that both identify exactly the same loops.
func Table2(opt Options) (*report.Table, []Table2Row, error) {
	opt = opt.norm()
	// Use a signature large enough for zero-FP/FN at this scale, like the
	// paper's "sufficiently large signatures".
	slots := opt.Slots[len(opt.Slots)-1]
	var rows []Table2Row
	for _, w := range workloads.NAS() {
		if !opt.want(w.Name) {
			continue
		}
		// Perfect (DP-grade) run.
		p1 := w.Build(opt.wcfg())
		dpProf := perfectSerial(p1)
		info, err := captureAndReplayDirect(opt, p1, dpProf)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		dpReports := analysis.DiscoverParallelism(p1.Meta, dpProf.Flush(), info.LoopIters)
		omp, identDP := analysis.CountIdentified(dpReports)

		// Signature run.
		p2 := w.Build(opt.wcfg())
		sigProf := sigSerial(p2, slots)
		info2, err := captureAndReplayDirect(opt, p2, sigProf)
		if err != nil {
			return nil, nil, fmt.Errorf("%s(sig): %w", w.Name, err)
		}
		sigReports := analysis.DiscoverParallelism(p2.Meta, sigProf.Flush(), info2.LoopIters)
		_, identSig := analysis.CountIdentified(sigReports)

		dpSet := analysis.IdentifiedSet(dpReports)
		sigSet := analysis.IdentifiedSet(sigReports)
		missed, extra := 0, 0
		for name := range dpSet {
			if !sigSet[name] {
				missed++
			}
		}
		for name := range sigSet {
			if !dpSet[name] {
				extra++
			}
		}
		reductions := 0
		for _, r := range dpReports {
			if r.Loop.OMP && r.Reduction {
				reductions++
			}
		}
		rows = append(rows, Table2Row{
			Program: w.Name, OMP: omp,
			IdentifiedDP: identDP, IdentifiedSig: identSig,
			MissedSig: missed, ExtraSig: extra,
			ReductionLoops: reductions,
		})
	}

	tab := &report.Table{
		Title:   "Table II: detection of parallelizable loops in NAS benchmarks",
		Headers: []string{"Program", "# OMP", "# identified (DP)", "# identified (sig)", "# missed (sig)", "reduction loops"},
	}
	var tOMP, tDP, tSig, tMiss int
	for _, r := range rows {
		tab.AddRow(r.Program, r.OMP, r.IdentifiedDP, r.IdentifiedSig, r.MissedSig, r.ReductionLoops)
		tOMP += r.OMP
		tDP += r.IdentifiedDP
		tSig += r.IdentifiedSig
		tMiss += r.MissedSig
	}
	tab.AddRow("Overall", tOMP, tDP, tSig, tMiss, "")
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("identified ratio: %.1f%% (paper: 92.5%% = 136/147)", 100*float64(tDP)/float64(tOMP)),
		"the non-identified loops are reduction/scan dependences, reported separately in the last column")
	return tab, rows, nil
}
