package exp

import (
	"strings"
	"testing"

	"ddprof/internal/core"
	"ddprof/internal/dep"
	"ddprof/internal/workloads"
)

// TestHotPathByteIdenticalOnSuite is the ISSUE's correctness gate for the
// hot-path overhaul: on every workload in the suite, the fast-path profiler
// (instance cache + duplicate filter) and the slow-path profiler
// (NoFastPath) must produce byte-identical dependence sets and LoopDeps,
// for the serial, parallel and MT pipelines alike.
func TestHotPathByteIdenticalOnSuite(t *testing.T) {
	opt := small().norm()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build(opt.wcfg())
			cap, _, err := captureRun(Options{}, p)
			if err != nil {
				t.Fatal(err)
			}
			mks := map[string]func(noFast bool) core.Profiler{
				"serial": func(noFast bool) core.Profiler {
					return core.NewSerial(core.Config{
						Backend:    "perfect",
						Meta:       p.Meta,
						NoFastPath: noFast,
					})
				},
				"parallel": func(noFast bool) core.Profiler {
					return core.NewParallel(core.Config{
						Workers:    4,
						Backend:    "perfect",
						Meta:       p.Meta,
						NoFastPath: noFast,
					})
				},
				"mt": func(noFast bool) core.Profiler {
					return core.NewMT(core.Config{
						Workers:    4,
						Backend:    "perfect",
						Meta:       p.Meta,
						NoFastPath: noFast,
					})
				},
			}
			for name, mk := range mks {
				slow := replay(cap, mk(true))
				fast := replay(cap, mk(false))
				if fast.Deps.Unique() != slow.Deps.Unique() {
					t.Fatalf("%s: unique deps fast %d, slow %d", name, fast.Deps.Unique(), slow.Deps.Unique())
				}
				slow.Deps.Range(func(k dep.Key, st dep.Stats) bool {
					fst, ok := fast.Deps.Lookup(k)
					if !ok || fst != st {
						t.Fatalf("%s: dep %+v diverges: slow %+v fast %+v (found %v)", name, k, st, fst, ok)
					}
					return true
				})
				if len(fast.Loops) != len(slow.Loops) {
					t.Fatalf("%s: LoopDeps size fast %d, slow %d", name, len(fast.Loops), len(slow.Loops))
				}
				for id, sld := range slow.Loops {
					fld := fast.Loops[id]
					if fld == nil || *fld != *sld {
						t.Fatalf("%s: LoopDeps for loop %d diverge: slow %+v fast %v", name, id, *sld, fld)
					}
				}
			}
		})
	}
}

// TestThroughputSmoke runs the throughput driver on two workloads and sanity
// checks the measurements the table is built from.
func TestThroughputSmoke(t *testing.T) {
	opt := small()
	opt.Only = []string{"rotate", "md5"}
	tab, rows, err := Throughput(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (serial, parallel, mt)", len(rows))
	}
	for _, r := range rows {
		if r.Events == 0 || r.FastEPS <= 0 || r.SlowEPS <= 0 {
			t.Errorf("%s: empty measurement: %+v", r.Pipeline, r)
		}
		if r.CacheHit <= 0 || r.CacheHit > 100 {
			t.Errorf("%s: cache hit rate %.1f%% out of range", r.Pipeline, r.CacheHit)
		}
	}
	var b strings.Builder
	tab.Render(&b)
	if !strings.Contains(b.String(), "serial") {
		t.Error("rendered table missing serial row")
	}
}
