package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Sample is one point-in-time capture of every metric in a Registry.
type Sample struct {
	T    time.Time
	Vals map[string]float64
}

// SpanEvent is one named interval recorded by Snapshotter.Span — a run of an
// experiment, a profiled region, a merge. Spans become "X" (complete) events
// in the Chrome trace export.
type SpanEvent struct {
	Name  string
	Start time.Time
	End   time.Time
}

// maxSpans bounds the span log so a misbehaving caller cannot grow the
// recorder without limit; later spans are dropped once it is full.
const maxSpans = 4096

// Snapshotter is the flight recorder's time-series layer: a background
// sampler that copies every Registry metric into a fixed-size ring at a
// steady interval. The ring keeps the most recent capSamples captures, so
// memory is bounded no matter how long the process runs, and the tail of any
// run — the part you want when something went wrong — is always present.
//
// The capture can be read three ways: Samples() for programmatic access,
// TimelineHandler for the ddprofd /debug/timeline JSON endpoint, and
// WriteChromeTrace for a Perfetto-loadable trace-event file
// (`ddexp -trace-out run.json`).
type Snapshotter struct {
	reg      *Registry
	interval time.Duration

	// now is the clock; tests inject a deterministic one.
	now func() time.Time

	mu    sync.Mutex
	ring  []Sample
	head  int // oldest element once the ring is full
	total uint64
	spans []SpanEvent

	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewSnapshotter returns a recorder sampling reg every interval, keeping the
// last capSamples samples. interval <= 0 defaults to 250ms, capSamples <= 0
// to 1024 (256 KiB-ish of float64s at typical metric counts).
func NewSnapshotter(reg *Registry, interval time.Duration, capSamples int) *Snapshotter {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	if capSamples <= 0 {
		capSamples = 1024
	}
	return &Snapshotter{
		reg:      reg,
		interval: interval,
		now:      time.Now,
		ring:     make([]Sample, 0, capSamples),
	}
}

// Interval returns the sampling period.
func (s *Snapshotter) Interval() time.Duration { return s.interval }

// SampleNow takes one sample immediately. Safe concurrently with the
// background loop; the driver loop calls this on every tick.
func (s *Snapshotter) SampleNow() {
	vals := s.reg.Snapshot()
	t := s.now()
	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, Sample{T: t, Vals: vals})
	} else {
		s.ring[s.head] = Sample{T: t, Vals: vals}
		s.head = (s.head + 1) % len(s.ring)
	}
	s.total++
	s.mu.Unlock()
}

// Start launches the background sampling loop, taking a t=0 baseline sample
// synchronously first — paired with Stop's final sample, a run shorter than
// one interval still records a two-point timeline instead of losing its
// start state. Idempotent; Stop ends the loop.
func (s *Snapshotter) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	s.SampleNow()
	go func() {
		defer close(done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.SampleNow()
			case <-stop:
				return
			}
		}
	}()
}

// Stop ends the background loop and takes one final sample, so runs shorter
// than the interval still capture their end state. Idempotent.
func (s *Snapshotter) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
	s.SampleNow()
}

// Span starts a named interval and returns the function that ends it. The
// completed span is recorded for the trace export:
//
//	done := snap.Span("experiment:throughput")
//	... run ...
//	done()
func (s *Snapshotter) Span(name string) func() {
	start := s.now()
	return func() {
		end := s.now()
		s.mu.Lock()
		if len(s.spans) < maxSpans {
			s.spans = append(s.spans, SpanEvent{Name: name, Start: start, End: end})
		}
		s.mu.Unlock()
	}
}

// Total returns how many samples have ever been taken (>= len(Samples())
// once the ring has wrapped).
func (s *Snapshotter) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Samples returns the retained samples in chronological order.
func (s *Snapshotter) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.ring))
	out = append(out, s.ring[s.head:]...)
	out = append(out, s.ring[:s.head]...)
	return out
}

// Spans returns the recorded spans in completion order.
func (s *Snapshotter) Spans() []SpanEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanEvent(nil), s.spans...)
}

// traceEvent is one entry of the Chrome trace-event format ("JSON Object
// Format"): https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
// Perfetto and chrome://tracing both load it.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds since capture origin
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the capture as Chrome trace-event JSON: one "C"
// (counter) track per metric built from the samples (emitted on change, so
// flat metrics cost one event), derived `<base>_per_sec` counter tracks for
// every `*_total` counter (rate between consecutive samples), and one "X"
// (complete) event per span. Output is deterministic for a given capture:
// metric names are emitted in sorted order within each sample.
func (s *Snapshotter) WriteChromeTrace(w io.Writer) error {
	samples := s.Samples()
	spans := s.Spans()

	var origin time.Time
	if len(samples) > 0 {
		origin = samples[0].T
	}
	for _, sp := range spans {
		if origin.IsZero() || sp.Start.Before(origin) {
			origin = sp.Start
		}
	}
	us := func(t time.Time) int64 { return t.Sub(origin).Microseconds() }

	events := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]any{"name": "ddprof flight recorder"},
	}}

	last := make(map[string]float64)
	var prev Sample
	for i, smp := range samples {
		names := make([]string, 0, len(smp.Vals))
		for n := range smp.Vals {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			v := smp.Vals[n]
			if lv, seen := last[n]; !seen || lv != v {
				last[n] = v
				events = append(events, traceEvent{
					Name: n, Ph: "C", Ts: us(smp.T), Pid: 1, Tid: 1,
					Args: map[string]any{"value": v},
				})
			}
			if base, ok := rateBase(n); ok && i > 0 {
				if dt := smp.T.Sub(prev.T).Seconds(); dt > 0 {
					rate := (v - prev.Vals[n]) / dt
					rn := base + "_per_sec"
					if lv, seen := last[rn]; !seen || lv != rate {
						last[rn] = rate
						events = append(events, traceEvent{
							Name: rn, Ph: "C", Ts: us(smp.T), Pid: 1, Tid: 1,
							Args: map[string]any{"value": rate},
						})
					}
				}
			}
		}
		prev = smp
	}
	for _, sp := range spans {
		dur := sp.End.Sub(sp.Start).Microseconds()
		if dur < 1 {
			dur = 1 // zero-duration X events vanish in viewers
		}
		events = append(events, traceEvent{
			Name: sp.Name, Ph: "X", Ts: us(sp.Start), Dur: dur, Pid: 1, Tid: 2,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// timelineSample is the wire form of one sample on /debug/timeline.
type timelineSample struct {
	TsMs float64            `json:"ts_ms"` // since first retained sample
	Vals map[string]float64 `json:"vals"`
}

type timelineSpan struct {
	Name  string  `json:"name"`
	TsMs  float64 `json:"ts_ms"`
	DurMs float64 `json:"dur_ms"`
}

type timelinePage struct {
	IntervalMs   float64          `json:"interval_ms"`
	TotalSamples uint64           `json:"total_samples"`
	Samples      []timelineSample `json:"samples"`
	Spans        []timelineSpan   `json:"spans"`
}

// TimelineHandler serves the retained time series as JSON: sampling
// interval, lifetime sample count, the ring contents with timestamps
// relative to the oldest retained sample, and the recorded spans.
func (s *Snapshotter) TimelineHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		samples := s.Samples()
		spans := s.Spans()
		var origin time.Time
		if len(samples) > 0 {
			origin = samples[0].T
		} else if len(spans) > 0 {
			origin = spans[0].Start
		}
		page := timelinePage{
			IntervalMs:   float64(s.interval.Milliseconds()),
			TotalSamples: s.Total(),
			Samples:      make([]timelineSample, 0, len(samples)),
			Spans:        make([]timelineSpan, 0, len(spans)),
		}
		for _, smp := range samples {
			page.Samples = append(page.Samples, timelineSample{
				TsMs: float64(smp.T.Sub(origin).Microseconds()) / 1e3,
				Vals: smp.Vals,
			})
		}
		for _, sp := range spans {
			page.Spans = append(page.Spans, timelineSpan{
				Name:  sp.Name,
				TsMs:  float64(sp.Start.Sub(origin).Microseconds()) / 1e3,
				DurMs: float64(sp.End.Sub(sp.Start).Microseconds()) / 1e3,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(page)
	})
}
