package telemetry

import (
	"sync"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	wantSum := uint64(0 + 1 + 2 + 3 + 100 + 1000 + 1<<20)
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
	// p99 must land in the top bucket: [2^19, 2^20).
	if p := h.Quantile(0.99); p < 1<<19 || p > 1<<21 {
		t.Fatalf("p99 = %v, want within the 2^20 bucket", p)
	}
	// p50 is the 4th of 7 observations (value 3): bucket [2, 3].
	if p := h.Quantile(0.50); p < 1 || p > 3 {
		t.Fatalf("p50 = %v, want in [1, 3]", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-42)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative observation: count=%d sum=%d, want 1, 0", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("quantile of clamped value = %v, want 0", q)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(4096)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got < 2048 || got > 8191 {
			t.Fatalf("q%v = %v, want inside bucket [2048, 8191]", q, got)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestBucketBounds(t *testing.T) {
	if lo, hi := bucketBounds(0); lo != 0 || hi != 0 {
		t.Fatalf("bucket 0 = [%v, %v], want [0, 0]", lo, hi)
	}
	if lo, hi := bucketBounds(1); lo != 1 || hi != 1 {
		t.Fatalf("bucket 1 = [%v, %v], want [1, 1]", lo, hi)
	}
	if lo, hi := bucketBounds(13); lo != 4096 || hi != 8191 {
		t.Fatalf("bucket 13 = [%v, %v], want [4096, 8191]", lo, hi)
	}
}
