package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// fakeClock returns a deterministic now() advancing step per call.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		cur := t
		t = t.Add(step)
		return cur
	}
}

func TestSnapshotterRingWraparound(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ticks_total")
	s := NewSnapshotter(r, time.Second, 4)
	s.now = fakeClock(time.Unix(1000, 0), 100*time.Millisecond)
	for i := 0; i < 10; i++ {
		c.Inc()
		s.SampleNow()
	}
	if got := s.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("retained %d samples, want 4", len(samples))
	}
	// Chronological: the last 4 of 10, counter values 7..10.
	for i, smp := range samples {
		want := float64(7 + i)
		if got := smp.Vals["ticks_total"]; got != want {
			t.Errorf("sample %d: ticks_total = %v, want %v", i, got, want)
		}
		if i > 0 && !samples[i-1].T.Before(smp.T) {
			t.Errorf("samples out of order at %d: %v !< %v", i, samples[i-1].T, smp.T)
		}
	}
}

func TestSnapshotterZeroSamples(t *testing.T) {
	s := NewSnapshotter(NewRegistry(), time.Second, 8)
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("zero-sample trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tf.TraceEvents) != 1 || tf.TraceEvents[0]["ph"] != "M" {
		t.Fatalf("zero-sample trace should hold exactly the metadata event, got %v", tf.TraceEvents)
	}

	rec := httptest.NewRecorder()
	s.TimelineHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline", nil))
	var page timelinePage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("zero-sample timeline is not valid JSON: %v", err)
	}
	if page.TotalSamples != 0 || len(page.Samples) != 0 {
		t.Fatalf("zero-sample timeline not empty: %+v", page)
	}
}

func TestSnapshotterStartStop(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Add(3)
	s := NewSnapshotter(r, 5*time.Millisecond, 64)
	s.Start()
	s.Start() // idempotent
	time.Sleep(25 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	if s.Total() == 0 {
		t.Fatal("no samples after Start/Stop; Stop must take a final sample")
	}
	samples := s.Samples()
	if got := samples[len(samples)-1].Vals["x_total"]; got != 3 {
		t.Fatalf("final sample x_total = %v, want 3", got)
	}
}

func TestSnapshotterSpan(t *testing.T) {
	s := NewSnapshotter(NewRegistry(), time.Second, 8)
	s.now = fakeClock(time.Unix(1000, 0), 250*time.Millisecond)
	done := s.Span("experiment:rotate")
	done()
	spans := s.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	if spans[0].Name != "experiment:rotate" {
		t.Fatalf("span name = %q", spans[0].Name)
	}
	if d := spans[0].End.Sub(spans[0].Start); d != 250*time.Millisecond {
		t.Fatalf("span duration = %v, want 250ms", d)
	}
}

// buildDeterministicCapture assembles the capture behind the golden fixture:
// fixed clock, three samples over a counter, a gauge, and a histogram, plus
// one span.
func buildDeterministicCapture() *Snapshotter {
	r := NewRegistry()
	c := r.Counter("pipeline_events_total")
	g := r.Gauge("pipeline_queue_depth_max")
	h := r.Histogram("pipeline_stage_worker_ns")
	s := NewSnapshotter(r, 100*time.Millisecond, 16)
	s.now = fakeClock(time.Unix(1700000000, 0), 100*time.Millisecond)

	done := s.Span("run:fixture")
	c.Add(1000)
	g.Set(3)
	h.Observe(4096)
	s.SampleNow()
	c.Add(2000)
	h.Observe(4096)
	h.Observe(1 << 20)
	s.SampleNow()
	g.Set(5)
	s.SampleNow()
	done()
	return s
}

func TestChromeTraceGolden(t *testing.T) {
	s := buildDeterministicCapture()
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	// Schema checks, independent of the byte-exact fixture.
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}
	var counters, spans, meta int
	sawRate := false
	for _, ev := range tf.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Pid == 0 {
			t.Fatalf("malformed event: %+v", ev)
		}
		switch ev.Ph {
		case "C":
			counters++
			if _, ok := ev.Args["value"].(float64); !ok {
				t.Fatalf("counter event without numeric args.value: %+v", ev)
			}
			if ev.Name == "pipeline_events_per_sec" {
				sawRate = true
			}
		case "X":
			spans++
			if ev.Dur < 1 {
				t.Fatalf("span with dur < 1us: %+v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 1 || spans != 1 || counters == 0 {
		t.Fatalf("event mix: %d meta, %d spans, %d counters", meta, spans, counters)
	}
	if !sawRate {
		t.Error("no derived pipeline_events_per_sec counter track in trace")
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden fixture %s (re-run with -update if intended)\ngot:\n%s", golden, buf.String())
	}
}

func TestTimelineHandler(t *testing.T) {
	s := buildDeterministicCapture()
	rec := httptest.NewRecorder()
	s.TimelineHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var page timelinePage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if page.TotalSamples != 3 || len(page.Samples) != 3 {
		t.Fatalf("timeline samples: total=%d retained=%d, want 3/3", page.TotalSamples, len(page.Samples))
	}
	if page.IntervalMs != 100 {
		t.Errorf("interval_ms = %v, want 100", page.IntervalMs)
	}
	if page.Samples[0].TsMs != 0 {
		t.Errorf("first sample ts_ms = %v, want 0", page.Samples[0].TsMs)
	}
	if got := page.Samples[2].Vals["pipeline_events_total"]; got != 3000 {
		t.Errorf("last sample events_total = %v, want 3000", got)
	}
	if got := page.Samples[1].Vals["pipeline_stage_worker_ns_count"]; got != 3 {
		t.Errorf("sample 1 histogram count = %v, want 3", got)
	}
	if len(page.Spans) != 1 || page.Spans[0].Name != "run:fixture" {
		t.Fatalf("spans = %+v", page.Spans)
	}
}

// TestSnapshotterBaselineSample: Start takes a t=0 sample synchronously, so
// a run shorter than one sampling interval still records a two-point
// timeline (the baseline plus Stop's final sample) instead of losing both
// ends.
func TestSnapshotterBaselineSample(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("work_total")
	s := NewSnapshotter(r, time.Hour, 16) // interval far longer than the run
	s.Start()
	if s.Total() != 1 {
		t.Fatalf("samples after Start = %d, want the t=0 baseline", s.Total())
	}
	c.Add(42)
	s.Stop()
	samples := s.Samples()
	if len(samples) != 2 {
		t.Fatalf("short run recorded %d samples, want baseline + final", len(samples))
	}
	if got := samples[0].Vals["work_total"]; got != 0 {
		t.Fatalf("baseline work_total = %v, want 0", got)
	}
	if got := samples[1].Vals["work_total"]; got != 42 {
		t.Fatalf("final work_total = %v, want 42", got)
	}
}
