package telemetry

import (
	"io"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	g := r.Gauge("depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(int64(j))
				g.SetMax(int64(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
	if g.Load() < 0 || g.Load() > 8000 {
		t.Fatalf("gauge = %d out of range", g.Load())
	}
}

func TestSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Load() != 5 {
		t.Fatalf("SetMax regressed: %d", g.Load())
	}
	g.SetMax(9)
	if g.Load() != 9 {
		t.Fatalf("SetMax did not advance: %d", g.Load())
	}
}

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a_total") != r.Counter("a_total") {
		t.Error("Counter not interned")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not interned")
	}
	if r.Pipeline("p") != r.Pipeline("p") {
		t.Error("Pipeline not interned")
	}
}

func TestWriteTextAndRates(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(500)
	r.Gauge("depth").Set(7)
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"events_total 500\n", "depth 7\n", "events_per_sec "} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The first scrape rates against registry creation; with any elapsed time
	// the derived rate is positive.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "events_per_sec ") {
			val := strings.TrimPrefix(line, "events_per_sec ")
			if val == "0" || val == "0.0" {
				t.Errorf("events_per_sec is zero on first scrape: %q", line)
			}
		}
	}
}

func TestPipelineMetricNames(t *testing.T) {
	r := NewRegistry()
	p := r.Pipeline("pipeline")
	p.Events.Add(10)
	p.QueueDepth[0].Set(3)
	p.QueueDepthMax.SetMax(3)
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"pipeline_events_total 10",
		`pipeline_queue_depth{worker="0"} 3`,
		"pipeline_queue_depth_max 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSetMaxContention(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	const workers = 16
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				g.SetMax(int64(rng.Intn(1_000_000)))
			}
		}(int64(w))
	}
	wg.Wait()
	// The high-water mark can only have been one of the submitted values.
	if v := g.Load(); v < 0 || v >= 1_000_000 {
		t.Fatalf("SetMax final value %d out of submitted range", v)
	}
	final := g.Load()
	g.SetMax(final - 1)
	if g.Load() != final {
		t.Fatal("SetMax regressed below the high-water mark")
	}
}

func TestWriteTextSortedDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(1)
	r.Counter("aa_total").Add(2)
	r.Gauge("mm_depth").Set(3)
	r.Histogram("hh_latency_ns").Observe(100)
	var first strings.Builder
	r.WriteText(&first)
	lines := strings.Split(strings.TrimRight(first.String(), "\n"), "\n")
	if !sort.StringsAreSorted(lines) {
		t.Fatalf("exposition lines not sorted:\n%s", first.String())
	}
	// Histograms render count, sum and the three quantiles.
	for _, want := range []string{
		"hh_latency_ns_count 1", "hh_latency_ns_sum 100",
		"hh_latency_ns_p50 ", "hh_latency_ns_p90 ", "hh_latency_ns_p99 ",
	} {
		if !strings.Contains(first.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, first.String())
		}
	}
	// Two scrapes with unchanged metrics differ only in rate lines.
	var second strings.Builder
	r.WriteText(&second)
	stripRates := func(s string) string {
		var keep []string
		for _, l := range strings.Split(s, "\n") {
			if !strings.Contains(l, "_per_sec ") {
				keep = append(keep, l)
			}
		}
		return strings.Join(keep, "\n")
	}
	if stripRates(first.String()) != stripRates(second.String()) {
		t.Errorf("exposition not deterministic across scrapes:\n--- first\n%s\n--- second\n%s",
			first.String(), second.String())
	}
}

// reentrantWriter proves no registry lock is held while the page is written:
// its Write calls back into the registry, which would deadlock against a
// held write lock (new-metric interning) on the scraping goroutine.
type reentrantWriter struct {
	r *Registry
	n int
}

func (w *reentrantWriter) Write(p []byte) (int, error) {
	w.r.Counter("reentrant_total").Inc()
	w.r.Gauge("reentrant_depth").Set(int64(w.n))
	w.n++
	return len(p), nil
}

func TestScrapeHoldsNoLockWhileWriting(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(9)
	r.WriteText(&reentrantWriter{r: r})
}

func TestConcurrentSlowScrape(t *testing.T) {
	r := NewRegistry()
	p := r.Pipeline("pipeline")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // hot-path writers keep mutating while scrapes run
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.Events.Inc()
			p.ObserveQueueDepth(i%4, int64(i%17))
			p.StageWorkerNs.Observe(int64(i % 1000))
		}
	}()
	var scrapes sync.WaitGroup
	for i := 0; i < 8; i++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for j := 0; j < 20; j++ {
				w := httptest.NewRecorder()
				r.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
				if w.Body.Len() == 0 {
					t.Error("empty scrape")
					return
				}
				_, _ = io.Copy(io.Discard, w.Body)
				time.Sleep(time.Millisecond)
			}
		}()
	}
	scrapes.Wait()
	close(stop)
	wg.Wait()
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(7)
	r.Gauge("depth").Set(-2)
	r.Histogram("lat_ns").Observe(50)
	snap := r.Snapshot()
	if snap["events_total"] != 7 || snap["depth"] != -2 {
		t.Fatalf("snapshot values wrong: %v", snap)
	}
	if snap["lat_ns_count"] != 1 || snap["lat_ns_sum"] != 50 {
		t.Fatalf("snapshot histogram entries wrong: %v", snap)
	}
	for _, k := range []string{"lat_ns_p50", "lat_ns_p90", "lat_ns_p99"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing %s", k)
		}
	}
	// Snapshot must not contain or disturb scrape-rate state.
	if _, ok := snap["events_per_sec"]; ok {
		t.Error("snapshot should not compute rate entries")
	}
}

func TestObserveSigFPR(t *testing.T) {
	r := NewRegistry()
	p := r.Pipeline("pipeline")
	p.ObserveSigFPR(2, 0.25, 0.2212)
	if got := p.SigFPRMeasuredPPM[2].Load(); got != 250000 {
		t.Fatalf("measured ppm = %d, want 250000", got)
	}
	if got := p.SigFPRPredictedPPM[2].Load(); got != 221200 {
		t.Fatalf("predicted ppm = %d, want 221200", got)
	}
	// Worker indices beyond the slot count alias instead of panicking.
	p.ObserveSigFPR(MaxWorkerSlots+2, 0.5, 0.5)
	if got := p.SigFPRMeasuredPPM[2].Load(); got != 500000 {
		t.Fatalf("aliased measured ppm = %d, want 500000", got)
	}
	var sb strings.Builder
	r.WriteText(&sb)
	for _, want := range []string{
		`pipeline_sig_fpr_measured_ppm{worker="2"} 500000`,
		`pipeline_sig_fpr_predicted_ppm{worker="2"} 500000`,
		"pipeline_sig_insert_conflicts_total 0",
		"pipeline_sig_lookup_conflicts_total 0",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestRegistryRemove(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("doomed_total")
	c.Add(9)
	r.Gauge("doomed_depth").Set(4)
	r.Histogram("doomed_ms").Observe(5)
	r.Counter("survivor_total").Add(1)

	r.Remove("doomed_total", "doomed_depth", "doomed_ms", "never_registered")
	snap := r.Snapshot()
	for name := range snap {
		if strings.HasPrefix(name, "doomed") {
			t.Fatalf("removed metric %s still in snapshot", name)
		}
	}
	if _, ok := snap["survivor_total"]; !ok {
		t.Fatal("Remove took out an unrelated metric")
	}

	// A held handle stays safe after removal — it just no longer scrapes.
	c.Inc()
	if c.Load() != 10 {
		t.Fatalf("held handle count = %d, want 10", c.Load())
	}
	// Re-registering the name starts a fresh series from zero.
	if got := r.Counter("doomed_total").Load(); got != 0 {
		t.Fatalf("re-registered counter starts at %d, want 0", got)
	}
}
