package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	g := r.Gauge("depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(int64(j))
				g.SetMax(int64(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
	if g.Load() < 0 || g.Load() > 8000 {
		t.Fatalf("gauge = %d out of range", g.Load())
	}
}

func TestSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Load() != 5 {
		t.Fatalf("SetMax regressed: %d", g.Load())
	}
	g.SetMax(9)
	if g.Load() != 9 {
		t.Fatalf("SetMax did not advance: %d", g.Load())
	}
}

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a_total") != r.Counter("a_total") {
		t.Error("Counter not interned")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not interned")
	}
	if r.Pipeline("p") != r.Pipeline("p") {
		t.Error("Pipeline not interned")
	}
}

func TestWriteTextAndRates(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(500)
	r.Gauge("depth").Set(7)
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"events_total 500\n", "depth 7\n", "events_per_sec "} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The first scrape rates against registry creation; with any elapsed time
	// the derived rate is positive.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "events_per_sec ") {
			val := strings.TrimPrefix(line, "events_per_sec ")
			if val == "0" || val == "0.0" {
				t.Errorf("events_per_sec is zero on first scrape: %q", line)
			}
		}
	}
}

func TestPipelineMetricNames(t *testing.T) {
	r := NewRegistry()
	p := r.Pipeline("pipeline")
	p.Events.Add(10)
	p.QueueDepth[0].Set(3)
	p.QueueDepthMax.SetMax(3)
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"pipeline_events_total 10",
		`pipeline_queue_depth{worker="0"} 3`,
		"pipeline_queue_depth_max 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
