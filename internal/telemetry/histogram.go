package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of power-of-two buckets a Histogram carries.
// Bucket 0 holds the value 0; bucket b >= 1 holds values in [2^(b-1), 2^b).
// 64 buckets cover every non-negative int64, so Observe never range-checks.
const histBuckets = 64

// Histogram is a lock-free log-bucketed distribution, built for nanosecond
// latencies recorded on pipeline hot paths: one atomic increment per
// observation, fixed memory, and no allocation. Quantiles are approximate —
// exact to the power-of-two bucket, linearly interpolated within it — which
// is plenty for the p50/p90/p99 latency telemetry the flight recorder wants
// and is what keeps recording cheap enough to leave on in production.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value. Negative values clamp to zero (durations from a
// stepping clock can, rarely, come out negative).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// histSnap is a point-in-time copy of the buckets, so one quantile walk sees
// a consistent-enough distribution even while writers keep observing.
type histSnap struct {
	count   uint64
	buckets [histBuckets]uint64
}

func (h *Histogram) snapshot() histSnap {
	var s histSnap
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.buckets[i] = n
		s.count += n
	}
	return s
}

// quantile returns the approximate q-quantile (0 < q <= 1) of the snapshot:
// the bucket holding the rank-q observation, linearly interpolated. Returns 0
// for an empty histogram.
func (s histSnap) quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	// Nearest-rank: the smallest rank r with r >= q*count.
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	var cum uint64
	for b, n := range s.buckets {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(b)
			frac := float64(rank-cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return 0 // unreachable: cum reaches count
}

// bucketBounds returns the value range [lo, hi] bucket b covers.
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 0
	}
	return float64(uint64(1) << (b - 1)), float64(uint64(1)<<b - 1)
}

// Quantile returns the approximate q-quantile (0 < q <= 1) of everything
// observed so far.
func (h *Histogram) Quantile(q float64) float64 {
	return h.snapshot().quantile(q)
}
