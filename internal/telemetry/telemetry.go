// Package telemetry provides the profiler's observability layer: cheap
// atomic counters and gauges that the hot pipeline paths update at chunk
// granularity, collected in a Registry that renders a plain-text exposition
// page (one `name value` pair per line, Prometheus-style) over HTTP.
//
// The pipeline metrics (events in, queue depth per worker, chunk-pool
// recycling, signature occupancy, heavy-hitter redistributions) are grouped
// in a Pipeline so internal/core can bump typed fields without map lookups
// on the hot path. The ddprofd daemon serves a Registry per process;
// `ddexp -metrics addr` serves the same page for local experiment runs.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v is larger (high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; metric handles are interned, so hot paths should hold the
// *Counter / *Gauge rather than re-resolving names.
type Registry struct {
	mu        sync.RWMutex
	start     time.Time
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	pipelines map[string]*Pipeline

	// previous scrape snapshot, for windowed per-second rates.
	scrapeMu   sync.Mutex
	lastScrape time.Time
	lastVals   map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:     time.Now(),
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		pipelines: make(map[string]*Pipeline),
		lastVals:  make(map[string]uint64),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// WriteText renders every metric as one `name value` line, sorted by name.
// Counters whose name ends in `_total` additionally get a `<base>_per_sec`
// line: the rate over the window since the previous WriteText call (since
// registry creation on the first call). Values never decrease between lines
// of one exposition; the page is a consistent-enough snapshot for dashboards,
// not a transaction.
func (r *Registry) WriteText(w io.Writer) {
	now := time.Now()
	r.mu.RLock()
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	cvals := make(map[string]uint64, len(r.counters))
	gvals := make(map[string]int64, len(r.gauges))
	for n, c := range r.counters {
		names = append(names, n)
		cvals[n] = c.Load()
	}
	for n, g := range r.gauges {
		names = append(names, n)
		gvals[n] = g.Load()
	}
	r.mu.RUnlock()

	r.scrapeMu.Lock()
	since := r.lastScrape
	if since.IsZero() {
		since = r.start
	}
	window := now.Sub(since).Seconds()
	prev := r.lastVals
	next := make(map[string]uint64, len(cvals))
	for n, v := range cvals {
		next[n] = v
	}
	r.lastVals = next
	r.lastScrape = now
	r.scrapeMu.Unlock()

	sort.Strings(names)
	for _, n := range names {
		if v, ok := cvals[n]; ok {
			fmt.Fprintf(w, "%s %d\n", n, v)
			if base, ok := rateBase(n); ok && window > 0 {
				fmt.Fprintf(w, "%s_per_sec %.2f\n", base, float64(v-prev[n])/window)
			}
			continue
		}
		fmt.Fprintf(w, "%s %d\n", n, gvals[n])
	}
}

// rateBase reports whether a counter name should get a derived rate line.
func rateBase(name string) (string, bool) {
	const suffix = "_total"
	if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
		return name[:len(name)-len(suffix)], true
	}
	return "", false
}

// Handler serves the text exposition page.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WriteText(w)
	})
}

// MaxWorkerSlots is the number of per-worker queue-depth gauges a Pipeline
// carries. Worker i reports into slot i mod MaxWorkerSlots, so arbitrarily
// wide pipelines alias rather than allocate.
const MaxWorkerSlots = 64

// Pipeline groups the counters the profiling pipeline updates on its hot
// paths. Fields are plain pointers so internal/core pays one atomic op per
// chunk, not a registry lookup. A Pipeline may be shared by many concurrent
// pipelines (the daemon aggregates all sessions into one); counters then
// report totals and gauges last-observed values.
type Pipeline struct {
	// Events counts read/write accesses entering the pipeline.
	Events *Counter
	// Chunks counts chunks pushed to workers.
	Chunks *Counter
	// ChunksRecycled / ChunksAllocated split chunk acquisition by source:
	// recycled from a worker's return ring vs freshly allocated.
	ChunksRecycled  *Counter
	ChunksAllocated *Counter
	// Migrations counts addresses moved by heavy-hitter redistribution;
	// Redistributions counts rebalance rounds that moved at least one.
	Migrations      *Counter
	Redistributions *Counter
	// DepCacheHits / DepCacheProbes report the detection engines' instance
	// cache: a hit records a dependence instance with zero map operations.
	// Published at flush granularity.
	DepCacheHits   *Counter
	DepCacheProbes *Counter
	// DupCollapsed counts consecutive duplicate reads the producer collapsed
	// into repetition counts before chunking; events_total + dup_collapsed
	// equals the logical access count.
	DupCollapsed *Counter
	// QueueDepth[i] is the last queue depth observed for worker i at chunk
	// push time (including the chunk just pushed); QueueDepthMax is the
	// high-water mark across all workers.
	QueueDepth    [MaxWorkerSlots]*Gauge
	QueueDepthMax *Gauge
	// SigOccupancyPermille is the mean signature write-slot occupancy of the
	// last flushed pipeline, in thousandths.
	SigOccupancyPermille *Gauge
}

// ObserveQueueDepth records a queue-depth observation for one worker: the
// per-worker gauge takes the latest value (aliased into MaxWorkerSlots
// slots) and the pipeline-wide high-water mark rises monotonically. Both the
// producer (at chunk push time) and the merge stage (consumer-observed
// maxima) report through this one helper so every mode's gauges agree on
// semantics.
func (p *Pipeline) ObserveQueueDepth(worker int, depth int64) {
	p.QueueDepth[worker%MaxWorkerSlots].Set(depth)
	p.QueueDepthMax.SetMax(depth)
}

// Pipeline returns the pipeline metric group registered under prefix,
// creating it if needed. All metric names are "<prefix>_<metric>".
func (r *Registry) Pipeline(prefix string) *Pipeline {
	r.mu.RLock()
	p := r.pipelines[prefix]
	r.mu.RUnlock()
	if p != nil {
		return p
	}
	p = &Pipeline{
		Events:               r.Counter(prefix + "_events_total"),
		Chunks:               r.Counter(prefix + "_chunks_total"),
		ChunksRecycled:       r.Counter(prefix + "_chunks_recycled_total"),
		ChunksAllocated:      r.Counter(prefix + "_chunks_allocated_total"),
		Migrations:           r.Counter(prefix + "_migrations_total"),
		Redistributions:      r.Counter(prefix + "_redistributions_total"),
		DepCacheHits:         r.Counter(prefix + "_dep_cache_hits_total"),
		DepCacheProbes:       r.Counter(prefix + "_dep_cache_probes_total"),
		DupCollapsed:         r.Counter(prefix + "_dup_collapsed_total"),
		QueueDepthMax:        r.Gauge(prefix + "_queue_depth_max"),
		SigOccupancyPermille: r.Gauge(prefix + "_sig_occupancy_permille"),
	}
	for i := range p.QueueDepth {
		p.QueueDepth[i] = r.Gauge(fmt.Sprintf("%s_queue_depth{worker=\"%d\"}", prefix, i))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if exist := r.pipelines[prefix]; exist != nil {
		return exist
	}
	r.pipelines[prefix] = p
	return p
}
