// Package telemetry provides the profiler's observability layer: cheap
// atomic counters, gauges and log-bucketed latency histograms that the hot
// pipeline paths update at chunk granularity, collected in a Registry that
// renders a plain-text exposition page (one `name value` pair per line,
// Prometheus-style) over HTTP.
//
// The pipeline metrics (events in, queue depth per worker, chunk-pool
// recycling, signature occupancy, stage latencies, heavy-hitter
// redistributions, live Eq. (2) accuracy) are grouped in a Pipeline so
// internal/core can bump typed fields without map lookups on the hot path.
// The ddprofd daemon serves a Registry per process; `ddexp -metrics addr`
// serves the same page for local experiment runs. The Snapshotter
// (snapshot.go) turns the same Registry into a time series: a fixed ring of
// periodic samples exportable as Chrome trace-event JSON.
package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v is larger (high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; metric handles are interned, so hot paths should hold the
// *Counter / *Gauge / *Histogram rather than re-resolving names.
type Registry struct {
	mu         sync.RWMutex
	start      time.Time
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	pipelines  map[string]*Pipeline

	// previous scrape snapshot, for windowed per-second rates.
	scrapeMu   sync.Mutex
	lastScrape time.Time
	lastVals   map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:      time.Now(),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		pipelines:  make(map[string]*Pipeline),
		lastVals:   make(map[string]uint64),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed. The exposition page renders it as `<name>_count`, `<name>_sum` and
// the `<name>_p50/_p90/_p99` quantiles.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Remove deletes the metrics registered under the given names — counters,
// gauges and histograms alike — so bounded-cardinality labeled series (the
// daemon's per-session counters) can be evicted when their subject goes away.
// Holding a removed metric's handle stays safe: updates through it simply no
// longer reach any exposition. Re-registering the same name later yields a
// fresh metric starting from zero.
func (r *Registry) Remove(names ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range names {
		delete(r.counters, n)
		delete(r.gauges, n)
		delete(r.histograms, n)
	}
}

// histQuantiles are the quantiles the exposition page and Snapshot render
// for every histogram.
var histQuantiles = []struct {
	suffix string
	q      float64
}{{"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}}

// WriteText renders every metric as one `name value` line, sorted by line.
// Counters whose name ends in `_total` additionally get a `<base>_per_sec`
// line: the rate over the window since the previous WriteText call (since
// registry creation on the first call). Histograms render as count, sum and
// quantile lines. The whole page is rendered to a private buffer before the
// first byte reaches w, so a slow reader (a stalled scrape socket) never
// holds any registry lock, and the output is deterministic for equal metric
// values: fully sorted, one line per metric.
func (r *Registry) WriteText(w io.Writer) {
	buf := r.renderText()
	w.Write(buf)
}

// renderText produces the exposition page. All locks are released before it
// returns; the caller owns the byte slice.
func (r *Registry) renderText() []byte {
	now := time.Now()
	r.mu.RLock()
	cvals := make(map[string]uint64, len(r.counters))
	for n, c := range r.counters {
		cvals[n] = c.Load()
	}
	gvals := make(map[string]int64, len(r.gauges))
	for n, g := range r.gauges {
		gvals[n] = g.Load()
	}
	hsnaps := make(map[string]histSnap, len(r.histograms))
	hsums := make(map[string]uint64, len(r.histograms))
	for n, h := range r.histograms {
		hsnaps[n] = h.snapshot()
		hsums[n] = h.Sum()
	}
	r.mu.RUnlock()

	r.scrapeMu.Lock()
	since := r.lastScrape
	if since.IsZero() {
		since = r.start
	}
	window := now.Sub(since).Seconds()
	prev := r.lastVals
	next := make(map[string]uint64, len(cvals))
	for n, v := range cvals {
		next[n] = v
	}
	r.lastVals = next
	r.lastScrape = now
	r.scrapeMu.Unlock()

	lines := make([]string, 0, len(cvals)+len(gvals)+5*len(hsnaps))
	for n, v := range cvals {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
		if base, ok := rateBase(n); ok && window > 0 {
			lines = append(lines, fmt.Sprintf("%s_per_sec %.2f", base, float64(v-prev[n])/window))
		}
	}
	for n, v := range gvals {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
	}
	for n, s := range hsnaps {
		lines = append(lines, fmt.Sprintf("%s_count %d", n, s.count))
		lines = append(lines, fmt.Sprintf("%s_sum %d", n, hsums[n]))
		for _, hq := range histQuantiles {
			lines = append(lines, fmt.Sprintf("%s%s %.0f", n, hq.suffix, s.quantile(hq.q)))
		}
	}
	sort.Strings(lines)

	var buf bytes.Buffer
	for _, l := range lines {
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Snapshot returns the current value of every metric, keyed by exposition
// name: counters and gauges verbatim, histograms as their _count, _sum and
// quantile entries. Unlike WriteText it computes no rate lines and touches
// no scrape-window state, so periodic sampling (the Snapshotter) and scrape
// rates cannot disturb each other.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+5*len(r.histograms))
	for n, c := range r.counters {
		out[n] = float64(c.Load())
	}
	for n, g := range r.gauges {
		out[n] = float64(g.Load())
	}
	for n, h := range r.histograms {
		s := h.snapshot()
		out[n+"_count"] = float64(s.count)
		out[n+"_sum"] = float64(h.Sum())
		for _, hq := range histQuantiles {
			out[n+hq.suffix] = s.quantile(hq.q)
		}
	}
	return out
}

// rateBase reports whether a counter name should get a derived rate line.
func rateBase(name string) (string, bool) {
	const suffix = "_total"
	if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
		return name[:len(name)-len(suffix)], true
	}
	return "", false
}

// Handler serves the text exposition page. The page is fully rendered before
// the response starts, so a slow client costs socket buffer space, never a
// registry lock.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		buf := r.renderText()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Write(buf)
	})
}

// MaxWorkerSlots is the number of per-worker gauges a Pipeline carries.
// Worker i reports into slot i mod MaxWorkerSlots, so arbitrarily wide
// pipelines alias rather than allocate.
const MaxWorkerSlots = 64

// Pipeline groups the counters the profiling pipeline updates on its hot
// paths. Fields are plain pointers so internal/core pays one atomic op per
// chunk, not a registry lookup. A Pipeline may be shared by many concurrent
// pipelines (the daemon aggregates all sessions into one); counters then
// report totals and gauges last-observed values.
type Pipeline struct {
	// Events counts read/write accesses entering the pipeline.
	Events *Counter
	// Chunks counts chunks pushed to workers.
	Chunks *Counter
	// ChunksRecycled / ChunksAllocated split chunk acquisition by source:
	// recycled from a worker's return ring vs freshly allocated.
	ChunksRecycled  *Counter
	ChunksAllocated *Counter
	// Migrations counts addresses moved by heavy-hitter redistribution;
	// Redistributions counts rebalance rounds that moved at least one.
	Migrations      *Counter
	Redistributions *Counter
	// DepCacheHits / DepCacheProbes report the detection engines' instance
	// cache: a hit records a dependence instance with zero map operations.
	// Published at sampled-batch granularity while the run is live, with the
	// remainder folded in at flush.
	DepCacheHits   *Counter
	DepCacheProbes *Counter
	// DupCollapsed counts consecutive duplicate reads the producer collapsed
	// into repetition counts before chunking; events_total + dup_collapsed
	// equals the logical access count.
	DupCollapsed *Counter
	// Ranges counts compressed strided runs emitted (by the producer's SD3
	// stride detection or ingested pre-compressed from traces);
	// RangeElements the accesses those runs stand for. Range elements are
	// already included in Events — these counters measure compression, not
	// extra traffic.
	Ranges        *Counter
	RangeElements *Counter
	// CompressionRatioPermille is the flush-time stride-compression ratio of
	// the last pipeline: observed accesses per stored record (points +
	// ranges), ×1000 — 1000 means no compression.
	CompressionRatioPermille *Gauge
	// StrideDetectors is the flush-time census of the producer's
	// per-instruction stride FSMs, indexed by stride.State
	// (start/first/learned/weak/random).
	StrideDetectors [5]*Gauge
	// QueueDepth[i] is the last queue depth observed for worker i at chunk
	// push time (including the chunk just pushed); QueueDepthMax is the
	// high-water mark across all workers.
	QueueDepth    [MaxWorkerSlots]*Gauge
	QueueDepthMax *Gauge
	// SigOccupancyPermille is the mean signature write-slot occupancy of the
	// last flushed pipeline, in thousandths.
	SigOccupancyPermille *Gauge

	// Stage latency histograms (nanoseconds), the flight recorder's span
	// layer. All are recorded at sampled chunk/batch granularity (one in
	// Config.SampleEvery) so the hot path stays inside the bench gate:
	//
	//	StageProduceNs       per-chunk producer routing: push (including any
	//	                     backpressure wait), depth observation, refill
	//	StageTransportWaitNs worker-side wait for the next non-empty batch
	//	StageWorkerNs        one worker batch through the detection engine
	//	StageMergeNs         the merge stage, once per flushed run
	StageProduceNs       *Histogram
	StageTransportWaitNs *Histogram
	StageWorkerNs        *Histogram
	StageMergeNs         *Histogram

	// Live Eq. (2) accuracy telemetry, populated when the worker stores run
	// with conflict tracking enabled (core.Config.TrackAccuracy):
	// SigFPRMeasuredPPM is the measured write-slot occupancy — the chance a
	// membership probe for a fresh address false-positives — and
	// SigFPRPredictedPPM the Eq. (2) prediction from the same store's
	// distinct-address estimate, both in parts per million, per worker.
	SigFPRMeasuredPPM  [MaxWorkerSlots]*Gauge
	SigFPRPredictedPPM [MaxWorkerSlots]*Gauge
	// SigInsertConflicts counts write-slot installs that evicted a different
	// address; SigLookupConflicts counts lookups answered by a slot a
	// different address wrote — live false positives.
	SigInsertConflicts *Counter
	SigLookupConflicts *Counter

	// Store footprint gauges, published at Flush for every backend:
	// StoreBytes is the summed actual footprint of all worker stores (shadow
	// page accounting, hash-table entries, signature slot arrays alike).
	// Two-tier stores (the hybrid backend) additionally split the footprint
	// into StoreExactBytes + StoreTailBytes and report the number of
	// addresses currently held exactly in StoreExactResident.
	StoreBytes         *Gauge
	StoreExactBytes    *Gauge
	StoreTailBytes     *Gauge
	StoreExactResident *Gauge
}

// ObserveQueueDepth records a queue-depth observation for one worker: the
// per-worker gauge takes the latest value (aliased into MaxWorkerSlots
// slots) and the pipeline-wide high-water mark rises monotonically. Both the
// producer (at chunk push time) and the merge stage (consumer-observed
// maxima) report through this one helper so every mode's gauges agree on
// semantics.
func (p *Pipeline) ObserveQueueDepth(worker int, depth int64) {
	p.QueueDepth[worker%MaxWorkerSlots].Set(depth)
	p.QueueDepthMax.SetMax(depth)
}

// ObserveSigFPR records one worker's live signature accuracy: the measured
// false-positive probability (write-slot occupancy) and the Eq. (2)
// prediction for the same store, as parts-per-million gauges.
func (p *Pipeline) ObserveSigFPR(worker int, measured, predicted float64) {
	p.SigFPRMeasuredPPM[worker%MaxWorkerSlots].Set(int64(measured * 1e6))
	p.SigFPRPredictedPPM[worker%MaxWorkerSlots].Set(int64(predicted * 1e6))
}

// Pipeline returns the pipeline metric group registered under prefix,
// creating it if needed. All metric names are "<prefix>_<metric>".
func (r *Registry) Pipeline(prefix string) *Pipeline {
	r.mu.RLock()
	p := r.pipelines[prefix]
	r.mu.RUnlock()
	if p != nil {
		return p
	}
	p = &Pipeline{
		Events:                   r.Counter(prefix + "_events_total"),
		Chunks:                   r.Counter(prefix + "_chunks_total"),
		ChunksRecycled:           r.Counter(prefix + "_chunks_recycled_total"),
		ChunksAllocated:          r.Counter(prefix + "_chunks_allocated_total"),
		Migrations:               r.Counter(prefix + "_migrations_total"),
		Redistributions:          r.Counter(prefix + "_redistributions_total"),
		DepCacheHits:             r.Counter(prefix + "_dep_cache_hits_total"),
		DepCacheProbes:           r.Counter(prefix + "_dep_cache_probes_total"),
		DupCollapsed:             r.Counter(prefix + "_dup_collapsed_total"),
		Ranges:                   r.Counter(prefix + "_ranges_total"),
		RangeElements:            r.Counter(prefix + "_range_elements_total"),
		CompressionRatioPermille: r.Gauge(prefix + "_compression_ratio_permille"),
		QueueDepthMax:            r.Gauge(prefix + "_queue_depth_max"),
		SigOccupancyPermille:     r.Gauge(prefix + "_sig_occupancy_permille"),
		StageProduceNs:           r.Histogram(prefix + "_stage_produce_ns"),
		StageTransportWaitNs:     r.Histogram(prefix + "_stage_transport_wait_ns"),
		StageWorkerNs:            r.Histogram(prefix + "_stage_worker_ns"),
		StageMergeNs:             r.Histogram(prefix + "_stage_merge_ns"),
		SigInsertConflicts:       r.Counter(prefix + "_sig_insert_conflicts_total"),
		SigLookupConflicts:       r.Counter(prefix + "_sig_lookup_conflicts_total"),
		StoreBytes:               r.Gauge(prefix + "_store_bytes"),
		StoreExactBytes:          r.Gauge(prefix + "_store_exact_bytes"),
		StoreTailBytes:           r.Gauge(prefix + "_store_tail_bytes"),
		StoreExactResident:       r.Gauge(prefix + "_store_exact_resident"),
	}
	for s, name := range [5]string{"start", "first", "learned", "weak", "random"} {
		p.StrideDetectors[s] = r.Gauge(fmt.Sprintf("%s_stride_detectors{state=%q}", prefix, name))
	}
	for i := range p.QueueDepth {
		p.QueueDepth[i] = r.Gauge(fmt.Sprintf("%s_queue_depth{worker=\"%d\"}", prefix, i))
		p.SigFPRMeasuredPPM[i] = r.Gauge(fmt.Sprintf("%s_sig_fpr_measured_ppm{worker=\"%d\"}", prefix, i))
		p.SigFPRPredictedPPM[i] = r.Gauge(fmt.Sprintf("%s_sig_fpr_predicted_ppm{worker=\"%d\"}", prefix, i))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if exist := r.pipelines[prefix]; exist != nil {
		return exist
	}
	r.pipelines[prefix] = p
	return p
}
