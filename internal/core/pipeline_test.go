package core

import (
	"strings"
	"sync"
	"testing"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/telemetry"
)

// TestConfigValidation exercises the centralized Config checks: every
// constructor path funnels through normalize/makeStores, so a bad
// configuration fails with the same descriptive error everywhere.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"negative workers", Config{Mode: ModeParallel, Workers: -1}, "Workers"},
		{"negative queue cap", Config{Mode: ModeMT, QueueCap: -3}, "QueueCap"},
		{"negative slots", Config{Mode: ModeSerial, SlotsPerWorker: -5}, "SlotsPerWorker"},
		{"negative redistribute", Config{Mode: ModeParallel, RedistributeEvery: -1}, "RedistributeEvery"},
		{"bad backend spec", Config{Mode: ModeParallel, Workers: 1, Backend: "no-such-backend"}, "Config.Backend"},
		{"existence through New", Config{Mode: ModeExistence}, "NewExistence"},
		{"unknown mode", Config{Mode: Mode(42)}, "unknown Mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := New(tc.cfg)
			if err == nil {
				t.Fatalf("New(%+v) = %T, want error", tc.cfg, p)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// The typed constructors surface the same validation as panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewParallel with negative Workers did not panic")
			}
		}()
		NewParallel(Config{Workers: -1})
	}()
}

// TestNewDispatch drives each mode end-to-end through the unified
// constructor.
func TestNewDispatch(t *testing.T) {
	for _, mode := range []Mode{ModeSerial, ModeParallel, ModeMT} {
		t.Run(mode.String(), func(t *testing.T) {
			p, err := New(Config{Mode: mode, Workers: 2, Backend: "perfect"})
			if err != nil {
				t.Fatal(err)
			}
			p.Access(event.Access{Addr: 0x100, Kind: event.Write, Loc: loc.Pack(1, 1), TS: 1})
			p.Access(event.Access{Addr: 0x100, Kind: event.Read, Loc: loc.Pack(1, 2), TS: 2})
			res := p.Flush()
			if res.Stats.Accesses != 2 {
				t.Errorf("accesses = %d, want 2", res.Stats.Accesses)
			}
			if res.Deps.Unique() == 0 {
				t.Error("no dependences detected")
			}
		})
	}
}

// TestDoubleFlushPanicsEveryMode: the pipeline chassis centralizes the
// double-flush guard, so all four variants fail identically.
func TestDoubleFlushPanicsEveryMode(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: second Flush did not panic", name)
				return
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "Flush called twice") {
				t.Errorf("%s: panic %v does not mention double flush", name, r)
			}
		}()
		f()
	}
	s := NewSerial(Config{Backend: "perfect"})
	s.Flush()
	expectPanic("serial", func() { s.Flush() })
	p := NewParallel(Config{Workers: 2, Backend: "perfect"})
	p.Flush()
	expectPanic("parallel", func() { p.Flush() })
	m := NewMT(Config{Workers: 2, Backend: "perfect"})
	m.Flush()
	expectPanic("mt", func() { m.Flush() })
	e := NewExistence(Config{Workers: 2})
	e.Flush()
	expectPanic("existence", func() { e.Flush() })
}

// TestMTPublishesTelemetry closes the MT observability gap: before the
// pipeline unification, MT.Flush published neither signature occupancy nor
// per-worker queue depths. Both now flow through the shared merge stage.
func TestMTPublishesTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := reg.Pipeline("t")
	m := NewMT(Config{Workers: 2, SlotsPerWorker: 1 << 10, Metrics: pipe})
	var ts uint64
	for i := 0; i < 4096; i++ {
		ts++
		m.Access(event.Access{Addr: uint64(0x1000 + 8*i), Kind: event.Write, Loc: loc.Pack(1, 1), TS: ts})
	}
	res := m.Flush()
	if got := pipe.Events.Load(); got != 4096 {
		t.Errorf("events_total = %d, want 4096", got)
	}
	if pipe.QueueDepthMax.Load() == 0 {
		t.Error("queue_depth_max gauge not published")
	}
	seen := false
	for i := 0; i < 2; i++ {
		if pipe.QueueDepth[i].Load() > 0 {
			seen = true
		}
	}
	if !seen {
		t.Error("no per-worker queue-depth gauge published")
	}
	if pipe.SigOccupancyPermille.Load() == 0 {
		t.Error("signature occupancy gauge not published")
	}
	if len(res.WorkerEvents) != 2 {
		t.Errorf("WorkerEvents = %v, want per-worker counts", res.WorkerEvents)
	}
}

// TestMTDupCollapse: the MT transports collapse consecutive identical reads
// on the consumer side (the producers are target threads and must stay
// filter-free). The profile is byte-identical — the engine replays the
// multiplicity.
func TestMTDupCollapse(t *testing.T) {
	const reads = 5000
	evs := make([]event.Access, 0, reads+1)
	evs = append(evs, event.Access{Addr: 0x800, Kind: event.Write, Loc: loc.Pack(1, 1)})
	for i := 0; i < reads; i++ {
		// Untimestamped identical reads, as a sequential replay would push.
		evs = append(evs, event.Access{Addr: 0x800, Kind: event.Read, Loc: loc.Pack(1, 2)})
	}
	want := runSerial(evs)

	m := NewMT(Config{Workers: 2, Backend: "perfect"})
	for _, a := range evs {
		m.Access(a)
	}
	got := m.Flush()
	depsEqual(t, want.Deps, got.Deps, "mt-collapsed")
	if got.Stats.Accesses != reads+1 {
		t.Errorf("accesses = %d, want %d (collapse must preserve logical counts)", got.Stats.Accesses, reads+1)
	}
	if got.Stats.DupCollapsed == 0 {
		t.Error("no duplicate reads collapsed on an all-duplicate stream")
	}

	// With distinct timestamps (real MT streams) nothing may collapse:
	// the equality covers TS, so distinct accesses stay distinct.
	m2 := NewMT(Config{Workers: 2, Backend: "perfect"})
	var ts uint64
	for _, a := range evs {
		ts++
		a.TS = ts
		m2.Access(a)
	}
	if got2 := m2.Flush(); got2.Stats.DupCollapsed != 0 {
		t.Errorf("collapsed %d timestamped accesses", got2.Stats.DupCollapsed)
	}
}

// TestMTRedistributionPreservesResults: MT gains the §IV-A heavy-hitter
// redistribution. A skewed single-producer stream must migrate at least one
// address (the rebalancer runs a final deterministic round at flush) and
// still reproduce the serial dependences exactly.
func TestMTRedistributionPreservesResults(t *testing.T) {
	evs := synthStream(300000, 200, 3)
	want := runSerial(evs)
	m := NewMT(Config{
		Workers:           4,
		Backend:           "perfect",
		RedistributeEvery: 8, // kick every 8×ChunkSize accesses
	})
	for _, a := range evs {
		m.Access(a)
	}
	got := m.Flush()
	depsEqual(t, want.Deps, got.Deps, "mt-redistributed")
	if got.Stats.Accesses != uint64(len(evs)) {
		t.Errorf("accesses = %d, want %d", got.Stats.Accesses, len(evs))
	}
	if got.Stats.Migrations == 0 {
		t.Error("skewed stream performed no migration")
	}
	if got.Stats.Redistributions == 0 {
		t.Error("no redistribution rounds recorded")
	}
}

// TestMTRedistributionConcurrentProducers hammers the hold-and-replay
// migration protocol while four producers keep pushing: per-thread private
// dependences must keep exact counts even as their hot addresses migrate
// mid-stream.
func TestMTRedistributionConcurrentProducers(t *testing.T) {
	const perThread = 20000
	m := NewMT(Config{
		Workers:           4,
		Backend:           "perfect",
		RedistributeEvery: 1, // rebalance as often as possible
	})
	var ts struct {
		sync.Mutex
		n uint64
	}
	stamp := func() uint64 {
		ts.Lock()
		defer ts.Unlock()
		ts.n++
		return ts.n
	}
	var wg sync.WaitGroup
	for thr := int32(0); thr < 4; thr++ {
		wg.Add(1)
		go func(thr int32) {
			defer wg.Done()
			// One hot address per thread (a heavy hitter the sketch will
			// see) plus a spread of cold ones. The ranges are disjoint
			// across threads so every dependence below is thread-private.
			hot := uint64(0x900000 + 8*int(thr))
			base := uint64(0x100000 * (int(thr) + 1))
			for i := 0; i < perThread; i++ {
				a := base + uint64(8*(i%64))
				if i%2 == 0 {
					a = hot
				}
				m.Access(event.Access{Addr: a, Kind: event.Write, Loc: loc.Pack(1, int(thr)+1), Thread: thr, TS: stamp()})
				m.Access(event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(1, 10+int(thr)), Thread: thr, TS: stamp()})
			}
		}(thr)
	}
	wg.Wait()
	got := m.Flush()
	if got.Stats.Accesses != 4*2*perThread {
		t.Errorf("accesses = %d, want %d", got.Stats.Accesses, 4*2*perThread)
	}
	for thr := int32(0); thr < 4; thr++ {
		k := dep.Key{Type: dep.RAW, Sink: loc.Pack(1, 10+int(thr)), SinkThread: int16(thr), Src: loc.Pack(1, int(thr)+1), SrcThread: int16(thr)}
		st, ok := got.Deps.Lookup(k)
		if !ok {
			t.Fatalf("thread %d RAW missing", thr)
		}
		if st.Count != perThread {
			t.Errorf("thread %d RAW count = %d, want %d (lost or duplicated during migration)", thr, st.Count, perThread)
		}
		if st.Reversed {
			t.Errorf("thread %d private dep flagged as race", thr)
		}
	}
}

// TestExistenceRecyclesChunks: existence mode now rides the shared producer
// and gets chunk recycling; a long stream must not allocate one chunk per
// push.
func TestExistenceRecyclesChunks(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := reg.Pipeline("t")
	// A shallow queue forces backpressure: the producer outruns the map-bound
	// workers, stalls on the full ring, and by the time it resumes the drained
	// chunks are waiting in the recycle rings.
	e := NewExistence(Config{Workers: 2, QueueCap: 4, Metrics: pipe})
	for i := 0; i < 64*event.ChunkSize; i++ {
		k := event.Read
		if i%3 == 0 {
			k = event.Write
		}
		e.Access(event.Access{Addr: uint64(0x1000 + 8*(i%512)), Kind: k, Loc: loc.Pack(1, 1+i%10)})
	}
	res := e.Flush()
	if res.Stats.Chunks < 32 {
		t.Fatalf("chunks = %d, want a long chunk stream", res.Stats.Chunks)
	}
	if pipe.ChunksRecycled.Load() == 0 {
		t.Error("no chunks recycled in existence mode")
	}
}
