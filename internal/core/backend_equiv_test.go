package core

import (
	"fmt"
	"testing"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
	"ddprof/internal/telemetry"
)

// TestStoreTelemetryPublished: Flush publishes the store gauges for every
// backend — the summed actual footprint always, and the per-tier split plus
// exact residency when the store is tiered (the hybrid).
func TestStoreTelemetryPublished(t *testing.T) {
	drive := func(backend string) *telemetry.Pipeline {
		reg := telemetry.NewRegistry()
		pipe := reg.Pipeline("t")
		p := NewParallel(Config{Workers: 2, Backend: backend, Metrics: pipe})
		var ts uint64
		for i := 0; i < 20000; i++ {
			ts++
			addr := uint64(0x1000 + 8*(i%16)) // tight hot set: promotions fire
			k := event.Write
			if i%2 == 1 {
				k = event.Read
			}
			p.Access(event.Access{Addr: addr, Kind: k, Loc: loc.Pack(1, 1+i%4), TS: ts})
		}
		p.Flush()
		return pipe
	}

	// Shadow memory: page-granular Bytes() accounting reaches the gauge.
	if pipe := drive("shadow"); pipe.StoreBytes.Load() == 0 {
		t.Error("shadow: store_bytes gauge not published at Flush")
	}
	// Hybrid: total plus tier split and residency.
	pipe := drive("hybrid:slots=1024,exact=8,promote=4")
	if pipe.StoreBytes.Load() == 0 {
		t.Error("hybrid: store_bytes gauge not published")
	}
	if pipe.StoreExactBytes.Load() == 0 || pipe.StoreTailBytes.Load() == 0 {
		t.Errorf("hybrid: tier gauges exact=%d tail=%d, want both positive",
			pipe.StoreExactBytes.Load(), pipe.StoreTailBytes.Load())
	}
	if pipe.StoreExactResident.Load() == 0 {
		t.Error("hybrid: no exact residents on an all-hot stream")
	}
}

// exactBackends enumerates every registered backend that promises exact
// results, plus the hybrid with an unbounded exact tier — all of them must
// produce byte-identical profiles. "perfect" is the reference.
var exactBackends = []string{"perfect", "shadow", "hashtab", "hybrid:exact=0"}

// TestBackendEquivalence is the cross-backend golden suite: the same access
// streams driven through serial and parallel pipelines under each exact
// backend hash to the same profile digest. The digest covers the full
// dependence set with per-key stats and the loop aggregates, so a single
// dropped or spurious dependence in any store implementation fails here.
func TestBackendEquivalence(t *testing.T) {
	streams := equivSuite()
	streams = append(streams,
		equivStream{"synth", prog.NewMeta(), synthStream(1<<15, 512, 7)},
		equivStream{"mt-4threads", prog.NewMeta(), mtThreadStream(4, 8000)},
	)
	modes := []struct {
		name string
		mk   func(backend string, meta *prog.Meta) Profiler
	}{
		{"serial", func(b string, meta *prog.Meta) Profiler {
			return NewSerial(Config{Backend: b, Meta: meta})
		}},
		{"par3", func(b string, meta *prog.Meta) Profiler {
			return NewParallel(Config{Workers: 3, QueueCap: 8, Backend: b, Meta: meta})
		}},
		{"par4-redist", func(b string, meta *prog.Meta) Profiler {
			return NewParallel(Config{Workers: 4, RedistributeEvery: 4, Backend: b, Meta: meta})
		}},
	}
	for _, s := range streams {
		for _, m := range modes {
			want := ""
			for _, b := range exactBackends {
				got := digestResult(feed(m.mk(b, s.meta), s.evs), false, false)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s/%s: backend %q profile diverged from %q", s.name, m.name, b, exactBackends[0])
				}
			}
		}
	}
}

// TestHybridBoundedHeavyHitters is the local half of the hybrid acceptance
// check: under a tight exactness budget the hybrid must still recover every
// dependence among the heavy-hitter addresses the promotion machinery is
// meant to protect, and remain near-complete overall. Hot accesses carry
// file ID 2 so their dependence keys are separable from the cold tail's.
func TestHybridBoundedHeavyHitters(t *testing.T) {
	var evs []event.Access
	var ts uint64
	hot := []uint64{0x5000, 0x5008, 0x5010, 0x5018}
	for i := 0; i < 60000; i++ {
		ts++
		a := event.Access{TS: ts, Kind: event.Write}
		if i%2 == 1 {
			a.Kind = event.Read
		}
		if i%4 != 3 {
			a.Addr = hot[i%len(hot)]
			a.Loc = loc.Pack(2, 1+i%6)
		} else {
			a.Addr = uint64(0x100000 + 8*(i%4096))
			a.Loc = loc.Pack(1, 1+i%6)
		}
		evs = append(evs, a)
	}

	want := runSerial(evs)

	spec := fmt.Sprintf("hybrid:slots=4096,exact=%d,promote=4", 64)
	p := NewParallel(Config{Workers: 2, Backend: spec})
	for _, a := range evs {
		p.Access(a)
	}
	got := p.Flush()

	hotMissing, tailMissing, total := 0, 0, 0
	want.Deps.Range(func(k dep.Key, st dep.Stats) bool {
		total++
		if _, ok := got.Deps.Lookup(k); !ok {
			if k.Src.File() == 2 && k.Sink.File() == 2 {
				hotMissing++
			} else {
				tailMissing++
			}
		}
		return true
	})
	if hotMissing != 0 {
		t.Errorf("hybrid missed %d heavy-hitter dependences", hotMissing)
	}
	// The cold tail runs under signature semantics with a deliberately tight
	// store, so a handful of tail dependences may be perturbed — but the
	// profile must stay near-complete.
	if tailMissing > total/20 {
		t.Errorf("hybrid missed %d/%d tail dependences", tailMissing, total)
	}
}
