package core

// The epoch clock: live observatory support (ROADMAP item 4). A session's
// stream is cut into epochs by event.EpochMark records — injected by the
// daemon's ticker or embedded in the trace by the client — and at each mark
// every worker extracts an epoch-delta from its engine: the dependences whose
// aggregates advanced since the previous mark, as a self-contained dep.Set
// (delta counts, current flags and distance bounds). Extraction rides the
// worker's own goroutine at a chunk boundary, so the pipeline never pauses;
// the union of all deltas plus the final remainder folds back to the exact
// end-of-run profile (dep.ExtractDelta's monotone-fold guarantee), which is
// what lets a watch subscriber reconstruct the precise final profile from the
// frames it received.

import (
	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
)

// VarBounds is the observed address interval of one variable — the
// provenance index behind "which dependences touch address range [lo,hi]".
type VarBounds struct {
	Var    loc.VarID
	Lo, Hi uint64 // inclusive
}

// EpochDelta is one worker's extraction at an epoch boundary.
type EpochDelta struct {
	// Epoch is the mark that closed this delta; instances it covers were
	// observed between the previous mark and this one.
	Epoch uint32
	// Worker identifies the extracting worker.
	Worker int
	// Deps holds the dependences whose aggregates advanced: Count is the
	// advance, flags and distance bounds are current, and each entry carries
	// its first-observed epoch stamp.
	Deps *dep.Set
	// Loops holds, per loop with changes, the carried-key advances (same
	// delta semantics over the per-loop aggregate tables). Nil when no loop
	// aggregate moved.
	Loops map[prog.LoopID]*dep.Set
	// Bounds is a snapshot of the worker's per-variable address bounds; nil
	// unless Config.TrackBounds is set.
	Bounds []VarBounds
}

// varBound is the engine-internal bounds cell, indexed by VarID.
type varBound struct {
	lo, hi uint64
	seen   bool
}

// EnableBoundsTracking turns on per-variable address-interval tracking —
// two compares per data access. Must be called before the first Process.
func (e *Engine) EnableBoundsTracking() { e.trackBounds = true }

func (e *Engine) noteBounds(v loc.VarID, addr uint64) {
	if int(v) >= len(e.bounds) {
		nb := make([]varBound, int(v)+1)
		copy(nb, e.bounds)
		e.bounds = nb
	}
	b := &e.bounds[v]
	if !b.seen {
		b.lo, b.hi, b.seen = addr, addr, true
		return
	}
	if addr < b.lo {
		b.lo = addr
	}
	if addr > b.hi {
		b.hi = addr
	}
}

func (e *Engine) noteBoundsRange(v loc.VarID, base, stride uint64, count uint32) {
	last := base + uint64(count-1)*stride
	lo, hi := base, last
	if last < base {
		lo, hi = last, base
	}
	e.noteBounds(v, lo)
	e.noteBounds(v, hi)
}

// VarBoundsSnapshot returns the observed address interval of every tracked
// variable; nil when tracking is off or nothing was seen.
func (e *Engine) VarBoundsSnapshot() []VarBounds {
	var out []VarBounds
	for v := range e.bounds {
		if b := &e.bounds[v]; b.seen {
			out = append(out, VarBounds{Var: loc.VarID(v), Lo: b.lo, Hi: b.hi})
		}
	}
	return out
}

// ExtractEpochDelta drains everything unreported from the engine's dependence
// set and per-loop aggregates into a fresh EpochDelta closing epoch `mark`,
// and stamps dependences first observed from now on with mark. Single
// extraction owner per engine (the worker goroutine, or the serial caller).
func (e *Engine) ExtractEpochDelta(mark uint32) *EpochDelta {
	d := &EpochDelta{Epoch: mark, Deps: dep.NewSet()}
	e.deps.ExtractDelta(d.Deps)
	e.deps.SetEpoch(mark)
	e.epoch = mark
	for id, agg := range e.loops {
		out := dep.NewSet()
		if agg.keys.ExtractDelta(out) == 0 {
			out.Release()
		} else {
			if d.Loops == nil {
				d.Loops = make(map[prog.LoopID]*dep.Set)
			}
			d.Loops[id] = out
		}
		agg.keys.SetEpoch(mark)
	}
	if e.trackBounds {
		d.Bounds = e.VarBoundsSnapshot()
	}
	return d
}

// EpochMarker is implemented by profiler variants that support live
// epoch-delta extraction. EpochMark cuts an epoch at the current stream
// position: each worker extracts its delta and delivers it to the
// Config.OnEpochDelta callback. Marks must be monotone; EpochMark must be
// called from the Access caller's goroutine for serial and parallel mode
// (MT mode accepts any goroutine, like its Access).
type EpochMarker interface {
	EpochMark(mark uint32)
}

// EpochMark implements EpochMarker for the serial profiler: extraction is
// inline, like everything else in serial mode.
func (s *Serial) EpochMark(mark uint32) {
	if s.onDelta == nil {
		return
	}
	s.onDelta(s.eng.ExtractEpochDelta(mark))
}

// EpochMark implements EpochMarker for the parallel (sequential-target)
// profiler: an EpochMark control record is pushed behind every worker's
// pending accesses — the same dedicated-control-chunk pattern as migrate —
// so each worker cuts its delta at exactly the stream position the producer
// had reached. Extraction then runs on the worker goroutines; the producer
// does not wait.
func (p *Parallel) EpochMark(mark uint32) {
	p.pr.epochMark(mark)
}

// EpochMark implements EpochMarker for the MT profiler: the mark is pushed
// through each worker's MPSC ring (multi-producer safe, so a ticker goroutine
// may call it concurrently with target threads). Workers cut their deltas at
// their current drain position; instances pushed concurrently land on one
// side or the other, which the delta-union guarantee is indifferent to.
func (m *MT) EpochMark(mark uint32) {
	for _, w := range m.pl.workers {
		w.tr.pushAccess(event.Access{Addr: uint64(mark), Kind: event.EpochMark})
	}
}

// epochMark broadcasts an EpochMark control record to every worker, behind
// each worker's pending accesses. Control chunks count as ControlChunks, like
// migrate's, so events-per-chunk throughput math stays honest.
func (pr *producer) epochMark(mark uint32) {
	for w := range pr.open {
		pr.pushOpen(w)
		tw := pr.pl.workers[w]
		c := pr.newChunk(tw.tr)
		c.Append(event.Access{Addr: uint64(mark), Kind: event.EpochMark})
		tw.tr.pushChunk(c)
		pr.stats.ControlChunks++
	}
}
