package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/prog"
	"ddprof/internal/queue"
	"ddprof/internal/telemetry"
)

// MT is the profiler of §V for multi-threaded target programs.
//
// Every target thread calls Access concurrently; to keep the per-address
// order observable, the target must hold its own lock around conflicting
// accesses and the instrumentation calls Access *inside the same lock
// region* (paper Figure 4) — the interpreter substrate guarantees this.
// Each access is pushed individually (not chunked) into the owning worker's
// lock-free MPSC queue; per-access pushes plus producer contention are the
// reason MT profiling is slower (Figure 6) and hungrier (Figure 8) than
// sequential-target profiling.
//
// Accesses carry global timestamps; a worker observing a timestamp reversal
// for an address has proven the two accesses were not mutually exclusive and
// flags the dependence as a potential data race (§V-B).
type MT struct {
	w        int
	workers  []*mtworker
	accesses atomic.Uint64
	m        *telemetry.Pipeline
	wg       sync.WaitGroup
	flushed  bool
}

type mtworker struct {
	in   *queue.MPSC[event.Access]
	eng  *Engine
	done atomic.Bool
}

// NewMT builds the MT pipeline and starts the workers. RaceCheck defaults on
// because timestamps are already being collected.
func NewMT(cfg Config) *MT {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	qcap := cfg.QueueCap
	if qcap <= 0 {
		qcap = 1 << 16
	}
	m := &MT{w: cfg.Workers, m: cfg.Metrics}
	for i := 0; i < cfg.Workers; i++ {
		w := &mtworker{
			in:  queue.NewMPSC[event.Access](qcap),
			eng: NewEngine(cfg.store(), cfg.Meta, true),
		}
		m.workers = append(m.workers, w)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			w.run()
		}()
	}
	return m
}

// Access implements Profiler; safe for concurrent use by target threads.
func (m *MT) Access(a event.Access) {
	if a.Kind == event.Read || a.Kind == event.Write {
		m.accesses.Add(1)
		if m.m != nil {
			m.m.Events.Inc()
		}
	}
	m.workers[(a.Addr>>3)%uint64(m.w)].in.Push(a)
}

// Flush implements Profiler. It must be called after every target thread has
// finished (the interpreter joins them first), so no Access call can race
// with the flush sentinels.
func (m *MT) Flush() *Result {
	if m.flushed {
		panic("core: Flush called twice")
	}
	m.flushed = true
	for _, w := range m.workers {
		w.in.Push(event.Access{Kind: event.Flush})
	}
	m.wg.Wait()

	res := &Result{
		Deps:  dep.NewSet(),
		Loops: make(map[prog.LoopID]*LoopDeps),
	}
	res.Stats.Accesses = m.accesses.Load()
	for _, w := range m.workers {
		res.Deps.Merge(w.eng.Deps())
		mergeLoopDeps(res.Loops, w.eng.LoopDeps())
		res.Stats.StoreBytes += w.eng.Store().Bytes()
		res.Stats.StoreModeledBytes += w.eng.Store().ModeledBytes()
		res.Stats.QueueBytes += uint64(48 * cap48(w.in))
	}
	return res
}

// cap48 reports the element capacity of an MPSC ring for byte accounting.
func cap48(q *queue.MPSC[event.Access]) int { return q.Cap() }

func (w *mtworker) run() {
	for spin := 0; ; {
		a, ok := w.in.TryPop()
		if !ok {
			spin++
			if spin > 64 {
				runtime.Gosched()
			}
			continue
		}
		spin = 0
		if a.Kind == event.Flush {
			return
		}
		w.eng.Process(a)
	}
}
