package core

import (
	"runtime"
	"sync"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/prog"
	"ddprof/internal/queue"
	"ddprof/internal/telemetry"
)

// MT is the profiler of §V for multi-threaded target programs.
//
// Every target thread calls Access concurrently; to keep the per-address
// order observable, the target must hold its own lock around conflicting
// accesses and the instrumentation calls Access *inside the same lock
// region* (paper Figure 4) — the interpreter substrate guarantees this.
// Each access is pushed individually (not chunked) into the owning worker's
// lock-free MPSC queue; per-access pushes plus producer contention are the
// reason MT profiling is slower (Figure 6) and hungrier (Figure 8) than
// sequential-target profiling.
//
// Accesses carry global timestamps; a worker observing a timestamp reversal
// for an address has proven the two accesses were not mutually exclusive and
// flags the dependence as a potential data race (§V-B).
type MT struct {
	w       int
	wMask   uint64 // w-1 when w is a power of two, else 0 (see ownerOf)
	workers []*mtworker
	m       *telemetry.Pipeline
	wg      sync.WaitGroup
	flushed bool
}

type mtworker struct {
	in  *queue.MPSC[event.Access]
	eng *Engine
	// events counts read/write accesses this worker consumed. Counting on the
	// consumer side keeps the concurrent producers free of a shared atomic
	// counter; the flush barrier makes the per-worker sums safe to read.
	events uint64
}

// NewMT builds the MT pipeline and starts the workers. RaceCheck defaults on
// because timestamps are already being collected.
func NewMT(cfg Config) *MT {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	// Default ring depth: 4Ki events (256KiB of cells) per worker. Deeper
	// rings only add slack the consumer never catches up on, and at 64Ki
	// cells the ring outgrows the cache entirely, turning every push and pop
	// into a memory round-trip; keeping the cells cache-resident is worth
	// more than the extra buffering. It also trims the MT-mode queue memory
	// the paper calls out in Figure 8.
	qcap := cfg.QueueCap
	if qcap <= 0 {
		qcap = 1 << 12
	}
	m := &MT{w: cfg.Workers, wMask: powerOfTwoMask(cfg.Workers), m: cfg.Metrics}
	for i := 0; i < cfg.Workers; i++ {
		w := &mtworker{
			in:  queue.NewMPSC[event.Access](qcap),
			eng: NewEngine(cfg.store(), cfg.Meta, true),
		}
		if cfg.NoFastPath {
			w.eng.DisableCache()
		}
		m.workers = append(m.workers, w)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			w.run()
		}()
	}
	return m
}

// Access implements Profiler; safe for concurrent use by target threads.
func (m *MT) Access(a event.Access) {
	if m.m != nil && (a.Kind == event.Read || a.Kind == event.Write) {
		m.m.Events.Inc()
	}
	m.workers[ownerOf(a.Addr, m.w, m.wMask)].in.Push(a)
}

// Flush implements Profiler. It must be called after every target thread has
// finished (the interpreter joins them first), so no Access call can race
// with the flush sentinels.
func (m *MT) Flush() *Result {
	if m.flushed {
		panic("core: Flush called twice")
	}
	m.flushed = true
	for _, w := range m.workers {
		w.in.Push(event.Access{Kind: event.Flush})
	}
	m.wg.Wait()

	res := &Result{
		Deps: dep.NewSet(),
	}
	aggs := make(map[prog.LoopID]*loopAgg)
	for _, w := range m.workers {
		res.Stats.Accesses += w.events
		res.Deps.Merge(w.eng.Deps())
		mergeLoopAggs(aggs, w.eng.loops)
		res.Stats.StoreBytes += w.eng.Store().Bytes()
		res.Stats.StoreModeledBytes += w.eng.Store().ModeledBytes()
		hits, probes := w.eng.CacheStats()
		res.Stats.DepCacheHits += hits
		res.Stats.DepCacheProbes += probes
		res.Stats.QueueBytes += uint64(mpscCellBytes * w.in.Cap())
	}
	res.Loops = loopDepsOf(aggs)
	if m.m != nil {
		m.m.DepCacheHits.Add(res.Stats.DepCacheHits)
		m.m.DepCacheProbes.Add(res.Stats.DepCacheProbes)
	}
	return res
}

// mpscCellBytes is the per-element ring cost used for Figure 8 accounting:
// a 48-byte access padded with its sequence word to one cache line.
const mpscCellBytes = 64

func (w *mtworker) run() {
	for spin := 0; ; {
		a, ok := w.in.TryPop()
		if !ok {
			spin++
			if spin > 64 {
				runtime.Gosched()
			}
			continue
		}
		spin = 0
		if a.Kind == event.Flush {
			return
		}
		if a.Kind <= event.Write { // Read or Write
			w.events++
		}
		w.eng.Process(a)
	}
}
