package core

import (
	"sync"
	"sync/atomic"

	"ddprof/internal/event"
	"ddprof/internal/queue"
	"ddprof/internal/telemetry"
)

// MT is the profiler of §V for multi-threaded target programs.
//
// Every target thread calls Access concurrently; to keep the per-address
// order observable, the target must hold its own lock around conflicting
// accesses and the instrumentation calls Access *inside the same lock
// region* (paper Figure 4) — the interpreter substrate guarantees this.
// Each access is pushed individually (not chunked) into the owning worker's
// lock-free MPSC queue; per-access pushes plus producer contention are the
// reason MT profiling is slower (Figure 6) and hungrier (Figure 8) than
// sequential-target profiling.
//
// Accesses carry global timestamps; a worker observing a timestamp reversal
// for an address has proven the two accesses were not mutually exclusive and
// flags the dependence as a potential data race (§V-B).
//
// As a pipeline composition, MT is per-access transports into the same
// engine workers as Parallel. The transports' consumer side supplies the
// duplicate-read collapse (the producers are the target's own threads and
// must stay filter-free), and a dedicated rebalancer goroutine runs the
// §IV-A heavy-hitter redistribution with a copy-on-write routing table,
// since the concurrent producers cannot reroute synchronously the way the
// sequential-target producer does.
type MT struct {
	pl    pipeline
	w     int
	wMask uint64 // w-1 when w is a power of two, else 0 (see ownerOf)
	m     *telemetry.Pipeline

	// rt is the routing table, non-nil only when redistribution is on.
	// Producers read it lock-free; the rebalancer replaces it copy-on-write.
	rt atomic.Pointer[routeTable]
	// inflight counts producers between routing-table load and queue push.
	// The rebalancer waits for it to drain after publishing a new table, so
	// every access routed by the old table is already in the old owner's
	// queue before the MIGRATE control event is pushed behind them.
	inflight  atomic.Int64
	sampleCtr atomic.Uint64
	heavyMu   sync.Mutex
	heavy     *heavySketch
	// kick nudges the rebalancer every kickEvery accesses; stop ends it.
	kick       chan struct{}
	stop       chan struct{}
	kickEvery  uint64
	rebalWG    sync.WaitGroup
	rebalStats RunStats
}

// routeTable maps addresses to owning workers: the Equation 1 modulo rule,
// overridden by the redirect map for migrated addresses ("redistribution
// rules are stored in a map and have higher priority than the modulo
// function", §IV-A). Tables are immutable once published.
type routeTable struct {
	w        int
	wMask    uint64
	redirect map[uint64]int
}

func (rt *routeTable) owner(addr uint64) int {
	if len(rt.redirect) != 0 {
		if w, ok := rt.redirect[addr]; ok {
			return w
		}
	}
	return ownerOf(addr, rt.w, rt.wMask)
}

// NewMT builds the MT pipeline and starts the workers; it panics on an
// invalid Config (use New for an error return). RaceCheck defaults on
// because timestamps are already being collected.
func NewMT(cfg Config) *MT {
	m, err := newMT(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

func newMT(cfg Config) (*MT, error) {
	cfg, err := cfg.normalize(ModeMT)
	if err != nil {
		return nil, err
	}
	stores, err := makeStores(&cfg, cfg.Workers)
	if err != nil {
		return nil, err
	}
	m := &MT{w: cfg.Workers, wMask: powerOfTwoMask(cfg.Workers), m: cfg.Metrics}
	m.pl.m = cfg.Metrics
	for i := 0; i < cfg.Workers; i++ {
		eng := NewEngine(stores[i], cfg.Meta, true)
		if cfg.NoFastPath {
			eng.DisableCache()
		}
		if cfg.TrackBounds {
			eng.EnableBoundsTracking()
		}
		m.pl.workers = append(m.pl.workers, &worker{
			id:          i,
			tr:          newAccessTransport(cfg.QueueCap, !cfg.NoFastPath),
			eng:         eng,
			m:           cfg.Metrics,
			sampleEvery: uint64(cfg.SampleEvery),
			onDelta:     cfg.OnEpochDelta,
			// events_total is counted here on the consumer side, one batched
			// Add per drain: the concurrent producers of §V must not pay a
			// shared atomic per access.
			countEvents: true,
		})
	}
	m.pl.startAll()
	if cfg.RedistributeEvery > 0 {
		// The sequential-target producer checks every RedistributeEvery
		// chunks; MT has no chunks, so the equivalent cadence is that many
		// chunk-sizes worth of accesses.
		m.kickEvery = uint64(cfg.RedistributeEvery) * event.ChunkSize
		m.heavy = newHeavySketch(64)
		m.kick = make(chan struct{}, 1)
		m.stop = make(chan struct{})
		m.rt.Store(&routeTable{w: m.w, wMask: m.wMask})
		m.rebalWG.Add(1)
		go m.rebalancer()
	}
	return m, nil
}

// Access implements Profiler; safe for concurrent use by target threads.
// events_total accounting happens on the consumer side (see newMT), so this
// path touches no shared telemetry state.
func (m *MT) Access(a event.Access) {
	isData := a.Kind == event.Read || a.Kind == event.Write
	if m.rt.Load() == nil {
		// Redistribution off (the default): route by the static modulo rule,
		// no inflight accounting on the hot path.
		m.pl.workers[ownerOf(a.Addr, m.w, m.wMask)].tr.pushAccess(a)
		return
	}
	if isData {
		// Feed the heavy-hitter sketch on a sampled subset; TryLock keeps
		// producers from serializing on the sketch — a lost sample is noise.
		c := m.sampleCtr.Add(1)
		if c&15 == 0 && m.heavyMu.TryLock() {
			m.heavy.Offer(a.Addr)
			m.heavyMu.Unlock()
		}
		if c%m.kickEvery == 0 {
			select {
			case m.kick <- struct{}{}:
			default:
			}
		}
	}
	// The quiescence protocol: raise inflight BEFORE loading the table, so
	// the rebalancer observing inflight == 0 after publishing a new table
	// knows every push routed by the old table has completed.
	m.inflight.Add(1)
	rt := m.rt.Load()
	m.pl.workers[rt.owner(a.Addr)].tr.pushAccess(a)
	m.inflight.Add(-1)
}

// AccessBatch implements Profiler. MT's transport is per-access (each record
// is pushed into a per-worker MPSC ring), so there is no bulk fast path to
// exploit: the batch expands through Access, RangeRef slots element by
// element — exactly what a local multi-threaded target would have produced.
// Safe for concurrent use, like Access.
func (m *MT) AccessBatch(accesses []event.Access, ranges []event.Range) {
	for i := range accesses {
		a := accesses[i]
		if a.Kind == event.RangeRef {
			r := &ranges[a.Addr]
			for j := uint32(0); j < r.Count; j++ {
				m.Access(r.At(j))
			}
			continue
		}
		m.Access(a)
	}
}

// rebalancer runs redistribution rounds on kicks; on stop it runs one final
// round (making rebalancing deterministic for drained streams) and exits.
func (m *MT) rebalancer() {
	defer m.rebalWG.Done()
	for {
		select {
		case <-m.stop:
			m.rebalanceRound()
			return
		case <-m.kick:
			m.rebalanceRound()
		}
	}
}

// rebalanceRound checks whether the top heavy hitters are spread evenly over
// the workers and migrates them if not (§IV-A).
func (m *MT) rebalanceRound() {
	m.heavyMu.Lock()
	top := m.heavy.Top(10)
	m.heavyMu.Unlock()
	rt := m.rt.Load()
	moves := planRebalance(top, m.w, rt.owner)
	if len(moves) == 0 {
		return
	}
	for _, mv := range moves {
		m.migrate(mv.addr, mv.from, mv.to)
	}
	m.rebalStats.Redistributions++
	if m.m != nil {
		m.m.Redistributions.Inc()
	}
}

// migrate moves one address and its signature state between workers while
// the producers keep pushing. The per-address order is preserved by a
// hold-and-replay protocol layered on the sequential-target mailboxes:
//
//  1. A HOLD control event is pushed to the destination; the destination
//     buffers any access to the address that arrives after it.
//  2. The routing table is republished with the redirect. New accesses now
//     go to the destination, where they land behind HOLD (the MPSC ring
//     assigns slots in push order and the table swap happens after the HOLD
//     push completed).
//  3. The rebalancer waits for in-flight producers to drain: afterwards,
//     every access routed by the old table is in the old owner's queue.
//  4. MIGRATE is pushed behind them; the old owner exports the address's
//     signature state through its mailbox and forgets it.
//  5. The state is handed to the destination's install mailbox and INSTALL
//     pushed; on INSTALL the destination adopts the state, then replays the
//     held accesses in arrival order.
func (m *MT) migrate(addr uint64, from, to int) {
	fw, tw := m.pl.workers[from], m.pl.workers[to]

	// Step 1: hold at the destination.
	tw.tr.pushAccess(event.Access{Addr: addr, Kind: event.Hold})

	// Step 2: publish the rerouted table (copy-on-write).
	old := m.rt.Load()
	redirect := make(map[uint64]int, len(old.redirect)+1)
	for k, v := range old.redirect {
		redirect[k] = v
	}
	redirect[addr] = to
	m.rt.Store(&routeTable{w: old.w, wMask: old.wMask, redirect: redirect})

	// Step 3: quiesce producers still holding the old table.
	for i := 0; m.inflight.Load() != 0; i++ {
		queue.Backoff(i)
	}

	// Step 4: extract the state from the old owner.
	fw.tr.pushAccess(event.Access{Addr: addr, Kind: event.Migrate})
	var st *migState
	for i := 0; ; i++ {
		if st = fw.migOut.Swap(nil); st != nil {
			break
		}
		queue.Backoff(i)
	}

	// Step 5: install at the destination.
	for i := 0; !tw.installIn.CompareAndSwap(nil, st); i++ {
		queue.Backoff(i)
	}
	tw.tr.pushAccess(event.Access{Addr: addr, Kind: event.Install})

	m.rebalStats.Migrations++
	if m.m != nil {
		m.m.Migrations.Inc()
	}
}

// Flush implements Profiler. It must be called after every target thread has
// finished (the interpreter joins them first), so no Access call can race
// with the flush sentinels.
func (m *MT) Flush() *Result {
	m.pl.beginFlush()
	if m.stop != nil {
		close(m.stop)
		m.rebalWG.Wait()
	}
	for _, w := range m.pl.workers {
		w.tr.pushAccess(event.Access{Kind: event.Flush})
	}
	m.pl.wg.Wait()

	stats := m.rebalStats
	for _, w := range m.pl.workers {
		stats.DupCollapsed += w.tr.(*accessTransport).collapsed
	}
	if m.m != nil && stats.DupCollapsed > 0 {
		m.m.DupCollapsed.Add(stats.DupCollapsed)
	}
	// sumAccesses: counting on the consumer side keeps the concurrent
	// producers free of a shared atomic counter; the flush barrier makes the
	// per-worker sums safe to read.
	return m.pl.merge(stats, 0, true)
}
