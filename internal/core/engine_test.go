package core

import (
	"testing"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
	"ddprof/internal/sig"
)

func wr(addr uint64, line int) event.Access {
	return event.Access{Addr: addr, Kind: event.Write, Loc: loc.Pack(1, line)}
}

func rd(addr uint64, line int) event.Access {
	return event.Access{Addr: addr, Kind: event.Read, Loc: loc.Pack(1, line)}
}

func lookup(t *testing.T, s *dep.Set, ty dep.Type, sink, src int) dep.Stats {
	t.Helper()
	k := dep.Key{Type: ty, Sink: loc.Pack(1, sink), Src: loc.Pack(1, src)}
	st, ok := s.Lookup(k)
	if !ok {
		t.Fatalf("missing %v dep %d<-%d; have %v", ty, sink, src, s.Keys())
	}
	return st
}

func TestAlgorithm1Basics(t *testing.T) {
	e := NewEngine(sig.NewPerfectSignature(), nil, false)

	// write a@10 -> INIT
	e.Process(wr(0x100, 10))
	// read a@20 -> RAW 20<-10
	e.Process(rd(0x100, 20))
	// write a@30 -> WAW 30<-10, WAR 30<-20
	e.Process(wr(0x100, 30))
	// read a@40 -> RAW 40<-30
	e.Process(rd(0x100, 40))

	s := e.Deps()
	if _, ok := s.Lookup(dep.Key{Type: dep.INIT, Sink: loc.Pack(1, 10)}); !ok {
		t.Error("first write must produce INIT")
	}
	lookup(t, s, dep.RAW, 20, 10)
	lookup(t, s, dep.WAW, 30, 10)
	lookup(t, s, dep.WAR, 30, 20)
	lookup(t, s, dep.RAW, 40, 30)
	if s.Unique() != 5 {
		t.Errorf("Unique = %d, want 5: %v", s.Unique(), s.Keys())
	}
}

func TestNoRARDependence(t *testing.T) {
	// Paper §III-B: "we ignore read-after-read (RAR) dependences".
	e := NewEngine(sig.NewPerfectSignature(), nil, false)
	e.Process(rd(0x100, 10))
	e.Process(rd(0x100, 20))
	if e.Deps().Unique() != 0 {
		t.Errorf("reads alone must not create dependences: %v", e.Deps().Keys())
	}
}

func TestWARAfterReadOnlyHistory(t *testing.T) {
	// read x; first write x => WAR (and INIT). The paper's pseudocode would
	// miss this; the prose semantics requires it.
	e := NewEngine(sig.NewPerfectSignature(), nil, false)
	e.Process(rd(0x100, 10))
	e.Process(wr(0x100, 20))
	s := e.Deps()
	lookup(t, s, dep.WAR, 20, 10)
	if _, ok := s.Lookup(dep.Key{Type: dep.INIT, Sink: loc.Pack(1, 20)}); !ok {
		t.Error("first write after reads is still an INIT")
	}
}

func TestSelfDependenceSameLine(t *testing.T) {
	// i = i + 1 in a loop: read then write the same address on one line,
	// repeatedly. Expect RAW 60<-60 and WAR 60<-60 like Figure 1.
	e := NewEngine(sig.NewPerfectSignature(), nil, false)
	for it := 0; it < 3; it++ {
		e.Process(rd(0x200, 60))
		e.Process(wr(0x200, 60))
	}
	s := e.Deps()
	if st := lookup(t, s, dep.RAW, 60, 60); st.Count != 2 {
		t.Errorf("RAW 60<-60 count = %d, want 2", st.Count)
	}
	if st := lookup(t, s, dep.WAR, 60, 60); st.Count != 3 {
		t.Errorf("WAR 60<-60 count = %d, want 3", st.Count)
	}
}

func TestDistinctAddressesIndependent(t *testing.T) {
	e := NewEngine(sig.NewPerfectSignature(), nil, false)
	e.Process(wr(0x100, 10))
	e.Process(rd(0x200, 20)) // different address: no RAW
	s := e.Deps()
	if _, ok := s.Lookup(dep.Key{Type: dep.RAW, Sink: loc.Pack(1, 20), Src: loc.Pack(1, 10)}); ok {
		t.Error("RAW built across distinct addresses")
	}
}

func TestVariableLifetimeRemove(t *testing.T) {
	// write a; free a; write a' at same address => second write is a fresh
	// INIT, not a WAW: the false dependence the paper's lifetime analysis
	// avoids.
	e := NewEngine(sig.NewPerfectSignature(), nil, false)
	e.Process(wr(0x300, 10))
	e.Process(event.Access{Addr: 0x300, Kind: event.Remove})
	e.Process(wr(0x300, 20))
	s := e.Deps()
	if _, ok := s.Lookup(dep.Key{Type: dep.WAW, Sink: loc.Pack(1, 20), Src: loc.Pack(1, 10)}); ok {
		t.Error("WAW across a freed address is a false dependence")
	}
	if _, ok := s.Lookup(dep.Key{Type: dep.INIT, Sink: loc.Pack(1, 20)}); !ok {
		t.Error("write to recycled address must be INIT again")
	}
}

func TestSignatureEngineMatchesPerfectWhenLarge(t *testing.T) {
	// With far more slots than addresses, the signature engine must produce
	// exactly the perfect engine's dependences (Table I at 1e8 slots).
	mkStream := func() []event.Access {
		var evs []event.Access
		for i := 0; i < 200; i++ {
			a := uint64(0x1000 + 8*i)
			evs = append(evs, wr(a, 10+i%7), rd(a, 20+i%5), wr(a, 30+i%3))
		}
		return evs
	}
	pe := NewEngine(sig.NewPerfectSignature(), nil, false)
	se := NewEngine(sig.NewSignature(1<<16), nil, false)
	for _, a := range mkStream() {
		pe.Process(a)
		se.Process(a)
	}
	if pe.Deps().Unique() != se.Deps().Unique() {
		t.Fatalf("unique: perfect %d vs signature %d", pe.Deps().Unique(), se.Deps().Unique())
	}
	pe.Deps().Range(func(k dep.Key, st dep.Stats) bool {
		sst, ok := se.Deps().Lookup(k)
		if !ok {
			t.Errorf("signature missed %+v", k)
			return false
		}
		if sst.Count != st.Count {
			t.Errorf("count mismatch for %+v: %d vs %d", k, st.Count, sst.Count)
		}
		return true
	})
}

func TestCarriedClassification(t *testing.T) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "L"})
	ctx := m.PushCtx(0, l)
	e := NewEngine(sig.NewPerfectSignature(), m, false)

	// Each iteration reads A (written by the previous iteration) before
	// writing it -> carried RAW 20<-10. B is written and read within one
	// iteration -> independent RAW 21<-11.
	for it := uint32(0); it < 2; it++ {
		iv := event.PackIterVec([]uint32{it})
		if it > 0 {
			e.Process(event.Access{Addr: 0xA0, Kind: event.Read, Loc: loc.Pack(1, 20), CtxID: ctx, IterVec: iv})
		}
		e.Process(event.Access{Addr: 0xA0, Kind: event.Write, Loc: loc.Pack(1, 10), CtxID: ctx, IterVec: iv})
		e.Process(event.Access{Addr: 0xB0 + uint64(it)*8, Kind: event.Write, Loc: loc.Pack(1, 11), CtxID: ctx, IterVec: iv})
		e.Process(event.Access{Addr: 0xB0 + uint64(it)*8, Kind: event.Read, Loc: loc.Pack(1, 21), CtxID: ctx, IterVec: iv})
	}
	st := lookup(t, e.Deps(), dep.RAW, 20, 10)
	if !st.Carried {
		t.Error("cross-iteration RAW must be carried")
	}
	st = lookup(t, e.Deps(), dep.RAW, 21, 11)
	if st.Carried {
		t.Error("same-iteration RAW must be independent")
	}
	ld := e.LoopDeps()[l]
	if ld == nil || ld.CarriedRAW != 1 {
		t.Errorf("LoopDeps carried RAW = %+v, want exactly 1", ld)
	}
}

func TestReductionRecognition(t *testing.T) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "L"})
	ctx := m.PushCtx(0, l)
	e := NewEngine(sig.NewPerfectSignature(), m, false)
	// sum = sum + x across iterations: both read and write flagged reduction
	// on the same line.
	for it := uint32(0); it < 4; it++ {
		iv := event.PackIterVec([]uint32{it})
		e.Process(event.Access{Addr: 0xC0, Kind: event.Read, Loc: loc.Pack(1, 50), CtxID: ctx, IterVec: iv, Flags: event.FlagReduction})
		e.Process(event.Access{Addr: 0xC0, Kind: event.Write, Loc: loc.Pack(1, 50), CtxID: ctx, IterVec: iv, Flags: event.FlagReduction})
	}
	ld := e.LoopDeps()[l]
	if ld == nil || ld.CarriedRAW == 0 {
		t.Fatal("reduction loop must still show a carried RAW")
	}
	if ld.CarriedRAWRed != ld.CarriedRAW {
		t.Errorf("carried RAW should be recognized as reduction: %+v", ld)
	}
}

func TestRaceCheckReversedTimestamps(t *testing.T) {
	e := NewEngine(sig.NewPerfectSignature(), nil, true)
	e.Process(event.Access{Addr: 0xD0, Kind: event.Write, Loc: loc.Pack(1, 5), TS: 100})
	// A read that *occurred* before the write (TS 90) but was pushed after:
	// the dependence must be flagged reversed.
	e.Process(event.Access{Addr: 0xD0, Kind: event.Read, Loc: loc.Pack(1, 6), TS: 90})
	st := lookup(t, e.Deps(), dep.RAW, 6, 5)
	if !st.Reversed {
		t.Error("timestamp reversal not flagged")
	}
	// Normal order: not reversed.
	e2 := NewEngine(sig.NewPerfectSignature(), nil, true)
	e2.Process(event.Access{Addr: 0xD0, Kind: event.Write, Loc: loc.Pack(1, 5), TS: 100})
	e2.Process(event.Access{Addr: 0xD0, Kind: event.Read, Loc: loc.Pack(1, 6), TS: 110})
	if st := lookup(t, e2.Deps(), dep.RAW, 6, 5); st.Reversed {
		t.Error("in-order access flagged as reversed")
	}
}

func TestThreadIDsInDeps(t *testing.T) {
	e := NewEngine(sig.NewPerfectSignature(), nil, false)
	e.Process(event.Access{Addr: 0xE0, Kind: event.Write, Loc: loc.Pack(1, 7), Thread: 1})
	e.Process(event.Access{Addr: 0xE0, Kind: event.Read, Loc: loc.Pack(1, 8), Thread: 2})
	k := dep.Key{Type: dep.RAW, Sink: loc.Pack(1, 8), SinkThread: 2, Src: loc.Pack(1, 7), SrcThread: 1}
	if _, ok := e.Deps().Lookup(k); !ok {
		t.Errorf("cross-thread RAW with thread IDs missing; have %v", e.Deps().Keys())
	}
}

func TestProcessChunk(t *testing.T) {
	e := NewEngine(sig.NewPerfectSignature(), nil, false)
	c := event.NewChunk()
	c.Append(wr(0x100, 1))
	c.Append(rd(0x100, 2))
	e.ProcessChunk(c)
	lookup(t, e.Deps(), dep.RAW, 2, 1)
}

func TestDependenceDistance(t *testing.T) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "L"})
	ctx := m.PushCtx(0, l)
	e := NewEngine(sig.NewPerfectSignature(), m, false)
	// a[i] written at iteration i, read back at iteration i+3: distance 3.
	const lag = 3
	for it := uint32(0); it < 10; it++ {
		iv := event.PackIterVec([]uint32{it})
		e.Process(event.Access{Addr: 0x100 + uint64(it)*8, Kind: event.Write, Loc: loc.Pack(1, 10), CtxID: ctx, IterVec: iv})
		if it >= lag {
			e.Process(event.Access{Addr: 0x100 + uint64(it-lag)*8, Kind: event.Read, Loc: loc.Pack(1, 20), CtxID: ctx, IterVec: iv})
		}
	}
	st := lookup(t, e.Deps(), dep.RAW, 20, 10)
	if !st.Carried {
		t.Fatal("lagged RAW must be carried")
	}
	if st.MinDist != lag || st.MaxDist != lag {
		t.Errorf("distance = [%d,%d], want [%d,%d]", st.MinDist, st.MaxDist, lag, lag)
	}
}

func TestDependenceDistanceMixed(t *testing.T) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "L"})
	ctx := m.PushCtx(0, l)
	e := NewEngine(sig.NewPerfectSignature(), m, false)
	// One address read at varying lags 1 and 4 after its write.
	for _, pair := range [][2]uint32{{0, 1}, {5, 9}} {
		wIv := event.PackIterVec([]uint32{pair[0]})
		rIv := event.PackIterVec([]uint32{pair[1]})
		e.Process(event.Access{Addr: 0x200, Kind: event.Write, Loc: loc.Pack(1, 1), CtxID: ctx, IterVec: wIv})
		e.Process(event.Access{Addr: 0x200, Kind: event.Read, Loc: loc.Pack(1, 2), CtxID: ctx, IterVec: rIv})
	}
	st := lookup(t, e.Deps(), dep.RAW, 2, 1)
	if st.MinDist != 1 || st.MaxDist != 4 {
		t.Errorf("distance = [%d,%d], want [1,4]", st.MinDist, st.MaxDist)
	}
}
