package core

// The composable pipeline layer. The paper's architecture (§IV–V) is one
// pipeline with pluggable pieces, and this file is that decomposition:
//
//	target thread(s)
//	      │ Access()
//	┌─────▼──────┐  routing (owner mask / redirect map / round-robin),
//	│  producer  │  duplicate-read collapse, Misra–Gries sketch,
//	└─────┬──────┘  migrate/install rebalance protocol
//	      │ chunks (SPSC / Locked) or single accesses (MPSC)
//	┌─────▼──────┐
//	│ transport  │  one push/pop/recycle contract over all queue kinds
//	└─────┬──────┘
//	      │ event batches
//	┌─────▼──────┐  uniform control handling (flush/migrate/install/hold),
//	│   worker   │  shared backoff policy, Engine or line-pair sink
//	└─────┬──────┘
//	      │ engines, counters
//	┌─────▼──────┐  dep-set merge, loop-agg union, store/queue/cache
//	│   merge    │  accounting, occupancy + queue-depth publication
//	└────────────┘
//
// Serial, Parallel, MT and Existence are thin compositions of these stages;
// their profiles are byte-identical to the pre-refactor implementations
// (held to that by the golden fixtures in testdata/goldens.json).

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/prog"
	"ddprof/internal/queue"
	"ddprof/internal/sig"
	"ddprof/internal/telemetry"
)

// Mode selects the profiler variant a Config describes.
type Mode uint8

const (
	// ModeSerial is the single-threaded profiler of §III.
	ModeSerial Mode = iota
	// ModeParallel is the chunked lock-free pipeline of §IV for sequential
	// targets (Config.LockBased selects the Figure 5 ablation queues).
	ModeParallel
	// ModeMT is the per-access pipeline of §V for multi-threaded targets.
	ModeMT
	// ModeExistence is the untyped line-pair pipeline of §VI-B. Its result
	// type differs, so it is built with NewExistence rather than New.
	ModeExistence
)

func (m Mode) String() string {
	switch m {
	case ModeSerial:
		return "serial"
	case ModeParallel:
		return "parallel"
	case ModeMT:
		return "mt"
	case ModeExistence:
		return "existence"
	}
	return "invalid"
}

// New builds the profiler variant selected by cfg.Mode and validates the
// configuration in one place. Every embedder — the ddprof facade, ddprofd
// sessions, the experiment drivers — can construct through here; the typed
// constructors (NewSerial, NewParallel, NewMT) wrap it and panic on the same
// descriptive errors for callers that treat a bad Config as a bug.
func New(cfg Config) (Profiler, error) {
	switch cfg.Mode {
	case ModeSerial:
		return newSerial(cfg)
	case ModeParallel:
		return newParallel(cfg)
	case ModeMT:
		return newMT(cfg)
	case ModeExistence:
		return nil, errors.New("core: existence mode produces untyped line pairs, not a *Result; build it with NewExistence")
	default:
		return nil, fmt.Errorf("core: unknown Mode %d", cfg.Mode)
	}
}

// normalize validates a Config and fills in the mode's defaults. All
// constructor paths funnel through here, so a bad configuration fails the
// same way everywhere.
func (c Config) normalize(mode Mode) (Config, error) {
	c.Mode = mode
	if c.Workers < 0 {
		return c, fmt.Errorf("core: Workers = %d; want >= 1, or 0 for the default", c.Workers)
	}
	if c.Workers == 0 {
		switch mode {
		case ModeSerial:
			c.Workers = 1
		case ModeExistence:
			c.Workers = 8
		default:
			c.Workers = runtime.GOMAXPROCS(0)
		}
	}
	if c.QueueCap < 0 {
		return c, fmt.Errorf("core: QueueCap = %d; want >= 1 chunks (accesses in MT mode), or 0 for the default", c.QueueCap)
	}
	if c.QueueCap == 0 {
		if mode == ModeMT {
			// Default ring depth: 4Ki events (256KiB of cells) per worker.
			// Deeper rings only add slack the consumer never catches up on,
			// and at 64Ki cells the ring outgrows the cache entirely; keeping
			// the cells cache-resident is worth more than extra buffering. It
			// also trims the MT queue memory the paper calls out in Figure 8.
			c.QueueCap = 1 << 12
		} else {
			c.QueueCap = 64
		}
	}
	if c.SlotsPerWorker < 0 {
		return c, fmt.Errorf("core: SlotsPerWorker = %d; want >= 1 signature slots, or 0 for the default", c.SlotsPerWorker)
	}
	if c.RedistributeEvery < 0 {
		return c, fmt.Errorf("core: RedistributeEvery = %d; want >= 1 chunks, or 0 to disable redistribution", c.RedistributeEvery)
	}
	if c.SampleEvery < 0 {
		return c, fmt.Errorf("core: SampleEvery = %d; want >= 1, or 0 for the default", c.SampleEvery)
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 32
	}
	return c, nil
}

// makeStores builds one store per worker through the backend registry. The
// stores are built here (not lazily) so a bad Config.Backend spec fails
// construction with a descriptive error instead of a nil dereference on the
// hot path.
func makeStores(cfg *Config, n int) ([]sig.Store, error) {
	out := make([]sig.Store, n)
	for i := range out {
		st, err := cfg.store()
		if err != nil {
			return nil, fmt.Errorf("core: Config.Backend: %w", err)
		}
		out[i] = st
	}
	return out, nil
}

// errDoubleFlush is the one message every mode's second Flush panics with.
const errDoubleFlush = "core: Flush called twice (a pipeline drains and joins its workers exactly once)"

// chunkQueue is the queue surface chunked transports need; satisfied by both
// the lock-free queue.SPSC and the lock-based queue.Locked, which is how the
// Figure 5 lock-based/lock-free ablation swaps implementations.
type chunkQueue interface {
	TryPush(*event.Chunk) bool
	TryPop() (*event.Chunk, bool)
	Push(*event.Chunk)
	Len() int
	Cap() int
}

// transport carries events from the producer stage to one worker. Two
// granularities exist behind the one contract: chunked (sequential targets,
// existence mode) and per-access (multi-threaded targets).
type transport interface {
	// pushChunk enqueues a full chunk (chunked transports only).
	pushChunk(c *event.Chunk)
	// pushAccess enqueues one access; safe for concurrent producers on
	// per-access transports.
	pushAccess(a event.Access)
	// takeChunk returns a recycled chunk if one is available.
	takeChunk() (*event.Chunk, bool)
	// pop returns the next batch of events to process, the range side table
	// RangeRef slots in the batch index into (nil for per-access transports,
	// which never carry ranges), and the chunk to recycle after processing
	// (nil for per-access transports).
	pop() ([]event.Access, []event.Range, *event.Chunk, bool)
	// recycle returns a drained chunk to the producer.
	recycle(c *event.Chunk)
	// depth is the producer-observable queue depth, in push units.
	depth() int
	// memBytes is the fixed ring memory, for Figure 8 accounting. Chunk
	// memory is accounted by the producer (chunks travel between rings).
	memBytes() uint64
	// observedMaxDepth is the consumer-side depth high-water mark, or -1
	// when the producer already reports depths at push time.
	observedMaxDepth() int64
}

// chunkTransport pairs a worker's inbound chunk queue with its recycle ring.
type chunkTransport struct {
	in  chunkQueue
	rec *queue.SPSC[*event.Chunk]
}

func newChunkTransport(lockBased bool, qcap int) *chunkTransport {
	var in chunkQueue
	if lockBased {
		in = queue.NewLocked[*event.Chunk](qcap)
	} else {
		in = queue.NewSPSC[*event.Chunk](qcap)
	}
	return &chunkTransport{in: in, rec: queue.NewSPSC[*event.Chunk](qcap)}
}

func (t *chunkTransport) pushChunk(c *event.Chunk) { t.in.Push(c) }

func (t *chunkTransport) pushAccess(event.Access) {
	panic("core: chunked transport cannot push single accesses")
}

func (t *chunkTransport) takeChunk() (*event.Chunk, bool) { return t.rec.TryPop() }

func (t *chunkTransport) pop() ([]event.Access, []event.Range, *event.Chunk, bool) {
	c, ok := t.in.TryPop()
	if !ok {
		return nil, nil, nil, false
	}
	return c.Events, c.Ranges, c, true
}

func (t *chunkTransport) recycle(c *event.Chunk) {
	c.Reset()
	t.rec.TryPush(c) // if the recycle ring is full, let GC take it
}

func (t *chunkTransport) depth() int { return t.in.Len() }

// memBytes reports the pointer cells of the inbound and recycle rings. The
// chunks themselves are excluded on purpose: they travel between the rings
// and the producer's open set, and the producer already accounts them as
// allocatedChunks × chunkBytes — counting them here would double-book them.
func (t *chunkTransport) memBytes() uint64 {
	return uint64(t.in.Cap()+t.rec.Cap()) * 8
}

func (t *chunkTransport) observedMaxDepth() int64 { return -1 }

// accessBatch is how many events one accessTransport.pop drains at most:
// large enough to amortize the per-batch bookkeeping, small enough to keep
// control events (flush, migrate) responsive.
const accessBatch = 256

// mpscCellBytes is the per-element ring cost used for Figure 8 accounting:
// a 48-byte access padded with its sequence word to one cache line.
const mpscCellBytes = 64

// accessTransport is the per-access MPSC transport of MT mode. The consumer
// side drains into a reusable batch buffer and — because only the consumer
// touches the batch — can collapse consecutive identical reads there, giving
// MT mode the duplicate filter the chunked producer applies at append time.
type accessTransport struct {
	in *queue.MPSC[event.Access]
	// consumer-owned; read by the merge stage after the flush barrier.
	batch     []event.Access
	collapse  bool
	collapsed uint64
	maxDepth  int64
}

func newAccessTransport(qcap int, collapse bool) *accessTransport {
	return &accessTransport{
		in:       queue.NewMPSC[event.Access](qcap),
		batch:    make([]event.Access, 0, accessBatch),
		collapse: collapse,
	}
}

func (t *accessTransport) pushChunk(*event.Chunk) {
	panic("core: per-access transport cannot push chunks")
}

func (t *accessTransport) pushAccess(a event.Access) { t.in.Push(a) }

func (t *accessTransport) takeChunk() (*event.Chunk, bool) { return nil, false }

func (t *accessTransport) pop() ([]event.Access, []event.Range, *event.Chunk, bool) {
	b := t.batch[:0]
	for len(b) < accessBatch {
		a, ok := t.in.TryPop()
		if !ok {
			break
		}
		if t.collapse && a.Kind == event.Read && len(b) > 0 {
			// Collapse a read identical to the previous batched event into
			// its repetition count. Equality covers the timestamp, so with
			// real MT timestamps the filter never merges distinct accesses;
			// on untimestamped streams it recovers the chunked producer's
			// exact collapse (the engine replays the multiplicity).
			last := &b[len(b)-1]
			if last.Kind == event.Read && uint32(last.Rep)+1+uint32(a.Rep) <= uint32(event.MaxRep) {
				cmp, prev := a, *last
				cmp.Rep, prev.Rep = 0, 0
				if cmp == prev {
					last.Rep += 1 + a.Rep
					t.collapsed++
					continue
				}
			}
		}
		b = append(b, a)
	}
	t.batch = b
	if len(b) == 0 {
		return nil, nil, nil, false
	}
	// Depth observation for the merge stage's queue-depth gauges: what was
	// drained plus what is still queued (Len is consumer-safe on MPSC).
	if d := int64(len(b)) + int64(t.in.Len()); d > t.maxDepth {
		t.maxDepth = d
	}
	return b, nil, nil, true
}

func (t *accessTransport) recycle(*event.Chunk) {}

func (t *accessTransport) depth() int              { return t.in.Len() }
func (t *accessTransport) memBytes() uint64        { return uint64(mpscCellBytes * t.in.Cap()) }
func (t *accessTransport) observedMaxDepth() int64 { return t.maxDepth }

// migState is the signature state of one address in flight between workers
// during redistribution.
type migState struct {
	addr        uint64
	write, read sig.Slot
	wok, rok    bool
}

// worker is one consumer of the pipeline: a transport feeding either a
// detection Engine (typed modes) or an existence line-pair sink.
type worker struct {
	id  int
	tr  transport
	eng *Engine    // typed modes
	ex  *existSink // existence mode (eng == nil)
	// events counts the logical read/write accesses processed (a collapsed
	// read stands for 1+Rep of them) — the §IV-A load-balance quantity.
	events uint64
	// held buffers accesses to addresses whose signature state is in flight
	// to this worker (MT redistribution; see event.Hold).
	held map[uint64][]event.Access
	// onDelta receives this worker's epoch-delta extraction at each
	// EpochMark; nil disables extraction entirely (the mark is then a no-op).
	// Called on the worker goroutine at a batch boundary.
	onDelta func(*EpochDelta)

	// migration mailboxes (producer/rebalancer <-> this worker)
	migOut    atomic.Pointer[migState] // worker publishes state out
	installIn atomic.Pointer[migState] // state published to worker

	// flight-recorder state, all worker-local. m is the telemetry sink (nil
	// disables everything); sampleEvery the 1/N stage-timing rate. One in
	// sampleEvery batches is timed (StageWorkerNs), as is the wait of one in
	// sampleEvery idle episodes (StageTransportWaitNs). countEvents selects
	// consumer-side events_total accounting (MT mode, whose concurrent
	// producers must not share an atomic counter): one Add per drained batch
	// instead of one per access. The pub* fields are publication watermarks so
	// periodic in-flight publication and the final merge-time publication add
	// disjoint deltas to the same counters.
	m           *telemetry.Pipeline
	sampleEvery uint64
	countEvents bool
	batches     uint64
	waits       uint64
	pubEvents   uint64
	pubHits     uint64
	pubProbes   uint64
	pubEvict    uint64
	pubFalse    uint64
}

// accuracyStore is implemented by stores that track live Eq. (2) accuracy
// (sig.Signature with tracking enabled).
type accuracyStore interface {
	Accuracy() (sig.AccuracyStats, bool)
}

// telemetryPublishEvery is the worker-batch cadence of in-flight telemetry
// publication (dep-cache counters, live accuracy): frequent enough that
// /metrics and the Snapshotter see a moving picture, rare enough to be free.
const telemetryPublishEvery = 1024

// publishTelemetry pushes this worker's counter deltas and accuracy gauges
// to the telemetry sink. Called from the worker loop periodically and from
// the merge stage after the flush barrier; the watermarks make the two
// publication paths add up exactly once.
func (w *worker) publishTelemetry() {
	if w.m == nil {
		return
	}
	if w.countEvents {
		if d := w.events - w.pubEvents; d > 0 {
			w.m.Events.Add(d)
			w.pubEvents = w.events
		}
	}
	if w.eng == nil {
		return
	}
	hits, probes := w.eng.CacheStats()
	if d := hits - w.pubHits; d > 0 {
		w.m.DepCacheHits.Add(d)
	}
	if d := probes - w.pubProbes; d > 0 {
		w.m.DepCacheProbes.Add(d)
	}
	w.pubHits, w.pubProbes = hits, probes
	if acc, ok := w.eng.Store().(accuracyStore); ok {
		if st, on := acc.Accuracy(); on {
			w.m.ObserveSigFPR(w.id, st.MeasuredFPR(), st.PredictedFPR())
			if d := st.Evictions - w.pubEvict; d > 0 {
				w.m.SigInsertConflicts.Add(d)
			}
			if d := st.FalseHits - w.pubFalse; d > 0 {
				w.m.SigLookupConflicts.Add(d)
			}
			w.pubEvict, w.pubFalse = st.Evictions, st.FalseHits
		}
	}
}

// run is the worker loop: fetch a batch, process it, recycle the carrier
// ("worker threads consume chunks from their queues, analyze them, and store
// detected data dependences in thread-local maps. Empty chunks are
// recycled", §IV). The wait policy is the pipeline-wide queue.Backoff.
//
// Flight recording rides along at sampled granularity: one in sampleEvery
// idle episodes times the wait for the next batch (transport wait — the
// consumer-side view of producer/transport backpressure), one in sampleEvery
// batches times its processing, and every telemetryPublishEvery batches the
// worker publishes its counter deltas. All of it is skipped when m is nil,
// and clock reads never land on the per-event path.
func (w *worker) run() {
	var waitT0 time.Time
	waiting := false
	for idle := 0; ; {
		evs, rngs, c, ok := w.tr.pop()
		if !ok {
			if idle == 0 && w.m != nil {
				if w.waits++; w.waits%w.sampleEvery == 0 {
					waiting = true
					waitT0 = time.Now()
				}
			}
			idle++
			queue.Backoff(idle)
			continue
		}
		if waiting {
			w.m.StageTransportWaitNs.Observe(time.Since(waitT0).Nanoseconds())
			waiting = false
		}
		idle = 0
		var done bool
		w.batches++
		if w.m != nil && w.batches%w.sampleEvery == 0 {
			t0 := time.Now()
			done = w.process(evs, rngs)
			w.m.StageWorkerNs.Observe(time.Since(t0).Nanoseconds())
		} else {
			done = w.process(evs, rngs)
		}
		if c != nil {
			w.tr.recycle(c)
		}
		if w.m != nil {
			if w.countEvents {
				if d := w.events - w.pubEvents; d > 0 {
					w.m.Events.Add(d)
					w.pubEvents = w.events
				}
			}
			if w.batches%telemetryPublishEvery == 0 {
				w.publishTelemetry()
			}
		}
		if done {
			return
		}
	}
}

// process applies one event batch, handling the control kinds uniformly for
// every mode.
func (w *worker) process(evs []event.Access, rngs []event.Range) (done bool) {
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case event.Flush:
			done = true
		case event.RangeRef:
			// A compressed strided run: one dispatch, then the engine's tight
			// element loop. Ranges only travel chunked transports of the
			// parallel (sequential-target) mode, which never holds addresses,
			// so the held-map probe of the point path does not apply.
			r := &rngs[ev.Addr]
			w.events += uint64(r.Count)
			w.eng.ProcessRange(r)
		case event.Migrate:
			st := &migState{addr: ev.Addr}
			st.write, st.wok = w.eng.Store().LookupWrite(ev.Addr)
			st.read, st.rok = w.eng.Store().LookupRead(ev.Addr)
			w.eng.Store().Remove(ev.Addr)
			w.migOut.Store(st)
		case event.Install:
			var st *migState
			for i := 0; ; i++ {
				if st = w.installIn.Swap(nil); st != nil {
					break
				}
				queue.Backoff(i)
			}
			if st.wok {
				w.eng.Store().SetWrite(st.addr, st.write)
			}
			if st.rok {
				w.eng.Store().SetRead(st.addr, st.read)
			}
			// Replay accesses buffered while the address was in flight, in
			// arrival order, now that its history is local.
			if buf, ok := w.held[st.addr]; ok {
				delete(w.held, st.addr)
				for i := range buf {
					w.data(&buf[i])
				}
			}
		case event.Hold:
			if w.held == nil {
				w.held = make(map[uint64][]event.Access)
			}
			if _, ok := w.held[ev.Addr]; !ok {
				w.held[ev.Addr] = nil
			}
		case event.Promote:
			// Heavy-hitter hint from the producer's sketch: stores with an
			// exact tier adopt the address, everything else ignores it.
			if w.eng != nil {
				if p, ok := w.eng.Store().(sig.Promoter); ok {
					p.Promote(ev.Addr)
				}
			}
		case event.EpochMark:
			// Epoch boundary: extract the delta on this goroutine — the
			// producer never waits, and accesses already queued behind the
			// mark simply land in the next epoch.
			if w.eng != nil && w.onDelta != nil {
				d := w.eng.ExtractEpochDelta(uint32(ev.Addr))
				d.Worker = w.id
				w.onDelta(d)
			}
		default:
			if len(w.held) != 0 {
				if buf, ok := w.held[ev.Addr]; ok {
					w.held[ev.Addr] = append(buf, *ev)
					continue
				}
			}
			w.data(ev)
		}
	}
	return done
}

// data processes one read/write/remove event.
func (w *worker) data(ev *event.Access) {
	if ev.Kind != event.Remove {
		// A collapsed read stands for 1+Rep target accesses; count them all.
		w.events += 1 + uint64(ev.Rep)
	}
	if w.eng != nil {
		w.eng.Process(*ev)
	} else {
		w.ex.process(ev)
	}
}

// pipeline is the shared chassis of every profiler variant: the worker set,
// the flush state, and the merge stage.
type pipeline struct {
	workers []*worker
	m       *telemetry.Pipeline
	wg      sync.WaitGroup
	flushed bool
}

// startAll launches one goroutine per worker.
func (p *pipeline) startAll() {
	for _, w := range p.workers {
		w := w
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			w.run()
		}()
	}
}

// beginFlush is the centralized double-flush guard.
func (p *pipeline) beginFlush() {
	if p.flushed {
		panic(errDoubleFlush)
	}
	p.flushed = true
}

// chunkBytes is the memory footprint of one chunk (events + range side table
// + header), used for the Figure 7/8 queue-memory accounting.
const chunkBytes = event.ChunkSize*48 + event.MaxRangesPerChunk*64 + 64

// merge assembles the uniform Result for every typed mode. It must run after
// the workers have joined (the flush barrier makes all worker-local state
// safe to read). stats carries the producer-side counters; queueBytes the
// chunk memory; sumAccesses selects consumer-side access counting (MT mode,
// where concurrent producers keep no shared counter).
//
// "This step incurs only minor overhead since the local maps are free of
// duplicates" (§IV) — true for one process, not for a daemon draining
// sessions with millions of distinct dependences across many workers, so the
// fold is a parallel tree reduction (see mergeTree) instead of a serial
// loop. Loop aggregates merge at key-set granularity: the same carried key
// may surface on several workers (same source lines, different addresses)
// and must not be double-counted.
func (p *pipeline) merge(stats RunStats, queueBytes uint64, sumAccesses bool) *Result {
	var mergeT0 time.Time
	if p.m != nil {
		mergeT0 = time.Now()
	}
	res := &Result{Stats: stats}
	stores := make([]sig.Store, 0, len(p.workers))
	nodes := make([]*mergeNode, 0, len(p.workers))
	for _, w := range p.workers {
		if sumAccesses {
			res.Stats.Accesses += w.events
		}
		if w.tr != nil {
			res.WorkerEvents = append(res.WorkerEvents, w.events)
			res.Stats.QueueBytes += w.tr.memBytes()
		}
		// The worker's set and loop table are stolen, not copied: the
		// pipeline is past its flush barrier and the engines are done, so
		// the reduction may consume them in place.
		nodes = append(nodes, &mergeNode{deps: w.eng.Deps(), aggs: w.eng.loops})
		res.Stats.StoreBytes += w.eng.Store().Bytes()
		res.Stats.StoreModeledBytes += w.eng.Store().ModeledBytes()
		hits, probes := w.eng.CacheStats()
		res.Stats.DepCacheHits += hits
		res.Stats.DepCacheProbes += probes
		stores = append(stores, w.eng.Store())
	}
	res.Stats.QueueBytes += queueBytes
	if p.m != nil {
		// Final telemetry publication: each worker adds only the delta beyond
		// what it already published in flight (the workers have joined, so
		// their local state is safe to read here). Published before the tree
		// reduction, so a scrape that lands during a long merge of a large
		// profile already reads the final counters and occupancy gauges.
		for i, w := range p.workers {
			w.publishTelemetry()
			if w.tr == nil {
				continue
			}
			if d := w.tr.observedMaxDepth(); d >= 0 {
				p.m.ObserveQueueDepth(i, d)
			}
		}
		publishStoreTelemetry(p.m, stores...)
	}
	root := mergeTree(nodes)
	res.Deps = root.deps
	res.Loops = loopDepsOf(root.aggs)
	res.Carried = carriedKeysOf(root.aggs)
	if p.m != nil {
		p.m.StageMergeNs.Observe(time.Since(mergeT0).Nanoseconds())
	}
	return res
}

// mergeNode pairs one reduction operand's dependence set with its loop
// aggregates so both fold at the same tree level.
type mergeNode struct {
	deps *dep.Set
	aggs map[prog.LoopID]*loopAgg
}

// mergeTree unions the worker results by parallel tree reduction: each round
// merges adjacent pairs concurrently, halving the live set, so end-of-run
// latency is O(log W) rounds instead of the serial fold's O(W) — and each
// round's pair merges run on their own goroutines, putting the idle cores
// that just finished consuming events back to work. Rounds write into a
// fresh slice (never in place) so no goroutine reads a slot another is
// writing. The per-dependence and per-loop-key folds are commutative and
// associative, so the tree's result is exactly the serial fold's; the core
// equivalence tests and the dep package's merge fuzzer pin that.
func mergeTree(nodes []*mergeNode) *mergeNode {
	if len(nodes) == 0 {
		return &mergeNode{deps: dep.NewSet(), aggs: make(map[prog.LoopID]*loopAgg)}
	}
	// On a single processor the rounds cannot overlap and the tree re-folds
	// a pair's entries at every level it survives; a flat fold into the
	// largest worker's set does strictly less work, so take that path.
	if runtime.GOMAXPROCS(0) == 1 {
		big := 0
		for i, n := range nodes {
			if n.deps.Unique() > nodes[big].deps.Unique() {
				big = i
			}
		}
		acc := nodes[big]
		for i, n := range nodes {
			if i != big {
				acc.deps.Merge(n.deps)
				n.deps.Release()
				mergeLoopAggs(acc.aggs, n.aggs)
			}
		}
		return acc
	}
	for len(nodes) > 1 {
		half := len(nodes) / 2
		next := make([]*mergeNode, half, half+1)
		var wg sync.WaitGroup
		for i := 0; i < half; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				next[i] = mergePairNodes(nodes[2*i], nodes[2*i+1])
			}(i)
		}
		wg.Wait()
		if len(nodes)%2 == 1 {
			next = append(next, nodes[len(nodes)-1])
		}
		nodes = next
	}
	return nodes[0]
}

// mergePairNodes folds the smaller dependence set into the larger (stealing
// the big one as accumulator minimizes Ref misses and index regrows) and
// releases the consumed set's slab pages for reuse. Loop aggregates fold the
// same direction; both folds are order-insensitive.
func mergePairNodes(a, b *mergeNode) *mergeNode {
	if b.deps.Unique() > a.deps.Unique() {
		a, b = b, a
	}
	a.deps.Merge(b.deps)
	b.deps.Release()
	mergeLoopAggs(a.aggs, b.aggs)
	return a
}

// ownerOf is the modulo rule of Equation 1. The paper uses `address % W` on
// byte addresses; our substrate allocates 8-byte words, so the three
// alignment bits are shifted out first to keep the distribution even. Worker
// counts are powers of two in practice (they default to GOMAXPROCS but
// benchmarks and deployments pin 2/4/8/16), and for those the modulo is a
// mask — sparing the hot producer path a hardware divide per access, which
// profiling showed as a measurable slice of the distribution cost. The
// mapping is bit-identical to the modulo.
func ownerOf(addr uint64, w int, wMask uint64) int {
	if wMask != 0 {
		return int((addr >> 3) & wMask)
	}
	return int((addr >> 3) % uint64(w))
}

// powerOfTwoMask returns w-1 if w is a power of two, else 0.
func powerOfTwoMask(w int) uint64 {
	if w > 0 && w&(w-1) == 0 {
		return uint64(w - 1)
	}
	return 0
}

// migration is one planned address move.
type migration struct {
	addr     uint64
	from, to int
}

// planRebalance decides which of the top heavy hitters to migrate so they
// spread round-robin over the workers (§IV-A); nil when the current owners
// are already within one address of even.
func planRebalance(top []uint64, w int, owner func(uint64) int) []migration {
	if len(top) == 0 {
		return nil
	}
	counts := make([]int, w)
	for _, a := range top {
		counts[owner(a)]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min <= 1 {
		return nil // already even
	}
	var moves []migration
	for rank, addr := range top {
		want := rank % w
		if cur := owner(addr); cur != want {
			moves = append(moves, migration{addr: addr, from: cur, to: want})
		}
	}
	return moves
}

// producer is the single-threaded distribution stage of §IV: it owns the
// open chunks, the routing decision (owner mask + redirect map, or
// round-robin dealing for existence mode), the duplicate-read filter, the
// heavy-hitter sketch, and the migrate/install rebalance protocol.
type producer struct {
	pl    *pipeline
	w     int
	wMask uint64 // w-1 when w is a power of two, else 0 (see ownerOf)
	// rr deals chunks round-robin instead of by address owner: existence
	// mode needs no per-address ordering, so any worker can take any chunk.
	rr   bool
	next int // next round-robin target
	open []*event.Chunk
	// lastIdx[w] is the index in open[w] of the last appended event, or -1
	// when the last slot is not mergeable (fresh chunk, post-control push).
	// The duplicate filter collapses a read identical to that event into its
	// Rep count instead of appending a copy.
	lastIdx []int
	// redirect overrides the modulo rule for migrated addresses
	// ("redistribution rules are stored in a map and have higher priority
	// than the modulo function", §IV-A).
	redirect map[uint64]int
	heavy    *heavySketch
	sample   uint64

	// comp enables SD3 range compression (rangecomp.go): non-round-robin
	// chunked routing only, off under Config.NoStrideCompression. instr is
	// the direct-mapped per-instruction detector table; own the per-owner
	// last-touch state. Both are nil when comp is false.
	comp  bool
	instr []instrEntry
	own   []ownerState

	noFast            bool
	redistributeEvery int
	// seedPromote is set when the worker stores have an exact heavy-hitter
	// tier (sig.Promoter): the producer then keeps its sketch warm and seeds
	// the owners with Promote events every checkEvery chunks, sharing the
	// rebalance cadence when redistribution is on.
	seedPromote         bool
	checkEvery          int
	chunksSinceCheck    int
	allocatedChunks     uint64
	stats               RunStats
	dupPublished        uint64
	rangesPublished     uint64
	rangeElemsPublished uint64
	m                   *telemetry.Pipeline
	// sampleEvery / pushCtr: one in sampleEvery chunk pushes is timed into
	// StageProduceNs (push incl. backpressure, depth gauge, chunk refill).
	sampleEvery uint64
	pushCtr     uint64
}

// init wires the producer to its pipeline. rr selects round-robin dealing
// (one shared open chunk) over per-owner open chunks.
func (pr *producer) init(pl *pipeline, cfg *Config, rr bool) {
	pr.pl = pl
	pr.w = cfg.Workers
	pr.wMask = powerOfTwoMask(cfg.Workers)
	pr.rr = rr
	pr.noFast = cfg.NoFastPath
	if !rr {
		// Round-robin dealing is already perfectly balanced; redistribution
		// only applies to address-owned routing.
		pr.redistributeEvery = cfg.RedistributeEvery
	}
	pr.m = cfg.Metrics
	pr.sampleEvery = uint64(cfg.SampleEvery)
	if pr.sampleEvery == 0 {
		pr.sampleEvery = 32 // init called with an unnormalized Config in tests
	}
	pr.redirect = make(map[uint64]int)
	if !rr {
		pr.heavy = newHeavySketch(64)
		// Promoter stores get heavy-hitter seeding even without
		// redistribution; with it, both ride the same cadence.
		if w0 := pl.workers[0]; w0.eng != nil {
			if _, ok := w0.eng.Store().(sig.Promoter); ok {
				pr.seedPromote = true
			}
		}
		pr.checkEvery = pr.redistributeEvery
		if pr.checkEvery == 0 && pr.seedPromote {
			pr.checkEvery = promoteSeedEvery
		}
	}
	slots := cfg.Workers
	if rr {
		slots = 1
	}
	pr.open = make([]*event.Chunk, slots)
	pr.lastIdx = make([]int, slots)
	for i := range pr.open {
		pr.open[i] = pr.newChunk(pl.workers[i].tr)
		pr.lastIdx[i] = -1
	}
	pr.comp = !rr && !cfg.NoStrideCompression
	if pr.comp {
		pr.instr = make([]instrEntry, instrSlots)
		pr.own = make([]ownerState, slots)
		for i := range pr.own {
			// Epoch 1 so zero-valued touch cells read as stale; floor -1 so
			// no conservative touch floor applies to a fresh chunk.
			pr.own[i].epoch = 1
			pr.own[i].floor = -1
		}
	}
}

// access is the per-event hot path: count, sample, then route/collapse/append
// via put.
func (pr *producer) access(a event.Access) {
	if a.Kind == event.Read || a.Kind == event.Write {
		pr.stats.Accesses++
		// Sample the access statistics: every 16th access keeps producer
		// overhead bounded while heavily accessed addresses still dominate
		// the sketch. The sketch is consumed by rebalance() and by Promote
		// seeding; when neither is on (the default) sampling is skipped
		// entirely.
		if pr.checkEvery > 0 {
			if pr.sample++; pr.sample&15 == 0 {
				pr.heavy.Offer(a.Addr)
			}
		}
	}
	pr.put(a)
}

// putBatch is the bulk-ingest seam: one decoded chunk's worth of slots, with
// the per-event access counting hoisted to a single update per batch. Every
// slot still flows through the same put/accessRange paths as the per-event
// calls — routing, dup-collapse and stride re-compression behave identically,
// so the profile is byte-identical to per-event ingestion. RangeRef slots
// index into ranges; control slots (EpochMark and above) must not appear —
// the caller splits batches at epoch marks.
func (pr *producer) putBatch(accesses []event.Access, ranges []event.Range) {
	sketch := pr.checkEvery > 0
	var data uint64
	for i := range accesses {
		a := accesses[i]
		if a.Kind == event.RangeRef {
			pr.accessRange(&ranges[a.Addr])
			continue
		}
		if a.Kind == event.Read || a.Kind == event.Write {
			// A collapsed read (Rep > 0) stands for 1+Rep accesses; the
			// sketch sampling cadence advances by the same amount so the
			// heavy-hitter stream matches an uncollapsed feed (the extra
			// offers repeat the same address, exactly as the duplicates
			// themselves would have).
			n := uint64(1 + a.Rep)
			data += n
			if sketch {
				prev := pr.sample
				pr.sample += n
				for k := pr.sample>>4 - prev>>4; k > 0; k-- {
					pr.heavy.Offer(a.Addr)
				}
			}
		}
		pr.put(a)
	}
	pr.stats.Accesses += data
}

// put routes, maybe collapses, appends, and pushes when full — access minus
// the counting prologue, shared between the per-event and batch seams.
func (pr *producer) put(a event.Access) {
	w := 0
	if !pr.rr {
		// Owner computation is inlined on the hot path: the redirect map is
		// only populated once a rebalance has migrated an address
		// (redistribution is off by default), so the common case pays no map
		// probe at all.
		w = ownerOf(a.Addr, pr.w, pr.wMask)
		if len(pr.redirect) != 0 {
			if r, ok := pr.redirect[a.Addr]; ok {
				w = r
			}
		}
	}
	c := pr.open[w]
	if a.Kind == event.Read && !pr.noFast {
		// Duplicate filter: a read identical to the slot's previous event
		// (same statement re-reading the same word within one iteration) is
		// collapsed into that event's repetition count. Any intervening
		// access to the same address routes to the same slot and resets the
		// match, so the collapse is exact: the engine replays the
		// multiplicity and the profile is byte-identical.
		if li := pr.lastIdx[w]; li >= 0 {
			last := &c.Events[li]
			if last.Kind == event.Read && last.Rep != event.MaxRep {
				cmp := *last
				cmp.Rep = 0
				if cmp == a {
					last.Rep++
					pr.stats.DupCollapsed++
					return
				}
			}
		}
	}
	if pr.comp && (a.Kind == event.Read || a.Kind == event.Write) && a.Rep == 0 {
		// Stride compression (rangecomp.go): absorb a into an open range of
		// its instruction, or convert the instruction's previous point plus a
		// into one. On the miss path the appended point's slot is recorded in
		// the instruction entry — the conversion candidate for the next access.
		ent, absorbed := pr.compressAppend(&a, w)
		if absorbed {
			return
		}
		c.Append(a)
		slot := int32(c.Len() - 1)
		pr.lastIdx[w] = int(slot)
		pr.own[w].noteTouch(a.Addr, slot)
		pr.own[w].pending++
		ent.lastSlot = slot
	} else {
		c.Append(a)
		pr.lastIdx[w] = c.Len() - 1
		if pr.comp {
			// Removes (and any Rep-carrying event) still update the touch
			// table: nothing before them may be reordered across them.
			pr.own[w].noteTouch(a.Addr, int32(c.Len()-1))
			pr.own[w].pending++
		}
	}
	if c.Full() {
		pr.pushOpen(w)
		if pr.checkEvery > 0 && !pr.rr {
			pr.chunksSinceCheck++
			if pr.chunksSinceCheck >= pr.checkEvery {
				pr.chunksSinceCheck = 0
				if pr.seedPromote {
					pr.seedPromotions()
				}
				if pr.redistributeEvery > 0 {
					pr.rebalance()
				}
			}
		}
	}
}

// promoteSeedEvery is the chunk cadence of heavy-hitter Promote seeding when
// redistribution is off (with it on, seeding shares RedistributeEvery).
const promoteSeedEvery = 1024

// seedPromotions pushes the sketch's current top heavy hitters to their
// owners as Promote control events, riding the open chunks: a hybrid store
// adopts the address into its exact tier, any other store ignores the hint.
// Unlike rebalance this moves no state through mailboxes — the receiving
// store carries its own tail history across — so seeding is safe at any
// point in the stream.
func (pr *producer) seedPromotions() {
	for _, addr := range pr.heavy.Top(10) {
		w := pr.owner(addr)
		c := pr.open[w]
		c.Append(event.Access{Addr: addr, Kind: event.Promote})
		pr.lastIdx[w] = c.Len() - 1
		if c.Full() {
			pr.pushOpen(w)
		}
	}
}

// newChunk takes a recycled chunk from a worker's return ring if available,
// else allocates.
func (pr *producer) newChunk(tr transport) *event.Chunk {
	if c, ok := tr.takeChunk(); ok {
		if pr.m != nil {
			pr.m.ChunksRecycled.Inc()
		}
		return c
	}
	return pr.allocChunk()
}

// newChunkRR is the round-robin variant: any worker can return a chunk (they
// are dealt everywhere), so probe every recycle ring before allocating.
func (pr *producer) newChunkRR() *event.Chunk {
	for i := 0; i < len(pr.pl.workers); i++ {
		w := (pr.next + i) % len(pr.pl.workers)
		if c, ok := pr.pl.workers[w].tr.takeChunk(); ok {
			if pr.m != nil {
				pr.m.ChunksRecycled.Inc()
			}
			return c
		}
	}
	return pr.allocChunk()
}

func (pr *producer) allocChunk() *event.Chunk {
	pr.allocatedChunks++
	if pr.m != nil {
		pr.m.ChunksAllocated.Inc()
	}
	return event.NewChunk()
}

// pushOpen sends slot w's open chunk to its worker — the address owner, or
// the next round-robin target — and opens a fresh one.
func (pr *producer) pushOpen(w int) {
	c := pr.open[w]
	pr.lastIdx[w] = -1
	if c.Len() == 0 {
		return
	}
	// Sampled producer-stage span: the push (including any backpressure wait
	// inside pushChunk), the depth observation, and the chunk refill — the
	// full per-chunk routing cost the §IV producer pays.
	var produceT0 time.Time
	timed := false
	if pr.m != nil {
		if pr.pushCtr++; pr.pushCtr%pr.sampleEvery == 0 {
			timed = true
			produceT0 = time.Now()
		}
	}
	tgt := w
	if pr.rr {
		tgt = pr.next
		pr.next = (pr.next + 1) % len(pr.pl.workers)
	}
	n := uint64(c.Len())
	if pr.comp {
		// Ranges make slot count ≠ event count: publish the logical access
		// tally instead, and open a fresh touch-table generation — pushed
		// chunks are immutable, so nothing in them may be merged into again.
		os := &pr.own[w]
		n = os.pending
		os.pending = 0
		os.epoch++
		os.floor = -1
	}
	tw := pr.pl.workers[tgt]
	tw.tr.pushChunk(c)
	pr.stats.Chunks++
	if pr.m != nil {
		pr.m.Events.Add(n)
		pr.m.Chunks.Inc()
		if d := pr.stats.DupCollapsed - pr.dupPublished; d > 0 {
			pr.m.DupCollapsed.Add(d)
			pr.dupPublished = pr.stats.DupCollapsed
		}
		if pr.comp {
			pr.publishRangeTelemetry()
		}
		// Depth right after the push; the pushed chunk may already have been
		// consumed, so count it in to keep the gauge a lower bound of the
		// burst the worker saw.
		d := int64(tw.tr.depth())
		if d == 0 {
			d = 1
		}
		pr.m.ObserveQueueDepth(tgt, d)
	}
	if pr.rr {
		pr.open[w] = pr.newChunkRR()
	} else {
		pr.open[w] = pr.newChunk(tw.tr)
	}
	if timed {
		pr.m.StageProduceNs.Observe(time.Since(produceT0).Nanoseconds())
	}
}

// rebalance checks whether the top heavy hitters are spread evenly over the
// workers and migrates them if not (§IV-A).
func (pr *producer) rebalance() {
	moves := planRebalance(pr.heavy.Top(10), pr.w, pr.owner)
	if len(moves) == 0 {
		return
	}
	for _, mv := range moves {
		pr.migrate(mv.addr, mv.from, mv.to)
	}
	pr.stats.Redistributions++
	if pr.m != nil {
		pr.m.Redistributions.Inc()
	}
}

// owner maps an address to its worker, redirects first.
func (pr *producer) owner(addr uint64) int {
	if w, ok := pr.redirect[addr]; ok {
		return w
	}
	return ownerOf(addr, pr.w, pr.wMask)
}

// migrate moves one address and its signature state from worker `from` to
// worker `to`. The protocol preserves the per-address total order:
//
//  1. All accesses routed so far are in from's queue; a MIGRATE control
//     event is pushed behind them, so `from` processes it only after every
//     earlier access.
//  2. `from` publishes the address's slot state in its mailbox and forgets
//     the address; the producer spins for the mailbox.
//  3. The producer hands the state to `to` via its install mailbox and
//     pushes an INSTALL control event; accesses routed after the redirect
//     update follow INSTALL in `to`'s queue, preserving order.
func (pr *producer) migrate(addr uint64, from, to int) {
	fw, tw := pr.pl.workers[from], pr.pl.workers[to]

	// Step 1: flush pending accesses, then MIGRATE. Control chunks count as
	// ControlChunks, not Chunks: they carry no accesses, so folding them
	// into the data-chunk count would skew events-per-chunk throughput math.
	pr.pushOpen(from)
	mc := pr.newChunk(fw.tr)
	mc.Append(event.Access{Addr: addr, Kind: event.Migrate})
	fw.tr.pushChunk(mc)
	pr.stats.ControlChunks++

	// Step 2: wait for the state.
	var st *migState
	for i := 0; ; i++ {
		if st = fw.migOut.Swap(nil); st != nil {
			break
		}
		queue.Backoff(i)
	}

	// Step 3: install at the destination. The install mailbox must be free:
	// wait until the previous installation (if any) was consumed.
	for i := 0; !tw.installIn.CompareAndSwap(nil, st); i++ {
		queue.Backoff(i)
	}
	pr.pushOpen(to)
	ic := pr.newChunk(tw.tr)
	ic.Append(event.Access{Addr: addr, Kind: event.Install})
	tw.tr.pushChunk(ic)
	pr.stats.ControlChunks++

	pr.redirect[addr] = to
	pr.stats.Migrations++
	if pr.m != nil {
		pr.m.Migrations.Inc()
	}
}

// drainFlush pushes the remaining open chunks and one flush sentinel per
// worker; the caller then waits on the pipeline's flush barrier.
func (pr *producer) drainFlush() {
	if pr.rr {
		pr.pushOpen(0)
	}
	for i, w := range pr.pl.workers {
		if !pr.rr {
			pr.pushOpen(i)
		}
		fc := pr.newChunk(w.tr)
		fc.Append(event.Access{Kind: event.Flush})
		w.tr.pushChunk(fc)
		pr.stats.ControlChunks++
	}
	if pr.m != nil {
		if d := pr.stats.DupCollapsed - pr.dupPublished; d > 0 {
			pr.m.DupCollapsed.Add(d)
			pr.dupPublished = pr.stats.DupCollapsed
		}
		if pr.comp {
			pr.publishRangeTelemetry()
		}
	}
	pr.publishCompressionState()
}
