package core

import "sort"

// heavySketch tracks approximately the most frequently accessed addresses
// (paper §IV-A: "we also monitor how many times an address is accessed
// dynamically ... to ensure that the top ten most heavily accessed addresses
// are always evenly distributed among worker threads").
//
// The paper keeps exact counts in a map; we use the SpaceSaving algorithm
// with a small capacity instead, which bounds the producer-side cost per
// access to O(1) map operations regardless of how many distinct addresses
// the target touches, while still identifying heavy hitters whose frequency
// exceeds 1/capacity of the stream — far coarser than the top-10 needs.
type heavySketch struct {
	counts map[uint64]uint64
	cap    int
}

func newHeavySketch(capacity int) *heavySketch {
	if capacity < 16 {
		capacity = 16
	}
	return &heavySketch{counts: make(map[uint64]uint64, capacity+1), cap: capacity}
}

// Offer counts one access to addr.
func (h *heavySketch) Offer(addr uint64) {
	if c, ok := h.counts[addr]; ok {
		h.counts[addr] = c + 1
		return
	}
	if len(h.counts) < h.cap {
		h.counts[addr] = 1
		return
	}
	// SpaceSaving: evict the minimum and inherit its count.
	var minAddr uint64
	minCount := ^uint64(0)
	for a, c := range h.counts {
		if c < minCount {
			minCount, minAddr = c, a
		}
	}
	delete(h.counts, minAddr)
	h.counts[addr] = minCount + 1
}

// Top returns up to n addresses ordered by descending estimated count.
// Ties break by address for determinism.
func (h *heavySketch) Top(n int) []uint64 {
	type ac struct {
		a uint64
		c uint64
	}
	all := make([]ac, 0, len(h.counts))
	for a, c := range h.counts {
		all = append(all, ac{a, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].a < all[j].a
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].a
	}
	return out
}
