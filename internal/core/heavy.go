package core

import "ddprof/internal/sig"

// heavySketch is the producer's Misra–Gries/SpaceSaving heavy-hitter sketch
// (§IV-A load balancing). The implementation lives in sig.HeavySketch so the
// hybrid store's worker-local promotion (internal/shadow) shares it; the
// alias keeps the pipeline code reading naturally.
type heavySketch = sig.HeavySketch

func newHeavySketch(capacity int) *heavySketch { return sig.NewHeavySketch(capacity) }
