package core

import (
	"fmt"
	"testing"

	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
)

// feedBatched pushes a stream through the bulk-ingest seam in uneven batch
// sizes. With collapse set it pre-folds consecutive duplicate reads into
// repetition counts first — the shape the trace decoder's duplicate filter
// hands over — so the engines' Rep replay gets exercised end to end.
func feedBatched(p Profiler, evs []event.Access, batch int, collapse bool) *Result {
	var pending []event.Access
	flush := func() {
		if len(pending) > 0 {
			p.AccessBatch(pending, nil)
			pending = pending[:0]
		}
	}
	for _, a := range evs {
		if collapse && len(pending) > 0 {
			if last := &pending[len(pending)-1]; a.Kind == event.Read &&
				last.Kind == event.Read && last.Rep != event.MaxRep {
				cmp := *last
				cmp.Rep = 0
				if cmp == a {
					last.Rep++
					continue
				}
			}
		}
		pending = append(pending, a)
		if len(pending) >= batch {
			flush()
		}
	}
	flush()
	return p.Flush()
}

// TestAccessBatchEquivalence holds AccessBatch to its contract: for every
// pipeline, any batching of a stream — including pre-collapsed duplicate
// reads — must produce a profile byte-identical to per-event Access calls.
func TestAccessBatchEquivalence(t *testing.T) {
	for _, s := range equivSuite() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			mk := func(kind string) Profiler {
				cfg := Config{Backend: "perfect", Meta: s.meta}
				switch kind {
				case "serial":
					return NewSerial(cfg)
				case "parallel":
					cfg.Workers = 3
					cfg.QueueCap = 4
					return NewParallel(cfg)
				case "mt":
					cfg.Workers = 2
					cfg.QueueCap = 256
					return NewMT(cfg)
				}
				panic(kind)
			}
			for _, kind := range []string{"serial", "parallel", "mt"} {
				want := feed(mk(kind), s.evs)
				for _, batch := range []int{1, 7, 1024} {
					for _, collapse := range []bool{false, true} {
						got := feedBatched(mk(kind), s.evs, batch, collapse)
						requireSameProfile(t,
							fmt.Sprintf("%s/%s/batch%d/collapse=%v", s.name, kind, batch, collapse),
							want, got)
					}
				}
			}
		})
	}
}

// TestAccessBatchRanges checks the RangeRef side-table path: a batch holding
// compressed strided runs must profile identically to the equivalent
// AccessRange calls interleaved with point accesses.
func TestAccessBatchRanges(t *testing.T) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "strided"})
	ctx := m.PushCtx(0, l)

	var evs []event.Access
	var rngs []event.Range
	var slots []event.Access // the AccessBatch form: points plus RangeRef slots
	for it := uint32(0); it < 60; it++ {
		iv := event.PackIterVec([]uint32{it})
		w := event.Access{Addr: 0x6000 + uint64(it%16)*8, Kind: event.Write,
			Loc: loc.Pack(5, 50), CtxID: ctx, IterVec: iv, TS: uint64(4*it + 1)}
		evs = append(evs, w)
		slots = append(slots, w)
		r := event.Range{Base: 0x6000, Stride: 8, Count: 16, Kind: event.Read,
			Loc: loc.Pack(5, 51), CtxID: ctx, IterVec: iv, TS: uint64(4*it + 2)}
		slots = append(slots, event.Access{Addr: uint64(len(rngs)), Kind: event.RangeRef})
		rngs = append(rngs, r)
	}

	for _, kind := range []string{"serial", "parallel"} {
		mk := func() Profiler {
			cfg := Config{Backend: "perfect", Meta: m}
			if kind == "parallel" {
				cfg.Workers = 3
				cfg.QueueCap = 4
				return NewParallel(cfg)
			}
			return NewSerial(cfg)
		}
		ref := mk()
		ri := 0
		for _, a := range slots {
			if a.Kind == event.RangeRef {
				switch p := ref.(type) {
				case *Serial:
					p.AccessRange(rngs[ri])
				case *Parallel:
					p.AccessRange(rngs[ri])
				}
				ri++
				continue
			}
			ref.Access(a)
		}
		want := ref.Flush()

		bp := mk()
		bp.AccessBatch(slots, rngs)
		got := bp.Flush()
		requireSameProfile(t, "ranges/"+kind, want, got)
		if got.Stats.Ranges == 0 || got.Stats.RangeElements == 0 {
			t.Errorf("ranges/%s: batch ingest recorded no range stats (%+v)", kind, got.Stats)
		}
	}
}
