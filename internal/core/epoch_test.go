package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ddprof/internal/dep"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
)

// deltaLog collects epoch-delta extractions; OnEpochDelta runs on worker
// goroutines, so the log is mutex-guarded.
type deltaLog struct {
	mu     sync.Mutex
	deltas []*EpochDelta
}

func (l *deltaLog) add(d *EpochDelta) {
	l.mu.Lock()
	l.deltas = append(l.deltas, d)
	l.mu.Unlock()
}

// foldDeltas unions every logged delta (and per-loop delta) into one set per
// table, the way a watch subscriber folds the frames it receives.
func (l *deltaLog) fold() (*dep.Set, map[prog.LoopID]*dep.Set) {
	l.mu.Lock()
	defer l.mu.Unlock()
	deps := dep.NewSet()
	loops := make(map[prog.LoopID]*dep.Set)
	for _, d := range l.deltas {
		deps.Merge(d.Deps)
		for id, ks := range d.Loops {
			if loops[id] == nil {
				loops[id] = dep.NewSet()
			}
			loops[id].Merge(ks)
		}
	}
	return deps, loops
}

// encodeSet renders a set with a fixed table so results byte-compare.
func encodeSet(t *testing.T, s *dep.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dep.Encode(&buf, s, loc.NewTable(), nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEpochDeltaEquivalence is the live observatory's core invariant, run
// over every pipeline kind and both an exact and a lossy store: cut an epoch
// every few hundred events, then fold every extracted delta plus the final
// remainder — the result must encode byte-identical to the run's own final
// profile, dependences and per-loop carried keys alike.
func TestEpochDeltaEquivalence(t *testing.T) {
	for _, s := range equivSuite() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			for _, kind := range []string{"serial", "parallel", "mt"} {
				for _, backend := range []string{"perfect", "signature"} {
					label := fmt.Sprintf("%s/%s/%s", s.name, kind, backend)
					log := &deltaLog{}
					cfg := Config{
						Backend:      backend,
						Meta:         s.meta,
						OnEpochDelta: log.add,
						TrackBounds:  true,
					}
					var p Profiler
					switch kind {
					case "serial":
						p = NewSerial(cfg)
					case "parallel":
						cfg.Workers = 3
						cfg.QueueCap = 4
						p = NewParallel(cfg)
					case "mt":
						cfg.Workers = 2
						cfg.QueueCap = 256
						p = NewMT(cfg)
					}
					marker, ok := p.(EpochMarker)
					if !ok {
						t.Fatalf("%s: pipeline does not implement EpochMarker", label)
					}
					var epoch uint32
					for i, a := range s.evs {
						if i > 0 && i%300 == 0 {
							epoch++
							marker.EpochMark(epoch)
						}
						p.Access(a)
					}
					epoch++
					marker.EpochMark(epoch)
					res := p.Flush()

					folded, foldedLoops := log.fold()
					rem := dep.NewSet()
					res.Deps.ExtractDelta(rem)
					folded.Merge(rem)
					for id, ks := range res.Carried {
						out := dep.NewSet()
						if ks.ExtractDelta(out) > 0 {
							if foldedLoops[id] == nil {
								foldedLoops[id] = dep.NewSet()
							}
							foldedLoops[id].Merge(out)
						}
						out.Release()
					}

					if want, got := encodeSet(t, res.Deps), encodeSet(t, folded); !bytes.Equal(want, got) {
						t.Errorf("%s: folded deltas (%d deps) differ from final profile (%d deps)",
							label, folded.Unique(), res.Deps.Unique())
					}
					if folded.Instances() != res.Deps.Instances() {
						t.Errorf("%s: folded instances %d, final %d", label, folded.Instances(), res.Deps.Instances())
					}
					for id, ks := range res.Carried {
						if ks.Unique() == 0 {
							continue
						}
						fl := foldedLoops[id]
						if fl == nil {
							t.Errorf("%s: loop %d carried keys never shipped in a delta", label, id)
							continue
						}
						if want, got := encodeSet(t, ks), encodeSet(t, fl); !bytes.Equal(want, got) {
							t.Errorf("%s: loop %d folded carried keys differ from final", label, id)
						}
					}
				}
			}
		})
	}
}

// TestEpochDeltaBounds: with TrackBounds on, epoch deltas carry each worker's
// per-variable address interval, covering exactly the addresses the stream
// touched.
func TestEpochDeltaBounds(t *testing.T) {
	s := equivSuite()[0] // carried-raw: addresses 0x1000..0x1000+63*8
	log := &deltaLog{}
	var p Profiler = NewSerial(Config{Backend: "perfect", Meta: s.meta, OnEpochDelta: log.add, TrackBounds: true})
	marker := p.(EpochMarker)
	for _, a := range s.evs {
		p.Access(a)
	}
	marker.EpochMark(1)
	p.Flush()

	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.deltas) != 1 {
		t.Fatalf("%d deltas, want 1", len(log.deltas))
	}
	bs := log.deltas[0].Bounds
	if len(bs) == 0 {
		t.Fatal("delta carries no bounds with TrackBounds on")
	}
	var lo, hi uint64
	for i, b := range bs {
		if i == 0 || b.Lo < lo {
			lo = b.Lo
		}
		if b.Hi > hi {
			hi = b.Hi
		}
	}
	if lo != 0x1000 || hi != 0x1000+63*8 {
		t.Fatalf("bounds cover [%#x, %#x], want [0x1000, %#x]", lo, hi, 0x1000+63*8)
	}
}

// TestEpochMarkWithoutCallback: marks on a pipeline with no OnEpochDelta sink
// are a no-op, not a leak or a panic.
func TestEpochMarkWithoutCallback(t *testing.T) {
	s := equivSuite()[0]
	for _, kind := range []string{"serial", "parallel", "mt"} {
		cfg := Config{Backend: "perfect", Meta: s.meta}
		var p Profiler
		switch kind {
		case "serial":
			p = NewSerial(cfg)
		case "parallel":
			cfg.Workers = 2
			p = NewParallel(cfg)
		case "mt":
			cfg.Workers = 2
			p = NewMT(cfg)
		}
		marker := p.(EpochMarker)
		for i, a := range s.evs {
			if i%100 == 0 {
				marker.EpochMark(uint32(i/100) + 1)
			}
			p.Access(a)
		}
		res := p.Flush()
		if res.Deps.Unique() == 0 {
			t.Errorf("%s: marks without a callback broke profiling", kind)
		}
	}
}
