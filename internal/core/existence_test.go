package core

import (
	"testing"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
)

func TestExistenceBasicPairs(t *testing.T) {
	e := NewExistence(Config{Workers: 4})
	// write A@1; read A@2; write B@3; read B@2: pairs {1,2}, {2,3}, and the
	// self WAW pairs {1,1}, {3,3}.
	e.Access(event.Access{Addr: 0x100, Kind: event.Write, Loc: loc.Pack(1, 1)})
	e.Access(event.Access{Addr: 0x100, Kind: event.Read, Loc: loc.Pack(1, 2)})
	e.Access(event.Access{Addr: 0x200, Kind: event.Write, Loc: loc.Pack(1, 3)})
	e.Access(event.Access{Addr: 0x200, Kind: event.Read, Loc: loc.Pack(1, 2)})
	res := e.Flush()

	want := []LinePair{
		{loc.Pack(1, 1), loc.Pack(1, 1)},
		{loc.Pack(1, 1), loc.Pack(1, 2)},
		{loc.Pack(1, 2), loc.Pack(1, 3)},
		{loc.Pack(1, 3), loc.Pack(1, 3)},
	}
	if len(res.Pairs) != len(want) {
		t.Fatalf("pairs = %v, want %v", res.SortedPairs(), want)
	}
	for _, p := range want {
		if _, ok := res.Pairs[p]; !ok {
			t.Errorf("missing pair %v", p)
		}
	}
	// Read-only addresses yield no pairs.
	e2 := NewExistence(Config{Workers: 2})
	e2.Access(event.Access{Addr: 0x300, Kind: event.Read, Loc: loc.Pack(1, 5)})
	e2.Access(event.Access{Addr: 0x300, Kind: event.Read, Loc: loc.Pack(1, 6)})
	if res2 := e2.Flush(); len(res2.Pairs) != 0 {
		t.Errorf("read-only pairs: %v", res2.SortedPairs())
	}
}

// TestExistenceCoversTypedDeps: every typed dependence found by the full
// profiler must appear as a line pair in the existence profile (existence is
// an over-approximation that never misses).
func TestExistenceCoversTypedDeps(t *testing.T) {
	evs := synthStream(100000, 300, 11)

	full := runSerial(evs)
	ex := NewExistence(Config{Workers: 4})
	for _, a := range evs {
		ex.Access(a)
	}
	eres := ex.Flush()

	full.Deps.Range(func(k dep.Key, _ dep.Stats) bool {
		if k.Type == dep.INIT {
			return true
		}
		if _, ok := eres.Pairs[pairOf(k.Src, k.Sink)]; !ok {
			t.Errorf("typed dep %v %v<-%v has no existence pair", k.Type, k.Sink, k.Src)
			return false
		}
		return true
	})
}

// TestRoundRobinBalancesSkewedStreams is the §VI-B claim: under a heavily
// skewed address distribution, the existence profiler's round-robin dealing
// stays balanced while the address-partitioned profiler is imbalanced.
func TestRoundRobinBalancesSkewedStreams(t *testing.T) {
	// 80% of traffic on ONE address.
	var evs []event.Access
	for i := 0; i < 200000; i++ {
		a := uint64(0x9000)
		if i%5 == 4 {
			a = uint64(0x10000 + 8*(i%1000))
		}
		k := event.Read
		if i%3 == 0 {
			k = event.Write
		}
		evs = append(evs, event.Access{Addr: a, Kind: k, Loc: loc.Pack(1, 1+i%20)})
	}

	p := NewParallel(Config{Workers: 4, Backend: "perfect"})
	for _, a := range evs {
		p.Access(a)
	}
	typed := p.Flush()

	ex := NewExistence(Config{Workers: 4})
	for _, a := range evs {
		ex.Access(a)
	}
	eres := ex.Flush()

	typedImb := Imbalance(typed.WorkerEvents)
	rrImb := Imbalance(eres.WorkerEvents)
	if typedImb < 2.0 {
		t.Errorf("address partitioning should be imbalanced on this stream: %.2f (events %v)",
			typedImb, typed.WorkerEvents)
	}
	if rrImb > 1.1 {
		t.Errorf("round-robin should be near-perfectly balanced: %.2f (events %v)",
			rrImb, eres.WorkerEvents)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance(nil); got != 1 {
		t.Errorf("empty = %v", got)
	}
	if got := Imbalance([]uint64{5, 5, 5, 5}); got != 1 {
		t.Errorf("even = %v", got)
	}
	if got := Imbalance([]uint64{30, 0, 0, 0, 0, 0}); got != 6 {
		t.Errorf("skewed = %v, want 6", got)
	}
	if got := Imbalance([]uint64{0, 0}); got != 1 {
		t.Errorf("all-zero = %v", got)
	}
}
