package core

import (
	"fmt"
	"testing"

	"ddprof/internal/event"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
	"ddprof/internal/workloads"
)

// TestStrideCompressionEquivalence is the A/B harness of the range-compressed
// ingestion work: every golden workload (plus the equivalence suite's
// special-case streams) through serial, parallel and MT, with and without
// Config.NoStrideCompression, diffing the full profiles — so a future
// mismatch prints the offending dependence key and stats, not just a digest.
func TestStrideCompressionEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the full workload corpus")
	}
	streams := equivSuite()
	for _, w := range workloads.All() {
		p := w.Build(workloads.Config{Scale: 0.25, Threads: 4})
		var c goldenCap
		if _, err := interp.Run(p, &c, interp.Options{}); err != nil {
			t.Fatalf("capture %s: %v", w.Name, err)
		}
		streams = append(streams, equivStream{"wl-" + w.Name, p.Meta, c.evs})
	}

	mk := func(kind string, meta *prog.Meta, noComp bool) Profiler {
		cfg := Config{
			Backend:             "perfect",
			Meta:                meta,
			NoStrideCompression: noComp,
		}
		switch kind {
		case "serial":
			return NewSerial(cfg)
		case "parallel":
			cfg.Workers = 4
			cfg.QueueCap = 8
			return NewParallel(cfg)
		case "mt":
			cfg.Workers = 2
			cfg.QueueCap = 256
			return NewMT(cfg)
		}
		panic(kind)
	}

	var rangesSeen uint64
	for _, s := range streams {
		s := s
		t.Run(s.name, func(t *testing.T) {
			for _, kind := range []string{"serial", "parallel", "mt"} {
				off := feed(mk(kind, s.meta, true), s.evs)
				on := feed(mk(kind, s.meta, false), s.evs)
				if off.Stats.Ranges != 0 {
					t.Errorf("%s: NoStrideCompression run still emitted %d ranges", kind, off.Stats.Ranges)
				}
				rangesSeen += on.Stats.Ranges
				requireSameProfile(t, fmt.Sprintf("%s/%s", s.name, kind), off, on)
			}
		})
	}
	if rangesSeen == 0 {
		t.Error("no stream compressed a single range: the A/B comparison is vacuous")
	}
}

// TestProducerCompressionExactness drives the producer's merge machinery
// through its sharp edges — interleaved instructions, duplicate reads abutting
// runs, stride breaks and re-learning, descending and zero strides, Remove
// events cutting runs, same-address ping-pong between two instructions — and
// requires the parallel profile to match the serial reference exactly.
func TestProducerCompressionExactness(t *testing.T) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "edge"})
	ctx := m.PushCtx(0, l)

	var evs []event.Access
	iv := func(it uint32) uint64 { return event.PackIterVec([]uint32{it}) }
	// Two interleaved strided instructions over the same iteration space, a
	// third reading the first's addresses one iteration behind (carried RAW
	// that must survive compression), plus periodic dups and breaks.
	for it := uint32(0); it < 3000; it++ {
		a := 0x10000 + uint64(it)*8
		b := 0x80000 + uint64(it)*16
		evs = append(evs,
			event.Access{Addr: a, Kind: event.Write, Loc: loc.Pack(1, 10), CtxID: ctx, IterVec: iv(it)},
			event.Access{Addr: b, Kind: event.Write, Loc: loc.Pack(1, 11), CtxID: ctx, IterVec: iv(it)},
		)
		if it > 0 {
			evs = append(evs, event.Access{Addr: a - 8, Kind: event.Read, Loc: loc.Pack(1, 12), CtxID: ctx, IterVec: iv(it)})
		}
		if it%5 == 0 {
			// Re-read the current address: the duplicate filter's shape, then
			// a distinct-location read of the same address (not collapsible,
			// not extendable — lastTouch must block any backward move).
			evs = append(evs,
				event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(1, 12), CtxID: ctx, IterVec: iv(it)},
				event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(1, 12), CtxID: ctx, IterVec: iv(it)},
				event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(1, 13), CtxID: ctx, IterVec: iv(it)},
			)
		}
		if it%97 == 0 {
			// Stride break: one far-away write from the same instruction.
			evs = append(evs, event.Access{Addr: 0x500000 + uint64(it)*8, Kind: event.Write, Loc: loc.Pack(1, 10), CtxID: ctx, IterVec: iv(it)})
		}
		if it%131 == 0 {
			evs = append(evs, event.Access{Addr: a, Kind: event.Remove})
		}
	}
	// Descending and zero-stride runs.
	for it := uint32(0); it < 500; it++ {
		evs = append(evs,
			event.Access{Addr: 0x40000 - uint64(it)*8, Kind: event.Write, Loc: loc.Pack(2, 20), CtxID: ctx, IterVec: iv(it)},
			event.Access{Addr: 0x60000, Kind: event.Read, Loc: loc.Pack(2, 21), CtxID: ctx, IterVec: iv(it)},
		)
	}
	// Same-address ping-pong between two instructions: every access touches
	// the last element of the other instruction's open run, so extension must
	// be continuously blocked by the last-touch table on one side.
	for it := uint32(0); it < 400; it++ {
		a := 0x90000 + uint64(it/2)*8
		evs = append(evs,
			event.Access{Addr: a, Kind: event.Write, Loc: loc.Pack(3, 30), CtxID: ctx, IterVec: iv(it)},
			event.Access{Addr: a, Kind: event.Write, Loc: loc.Pack(3, 31), CtxID: ctx, IterVec: iv(it)},
		)
	}

	serial := feed(NewSerial(Config{Backend: "perfect", Meta: m}), evs)
	for _, workers := range []int{1, 2, 4, 8, 3} {
		cfg := Config{Workers: workers, QueueCap: 4, Backend: "perfect", Meta: m}
		par := feed(NewParallel(cfg), evs)
		requireSameProfile(t, fmt.Sprintf("%dw", workers), serial, par)
		if workers == 4 && par.Stats.Ranges == 0 {
			t.Error("4w: expected the strided stream to compress into ranges")
		}
		if par.Stats.RangeElements < par.Stats.Ranges*2 {
			t.Errorf("%dw: RangeElements %d < 2×Ranges %d", workers, par.Stats.RangeElements, par.Stats.Ranges)
		}
	}
}

// TestAccessRangeEquivalence feeds pre-compressed ranges through
// Serial.AccessRange and Parallel.AccessRange (the trace-ingest path) and
// requires the profile to match the same stream fed as points — covering the
// owner-mask splitting rule on power-of-two worker counts and the
// per-element fallback on the rest.
func TestAccessRangeEquivalence(t *testing.T) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "ranges"})
	ctx := m.PushCtx(0, l)

	var ranges []event.Range
	mkr := func(base uint64, stride int64, count uint32, line int, kind event.Kind, itBase uint32) event.Range {
		return event.Range{
			Base: base, Stride: uint64(stride), Count: count,
			IterVec: event.PackIterVec([]uint32{itBase}), IterDelta: 1,
			Loc: loc.Pack(7, line), Var: loc.VarID(line), CtxID: ctx, Kind: kind,
		}
	}
	ranges = append(ranges,
		mkr(0x1000, 8, 1000, 70, event.Write, 0),      // unit stride, splits evenly
		mkr(0x1000, 8, 1000, 71, event.Read, 0),       // RAW against the writes
		mkr(0x9000, 16, 777, 72, event.Write, 5),      // stride 2 words: period W/2
		mkr(0x20000, 64, 333, 73, event.Write, 0),     // stride a multiple of W: one owner
		mkr(0x33000, -8, 500, 74, event.Write, 9),     // descending
		mkr(0x44440, 0, 200, 75, event.Write, 0),      // zero stride: repeated address
		mkr(0x51234, 12, 400, 76, event.Write, 0),     // unaligned stride: per-element fallback
		mkr(0x60000, 8, 1, 77, event.Write, 0),        // single element
		mkr(^uint64(0)-64, 8, 30, 78, event.Write, 0), // wraps 2^64: fallback
	)

	expand := func() []event.Access {
		var evs []event.Access
		for _, r := range ranges {
			for j := uint32(0); j < r.Count; j++ {
				evs = append(evs, r.At(j))
			}
		}
		return evs
	}

	want := feed(NewSerial(Config{Backend: "perfect", Meta: m}), expand())

	t.Run("serial", func(t *testing.T) {
		s := NewSerial(Config{Backend: "perfect", Meta: m})
		for _, r := range ranges {
			s.AccessRange(r)
		}
		requireSameProfile(t, "serial ranges", want, s.Flush())
	})
	for _, workers := range []int{1, 2, 4, 8, 3} {
		workers := workers
		t.Run(fmt.Sprintf("parallel-%dw", workers), func(t *testing.T) {
			p := NewParallel(Config{Workers: workers, QueueCap: 8, Backend: "perfect", Meta: m})
			for _, r := range ranges {
				p.AccessRange(r)
			}
			res := p.Flush()
			requireSameProfile(t, fmt.Sprintf("parallel %dw ranges", workers), want, res)
			if workers == 4 && res.Stats.RangeElements == 0 {
				t.Error("4w: expected split sub-ranges to reach workers as ranges")
			}
		})
	}
	t.Run("parallel-nocomp-expands", func(t *testing.T) {
		p := NewParallel(Config{Workers: 4, Backend: "perfect", Meta: m, NoStrideCompression: true})
		for _, r := range ranges {
			p.AccessRange(r)
		}
		res := p.Flush()
		requireSameProfile(t, "parallel nocomp ranges", want, res)
		if res.Stats.Ranges != 0 {
			t.Errorf("NoStrideCompression ingest emitted %d ranges", res.Stats.Ranges)
		}
	})
}
