package core

// Flight-recorder coverage: stage latency histograms, consumer-side MT event
// accounting, publication watermarks (no double counting between in-flight
// and merge-time publication), and the live Eq. (2) accuracy path.

import (
	"strings"
	"testing"

	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/telemetry"
)

func TestSampleEveryValidation(t *testing.T) {
	if _, err := New(Config{Mode: ModeParallel, SampleEvery: -1, Backend: "perfect"}); err == nil {
		t.Fatal("negative SampleEvery accepted")
	}
	cfg, err := Config{}.normalize(ModeParallel)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SampleEvery != 32 {
		t.Fatalf("default SampleEvery = %d, want 32", cfg.SampleEvery)
	}
}

func TestParallelStageHistograms(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := reg.Pipeline("t")
	p := NewParallel(Config{
		Workers:     2,
		Backend:     "perfect",
		Metrics:     pipe,
		SampleEvery: 1, // time every chunk so a small stream populates all stages
	})
	for _, a := range synthStream(100000, 500, 7) {
		p.Access(a)
	}
	p.Flush()
	if pipe.StageProduceNs.Count() == 0 {
		t.Error("no producer-stage samples recorded")
	}
	if pipe.StageWorkerNs.Count() == 0 {
		t.Error("no worker-stage samples recorded")
	}
	if got := pipe.StageMergeNs.Count(); got != 1 {
		t.Errorf("merge-stage samples = %d, want exactly 1", got)
	}
	// Quantiles of a populated histogram are positive durations.
	if q := pipe.StageWorkerNs.Quantile(0.5); q <= 0 {
		t.Errorf("worker-stage p50 = %v, want > 0", q)
	}
	// The histograms surface on the exposition page.
	var sb strings.Builder
	reg.WriteText(&sb)
	for _, want := range []string{
		"t_stage_produce_ns_p99 ",
		"t_stage_worker_ns_p50 ",
		"t_stage_merge_ns_count 1",
		"t_stage_transport_wait_ns_count ",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMTConsumerSideEventCount: events_total is counted by the consumers at
// batch granularity, and a collapsed read still counts its full multiplicity
// — the logical access count, same as Stats.Accesses.
func TestMTConsumerSideEventCount(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := reg.Pipeline("t")
	const reads = 10000
	m := NewMT(Config{Workers: 2, SlotsPerWorker: 1 << 10, Metrics: pipe})
	m.Access(event.Access{Addr: 0x800, Kind: event.Write, Loc: loc.Pack(1, 1)})
	for i := 0; i < reads; i++ {
		// Identical untimestamped reads: the consumer collapses them, but the
		// logical count must be preserved.
		m.Access(event.Access{Addr: 0x800, Kind: event.Read, Loc: loc.Pack(1, 2)})
	}
	res := m.Flush()
	if got := pipe.Events.Load(); got != reads+1 {
		t.Errorf("events_total = %d, want %d", got, reads+1)
	}
	if res.Stats.Accesses != reads+1 {
		t.Errorf("Stats.Accesses = %d, want %d", res.Stats.Accesses, reads+1)
	}
	if res.Stats.DupCollapsed == 0 {
		t.Error("expected consumer-side collapse on an all-duplicate stream")
	}
}

// TestDepCacheNoDoubleCount: workers publish dep-cache deltas while running
// and the merge publishes the remainder; the counter must equal the
// merged stats exactly, not twice them.
func TestDepCacheNoDoubleCount(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := reg.Pipeline("t")
	p := NewParallel(Config{Workers: 2, SlotsPerWorker: 1 << 12, Metrics: pipe})
	for _, a := range synthStream(400000, 50, 11) {
		p.Access(a)
	}
	res := p.Flush()
	if res.Stats.DepCacheProbes == 0 {
		t.Fatal("stream produced no dep-cache probes; test needs a hotter stream")
	}
	if got := pipe.DepCacheHits.Load(); got != res.Stats.DepCacheHits {
		t.Errorf("dep_cache_hits_total = %d, want %d (Stats)", got, res.Stats.DepCacheHits)
	}
	if got := pipe.DepCacheProbes.Load(); got != res.Stats.DepCacheProbes {
		t.Errorf("dep_cache_probes_total = %d, want %d (Stats)", got, res.Stats.DepCacheProbes)
	}
}

// TestTrackAccuracyTelemetry: with TrackAccuracy on, the default signature
// store reports live measured/predicted FPR gauges and conflict counters
// through the merge-time publication.
func TestTrackAccuracyTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := reg.Pipeline("t")
	s := NewSerial(Config{SlotsPerWorker: 1 << 12, TrackAccuracy: true, Metrics: pipe})
	for i := 0; i < 600; i++ {
		s.Access(event.Access{Addr: uint64(0x1000 + 8*i), Kind: event.Write, Loc: loc.Pack(1, 1)})
	}
	s.Flush()
	meas := pipe.SigFPRMeasuredPPM[0].Load()
	pred := pipe.SigFPRPredictedPPM[0].Load()
	if meas == 0 || pred == 0 {
		t.Fatalf("accuracy gauges not published: measured=%d predicted=%d", meas, pred)
	}
	// 600 distinct words into 4096 slots: measured occupancy ~146k ppm. At
	// this load factor the collision-free modulo occupancy and the uniform-
	// hash Eq. (2) prediction agree to ~1 point (they diverge as n/m grows).
	if meas < 120000 || meas > 170000 {
		t.Errorf("measured FPR = %d ppm, want ~146k", meas)
	}
	if diff := meas - pred; diff < -25000 || diff > 25000 {
		t.Errorf("measured %d vs predicted %d ppm differ too much", meas, pred)
	}
}

// TestTrackAccuracyConflicts: a store much smaller than the footprint must
// surface insert conflicts (evictions) on the conflict counter.
func TestTrackAccuracyConflicts(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := reg.Pipeline("t")
	s := NewSerial(Config{SlotsPerWorker: 64, TrackAccuracy: true, Metrics: pipe})
	for i := 0; i < 1000; i++ {
		s.Access(event.Access{Addr: uint64(0x1000 + 8*i), Kind: event.Write, Loc: loc.Pack(1, 1)})
	}
	s.Flush()
	if pipe.SigInsertConflicts.Load() == 0 {
		t.Error("no insert conflicts recorded on an overloaded signature")
	}
}

// TestTrackAccuracyExactStoreUnaffected: exact stores have no FPR question;
// TrackAccuracy must be a no-op for them.
func TestTrackAccuracyExactStoreUnaffected(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := reg.Pipeline("t")
	s := NewSerial(Config{Backend: "perfect", TrackAccuracy: true, Metrics: pipe})
	s.Access(event.Access{Addr: 0x1000, Kind: event.Write, Loc: loc.Pack(1, 1)})
	s.Flush()
	if pipe.SigFPRMeasuredPPM[0].Load() != 0 {
		t.Error("accuracy gauge published for an exact store")
	}
}
