package core

import (
	"ddprof/internal/dep"
	"ddprof/internal/prog"
	"ddprof/internal/sig"
	"ddprof/internal/telemetry"

	"ddprof/internal/event"

	// Every built-in store backend registers with the sig registry here, so
	// any Config.Backend spec resolves in any binary or daemon session.
	_ "ddprof/internal/hashtab"
	_ "ddprof/internal/shadow"
)

// Profiler is the uniform surface of all profiler variants. Access is the
// instrumentation entry point called once per memory access of the target;
// AccessBatch is the bulk-ingest seam remote sessions feed decoded trace
// batches through; Flush drains the pipeline and returns the merged result.
// For the serial and parallel (sequential-target) profilers Access and
// AccessBatch must be called from a single goroutine; the multi-threaded-
// target profiler accepts concurrent callers.
type Profiler interface {
	Access(a event.Access)
	// AccessBatch ingests one decoded batch: accesses holds point events plus
	// RangeRef slots whose Addr indexes into ranges — the event.Chunk layout.
	// Only data and Remove point kinds (plus RangeRef) may appear; control
	// kinds, EpochMark included, are the caller's to handle between batches.
	// The resulting profile is byte-identical to the equivalent sequence of
	// Access/AccessRange calls.
	AccessBatch(accesses []event.Access, ranges []event.Range)
	Flush() *Result
}

// Result is the merged output of a profiling run.
type Result struct {
	// Deps is the merged dependence set.
	Deps *dep.Set
	// Loops maps static loops to their carried dependences.
	Loops map[prog.LoopID]*LoopDeps
	// Carried maps static loops to their merged carried-key tables — the
	// sets Loops summarizes. Live-observatory consumers query them ("what
	// does loop L carry") and extract the final unshipped delta remainder;
	// they share the merged storage, so Release them with the Result.
	Carried map[prog.LoopID]*dep.Set
	// Stats describes the run itself.
	Stats RunStats
	// WorkerEvents lists per-worker processed access counts (parallel
	// modes), the quantity the §IV-A load-balancing discussion is about.
	WorkerEvents []uint64
}

// RunStats reports pipeline counters and memory accounting.
type RunStats struct {
	// Accesses is the number of read/write events processed.
	Accesses uint64
	// Chunks is the number of data chunks pushed to workers (0 for serial).
	Chunks uint64
	// ControlChunks is the number of control-only chunk pushes
	// (migrate/install/flush sentinels); kept apart from Chunks so
	// events-per-chunk throughput math stays honest.
	ControlChunks uint64
	// DupCollapsed is the number of consecutive duplicate reads collapsed
	// into repetition counts — by the producer before chunking (sequential
	// targets) or by the consumer while draining its ring (MT targets). The
	// collapsed accesses still count in Accesses and in every dependence
	// count.
	DupCollapsed uint64
	// DepCacheHits / DepCacheProbes report the engines' instance-cache
	// performance: a hit records a dependence instance without any map
	// operation.
	DepCacheHits   uint64
	DepCacheProbes uint64
	// Migrations is the number of address redistributions performed.
	Migrations uint64
	// Redistributions is the number of rebalance rounds that moved at
	// least one address.
	Redistributions uint64
	// Ranges is the number of compressed strided runs emitted by the
	// producer's SD3 stride detection (or ingested pre-compressed from a
	// trace); RangeElements the accesses they stand for. Both are zero with
	// Config.NoStrideCompression set. Range elements still count in Accesses
	// and in every dependence count.
	Ranges        uint64
	RangeElements uint64
	// StoreBytes is the actual memory held by all access-history stores.
	StoreBytes uint64
	// StoreModeledBytes is the same under the paper's 4 B/slot model.
	StoreModeledBytes uint64
	// QueueBytes is the memory held by the pipeline queues and chunks.
	QueueBytes uint64
}

// Config configures a profiler. The zero value describes a serial profiler
// with default store sizing; Mode (or a typed constructor) selects the
// variant and the remaining fields compose the pipeline stages.
type Config struct {
	// Mode selects the profiler variant when constructing through New.
	// The typed constructors (NewSerial, NewParallel, NewMT, NewExistence)
	// set it themselves.
	Mode Mode
	// Workers is the number of profiling worker threads (parallel modes).
	Workers int
	// SlotsPerWorker is the signature size each worker uses. The paper's
	// reference configuration is 6.25e6 slots per worker × 16 workers =
	// 1e8 slots total (§VI-B2).
	SlotsPerWorker int
	// Backend selects the access-history store by spec string, resolved
	// through the sig backend registry: "signature", "perfect", "shadow",
	// "hashtab", "hybrid:slots=1m,exact=4096", ... Empty selects the default
	// signature backend; SlotsPerWorker sizes slot parameters the spec
	// leaves out. A bad spec fails construction with a descriptive error.
	Backend string
	// Meta enables loop-carried classification when non-nil.
	Meta *prog.Meta
	// LockBased selects mutex-protected queues instead of lock-free ones
	// (the Figure 5 ablation baseline).
	LockBased bool
	// RaceCheck enables timestamp-reversal detection (§V-B).
	RaceCheck bool
	// QueueCap is the per-worker queue capacity in chunks (sequential-target
	// mode) or accesses (MT mode). Defaults to 64 chunks / 4Ki accesses.
	QueueCap int
	// RedistributeEvery triggers a load-balance check every N chunks
	// (paper: 50,000); in MT mode, every N×ChunkSize accesses, keeping the
	// cadence comparable across modes. 0 disables redistribution.
	RedistributeEvery int
	// NoFastPath disables the hot-path optimizations — the engines' instance
	// cache and the duplicate-read filter. The profile is byte-identical
	// either way (the equivalence suite holds both paths to that); the flag
	// exists for A/B measurement (exp.Throughput) and tests.
	NoFastPath bool
	// Metrics, when non-nil, receives live pipeline telemetry (events in,
	// queue depths, chunk recycling, redistributions, signature occupancy,
	// stage latency histograms). Counters are bumped at chunk granularity so
	// the hot path stays cheap; nil costs nothing.
	Metrics *telemetry.Pipeline
	// SampleEvery is the stage-latency sampling rate: one in SampleEvery
	// chunk pushes / worker batches is timed into the Metrics histograms.
	// Defaults to 32; irrelevant when Metrics is nil. Sampling (rather than
	// timing every chunk) is what keeps the flight recorder inside the
	// bench-gate's throughput budget.
	SampleEvery int
	// NoStrideCompression disables SD3 range compression in the chunked
	// parallel producer (rangecomp.go) — the A/B switch of the stride
	// ingestion work. Profiles are byte-identical either way over exact
	// stores (the golden fixtures and the equivalence suite hold both paths
	// to that); over the approximate Signature the two paths may resolve
	// hash-slot collisions between distinct addresses differently, the error
	// class Eq. (2) already models. No effect on serial/MT/existence modes,
	// which never compress.
	NoStrideCompression bool
	// TrackAccuracy enables live Eq. (2) accuracy telemetry on workers whose
	// store is a sig.Signature: slot-conflict counters plus measured vs
	// predicted false-positive gauges per worker (sig_fpr_measured_ppm /
	// sig_fpr_predicted_ppm). Costs ~8 bytes/slot of tracking state and one
	// branch per store operation; off by default.
	TrackAccuracy bool
	// OnEpochDelta receives each worker's epoch-delta extraction when the
	// profiler's EpochMark is driven (see EpochMarker). Callbacks arrive on
	// worker goroutines — concurrently in parallel modes — and own the
	// delta's sets. Nil disables extraction: EpochMark becomes a no-op and
	// the epoch machinery costs nothing.
	OnEpochDelta func(*EpochDelta)
	// TrackBounds enables per-variable address-interval tracking in every
	// engine (two compares per data access), feeding the address-range
	// provenance query and EpochDelta.Bounds. Off by default.
	TrackBounds bool
}

// store builds one worker store from the Backend spec.
func (c *Config) store() (sig.Store, error) {
	st, err := sig.OpenStore(c.Backend, c.SlotsPerWorker)
	if err != nil {
		return nil, err
	}
	if c.TrackAccuracy {
		// Only stores with an approximate component have an accuracy question
		// to answer (the signature, the hybrid via its tail); exact stores
		// pass through.
		if t, ok := st.(sig.Tracker); ok {
			t.EnableTracking()
		}
	}
	return st, nil
}

// Serial is the single-threaded profiler of §III: the target program and
// Algorithm 1 run on the same thread. As a pipeline composition it is the
// degenerate case — one worker, no transport (Access drives the engine
// inline), and the shared merge stage producing the Result.
type Serial struct {
	pl        pipeline
	eng       *Engine
	stats     RunStats
	m         *telemetry.Pipeline
	published uint64
	onDelta   func(*EpochDelta)
}

// NewSerial returns a serial profiler; it panics on an invalid Config (use
// New for an error return). In serial mode the whole signature budget
// (Workers×SlotsPerWorker if both set, else SlotsPerWorker) backs a single
// store.
func NewSerial(cfg Config) *Serial {
	s, err := newSerial(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func newSerial(cfg Config) (*Serial, error) {
	cfg, err := cfg.normalize(ModeSerial)
	if err != nil {
		return nil, err
	}
	if cfg.SlotsPerWorker > 0 && cfg.Workers > 1 {
		// The whole per-worker slot budget backs the single serial store. A
		// spec with an explicit slots parameter is unaffected: explicit
		// parameters win over the SlotsPerWorker default.
		cfg.SlotsPerWorker *= cfg.Workers
	}
	stores, err := makeStores(&cfg, 1)
	if err != nil {
		return nil, err
	}
	eng := NewEngine(stores[0], cfg.Meta, cfg.RaceCheck)
	if cfg.NoFastPath {
		eng.DisableCache()
	}
	if cfg.TrackBounds {
		eng.EnableBoundsTracking()
	}
	s := &Serial{eng: eng, m: cfg.Metrics, onDelta: cfg.OnEpochDelta}
	s.pl.m = cfg.Metrics
	s.pl.workers = []*worker{{eng: eng, m: cfg.Metrics}}
	return s, nil
}

// Access implements Profiler.
func (s *Serial) Access(a event.Access) {
	if a.Kind == event.Read || a.Kind == event.Write {
		s.stats.Accesses++
		// Publish to telemetry in batches so the per-access cost stays one
		// local increment.
		if s.m != nil && s.stats.Accesses-s.published >= 1024 {
			s.m.Events.Add(s.stats.Accesses - s.published)
			s.published = s.stats.Accesses
		}
	}
	s.eng.Process(a)
}

// AccessRange feeds a pre-compressed strided run (a DDT1 range record)
// through the serial engine: one bulk dispatch instead of Count Access
// calls. The profile is identical to feeding r.At(0..Count-1) in order.
func (s *Serial) AccessRange(r event.Range) {
	if r.Count == 0 {
		return
	}
	if r.Kind == event.Read || r.Kind == event.Write {
		s.stats.Accesses += uint64(r.Count)
		s.stats.Ranges++
		s.stats.RangeElements += uint64(r.Count)
		if s.m != nil {
			s.m.Ranges.Inc()
			s.m.RangeElements.Add(uint64(r.Count))
			if s.stats.Accesses-s.published >= 1024 {
				s.m.Events.Add(s.stats.Accesses - s.published)
				s.published = s.stats.Accesses
			}
		}
	}
	s.eng.ProcessRange(&r)
}

// AccessBatch implements Profiler: the whole batch drives the engine in one
// tight loop — no per-event interface dispatch — with access counting and
// telemetry publication amortized to one update per batch.
func (s *Serial) AccessBatch(accesses []event.Access, ranges []event.Range) {
	var data, rngs, relems uint64
	for i := range accesses {
		a := &accesses[i]
		if a.Kind == event.RangeRef {
			r := &ranges[a.Addr]
			if r.Count == 0 {
				continue
			}
			if r.Kind == event.Read || r.Kind == event.Write {
				data += uint64(r.Count)
				rngs++
				relems += uint64(r.Count)
			}
			s.eng.ProcessRange(r)
			continue
		}
		if a.Kind == event.Read || a.Kind == event.Write {
			// A collapsed read (Rep > 0) stands for 1+Rep accesses.
			data += 1 + uint64(a.Rep)
		}
		s.eng.Process(*a)
	}
	s.stats.Accesses += data
	s.stats.Ranges += rngs
	s.stats.RangeElements += relems
	if s.m != nil {
		if rngs > 0 {
			s.m.Ranges.Add(rngs)
			s.m.RangeElements.Add(relems)
		}
		if s.stats.Accesses-s.published >= 1024 {
			s.m.Events.Add(s.stats.Accesses - s.published)
			s.published = s.stats.Accesses
		}
	}
}

// Flush implements Profiler.
func (s *Serial) Flush() *Result {
	s.pl.beginFlush()
	if s.m != nil {
		s.m.Events.Add(s.stats.Accesses - s.published)
		s.published = s.stats.Accesses
	}
	return s.pl.merge(s.stats, 0, false)
}

// publishStoreTelemetry records the flush-time store gauges: the mean
// write-slot occupancy of stores that can report one (the signature, the
// hybrid's tail), the summed actual footprint of every store regardless of
// backend (satisfying /metrics for shadow page accounting as much as for
// slot arrays), and — for two-tier stores — the per-tier split plus the
// exact-resident census.
func publishStoreTelemetry(m *telemetry.Pipeline, stores ...sig.Store) {
	sum, n := 0.0, 0
	var bytes, exactBytes, tailBytes uint64
	resident, tiered := 0, false
	for _, st := range stores {
		if o, ok := st.(interface{ Occupancy() float64 }); ok {
			sum += o.Occupancy()
			n++
		}
		bytes += st.Bytes()
		if t, ok := st.(sig.Tiered); ok {
			e, tl := t.TierBytes()
			exactBytes += e
			tailBytes += tl
			resident += t.ExactResident()
			tiered = true
		}
	}
	if n > 0 {
		m.SigOccupancyPermille.Set(int64(sum / float64(n) * 1000))
	}
	m.StoreBytes.Set(int64(bytes))
	if tiered {
		m.StoreExactBytes.Set(int64(exactBytes))
		m.StoreTailBytes.Set(int64(tailBytes))
		m.StoreExactResident.Set(int64(resident))
	}
}
