package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/prog"
	"ddprof/internal/queue"
	"ddprof/internal/sig"
	"ddprof/internal/telemetry"
)

// chunkQueue is the queue surface the pipeline needs; satisfied by both the
// lock-free queue.SPSC and the lock-based queue.Locked, which is how the
// Figure 5 lock-based/lock-free ablation swaps implementations.
type chunkQueue interface {
	TryPush(*event.Chunk) bool
	TryPop() (*event.Chunk, bool)
	Push(*event.Chunk)
	Len() int
}

// migState is the signature state of one address in flight between workers
// during redistribution.
type migState struct {
	addr        uint64
	write, read sig.Slot
	wok, rok    bool
}

// Parallel is the profiler of §IV for sequential targets: the main (target)
// thread produces accesses, distributes them into per-worker chunks by
// address, and W workers detect dependences in disjoint address subsets
// using worker-local signatures and dependence maps.
//
// Access must be called from a single goroutine (the target is sequential);
// Flush drains the pipeline, joins the workers and merges their results.
type Parallel struct {
	cfg     Config
	w       int
	wMask   uint64 // w-1 when w is a power of two, else 0 (see ownerOf)
	workers []*pworker
	open    []*event.Chunk
	// lastIdx[w] is the index in open[w] of the last appended event, or -1
	// when the last slot is not mergeable (fresh chunk, post-control push).
	// The producer's duplicate filter collapses a read identical to that
	// event into its Rep count instead of appending a copy.
	lastIdx []int
	// redirect overrides the modulo rule for migrated addresses
	// ("redistribution rules are stored in a map and have higher priority
	// than the modulo function", §IV-A).
	redirect map[uint64]int
	heavy    *heavySketch
	sample   uint64

	chunksSinceCheck int
	allocatedChunks  uint64
	stats            RunStats
	dupPublished     uint64
	m                *telemetry.Pipeline
	wg               sync.WaitGroup
	flushed          bool
}

// pworker is one consumer thread of the pipeline.
type pworker struct {
	id      int
	in      chunkQueue
	recycle *queue.SPSC[*event.Chunk]
	eng     *Engine
	events  uint64

	// migration mailboxes (producer <-> this worker)
	migOut    atomic.Pointer[migState] // worker publishes state to producer
	installIn atomic.Pointer[migState] // producer publishes state to worker
}

// NewParallel builds the pipeline and starts the workers.
func NewParallel(cfg Config) *Parallel {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	qcap := cfg.QueueCap
	if qcap <= 0 {
		qcap = 64
	}
	p := &Parallel{
		cfg:      cfg,
		w:        cfg.Workers,
		wMask:    powerOfTwoMask(cfg.Workers),
		open:     make([]*event.Chunk, cfg.Workers),
		lastIdx:  make([]int, cfg.Workers),
		redirect: make(map[uint64]int),
		heavy:    newHeavySketch(64),
		m:        cfg.Metrics,
	}
	for i := 0; i < cfg.Workers; i++ {
		p.lastIdx[i] = -1
		var in chunkQueue
		if cfg.LockBased {
			in = queue.NewLocked[*event.Chunk](qcap)
		} else {
			in = queue.NewSPSC[*event.Chunk](qcap)
		}
		w := &pworker{
			id:      i,
			in:      in,
			recycle: queue.NewSPSC[*event.Chunk](qcap),
			eng:     NewEngine(cfg.store(), cfg.Meta, cfg.RaceCheck),
		}
		if cfg.NoFastPath {
			w.eng.DisableCache()
		}
		p.workers = append(p.workers, w)
		p.open[i] = p.newChunk(w)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			w.run()
		}()
	}
	return p
}

// owner maps an address to its worker. The paper uses `address % W`
// (Equation 1) on byte addresses; our substrate allocates 8-byte words, so
// the three alignment bits are shifted out first to keep the distribution
// even.
func (p *Parallel) owner(addr uint64) int {
	if w, ok := p.redirect[addr]; ok {
		return w
	}
	return ownerOf(addr, p.w, p.wMask)
}

// ownerOf is the modulo rule of Equation 1. Worker counts are powers of two
// in practice (they default to GOMAXPROCS but benchmarks and deployments pin
// 2/4/8/16), and for those the modulo is a mask — sparing the hot producer
// path a hardware divide per access, which profiling showed as a measurable
// slice of the distribution cost. The mapping is bit-identical to the modulo.
func ownerOf(addr uint64, w int, wMask uint64) int {
	if wMask != 0 {
		return int((addr >> 3) & wMask)
	}
	return int((addr >> 3) % uint64(w))
}

// powerOfTwoMask returns w-1 if w is a power of two, else 0.
func powerOfTwoMask(w int) uint64 {
	if w > 0 && w&(w-1) == 0 {
		return uint64(w - 1)
	}
	return 0
}

// Access implements Profiler.
func (p *Parallel) Access(a event.Access) {
	if a.Kind == event.Read || a.Kind == event.Write {
		p.stats.Accesses++
		// Sample the access statistics: every 16th access keeps producer
		// overhead bounded while heavily accessed addresses still dominate
		// the sketch. The sketch is only ever consumed by rebalance(), so
		// with redistribution disabled (the default) sampling is skipped
		// entirely.
		if p.cfg.RedistributeEvery > 0 {
			if p.sample++; p.sample&15 == 0 {
				p.heavy.Offer(a.Addr)
			}
		}
	}
	// Owner computation is inlined on the hot path: the redirect map is only
	// populated once a rebalance has migrated an address (redistribution is
	// off by default), so the common case pays no map probe at all.
	w := ownerOf(a.Addr, p.w, p.wMask)
	if len(p.redirect) != 0 {
		if r, ok := p.redirect[a.Addr]; ok {
			w = r
		}
	}
	c := p.open[w]
	if a.Kind == event.Read && !p.cfg.NoFastPath {
		// Duplicate filter: a read identical to the worker's previous event
		// (same statement re-reading the same word within one iteration) is
		// collapsed into that event's repetition count. Any intervening
		// access to the same address routes to the same worker and resets
		// the match, so the collapse is exact: the engine replays the
		// multiplicity and the profile is byte-identical.
		if li := p.lastIdx[w]; li >= 0 {
			last := &c.Events[li]
			if last.Kind == event.Read && last.Rep != event.MaxRep {
				cmp := *last
				cmp.Rep = 0
				if cmp == a {
					last.Rep++
					p.stats.DupCollapsed++
					return
				}
			}
		}
	}
	c.Append(a)
	p.lastIdx[w] = c.Len() - 1
	if c.Full() {
		p.pushOpen(w)
		if p.cfg.RedistributeEvery > 0 {
			p.chunksSinceCheck++
			if p.chunksSinceCheck >= p.cfg.RedistributeEvery {
				p.chunksSinceCheck = 0
				p.rebalance()
			}
		}
	}
}

// newChunk takes a recycled chunk if available, else allocates.
func (p *Parallel) newChunk(w *pworker) *event.Chunk {
	if c, ok := w.recycle.TryPop(); ok {
		if p.m != nil {
			p.m.ChunksRecycled.Inc()
		}
		return c
	}
	p.allocatedChunks++
	if p.m != nil {
		p.m.ChunksAllocated.Inc()
	}
	return event.NewChunk()
}

// pushOpen sends worker w's open chunk and opens a fresh one.
func (p *Parallel) pushOpen(w int) {
	c := p.open[w]
	p.lastIdx[w] = -1
	if c.Len() == 0 {
		return
	}
	n := c.Len()
	p.workers[w].in.Push(c)
	p.stats.Chunks++
	if p.m != nil {
		p.m.Events.Add(uint64(n))
		p.m.Chunks.Inc()
		if d := p.stats.DupCollapsed - p.dupPublished; d > 0 {
			p.m.DupCollapsed.Add(d)
			p.dupPublished = p.stats.DupCollapsed
		}
		// Depth right after the push; the pushed chunk may already have been
		// consumed, so count it in to keep the gauge a lower bound of the
		// burst the worker saw.
		d := int64(p.workers[w].in.Len())
		if d == 0 {
			d = 1
		}
		p.m.QueueDepth[w%telemetry.MaxWorkerSlots].Set(d)
		p.m.QueueDepthMax.SetMax(d)
	}
	p.open[w] = p.newChunk(p.workers[w])
}

// rebalance checks whether the top heavy hitters are spread evenly over the
// workers and migrates them if not (§IV-A).
func (p *Parallel) rebalance() {
	top := p.heavy.Top(10)
	if len(top) == 0 {
		return
	}
	counts := make([]int, p.w)
	for _, a := range top {
		counts[p.owner(a)]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min <= 1 {
		return // already even
	}
	moved := false
	for rank, addr := range top {
		want := rank % p.w
		if cur := p.owner(addr); cur != want {
			p.migrate(addr, cur, want)
			moved = true
		}
	}
	if moved {
		p.stats.Redistributions++
		if p.m != nil {
			p.m.Redistributions.Inc()
		}
	}
}

// migrate moves one address and its signature state from worker `from` to
// worker `to`. The protocol preserves the per-address total order:
//
//  1. All accesses routed so far are in from's queue; a MIGRATE control
//     event is pushed behind them, so `from` processes it only after every
//     earlier access.
//  2. `from` publishes the address's slot state in its mailbox and forgets
//     the address; the producer spins for the mailbox.
//  3. The producer hands the state to `to` via its install mailbox and
//     pushes an INSTALL control event; accesses routed after the redirect
//     update follow INSTALL in `to`'s queue, preserving order.
func (p *Parallel) migrate(addr uint64, from, to int) {
	fw, tw := p.workers[from], p.workers[to]

	// Step 1: flush pending accesses, then MIGRATE. Control chunks count as
	// ControlChunks, not Chunks: they carry no accesses, so folding them into
	// the data-chunk count would skew events-per-chunk throughput math.
	p.pushOpen(from)
	mc := p.newChunk(fw)
	mc.Append(event.Access{Addr: addr, Kind: event.Migrate})
	fw.in.Push(mc)
	p.stats.ControlChunks++

	// Step 2: wait for the state.
	var st *migState
	for {
		if st = fw.migOut.Swap(nil); st != nil {
			break
		}
		runtime.Gosched()
	}

	// Step 3: install at the destination. The install mailbox must be free:
	// wait until the previous installation (if any) was consumed.
	for !tw.installIn.CompareAndSwap(nil, st) {
		runtime.Gosched()
	}
	p.pushOpen(to)
	ic := p.newChunk(tw)
	ic.Append(event.Access{Addr: addr, Kind: event.Install})
	tw.in.Push(ic)
	p.stats.ControlChunks++

	p.redirect[addr] = to
	p.stats.Migrations++
	if p.m != nil {
		p.m.Migrations.Inc()
	}
}

// Flush implements Profiler.
func (p *Parallel) Flush() *Result {
	if p.flushed {
		panic("core: Flush called twice")
	}
	p.flushed = true
	for i := range p.workers {
		p.pushOpen(i)
		fc := p.newChunk(p.workers[i])
		fc.Append(event.Access{Kind: event.Flush})
		p.workers[i].in.Push(fc)
		p.stats.ControlChunks++
	}
	p.wg.Wait()

	// Merge worker-local results into a global map; "this step incurs only
	// minor overhead since the local maps are free of duplicates" (§IV).
	// Loop aggregates merge at key-set granularity: the same carried key may
	// surface on several workers (same source lines, different addresses)
	// and must not be double-counted.
	res := &Result{
		Deps:  dep.NewSet(),
		Stats: p.stats,
	}
	aggs := make(map[prog.LoopID]*loopAgg)
	for _, w := range p.workers {
		res.Deps.Merge(w.eng.Deps())
		mergeLoopAggs(aggs, w.eng.loops)
		res.Stats.StoreBytes += w.eng.Store().Bytes()
		res.Stats.StoreModeledBytes += w.eng.Store().ModeledBytes()
		hits, probes := w.eng.CacheStats()
		res.Stats.DepCacheHits += hits
		res.Stats.DepCacheProbes += probes
		res.WorkerEvents = append(res.WorkerEvents, w.events)
	}
	res.Loops = loopDepsOf(aggs)
	const chunkBytes = event.ChunkSize*48 + 64
	res.Stats.QueueBytes = p.allocatedChunks * chunkBytes
	if p.m != nil {
		p.m.DepCacheHits.Add(res.Stats.DepCacheHits)
		p.m.DepCacheProbes.Add(res.Stats.DepCacheProbes)
		if d := p.stats.DupCollapsed - p.dupPublished; d > 0 {
			p.m.DupCollapsed.Add(d)
			p.dupPublished = p.stats.DupCollapsed
		}
		stores := make([]sig.Store, len(p.workers))
		for i, w := range p.workers {
			stores[i] = w.eng.Store()
		}
		publishOccupancy(p.m, stores...)
	}
	return res
}

// run is the worker loop: fetch chunks, analyze them, recycle them
// ("worker threads consume chunks from their queues, analyze them, and
// store detected data dependences in thread-local maps. Empty chunks are
// recycled", §IV).
func (w *pworker) run() {
	for spin := 0; ; {
		c, ok := w.in.TryPop()
		if !ok {
			spin++
			if spin > 64 {
				runtime.Gosched()
			}
			continue
		}
		spin = 0
		done := false
		for i := range c.Events {
			ev := &c.Events[i]
			switch ev.Kind {
			case event.Flush:
				done = true
			case event.Migrate:
				st := &migState{addr: ev.Addr}
				st.write, st.wok = w.eng.Store().LookupWrite(ev.Addr)
				st.read, st.rok = w.eng.Store().LookupRead(ev.Addr)
				w.eng.Store().Remove(ev.Addr)
				w.migOut.Store(st)
			case event.Install:
				var st *migState
				for {
					if st = w.installIn.Swap(nil); st != nil {
						break
					}
					runtime.Gosched()
				}
				if st.wok {
					w.eng.Store().SetWrite(st.addr, st.write)
				}
				if st.rok {
					w.eng.Store().SetRead(st.addr, st.read)
				}
			default:
				// A collapsed read stands for 1+Rep target accesses; count
				// them all so WorkerEvents keeps reporting the §IV-A
				// load-balance quantity (logical accesses per worker).
				w.events += 1 + uint64(ev.Rep)
				w.eng.Process(*ev)
			}
		}
		c.Reset()
		w.recycle.TryPush(c) // if the recycle ring is full, let GC take it
		if done {
			return
		}
	}
}
