package core

import (
	"ddprof/internal/event"
)

// Parallel is the profiler of §IV for sequential targets: the main (target)
// thread produces accesses, distributes them into per-worker chunks by
// address, and W workers detect dependences in disjoint address subsets
// using worker-local signatures and dependence maps.
//
// It is the canonical pipeline composition: the shared producer stage
// (address routing, duplicate filter, heavy-hitter redistribution) over
// chunked transports into engine workers, merged by the shared merge stage.
//
// Access must be called from a single goroutine (the target is sequential);
// Flush drains the pipeline, joins the workers and merges their results.
type Parallel struct {
	pl pipeline
	pr producer
}

// NewParallel builds the pipeline and starts the workers; it panics on an
// invalid Config (use New for an error return).
func NewParallel(cfg Config) *Parallel {
	p, err := newParallel(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func newParallel(cfg Config) (*Parallel, error) {
	cfg, err := cfg.normalize(ModeParallel)
	if err != nil {
		return nil, err
	}
	stores, err := makeStores(&cfg, cfg.Workers)
	if err != nil {
		return nil, err
	}
	p := &Parallel{}
	p.pl.m = cfg.Metrics
	for i := 0; i < cfg.Workers; i++ {
		eng := NewEngine(stores[i], cfg.Meta, cfg.RaceCheck)
		if cfg.NoFastPath {
			eng.DisableCache()
		}
		if cfg.TrackBounds {
			eng.EnableBoundsTracking()
		}
		p.pl.workers = append(p.pl.workers, &worker{
			id:          i,
			tr:          newChunkTransport(cfg.LockBased, cfg.QueueCap),
			eng:         eng,
			m:           cfg.Metrics,
			sampleEvery: uint64(cfg.SampleEvery),
			onDelta:     cfg.OnEpochDelta,
		})
	}
	p.pl.startAll()
	p.pr.init(&p.pl, &cfg, false)
	return p, nil
}

// Access implements Profiler.
func (p *Parallel) Access(a event.Access) { p.pr.access(a) }

// AccessRange feeds a pre-compressed strided run (a DDT1 range record) into
// the pipeline. The producer splits it along the owner mask so per-address
// routing — and therefore the profile — is exactly what Count Access calls
// would produce; when splitting doesn't apply the run is expanded through
// the point path. Single-goroutine, like Access.
func (p *Parallel) AccessRange(r event.Range) { p.pr.accessRange(&r) }

// AccessBatch implements Profiler: one decoded batch through the producer
// with the per-event counting and sketch bookkeeping amortized per batch.
// Every slot takes the same routing/dup-collapse/re-compression paths as
// Access and AccessRange, so the profile is byte-identical. Single-goroutine,
// like Access.
func (p *Parallel) AccessBatch(accesses []event.Access, ranges []event.Range) {
	p.pr.putBatch(accesses, ranges)
}

// Flush implements Profiler.
func (p *Parallel) Flush() *Result {
	p.pl.beginFlush()
	p.pr.drainFlush()
	p.pl.wg.Wait()
	return p.pl.merge(p.pr.stats, p.pr.allocatedChunks*chunkBytes, false)
}
