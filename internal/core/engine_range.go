package core

// The Engine's bulk path for compressed strided runs. A range's elements
// share every field but address and iteration vector, so the per-instruction
// work of the point path — slot packing, flag decoding, the INIT key — is
// hoisted out of the element loop, the store walk goes through the
// division-free sig.RunVisitor when the store supports it, and consecutive
// identical dependence classifications are batched into single record calls
// (the same instance redundancy the §III-B dependence merging exploits, one
// level earlier). Over any store the produced profile is element-for-element
// what Process(r.At(0)) .. Process(r.At(Count-1)) yields.

import (
	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/prog"
	"ddprof/internal/sig"
)

// pendObs is one batched dependence-observation lane: n pending instances of
// an identical classification, flushed when the classification changes.
type pendObs struct {
	key     dep.Key
	n       uint64
	carried prog.LoopID
	dist    uint32
	red     bool
	rev     bool
}

// rangeObs carries the per-range observation state: one lane per dependence
// type (the lane index is the dep.Type, so a run's steady state — the same
// static dependence firing every element — turns Count map-or-cache probes
// into one).
type rangeObs struct {
	e    *Engine
	pend [4]pendObs
}

func (o *rangeObs) observe(t dep.Type, k dep.Key, carried prog.LoopID, red, rev bool, dist uint32) {
	p := &o.pend[t]
	if p.n > 0 && p.key == k && p.carried == carried && p.red == red && p.rev == rev && p.dist == dist {
		p.n++
		return
	}
	if p.n > 0 {
		o.e.record(p.key, t, p.carried, p.red, p.rev, p.dist, p.n)
	}
	*p = pendObs{key: k, n: 1, carried: carried, dist: dist, red: red, rev: rev}
}

func (o *rangeObs) flush() {
	for t := range o.pend {
		if p := &o.pend[t]; p.n > 0 {
			o.e.record(p.key, dep.Type(t), p.carried, p.red, p.rev, p.dist, p.n)
			p.n = 0
		}
	}
}

// ProcessRange runs a compressed strided run through Algorithm 1: one
// dispatch, then a tight per-address loop. Dependence records may be emitted
// in batched order rather than element order; every aggregate they feed
// (dep.Stats, the per-loop carried tables) is commutative, so the profile is
// identical to the per-element path.
func (e *Engine) ProcessRange(r *event.Range) {
	if r.Count == 0 {
		return
	}
	if r.Kind != event.Read && r.Kind != event.Write {
		if r.Kind == event.Remove {
			addr := r.Base
			for j := uint32(0); j < r.Count; j++ {
				e.store.Remove(addr)
				addr += r.Stride
			}
		}
		return
	}

	if e.trackBounds {
		e.noteBoundsRange(r.Var, r.Base, r.Stride, r.Count)
	}

	// The element template: everything but Addr/IterVec is shared. snk.Addr
	// is never read below (classification depends on location, context and
	// iteration only), so the loop advances just the iteration vector.
	snk := event.Access{
		TS: r.TS, IterVec: r.IterVec,
		Loc: r.Loc, Var: r.Var, CtxID: r.CtxID,
		Thread: r.Thread, Kind: r.Kind, Flags: r.Flags,
	}
	tmpl := e.slotFor(&snk)
	obs := rangeObs{e: e}
	rv, bulk := e.store.(sig.RunVisitor)

	if r.Kind == event.Write {
		initKey := dep.Key{
			Type: dep.INIT,
			Sink: r.Loc, SinkThread: int16(r.Thread),
			Var: r.Var,
		}
		elem := func(j uint32, wslot, rslot sig.Slot) sig.Slot {
			snk.IterVec = r.IterVec + uint64(j)*r.IterDelta
			if wslot.Empty() {
				obs.observe(dep.INIT, initKey, prog.NoLoop, false, false, 0)
			} else {
				k, ca, red, rev, d := e.classify(dep.WAW, wslot, &snk)
				obs.observe(dep.WAW, k, ca, red, rev, d)
			}
			if !rslot.Empty() {
				k, ca, red, rev, d := e.classify(dep.WAR, rslot, &snk)
				obs.observe(dep.WAR, k, ca, red, rev, d)
			}
			s := tmpl
			s.Iter = snk.IterVec
			return s
		}
		if !bulk || !rv.VisitWriteRun(r.Base, r.Stride, r.Count, elem) {
			addr := r.Base
			for j := uint32(0); j < r.Count; j++ {
				wslot, _ := e.store.LookupWrite(addr)
				rslot, _ := e.store.LookupRead(addr)
				e.store.SetWrite(addr, elem(j, wslot, rslot))
				addr += r.Stride
			}
		}
	} else {
		elem := func(j uint32, wslot sig.Slot) sig.Slot {
			snk.IterVec = r.IterVec + uint64(j)*r.IterDelta
			if !wslot.Empty() {
				k, ca, red, rev, d := e.classify(dep.RAW, wslot, &snk)
				obs.observe(dep.RAW, k, ca, red, rev, d)
			}
			s := tmpl
			s.Iter = snk.IterVec
			return s
		}
		if !bulk || !rv.VisitReadRun(r.Base, r.Stride, r.Count, elem) {
			addr := r.Base
			for j := uint32(0); j < r.Count; j++ {
				wslot, _ := e.store.LookupWrite(addr)
				e.store.SetRead(addr, elem(j, wslot))
				addr += r.Stride
			}
		}
	}
	obs.flush()
}
