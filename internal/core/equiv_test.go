package core

import (
	"fmt"
	"testing"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
)

// equivStream is one workload of the fast-vs-slow equivalence suite: a
// deterministic access stream plus the loop metadata to classify it.
type equivStream struct {
	name string
	meta *prog.Meta
	evs  []event.Access
}

// equivSuite builds streams covering every hot-path special case: carried
// RAW/WAR/WAW, reductions, induction self-dependences, consecutive duplicate
// reads (the producer filter's target), variable lifetime, nested loops, and
// timestamped cross-thread accesses.
func equivSuite() []equivStream {
	var suite []equivStream

	{
		// Carried RAW at distance 1 plus within-iteration RAW, over a window
		// of addresses so every worker owns some of the stream.
		m := prog.NewMeta()
		l := m.AddLoop(prog.Loop{Name: "carried"})
		ctx := m.PushCtx(0, l)
		var evs []event.Access
		for it := uint32(0); it < 200; it++ {
			iv := event.PackIterVec([]uint32{it})
			a := 0x1000 + uint64(it%64)*8
			if it > 0 {
				prev := 0x1000 + uint64((it-1)%64)*8
				evs = append(evs, event.Access{Addr: prev, Kind: event.Read, Loc: loc.Pack(1, 10), CtxID: ctx, IterVec: iv})
			}
			evs = append(evs,
				event.Access{Addr: a, Kind: event.Write, Loc: loc.Pack(1, 11), CtxID: ctx, IterVec: iv},
				event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(1, 12), CtxID: ctx, IterVec: iv})
		}
		suite = append(suite, equivStream{"carried-raw", m, evs})
	}

	{
		// Reduction and induction flags: sum += a[i]; i++ per iteration,
		// with the duplicate-read shape (same read repeated back to back).
		m := prog.NewMeta()
		l := m.AddLoop(prog.Loop{Name: "reduce"})
		ctx := m.PushCtx(0, l)
		var evs []event.Access
		const sum, ind = 0x8000, 0x8008
		for it := uint32(0); it < 150; it++ {
			iv := event.PackIterVec([]uint32{it})
			a := 0x2000 + uint64(it)*8
			evs = append(evs,
				event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(2, 20), CtxID: ctx, IterVec: iv},
				event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(2, 20), CtxID: ctx, IterVec: iv},
				event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(2, 20), CtxID: ctx, IterVec: iv},
				event.Access{Addr: sum, Kind: event.Read, Loc: loc.Pack(2, 21), CtxID: ctx, IterVec: iv, Flags: event.FlagReduction},
				event.Access{Addr: sum, Kind: event.Write, Loc: loc.Pack(2, 21), CtxID: ctx, IterVec: iv, Flags: event.FlagReduction},
				event.Access{Addr: ind, Kind: event.Read, Loc: loc.Pack(2, 22), CtxID: ctx, IterVec: iv, Flags: event.FlagInduction},
				event.Access{Addr: ind, Kind: event.Write, Loc: loc.Pack(2, 22), CtxID: ctx, IterVec: iv, Flags: event.FlagInduction})
		}
		suite = append(suite, equivStream{"reduction-dups", m, evs})
	}

	{
		// Variable lifetime: write, free, re-write the same addresses; the
		// second write must be INIT, and the cache must not resurrect the
		// removed history.
		var evs []event.Access
		for i := 0; i < 50; i++ {
			a := 0x3000 + uint64(i%8)*8
			evs = append(evs,
				event.Access{Addr: a, Kind: event.Write, Loc: loc.Pack(3, 30)},
				event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(3, 31)},
				event.Access{Addr: a, Kind: event.Remove},
				event.Access{Addr: a, Kind: event.Write, Loc: loc.Pack(3, 32)})
		}
		suite = append(suite, equivStream{"lifetime", prog.NewMeta(), evs})
	}

	{
		// Two-level nest: the inner loop carries one dependence, the outer
		// another, exercising the multi-lane iteration-vector compare.
		m := prog.NewMeta()
		lo := m.AddLoop(prog.Loop{Name: "outer"})
		li := m.AddLoop(prog.Loop{Name: "inner"})
		octx := m.PushCtx(0, lo)
		ictx := m.PushCtx(octx, li)
		var evs []event.Access
		for o := uint32(0); o < 12; o++ {
			for i := uint32(0); i < 12; i++ {
				iv := event.PackIterVec([]uint32{o, i})
				inner := 0x4000 + uint64(i%4)*8
				outer := 0x5000 + uint64(o%4)*8
				evs = append(evs,
					event.Access{Addr: inner, Kind: event.Write, Loc: loc.Pack(4, 40), CtxID: ictx, IterVec: iv},
					event.Access{Addr: inner, Kind: event.Read, Loc: loc.Pack(4, 41), CtxID: ictx, IterVec: iv},
					event.Access{Addr: outer, Kind: event.Write, Loc: loc.Pack(4, 42), CtxID: ictx, IterVec: iv})
			}
		}
		suite = append(suite, equivStream{"nested", m, evs})
	}

	{
		// Cross-thread accesses with timestamp reversals (MT race check).
		var evs []event.Access
		ts := uint64(1)
		for i := 0; i < 80; i++ {
			a := 0x6000 + uint64(i%16)*8
			w := event.Access{Addr: a, Kind: event.Write, Loc: loc.Pack(5, 50), Thread: int32(i % 3), TS: ts + 2}
			r := event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(5, 51), Thread: int32((i + 1) % 3), TS: ts}
			ts += 3
			evs = append(evs, w, r) // read's TS precedes the write's: reversed
		}
		suite = append(suite, equivStream{"threads-ts", prog.NewMeta(), evs})
	}

	return suite
}

// feed pushes a stream through a profiler and flushes.
func feed(p Profiler, evs []event.Access) *Result {
	for _, a := range evs {
		p.Access(a)
	}
	return p.Flush()
}

// requireSameProfile asserts two results are byte-identical in everything
// user-visible: the dependence set with all Stats fields, and LoopDeps.
func requireSameProfile(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Deps.Unique() != got.Deps.Unique() {
		t.Fatalf("%s: unique deps %d vs %d", label, want.Deps.Unique(), got.Deps.Unique())
	}
	want.Deps.Range(func(k dep.Key, st dep.Stats) bool {
		gst, ok := got.Deps.Lookup(k)
		if !ok {
			t.Errorf("%s: missing dep %+v", label, k)
			return false
		}
		if gst != st {
			t.Errorf("%s: stats mismatch for %+v:\n want %+v\n got  %+v", label, k, st, gst)
			return false
		}
		return true
	})
	if len(want.Loops) != len(got.Loops) {
		t.Fatalf("%s: LoopDeps loops %d vs %d", label, len(want.Loops), len(got.Loops))
	}
	for id, wld := range want.Loops {
		gld := got.Loops[id]
		if gld == nil {
			t.Fatalf("%s: loop %d missing from LoopDeps", label, id)
		}
		if *wld != *gld {
			t.Fatalf("%s: LoopDeps mismatch for loop %d:\n want %+v\n got  %+v", label, id, *wld, *gld)
		}
	}
	if want.Stats.Accesses != got.Stats.Accesses {
		t.Errorf("%s: accesses %d vs %d", label, want.Stats.Accesses, got.Stats.Accesses)
	}
}

// TestFastSlowEquivalence holds the hot path to the ISSUE's bar: dependence
// sets and LoopDeps must be byte-identical with the instance cache and
// producer fast path enabled vs disabled, on every pipeline.
func TestFastSlowEquivalence(t *testing.T) {
	for _, s := range equivSuite() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			mk := func(kind string, noFast bool) Profiler {
				cfg := Config{
					Backend:    "perfect",
					Meta:       s.meta,
					NoFastPath: noFast,
				}
				switch kind {
				case "serial":
					return NewSerial(cfg)
				case "parallel":
					cfg.Workers = 3 // non-power-of-two: exercises the modulo owner path
					cfg.QueueCap = 4
					return NewParallel(cfg)
				case "mt":
					cfg.Workers = 2
					cfg.QueueCap = 256
					return NewMT(cfg)
				}
				panic(kind)
			}
			for _, kind := range []string{"serial", "parallel", "mt"} {
				slow := feed(mk(kind, true), s.evs)
				fast := feed(mk(kind, false), s.evs)
				if fast.Stats.DepCacheProbes == 0 {
					t.Errorf("%s: fast path recorded no cache probes", kind)
				}
				if slow.Stats.DepCacheProbes != 0 {
					t.Errorf("%s: slow path unexpectedly probed the cache", kind)
				}
				requireSameProfile(t, fmt.Sprintf("%s/%s", s.name, kind), slow, fast)
			}
		})
	}
}

// TestSerialParallelLoopDepsEquivalence pins the mergeLoopAggs semantics: a
// carried dependence whose instances land on several workers (same source
// lines, different addresses) must count once in LoopDeps, exactly as in a
// serial run — the double-count the per-worker count merge used to produce.
func TestSerialParallelLoopDepsEquivalence(t *testing.T) {
	for _, s := range equivSuite() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			serial := feed(NewSerial(Config{
				Backend: "perfect",
				Meta:    s.meta,
			}), s.evs)
			for _, workers := range []int{2, 3, 4} {
				par := feed(NewParallel(Config{
					Workers:  workers,
					QueueCap: 4,
					Backend:  "perfect",
					Meta:     s.meta,
				}), s.evs)
				requireSameProfile(t, fmt.Sprintf("%s/%dw", s.name, workers), serial, par)
			}
		})
	}
}

// TestLoopDepsNoDoubleCountAcrossWorkers is the sharpest form of the merge
// fix: one carried RAW spread over many addresses must report CarriedRAW == 1
// regardless of worker count.
func TestLoopDepsNoDoubleCountAcrossWorkers(t *testing.T) {
	m := prog.NewMeta()
	l := m.AddLoop(prog.Loop{Name: "spread"})
	ctx := m.PushCtx(0, l)
	var evs []event.Access
	for it := uint32(1); it < 100; it++ {
		iv := event.PackIterVec([]uint32{it})
		prev := 0x9000 + uint64(it-1)*8 // consecutive addresses: every worker owns some
		cur := 0x9000 + uint64(it)*8
		evs = append(evs,
			event.Access{Addr: prev, Kind: event.Read, Loc: loc.Pack(6, 60), CtxID: ctx, IterVec: iv},
			event.Access{Addr: cur, Kind: event.Write, Loc: loc.Pack(6, 61), CtxID: ctx, IterVec: iv})
	}
	// The first iteration writes too, so the read always has a source.
	evs = append([]event.Access{{Addr: 0x9000, Kind: event.Write, Loc: loc.Pack(6, 61), CtxID: ctx, IterVec: event.PackIterVec([]uint32{0})}}, evs...)

	for _, workers := range []int{1, 2, 4, 8} {
		res := feed(NewParallel(Config{
			Workers: workers,
			Backend: "perfect",
			Meta:    m,
		}), evs)
		ld := res.Loops[l]
		if ld == nil {
			t.Fatalf("workers=%d: no LoopDeps entry", workers)
		}
		if ld.CarriedRAW != 1 {
			t.Errorf("workers=%d: CarriedRAW = %d, want 1 (key-set union, not count sum)", workers, ld.CarriedRAW)
		}
		if ld.MinRAWDist != 1 {
			t.Errorf("workers=%d: MinRAWDist = %d, want 1", workers, ld.MinRAWDist)
		}
	}
}

// TestControlChunksNotCountedAsData pins the pushOpen metrics fix: flush and
// migration control pushes must land in ControlChunks, never in Chunks.
func TestControlChunksNotCountedAsData(t *testing.T) {
	p := NewParallel(Config{
		Workers: 2,
		Backend: "perfect",
	})
	p.Access(event.Access{Addr: 0x100, Kind: event.Write, Loc: loc.Pack(1, 1)})
	p.Access(event.Access{Addr: 0x108, Kind: event.Write, Loc: loc.Pack(1, 2)})
	res := p.Flush()
	// Two open chunks flushed as data + two flush sentinels as control.
	if res.Stats.Chunks != 2 {
		t.Errorf("Chunks = %d, want 2 (one partial data chunk per worker)", res.Stats.Chunks)
	}
	if res.Stats.ControlChunks != 2 {
		t.Errorf("ControlChunks = %d, want 2 (one flush sentinel per worker)", res.Stats.ControlChunks)
	}
}
