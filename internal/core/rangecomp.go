package core

// Range-compressed ingestion: SD3 stride detection (Kim, Kim, Luk — MICRO'10,
// the related-work §II compression the paper credits with taming profiling
// cost) fused into the §IV producer. Every array sweep used to travel the
// pipeline as one chunk slot per element, paying routing, slot, signature and
// dependence-set costs N times for what is a single (base, stride, count)
// fact; here the producer learns strides per instruction and rewrites
// confirmed runs into event.Range records in place, so a 10k-element sweep
// reaches its worker as a handful of range slots.
//
// Correctness contract: expanding every range, in element order, at its slot
// position must reproduce the per-address processing order of the
// uncompressed stream. Only the newest access ever moves — it is either
// absorbed at the tail of an instruction's open range, or merged with that
// instruction's immediately preceding point into a fresh two-element range —
// and each such move is legal only if no later event in the chunk touches the
// moved address. That is enforced by a per-owner last-touch table; all cached
// producer state (the direct-mapped instruction table, the last-touch cells)
// may alias, so every merge decision is additionally verified against the
// actual chunk content before it is applied. Profiles are therefore
// byte-identical with compression on and off over exact stores
// (Config.NoStrideCompression is the A/B switch, held to that by the golden
// fixtures and the equivalence suite); over the approximate Signature,
// reordering accesses to distinct addresses can at most flip which colliding
// access a shared slot retains — the same error class Eq. (2) already models.

import (
	"ddprof/internal/event"
	"ddprof/internal/stride"
)

const (
	// instrSlots sizes the direct-mapped per-instruction detector table. The
	// working set is the static instruction count of the profiled region ×
	// workers; collisions only evict detectors (missed compression), never
	// correctness, so the table is kept small enough to stay cache-resident.
	instrSlots = 1 << 9
	// touchCells sizes each owner's last-touch table. A cell holds the
	// position of the last chunk event whose address hashed there, so a
	// colliding address reads a position ≥ its true last touch — conservative
	// in the safe direction (merges are blocked, never wrongly allowed).
	touchCells = 1 << 11
	touchMask  = touchCells - 1
	// maxRangeCount caps producer-built runs; longer sweeps simply continue
	// in a fresh range. Bounded so a range always fits the wire encoding and
	// a single worker dispatch stays a bounded unit of work.
	maxRangeCount = 1<<16 - 1
)

// touchCell records the chunk position of the last event whose address
// hashed to this cell. epoch tags the open-chunk generation: a stale epoch
// reads as "never touched", which is exact (not just conservative) because
// previous chunks are fully pushed before the current one opens.
type touchCell struct {
	pos   int32
	epoch uint32
}

// ownerState is the per-owner compression state alongside the owner's open
// chunk.
type ownerState struct {
	// epoch is the open-chunk generation, bumped on every push. (A uint32
	// wrap after 2^32 pushes could let a stale cell alias a live one; at
	// 4096 events per chunk that is ~10^13 events per owner, and the chunk
	// content checks still bound the damage to a misplaced merge.)
	epoch uint32
	// floor is a conservative lower bound on every address's last touch,
	// raised when an opaque ingested sub-range is appended (its addresses
	// are not hashed individually); -1 when no floor applies.
	floor int32
	// pending counts the logical accesses buffered in the open chunk (a
	// range counts its element count), published as events_total on push so
	// the counter's meaning is unchanged by compression.
	pending uint64
	touch   [touchCells]touchCell
}

// lastTouch returns a position p such that no event after p in the open
// chunk touches addr (conservatively: collisions and the floor can only
// raise it). -1 means addr is untouched.
func (os *ownerState) lastTouch(addr uint64) int32 {
	p := os.floor
	if c := &os.touch[(addr>>3)&touchMask]; c.epoch == os.epoch && c.pos > p {
		p = c.pos
	}
	return p
}

// noteTouch records that addr was touched at chunk position pos.
func (os *ownerState) noteTouch(addr uint64, pos int32) {
	c := &os.touch[(addr>>3)&touchMask]
	if c.epoch != os.epoch || c.pos < pos {
		*c = touchCell{pos: pos, epoch: os.epoch}
	}
}

// instrEntry is one direct-mapped instruction-table entry: the embedded
// (by value — zero allocation, no pointer chase) stride FSM plus the cached
// chunk positions of this instruction's last appended point and open range.
type instrEntry struct {
	key       uint64
	epoch     uint32 // owner-chunk generation lastSlot/rangeSlot refer to
	lastSlot  int32  // slot of the last appended point; -1 none
	rangeSlot int32  // slot of the open RangeRef; -1 none
	rangeIdx  int32  // index into the open chunk's Ranges
	det       stride.Detector
}

// instrKey packs the fields that identify one instruction stream per owner.
// Var/CtxID are left out (they are verified against chunk content on every
// merge); the owner byte gives each owner its own detector, so the owner's
// strided subsequence — itself strided, with stride × workers — is what the
// FSM learns, and ranges never structurally cross the owner mask.
func instrKey(a *event.Access, w int) uint64 {
	return uint64(a.Loc) | uint64(uint8(a.Thread))<<32 |
		uint64(a.Kind)<<40 | uint64(uint8(w))<<48 | uint64(a.Flags)<<56
}

// instrIdx maps a key to its direct-mapped table slot.
func instrIdx(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> (64 - 9)
}

// compressAppend tries to place a — the newest access, routed to owner w —
// inside an existing or fresh strided range of its instruction instead of
// appending a point. It returns the instruction entry (so the caller can
// record the appended point's slot on the miss path) and whether a was
// absorbed. Caller guarantees: a.Kind is Read or Write, a.Rep == 0, and the
// duplicate-read filter already declined to collapse a.
func (pr *producer) compressAppend(a *event.Access, w int) (*instrEntry, bool) {
	c := pr.open[w]
	os := &pr.own[w]
	key := instrKey(a, w)
	ent := &pr.instr[instrIdx(key)]
	if ent.key != key {
		// Eviction: a colliding instruction owned the slot. Restart the FSM.
		*ent = instrEntry{key: key, lastSlot: -1, rangeSlot: -1}
	}
	if ent.epoch != os.epoch {
		ent.lastSlot, ent.rangeSlot = -1, -1
		ent.epoch = os.epoch
	}
	// a's touch cell serves both the legality check (last <= q: nothing after
	// the merge slot touched a.Addr) and, on success, the touch update — one
	// hash for both.
	cell := &os.touch[(a.Addr>>3)&touchMask]
	last := os.floor
	if cell.epoch == os.epoch && cell.pos > last {
		last = cell.pos
	}

	// Extension: the instruction has an open range in this chunk. The cached
	// slot/range linkage is re-verified against the chunk (the table is
	// direct-mapped and may alias) and the move is legal only if nothing
	// after the range's slot touches the new address. A successful extension
	// proves the detector's learned stride held (the range was built from it
	// and the previous access of this instruction landed on the same run), so
	// the FSM advances via the inline fast path; the full Track transition
	// runs only when the run breaks.
	if ent.rangeSlot >= 0 {
		q := ent.rangeSlot
		if int(q) < c.Len() && int(ent.rangeIdx) < len(c.Ranges) {
			slot := &c.Events[q]
			if slot.Kind == event.RangeRef && slot.Addr == uint64(ent.rangeIdx) {
				r := &c.Ranges[ent.rangeIdx]
				if r.Kind == a.Kind && r.Count < maxRangeCount &&
					a.Addr == r.Base+uint64(r.Count)*r.Stride &&
					a.TS == r.TS && a.Loc == r.Loc && a.Var == r.Var &&
					a.CtxID == r.CtxID && a.Thread == r.Thread && a.Flags == r.Flags &&
					a.IterVec == r.IterVec+uint64(r.Count)*r.IterDelta &&
					last <= q {
					r.Count++
					ent.det.Advance(a.Addr)
					*cell = touchCell{pos: q, epoch: os.epoch}
					os.pending++
					pr.stats.RangeElements++
					return ent, true
				}
			}
		}
		ent.rangeSlot = -1 // any mismatch closes the range
	}
	st := ent.det.Track(a.Addr)

	// Conversion: with a confirmed stride, the instruction's immediately
	// preceding point plus a become a two-element range, rewritten in place
	// at the point's slot. The point is verified field-for-field (a collapsed
	// read, Rep > 0, never compresses — its multiplicity is already exact).
	if st != stride.Learned || ent.lastSlot < 0 || c.RangesFull() {
		return ent, false
	}
	q := ent.lastSlot
	if int(q) >= c.Len() {
		return ent, false
	}
	sd, _ := ent.det.Stride()
	base := a.Addr - uint64(sd)
	p := &c.Events[q]
	if p.Kind != a.Kind || p.Addr != base || p.Rep != 0 ||
		p.TS != a.TS || p.Loc != a.Loc || p.Var != a.Var ||
		p.CtxID != a.CtxID || p.Thread != a.Thread || p.Flags != a.Flags ||
		last > q {
		return ent, false
	}
	idx := c.AppendRange(event.Range{
		Base: base, Stride: uint64(sd), Count: 2,
		TS: a.TS, IterVec: p.IterVec, IterDelta: a.IterVec - p.IterVec,
		Loc: a.Loc, Var: a.Var, CtxID: a.CtxID, Thread: a.Thread,
		Kind: a.Kind, Flags: a.Flags,
	})
	*p = event.Access{Kind: event.RangeRef, Addr: uint64(idx)}
	ent.rangeSlot, ent.rangeIdx, ent.lastSlot = q, int32(idx), -1
	*cell = touchCell{pos: q, epoch: os.epoch}
	os.pending++
	pr.stats.Ranges++
	pr.stats.RangeElements += 2
	return ent, true
}

// rangeSplittable reports whether r's addresses can be split exactly along
// the power-of-two owner mask: word-aligned stride and no 2^64 wraparound
// anywhere on the run (so (Base + j*Stride)>>3 decomposes linearly).
func rangeSplittable(r *event.Range) bool {
	if r.Stride%8 != 0 || r.Base%8 != 0 {
		return false
	}
	if r.Count < 2 {
		return true
	}
	n := uint64(r.Count - 1)
	if s := int64(r.Stride); s >= 0 {
		return s == 0 || n <= (^uint64(0)-r.Base)/uint64(s)
	} else {
		return n <= r.Base/uint64(-s)
	}
}

// accessRange ingests an already-compressed strided run (a DDT1 wire range
// record, or a library caller's). The run is split along the power-of-two
// owner mask — elements with equal owner form arithmetic subsequences with
// period P = W/gcd(W, wordStride mod W) and sub-stride P×Stride — so
// per-address routing is exactly what per-element ingestion would produce.
// When splitting does not apply (redirected addresses in play, non-power-of-
// two worker count, unaligned stride, address wraparound, compression off,
// or a run too short to be worth it) the range is expanded and fed through
// the point path.
func (pr *producer) accessRange(r *event.Range) {
	if r.Count == 0 {
		return
	}
	data := r.Kind == event.Read || r.Kind == event.Write
	split := pr.comp && data && pr.wMask != 0 && len(pr.redirect) == 0 && rangeSplittable(r)
	var period uint64
	if split {
		w := uint64(pr.w)
		s3 := (r.Stride >> 3) & pr.wMask // wordStride mod W, wrap-correct for negatives
		g := gcd(s3, w)
		period = w / g
		if uint64(r.Count) < 2*period {
			split = false // sub-runs would be shorter than a point pair
		}
	}
	if !split {
		for j := uint32(0); j < r.Count; j++ {
			pr.access(r.At(j))
		}
		return
	}
	pr.stats.Accesses += uint64(r.Count)
	if pr.redistributeEvery > 0 {
		// The heavy-hitter sketch accounts ranges by element count: offer
		// every 16th element, exactly as the point path samples.
		base := pr.sample
		pr.sample += uint64(r.Count)
		for k := (base &^ 15) + 16; k <= pr.sample; k += 16 {
			pr.heavy.Offer(r.Base + (k-base-1)*r.Stride)
		}
	}
	for j0 := uint64(0); j0 < period; j0++ {
		cnt := (uint64(r.Count) - j0 + period - 1) / period
		sub := event.Range{
			Base:      r.Base + j0*r.Stride,
			Stride:    r.Stride * period,
			Count:     uint32(cnt),
			TS:        r.TS,
			IterVec:   r.IterVec + j0*r.IterDelta,
			IterDelta: r.IterDelta * period,
			Loc:       r.Loc, Var: r.Var, CtxID: r.CtxID,
			Thread: r.Thread, Kind: r.Kind, Flags: r.Flags,
		}
		w := int((sub.Base >> 3) & pr.wMask)
		pr.appendSub(w, &sub)
	}
}

// appendSub appends one owner's sub-range to its open chunk, as an opaque
// range (count ≥ 2) or a plain point. Opaque ranges raise the owner's touch
// floor instead of hashing every covered address: later producer merges may
// not move anything before this slot, which is conservative and O(1).
func (pr *producer) appendSub(w int, sub *event.Range) {
	c := pr.open[w]
	if c.Full() || c.RangesFull() {
		pr.pushOpen(w)
		c = pr.open[w]
	}
	os := &pr.own[w]
	if sub.Count == 1 {
		a := sub.At(0)
		c.Append(a)
		slot := int32(c.Len() - 1)
		pr.lastIdx[w] = int(slot)
		os.noteTouch(a.Addr, slot)
		os.pending++
		if c.Full() {
			pr.pushOpen(w)
		}
		return
	}
	idx := c.AppendRange(*sub)
	c.Append(event.Access{Kind: event.RangeRef, Addr: uint64(idx)})
	slot := int32(c.Len() - 1)
	pr.lastIdx[w] = int(slot)
	os.floor = slot
	os.pending += uint64(sub.Count)
	pr.stats.Ranges++
	pr.stats.RangeElements += uint64(sub.Count)
	if c.Full() {
		pr.pushOpen(w)
	}
}

// publishRangeTelemetry pushes the producer's range-counter deltas; called
// at chunk-push cadence alongside the duplicate-collapse delta.
func (pr *producer) publishRangeTelemetry() {
	if d := pr.stats.Ranges - pr.rangesPublished; d > 0 {
		pr.m.Ranges.Add(d)
		pr.rangesPublished = pr.stats.Ranges
	}
	if d := pr.stats.RangeElements - pr.rangeElemsPublished; d > 0 {
		pr.m.RangeElements.Add(d)
		pr.rangeElemsPublished = pr.stats.RangeElements
	}
}

// publishCompressionState sets the flush-time compression gauges: the run's
// overall compression ratio (observed accesses per stored record, ×1000 —
// the stride-package convention, 1000 = no compression) and the per-state
// detector census of the instruction table.
func (pr *producer) publishCompressionState() {
	if pr.m == nil || !pr.comp {
		return
	}
	if pr.stats.Accesses > 0 {
		stored := pr.stats.Accesses - pr.stats.RangeElements + pr.stats.Ranges
		if stored == 0 {
			stored = 1
		}
		pr.m.CompressionRatioPermille.Set(int64(pr.stats.Accesses * 1000 / stored))
	}
	var counts [5]int64
	for i := range pr.instr {
		if pr.instr[i].key != 0 {
			counts[pr.instr[i].det.State()]++
		}
	}
	for s, n := range counts {
		pr.m.StrideDetectors[s].Set(n)
	}
}

// gcd is the binary-free classic for the small operands of the owner split.
func gcd(a, b uint64) uint64 {
	for a != 0 {
		a, b = b%a, a
	}
	return b
}
