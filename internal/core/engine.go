// Package core implements the paper's primary contribution: the generic
// data-dependence profiler. It contains the signature-based detection engine
// (Algorithm 1), the serial profiler (§III), the lock-free parallel profiler
// for sequential targets (§IV) with heavy-hitter load balancing (§IV-A), and
// the multi-threaded-target profiler with timestamp-based data-race flagging
// (§V).
package core

import (
	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/prog"
	"ddprof/internal/sig"
)

// LoopDeps aggregates, per static loop, the dependences carried by that loop.
// Parallelism discovery consumes this table: a loop with no carried RAW is a
// candidate for parallelization (paper §VII-A).
type LoopDeps struct {
	// CarriedRAW counts distinct carried RAW dependences; CarriedRAWRed of
	// those, the ones whose every instance joined two reduction accesses.
	CarriedRAW    int
	CarriedRAWRed int
	CarriedWAR    int
	CarriedWAW    int
	// MinRAWDist is the smallest iteration gap observed over all carried
	// RAW instances of this loop (0 when CarriedRAW is 0). A distance of
	// d >= 2 means iterations i and i+1 never conflict: the loop supports
	// d-way DOACROSS/wavefront execution even though it is not DOALL.
	MinRAWDist uint32
	// Iterations is the total number of iterations observed (filled in from
	// the interpreter's loop records by the caller, not by the engine).
	Iterations uint64
}

// Engine applies Algorithm 1 to a stream of accesses against one Store.
// It is not safe for concurrent use; the parallel profiler gives each worker
// its own Engine over a disjoint address subset.
type Engine struct {
	store sig.Store
	meta  *prog.Meta
	deps  *dep.Set
	loops map[prog.LoopID]*loopAgg
	// raceCheck enables timestamp-reversal detection (MT-target mode).
	raceCheck bool
}

// loopAgg tracks distinct carried dependence keys per loop so LoopDeps can
// report unique counts rather than instance counts.
type loopAgg struct {
	rawKeys    map[dep.Key]bool // value: all-instances-reduction so far
	warKeys    map[dep.Key]struct{}
	wawKeys    map[dep.Key]struct{}
	minRAWDist uint32
}

// NewEngine returns an engine writing to a fresh dependence set. meta may be
// nil when loop-carried classification is not needed.
func NewEngine(store sig.Store, meta *prog.Meta, raceCheck bool) *Engine {
	return &Engine{
		store:     store,
		meta:      meta,
		deps:      dep.NewSet(),
		loops:     make(map[prog.LoopID]*loopAgg),
		raceCheck: raceCheck,
	}
}

// Deps returns the dependence set accumulated so far.
func (e *Engine) Deps() *dep.Set { return e.deps }

// Store returns the engine's access-history store.
func (e *Engine) Store() sig.Store { return e.store }

// Process runs one access through Algorithm 1.
//
// The paper's pseudocode nests the WAR check inside the "write slot
// non-empty" branch, which would miss a WAR whose address was only read so
// far (read x; first write x). We build the WAR from the read slot
// unconditionally — the semantically intended behaviour, consistent with the
// paper's prose ("we run the membership check to see if x exists in the
// signatures") and with its own Figure 1, and the INIT/WAW logic is
// unchanged.
func (e *Engine) Process(a event.Access) {
	switch a.Kind {
	case event.Write:
		wslot, wok := e.store.LookupWrite(a.Addr)
		if !wok {
			// First write to this address: INIT (paper §III-A).
			e.deps.Add(dep.Key{
				Type: dep.INIT,
				Sink: a.Loc, SinkThread: int16(a.Thread),
				Var: a.Var,
			}, false, false, false)
		} else {
			e.build(dep.WAW, wslot, a)
		}
		if rslot, rok := e.store.LookupRead(a.Addr); rok {
			e.build(dep.WAR, rslot, a)
		}
		e.store.SetWrite(a.Addr, e.slotFor(a))
	case event.Read:
		if wslot, wok := e.store.LookupWrite(a.Addr); wok {
			e.build(dep.RAW, wslot, a)
		}
		e.store.SetRead(a.Addr, e.slotFor(a))
	case event.Remove:
		// Variable-lifetime analysis: deallocated storage is forgotten so a
		// later reuse of the address cannot fabricate a dependence.
		e.store.Remove(a.Addr)
	}
}

// slotFor packs the access into a store slot.
func (e *Engine) slotFor(a event.Access) sig.Slot {
	s := sig.PackSlot(a.Loc, a.Var, a.Thread, a.CtxID, a.IterVec, a.TS)
	if a.Flags&event.FlagReduction != 0 {
		s = s.WithReduction()
	}
	if a.Flags&event.FlagInduction != 0 {
		s = s.WithInduction()
	}
	return s
}

// build records a dependence from the stored source slot to the sink access.
func (e *Engine) build(t dep.Type, src sig.Slot, snk event.Access) {
	carriedAt := prog.NoLoop
	dist := uint32(0)
	if e.meta != nil {
		carriedAt, dist = e.meta.CarriedLoopDist(src.Ctx(), snk.CtxID, src.Iter, snk.IterVec)
	}
	// Induction-variable self-dependences (i = i + step feeding the next
	// iteration's update) are loop control: a parallelizing transformation
	// replaces the induction entirely, so they are recorded as ordinary
	// dependences (Figure 1 keeps them) but never as parallelism-preventing
	// carried dependences.
	if carriedAt != prog.NoLoop &&
		src.Induction() && snk.Flags&event.FlagInduction != 0 && src.Loc() == snk.Loc {
		carriedAt, dist = prog.NoLoop, 0
	}
	reduction := src.Reduction() && snk.Flags&event.FlagReduction != 0 &&
		src.Loc() == snk.Loc
	reversed := e.raceCheck && snk.TS < src.TS()

	k := dep.Key{
		Type: t,
		Sink: snk.Loc, SinkThread: int16(snk.Thread),
		Src: src.Loc(), SrcThread: int16(src.Thread()),
		Var: snk.Var,
	}
	e.deps.AddDist(k, carriedAt != prog.NoLoop, reduction, reversed, dist)

	if carriedAt != prog.NoLoop {
		agg := e.loops[carriedAt]
		if agg == nil {
			agg = &loopAgg{
				rawKeys: make(map[dep.Key]bool),
				warKeys: make(map[dep.Key]struct{}),
				wawKeys: make(map[dep.Key]struct{}),
			}
			e.loops[carriedAt] = agg
		}
		switch t {
		case dep.RAW:
			red, seen := agg.rawKeys[k]
			if !seen {
				red = true
			}
			agg.rawKeys[k] = red && reduction
			if agg.minRAWDist == 0 || dist < agg.minRAWDist {
				agg.minRAWDist = dist
			}
		case dep.WAR:
			agg.warKeys[k] = struct{}{}
		case dep.WAW:
			agg.wawKeys[k] = struct{}{}
		}
	}
}

// ProcessChunk runs every event of a chunk through the engine.
func (e *Engine) ProcessChunk(c *event.Chunk) {
	for i := range c.Events {
		e.Process(c.Events[i])
	}
}

// LoopDeps summarizes per-loop carried dependences.
func (e *Engine) LoopDeps() map[prog.LoopID]*LoopDeps {
	out := make(map[prog.LoopID]*LoopDeps, len(e.loops))
	for id, agg := range e.loops {
		ld := &LoopDeps{
			CarriedRAW: len(agg.rawKeys),
			CarriedWAR: len(agg.warKeys),
			CarriedWAW: len(agg.wawKeys),
			MinRAWDist: agg.minRAWDist,
		}
		for _, red := range agg.rawKeys {
			if red {
				ld.CarriedRAWRed++
			}
		}
		out[id] = ld
	}
	return out
}

// mergeLoopDeps folds worker tables into a single table.
func mergeLoopDeps(dst map[prog.LoopID]*LoopDeps, src map[prog.LoopID]*LoopDeps) {
	for id, s := range src {
		d := dst[id]
		if d == nil {
			cp := *s
			dst[id] = &cp
			continue
		}
		d.CarriedRAW += s.CarriedRAW
		d.CarriedRAWRed += s.CarriedRAWRed
		d.CarriedWAR += s.CarriedWAR
		d.CarriedWAW += s.CarriedWAW
		if d.MinRAWDist == 0 || (s.MinRAWDist > 0 && s.MinRAWDist < d.MinRAWDist) {
			d.MinRAWDist = s.MinRAWDist
		}
	}
}
