// Package core implements the paper's primary contribution: the generic
// data-dependence profiler. It contains the signature-based detection engine
// (Algorithm 1), the serial profiler (§III), the lock-free parallel profiler
// for sequential targets (§IV) with heavy-hitter load balancing (§IV-A), and
// the multi-threaded-target profiler with timestamp-based data-race flagging
// (§V).
package core

import (
	"math/bits"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/prog"
	"ddprof/internal/sig"
)

// LoopDeps aggregates, per static loop, the dependences carried by that loop.
// Parallelism discovery consumes this table: a loop with no carried RAW is a
// candidate for parallelization (paper §VII-A).
type LoopDeps struct {
	// CarriedRAW counts distinct carried RAW dependences; CarriedRAWRed of
	// those, the ones whose every instance joined two reduction accesses.
	CarriedRAW    int
	CarriedRAWRed int
	CarriedWAR    int
	CarriedWAW    int
	// MinRAWDist is the smallest iteration gap observed over all carried
	// RAW instances of this loop (0 when CarriedRAW is 0). A distance of
	// d >= 2 means iterations i and i+1 never conflict: the loop supports
	// d-way DOACROSS/wavefront execution even though it is not DOALL.
	MinRAWDist uint32
	// Iterations is the total number of iterations observed (filled in from
	// the interpreter's loop records by the caller, not by the engine).
	Iterations uint64
}

// Engine applies Algorithm 1 to a stream of accesses against one Store.
// It is not safe for concurrent use; the parallel profiler gives each worker
// its own Engine over a disjoint address subset.
type Engine struct {
	store sig.Store
	meta  *prog.Meta
	deps  *dep.Set
	loops map[prog.LoopID]*loopAgg
	// raceCheck enables timestamp-reversal detection (MT-target mode).
	raceCheck bool
	// noCache disables the instance cache (A/B measurement and the
	// fast-vs-slow equivalence suite; output is identical either way).
	noCache bool
	// epoch is the current epoch-clock reading, stamped onto per-loop
	// aggregate tables created from now on (the dependence set carries its
	// own copy); advanced by ExtractEpochDelta.
	epoch uint32
	// trackBounds enables the per-variable address-interval index behind
	// address-range provenance queries; bounds is that index, by VarID.
	trackBounds bool
	bounds      []varBound

	// cache is a direct-mapped instance cache over dependence identity: the
	// overwhelmingly common case is the same static dependence firing every
	// iteration (the instance redundancy dependence merging exploits for
	// space, §III-B), so memoizing the map entries for the last key that
	// hashed to each slot turns the per-instance map lookups — the dependence
	// set and, for carried instances, the per-loop aggregate — into pointer
	// dereferences.
	cache       [depCacheSize]depCacheEntry
	cacheHits   uint64
	cacheProbes uint64
}

// depCacheSize is the number of direct-mapped instance-cache entries. The
// working set is the static dependence count of the profiled region, which
// the paper's merging ablation puts orders of magnitude below this.
const (
	depCacheSize = 1 << 9
	depCacheMask = depCacheSize - 1
)

// depCacheEntry memoizes the merged-set entry for one dependence key and,
// when the key's last instance was loop-carried, the per-loop aggregate
// record, so a repeat instance updates both without any map operation.
type depCacheEntry struct {
	key  dep.Key
	st   *dep.Stats
	agg  *loopAgg    // aggregate of `loop` (nil until a carried instance)
	ck   *dep.Stats  // this key's record within agg.keys (Reduction = allRed)
	loop prog.LoopID // loop of the last carried instance (NoLoop if none)
}

// keyHash mixes a dependence key into an instance-cache index. One multiply
// over both packed words keeps the hit path short; XORing y rotated by 32
// puts Var against Src and the thread/type bits against Sink, so keys
// differing in any single field land on distinct inputs to the multiplier.
func keyHash(k dep.Key) uint32 {
	x := uint64(k.Sink) | uint64(k.Src)<<32
	y := uint64(k.Var) | uint64(uint16(k.SinkThread))<<32 |
		uint64(uint16(k.SrcThread))<<48 | uint64(k.Type)<<40
	h := (x ^ bits.RotateLeft64(y, 32)) * 0x9E3779B97F4A7C15
	return uint32(h >> 32)
}

// loopAgg tracks distinct carried dependence keys per loop so LoopDeps can
// report unique counts rather than instance counts. The key set is a
// dep.Set — the same slab-backed table as the dependence sets — with a
// key's Stats.Reduction standing in for "every carried instance so far
// joined two reduction accesses" (a fresh Ref starts Reduction true, and
// both the engine and Set.Merge fold it with AND, which is exactly the
// carried-reduction rule). Ref's pointer stability lets the instance cache
// update a record without a lookup, and worker tables fold through the same
// cache-linear merge as the dependence sets.
type loopAgg struct {
	keys       *dep.Set
	minRAWDist uint32
}

func newLoopAgg() *loopAgg {
	return &loopAgg{keys: dep.NewSet()}
}

// NewEngine returns an engine writing to a fresh dependence set. meta may be
// nil when loop-carried classification is not needed.
func NewEngine(store sig.Store, meta *prog.Meta, raceCheck bool) *Engine {
	return &Engine{
		store:     store,
		meta:      meta,
		deps:      dep.NewSet(),
		loops:     make(map[prog.LoopID]*loopAgg),
		raceCheck: raceCheck,
	}
}

// DisableCache switches the engine to the slow (map-per-instance) path.
// Must be called before the first Process.
func (e *Engine) DisableCache() { e.noCache = true }

// CacheStats reports instance-cache probes and hits since construction.
func (e *Engine) CacheStats() (hits, probes uint64) { return e.cacheHits, e.cacheProbes }

// Deps returns the dependence set accumulated so far.
func (e *Engine) Deps() *dep.Set { return e.deps }

// Store returns the engine's access-history store.
func (e *Engine) Store() sig.Store { return e.store }

// Process runs one access through Algorithm 1.
//
// The paper's pseudocode nests the WAR check inside the "write slot
// non-empty" branch, which would miss a WAR whose address was only read so
// far (read x; first write x). We build the WAR from the read slot
// unconditionally — the semantically intended behaviour, consistent with the
// paper's prose ("we run the membership check to see if x exists in the
// signatures") and with its own Figure 1, and the INIT/WAW logic is
// unchanged.
func (e *Engine) Process(a event.Access) {
	switch a.Kind {
	case event.Write:
		if e.trackBounds {
			e.noteBounds(a.Var, a.Addr)
		}
		wslot, wok := e.store.LookupWrite(a.Addr)
		if !wok {
			// First write to this address: INIT (paper §III-A).
			e.record(dep.Key{
				Type: dep.INIT,
				Sink: a.Loc, SinkThread: int16(a.Thread),
				Var: a.Var,
			}, dep.INIT, prog.NoLoop, false, false, 0, 1)
		} else {
			e.build(dep.WAW, wslot, &a, 1)
		}
		if rslot, rok := e.store.LookupRead(a.Addr); rok {
			e.build(dep.WAR, rslot, &a, 1)
		}
		e.store.SetWrite(a.Addr, e.slotFor(&a))
	case event.Read:
		if e.trackBounds {
			e.noteBounds(a.Var, a.Addr)
		}
		if wslot, wok := e.store.LookupWrite(a.Addr); wok {
			// A collapsed event stands for 1+Rep identical reads against the
			// same (unchanged) write slot: 1+Rep instances of the same RAW.
			e.build(dep.RAW, wslot, &a, 1+uint64(a.Rep))
		}
		e.store.SetRead(a.Addr, e.slotFor(&a))
	case event.Remove:
		// Variable-lifetime analysis: deallocated storage is forgotten so a
		// later reuse of the address cannot fabricate a dependence.
		e.store.Remove(a.Addr)
	}
}

// slotFor packs the access into a store slot. Pointer arg: callers pass the
// addressable Process copy, sparing a 48-byte stack copy per call.
func (e *Engine) slotFor(a *event.Access) sig.Slot {
	s := sig.PackSlot(a.Loc, a.Var, a.Thread, a.CtxID, a.IterVec, a.TS)
	if a.Flags&event.FlagReduction != 0 {
		s = s.WithReduction()
	}
	if a.Flags&event.FlagInduction != 0 {
		s = s.WithInduction()
	}
	return s
}

// classify derives the full identity of a dependence instance — its key plus
// the carried/reduction/reversed classification — from the stored source slot
// and the sink access. Factored out of build so the range path can batch
// instances whose classification repeats.
func (e *Engine) classify(t dep.Type, src sig.Slot, snk *event.Access) (k dep.Key, carriedAt prog.LoopID, reduction, reversed bool, dist uint32) {
	carriedAt = prog.NoLoop
	if e.meta != nil {
		carriedAt, dist = e.meta.CarriedLoopDist(src.Ctx(), snk.CtxID, src.Iter, snk.IterVec)
	}
	// Induction-variable self-dependences (i = i + step feeding the next
	// iteration's update) are loop control: a parallelizing transformation
	// replaces the induction entirely, so they are recorded as ordinary
	// dependences (Figure 1 keeps them) but never as parallelism-preventing
	// carried dependences.
	if carriedAt != prog.NoLoop &&
		src.Induction() && snk.Flags&event.FlagInduction != 0 && src.Loc() == snk.Loc {
		carriedAt, dist = prog.NoLoop, 0
	}
	reduction = src.Reduction() && snk.Flags&event.FlagReduction != 0 &&
		src.Loc() == snk.Loc
	reversed = e.raceCheck && snk.TS < src.TS()

	k = dep.Key{
		Type: t,
		Sink: snk.Loc, SinkThread: int16(snk.Thread),
		Src: src.Loc(), SrcThread: int16(src.Thread()),
		Var: snk.Var,
	}
	return
}

// build records n instances of a dependence from the stored source slot to
// the sink access (passed by pointer for the same reason as slotFor).
func (e *Engine) build(t dep.Type, src sig.Slot, snk *event.Access, n uint64) {
	k, carriedAt, reduction, reversed, dist := e.classify(t, src, snk)
	e.record(k, t, carriedAt, reduction, reversed, dist, n)
}

// record merges n identical instances of dependence k into the set and the
// per-loop aggregates, going through the instance cache unless disabled.
func (e *Engine) record(k dep.Key, t dep.Type, carriedAt prog.LoopID, reduction, reversed bool, dist uint32, n uint64) {
	var ent *depCacheEntry
	var st *dep.Stats
	if e.noCache {
		st = e.deps.Ref(k)
	} else {
		e.cacheProbes++
		ent = &e.cache[keyHash(k)&depCacheMask]
		if ent.st != nil && ent.key == k {
			st = ent.st
			e.cacheHits++
		} else {
			st = e.deps.Ref(k)
			*ent = depCacheEntry{key: k, st: st, loop: prog.NoLoop}
		}
	}
	e.deps.ObserveVia(st, n, carriedAt != prog.NoLoop, reduction, reversed, dist)
	if carriedAt == prog.NoLoop {
		return
	}

	if ent != nil && ent.loop == carriedAt {
		// Repeat carried instance: update the memoized aggregate directly.
		// Count advances too — summaries never read it, but the epoch-delta
		// extractor detects change by Count-vs-watermark, and this keeps the
		// carried-key tables extractable like the dependence sets.
		ent.ck.Count += n
		ent.ck.Reduction = ent.ck.Reduction && reduction
		if t == dep.RAW {
			if ent.agg.minRAWDist == 0 || dist < ent.agg.minRAWDist {
				ent.agg.minRAWDist = dist
			}
		}
		return
	}
	agg := e.loops[carriedAt]
	if agg == nil {
		agg = newLoopAgg()
		agg.keys.SetEpoch(e.epoch)
		e.loops[carriedAt] = agg
	}
	ck := agg.keys.Ref(k) // fresh records start Reduction (= allRed) true
	ck.Count += n
	ck.Reduction = ck.Reduction && reduction
	if t == dep.RAW {
		if agg.minRAWDist == 0 || dist < agg.minRAWDist {
			agg.minRAWDist = dist
		}
	}
	if ent != nil {
		ent.loop, ent.agg, ent.ck = carriedAt, agg, ck
	}
}

// ProcessChunk runs every event of a chunk through the engine, expanding
// RangeRef slots through the bulk range path at their position.
func (e *Engine) ProcessChunk(c *event.Chunk) {
	for i := range c.Events {
		if c.Events[i].Kind == event.RangeRef {
			e.ProcessRange(&c.Ranges[c.Events[i].Addr])
			continue
		}
		e.Process(c.Events[i])
	}
}

// summary renders one loop's aggregate as a LoopDeps row.
func (agg *loopAgg) summary() *LoopDeps {
	ld := &LoopDeps{MinRAWDist: agg.minRAWDist}
	agg.keys.Range(func(k dep.Key, ck dep.Stats) bool {
		switch k.Type {
		case dep.RAW:
			ld.CarriedRAW++
			if ck.Reduction {
				ld.CarriedRAWRed++
			}
		case dep.WAR:
			ld.CarriedWAR++
		case dep.WAW:
			ld.CarriedWAW++
		}
		return true
	})
	return ld
}

// LoopDeps summarizes per-loop carried dependences.
func (e *Engine) LoopDeps() map[prog.LoopID]*LoopDeps {
	return loopDepsOf(e.loops)
}

// loopDepsOf summarizes a loop-aggregate table.
func loopDepsOf(aggs map[prog.LoopID]*loopAgg) map[prog.LoopID]*LoopDeps {
	out := make(map[prog.LoopID]*LoopDeps, len(aggs))
	for id, agg := range aggs {
		out[id] = agg.summary()
	}
	return out
}

// carriedKeysOf exposes the merged per-loop carried-key tables themselves
// (not copies): the provenance queries of the live observatory answer "what
// does loop L carry" from these after the merge, and the final watch frame
// extracts their unshipped remainder.
func carriedKeysOf(aggs map[prog.LoopID]*loopAgg) map[prog.LoopID]*dep.Set {
	out := make(map[prog.LoopID]*dep.Set, len(aggs))
	for id, agg := range aggs {
		out[id] = agg.keys
	}
	return out
}

// mergeLoopAggs folds worker carried-key tables into dst, unioning the key
// sets: the same dependence key can surface on several workers (same source
// lines, different addresses) and must count once, exactly as in a serial
// run. Reduction eligibility is the AND over all instances, so per-worker
// flags combine with AND — which is exactly Set.Merge's Reduction fold.
// mergeLoopAggs consumes src: a loop seen only there moves into dst whole,
// a shared loop's key slabs are folded and released. Both folds are
// commutative and associative, so the merge stage's tree reduction applies
// it in any pairing order.
func mergeLoopAggs(dst, src map[prog.LoopID]*loopAgg) {
	for id, s := range src {
		d := dst[id]
		if d == nil {
			dst[id] = s
			continue
		}
		d.keys.Merge(s.keys)
		s.keys.Release()
		if d.minRAWDist == 0 || (s.minRAWDist > 0 && s.minRAWDist < d.minRAWDist) {
			d.minRAWDist = s.minRAWDist
		}
	}
}
