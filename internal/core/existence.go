package core

import (
	"sort"

	"ddprof/internal/event"
	"ddprof/internal/loc"
)

// Existence is the set-based/untyped profiling variant the paper sketches
// as future work (§VI-B): "determining only a binary value (whether a
// dependence exists or not) instead of detailed types would allow a more
// balanced workload".
//
// Because no temporal order is needed for mere existence, addresses no
// longer have to be owned by a single worker: the shared producer stage runs
// in round-robin dealing mode, which balances the workers perfectly even
// under the skewed access frequencies that defeat the modulo rule (§IV-A) —
// and brings along the producer's chunk recycling and duplicate-read
// collapse for free. Each worker records, per address, the sets of reader
// and writer lines; the merge unions them and a dependence "exists" between
// two lines if they touched a common address and at least one wrote it.
type Existence struct {
	pl pipeline
	pr producer
}

// existSink is the worker-local analysis of existence mode: line sets per
// address instead of a detection engine.
type existSink struct {
	lines map[uint64]*lineSets
}

type lineSets struct {
	readers map[loc.SourceLoc]struct{}
	writers map[loc.SourceLoc]struct{}
}

// process records one access; repetition counts are irrelevant because line
// sets are idempotent.
func (s *existSink) process(ev *event.Access) {
	if ev.Kind != event.Read && ev.Kind != event.Write {
		return
	}
	ls := s.lines[ev.Addr]
	if ls == nil {
		ls = &lineSets{
			readers: make(map[loc.SourceLoc]struct{}),
			writers: make(map[loc.SourceLoc]struct{}),
		}
		s.lines[ev.Addr] = ls
	}
	if ev.Kind == event.Write {
		ls.writers[ev.Loc] = struct{}{}
	} else {
		ls.readers[ev.Loc] = struct{}{}
	}
}

// LinePair is an unordered pair of source lines with a dependence between
// them (A < B by construction; A == B for self-dependences).
type LinePair struct {
	A, B loc.SourceLoc
}

// ExistenceResult is the untyped profile.
type ExistenceResult struct {
	// Pairs is the set of line pairs with at least one dependence.
	Pairs map[LinePair]struct{}
	// WorkerEvents lists how many accesses each worker processed — the
	// balance the round-robin distribution achieves.
	WorkerEvents []uint64
	Stats        RunStats
}

// NewExistence starts the untyped pipeline; it panics on an invalid Config.
// Workers defaults to 8. Mode, Meta, RaceCheck and the store fields are
// ignored — existence needs no access history.
func NewExistence(cfg Config) *Existence {
	cfg, err := cfg.normalize(ModeExistence)
	if err != nil {
		panic(err)
	}
	e := &Existence{}
	e.pl.m = cfg.Metrics
	for i := 0; i < cfg.Workers; i++ {
		e.pl.workers = append(e.pl.workers, &worker{
			id:          i,
			tr:          newChunkTransport(cfg.LockBased, cfg.QueueCap),
			ex:          &existSink{lines: make(map[uint64]*lineSets)},
			m:           cfg.Metrics,
			sampleEvery: uint64(cfg.SampleEvery),
		})
	}
	e.pl.startAll()
	e.pr.init(&e.pl, &cfg, true)
	return e
}

// Access implements the producer side; single-threaded like Parallel.
// Lifetime and control events are dropped: line sets never shrink.
func (e *Existence) Access(a event.Access) {
	if a.Kind != event.Read && a.Kind != event.Write {
		return
	}
	e.pr.access(a)
}

// Flush drains the pipeline and merges the per-worker line sets.
func (e *Existence) Flush() *ExistenceResult {
	e.pl.beginFlush()
	e.pr.drainFlush()
	e.pl.wg.Wait()

	// Union the per-address line sets across workers, then emit pairs.
	merged := make(map[uint64]*lineSets)
	res := &ExistenceResult{Pairs: make(map[LinePair]struct{}), Stats: e.pr.stats}
	for _, w := range e.pl.workers {
		res.WorkerEvents = append(res.WorkerEvents, w.events)
		for addr, ls := range w.ex.lines {
			m := merged[addr]
			if m == nil {
				merged[addr] = ls
				continue
			}
			for l := range ls.readers {
				m.readers[l] = struct{}{}
			}
			for l := range ls.writers {
				m.writers[l] = struct{}{}
			}
		}
	}
	for _, ls := range merged {
		for w := range ls.writers {
			for w2 := range ls.writers {
				res.Pairs[pairOf(w, w2)] = struct{}{}
			}
			for r := range ls.readers {
				res.Pairs[pairOf(w, r)] = struct{}{}
			}
		}
	}
	return res
}

func pairOf(a, b loc.SourceLoc) LinePair {
	if b < a {
		a, b = b, a
	}
	return LinePair{A: a, B: b}
}

// Imbalance summarizes a worker-event distribution as max/mean; 1.0 is a
// perfect balance.
func Imbalance(events []uint64) float64 {
	if len(events) == 0 {
		return 1
	}
	var max, sum uint64
	for _, e := range events {
		sum += e
		if e > max {
			max = e
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(events))
	return float64(max) / mean
}

// SortedPairs returns the pairs in deterministic order for reporting.
func (r *ExistenceResult) SortedPairs() []LinePair {
	out := make([]LinePair, 0, len(r.Pairs))
	for p := range r.Pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
