package core

import (
	"runtime"
	"sort"
	"sync"

	"ddprof/internal/event"
	"ddprof/internal/loc"
	"ddprof/internal/queue"
)

// Existence is the set-based/untyped profiling variant the paper sketches
// as future work (§VI-B): "determining only a binary value (whether a
// dependence exists or not) instead of detailed types would allow a more
// balanced workload".
//
// Because no temporal order is needed for mere existence, addresses no
// longer have to be owned by a single worker: chunks are dealt round-robin,
// which balances the workers perfectly even under the skewed access
// frequencies that defeat the modulo rule (§IV-A). Each worker records,
// per address, the sets of reader and writer lines; the merge unions them
// and a dependence "exists" between two lines if they touched a common
// address and at least one wrote it.
type Existence struct {
	workers []*eworker
	open    *event.Chunk
	next    int
	stats   RunStats
	wg      sync.WaitGroup
	flushed bool
}

type eworker struct {
	in     *queue.SPSC[*event.Chunk]
	lines  map[uint64]*lineSets
	events uint64
}

type lineSets struct {
	readers map[loc.SourceLoc]struct{}
	writers map[loc.SourceLoc]struct{}
}

// LinePair is an unordered pair of source lines with a dependence between
// them (A < B by construction; A == B for self-dependences).
type LinePair struct {
	A, B loc.SourceLoc
}

// ExistenceResult is the untyped profile.
type ExistenceResult struct {
	// Pairs is the set of line pairs with at least one dependence.
	Pairs map[LinePair]struct{}
	// WorkerEvents lists how many accesses each worker processed — the
	// balance the round-robin distribution achieves.
	WorkerEvents []uint64
	Stats        RunStats
}

// NewExistence starts the untyped pipeline with the given worker count.
func NewExistence(workers int) *Existence {
	if workers <= 0 {
		workers = 8
	}
	e := &Existence{open: event.NewChunk()}
	for i := 0; i < workers; i++ {
		w := &eworker{
			in:    queue.NewSPSC[*event.Chunk](64),
			lines: make(map[uint64]*lineSets),
		}
		e.workers = append(e.workers, w)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			w.run()
		}()
	}
	return e
}

// Access implements the producer side; single-threaded like Parallel.
func (e *Existence) Access(a event.Access) {
	if a.Kind != event.Read && a.Kind != event.Write {
		return
	}
	e.stats.Accesses++
	e.open.Append(a)
	if e.open.Full() {
		e.push()
	}
}

// push deals the current chunk to the next worker, round-robin: any worker
// can take any chunk because existence needs no per-address ordering.
func (e *Existence) push() {
	if e.open.Len() == 0 {
		return
	}
	e.workers[e.next].in.Push(e.open)
	e.next = (e.next + 1) % len(e.workers)
	e.stats.Chunks++
	e.open = event.NewChunk()
}

// Flush drains the pipeline and merges the per-worker line sets.
func (e *Existence) Flush() *ExistenceResult {
	if e.flushed {
		panic("core: Flush called twice")
	}
	e.flushed = true
	e.push()
	for _, w := range e.workers {
		fc := event.NewChunk()
		fc.Append(event.Access{Kind: event.Flush})
		w.in.Push(fc)
	}
	e.wg.Wait()

	// Union the per-address line sets across workers, then emit pairs.
	merged := make(map[uint64]*lineSets)
	res := &ExistenceResult{Pairs: make(map[LinePair]struct{}), Stats: e.stats}
	for _, w := range e.workers {
		res.WorkerEvents = append(res.WorkerEvents, w.events)
		for addr, ls := range w.lines {
			m := merged[addr]
			if m == nil {
				merged[addr] = ls
				continue
			}
			for l := range ls.readers {
				m.readers[l] = struct{}{}
			}
			for l := range ls.writers {
				m.writers[l] = struct{}{}
			}
		}
	}
	for _, ls := range merged {
		for w := range ls.writers {
			for w2 := range ls.writers {
				res.Pairs[pairOf(w, w2)] = struct{}{}
			}
			for r := range ls.readers {
				res.Pairs[pairOf(w, r)] = struct{}{}
			}
		}
	}
	return res
}

func pairOf(a, b loc.SourceLoc) LinePair {
	if b < a {
		a, b = b, a
	}
	return LinePair{A: a, B: b}
}

func (w *eworker) run() {
	for spin := 0; ; {
		c, ok := w.in.TryPop()
		if !ok {
			spin++
			if spin > 64 {
				runtime.Gosched()
			}
			continue
		}
		spin = 0
		done := false
		for i := range c.Events {
			ev := &c.Events[i]
			if ev.Kind == event.Flush {
				done = true
				continue
			}
			w.events++
			ls := w.lines[ev.Addr]
			if ls == nil {
				ls = &lineSets{
					readers: make(map[loc.SourceLoc]struct{}),
					writers: make(map[loc.SourceLoc]struct{}),
				}
				w.lines[ev.Addr] = ls
			}
			if ev.Kind == event.Write {
				ls.writers[ev.Loc] = struct{}{}
			} else {
				ls.readers[ev.Loc] = struct{}{}
			}
		}
		if done {
			return
		}
	}
}

// Imbalance summarizes a worker-event distribution as max/mean; 1.0 is a
// perfect balance.
func Imbalance(events []uint64) float64 {
	if len(events) == 0 {
		return 1
	}
	var max, sum uint64
	for _, e := range events {
		sum += e
		if e > max {
			max = e
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(events))
	return float64(max) / mean
}

// SortedPairs returns the pairs in deterministic order for reporting.
func (r *ExistenceResult) SortedPairs() []LinePair {
	out := make([]LinePair, 0, len(r.Pairs))
	for p := range r.Pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}
