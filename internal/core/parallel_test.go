package core

import (
	"math/rand"
	"sync"
	"testing"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/loc"
)

// synthStream builds a deterministic pseudo-random access stream over n
// addresses with a heavy skew towards a few hot addresses, mimicking the
// uneven access frequencies §IV-A discusses.
func synthStream(events, addrs int, seed int64) []event.Access {
	r := rand.New(rand.NewSource(seed))
	out := make([]event.Access, 0, events)
	for i := 0; i < events; i++ {
		var a uint64
		if r.Intn(100) < 30 {
			a = uint64(0x8000 + 8*r.Intn(4)) // 30% of traffic on 4 addresses
		} else {
			a = uint64(0x10000 + 8*r.Intn(addrs))
		}
		k := event.Read
		if r.Intn(100) < 40 {
			k = event.Write
		}
		out = append(out, event.Access{
			Addr: a,
			Kind: k,
			Loc:  loc.Pack(1, 1+r.Intn(50)),
			Var:  loc.VarID(r.Intn(10)),
		})
	}
	return out
}

// depsEqual verifies both sets contain exactly the same keys with the same
// counts.
func depsEqual(t *testing.T, want, got *dep.Set, label string) {
	t.Helper()
	if want.Unique() != got.Unique() {
		t.Errorf("%s: unique %d vs %d", label, want.Unique(), got.Unique())
	}
	want.Range(func(k dep.Key, st dep.Stats) bool {
		gst, ok := got.Lookup(k)
		if !ok {
			t.Errorf("%s: missing %+v", label, k)
			return false
		}
		if gst.Count != st.Count {
			t.Errorf("%s: count mismatch %+v: want %d got %d", label, k, st.Count, gst.Count)
			return false
		}
		return true
	})
}

func runSerial(evs []event.Access) *Result {
	s := NewSerial(Config{Backend: "perfect"})
	for _, a := range evs {
		s.Access(a)
	}
	return s.Flush()
}

// TestParallelMatchesSerial is the core §IV correctness claim: "we can
// easily ensure that our parallel profiler produces the same data
// dependences as the serial version."
func TestParallelMatchesSerial(t *testing.T) {
	evs := synthStream(200000, 500, 1)
	want := runSerial(evs)

	for _, workers := range []int{1, 2, 4, 8} {
		p := NewParallel(Config{
			Workers: workers,
			Backend: "perfect",
		})
		for _, a := range evs {
			p.Access(a)
		}
		got := p.Flush()
		depsEqual(t, want.Deps, got.Deps, "parallel")
		if got.Stats.Accesses != uint64(len(evs)) {
			t.Errorf("accesses = %d, want %d", got.Stats.Accesses, len(evs))
		}
		if workers > 1 && got.Stats.Chunks == 0 {
			t.Error("no chunks pushed")
		}
	}
}

func TestLockBasedMatchesLockFree(t *testing.T) {
	evs := synthStream(100000, 300, 2)
	want := runSerial(evs)
	p := NewParallel(Config{
		Workers:   4,
		LockBased: true,
		Backend:   "perfect",
	})
	for _, a := range evs {
		p.Access(a)
	}
	depsEqual(t, want.Deps, p.Flush().Deps, "lock-based")
}

// TestRedistributionPreservesResults exercises the migration protocol under
// a skewed stream and verifies the dependences are still exactly the serial
// ones ("if an address is moved to another thread, its signature state has
// to be moved as well", §IV-A).
func TestRedistributionPreservesResults(t *testing.T) {
	evs := synthStream(300000, 200, 3)
	want := runSerial(evs)
	p := NewParallel(Config{
		Workers:           4,
		Backend:           "perfect",
		RedistributeEvery: 8, // check aggressively to force migrations
		QueueCap:          8,
	})
	for _, a := range evs {
		p.Access(a)
	}
	got := p.Flush()
	depsEqual(t, want.Deps, got.Deps, "redistributed")
	if got.Stats.Migrations == 0 {
		t.Error("skewed stream with aggressive checks performed no migration")
	}
	if got.Stats.Redistributions == 0 {
		t.Error("no redistribution rounds recorded")
	}
}

func TestRedistributionDisabledByDefault(t *testing.T) {
	evs := synthStream(50000, 100, 4)
	p := NewParallel(Config{
		Workers: 2,
		Backend: "perfect",
	})
	for _, a := range evs {
		p.Access(a)
	}
	if got := p.Flush().Stats.Migrations; got != 0 {
		t.Errorf("migrations = %d with redistribution disabled", got)
	}
}

func TestParallelWithRealSignatures(t *testing.T) {
	// Large per-worker signatures: results must equal perfect.
	evs := synthStream(100000, 400, 5)
	want := runSerial(evs)
	p := NewParallel(Config{Workers: 4, SlotsPerWorker: 1 << 18})
	for _, a := range evs {
		p.Access(a)
	}
	got := p.Flush()
	depsEqual(t, want.Deps, got.Deps, "signature-parallel")
	if got.Stats.StoreBytes == 0 || got.Stats.StoreModeledBytes == 0 {
		t.Error("store byte accounting missing")
	}
	if got.Stats.StoreModeledBytes != uint64(4*4*(1<<18)) {
		t.Errorf("modeled bytes = %d, want 4 workers * 4B * 2^18", got.Stats.StoreModeledBytes)
	}
}

func TestMTMatchesSerialForSequentialPushes(t *testing.T) {
	// Pushing a sequential stream through the MT profiler from one goroutine
	// must reproduce the serial dependences (with monotone timestamps, no
	// races flagged).
	evs := synthStream(50000, 300, 6)
	for i := range evs {
		evs[i].TS = uint64(i + 1)
	}
	want := runSerial(evs)
	m := NewMT(Config{Workers: 4, Backend: "perfect"})
	for _, a := range evs {
		m.Access(a)
	}
	got := m.Flush()
	depsEqual(t, want.Deps, got.Deps, "mt")
	reversed := 0
	got.Deps.Range(func(_ dep.Key, st dep.Stats) bool {
		if st.Reversed {
			reversed++
		}
		return true
	})
	if reversed != 0 {
		t.Errorf("%d deps flagged reversed in a monotone stream", reversed)
	}
}

func TestMTConcurrentProducers(t *testing.T) {
	// 4 target threads hammer disjoint addresses plus one shared (locked)
	// address; the pipeline must not lose or duplicate per-thread accesses.
	const perThread = 20000
	m := NewMT(Config{Workers: 4, Backend: "perfect"})
	var ts struct {
		sync.Mutex
		n uint64
	}
	stamp := func() uint64 {
		ts.Lock()
		defer ts.Unlock()
		ts.n++
		return ts.n
	}
	var wg sync.WaitGroup
	for thr := int32(0); thr < 4; thr++ {
		wg.Add(1)
		go func(thr int32) {
			defer wg.Done()
			base := uint64(0x100000 * (int(thr) + 1))
			for i := 0; i < perThread; i++ {
				a := base + uint64(8*(i%64))
				m.Access(event.Access{Addr: a, Kind: event.Write, Loc: loc.Pack(1, int(thr)+1), Thread: thr, TS: stamp()})
				m.Access(event.Access{Addr: a, Kind: event.Read, Loc: loc.Pack(1, 10+int(thr)), Thread: thr, TS: stamp()})
			}
		}(thr)
	}
	wg.Wait()
	got := m.Flush()
	if got.Stats.Accesses != 4*2*perThread {
		t.Errorf("accesses = %d, want %d", got.Stats.Accesses, 4*2*perThread)
	}
	// Each thread's private RAW must exist with full count (per-thread,
	// per-address order preserved through the MPSC queue).
	for thr := int32(0); thr < 4; thr++ {
		k := dep.Key{Type: dep.RAW, Sink: loc.Pack(1, 10+int(thr)), SinkThread: int16(thr), Src: loc.Pack(1, int(thr)+1), SrcThread: int16(thr)}
		st, ok := got.Deps.Lookup(k)
		if !ok {
			t.Fatalf("thread %d RAW missing", thr)
		}
		if st.Count != perThread {
			t.Errorf("thread %d RAW count = %d, want %d", thr, st.Count, perThread)
		}
		if st.Reversed {
			t.Errorf("thread %d private dep flagged as race", thr)
		}
	}
}

func TestHeavySketch(t *testing.T) {
	h := newHeavySketch(16)
	for i := 0; i < 1000; i++ {
		h.Offer(0xAA) // dominant
		if i%10 == 0 {
			h.Offer(0xBB)
		}
		h.Offer(uint64(i) * 7919) // noise
	}
	top := h.Top(2)
	if len(top) != 2 || top[0] != 0xAA {
		t.Errorf("Top = %v, want 0xAA first", top)
	}
	if got := h.Top(1000); len(got) > 16 {
		t.Errorf("Top returned more than capacity: %d", len(got))
	}
	empty := newHeavySketch(4)
	if len(empty.Top(10)) != 0 {
		t.Error("empty sketch Top should be empty")
	}
}

func TestFlushTwicePanics(t *testing.T) {
	p := NewParallel(Config{Workers: 1, Backend: "perfect"})
	p.Flush()
	defer func() {
		if recover() == nil {
			t.Error("second Flush did not panic")
		}
	}()
	p.Flush()
}
