package core

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"

	"ddprof/internal/dep"
	"ddprof/internal/event"
	"ddprof/internal/interp"
	"ddprof/internal/loc"
	"ddprof/internal/prog"
	"ddprof/internal/vm"
	"ddprof/internal/workloads"
)

// The golden suite pins the profiles of every pipeline mode to fixtures
// captured before the pipeline-core refactor. Each (stream, mode) pair hashes
// the full user-visible profile — the dependence set with all per-key stats,
// the loop aggregates, and the deterministic pipeline counters — so any
// behavioral drift in the producer, transport, worker loop, or merge stage
// fails the comparison byte-for-byte.
//
// Regenerate (only when an intentional profile change is made) with:
//
//	go test ./internal/core/ -run TestGoldenProfiles -update-goldens

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/goldens.json from the current build")

const goldenPath = "testdata/goldens.json"

// goldenWorkloadScale keeps the full-suite capture fast while still pushing
// hundreds of thousands of events through every mode.
const goldenWorkloadScale = 0.5

// goldenCap records an interpreter run's access stream for replay.
type goldenCap struct{ evs []event.Access }

func (c *goldenCap) Access(a event.Access) { c.evs = append(c.evs, a) }

// mtThreadStream builds a deterministic 4-thread target stream: per-thread
// private accesses, cross-thread shared writes, and periodic timestamp
// reversals that must surface as Reversed dependences (§V-B).
func mtThreadStream(threads, n int) []event.Access {
	var evs []event.Access
	ts := uint64(1)
	for i := 0; i < n; i++ {
		th := int32(i % threads)
		priv := 0x10000 + uint64(th)*0x1000 + uint64(i%128)*8
		shared := 0x20000 + uint64(i%32)*8
		evs = append(evs,
			event.Access{Addr: priv, Kind: event.Write, Loc: loc.Pack(9, 90), Thread: th, TS: ts},
			event.Access{Addr: priv, Kind: event.Read, Loc: loc.Pack(9, 91), Thread: th, TS: ts + 1},
			event.Access{Addr: shared, Kind: event.Write, Loc: loc.Pack(9, 92), Thread: th, TS: ts + 2},
		)
		if i%7 == 0 {
			// A read stamped before the write it follows: not mutually
			// exclusive, must be flagged as a potential race.
			evs = append(evs, event.Access{Addr: shared, Kind: event.Read, Loc: loc.Pack(9, 93), Thread: (th + 1) % int32(threads), TS: ts})
		}
		ts += 4
	}
	return evs
}

// goldenStreams is the fixture corpus: the equivalence suite's special-case
// streams, a large synthetic stream, a deterministic 4-thread target stream,
// and the captured access streams of the full workload suite. The workload
// streams are produced by exec, so the same fixture file pins both the
// tree-walking interpreter and the bytecode VM: any producer divergence
// surfaces as a digest mismatch.
func goldenStreams(t testing.TB, exec interp.Executor) []equivStream {
	streams := equivSuite()
	streams = append(streams,
		equivStream{"synth", prog.NewMeta(), synthStream(1<<16, 512, 7)},
		equivStream{"mt-4threads", prog.NewMeta(), mtThreadStream(4, 20000)},
	)
	for _, w := range workloads.All() {
		p := w.Build(workloads.Config{Scale: goldenWorkloadScale, Threads: 4})
		var c goldenCap
		if _, err := exec.Run(p, &c, interp.Options{}); err != nil {
			t.Fatalf("capture %s under %s: %v", w.Name, exec.Name(), err)
		}
		streams = append(streams, equivStream{"wl-" + w.Name, p.Meta, c.evs})
	}
	return streams
}

// digestResult canonicalizes a typed profile into a hash. withChunks adds the
// deterministic producer counters (chunk/dup accounting); withMigrations adds
// the redistribution counters. Timing-dependent fields (QueueBytes, recycle
// counts) are excluded on purpose.
func digestResult(res *Result, withChunks, withMigrations bool) string {
	h := sha256.New()
	type kv struct {
		k  dep.Key
		st dep.Stats
	}
	var deps []kv
	res.Deps.Range(func(k dep.Key, st dep.Stats) bool {
		deps = append(deps, kv{k, st})
		return true
	})
	sort.Slice(deps, func(i, j int) bool {
		a, b := deps[i].k, deps[j].k
		switch {
		case a.Type != b.Type:
			return a.Type < b.Type
		case a.Src != b.Src:
			return a.Src < b.Src
		case a.Sink != b.Sink:
			return a.Sink < b.Sink
		case a.SrcThread != b.SrcThread:
			return a.SrcThread < b.SrcThread
		case a.SinkThread != b.SinkThread:
			return a.SinkThread < b.SinkThread
		default:
			return a.Var < b.Var
		}
	})
	for _, d := range deps {
		fmt.Fprintf(h, "dep %+v %+v\n", d.k, d.st)
	}
	var loops []prog.LoopID
	for id := range res.Loops {
		loops = append(loops, id)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i] < loops[j] })
	for _, id := range loops {
		fmt.Fprintf(h, "loop %d %+v\n", id, *res.Loops[id])
	}
	fmt.Fprintf(h, "accesses %d\n", res.Stats.Accesses)
	if withChunks {
		fmt.Fprintf(h, "chunks %d control %d dup %d\n",
			res.Stats.Chunks, res.Stats.ControlChunks, res.Stats.DupCollapsed)
	}
	if withMigrations {
		fmt.Fprintf(h, "migrations %d redistributions %d\n",
			res.Stats.Migrations, res.Stats.Redistributions)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// digestExistence canonicalizes an untyped line-pair profile.
func digestExistence(res *ExistenceResult) string {
	h := sha256.New()
	for _, p := range res.SortedPairs() {
		fmt.Fprintf(h, "pair %d %d\n", p.A, p.B)
	}
	fmt.Fprintf(h, "accesses %d\n", res.Stats.Accesses)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// goldenModes enumerates every pipeline composition the fixtures pin:
// serial, 8-worker lock-free, the lock-based ablation, a non-power-of-two
// worker count (modulo owner path), redistribution enabled, MT with 4
// workers, and the untyped existence mode.
func goldenModes() []struct {
	name string
	run  func(meta *prog.Meta, evs []event.Access) string
} {
	typed := func(cfg Config, mk func(Config) Profiler, withChunks, withMig bool) func(*prog.Meta, []event.Access) string {
		return func(meta *prog.Meta, evs []event.Access) string {
			cfg := cfg
			cfg.Backend = "perfect"
			cfg.Meta = meta
			return digestResult(feed(mk(cfg), evs), withChunks, withMig)
		}
	}
	mkSerial := func(cfg Config) Profiler { return NewSerial(cfg) }
	mkPar := func(cfg Config) Profiler { return NewParallel(cfg) }
	mkMT := func(cfg Config) Profiler { return NewMT(cfg) }
	// typedPar pins parallel modes both ways across the stride-compression
	// A/B switch. The fixtures were captured without compression, whose
	// chunk/dup accounting they embed, so the fixture comparison runs with
	// NoStrideCompression; a second run with compression on (the default)
	// must produce the byte-identical profile — if it doesn't, the returned
	// digest is marked so the fixture mismatch names the real culprit (the
	// equivalence suite prints the offending dependence).
	typedPar := func(cfg Config, withMig bool) func(*prog.Meta, []event.Access) string {
		return func(meta *prog.Meta, evs []event.Access) string {
			off := cfg
			off.Backend = "perfect"
			off.Meta = meta
			off.NoStrideCompression = true
			resOff := feed(mkPar(off), evs)
			on := off
			on.NoStrideCompression = false
			resOn := feed(mkPar(on), evs)
			if a, b := digestResult(resOff, false, false), digestResult(resOn, false, false); a != b {
				return "STRIDE-COMPRESSION-CHANGED-PROFILE:" + b
			}
			return digestResult(resOff, true, withMig)
		}
	}
	return []struct {
		name string
		run  func(meta *prog.Meta, evs []event.Access) string
	}{
		{"serial", typed(Config{}, mkSerial, false, false)},
		{"par8", typedPar(Config{Workers: 8}, false)},
		{"par8-lock", typedPar(Config{Workers: 8, LockBased: true}, false)},
		{"par3", typedPar(Config{Workers: 3, QueueCap: 8}, false)},
		{"par4-redist", typedPar(Config{Workers: 4, RedistributeEvery: 4}, true)},
		{"mt4", typed(Config{Workers: 4}, mkMT, false, false)},
		{"exist4", func(meta *prog.Meta, evs []event.Access) string {
			e := NewExistence(Config{Workers: 4})
			for _, a := range evs {
				e.Access(a)
			}
			return digestExistence(e.Flush())
		}},
	}
}

// computeGoldens digests every (stream, mode) pair with workload streams
// produced by exec.
func computeGoldens(t *testing.T, exec interp.Executor) map[string]string {
	streams := goldenStreams(t, exec)
	modes := goldenModes()
	got := make(map[string]string)
	for _, s := range streams {
		for _, m := range modes {
			got[s.name+"/"+m.name] = m.run(s.meta, s.evs)
		}
	}
	return got
}

// compareGoldens checks a digest map against the committed fixture file.
func compareGoldens(t *testing.T, got map[string]string) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing goldens (%v); regenerate with -update-goldens on a known-good build", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("%s: %v", goldenPath, err)
	}
	for key, w := range want {
		if g, ok := got[key]; !ok {
			t.Errorf("%s: fixture present but mode/stream no longer produced", key)
		} else if g != w {
			t.Errorf("%s: profile digest drifted\n want %s\n got  %s", key, w, g)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: produced but missing from goldens; regenerate with -update-goldens", key)
		}
	}
}

func TestGoldenProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite replays the full workload corpus")
	}
	got := computeGoldens(t, interp.TreeWalker{})

	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), goldenPath)
		return
	}

	compareGoldens(t, got)
}

// TestGoldenProfilesVM re-runs the full fixture comparison with the bytecode
// VM as the event producer. The fixtures were captured from the tree-walking
// interpreter, so a pass here proves every workload's access stream — and
// therefore every one of the 182 pinned profiles — is byte-identical under
// the compiled producer.
func TestGoldenProfilesVM(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite replays the full workload corpus")
	}
	if *updateGoldens {
		t.Skip("goldens are always regenerated from the reference interpreter")
	}
	compareGoldens(t, computeGoldens(t, vm.New()))
}
