package sig

import (
	"math/rand"
	"testing"
)

func TestHeavySketchOfferAndLen(t *testing.T) {
	h := NewHeavySketch(16)
	if h.Len() != 0 {
		t.Fatalf("fresh sketch Len = %d, want 0", h.Len())
	}
	for i := 0; i < 10; i++ {
		h.Offer(uint64(i) * 8)
	}
	if h.Len() != 10 {
		t.Fatalf("Len = %d, want 10 (under capacity, no eviction)", h.Len())
	}
	// Re-offering tracked addresses must not grow the sketch.
	for i := 0; i < 10; i++ {
		h.Offer(uint64(i) * 8)
	}
	if h.Len() != 10 {
		t.Fatalf("Len after re-offers = %d, want 10", h.Len())
	}
}

func TestHeavySketchTopOrdering(t *testing.T) {
	h := NewHeavySketch(16)
	// addr 0x10 x5, 0x20 x3, 0x30 x1.
	for i := 0; i < 5; i++ {
		h.Offer(0x10)
	}
	for i := 0; i < 3; i++ {
		h.Offer(0x20)
	}
	h.Offer(0x30)
	top := h.Top(3)
	want := []uint64{0x10, 0x20, 0x30}
	for i, a := range want {
		if top[i] != a {
			t.Fatalf("Top = %#x, want %#x (descending by count)", top, want)
		}
	}
	// n larger than the tracked set clamps.
	if got := h.Top(100); len(got) != 3 {
		t.Fatalf("Top(100) returned %d entries, want 3", len(got))
	}
	// Ties break by ascending address for determinism.
	h2 := NewHeavySketch(16)
	h2.Offer(0xBB)
	h2.Offer(0xAA)
	tied := h2.Top(2)
	if tied[0] != 0xAA || tied[1] != 0xBB {
		t.Fatalf("tie order = %#x, want [0xAA 0xBB]", tied)
	}
}

func TestHeavySketchEvictionInheritsMinCount(t *testing.T) {
	h := NewHeavySketch(16)
	// Fill to capacity: one hot address, 15 singletons.
	for i := 0; i < 10; i++ {
		h.Offer(0x1000)
	}
	for i := 1; i < 16; i++ {
		h.Offer(uint64(i) * 8)
	}
	if h.Len() != 16 {
		t.Fatalf("Len = %d, want 16 (at capacity)", h.Len())
	}
	// A new address evicts a minimum-count entry (count 1) and inherits its
	// count: the SpaceSaving overestimate, 1+1 = 2.
	h.Offer(0x2000)
	if h.Len() != 16 {
		t.Fatalf("Len after eviction = %d, want 16 (capacity bound)", h.Len())
	}
	i, ok := h.idx[0x2000]
	if !ok {
		t.Fatal("newly offered address not tracked after eviction")
	}
	if h.counts[i] != 2 {
		t.Fatalf("inherited count = %d, want 2 (min 1 + this offer)", h.counts[i])
	}
	// The hot address must have survived the eviction.
	if _, ok := h.idx[0x1000]; !ok {
		t.Fatal("heavy address evicted in favour of a singleton")
	}
}

// TestHeavySketchHeavyHitterProperty checks the SpaceSaving guarantee the
// rebalancer relies on: an address taking a large fraction of the stream
// (far above 1/capacity) always surfaces in Top(k), regardless of how much
// singleton noise surrounds it.
func TestHeavySketchHeavyHitterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := NewHeavySketch(64)
		const streamLen = 20000
		heavy := uint64(0xFEED0000) + uint64(trial)*8
		for i := 0; i < streamLen; i++ {
			if rng.Intn(100) < 30 { // 30% of the stream
				h.Offer(heavy)
			} else {
				h.Offer(rng.Uint64() &^ 7) // singleton noise
			}
		}
		found := false
		for _, a := range h.Top(10) {
			if a == heavy {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trial %d: heavy address %#x missing from Top(10)", trial, heavy)
		}
	}
}

func TestHeavySketchCountAndForget(t *testing.T) {
	h := NewHeavySketch(16)
	if got := h.Count(0x10); got != 0 {
		t.Fatalf("Count(untracked) = %d, want 0", got)
	}
	for i := 0; i < 7; i++ {
		h.Offer(0x10)
	}
	h.Offer(0x20)
	if got := h.Count(0x10); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	// Forget drops the entry and repairs the swapped-in index.
	h.Forget(0x10)
	if h.Len() != 1 {
		t.Fatalf("Len after Forget = %d, want 1", h.Len())
	}
	if got := h.Count(0x10); got != 0 {
		t.Fatalf("Count after Forget = %d, want 0", got)
	}
	if got := h.Count(0x20); got != 1 {
		t.Fatalf("survivor count = %d, want 1 (index must survive the swap)", got)
	}
	// Forgetting an untracked address is a no-op.
	h.Forget(0x9999)
	if h.Len() != 1 {
		t.Fatalf("Len after no-op Forget = %d, want 1", h.Len())
	}
}
