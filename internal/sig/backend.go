package sig

// The access-history backend layer. Every profiler variant, experiment
// driver and ddprofd session selects its store through one registry keyed by
// a spec string ("signature:slots=1m", "hybrid:slots=1m,exact=4096"), so the
// precision/memory trade-off of §III-B is a first-class knob instead of
// scattered constructor closures. Backends register themselves at init time:
// signature and perfect live here; shadow, hashtab and hybrid register from
// their own packages (internal/shadow, internal/hashtab), which already
// depend on sig for the Store contract.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultBackend is the spec every layer falls back to when none is given:
// the paper's bounded-memory signature store.
const DefaultBackend = "signature"

// Spec is a parsed backend specification: a backend name plus ordered
// key=value parameters. The canonical textual form is
//
//	name
//	name:key=value,key=value
//
// Integer parameters accept k/m/g binary-size suffixes ("64k" = 65536,
// "1m" = 1048576). ParseSpec validates only the syntax; each backend's
// constructor rejects parameters it does not understand.
type Spec struct {
	// Name selects the registered backend.
	Name string

	keys []string
	vals map[string]string

	// DefaultSlots sizes slot-count parameters the spec omits. It is set by
	// the caller (the profiler from Config.SlotsPerWorker, the daemon from
	// the session's worker budget), not by ParseSpec; zero means the
	// backend's own built-in default applies.
	DefaultSlots int
}

func specNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// ParseSpec parses a backend spec string. Syntax errors (empty name, bad
// characters, duplicate or malformed parameters) are reported here; unknown
// backend names and unsupported parameters are the registry's and the
// backend constructor's business respectively.
func ParseSpec(s string) (Spec, error) {
	name, rest, has := strings.Cut(s, ":")
	if !specNameOK(name) {
		return Spec{}, fmt.Errorf("sig: bad backend spec %q: want name[:key=value,...]", s)
	}
	sp := Spec{Name: name}
	if !has {
		return sp, nil
	}
	if rest == "" {
		return Spec{}, fmt.Errorf("sig: bad backend spec %q: empty parameter list after %q", s, name+":")
	}
	sp.vals = make(map[string]string)
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || !specNameOK(k) || !specNameOK(v) {
			return Spec{}, fmt.Errorf("sig: bad backend spec %q: parameter %q is not key=value", s, kv)
		}
		if _, dup := sp.vals[k]; dup {
			return Spec{}, fmt.Errorf("sig: bad backend spec %q: duplicate parameter %q", s, k)
		}
		sp.keys = append(sp.keys, k)
		sp.vals[k] = v
	}
	return sp, nil
}

// String renders the canonical spec form; ParseSpec(sp.String()) yields sp
// back (parameter order and values are preserved verbatim).
func (sp Spec) String() string {
	if len(sp.keys) == 0 {
		return sp.Name
	}
	var b strings.Builder
	b.WriteString(sp.Name)
	for i, k := range sp.keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(sp.vals[k])
	}
	return b.String()
}

// Param returns the raw value of a parameter.
func (sp Spec) Param(key string) (string, bool) {
	v, ok := sp.vals[key]
	return v, ok
}

// Int returns an integer parameter, applying k/m/g binary suffixes, or def
// when the spec does not carry the key.
func (sp Spec) Int(key string, def int) (int, error) {
	raw, ok := sp.vals[key]
	if !ok {
		return def, nil
	}
	n, err := parseSize(raw)
	if err != nil {
		return 0, fmt.Errorf("sig: backend %s: parameter %s=%q: %v", sp.Name, key, raw, err)
	}
	return n, nil
}

// Only rejects any parameter outside the allowed set — how each backend
// constructor surfaces typos instead of silently ignoring them.
func (sp Spec) Only(allowed ...string) error {
	for _, k := range sp.keys {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("sig: backend %s does not take parameter %q (allowed: %s)",
				sp.Name, k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// SlotsDefault is the slot default chain: Spec.DefaultSlots if the caller
// provided one, else the backend's built-in fallback. Exported for backend
// constructors registered from other packages.
func (sp Spec) SlotsDefault(fallback int) int {
	if sp.DefaultSlots > 0 {
		return sp.DefaultSlots
	}
	return fallback
}

// parseSize parses a non-negative integer with an optional k/m/g binary
// suffix (case-insensitive).
func parseSize(s string) (int, error) {
	shift := 0
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k', 'K':
			shift, s = 10, s[:n-1]
		case 'm', 'M':
			shift, s = 20, s[:n-1]
		case 'g', 'G':
			shift, s = 30, s[:n-1]
		}
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not a size (digits with optional k/m/g suffix)")
	}
	if v > (1<<62)>>shift {
		return 0, fmt.Errorf("size overflows")
	}
	return int(v << shift), nil
}

// Backend is one registered access-history store kind.
type Backend struct {
	// Name is the registry key and the spec's leading token.
	Name string
	// Exact reports whether the store is collision-free: no false positives
	// or negatives in the profile (perfect, shadow, hashtab; hybrid only on
	// its exact tier).
	Exact bool
	// Doc is a one-line description for flag help and the README matrix.
	Doc string
	// New builds a store from a parsed spec, rejecting parameters the
	// backend does not understand.
	New func(Spec) (Store, error)
	// EstimateBytes predicts the store's steady-state footprint for
	// admission control. Zero means unbounded: the footprint grows with the
	// target's address footprint and cannot be promised up front.
	EstimateBytes func(Spec) uint64
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Backend)
)

// Register adds a backend to the registry; it panics on a duplicate or
// incomplete registration (registration is init-time wiring, not input).
func Register(b Backend) {
	if b.Name == "" || b.New == nil {
		panic("sig: Register: backend needs a Name and a New constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name]; dup {
		panic("sig: Register: duplicate backend " + b.Name)
	}
	registry[b.Name] = b
}

// LookupBackend returns the backend registered under name.
func LookupBackend(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Backends lists the registered backends sorted by name.
func Backends() []Backend {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Backend, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BackendNames lists the registered backend names sorted; used by error
// messages and flag help.
func BackendNames() []string {
	bs := Backends()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// OpenStore parses a spec string, resolves its backend and builds the store.
// defaultSlots sizes slot-count parameters the spec omits (0 = backend
// default); spec "" selects DefaultBackend.
func OpenStore(spec string, defaultSlots int) (Store, error) {
	if spec == "" {
		spec = DefaultBackend
	}
	sp, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	sp.DefaultSlots = defaultSlots
	b, ok := LookupBackend(sp.Name)
	if !ok {
		return nil, fmt.Errorf("sig: unknown store backend %q (registered: %s)",
			sp.Name, strings.Join(BackendNames(), ", "))
	}
	return b.New(sp)
}

// EstimateStoreBytes predicts one store's footprint under a spec for
// admission control. bounded is false when the backend cannot bound its
// growth (perfect, shadow, unbounded-tier hybrid).
func EstimateStoreBytes(spec string, defaultSlots int) (bytes uint64, bounded bool, err error) {
	if spec == "" {
		spec = DefaultBackend
	}
	sp, err := ParseSpec(spec)
	if err != nil {
		return 0, false, err
	}
	sp.DefaultSlots = defaultSlots
	b, ok := LookupBackend(sp.Name)
	if !ok {
		return 0, false, fmt.Errorf("sig: unknown store backend %q (registered: %s)",
			sp.Name, strings.Join(BackendNames(), ", "))
	}
	if b.EstimateBytes == nil {
		return 0, false, nil
	}
	n := b.EstimateBytes(sp)
	return n, n > 0, nil
}

// Promoter is implemented by stores with an exact heavy-hitter tier that can
// adopt an address on demand (the hybrid store). The producer seeds it with
// its Misra–Gries heavy hitters; the store also promotes worker-locally.
type Promoter interface {
	Promote(addr uint64)
}

// Tiered is implemented by stores that split state across an exact tier and
// an approximate tail, for per-tier telemetry and memory accounting.
type Tiered interface {
	// TierBytes returns the footprint of the exact tier and the signature
	// tail separately; their sum is Bytes().
	TierBytes() (exact, tail uint64)
	// ExactResident returns the number of addresses currently held exactly.
	ExactResident() int
}

// Tracker is implemented by stores that can maintain live Eq. (2) accuracy
// statistics (the Signature, and the hybrid store via its tail).
type Tracker interface {
	EnableTracking()
	Accuracy() (AccuracyStats, bool)
}

const slotBytes = 24 // three 64-bit words per Slot

func init() {
	Register(Backend{
		Name:  "signature",
		Exact: false,
		Doc:   "fixed slot arrays, one locality-preserving hash (§III-B); bounded memory, Eq. (2) collision rate",
		New: func(sp Spec) (Store, error) {
			if err := sp.Only("slots"); err != nil {
				return nil, err
			}
			slots, err := sp.Int("slots", sp.SlotsDefault(1<<20))
			if err != nil {
				return nil, err
			}
			if slots < 1 {
				return nil, fmt.Errorf("sig: backend signature: slots = %d; want >= 1", slots)
			}
			return NewSignature(slots), nil
		},
		EstimateBytes: func(sp Spec) uint64 {
			slots, err := sp.Int("slots", sp.SlotsDefault(1<<20))
			if err != nil || slots < 1 {
				return 0
			}
			return 2 * uint64(slots) * slotBytes
		},
	})
	Register(Backend{
		Name:  "perfect",
		Exact: true,
		Doc:   "per-address map, the §VI-A ground truth; unbounded memory",
		New: func(sp Spec) (Store, error) {
			if err := sp.Only(); err != nil {
				return nil, err
			}
			return NewPerfectSignature(), nil
		},
	})
}
