// Package sig implements signature-based memory-access recording, the
// paper's central space optimization (§III-B).
//
// A signature encodes an approximate representation of an unbounded set of
// elements with a bounded amount of state. Following the paper, ours is a
// fixed-length slot array combined with a single hash function mapping memory
// addresses to slot indices. One hash function (rather than the k of a Bloom
// filter) keeps element *removal* possible, which variable-lifetime analysis
// requires. Each slot stores the metadata of the most recent access that
// hashed there; hash collisions therefore produce both false positives and
// false negatives in the profiled dependences, quantified in Table I.
//
// The paper's slots are 4 bytes (a source line). Our slots carry additional
// metadata (variable, thread, loop-iteration context, timestamp) needed for
// the Table II and §V experiments, so a slot is three 64-bit words. Memory
// experiments report both actual and paper-modeled (4 B/slot) sizes.
package sig

import (
	"ddprof/internal/loc"
)

// Slot is the access record stored per signature slot. The zero Slot means
// "empty". A populated slot always has the presence bit set in Meta, so a
// genuine access can never be mistaken for an empty slot.
type Slot struct {
	Meta  uint64 // present(1) | reduction(1) | induction(1) | thread(9) | var(20) | loc(32)
	Iter  uint64 // packed iteration vector of the enclosing loops
	CtxTS uint64 // ctxID(16) | timestamp(48)
}

const (
	presentBit   = uint64(1) << 63
	reductionBit = uint64(1) << 62
	inductionBit = uint64(1) << 61
)

// PackSlot builds a populated slot.
func PackSlot(l loc.SourceLoc, v loc.VarID, thread int32, ctx uint32, iterVec, ts uint64) Slot {
	meta := presentBit |
		(uint64(thread)&0x1FF)<<52 |
		(uint64(v)&0xFFFFF)<<32 |
		uint64(l)
	return Slot{
		Meta:  meta,
		Iter:  iterVec,
		CtxTS: (uint64(ctx)&0xFFFF)<<48 | (ts & 0xFFFFFFFFFFFF),
	}
}

// Empty reports whether the slot holds no access.
func (s Slot) Empty() bool { return s.Meta&presentBit == 0 }

// WithReduction marks the recorded access as part of a reduction statement
// (x = x ⊕ expr with ⊕ commutative-associative), which parallelism discovery
// uses to report reduction-parallelizable loops.
func (s Slot) WithReduction() Slot {
	s.Meta |= reductionBit
	return s
}

// Reduction reports whether the recorded access carries the reduction mark.
func (s Slot) Reduction() bool { return s.Meta&reductionBit != 0 }

// WithInduction marks the recorded access as an induction-variable update
// (i = i + step at a loop header). Such self-dependences are loop control —
// parallelization replaces them — so the engine does not let them count as
// parallelism-preventing carried dependences.
func (s Slot) WithInduction() Slot {
	s.Meta |= inductionBit
	return s
}

// Induction reports whether the recorded access carries the induction mark.
func (s Slot) Induction() bool { return s.Meta&inductionBit != 0 }

// Loc returns the recorded source location.
func (s Slot) Loc() loc.SourceLoc { return loc.SourceLoc(uint32(s.Meta)) }

// Var returns the recorded variable.
func (s Slot) Var() loc.VarID { return loc.VarID((s.Meta >> 32) & 0xFFFFF) }

// Thread returns the recorded target-program thread ID.
func (s Slot) Thread() int32 { return int32((s.Meta >> 52) & 0x1FF) }

// Ctx returns the recorded static loop-context ID.
func (s Slot) Ctx() uint32 { return uint32(s.CtxTS >> 48) }

// TS returns the recorded timestamp (48 bits).
func (s Slot) TS() uint64 { return s.CtxTS & 0xFFFFFFFFFFFF }

// Store abstracts how per-address access history is kept. The profiler's
// detection engine (Algorithm 1) runs against any Store; implementations are
// the approximate Signature below, the exact PerfectSignature, shadow memory
// (internal/shadow) and a bucketed hash table (internal/hashtab).
type Store interface {
	// LookupWrite returns the last-write record for addr, if present.
	LookupWrite(addr uint64) (Slot, bool)
	// LookupRead returns the last-read record for addr, if present.
	LookupRead(addr uint64) (Slot, bool)
	// SetWrite records s as the last write to addr.
	SetWrite(addr uint64, s Slot)
	// SetRead records s as the last read of addr.
	SetRead(addr uint64, s Slot)
	// Remove forgets addr entirely (variable-lifetime analysis).
	Remove(addr uint64)
	// Bytes returns the actual memory the store occupies.
	Bytes() uint64
	// ModeledBytes returns the store size under the paper's cost model
	// (4 bytes per signature slot; exact stores report their true size).
	ModeledBytes() uint64
}

// Signature is the approximate Store: two fixed slot arrays (reads, writes)
// indexed by one multiplicative hash of the address. On collision the newer
// access simply replaces the older one — no chaining, no allocation — which
// is what makes it fast and bounded, at the price of Table I's FPR/FNR.
type Signature struct {
	writes []Slot
	reads  []Slot
	m      uint64
	// trk, when non-nil, maintains live accuracy statistics (occupancy,
	// distinct-address estimate, slot conflicts) for Eq. (2) telemetry; see
	// accuracy.go. Off by default: one nil check per operation.
	trk *sigTrack
}

// NewSignature returns a signature with the given number of slots per array.
func NewSignature(slots int) *Signature {
	if slots < 1 {
		slots = 1
	}
	return &Signature{
		writes: make([]Slot, slots),
		reads:  make([]Slot, slots),
		m:      uint64(slots),
	}
}

// hash maps an address to a slot index: the word address modulo the slot
// count. The locality-preserving modulo is deliberate and matches the
// behaviour behind the paper's Table I: as soon as the signature has more
// slots than the target's (contiguous) address footprint, *no* collisions
// occur at all and FPR/FNR drop to exactly zero — which is how the paper
// reaches 0.00 at 1e8 slots. A scrambling hash would instead keep a floor
// of random cross-array collisions at every size. For footprints larger
// than the slot count, wraparound produces the systematic collisions the
// smaller Table I columns quantify, and Equation (2) models the uniform
// case.
func (g *Signature) hash(addr uint64) uint64 {
	return (addr >> 3) % g.m
}

// Slots returns the configured number of slots per array.
func (g *Signature) Slots() int { return int(g.m) }

// LookupWrite implements Store.
func (g *Signature) LookupWrite(addr uint64) (Slot, bool) {
	i := g.hash(addr)
	s := g.writes[i]
	if g.trk != nil {
		g.trk.noteLookup(i, (addr>>3)+1, !s.Empty())
	}
	return s, !s.Empty()
}

// LookupRead implements Store.
func (g *Signature) LookupRead(addr uint64) (Slot, bool) {
	s := g.reads[g.hash(addr)]
	return s, !s.Empty()
}

// SetWrite implements Store.
func (g *Signature) SetWrite(addr uint64, s Slot) {
	i := g.hash(addr)
	if g.trk != nil {
		g.trk.noteInsert(i, (addr>>3)+1)
	}
	g.writes[i] = s
}

// SetRead implements Store.
func (g *Signature) SetRead(addr uint64, s Slot) { g.reads[g.hash(addr)] = s }

// Remove implements Store: both slots the address hashes to are cleared.
// Collided residents are cleared too — an accepted approximation, the same
// one the paper's removal makes.
func (g *Signature) Remove(addr uint64) {
	i := g.hash(addr)
	if g.trk != nil {
		g.trk.noteRemove(i)
	}
	g.writes[i] = Slot{}
	g.reads[i] = Slot{}
}

// Bytes implements Store: actual size of the two slot arrays.
func (g *Signature) Bytes() uint64 { return 2 * g.m * 24 }

// ModeledBytes implements Store: the paper's 4 bytes/slot model (§VI-A:
// "each slot is four bytes. Thus 1.0E+8 slots consume only 382 MB").
func (g *Signature) ModeledBytes() uint64 { return g.m * 4 }

// Occupancy returns the fraction of non-empty write slots; used to validate
// the paper's Eq. (2) collision-probability prediction. With accuracy
// tracking enabled the incrementally maintained slot count answers in O(1);
// the untracked path scans the slot array, which the end-of-run occupancy
// publication would otherwise pay O(m) per worker inside the merge stage.
// The accuracy suite pins the two paths equal.
func (g *Signature) Occupancy() float64 {
	if g.trk != nil {
		return float64(g.trk.occupied) / float64(g.m)
	}
	used := 0
	for i := range g.writes {
		if !g.writes[i].Empty() {
			used++
		}
	}
	return float64(used) / float64(g.m)
}

// Intersect returns the number of slot indices populated (write side) in both
// signatures — the "disambiguation" operation of the transactional-memory
// signature abstraction (§III-B). Both signatures must have equal slot
// counts; if an element was inserted into both, its slot is guaranteed to be
// counted.
func (g *Signature) Intersect(o *Signature) int {
	if o == nil || o.m != g.m {
		return 0
	}
	n := 0
	for i := range g.writes {
		if !g.writes[i].Empty() && !o.writes[i].Empty() {
			n++
		}
	}
	return n
}

// PerfectSignature is the exact Store the paper uses as ground truth in
// §VI-A: "a table where each memory address has its own entry, so that false
// positives are never produced."
type PerfectSignature struct {
	writes map[uint64]Slot
	reads  map[uint64]Slot
}

// NewPerfectSignature returns an empty exact store.
func NewPerfectSignature() *PerfectSignature {
	return &PerfectSignature{
		writes: make(map[uint64]Slot),
		reads:  make(map[uint64]Slot),
	}
}

// LookupWrite implements Store.
func (p *PerfectSignature) LookupWrite(addr uint64) (Slot, bool) {
	s, ok := p.writes[addr]
	return s, ok
}

// LookupRead implements Store.
func (p *PerfectSignature) LookupRead(addr uint64) (Slot, bool) {
	s, ok := p.reads[addr]
	return s, ok
}

// SetWrite implements Store.
func (p *PerfectSignature) SetWrite(addr uint64, s Slot) { p.writes[addr] = s }

// SetRead implements Store.
func (p *PerfectSignature) SetRead(addr uint64, s Slot) { p.reads[addr] = s }

// Remove implements Store.
func (p *PerfectSignature) Remove(addr uint64) {
	delete(p.writes, addr)
	delete(p.reads, addr)
}

// Bytes implements Store: an estimate of the map footprint (key + slot +
// bucket overhead per entry).
func (p *PerfectSignature) Bytes() uint64 {
	const perEntry = 8 + 24 + 16
	return uint64(len(p.writes)+len(p.reads)) * perEntry
}

// ModeledBytes implements Store; exact stores have no separate model.
func (p *PerfectSignature) ModeledBytes() uint64 { return p.Bytes() }

// Addresses returns the number of distinct addresses currently recorded on
// the write side; used by experiments to report the "# addresses" column of
// Table I.
func (p *PerfectSignature) Addresses() int { return len(p.writes) }
