package sig

// Bulk signature access for range-compressed ingestion (internal/core's
// SD3 stride path). Walking a strided run through the per-address Store
// methods pays a hardware divide and two bounds-checked array probes per
// element; the run visitors below hoist the hashing out of the element loop
// entirely — the slot index of element j+1 is the index of element j plus a
// constant word step, reduced mod m by one compare-and-subtract. The visitor
// callback sees exactly what the per-address path would: the current write
// (and, for writes, read) slot at the element's index, and its return value
// is installed just as SetWrite/SetRead would.

// RunVisitor is implemented by stores that can walk a strided run with
// division-free index stepping. Both methods return false — having touched
// nothing — when the run's geometry doesn't allow it (unaligned base or
// stride, 2^64 address wraparound); the caller then falls back to the
// per-address Store methods.
type RunVisitor interface {
	// VisitWriteRun walks elements j = 0..count-1 at address base+j*stride,
	// calling visit with the resident write and read slots and installing the
	// returned slot as the element's last write.
	VisitWriteRun(base, stride uint64, count uint32, visit func(j uint32, write, read Slot) Slot) bool
	// VisitReadRun is the read-side analogue: visit sees the resident write
	// slot and its return value becomes the element's last read.
	VisitReadRun(base, stride uint64, count uint32, visit func(j uint32, write Slot) Slot) bool
}

// runStep validates a run's geometry against the division-free walk and
// returns the start index and per-element index step (already reduced mod m).
func (g *Signature) runStep(base, stride uint64, count uint32) (i, step uint64, ok bool) {
	if base%8 != 0 || stride%8 != 0 {
		return 0, 0, false
	}
	// Reject 2^64 wraparound: (base + j*stride)>>3 must decompose linearly.
	if count > 1 {
		n := uint64(count - 1)
		if s := int64(stride); s > 0 {
			if n > (^uint64(0)-base)/uint64(s) {
				return 0, 0, false
			}
		} else if s < 0 {
			if n > base/uint64(-s) {
				return 0, 0, false
			}
		}
	}
	i = (base >> 3) % g.m
	if s := int64(stride); s >= 0 {
		step = (uint64(s) >> 3) % g.m
	} else {
		// Descending runs step backwards: adding m - (|s|>>3 mod m) is the
		// same index walk without unsigned underflow.
		step = (g.m - (uint64(-s)>>3)%g.m) % g.m
	}
	return i, step, true
}

// VisitWriteRun implements RunVisitor.
func (g *Signature) VisitWriteRun(base, stride uint64, count uint32, visit func(j uint32, write, read Slot) Slot) bool {
	i, step, ok := g.runStep(base, stride, count)
	if !ok {
		return false
	}
	addr := base
	for j := uint32(0); j < count; j++ {
		w := g.writes[i]
		if g.trk != nil {
			g.trk.noteLookup(i, (addr>>3)+1, !w.Empty())
		}
		ns := visit(j, w, g.reads[i])
		if g.trk != nil {
			g.trk.noteInsert(i, (addr>>3)+1)
		}
		g.writes[i] = ns
		addr += stride
		if i += step; i >= g.m {
			i -= g.m
		}
	}
	return true
}

// VisitReadRun implements RunVisitor.
func (g *Signature) VisitReadRun(base, stride uint64, count uint32, visit func(j uint32, write Slot) Slot) bool {
	i, step, ok := g.runStep(base, stride, count)
	if !ok {
		return false
	}
	addr := base
	for j := uint32(0); j < count; j++ {
		w := g.writes[i]
		if g.trk != nil {
			g.trk.noteLookup(i, (addr>>3)+1, !w.Empty())
		}
		g.reads[i] = visit(j, w)
		addr += stride
		if i += step; i >= g.m {
			i -= g.m
		}
	}
	return true
}

// VisitWriteRun implements RunVisitor for the exact per-address map. There
// is no index arithmetic to hoist, but accepting the bulk dispatch keeps SD3
// ranges on one code path and saves a map probe per element versus the
// elementwise fallback (two lookups + one store instead of three probes).
// Every geometry is accepted: map keys don't wrap.
func (p *PerfectSignature) VisitWriteRun(base, stride uint64, count uint32, visit func(j uint32, write, read Slot) Slot) bool {
	addr := base
	for j := uint32(0); j < count; j++ {
		p.writes[addr] = visit(j, p.writes[addr], p.reads[addr])
		addr += stride
	}
	return true
}

// VisitReadRun implements RunVisitor.
func (p *PerfectSignature) VisitReadRun(base, stride uint64, count uint32, visit func(j uint32, write Slot) Slot) bool {
	addr := base
	for j := uint32(0); j < count; j++ {
		p.reads[addr] = visit(j, p.writes[addr])
		addr += stride
	}
	return true
}
