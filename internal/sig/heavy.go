package sig

import "sort"

// HeavySketch tracks approximately the most frequently accessed addresses
// (paper §IV-A: "we also monitor how many times an address is accessed
// dynamically ... to ensure that the top ten most heavily accessed addresses
// are always evenly distributed among worker threads"). Two consumers share
// it: the pipeline producer's load balancer (internal/core) and the hybrid
// store's worker-local promotion of heavy hitters into its exact tier
// (internal/shadow).
//
// The paper keeps exact counts in a map; we use the SpaceSaving algorithm
// with a small capacity instead, which bounds the cost per access regardless
// of how many distinct addresses the target touches, while still identifying
// heavy hitters whose frequency exceeds 1/capacity of the stream — far
// coarser than the top-10 needs. Entries live in flat slices with a map only
// as the address index: the eviction scan for the minimum count walks a
// contiguous uint64 slice (~capacity loads) instead of iterating map
// buckets, which profiling showed dominating the producer thread on streams
// whose sampled addresses mostly miss the sketch.
type HeavySketch struct {
	idx    map[uint64]int // address -> slot in addrs/counts
	addrs  []uint64
	counts []uint64
	cap    int
}

// NewHeavySketch returns a sketch tracking up to capacity addresses
// (minimum 16).
func NewHeavySketch(capacity int) *HeavySketch {
	if capacity < 16 {
		capacity = 16
	}
	return &HeavySketch{
		idx:    make(map[uint64]int, capacity+1),
		addrs:  make([]uint64, 0, capacity),
		counts: make([]uint64, 0, capacity),
		cap:    capacity,
	}
}

// Offer counts one access to addr.
func (h *HeavySketch) Offer(addr uint64) {
	if i, ok := h.idx[addr]; ok {
		h.counts[i]++
		return
	}
	if len(h.addrs) < h.cap {
		h.idx[addr] = len(h.addrs)
		h.addrs = append(h.addrs, addr)
		h.counts = append(h.counts, 1)
		return
	}
	// SpaceSaving: evict the minimum and inherit its count.
	min := 0
	for i := 1; i < len(h.counts); i++ {
		if h.counts[i] < h.counts[min] {
			min = i
		}
	}
	delete(h.idx, h.addrs[min])
	h.idx[addr] = min
	h.addrs[min] = addr
	h.counts[min]++
}

// Count returns the estimated access count of addr (0 if untracked). The
// SpaceSaving estimate never undercounts a tracked address.
func (h *HeavySketch) Count(addr uint64) uint64 {
	if i, ok := h.idx[addr]; ok {
		return h.counts[i]
	}
	return 0
}

// Forget drops addr from the sketch, freeing its slot. The hybrid store
// calls it after promoting an address to the exact tier: a promoted address
// is no longer offered, so keeping its (high) count would only crowd out the
// next generation of candidates.
func (h *HeavySketch) Forget(addr uint64) {
	i, ok := h.idx[addr]
	if !ok {
		return
	}
	last := len(h.addrs) - 1
	delete(h.idx, addr)
	if i != last {
		h.addrs[i] = h.addrs[last]
		h.counts[i] = h.counts[last]
		h.idx[h.addrs[i]] = i
	}
	h.addrs = h.addrs[:last]
	h.counts = h.counts[:last]
}

// Len reports the number of tracked addresses.
func (h *HeavySketch) Len() int { return len(h.addrs) }

// Top returns up to n addresses ordered by descending estimated count.
// Ties break by address for determinism.
func (h *HeavySketch) Top(n int) []uint64 {
	ord := make([]int, len(h.addrs))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		i, j := ord[a], ord[b]
		if h.counts[i] != h.counts[j] {
			return h.counts[i] > h.counts[j]
		}
		return h.addrs[i] < h.addrs[j]
	})
	if n > len(ord) {
		n = len(ord)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = h.addrs[ord[i]]
	}
	return out
}
