package sig

import "math"

// AccuracyStats is a point-in-time accuracy picture of one tracked
// Signature: how full the write-slot array is, how many distinct addresses
// have been inserted (estimated with bounded memory), and the observed slot
// conflicts. It is the live counterpart of the offline Eq. (2) experiment
// (internal/exp Eq2): MeasuredFPR is exactly the quantity that experiment
// measures against the paper's prediction, now available per worker while a
// run is in flight.
type AccuracyStats struct {
	// Slots is the configured write-slot count m.
	Slots int
	// Occupied is the number of non-empty write slots.
	Occupied int
	// Distinct estimates the number of distinct addresses ever written
	// (linear-counting estimate; removal does not decrease it).
	Distinct float64
	// Probes counts LookupWrite calls; FalseHits the subset answered by a
	// slot a *different* address populated — live false positives.
	Probes    uint64
	FalseHits uint64
	// Evictions counts SetWrite calls that displaced a different address —
	// insert conflicts, each a future false negative for the evicted address.
	Evictions uint64
}

// MeasuredFPR returns the measured probability that a membership probe for
// an address never inserted reports present: the write-slot occupancy. This
// is the same "measured" definition the offline Eq. (2) experiment uses.
func (s AccuracyStats) MeasuredFPR() float64 {
	if s.Slots == 0 {
		return 0
	}
	return float64(s.Occupied) / float64(s.Slots)
}

// PredictedFPR returns the paper's Eq. (2) false-positive prediction,
// Pfp = 1 - (1 - 1/m)^n, evaluated with the tracked distinct-address
// estimate as n.
func (s AccuracyStats) PredictedFPR() float64 {
	if s.Slots == 0 {
		return 0
	}
	return 1 - math.Pow(1-1/float64(s.Slots), s.Distinct)
}

// sigTrack is the optional accuracy-tracking sidecar of a Signature. It
// shadows the write-slot array with one word-address tag per slot (so
// conflicts are detectable: the slot array itself cannot tell which address
// populated it) and a linear-counting bitmap estimating distinct insertions.
// Memory cost: 8 bytes per slot for tags + 1 bit per slot for the bitmap —
// acceptable for profiling the profiler, and allocated only when tracking is
// enabled. Like the Signature itself it is single-owner state: each worker
// tracks its own store, so no atomics are needed.
type sigTrack struct {
	wtags    []uint64 // word address + 1 per write slot; 0 = empty
	occupied int

	bitmap    []uint64 // linear-counting bitmap, bmBits bits
	bmBits    uint64
	bmSet     uint64 // number of set bits
	probes    uint64
	falseHits uint64
	evictions uint64
}

// splitmix64 is the scrambling hash behind the distinct-address estimate —
// the slot hash itself is locality-preserving modulo and useless for
// cardinality estimation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// EnableTracking attaches accuracy tracking to the signature. Call before
// the first access; enabling mid-run undercounts everything inserted so far.
func (g *Signature) EnableTracking() {
	if g.trk != nil {
		return
	}
	bits := g.m // one bit per slot: load factor <= 1 at the Eq. (2) scales
	if bits < 64 {
		bits = 64
	}
	g.trk = &sigTrack{
		wtags:  make([]uint64, g.m),
		bitmap: make([]uint64, (bits+63)/64),
		bmBits: bits,
	}
}

// Tracking reports whether accuracy tracking is enabled.
func (g *Signature) Tracking() bool { return g.trk != nil }

// Accuracy returns the current accuracy statistics, and whether tracking is
// enabled at all.
func (g *Signature) Accuracy() (AccuracyStats, bool) {
	t := g.trk
	if t == nil {
		return AccuracyStats{}, false
	}
	return AccuracyStats{
		Slots:     int(g.m),
		Occupied:  t.occupied,
		Distinct:  t.distinct(),
		Probes:    t.probes,
		FalseHits: t.falseHits,
		Evictions: t.evictions,
	}, true
}

// distinct returns the linear-counting estimate n̂ = B·ln(B/z), z = unset
// bits. A saturated bitmap (z = 0) clamps z to 1: the estimate becomes a
// lower bound instead of infinity.
func (t *sigTrack) distinct() float64 {
	zero := t.bmBits - t.bmSet
	if zero == 0 {
		zero = 1
	}
	b := float64(t.bmBits)
	return b * math.Log(b/float64(zero))
}

// noteInsert records a write of word-address tag into slot i.
func (t *sigTrack) noteInsert(i uint64, tag uint64) {
	switch prev := t.wtags[i]; {
	case prev == 0:
		t.occupied++
	case prev != tag:
		t.evictions++
	}
	t.wtags[i] = tag
	bit := splitmix64(tag) % t.bmBits
	if w := &t.bitmap[bit/64]; *w&(1<<(bit%64)) == 0 {
		*w |= 1 << (bit % 64)
		t.bmSet++
	}
}

// noteLookup records a write-side membership probe for tag that found a
// populated slot (hit = true) or not.
func (t *sigTrack) noteLookup(i uint64, tag uint64, hit bool) {
	t.probes++
	if hit && t.wtags[i] != tag {
		t.falseHits++
	}
}

// noteRemove records that slot i was cleared.
func (t *sigTrack) noteRemove(i uint64) {
	if t.wtags[i] != 0 {
		t.wtags[i] = 0
		t.occupied--
	}
}
