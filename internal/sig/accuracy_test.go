package sig

import (
	"math"
	"testing"
)

func slot() Slot { return PackSlot(1, 1, 0, 0, 0, 1) }

// addr returns the byte address of word i (the slot hash consumes word
// addresses, addr >> 3).
func addr(i int) uint64 { return uint64(i) * 8 }

func TestTrackingDisabledByDefault(t *testing.T) {
	g := NewSignature(64)
	g.SetWrite(addr(1), slot())
	if g.Tracking() {
		t.Fatal("tracking on by default")
	}
	if _, ok := g.Accuracy(); ok {
		t.Fatal("Accuracy reported ok without tracking")
	}
}

func TestTrackingOccupancyMatchesScan(t *testing.T) {
	g := NewSignature(256)
	g.EnableTracking()
	g.EnableTracking() // idempotent
	for i := 0; i < 100; i++ {
		g.SetWrite(addr(i), slot())
	}
	st, ok := g.Accuracy()
	if !ok {
		t.Fatal("tracking not enabled")
	}
	if got, want := st.MeasuredFPR(), g.Occupancy(); got != want {
		t.Fatalf("MeasuredFPR = %v, scan Occupancy = %v", got, want)
	}
	if st.Occupied != 100 || st.Slots != 256 {
		t.Fatalf("occupied/slots = %d/%d, want 100/256", st.Occupied, st.Slots)
	}
}

func TestTrackingConflicts(t *testing.T) {
	g := NewSignature(4)
	g.EnableTracking()
	a, b := addr(1), addr(5) // 1 mod 4 == 5 mod 4: same slot
	g.SetWrite(a, slot())
	g.SetWrite(a, slot()) // same address: overwrite, not a conflict
	g.SetWrite(b, slot()) // evicts a
	st, _ := g.Accuracy()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Occupied != 1 {
		t.Fatalf("occupied = %d, want 1 (same slot reused)", st.Occupied)
	}

	// Probing for a now answers from b's slot: a live false positive.
	if _, hit := g.LookupWrite(a); !hit {
		t.Fatal("expected a collided hit")
	}
	// Probing for b finds b: a true hit.
	g.LookupWrite(b)
	// Probing an empty slot: a miss, no false hit.
	g.LookupWrite(addr(2))
	st, _ = g.Accuracy()
	if st.Probes != 3 {
		t.Fatalf("probes = %d, want 3", st.Probes)
	}
	if st.FalseHits != 1 {
		t.Fatalf("falseHits = %d, want 1", st.FalseHits)
	}
}

func TestTrackingRemove(t *testing.T) {
	g := NewSignature(16)
	g.EnableTracking()
	g.SetWrite(addr(3), slot())
	g.Remove(addr(3))
	g.Remove(addr(3)) // double remove: no underflow
	st, _ := g.Accuracy()
	if st.Occupied != 0 {
		t.Fatalf("occupied after remove = %d, want 0", st.Occupied)
	}
	if st.MeasuredFPR() != 0 {
		t.Fatalf("MeasuredFPR after remove = %v, want 0", st.MeasuredFPR())
	}
}

func TestTrackingDistinctEstimate(t *testing.T) {
	g := NewSignature(4096)
	g.EnableTracking()
	const n = 1000
	for i := 0; i < n; i++ {
		g.SetWrite(addr(i), slot())
		g.SetWrite(addr(i), slot()) // re-insertion must not inflate the estimate
	}
	st, _ := g.Accuracy()
	if rel := math.Abs(st.Distinct-n) / n; rel > 0.10 {
		t.Fatalf("distinct estimate %v off by %.1f%% from %d", st.Distinct, rel*100, n)
	}
}

// TestMeasuredTracksEq2 is the unit-level version of the live accuracy
// claim: for a uniform-ish footprint the measured occupancy stays within a
// few points of the Eq. (2) prediction computed from the store's own
// distinct estimate.
func TestMeasuredTracksEq2(t *testing.T) {
	g := NewSignature(4096)
	g.EnableTracking()
	for i := 0; i < 1000; i++ {
		g.SetWrite(addr(i), slot())
	}
	st, _ := g.Accuracy()
	meas, pred := st.MeasuredFPR(), st.PredictedFPR()
	if meas <= 0 || pred <= 0 {
		t.Fatalf("degenerate rates: measured %v predicted %v", meas, pred)
	}
	// Contiguous addresses under the modulo hash never collide below m, so
	// measured = n/m while Eq. (2) models uniform hashing; at n/m ≈ 0.25 the
	// two differ by < 0.03.
	if d := math.Abs(meas - pred); d > 0.04 {
		t.Fatalf("measured %v vs predicted %v differ by %v > 0.04", meas, pred, d)
	}
}

func TestTrackedSignatureBehaviourUnchanged(t *testing.T) {
	plain, tracked := NewSignature(64), NewSignature(64)
	tracked.EnableTracking()
	for i := 0; i < 200; i++ {
		s := PackSlot(2, 3, 0, 0, uint64(i), uint64(i))
		plain.SetWrite(addr(i), s)
		tracked.SetWrite(addr(i), s)
		if i%7 == 0 {
			plain.Remove(addr(i / 2))
			tracked.Remove(addr(i / 2))
		}
	}
	for i := 0; i < 200; i++ {
		p, pok := plain.LookupWrite(addr(i))
		q, qok := tracked.LookupWrite(addr(i))
		if p != q || pok != qok {
			t.Fatalf("tracked store diverged at %d: %v/%v vs %v/%v", i, p, pok, q, qok)
		}
	}
	if plain.Occupancy() != tracked.Occupancy() {
		t.Fatal("occupancy diverged")
	}
}
