package sig

import (
	"testing"
	"testing/quick"

	"ddprof/internal/loc"
)

func TestSlotPackUnpack(t *testing.T) {
	l := loc.Pack(1, 60)
	s := PackSlot(l, 17, 3, 42, 0xDEADBEEF, 123456)
	if s.Empty() {
		t.Fatal("packed slot reports empty")
	}
	if s.Loc() != l {
		t.Errorf("Loc = %v, want %v", s.Loc(), l)
	}
	if s.Var() != 17 {
		t.Errorf("Var = %d", s.Var())
	}
	if s.Thread() != 3 {
		t.Errorf("Thread = %d", s.Thread())
	}
	if s.Ctx() != 42 {
		t.Errorf("Ctx = %d", s.Ctx())
	}
	if s.Iter != 0xDEADBEEF {
		t.Errorf("Iter = %#x", s.Iter)
	}
	if s.TS() != 123456 {
		t.Errorf("TS = %d", s.TS())
	}
}

func TestSlotZeroIsEmpty(t *testing.T) {
	var s Slot
	if !s.Empty() {
		t.Fatal("zero slot must be empty")
	}
	// Even an access with all-zero metadata must not look empty.
	s = PackSlot(0, 0, 0, 0, 0, 0)
	if s.Empty() {
		t.Fatal("packed slot with zero fields must still be present")
	}
}

func TestSlotPackProperty(t *testing.T) {
	f := func(line uint16, v uint16, thr uint8, ctx uint16, iter uint64, ts uint32) bool {
		l := loc.Pack(1, int(line))
		s := PackSlot(l, loc.VarID(v), int32(thr), uint32(ctx), iter, uint64(ts))
		return s.Loc() == l &&
			s.Var() == loc.VarID(v) &&
			s.Thread() == int32(thr) &&
			s.Ctx() == uint32(ctx) &&
			s.Iter == iter &&
			s.TS() == uint64(ts) &&
			!s.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// storeImpl runs a common conformance suite against any Store.
func runStoreConformance(t *testing.T, name string, st Store) {
	t.Helper()
	a, b := uint64(0x1000), uint64(0x2008)
	if _, ok := st.LookupWrite(a); ok {
		t.Fatalf("%s: fresh store has write entry", name)
	}
	if _, ok := st.LookupRead(a); ok {
		t.Fatalf("%s: fresh store has read entry", name)
	}

	w := PackSlot(loc.Pack(1, 10), 1, 0, 0, 0, 1)
	st.SetWrite(a, w)
	got, ok := st.LookupWrite(a)
	if !ok || got.Loc() != w.Loc() {
		t.Fatalf("%s: write lookup after set failed", name)
	}

	r := PackSlot(loc.Pack(1, 20), 2, 0, 0, 0, 2)
	st.SetRead(a, r)
	got, ok = st.LookupRead(a)
	if !ok || got.Loc() != r.Loc() {
		t.Fatalf("%s: read lookup after set failed", name)
	}

	// Writes and reads are independent sides.
	got, _ = st.LookupWrite(a)
	if got.Loc() != w.Loc() {
		t.Fatalf("%s: read set clobbered write side", name)
	}

	// Overwrite replaces.
	w2 := PackSlot(loc.Pack(1, 30), 1, 0, 0, 0, 3)
	st.SetWrite(a, w2)
	got, _ = st.LookupWrite(a)
	if got.Loc() != w2.Loc() {
		t.Fatalf("%s: overwrite did not replace", name)
	}

	// Distinct address unaffected (addresses chosen to avoid collision in
	// the small-signature case is not guaranteed; use big signature).
	st.SetWrite(b, w)
	if got, _ := st.LookupWrite(a); got.Loc() != w2.Loc() {
		t.Fatalf("%s: setting b clobbered a", name)
	}

	// Remove clears both sides.
	st.Remove(a)
	if _, ok := st.LookupWrite(a); ok {
		t.Fatalf("%s: write survives Remove", name)
	}
	if _, ok := st.LookupRead(a); ok {
		t.Fatalf("%s: read survives Remove", name)
	}
	if _, ok := st.LookupWrite(b); !ok {
		t.Fatalf("%s: Remove(a) destroyed b", name)
	}

	if st.Bytes() == 0 {
		t.Fatalf("%s: Bytes() = 0", name)
	}
	if st.ModeledBytes() == 0 {
		t.Fatalf("%s: ModeledBytes() = 0", name)
	}
}

func TestSignatureConformance(t *testing.T) {
	runStoreConformance(t, "Signature", NewSignature(1<<20))
}

func TestPerfectSignatureConformance(t *testing.T) {
	runStoreConformance(t, "PerfectSignature", NewPerfectSignature())
}

func TestSignatureCollisionsReplace(t *testing.T) {
	g := NewSignature(1) // everything collides
	a := PackSlot(loc.Pack(1, 1), 1, 0, 0, 0, 0)
	b := PackSlot(loc.Pack(1, 2), 2, 0, 0, 0, 0)
	g.SetWrite(100, a)
	g.SetWrite(200, b)
	// Membership check for 100 now returns b's record: a false positive of
	// exactly the kind Table I quantifies.
	got, ok := g.LookupWrite(100)
	if !ok {
		t.Fatal("expected (false-positive) hit")
	}
	if got.Loc() != b.Loc() {
		t.Error("collision should replace the older record")
	}
}

func TestSignatureNoFalseNegativeWithoutCollision(t *testing.T) {
	// With slots >> addresses and no removal, every inserted address must be
	// found: signatures only err through collisions.
	g := NewSignature(1 << 16)
	for i := uint64(0); i < 1000; i++ {
		g.SetWrite(i*64, PackSlot(loc.Pack(1, int(i)), 0, 0, 0, 0, 0))
	}
	for i := uint64(0); i < 1000; i++ {
		if _, ok := g.LookupWrite(i * 64); !ok {
			t.Fatalf("address %d lost without any removal", i*64)
		}
	}
}

func TestSignatureMinimumSlots(t *testing.T) {
	g := NewSignature(0)
	if g.Slots() != 1 {
		t.Errorf("Slots() = %d, want clamp to 1", g.Slots())
	}
	g.SetWrite(5, PackSlot(loc.Pack(1, 1), 0, 0, 0, 0, 0))
	if _, ok := g.LookupWrite(5); !ok {
		t.Error("single-slot signature must still function")
	}
}

func TestSignatureBytes(t *testing.T) {
	g := NewSignature(1000)
	if g.Bytes() != 2*1000*24 {
		t.Errorf("Bytes = %d", g.Bytes())
	}
	if g.ModeledBytes() != 4000 {
		t.Errorf("ModeledBytes = %d, want paper's 4 B/slot", g.ModeledBytes())
	}
	// Paper's example: 1e8 slots -> 382 MB.
	big := &Signature{m: 1e8}
	if mb := float64(big.ModeledBytes()) / (1 << 20); mb < 381 || mb > 382 {
		t.Errorf("1e8 slots modeled as %.1f MB, paper says ~382 MB", mb)
	}
}

func TestSignatureOccupancy(t *testing.T) {
	g := NewSignature(100)
	if g.Occupancy() != 0 {
		t.Fatal("fresh signature occupancy != 0")
	}
	s := PackSlot(loc.Pack(1, 1), 0, 0, 0, 0, 0)
	seen := map[uint64]bool{}
	for i := uint64(0); i < 50; i++ {
		g.SetWrite(i, s)
		seen[g.hash(i)] = true
	}
	want := float64(len(seen)) / 100
	if got := g.Occupancy(); got != want {
		t.Errorf("Occupancy = %v, want %v", got, want)
	}
}

func TestSignatureIntersect(t *testing.T) {
	a := NewSignature(1 << 12)
	b := NewSignature(1 << 12)
	s := PackSlot(loc.Pack(1, 1), 0, 0, 0, 0, 0)
	// Insert 10 common addresses and some private ones.
	for i := uint64(0); i < 10; i++ {
		a.SetWrite(i*8, s)
		b.SetWrite(i*8, s)
	}
	for i := uint64(100); i < 120; i++ {
		a.SetWrite(i*7919, s)
	}
	got := a.Intersect(b)
	if got < 10 {
		t.Errorf("Intersect = %d; common elements must always be present (no false negatives)", got)
	}
	if a.Intersect(nil) != 0 {
		t.Error("Intersect(nil) should be 0")
	}
	if a.Intersect(NewSignature(8)) != 0 {
		t.Error("Intersect with mismatched size should be 0")
	}
}

func TestPerfectSignatureAddresses(t *testing.T) {
	p := NewPerfectSignature()
	s := PackSlot(loc.Pack(1, 1), 0, 0, 0, 0, 0)
	for i := uint64(0); i < 7; i++ {
		p.SetWrite(i, s)
		p.SetWrite(i, s) // duplicates don't double-count
	}
	if p.Addresses() != 7 {
		t.Errorf("Addresses = %d, want 7", p.Addresses())
	}
	p.Remove(3)
	if p.Addresses() != 6 {
		t.Errorf("Addresses after Remove = %d, want 6", p.Addresses())
	}
}

func TestSignatureHashUniformity(t *testing.T) {
	// Sequential word addresses (the common case: array sweeps) must spread
	// across slots, not cluster. Chi-squared-ish sanity check.
	g := NewSignature(1024)
	counts := make([]int, 1024)
	for i := uint64(0); i < 64*1024; i++ {
		counts[g.hash(0x10000+i*8)]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// Expected 64 per slot; a pathological hash would leave empty slots or
	// hot slots orders of magnitude over.
	if min == 0 || max > 64*4 {
		t.Errorf("hash poorly distributed: min=%d max=%d (expected ~64)", min, max)
	}
}
